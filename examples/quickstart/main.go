// Quickstart: build a hybrid data center, host an interactive service on
// the virtual partition, submit MapReduce jobs through HybridMR's
// two-phase scheduler, and see where Phase I placed them and how fast
// they ran.
package main

import (
	"fmt"
	"os"
	"time"

	hybridmr "repro"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "quickstart:", err)
		os.Exit(1)
	}
}

func run() error {
	// A hybrid data center: 8 native physical machines for
	// performance-critical batch work, plus 8 PMs hosting 16 VMs that
	// carry both interactive services and consolidated batch tasks.
	dc, err := hybridmr.NewHybridCluster(hybridmr.ClusterSpec{
		NativePMs:      8,
		VirtualHostPMs: 8,
		VMsPerHost:     2,
		Seed:           42,
	})
	if err != nil {
		return err
	}
	defer dc.Close()

	// An over-provisioned auction site lives on the virtual partition.
	rubis, err := dc.DeployService(hybridmr.RUBiS())
	if err != nil {
		return err
	}
	rubis.SetClients(2500)

	// Submit two very different jobs. Phase I profiles each on small
	// training clusters and routes the I/O-heavy Sort away from the
	// virtualization penalty, while the CPU-bound PiEst can harvest the
	// VMs' spare cycles safely.
	type submitted struct {
		name      string
		job       *hybridmr.Job
		placement hybridmr.Placement
	}
	var jobs []submitted
	for _, spec := range []hybridmr.JobSpec{
		hybridmr.Sort().WithInputMB(4 * 1024),
		hybridmr.PiEst(),
	} {
		job, placement, err := dc.SubmitJob(spec, 0, nil)
		if err != nil {
			return err
		}
		fmt.Printf("submitted %-8s -> %s cluster\n", spec.Name, placement)
		jobs = append(jobs, submitted{spec.Name, job, placement})
	}

	// Drive the simulation. Interactive services run forever, so advance
	// a fixed amount of virtual time rather than draining the queue.
	dc.RunFor(1 * time.Hour)

	fmt.Println()
	for _, s := range jobs {
		if !s.job.Done() {
			fmt.Printf("%-8s (%s) did not finish within the hour\n", s.name, s.placement)
			continue
		}
		fmt.Printf("%-8s (%s) JCT %6.1fs  (map %5.1fs + reduce %5.1fs)\n",
			s.name, s.placement, s.job.JCT().Seconds(),
			s.job.MapPhase().Seconds(), s.job.ReducePhase().Seconds())
	}
	fmt.Printf("\nRUBiS at %d clients: %.0f ms mean latency (SLA %.0f ms, violated: %v)\n",
		rubis.Clients(), rubis.LatencyMs(), rubis.Spec().SLAMs, rubis.SLAViolated())
	return nil
}
