// Consolidation: quantify the paper's core economic argument. A
// traditional deployment isolates interactive services on dedicated,
// over-provisioned machines; HybridMR consolidates batch VMs onto those
// same hosts and harvests the idle capacity. With the same physical
// fleet and the same continuous batch backlog, the consolidated cluster
// completes more jobs, runs hotter, and wastes less energy per job.
package main

import (
	"fmt"
	"os"
	"time"

	hybridmr "repro"
)

const (
	fleetPMs = 12
	window   = 45 * time.Minute
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "consolidation:", err)
		os.Exit(1)
	}
}

func run() error {
	isolated, err := scenario(false)
	if err != nil {
		return err
	}
	consolidated, err := scenario(true)
	if err != nil {
		return err
	}
	fmt.Printf("fleet: %d physical machines, %v window, identical continuous batch backlog\n\n", fleetPMs, window)
	fmt.Println("metric                 isolated  consolidated")
	fmt.Printf("jobs completed        %9d  %12d\n", isolated.jobs, consolidated.jobs)
	fmt.Printf("mean CPU utilization  %9.2f  %12.2f\n", isolated.util, consolidated.util)
	fmt.Printf("energy (Wh)           %9.0f  %12.0f\n", isolated.energyWh, consolidated.energyWh)
	fmt.Printf("energy per job (Wh)   %9.1f  %12.1f\n",
		isolated.energyWh/float64(isolated.jobs), consolidated.energyWh/float64(consolidated.jobs))
	if consolidated.jobs > isolated.jobs {
		gain := float64(consolidated.jobs)/float64(isolated.jobs) - 1
		fmt.Printf("\nconsolidation completed %.0f%% more batch work on the same hardware\n", gain*100)
	}
	return nil
}

type outcome struct {
	jobs     int
	util     float64
	energyWh float64
}

func scenario(consolidated bool) (outcome, error) {
	// Isolated: 3 of the 12 PMs are reserved for services; batch VMs
	// live only on the other 9. Consolidated: every PM hosts batch VMs
	// and the services share hosts with them under IPS protection.
	hostPMs := fleetPMs
	if !consolidated {
		hostPMs = fleetPMs - 3
	}
	dc, err := hybridmr.NewHybridCluster(hybridmr.ClusterSpec{
		VirtualHostPMs: hostPMs,
		VMsPerHost:     2,
		Seed:           11,
		VanillaHadoop:  !consolidated,
	})
	if err != nil {
		return outcome{}, err
	}
	defer dc.Close()
	if !consolidated {
		// The reserved service hosts still draw idle power.
		dc.Cluster.AddPMs("reserved", 3)
	}

	for i, spec := range []hybridmr.ServiceSpec{hybridmr.RUBiS(), hybridmr.TPCW(), hybridmr.Olio()} {
		svc, err := dc.DeployService(spec)
		if err != nil {
			return outcome{}, err
		}
		svc.SetClients(1200 + 200*i)
	}

	done := 0
	specs := []hybridmr.JobSpec{
		hybridmr.Sort().WithInputMB(2 * 1024),
		hybridmr.Wcount().WithInputMB(2 * 1024),
		hybridmr.Kmeans().WithInputMB(1 * 1024),
	}
	for _, spec := range specs {
		spec := spec
		var resubmit func(*hybridmr.Job)
		resubmit = func(*hybridmr.Job) {
			done++
			if dc.Now() < window-5*time.Minute {
				_, _, _ = dc.SubmitJob(spec, 0, resubmit)
			}
		}
		if _, _, err := dc.SubmitJob(spec, 0, resubmit); err != nil {
			return outcome{}, err
		}
	}

	rec := dc.NewRecorder(30 * time.Second)
	dc.RunFor(window)
	rec.Stop()
	return outcome{jobs: done, util: rec.MeanUtil(hybridmr.CPU), energyWh: rec.EnergyWh()}, nil
}
