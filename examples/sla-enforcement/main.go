// SLA enforcement: collocate an auction site with a stream of MapReduce
// jobs, first under plain Hadoop (no protection) and then under HybridMR,
// and print the minute-by-minute response-time timeline. This is the
// scenario of the paper's Figures 8(d) and 9(a): without HybridMR the
// batch work drives latency past the 2-second SLA; with it, the IPS
// relocates and throttles the interferers until latency recovers.
package main

import (
	"fmt"
	"os"
	"time"

	hybridmr "repro"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "sla-enforcement:", err)
		os.Exit(1)
	}
}

func run() error {
	type result struct {
		timeline  []float64
		violation int
	}
	scenario := func(protected bool) (result, error) {
		dc, err := hybridmr.NewHybridCluster(hybridmr.ClusterSpec{
			VirtualHostPMs: 8,
			VMsPerHost:     2,
			Seed:           7,
			VanillaHadoop:  !protected,
		})
		if err != nil {
			return result{}, err
		}
		defer dc.Close()

		rubis, err := dc.DeployService(hybridmr.RUBiS())
		if err != nil {
			return result{}, err
		}
		rubis.SetClients(3000)

		// A continuous batch backlog: every finished Sort is replaced.
		spec := hybridmr.Sort().WithInputMB(3 * 1024)
		var resubmit func(*hybridmr.Job)
		resubmit = func(*hybridmr.Job) {
			_, _, _ = dc.SubmitJob(spec, 0, resubmit)
		}
		for i := 0; i < 2; i++ {
			if _, _, err := dc.SubmitJob(spec, 0, resubmit); err != nil {
				return result{}, err
			}
		}

		var res result
		for minute := 1; minute <= 20; minute++ {
			dc.RunFor(time.Minute)
			lat := rubis.LatencyMs()
			res.timeline = append(res.timeline, lat)
			if lat > rubis.Spec().SLAMs {
				res.violation++
			}
		}
		return res, nil
	}

	unprotected, err := scenario(false)
	if err != nil {
		return err
	}
	protected, err := scenario(true)
	if err != nil {
		return err
	}

	fmt.Println("RUBiS response time (ms) with a continuous Sort backlog; SLA = 2000 ms")
	fmt.Println("minute  vanilla-hadoop  hybridmr")
	for i := range unprotected.timeline {
		fmt.Printf("%6d  %14.0f  %8.0f\n", i+1, unprotected.timeline[i], protected.timeline[i])
	}
	fmt.Printf("\nminutes above SLA: vanilla %d/20, HybridMR %d/20\n",
		unprotected.violation, protected.violation)
	return nil
}
