// Cluster design: sweep hybrid splits of a fixed physical fleet — how
// many machines to run natively versus virtualized — and compare the
// performance/energy of each, the paper's Figure 11 analysis. Energy is
// accounted over a common horizon, so a split that finishes early still
// pays idle power until the slowest split is done.
package main

import (
	"fmt"
	"os"
	"time"

	hybridmr "repro"
)

const fleetPMs = 16

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "cluster-design:", err)
		os.Exit(1)
	}
}

type split struct {
	nativePMs int
	hostPMs   int
}

type measured struct {
	split
	meanJCT  float64
	energyWh float64
	makespan time.Duration
	servers  int
}

func run() error {
	// Every split hosts the same two interactive services, so at least
	// two machines are always virtualized; the rest of the fleet is
	// divided between native and VM-hosting machines.
	splits := []split{
		{fleetPMs - 2, 2},                // native-maximal
		{fleetPMs * 3 / 4, fleetPMs / 4}, // native-leaning hybrid
		{fleetPMs / 2, fleetPMs / 2},     // balanced
		{fleetPMs / 4, fleetPMs * 3 / 4}, // virtual-leaning hybrid
		{0, fleetPMs},                    // all virtual
	}
	results := make([]measured, 0, len(splits))
	horizon := time.Duration(0)
	for _, sp := range splits {
		m, err := evaluate(sp)
		if err != nil {
			return err
		}
		if m.makespan > horizon {
			horizon = m.makespan
		}
		results = append(results, m)
	}

	fmt.Printf("fleet: %d PMs; workload: Sort 3GB + Kmeans 2GB + Wcount 3GB + 2 services\n\n", fleetPMs)
	fmt.Println("native  vm-hosts  servers  meanJCT(s)  energy(Wh)  perf/energy")
	const idleW = 150.0
	bestIdx, bestPPE := 0, 0.0
	for i, m := range results {
		// Idle-account to the common horizon.
		energy := m.energyWh + idleW*float64(m.servers)*(horizon-m.makespan).Seconds()/3600
		ppe := 1e6 / (m.meanJCT * energy)
		if ppe > bestPPE {
			bestIdx, bestPPE = i, ppe
		}
		fmt.Printf("%6d  %8d  %7d  %10.0f  %10.0f  %11.3f\n",
			m.nativePMs, m.hostPMs, m.servers, m.meanJCT, energy, ppe)
	}
	best := results[bestIdx]
	fmt.Printf("\nbest performance/energy: %d native + %d VM-host machines\n", best.nativePMs, best.hostPMs)
	return nil
}

func evaluate(sp split) (measured, error) {
	dc, err := hybridmr.NewHybridCluster(hybridmr.ClusterSpec{
		NativePMs:      sp.nativePMs,
		VirtualHostPMs: sp.hostPMs,
		VMsPerHost:     2,
		Seed:           23,
	})
	if err != nil {
		return measured{}, err
	}
	defer dc.Close()

	for i, spec := range []hybridmr.ServiceSpec{hybridmr.RUBiS(), hybridmr.TPCW()} {
		svc, err := dc.DeployService(spec)
		if err != nil {
			return measured{}, err
		}
		svc.SetClients(1200 + 300*i)
	}

	specs := []hybridmr.JobSpec{
		hybridmr.Sort().WithInputMB(3 * 1024),
		hybridmr.Kmeans().WithInputMB(2 * 1024),
		hybridmr.Wcount().WithInputMB(3 * 1024),
	}
	var jobs []*hybridmr.Job
	for _, spec := range specs {
		job, _, err := dc.SubmitJob(spec, 0, nil)
		if err != nil {
			return measured{}, err
		}
		jobs = append(jobs, job)
	}

	rec := dc.NewRecorder(30 * time.Second)
	deadline := 4 * time.Hour
	for dc.Now() < deadline {
		dc.RunFor(time.Minute)
		done := true
		for _, j := range jobs {
			if !j.Done() {
				done = false
				break
			}
		}
		if done {
			break
		}
	}
	rec.Stop()
	var sum float64
	for _, j := range jobs {
		if !j.Done() {
			return measured{}, fmt.Errorf("split %d+%d stalled", sp.nativePMs, sp.hostPMs)
		}
		sum += j.JCT().Seconds()
	}
	return measured{
		split:    sp,
		meanJCT:  sum / float64(len(jobs)),
		energyWh: rec.EnergyWh(),
		makespan: dc.Now(),
		servers:  dc.Cluster.PoweredOnPMs(),
	}, nil
}
