// Trace inspection: run a small mixed workload with the tracer and the
// decision audit log on, then analyze the recorded events instead of the
// simulator's in-memory state — the same workflow you would apply to the
// files saved by `hybridmr-sim -trace`/`-audit`. The program ranks the
// five slowest task attempts and shows, for each, how long the task
// waited for a slot versus how long it actually ran, alongside each
// job's map/reduce phase split; then it asks the audit log *why* each
// job landed on its partition (with the candidates Phase I weighed) and
// which speculative launches paid off, and finally prints the critical
// path bounding one job's completion time. A windowed-telemetry coda
// replays the same JSONL queries you would run with jq against a
// `hybridmr-sim -timeseries` export: slot-wait pressure per window, and
// the first window whose p99 slot wait breached the stock SLO threshold.
package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"time"

	hybridmr "repro"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "trace-inspection:", err)
		os.Exit(1)
	}
}

// event mirrors the tracer's JSONL schema.
type event struct {
	Type  string         `json:"type"`
	TsUs  int64          `json:"ts_us"`
	DurUs int64          `json:"dur_us"`
	Track string         `json:"track"`
	Cat   string         `json:"cat"`
	Name  string         `json:"name"`
	Args  map[string]any `json:"args"`
}

func run() error {
	tracer := hybridmr.NewTracer()
	auditLog := hybridmr.NewAuditLog(0)
	ts := hybridmr.NewTimeSeries(0, 0)
	dc, err := hybridmr.NewHybridCluster(hybridmr.ClusterSpec{
		NativePMs:      2,
		VirtualHostPMs: 2,
		VMsPerHost:     2,
		Seed:           3,
		Tracer:         tracer,
		Audit:          auditLog,
		TimeSeries:     ts,
	})
	if err != nil {
		return err
	}
	defer dc.Close()
	rec := dc.NewRecorder(0) // ticks sample the probe-backed series

	// A mixed workload: a shuffle-heavy sort, a scan, and a CPU-bound
	// estimator, all competing for the same slots.
	var jobs []*hybridmr.Job
	for _, spec := range []hybridmr.JobSpec{
		hybridmr.Sort().WithInputMB(1024),
		hybridmr.DistGrep().WithInputMB(1024),
		hybridmr.PiEst(),
	} {
		job, _, err := dc.SubmitJob(spec, 0, nil)
		if err != nil {
			return err
		}
		jobs = append(jobs, job)
	}
	dc.RunFor(30 * time.Minute)

	// From here on, only the trace speaks.
	var buf bytes.Buffer
	if err := tracer.Write(&buf, hybridmr.TraceFormatJSONL); err != nil {
		return err
	}
	var attempts, phases []event
	dec := json.NewDecoder(&buf)
	for dec.More() {
		var ev event
		if err := dec.Decode(&ev); err != nil {
			return err
		}
		switch {
		case ev.Type == "span" && ev.Cat == "task":
			attempts = append(attempts, ev)
		case ev.Type == "span" && ev.Cat == "job" &&
			(ev.Name == "map-phase" || ev.Name == "reduce-phase"):
			phases = append(phases, ev)
		}
	}

	sort.SliceStable(attempts, func(i, j int) bool {
		return attempts[i].DurUs > attempts[j].DurUs
	})
	fmt.Printf("top 5 slowest task attempts (of %d):\n\n", len(attempts))
	fmt.Println("attempt                   node   started      ran    slot-wait  outcome")
	top := attempts
	if len(top) > 5 {
		top = top[:5]
	}
	for _, a := range top {
		wait := 0.0
		if v, ok := a.Args["slot_wait_sec"].(float64); ok {
			wait = v
		}
		outcome, _ := a.Args["outcome"].(string)
		fmt.Printf("%-24s  %-5s  %6.1fs  %6.1fs  %8.1fs  %s\n",
			a.Name, a.Track,
			float64(a.TsUs)/1e6, float64(a.DurUs)/1e6, wait, outcome)
	}

	fmt.Printf("\nper-job phase breakdown:\n\n")
	sort.SliceStable(phases, func(i, j int) bool {
		if phases[i].Track != phases[j].Track {
			return phases[i].Track < phases[j].Track
		}
		return phases[i].TsUs < phases[j].TsUs
	})
	for _, p := range phases {
		fmt.Printf("%-14s  %-12s  %6.1fs -> %6.1fs  (%.1fs)\n",
			p.Track, p.Name,
			float64(p.TsUs)/1e6, float64(p.TsUs+p.DurUs)/1e6, float64(p.DurUs)/1e6)
	}

	// The audit log answers "why": which partition Phase I picked for
	// each job, against what alternative, and on what grounds. The same
	// query works on a `hybridmr-sim -audit` export with
	// `jq 'select(.subsystem=="phase1")'`.
	fmt.Printf("\nwhy each job landed where it did (audit log):\n\n")
	for _, r := range auditLog.Filter(func(r hybridmr.AuditRecord) bool {
		return r.Subsystem == "phase1" && r.Action == "place"
	}) {
		fmt.Printf("%-14s -> %-8s  %s\n", r.Subject, r.Decision, r.Reason)
		for _, c := range r.Candidates {
			mark := " "
			if c.Chosen {
				mark = "*"
			}
			fmt.Printf("  %s %-8s est. %.1fs  %s\n", mark, c.Name, c.Score, c.Note)
		}
	}
	if specs := auditLog.Filter(func(r hybridmr.AuditRecord) bool {
		return r.Action == "speculate"
	}); len(specs) > 0 {
		fmt.Printf("\nspeculative launches: %d (first: %s -> %s, %s)\n",
			len(specs), specs[0].Subject, specs[0].Decision, specs[0].Reason)
	}

	// The critical-path profiler explains which chain of attempts bounded
	// a job's completion time; waits and runs telescope to the makespan.
	fmt.Printf("\ncritical path of %s:\n\n", jobs[0].Spec.Name)
	rep, err := jobs[0].CriticalPath()
	if err != nil {
		return err
	}
	for _, st := range rep.Steps {
		fmt.Printf("  %-22s on %-5s  wait %5.1fs  run %6.1fs\n",
			st.ID, st.Where, st.Wait.Seconds(), st.Run.Seconds())
	}
	fmt.Printf("  makespan %.1fs = %.1fs waiting + %.1fs running (%d retried, %d speculative wins)\n",
		rep.Makespan.Seconds(), rep.Wait.Seconds(), rep.Run.Seconds(),
		rep.Retried, rep.SpeculativeWins)

	// Windowed telemetry: the same JSONL a `hybridmr-sim -timeseries`
	// export carries, queried the way you would with jq. The Go decoding
	// below is a line-for-line stand-in for:
	//
	//	jq 'select(.series=="mapred.task.slot_wait_sec")' ts.jsonl
	//	jq -s 'map(select(.series=="mapred.task.slot_wait_sec"
	//	         and .p99 > 20)) | min_by(.start_s)
	//	       | {label, start_s, end_s, p99}' ts.jsonl
	rec.Stop()
	var tsBuf bytes.Buffer
	if err := ts.WriteJSONL(&tsBuf); err != nil {
		return err
	}
	type tsRow struct {
		Series string   `json:"series"`
		Label  string   `json:"label"`
		StartS float64  `json:"start_s"`
		EndS   float64  `json:"end_s"`
		Count  uint64   `json:"count"`
		P99    *float64 `json:"p99"`
	}
	const slaSec = 20.0 // the stock map-slot-wait objective's threshold
	var breach *tsRow
	fmt.Printf("\nslot-wait pressure per %gs window (from the windowed JSONL):\n\n", ts.Window().Seconds())
	tsDec := json.NewDecoder(&tsBuf)
	for tsDec.More() {
		var row tsRow
		if err := tsDec.Decode(&row); err != nil {
			return err
		}
		if row.Series != "mapred.task.slot_wait_sec" || row.P99 == nil {
			continue
		}
		fmt.Printf("  %-10s  %5.0fs -> %5.0fs  %3d launches  p99 wait %6.1fs\n",
			row.Label, row.StartS, row.EndS, row.Count, *row.P99)
		if *row.P99 > slaSec && (breach == nil || row.StartS < breach.StartS) {
			r := row
			breach = &r
		}
	}
	if breach != nil {
		fmt.Printf("\nfirst window breaching the %gs slot-wait SLO: %s at %.0fs-%.0fs (p99 %.1fs)\n",
			slaSec, breach.Label, breach.StartS, breach.EndS, *breach.P99)
	} else {
		fmt.Printf("\nno window breached the %gs slot-wait SLO\n", slaSec)
	}
	return nil
}
