// Trace inspection: run a small mixed workload with the tracer on, then
// analyze the recorded events instead of the simulator's in-memory state —
// the same workflow you would apply to a trace file saved by
// `hybridmr-sim -trace`. The program ranks the five slowest task attempts
// and shows, for each, how long the task waited for a slot versus how
// long it actually ran, alongside each job's map/reduce phase split.
package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"time"

	hybridmr "repro"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "trace-inspection:", err)
		os.Exit(1)
	}
}

// event mirrors the tracer's JSONL schema.
type event struct {
	Type  string         `json:"type"`
	TsUs  int64          `json:"ts_us"`
	DurUs int64          `json:"dur_us"`
	Track string         `json:"track"`
	Cat   string         `json:"cat"`
	Name  string         `json:"name"`
	Args  map[string]any `json:"args"`
}

func run() error {
	tracer := hybridmr.NewTracer()
	dc, err := hybridmr.NewHybridCluster(hybridmr.ClusterSpec{
		NativePMs:      2,
		VirtualHostPMs: 2,
		VMsPerHost:     2,
		Seed:           3,
		Tracer:         tracer,
	})
	if err != nil {
		return err
	}
	defer dc.Close()

	// A mixed workload: a shuffle-heavy sort, a scan, and a CPU-bound
	// estimator, all competing for the same slots.
	for _, spec := range []hybridmr.JobSpec{
		hybridmr.Sort().WithInputMB(1024),
		hybridmr.DistGrep().WithInputMB(1024),
		hybridmr.PiEst(),
	} {
		if _, _, err := dc.SubmitJob(spec, 0, nil); err != nil {
			return err
		}
	}
	dc.RunFor(30 * time.Minute)

	// From here on, only the trace speaks.
	var buf bytes.Buffer
	if err := tracer.Write(&buf, hybridmr.TraceFormatJSONL); err != nil {
		return err
	}
	var attempts, phases []event
	dec := json.NewDecoder(&buf)
	for dec.More() {
		var ev event
		if err := dec.Decode(&ev); err != nil {
			return err
		}
		switch {
		case ev.Type == "span" && ev.Cat == "task":
			attempts = append(attempts, ev)
		case ev.Type == "span" && ev.Cat == "job" &&
			(ev.Name == "map-phase" || ev.Name == "reduce-phase"):
			phases = append(phases, ev)
		}
	}

	sort.SliceStable(attempts, func(i, j int) bool {
		return attempts[i].DurUs > attempts[j].DurUs
	})
	fmt.Printf("top 5 slowest task attempts (of %d):\n\n", len(attempts))
	fmt.Println("attempt                   node   started      ran    slot-wait  outcome")
	top := attempts
	if len(top) > 5 {
		top = top[:5]
	}
	for _, a := range top {
		wait := 0.0
		if v, ok := a.Args["slot_wait_sec"].(float64); ok {
			wait = v
		}
		outcome, _ := a.Args["outcome"].(string)
		fmt.Printf("%-24s  %-5s  %6.1fs  %6.1fs  %8.1fs  %s\n",
			a.Name, a.Track,
			float64(a.TsUs)/1e6, float64(a.DurUs)/1e6, wait, outcome)
	}

	fmt.Printf("\nper-job phase breakdown:\n\n")
	sort.SliceStable(phases, func(i, j int) bool {
		if phases[i].Track != phases[j].Track {
			return phases[i].Track < phases[j].Track
		}
		return phases[i].TsUs < phases[j].TsUs
	})
	for _, p := range phases {
		fmt.Printf("%-14s  %-12s  %6.1fs -> %6.1fs  (%.1fs)\n",
			p.Track, p.Name,
			float64(p.TsUs)/1e6, float64(p.TsUs+p.DurUs)/1e6, float64(p.DurUs)/1e6)
	}
	return nil
}
