// Package fault is a seed-deterministic fault injector for the simulated
// data center. Driven entirely by the simulation engine's virtual clock
// (never the wall clock), it crashes and repairs physical machines,
// crashes individual VMs, wedges TaskTracker daemons, corrupts DFS block
// replicas, and injects stragglers (per-machine slowdowns) — either from
// a declarative schedule or from a rate-based chaos profile whose event
// times are drawn from seeded exponential interarrivals. Same seed, same
// faults, same trace bytes: the repeatability that CloudSim-style
// simulators demand of failure scenarios.
package fault

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"strings"
	"time"

	"repro/internal/audit"
	"repro/internal/cluster"
	"repro/internal/dfs"
	"repro/internal/mapred"
	"repro/internal/perfstat"
	"repro/internal/sim"
	"repro/internal/trace"
)

// Kind names a fault class. The string values double as the tokens of
// the -faults command-line syntax.
type Kind string

// Fault kinds.
const (
	PMCrash     Kind = "pm-crash"
	PMRepair    Kind = "pm-repair"
	VMCrash     Kind = "vm-crash"
	TrackerHang Kind = "tracker-hang"
	BlockLoss   Kind = "block-loss"
	Straggler   Kind = "straggler"

	// Correlated kinds take out a whole failure domain at once. Targets
	// are domain names (a rack or power-domain label), resolved into
	// member machines at fire time and crashed as one atomic batch.
	RackCrash        Kind = "rack-crash"
	PowerDomainCrash Kind = "power-crash"
	// NetPartition isolates a rack from the control plane for Duration
	// (heal-able: the machines keep running, only traffic is cut).
	NetPartition Kind = "net-partition"
)

// kinds lists the profile-driven kinds in a fixed order; each gets its
// own derived rng stream so changing one rate cannot shift another
// kind's event times. New kinds append — reordering would reshuffle the
// per-kind seeds and change every existing seeded scenario.
var profileKinds = [...]Kind{PMCrash, VMCrash, TrackerHang, BlockLoss, Straggler,
	RackCrash, PowerDomainCrash, NetPartition}

// ScheduledFault is one declarative injection: at simulation time At,
// inject Kind against Target (a PM, VM or tracker-compute-node name;
// unused for BlockLoss). Duration bounds transient faults (hangs,
// stragglers) and Factor is the straggler slowdown.
type ScheduledFault struct {
	At       time.Duration
	Kind     Kind
	Target   string
	Duration time.Duration
	Factor   float64
}

// Profile is a rate-based chaos description: Poisson arrivals per kind,
// up to Horizon. Zero rates inject nothing of that kind.
type Profile struct {
	// PMCrashPerHour is the rate of whole-machine crashes. Crashed PMs
	// are repaired (powered back on) RepairAfter later.
	PMCrashPerHour float64
	// VMCrashPerHour is the rate of single-VM crashes (guest panics).
	VMCrashPerHour float64
	// TrackerHangPerHour is the rate of transient TaskTracker daemon
	// hangs, each lasting HangDuration.
	TrackerHangPerHour float64
	// BlockLossPerHour is the rate of DFS replica corruption events.
	BlockLossPerHour float64
	// StragglerPerHour is the rate of injected stragglers: a machine
	// runs StragglerFactor times slower for StragglerDuration.
	StragglerPerHour float64
	// RackCrashPerHour is the rate of whole-rack crashes (top-of-rack
	// switch or shared chassis failure). Injects nothing on clusters
	// with no rack topology assigned.
	RackCrashPerHour float64
	// PowerDomainCrashPerHour is the rate of power-domain crashes (a
	// PDU or circuit dropping every machine it feeds).
	PowerDomainCrashPerHour float64
	// NetPartitionPerHour is the rate of rack-level network partitions;
	// each heals after PartitionHealAfter.
	NetPartitionPerHour float64

	// RepairAfter is the crash-to-repair delay for PM crashes
	// (default 120 s). Zero or negative disables repair.
	RepairAfter time.Duration
	// PartitionHealAfter is how long an injected network partition
	// lasts before it heals (default 90 s).
	PartitionHealAfter time.Duration
	// HangDuration is how long a hung tracker stays wedged (default 45 s).
	HangDuration time.Duration
	// StragglerDuration is how long an injected slowdown lasts
	// (default 60 s).
	StragglerDuration time.Duration
	// StragglerFactor is the injected slowdown (default 3.0).
	StragglerFactor float64
	// Horizon bounds chaos generation (default 1 h of simulated time).
	Horizon time.Duration
}

func (p Profile) withDefaults() Profile {
	if p.RepairAfter == 0 {
		p.RepairAfter = 120 * time.Second
	}
	if p.HangDuration <= 0 {
		p.HangDuration = 45 * time.Second
	}
	if p.StragglerDuration <= 0 {
		p.StragglerDuration = 60 * time.Second
	}
	if p.StragglerFactor <= 1 {
		p.StragglerFactor = 3
	}
	if p.PartitionHealAfter <= 0 {
		p.PartitionHealAfter = 90 * time.Second
	}
	if p.Horizon <= 0 {
		p.Horizon = time.Hour
	}
	return p
}

// Options configures an Injector.
type Options struct {
	// Seed fixes every randomized choice (targets and arrival times).
	Seed int64
	// Schedule lists declarative injections, fired exactly as written.
	Schedule []ScheduledFault
	// Profile, when non-nil, adds rate-based chaos on top.
	Profile *Profile
}

// Env is the injector's view of the stack. Multiple filesystems and
// jobtrackers (the hybrid rig's native and virtual partitions) all learn
// about every machine loss.
type Env struct {
	Engine  *sim.Engine
	Cluster *cluster.Cluster
	FSs     []*dfs.FileSystem
	JTs     []*mapred.JobTracker
}

// Injector schedules and applies faults. Its manual methods (CrashPM,
// CrashVM, ...) are also the single place that propagates a failure
// through every layer in the right order, so tests and scenarios use
// them directly.
type Injector struct {
	env      Env
	opts     Options
	armed    bool
	tracer   *trace.Tracer
	reg      *trace.Registry
	auditLog *audit.Log
	perf     *perfstat.Stats
	inv      InvariantSink
	byKind   map[Kind]int
}

// InvariantSink is notified after every injection so a runtime checker
// can sweep cross-layer safety invariants at the moment they are most
// likely to break. The injector never imports the checker; any type
// with this method plugs in.
type InvariantSink interface {
	Injected(kind, target string)
}

// SetInvariants installs an invariant checker. A nil sink keeps the
// checks off.
func (in *Injector) SetInvariants(s InvariantSink) { in.inv = s }

// NewInjector builds an injector over the environment. Nothing fires
// until Arm.
func NewInjector(env Env, opts Options) *Injector {
	return &Injector{env: env, opts: opts, byKind: make(map[Kind]int)}
}

// SetTrace installs a tracer and metrics registry. Either may be nil.
func (in *Injector) SetTrace(tr *trace.Tracer, reg *trace.Registry) {
	in.tracer = tr
	in.reg = reg
}

// SetAudit installs a decision log; every injected fault is recorded
// on it so recovery actions can be traced back to their trigger. A nil
// log keeps auditing off.
func (in *Injector) SetAudit(l *audit.Log) { in.auditLog = l }

// SetPerf installs a performance-attribution collector; injections are
// then counted and the injection paths timed. A nil collector keeps the
// instrumentation off.
func (in *Injector) SetPerf(ps *perfstat.Stats) { in.perf = ps }

// Injections returns how many faults of each kind have fired so far.
func (in *Injector) Injections() map[Kind]int {
	out := make(map[Kind]int, len(in.byKind))
	for k, v := range in.byKind {
		out[k] = v
	}
	return out
}

// Summary formats the injection counts in a fixed kind order.
func (in *Injector) Summary() string {
	keys := make([]string, 0, len(in.byKind))
	for k := range in.byKind {
		keys = append(keys, string(k))
	}
	sort.Strings(keys)
	s := ""
	for i, k := range keys {
		if i > 0 {
			s += " "
		}
		s += fmt.Sprintf("%s=%d", k, in.byKind[Kind(k)])
	}
	if s == "" {
		s = "none"
	}
	return s
}

func (in *Injector) record(kind Kind, target string, args ...trace.Arg) {
	in.byKind[kind]++
	if in.perf != nil {
		in.perf.C.FaultInjections++
	}
	in.reg.Counter("fault." + string(kind)).Inc()
	in.reg.Counter("fault.injections_by_kind." + string(kind)).Inc()
	if in.tracer != nil {
		all := append([]trace.Arg{trace.S("target", target)}, args...)
		in.tracer.Instant("fault", "fault", string(kind), all...)
	}
	in.auditLog.Add("fault", string(kind), target, "injected",
		"deterministic fault injection (schedule or seeded chaos profile)")
	if in.inv != nil {
		in.inv.Injected(string(kind), target)
	}
}

// retarget walks a drawn index forward (wrapping) to the first eligible
// entity in a fixed-order population. The draw itself always spans the
// full population, so a kind's rng stream consumes exactly one value
// per arrival no matter how many entities are currently dead; a draw
// that lands on an ineligible target is re-aimed deterministically
// instead of silently no-oping. Returns -1 when nothing is eligible.
func (in *Injector) retarget(idx, n int, eligible func(int) bool) int {
	for step := 0; step < n; step++ {
		j := (idx + step) % n
		if !eligible(j) {
			continue
		}
		if step > 0 {
			if in.perf != nil {
				in.perf.C.FaultRetargets++
			}
			in.reg.Counter("fault.retargets").Inc()
		}
		return j
	}
	return -1
}

// Arm schedules the declarative schedule and, when a profile is set,
// pre-draws the chaos arrival times onto the engine. Arm is idempotent.
func (in *Injector) Arm() error {
	if in.armed {
		return nil
	}
	in.armed = true
	for _, f := range in.opts.Schedule {
		f := f
		if f.At < in.env.Engine.Now() {
			return fmt.Errorf("fault: scheduled %s at %s is in the past", f.Kind, f.At)
		}
		in.env.Engine.At(f.At, func() { in.fireScheduled(f) })
	}
	if in.opts.Profile != nil {
		in.armChaos(*in.opts.Profile)
	}
	return nil
}

// fireScheduled applies one declarative injection, resolving the target
// by name at fire time (the named machine may already be gone; the
// injection is then a no-op).
func (in *Injector) fireScheduled(f ScheduledFault) {
	in.perf.Enter("fault.inject")
	defer in.perf.Exit()
	switch f.Kind {
	case PMCrash:
		if pm := in.findPM(f.Target); pm != nil {
			in.CrashPM(pm)
		}
	case PMRepair:
		if pm := in.findPM(f.Target); pm != nil {
			in.RepairPM(pm)
		}
	case VMCrash:
		if vm := in.findVM(f.Target); vm != nil {
			in.CrashVM(vm)
		}
	case TrackerHang:
		if tr := in.findTracker(f.Target); tr != nil {
			d := f.Duration
			if d <= 0 {
				d = 45 * time.Second
			}
			in.HangTracker(tr, d)
		}
	case BlockLoss:
		// The declarative form corrupts the first corruptible replica,
		// deterministically.
		in.loseReplica(nil)
	case Straggler:
		if pm := in.findPM(f.Target); pm != nil {
			factor := f.Factor
			if factor <= 1 {
				factor = 3
			}
			d := f.Duration
			if d <= 0 {
				d = 60 * time.Second
			}
			in.SlowPM(pm, factor, d)
		}
	case RackCrash:
		in.CrashRack(f.Target)
	case PowerDomainCrash:
		in.CrashPowerDomain(f.Target)
	case NetPartition:
		d := f.Duration
		if d <= 0 {
			d = 90 * time.Second
		}
		in.PartitionRack(f.Target, d)
	}
}

// armChaos pre-draws per-kind Poisson arrivals up to the horizon. Each
// kind owns an independent rng stream (seed + fixed offset), used both
// for its arrival times here and for its target choices at fire time;
// the engine's deterministic event order keeps the draw sequence stable.
func (in *Injector) armChaos(p Profile) {
	p = p.withDefaults()
	start := in.env.Engine.Now()
	for i, kind := range profileKinds {
		rate := 0.0
		switch kind {
		case PMCrash:
			rate = p.PMCrashPerHour
		case VMCrash:
			rate = p.VMCrashPerHour
		case TrackerHang:
			rate = p.TrackerHangPerHour
		case BlockLoss:
			rate = p.BlockLossPerHour
		case Straggler:
			rate = p.StragglerPerHour
		case RackCrash:
			rate = p.RackCrashPerHour
		case PowerDomainCrash:
			rate = p.PowerDomainCrashPerHour
		case NetPartition:
			rate = p.NetPartitionPerHour
		}
		if rate <= 0 {
			continue
		}
		kind := kind
		rng := rand.New(rand.NewSource(in.opts.Seed + int64(i)*7919))
		at := time.Duration(0)
		for {
			gapHours := -math.Log(1-rng.Float64()) / rate
			at += time.Duration(gapHours * float64(time.Hour))
			if at > p.Horizon {
				break
			}
			in.env.Engine.At(start+at, func() { in.fireChaos(kind, p, rng) })
		}
	}
}

// fireChaos applies one profile-driven injection against a target drawn
// from the kind's rng. Draws span the full fixed-order population and
// re-aim via retarget, so a draw landing on an already-dead machine
// still injects somewhere instead of silently fizzling.
func (in *Injector) fireChaos(kind Kind, p Profile, rng *rand.Rand) {
	in.perf.Enter("fault.inject")
	defer in.perf.Exit()
	switch kind {
	case PMCrash:
		// Never take the last machine: a cluster with nothing left is a
		// different experiment.
		pop := in.env.Cluster.PMs()
		if len(pop) == 0 || len(in.livePMs()) <= 1 {
			return
		}
		idx := in.retarget(rng.Intn(len(pop)), len(pop), func(i int) bool { return !pop[i].Failed() })
		if idx < 0 {
			return
		}
		pm := pop[idx]
		in.CrashPM(pm)
		if p.RepairAfter > 0 {
			in.env.Engine.After(p.RepairAfter, func() { in.RepairPM(pm) })
		}
	case VMCrash:
		// The VM inventory shrinks permanently (a destroyed VM never
		// comes back), so this draw stays over the live list rather than
		// a fixed population.
		candidates := in.liveVMs()
		if len(candidates) <= 2 {
			return // keep a quorum of workers alive
		}
		in.CrashVM(candidates[rng.Intn(len(candidates))])
	case TrackerHang:
		var pop []*mapred.TaskTracker
		for _, jt := range in.env.JTs {
			pop = append(pop, jt.Trackers()...)
		}
		if len(pop) == 0 {
			return
		}
		idx := in.retarget(rng.Intn(len(pop)), len(pop), func(i int) bool {
			return !pop[i].Lost() && !pop[i].Hung()
		})
		if idx < 0 {
			return
		}
		in.HangTracker(pop[idx], p.HangDuration)
	case BlockLoss:
		in.loseReplica(rng)
	case Straggler:
		pop := in.env.Cluster.PMs()
		if len(pop) == 0 {
			return
		}
		idx := in.retarget(rng.Intn(len(pop)), len(pop), func(i int) bool { return !pop[i].Failed() })
		if idx < 0 {
			return
		}
		in.SlowPM(pop[idx], p.StragglerFactor, p.StragglerDuration)
	case RackCrash, PowerDomainCrash:
		domains := in.env.Cluster.Racks()
		members := in.env.Cluster.PMsInRack
		if kind == PowerDomainCrash {
			domains = in.env.Cluster.PowerDomains()
			members = in.env.Cluster.PMsInPowerDomain
		}
		if len(domains) == 0 {
			return
		}
		idx := in.retarget(rng.Intn(len(domains)), len(domains), func(i int) bool {
			return in.domainCrashable(members(domains[i]))
		})
		if idx < 0 {
			return
		}
		var crashed []*cluster.PM
		if kind == RackCrash {
			crashed = in.CrashRack(domains[idx])
		} else {
			crashed = in.CrashPowerDomain(domains[idx])
		}
		if p.RepairAfter > 0 {
			for _, pm := range crashed {
				pm := pm
				in.env.Engine.After(p.RepairAfter, func() { in.RepairPM(pm) })
			}
		}
	case NetPartition:
		racks := in.env.Cluster.Racks()
		if len(racks) == 0 {
			return
		}
		idx := in.retarget(rng.Intn(len(racks)), len(racks), func(i int) bool {
			return in.rackPartitionable(racks[i])
		})
		if idx < 0 {
			return
		}
		in.PartitionRack(racks[idx], p.PartitionHealAfter)
	}
}

// domainCrashable reports whether crashing the domain is a meaningful
// injection: it has at least one live member, and at least one live
// machine survives elsewhere.
func (in *Injector) domainCrashable(members []*cluster.PM) bool {
	liveIn := 0
	for _, pm := range members {
		if !pm.Failed() {
			liveIn++
		}
	}
	return liveIn > 0 && len(in.livePMs())-liveIn >= 1
}

// rackPartitionable reports whether isolating the rack cuts anything:
// at least one live not-yet-isolated member, and at least one live
// machine outside the rack to stay with the control plane.
func (in *Injector) rackPartitionable(name string) bool {
	cut := 0
	for _, pm := range in.env.Cluster.PMsInRack(name) {
		if !pm.Failed() && !in.env.Cluster.Isolated(pm) {
			cut++
		}
	}
	if cut == 0 {
		return false
	}
	for _, pm := range in.livePMs() {
		if pm.Rack() != name {
			return true
		}
	}
	return false
}

// CrashPM fails a physical machine and propagates the loss through every
// layer in the order recovery requires: jobtrackers first (so re-queued
// tasks cannot land back on the dying machine), then the cluster failure
// itself (killing consumers and destroying VMs, aborting in-flight
// migrations), then the filesystems (pruning dead DataNodes and
// re-replicating what they held). Crashing an already-failed machine is
// a no-op. Returns the merged DFS damage report.
func (in *Injector) CrashPM(pm *cluster.PM) dfs.FailureReport {
	if pm == nil || pm.Failed() {
		return dfs.FailureReport{}
	}
	in.record(PMCrash, pm.Name())
	return in.crashPMs([]*cluster.PM{pm})
}

// CrashPMs fails several machines as one correlated event: every
// jobtracker learns about the whole batch before any machine dies, so
// work re-queued for the first victim cannot land on the second, and
// the filesystems see one merged damage report. Records one pm-crash
// per machine; already-failed machines are skipped.
func (in *Injector) CrashPMs(pms []*cluster.PM) dfs.FailureReport {
	targets := crashable(pms)
	for _, pm := range targets {
		in.record(PMCrash, pm.Name())
	}
	return in.crashPMs(targets)
}

// CrashRack fails every live machine in the named rack as one atomic
// batch — a top-of-rack switch or shared chassis going down. Returns
// the machines crashed (nil when the rack is empty or already dead).
func (in *Injector) CrashRack(name string) []*cluster.PM {
	targets := crashable(in.env.Cluster.PMsInRack(name))
	if len(targets) == 0 {
		return nil
	}
	in.record(RackCrash, name, trace.F("machines", float64(len(targets))))
	in.crashPMs(targets)
	return targets
}

// CrashPowerDomain fails every live machine fed by the named power
// domain as one atomic batch — a PDU or circuit failure that cross-cuts
// racks. Returns the machines crashed.
func (in *Injector) CrashPowerDomain(name string) []*cluster.PM {
	targets := crashable(in.env.Cluster.PMsInPowerDomain(name))
	if len(targets) == 0 {
		return nil
	}
	in.record(PowerDomainCrash, name, trace.F("machines", float64(len(targets))))
	in.crashPMs(targets)
	return targets
}

// crashable filters a machine set down to the ones a crash would
// actually take out.
func crashable(pms []*cluster.PM) []*cluster.PM {
	var out []*cluster.PM
	for _, pm := range pms {
		if pm != nil && !pm.Failed() {
			out = append(out, pm)
		}
	}
	return out
}

// crashPMs is the atomic mechanics shared by every machine-crash path,
// in the order recovery requires: jobtrackers first (the whole batch at
// once, so re-queued tasks cannot land back on a machine about to die
// with it), then the cluster failures themselves (killing consumers and
// destroying VMs, aborting in-flight migrations), then the filesystems
// with every lost node as one batch, so no doomed node is picked as a
// re-replication target.
func (in *Injector) crashPMs(pms []*cluster.PM) dfs.FailureReport {
	if len(pms) == 0 {
		return dfs.FailureReport{}
	}
	for _, jt := range in.env.JTs {
		jt.HandleMachineFailures(pms)
	}
	before := in.env.Cluster.VMs()
	affected := make([]cluster.Node, 0, len(pms))
	for _, pm := range pms {
		_ = pm.Fail()
		affected = append(affected, pm)
	}
	// Everything that lost its host — resident VMs plus any VM caught
	// mid-stop-and-copy migrating away from a dying machine.
	for _, vm := range before {
		if vm.Machine() == nil {
			affected = append(affected, vm)
		}
	}
	var report dfs.FailureReport
	for _, fs := range in.env.FSs {
		r := fs.HandleNodeFailures(affected)
		report.ReReplicated += r.ReReplicated
		report.Lost += r.Lost
	}
	return report
}

// PartitionRack isolates the named rack from the control plane — the
// machines keep running but heartbeats, DFS traffic and migration
// streams across the cut stop. The partition heals after d (never, when
// d <= 0); healing restores connectivity, lets lost trackers rejoin on
// their next responsive heartbeat, and re-replicates anything that
// degraded meanwhile. Returns the partition handle (nil for an unknown
// or empty rack).
func (in *Injector) PartitionRack(name string, d time.Duration) *cluster.Partition {
	members := in.env.Cluster.PMsInRack(name)
	if len(members) == 0 {
		return nil
	}
	return in.partition(name, members, d)
}

// PartitionNetwork isolates an arbitrary machine set, healing after d
// (never, when d <= 0).
func (in *Injector) PartitionNetwork(pms []*cluster.PM, d time.Duration) *cluster.Partition {
	if len(pms) == 0 {
		return nil
	}
	names := make([]string, 0, len(pms))
	for _, pm := range pms {
		names = append(names, pm.Name())
	}
	return in.partition(strings.Join(names, "+"), pms, d)
}

func (in *Injector) partition(target string, pms []*cluster.PM, d time.Duration) *cluster.Partition {
	in.record(NetPartition, target,
		trace.F("machines", float64(len(pms))), trace.F("heal_sec", d.Seconds()))
	p := in.env.Cluster.PartitionNetwork(pms)
	if d > 0 {
		in.env.Engine.After(d, func() { in.HealPartition(p) })
	}
	return p
}

// HealPartition heals a partition and repairs what degraded while it
// was active: every filesystem re-replicates toward its target factor,
// and isolated trackers rejoin via the heartbeat scanner. Healing an
// already-healed partition is a no-op.
func (in *Injector) HealPartition(p *cluster.Partition) {
	if p.Healed() {
		return
	}
	p.Heal()
	for _, fs := range in.env.FSs {
		fs.RepairUnderReplicated()
	}
}

// RepairPM powers a failed machine back on. Destroyed VMs stay gone, but
// native trackers on the machine become responsive again (the JobTracker
// health checker restores them once any blacklist hold-off expires) and
// their storage rejoins the DFS as an empty DataNode. Every filesystem
// then re-replicates toward target replication onto the recovered
// capacity. Returns the number of repair copies made.
func (in *Injector) RepairPM(pm *cluster.PM) int {
	if pm == nil || !pm.Failed() {
		return 0
	}
	pm.PowerOn()
	in.record(PMRepair, pm.Name())
	for _, jt := range in.env.JTs {
		for _, tr := range jt.Trackers() {
			if sp, ok := tr.Storage.(*cluster.PM); ok && sp == pm {
				jt.FS().AddDataNode(pm)
			}
		}
	}
	copies := 0
	for _, fs := range in.env.FSs {
		copies += fs.RepairUnderReplicated()
	}
	return copies
}

// CrashVM fails one VM (guest panic): its trackers are declared lost,
// the VM dies with its consumers, and the filesystems prune and repair
// its DataNode. A destroyed VM is a no-op.
func (in *Injector) CrashVM(vm *cluster.VM) dfs.FailureReport {
	if vm == nil || vm.Machine() == nil {
		return dfs.FailureReport{}
	}
	in.record(VMCrash, vm.Name())
	for _, jt := range in.env.JTs {
		jt.HandleNodeLost(vm)
	}
	_ = vm.Fail()
	var report dfs.FailureReport
	for _, fs := range in.env.FSs {
		r := fs.HandleNodeFailure(vm)
		report.ReReplicated += r.ReReplicated
		report.Lost += r.Lost
	}
	return report
}

// HangTracker wedges a TaskTracker daemon for the duration. The
// JobTracker's heartbeat timeout declares it lost and re-executes its
// work; when the hang clears, the tracker heartbeats again and rejoins
// after any blacklist hold-off.
func (in *Injector) HangTracker(tr *mapred.TaskTracker, d time.Duration) {
	if tr == nil || tr.Hung() {
		return
	}
	in.record(TrackerHang, tr.Compute.Name(), trace.F("duration_sec", d.Seconds()))
	tr.SetHung(true)
	in.env.Engine.After(d, func() { tr.SetHung(false) })
}

// SlowPM injects a straggler: the machine runs factor times slower for
// the duration, then recovers (unless a later injection changed the
// factor meanwhile).
func (in *Injector) SlowPM(pm *cluster.PM, factor float64, d time.Duration) {
	if pm == nil || pm.Failed() || factor <= 1 {
		return
	}
	in.record(Straggler, pm.Name(),
		trace.F("factor", factor), trace.F("duration_sec", d.Seconds()))
	pm.SetSlowdown(factor)
	in.env.Engine.After(d, func() {
		if pm.Slowdown() == factor {
			pm.SetSlowdown(1)
		}
	})
}

// loseReplica corrupts one block replica. With an rng the victim is a
// seeded uniform choice over every (block, replica) pair; without one
// (the declarative form) it is the first pair in file/block order.
func (in *Injector) loseReplica(rng *rand.Rand) {
	type victim struct {
		fs *dfs.FileSystem
		b  *dfs.Block
	}
	var pop []victim
	for _, fs := range in.env.FSs {
		for _, f := range fs.Files() {
			for _, b := range f.Blocks {
				pop = append(pop, victim{fs, b})
			}
		}
	}
	if len(pop) == 0 {
		return
	}
	idx := 0
	if rng != nil {
		idx = rng.Intn(len(pop))
	}
	idx = in.retarget(idx, len(pop), func(i int) bool { return len(pop[i].b.Replicas) > 0 })
	if idx < 0 {
		return
	}
	v := pop[idx]
	ridx := 0
	if rng != nil {
		ridx = rng.Intn(len(v.b.Replicas))
	}
	in.record(BlockLoss, v.b.ID)
	v.fs.CorruptReplica(v.b, v.b.Replicas[ridx])
}

func (in *Injector) livePMs() []*cluster.PM {
	var out []*cluster.PM
	for _, pm := range in.env.Cluster.PMs() {
		if !pm.Failed() {
			out = append(out, pm)
		}
	}
	return out
}

func (in *Injector) liveVMs() []*cluster.VM {
	var out []*cluster.VM
	for _, vm := range in.env.Cluster.VMs() {
		if vm.Machine() != nil {
			out = append(out, vm)
		}
	}
	return out
}

func (in *Injector) findPM(name string) *cluster.PM {
	for _, pm := range in.env.Cluster.PMs() {
		if pm.Name() == name {
			return pm
		}
	}
	return nil
}

func (in *Injector) findVM(name string) *cluster.VM {
	for _, vm := range in.env.Cluster.VMs() {
		if vm.Name() == name {
			return vm
		}
	}
	return nil
}

func (in *Injector) findTracker(name string) *mapred.TaskTracker {
	for _, jt := range in.env.JTs {
		for _, tr := range jt.Trackers() {
			if tr.Compute.Name() == name {
				return tr
			}
		}
	}
	return nil
}
