// Package fault is a seed-deterministic fault injector for the simulated
// data center. Driven entirely by the simulation engine's virtual clock
// (never the wall clock), it crashes and repairs physical machines,
// crashes individual VMs, wedges TaskTracker daemons, corrupts DFS block
// replicas, and injects stragglers (per-machine slowdowns) — either from
// a declarative schedule or from a rate-based chaos profile whose event
// times are drawn from seeded exponential interarrivals. Same seed, same
// faults, same trace bytes: the repeatability that CloudSim-style
// simulators demand of failure scenarios.
package fault

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"time"

	"repro/internal/audit"
	"repro/internal/cluster"
	"repro/internal/dfs"
	"repro/internal/mapred"
	"repro/internal/perfstat"
	"repro/internal/sim"
	"repro/internal/trace"
)

// Kind names a fault class. The string values double as the tokens of
// the -faults command-line syntax.
type Kind string

// Fault kinds.
const (
	PMCrash     Kind = "pm-crash"
	PMRepair    Kind = "pm-repair"
	VMCrash     Kind = "vm-crash"
	TrackerHang Kind = "tracker-hang"
	BlockLoss   Kind = "block-loss"
	Straggler   Kind = "straggler"
)

// kinds lists the profile-driven kinds in a fixed order; each gets its
// own derived rng stream so changing one rate cannot shift another
// kind's event times.
var profileKinds = [...]Kind{PMCrash, VMCrash, TrackerHang, BlockLoss, Straggler}

// ScheduledFault is one declarative injection: at simulation time At,
// inject Kind against Target (a PM, VM or tracker-compute-node name;
// unused for BlockLoss). Duration bounds transient faults (hangs,
// stragglers) and Factor is the straggler slowdown.
type ScheduledFault struct {
	At       time.Duration
	Kind     Kind
	Target   string
	Duration time.Duration
	Factor   float64
}

// Profile is a rate-based chaos description: Poisson arrivals per kind,
// up to Horizon. Zero rates inject nothing of that kind.
type Profile struct {
	// PMCrashPerHour is the rate of whole-machine crashes. Crashed PMs
	// are repaired (powered back on) RepairAfter later.
	PMCrashPerHour float64
	// VMCrashPerHour is the rate of single-VM crashes (guest panics).
	VMCrashPerHour float64
	// TrackerHangPerHour is the rate of transient TaskTracker daemon
	// hangs, each lasting HangDuration.
	TrackerHangPerHour float64
	// BlockLossPerHour is the rate of DFS replica corruption events.
	BlockLossPerHour float64
	// StragglerPerHour is the rate of injected stragglers: a machine
	// runs StragglerFactor times slower for StragglerDuration.
	StragglerPerHour float64

	// RepairAfter is the crash-to-repair delay for PM crashes
	// (default 120 s). Zero or negative disables repair.
	RepairAfter time.Duration
	// HangDuration is how long a hung tracker stays wedged (default 45 s).
	HangDuration time.Duration
	// StragglerDuration is how long an injected slowdown lasts
	// (default 60 s).
	StragglerDuration time.Duration
	// StragglerFactor is the injected slowdown (default 3.0).
	StragglerFactor float64
	// Horizon bounds chaos generation (default 1 h of simulated time).
	Horizon time.Duration
}

func (p Profile) withDefaults() Profile {
	if p.RepairAfter == 0 {
		p.RepairAfter = 120 * time.Second
	}
	if p.HangDuration <= 0 {
		p.HangDuration = 45 * time.Second
	}
	if p.StragglerDuration <= 0 {
		p.StragglerDuration = 60 * time.Second
	}
	if p.StragglerFactor <= 1 {
		p.StragglerFactor = 3
	}
	if p.Horizon <= 0 {
		p.Horizon = time.Hour
	}
	return p
}

// Options configures an Injector.
type Options struct {
	// Seed fixes every randomized choice (targets and arrival times).
	Seed int64
	// Schedule lists declarative injections, fired exactly as written.
	Schedule []ScheduledFault
	// Profile, when non-nil, adds rate-based chaos on top.
	Profile *Profile
}

// Env is the injector's view of the stack. Multiple filesystems and
// jobtrackers (the hybrid rig's native and virtual partitions) all learn
// about every machine loss.
type Env struct {
	Engine  *sim.Engine
	Cluster *cluster.Cluster
	FSs     []*dfs.FileSystem
	JTs     []*mapred.JobTracker
}

// Injector schedules and applies faults. Its manual methods (CrashPM,
// CrashVM, ...) are also the single place that propagates a failure
// through every layer in the right order, so tests and scenarios use
// them directly.
type Injector struct {
	env      Env
	opts     Options
	armed    bool
	tracer   *trace.Tracer
	reg      *trace.Registry
	auditLog *audit.Log
	perf     *perfstat.Stats
	byKind   map[Kind]int
}

// NewInjector builds an injector over the environment. Nothing fires
// until Arm.
func NewInjector(env Env, opts Options) *Injector {
	return &Injector{env: env, opts: opts, byKind: make(map[Kind]int)}
}

// SetTrace installs a tracer and metrics registry. Either may be nil.
func (in *Injector) SetTrace(tr *trace.Tracer, reg *trace.Registry) {
	in.tracer = tr
	in.reg = reg
}

// SetAudit installs a decision log; every injected fault is recorded
// on it so recovery actions can be traced back to their trigger. A nil
// log keeps auditing off.
func (in *Injector) SetAudit(l *audit.Log) { in.auditLog = l }

// SetPerf installs a performance-attribution collector; injections are
// then counted and the injection paths timed. A nil collector keeps the
// instrumentation off.
func (in *Injector) SetPerf(ps *perfstat.Stats) { in.perf = ps }

// Injections returns how many faults of each kind have fired so far.
func (in *Injector) Injections() map[Kind]int {
	out := make(map[Kind]int, len(in.byKind))
	for k, v := range in.byKind {
		out[k] = v
	}
	return out
}

// Summary formats the injection counts in a fixed kind order.
func (in *Injector) Summary() string {
	keys := make([]string, 0, len(in.byKind))
	for k := range in.byKind {
		keys = append(keys, string(k))
	}
	sort.Strings(keys)
	s := ""
	for i, k := range keys {
		if i > 0 {
			s += " "
		}
		s += fmt.Sprintf("%s=%d", k, in.byKind[Kind(k)])
	}
	if s == "" {
		s = "none"
	}
	return s
}

func (in *Injector) record(kind Kind, target string, args ...trace.Arg) {
	in.byKind[kind]++
	if in.perf != nil {
		in.perf.C.FaultInjections++
	}
	in.reg.Counter("fault." + string(kind)).Inc()
	if in.tracer != nil {
		all := append([]trace.Arg{trace.S("target", target)}, args...)
		in.tracer.Instant("fault", "fault", string(kind), all...)
	}
	in.auditLog.Add("fault", string(kind), target, "injected",
		"deterministic fault injection (schedule or seeded chaos profile)")
}

// Arm schedules the declarative schedule and, when a profile is set,
// pre-draws the chaos arrival times onto the engine. Arm is idempotent.
func (in *Injector) Arm() error {
	if in.armed {
		return nil
	}
	in.armed = true
	for _, f := range in.opts.Schedule {
		f := f
		if f.At < in.env.Engine.Now() {
			return fmt.Errorf("fault: scheduled %s at %s is in the past", f.Kind, f.At)
		}
		in.env.Engine.At(f.At, func() { in.fireScheduled(f) })
	}
	if in.opts.Profile != nil {
		in.armChaos(*in.opts.Profile)
	}
	return nil
}

// fireScheduled applies one declarative injection, resolving the target
// by name at fire time (the named machine may already be gone; the
// injection is then a no-op).
func (in *Injector) fireScheduled(f ScheduledFault) {
	in.perf.Enter("fault.inject")
	defer in.perf.Exit()
	switch f.Kind {
	case PMCrash:
		if pm := in.findPM(f.Target); pm != nil {
			in.CrashPM(pm)
		}
	case PMRepair:
		if pm := in.findPM(f.Target); pm != nil {
			in.RepairPM(pm)
		}
	case VMCrash:
		if vm := in.findVM(f.Target); vm != nil {
			in.CrashVM(vm)
		}
	case TrackerHang:
		if tr := in.findTracker(f.Target); tr != nil {
			d := f.Duration
			if d <= 0 {
				d = 45 * time.Second
			}
			in.HangTracker(tr, d)
		}
	case BlockLoss:
		// The declarative form corrupts the first corruptible replica,
		// deterministically.
		in.loseReplica(nil)
	case Straggler:
		if pm := in.findPM(f.Target); pm != nil {
			factor := f.Factor
			if factor <= 1 {
				factor = 3
			}
			d := f.Duration
			if d <= 0 {
				d = 60 * time.Second
			}
			in.SlowPM(pm, factor, d)
		}
	}
}

// armChaos pre-draws per-kind Poisson arrivals up to the horizon. Each
// kind owns an independent rng stream (seed + fixed offset), used both
// for its arrival times here and for its target choices at fire time;
// the engine's deterministic event order keeps the draw sequence stable.
func (in *Injector) armChaos(p Profile) {
	p = p.withDefaults()
	start := in.env.Engine.Now()
	for i, kind := range profileKinds {
		rate := 0.0
		switch kind {
		case PMCrash:
			rate = p.PMCrashPerHour
		case VMCrash:
			rate = p.VMCrashPerHour
		case TrackerHang:
			rate = p.TrackerHangPerHour
		case BlockLoss:
			rate = p.BlockLossPerHour
		case Straggler:
			rate = p.StragglerPerHour
		}
		if rate <= 0 {
			continue
		}
		kind := kind
		rng := rand.New(rand.NewSource(in.opts.Seed + int64(i)*7919))
		at := time.Duration(0)
		for {
			gapHours := -math.Log(1-rng.Float64()) / rate
			at += time.Duration(gapHours * float64(time.Hour))
			if at > p.Horizon {
				break
			}
			in.env.Engine.At(start+at, func() { in.fireChaos(kind, p, rng) })
		}
	}
}

// fireChaos applies one profile-driven injection against a target drawn
// from the kind's rng.
func (in *Injector) fireChaos(kind Kind, p Profile, rng *rand.Rand) {
	in.perf.Enter("fault.inject")
	defer in.perf.Exit()
	switch kind {
	case PMCrash:
		// Never take the last machine: a cluster with nothing left is a
		// different experiment.
		candidates := in.livePMs()
		if len(candidates) <= 1 {
			return
		}
		pm := candidates[rng.Intn(len(candidates))]
		in.CrashPM(pm)
		if p.RepairAfter > 0 {
			in.env.Engine.After(p.RepairAfter, func() { in.RepairPM(pm) })
		}
	case VMCrash:
		candidates := in.liveVMs()
		if len(candidates) <= 2 {
			return // keep a quorum of workers alive
		}
		in.CrashVM(candidates[rng.Intn(len(candidates))])
	case TrackerHang:
		var candidates []*mapred.TaskTracker
		for _, jt := range in.env.JTs {
			for _, tr := range jt.Trackers() {
				if !tr.Lost() && !tr.Hung() {
					candidates = append(candidates, tr)
				}
			}
		}
		if len(candidates) == 0 {
			return
		}
		in.HangTracker(candidates[rng.Intn(len(candidates))], p.HangDuration)
	case BlockLoss:
		in.loseReplica(rng)
	case Straggler:
		candidates := in.livePMs()
		if len(candidates) == 0 {
			return
		}
		in.SlowPM(candidates[rng.Intn(len(candidates))], p.StragglerFactor, p.StragglerDuration)
	}
}

// CrashPM fails a physical machine and propagates the loss through every
// layer in the order recovery requires: jobtrackers first (so re-queued
// tasks cannot land back on the dying machine), then the cluster failure
// itself (killing consumers and destroying VMs, aborting in-flight
// migrations), then the filesystems (pruning dead DataNodes and
// re-replicating what they held). Crashing an already-failed machine is
// a no-op. Returns the merged DFS damage report.
func (in *Injector) CrashPM(pm *cluster.PM) dfs.FailureReport {
	if pm == nil || pm.Failed() {
		return dfs.FailureReport{}
	}
	in.record(PMCrash, pm.Name())
	for _, jt := range in.env.JTs {
		jt.HandleMachineFailure(pm)
	}
	before := in.env.Cluster.VMs()
	_ = pm.Fail()
	// Everything that lost its host — the PM's resident VMs plus any VM
	// caught mid-stop-and-copy migrating away from it — goes to the
	// filesystems as one batch, so no doomed node is picked as a
	// re-replication target.
	affected := []cluster.Node{pm}
	for _, vm := range before {
		if vm.Machine() == nil {
			affected = append(affected, vm)
		}
	}
	var report dfs.FailureReport
	for _, fs := range in.env.FSs {
		r := fs.HandleNodeFailures(affected)
		report.ReReplicated += r.ReReplicated
		report.Lost += r.Lost
	}
	return report
}

// RepairPM powers a failed machine back on. Destroyed VMs stay gone, but
// native trackers on the machine become responsive again (the JobTracker
// health checker restores them once any blacklist hold-off expires) and
// their storage rejoins the DFS as an empty DataNode. Every filesystem
// then re-replicates toward target replication onto the recovered
// capacity. Returns the number of repair copies made.
func (in *Injector) RepairPM(pm *cluster.PM) int {
	if pm == nil || !pm.Failed() {
		return 0
	}
	pm.PowerOn()
	in.record(PMRepair, pm.Name())
	for _, jt := range in.env.JTs {
		for _, tr := range jt.Trackers() {
			if sp, ok := tr.Storage.(*cluster.PM); ok && sp == pm {
				jt.FS().AddDataNode(pm)
			}
		}
	}
	copies := 0
	for _, fs := range in.env.FSs {
		copies += fs.RepairUnderReplicated()
	}
	return copies
}

// CrashVM fails one VM (guest panic): its trackers are declared lost,
// the VM dies with its consumers, and the filesystems prune and repair
// its DataNode. A destroyed VM is a no-op.
func (in *Injector) CrashVM(vm *cluster.VM) dfs.FailureReport {
	if vm == nil || vm.Machine() == nil {
		return dfs.FailureReport{}
	}
	in.record(VMCrash, vm.Name())
	for _, jt := range in.env.JTs {
		jt.HandleNodeLost(vm)
	}
	_ = vm.Fail()
	var report dfs.FailureReport
	for _, fs := range in.env.FSs {
		r := fs.HandleNodeFailure(vm)
		report.ReReplicated += r.ReReplicated
		report.Lost += r.Lost
	}
	return report
}

// HangTracker wedges a TaskTracker daemon for the duration. The
// JobTracker's heartbeat timeout declares it lost and re-executes its
// work; when the hang clears, the tracker heartbeats again and rejoins
// after any blacklist hold-off.
func (in *Injector) HangTracker(tr *mapred.TaskTracker, d time.Duration) {
	if tr == nil || tr.Hung() {
		return
	}
	in.record(TrackerHang, tr.Compute.Name(), trace.F("duration_sec", d.Seconds()))
	tr.SetHung(true)
	in.env.Engine.After(d, func() { tr.SetHung(false) })
}

// SlowPM injects a straggler: the machine runs factor times slower for
// the duration, then recovers (unless a later injection changed the
// factor meanwhile).
func (in *Injector) SlowPM(pm *cluster.PM, factor float64, d time.Duration) {
	if pm == nil || pm.Failed() || factor <= 1 {
		return
	}
	in.record(Straggler, pm.Name(),
		trace.F("factor", factor), trace.F("duration_sec", d.Seconds()))
	pm.SetSlowdown(factor)
	in.env.Engine.After(d, func() {
		if pm.Slowdown() == factor {
			pm.SetSlowdown(1)
		}
	})
}

// loseReplica corrupts one block replica. With an rng the victim is a
// seeded uniform choice over every (block, replica) pair; without one
// (the declarative form) it is the first pair in file/block order.
func (in *Injector) loseReplica(rng *rand.Rand) {
	type victim struct {
		fs *dfs.FileSystem
		b  *dfs.Block
	}
	var victims []victim
	for _, fs := range in.env.FSs {
		for _, f := range fs.Files() {
			for _, b := range f.Blocks {
				if len(b.Replicas) > 0 {
					victims = append(victims, victim{fs, b})
				}
			}
		}
	}
	if len(victims) == 0 {
		return
	}
	idx, ridx := 0, 0
	if rng != nil {
		idx = rng.Intn(len(victims))
		ridx = rng.Intn(len(victims[idx].b.Replicas))
	}
	v := victims[idx]
	in.record(BlockLoss, v.b.ID)
	v.fs.CorruptReplica(v.b, v.b.Replicas[ridx])
}

func (in *Injector) livePMs() []*cluster.PM {
	var out []*cluster.PM
	for _, pm := range in.env.Cluster.PMs() {
		if !pm.Failed() {
			out = append(out, pm)
		}
	}
	return out
}

func (in *Injector) liveVMs() []*cluster.VM {
	var out []*cluster.VM
	for _, vm := range in.env.Cluster.VMs() {
		if vm.Machine() != nil {
			out = append(out, vm)
		}
	}
	return out
}

func (in *Injector) findPM(name string) *cluster.PM {
	for _, pm := range in.env.Cluster.PMs() {
		if pm.Name() == name {
			return pm
		}
	}
	return nil
}

func (in *Injector) findVM(name string) *cluster.VM {
	for _, vm := range in.env.Cluster.VMs() {
		if vm.Name() == name {
			return vm
		}
	}
	return nil
}

func (in *Injector) findTracker(name string) *mapred.TaskTracker {
	for _, jt := range in.env.JTs {
		for _, tr := range jt.Trackers() {
			if tr.Compute.Name() == name {
				return tr
			}
		}
	}
	return nil
}
