package fault

import (
	"fmt"
	"strconv"
	"strings"
	"time"
)

// ParseProfile parses the -faults command-line syntax: a comma-separated
// list of key=value pairs. Rate keys (events per simulated hour) are the
// fault-kind names — pm-crash, vm-crash, tracker-hang, block-loss,
// straggler, rack-crash, power-crash, net-partition — and the tuning
// keys are repair-sec, hang-sec, straggler-sec, straggler-factor,
// partition-heal-sec and horizon-min. Example:
//
//	pm-crash=2,rack-crash=1,net-partition=2,horizon-min=30
func ParseProfile(spec string) (*Profile, error) {
	p := &Profile{}
	for _, tok := range strings.Split(spec, ",") {
		tok = strings.TrimSpace(tok)
		if tok == "" {
			continue
		}
		key, val, ok := strings.Cut(tok, "=")
		if !ok {
			return nil, fmt.Errorf("fault: parse %q: want key=value", tok)
		}
		f, err := strconv.ParseFloat(strings.TrimSpace(val), 64)
		if err != nil {
			return nil, fmt.Errorf("fault: parse %q: %w", tok, err)
		}
		switch strings.TrimSpace(key) {
		case string(PMCrash):
			p.PMCrashPerHour = f
		case string(VMCrash):
			p.VMCrashPerHour = f
		case string(TrackerHang):
			p.TrackerHangPerHour = f
		case string(BlockLoss):
			p.BlockLossPerHour = f
		case string(Straggler):
			p.StragglerPerHour = f
		case string(RackCrash):
			p.RackCrashPerHour = f
		case string(PowerDomainCrash):
			p.PowerDomainCrashPerHour = f
		case string(NetPartition):
			p.NetPartitionPerHour = f
		case "repair-sec":
			p.RepairAfter = time.Duration(f * float64(time.Second))
		case "hang-sec":
			p.HangDuration = time.Duration(f * float64(time.Second))
		case "straggler-sec":
			p.StragglerDuration = time.Duration(f * float64(time.Second))
		case "straggler-factor":
			p.StragglerFactor = f
		case "partition-heal-sec":
			p.PartitionHealAfter = time.Duration(f * float64(time.Second))
		case "horizon-min":
			p.Horizon = time.Duration(f * float64(time.Minute))
		default:
			return nil, fmt.Errorf("fault: unknown key %q (kinds: pm-crash, vm-crash, tracker-hang, block-loss, straggler, rack-crash, power-crash, net-partition; tuning: repair-sec, hang-sec, straggler-sec, straggler-factor, partition-heal-sec, horizon-min)", key)
		}
	}
	return p, nil
}
