package fault_test

import (
	"testing"
	"time"

	"repro/internal/fault"
	"repro/internal/mapred"
	"repro/internal/testbed"
	"repro/internal/workload"
)

// chaosOptions is a moderately hostile profile used by several tests: a
// guaranteed PM crash mid-job plus rate-based chaos of every other kind.
func chaosOptions(seed int64) *fault.Options {
	return &fault.Options{
		Seed: seed,
		Schedule: []fault.ScheduledFault{
			{At: 30 * time.Second, Kind: fault.PMCrash, Target: "pm-1"},
		},
		Profile: &fault.Profile{
			VMCrashPerHour:     4,
			TrackerHangPerHour: 6,
			BlockLossPerHour:   12,
			StragglerPerHour:   6,
			RepairAfter:        90 * time.Second,
			Horizon:            20 * time.Minute,
		},
	}
}

func chaosJobs() []mapred.JobSpec {
	return []mapred.JobSpec{
		workload.Sort().WithInputMB(2048),
		workload.Wcount().WithInputMB(1536),
	}
}

// TestChaosRunSurvives is the headline acceptance check: a chaos run that
// kills a PM mid-job (plus VM crashes, hangs, block loss and stragglers)
// still completes every job, and once the dust settles every surviving
// block is back at target replication.
func TestChaosRunSurvives(t *testing.T) {
	rig, err := testbed.New(testbed.Options{
		PMs: 8, VMsPerPM: 2, Seed: 7, Faults: chaosOptions(99),
	})
	if err != nil {
		t.Fatal(err)
	}
	results, err := rig.RunJobs(chaosJobs())
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 2 {
		t.Fatalf("got %d results, want 2", len(results))
	}
	inj := rig.Faults.Injections()
	if inj[fault.PMCrash] < 1 {
		t.Errorf("no PM crash fired: %s", rig.Faults.Summary())
	}
	if got := rig.FS.UnderReplicated(); got != 0 {
		t.Errorf("%d blocks under-replicated after recovery", got)
	}
}

// TestChaosDeterminism: two rigs with the same seeds produce the same
// injections and bit-identical job completion times.
func TestChaosDeterminism(t *testing.T) {
	run := func() (string, []testbed.JobResult) {
		rig, err := testbed.New(testbed.Options{
			PMs: 8, VMsPerPM: 2, Seed: 7, Faults: chaosOptions(99),
		})
		if err != nil {
			t.Fatal(err)
		}
		results, err := rig.RunJobs(chaosJobs())
		if err != nil {
			t.Fatal(err)
		}
		return rig.Faults.Summary(), results
	}
	sum1, res1 := run()
	sum2, res2 := run()
	if sum1 != sum2 {
		t.Errorf("injection summaries differ:\n  %s\n  %s", sum1, sum2)
	}
	for i := range res1 {
		if res1[i].JCT != res2[i].JCT {
			t.Errorf("%s JCT differs across same-seed runs: %v vs %v",
				res1[i].Name, res1[i].JCT, res2[i].JCT)
		}
	}
}

// TestChaosSeedChangesFaults: a different fault seed draws a different
// chaos sequence (the rates are high enough that collision is implausible).
func TestChaosSeedChangesFaults(t *testing.T) {
	run := func(faultSeed int64) string {
		opts := chaosOptions(faultSeed)
		opts.Schedule = nil // compare only the rate-driven part
		rig, err := testbed.New(testbed.Options{
			PMs: 8, VMsPerPM: 2, Seed: 7, Faults: opts,
		})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := rig.RunJobs(chaosJobs()); err != nil {
			t.Fatal(err)
		}
		return rig.Faults.Summary()
	}
	if a, b := run(99), run(100); a == b {
		t.Errorf("same injection summary %q for different fault seeds", a)
	}
}

// TestScheduledFaults: declarative injections fire at their times against
// their named targets, and repair brings the machine back.
func TestScheduledFaults(t *testing.T) {
	rig, err := testbed.New(testbed.Options{
		PMs: 4, Seed: 11,
		Faults: &fault.Options{
			Seed: 1,
			Schedule: []fault.ScheduledFault{
				{At: 10 * time.Second, Kind: fault.PMCrash, Target: "pm-3"},
				{At: 20 * time.Second, Kind: fault.Straggler, Target: "pm-2", Factor: 4, Duration: 15 * time.Second},
				{At: 60 * time.Second, Kind: fault.PMRepair, Target: "pm-3"},
			},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	rig.Engine.At(12*time.Second, func() {
		if !rig.PMs[3].Failed() {
			t.Error("pm-3 not failed after scheduled crash")
		}
	})
	rig.Engine.At(25*time.Second, func() {
		if got := rig.PMs[2].Slowdown(); got != 4 {
			t.Errorf("pm-2 slowdown = %v during straggler window, want 4", got)
		}
	})
	res, err := rig.RunJob(workload.Sort().WithInputMB(1024))
	if err != nil {
		t.Fatal(err)
	}
	if res.JCT <= 0 {
		t.Fatalf("bad result: %+v", res)
	}
	if rig.PMs[3].Failed() {
		t.Error("pm-3 still failed after scheduled repair")
	}
	if got := rig.PMs[2].Slowdown(); got != 1 {
		t.Errorf("pm-2 slowdown = %v after straggler expired, want 1", got)
	}
	inj := rig.Faults.Injections()
	if inj[fault.PMCrash] != 1 || inj[fault.PMRepair] != 1 || inj[fault.Straggler] != 1 {
		t.Errorf("injections = %s", rig.Faults.Summary())
	}
}

// TestHungTrackerDeclaredLostAndRestored: a wedged TaskTracker misses
// heartbeats, gets declared lost (its work re-executed elsewhere), then
// rejoins once the hang clears — and the job still finishes.
func TestHungTrackerDeclaredLostAndRestored(t *testing.T) {
	rig, err := testbed.New(testbed.Options{PMs: 6, Seed: 21})
	if err != nil {
		t.Fatal(err)
	}
	job, err := rig.JT.Submit(workload.Sort().WithInputMB(4096), nil)
	if err != nil {
		t.Fatal(err)
	}
	tr := rig.JT.Trackers()[0]
	rig.Engine.At(5*time.Second, func() {
		rig.Faults.HangTracker(tr, 60*time.Second)
	})
	sawLost := false
	rig.Engine.At(50*time.Second, func() { sawLost = tr.Lost() })
	rig.Engine.Run()
	if !job.Done() {
		t.Fatal("job did not survive the tracker hang")
	}
	if !sawLost {
		t.Error("hung tracker was never declared lost by the heartbeat timeout")
	}
	if tr.Failures() != 1 {
		t.Errorf("tracker failures = %d, want 1", tr.Failures())
	}
	if tr.Lost() {
		t.Error("tracker not restored after the hang cleared")
	}
}

// TestVMCrashRecovery: crashing a single VM destroys it, but its host
// keeps serving and jobs finish on the survivors.
func TestVMCrashRecovery(t *testing.T) {
	rig, err := testbed.New(testbed.Options{PMs: 4, VMsPerPM: 2, Seed: 23})
	if err != nil {
		t.Fatal(err)
	}
	job, err := rig.JT.Submit(workload.Wcount().WithInputMB(1024), nil)
	if err != nil {
		t.Fatal(err)
	}
	vm := rig.VMs[0]
	rig.Engine.At(8*time.Second, func() { rig.Faults.CrashVM(vm) })
	rig.Engine.Run()
	if !job.Done() {
		t.Fatal("job did not survive the VM crash")
	}
	if vm.Machine() != nil {
		t.Error("crashed VM still has a host")
	}
	if got := rig.FS.UnderReplicated(); got != 0 {
		t.Errorf("%d blocks under-replicated after VM crash recovery", got)
	}
}

func TestParseProfile(t *testing.T) {
	p, err := fault.ParseProfile("pm-crash=2, vm-crash=4,block-loss=6,repair-sec=90,horizon-min=30")
	if err != nil {
		t.Fatal(err)
	}
	if p.PMCrashPerHour != 2 || p.VMCrashPerHour != 4 || p.BlockLossPerHour != 6 {
		t.Errorf("rates: %+v", p)
	}
	if p.RepairAfter != 90*time.Second || p.Horizon != 30*time.Minute {
		t.Errorf("tuning: %+v", p)
	}
	if _, err := fault.ParseProfile("bogus=1"); err == nil {
		t.Error("unknown key accepted")
	}
	if _, err := fault.ParseProfile("pm-crash"); err == nil {
		t.Error("missing value accepted")
	}
}
