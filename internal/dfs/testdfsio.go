package dfs

import (
	"fmt"

	"repro/internal/cluster"
)

// DFSIOResult aggregates a TestDFSIO run the way the Hadoop benchmark
// reports it, matching the two metrics of Figure 1(c).
type DFSIOResult struct {
	// Files is the number of files processed.
	Files int
	// FileSizeMB is the size of each file.
	FileSizeMB float64
	// AvgIORateMBps is the mean of per-file rates ("average IO rate").
	AvgIORateMBps float64
	// ThroughputMBps is total bytes over the sum of per-file processing
	// times ("throughput").
	ThroughputMBps float64
}

// TestDFSIOWrite writes one file per node concurrently and reports the
// aggregate statistics. It runs the simulation to completion.
func TestDFSIOWrite(fs *FileSystem, nodes []cluster.Node, fileSizeMB float64) (DFSIOResult, error) {
	stats := make([]TransferStats, 0, len(nodes))
	for i, n := range nodes {
		name := fmt.Sprintf("/benchmarks/TestDFSIO/write-%d", i)
		err := fs.Write(name, fileSizeMB, n, WriteOptions{}, func(s TransferStats) {
			stats = append(stats, s)
		})
		if err != nil {
			return DFSIOResult{}, err
		}
	}
	fs.engine.Run()
	return summarizeDFSIO(stats, len(nodes), fileSizeMB)
}

// TestDFSIORead reads the files produced by TestDFSIOWrite, one per node,
// and reports aggregate statistics. It runs the simulation to completion.
func TestDFSIORead(fs *FileSystem, nodes []cluster.Node, fileSizeMB float64) (DFSIOResult, error) {
	stats := make([]TransferStats, 0, len(nodes))
	for i, n := range nodes {
		name := fmt.Sprintf("/benchmarks/TestDFSIO/write-%d", i)
		if _, ok := fs.File(name); !ok {
			if _, err := fs.CreateFile(name, fileSizeMB, n); err != nil {
				return DFSIOResult{}, err
			}
		}
		err := fs.Read(name, n, ReadOptions{}, func(s TransferStats) {
			stats = append(stats, s)
		})
		if err != nil {
			return DFSIOResult{}, err
		}
	}
	fs.engine.Run()
	return summarizeDFSIO(stats, len(nodes), fileSizeMB)
}

func summarizeDFSIO(stats []TransferStats, files int, fileSizeMB float64) (DFSIOResult, error) {
	if len(stats) != files {
		return DFSIOResult{}, fmt.Errorf("dfs: TestDFSIO: %d of %d transfers completed", len(stats), files)
	}
	var rateSum, timeSum, bytes float64
	for _, s := range stats {
		rateSum += s.RateMBps
		timeSum += s.Elapsed.Seconds()
		bytes += s.SizeMB
	}
	res := DFSIOResult{Files: files, FileSizeMB: fileSizeMB}
	res.AvgIORateMBps = rateSum / float64(files)
	if timeSum > 0 {
		res.ThroughputMBps = bytes / timeSum
	}
	return res, nil
}
