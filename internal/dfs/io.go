package dfs

import (
	"fmt"
	"time"

	"repro/internal/cluster"
	"repro/internal/resource"
)

// TransferStats reports a completed read or write.
type TransferStats struct {
	// File is the file involved.
	File string
	// SizeMB is the amount of data moved.
	SizeMB float64
	// Elapsed is the transfer's wall time.
	Elapsed time.Duration
	// RateMBps is SizeMB divided by Elapsed.
	RateMBps float64
}

// ReadOptions tune a streaming read.
type ReadOptions struct {
	// RateMBps is the full-speed streaming rate (default 60, a single
	// sequential HDFS stream on the paper's SCSI disks).
	RateMBps float64
	// CPUPerMBps is CPU cost per MB/s of streaming (checksumming and
	// deserialization; default 0.004 cores per MB/s).
	CPUPerMBps float64
}

func (o ReadOptions) withDefaults() ReadOptions {
	if o.RateMBps <= 0 {
		o.RateMBps = 60
	}
	if o.CPUPerMBps <= 0 {
		o.CPUPerMBps = 0.004
	}
	return o
}

// Read streams a whole file to the reader node. Node-local and host-local
// blocks cost disk bandwidth; remote blocks cost network bandwidth on the
// reader and disk bandwidth on the replica holder. onDone receives the
// stats when the stream completes.
func (fs *FileSystem) Read(name string, reader cluster.Node, opts ReadOptions, onDone func(TransferStats)) error {
	f, ok := fs.files[name]
	if !ok {
		return fmt.Errorf("dfs: read %q: not found", name)
	}
	if reader == nil {
		return fmt.Errorf("dfs: read %q: nil reader", name)
	}
	for _, b := range f.Blocks {
		if len(b.Replicas) == 0 {
			return fmt.Errorf("dfs: read %q: block %s has no live replicas", name, b.ID)
		}
	}
	opts = opts.withDefaults()
	nodeLocal, hostLocal, remote, err := fs.LocalityFractions(name, reader)
	if err != nil {
		return err
	}
	localFrac := nodeLocal + hostLocal
	demand := resource.NewVector(
		opts.CPUPerMBps*opts.RateMBps,
		64, // stream buffer
		opts.RateMBps*localFrac,
		opts.RateMBps*remote,
	)
	start := fs.engine.Now()
	main := &cluster.Consumer{
		Name:   fmt.Sprintf("dfs-read:%s@%s", name, reader.Name()),
		Demand: demand,
		Work:   f.SizeMB / opts.RateMBps,
	}
	main.OnComplete = func() {
		if onDone == nil {
			return
		}
		elapsed := fs.engine.Now() - start
		rate := 0.0
		if s := elapsed.Seconds(); s > 0 {
			rate = f.SizeMB / s
		}
		onDone(TransferStats{File: name, SizeMB: f.SizeMB, Elapsed: elapsed, RateMBps: rate})
	}
	// Remote blocks also load the disks of the replica holders.
	if remote > 0 {
		fs.addRemoteServeLoad(f, reader, opts.RateMBps*remote, f.SizeMB*remote/opts.RateMBps/float64(maxInt(1, len(fs.datanodes)-1)))
	}
	return reader.Start(main)
}

// addRemoteServeLoad spreads server-side disk demand over the replica
// holders of f's non-local blocks for roughly the duration of the stream.
func (fs *FileSystem) addRemoteServeLoad(f *File, reader cluster.Node, totalRate, perNodeWork float64) {
	holders := make(map[cluster.Node]struct{})
	for _, b := range f.Blocks {
		if fs.BlockLocality(b, reader) != Remote {
			continue
		}
		holders[b.Replicas[0].node] = struct{}{}
	}
	if len(holders) == 0 {
		return
	}
	rate := totalRate / float64(len(holders))
	for n := range holders {
		serve := &cluster.Consumer{
			Name:   fmt.Sprintf("dfs-serve:%s@%s", f.Name, n.Name()),
			Demand: resource.NewVector(0.01, 0, rate, rate),
			Work:   perNodeWork,
		}
		// Server-side load is best-effort: if it cannot start (node
		// powered off mid-stream) the transfer still completes.
		_ = n.Start(serve)
	}
}

// WriteOptions tune a streaming write.
type WriteOptions struct {
	// RateMBps is the full-speed write rate (default 45: HDFS writes are
	// slower than reads due to the replication pipeline).
	RateMBps float64
	// CPUPerMBps is CPU cost per MB/s of streaming (default 0.005).
	CPUPerMBps float64
}

func (o WriteOptions) withDefaults() WriteOptions {
	if o.RateMBps <= 0 {
		o.RateMBps = 45
	}
	if o.CPUPerMBps <= 0 {
		o.CPUPerMBps = 0.005
	}
	return o
}

// Write creates a file and streams it from the writer node through the
// replication pipeline: local disk for the first replica, network plus
// remote disk for the others. onDone receives stats when the pipeline
// drains.
func (fs *FileSystem) Write(name string, sizeMB float64, writer cluster.Node, opts WriteOptions, onDone func(TransferStats)) error {
	if writer == nil {
		return fmt.Errorf("dfs: write %q: nil writer", name)
	}
	opts = opts.withDefaults()
	f, err := fs.CreateFile(name, sizeMB, writer)
	if err != nil {
		return err
	}
	// Fraction of replica traffic leaving the writer: every replica
	// beyond a writer-local first copy crosses the network.
	extraReplicas := float64(fs.cfg.Replication - 1)
	if _, isDN := fs.byNode[writer]; !isDN {
		extraReplicas = float64(fs.cfg.Replication)
	}
	localDisk := opts.RateMBps
	if _, isDN := fs.byNode[writer]; !isDN {
		localDisk = 0
	}
	demand := resource.NewVector(
		opts.CPUPerMBps*opts.RateMBps,
		64,
		localDisk,
		opts.RateMBps*extraReplicas,
	)
	start := fs.engine.Now()
	main := &cluster.Consumer{
		Name:   fmt.Sprintf("dfs-write:%s@%s", name, writer.Name()),
		Demand: demand,
		Work:   sizeMB / opts.RateMBps,
	}
	main.OnComplete = func() {
		if onDone == nil {
			return
		}
		elapsed := fs.engine.Now() - start
		rate := 0.0
		if s := elapsed.Seconds(); s > 0 {
			rate = sizeMB / s
		}
		onDone(TransferStats{File: name, SizeMB: sizeMB, Elapsed: elapsed, RateMBps: rate})
	}
	// Remote replicas absorb disk bandwidth on their holders.
	holders := make(map[cluster.Node]struct{})
	for _, b := range f.Blocks {
		for _, d := range b.Replicas {
			if d.node != writer {
				holders[d.node] = struct{}{}
			}
		}
	}
	if len(holders) > 0 {
		rate := opts.RateMBps * extraReplicas / float64(len(holders))
		perNodeWork := sizeMB * extraReplicas / opts.RateMBps / float64(len(holders))
		for n := range holders {
			serve := &cluster.Consumer{
				Name:   fmt.Sprintf("dfs-replica:%s@%s", name, n.Name()),
				Demand: resource.NewVector(0.01, 0, rate, rate),
				Work:   perNodeWork,
			}
			_ = n.Start(serve)
		}
	}
	return writer.Start(main)
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// resourceVectorForCopy is the demand of a background re-replication
// stream on its destination node.
func resourceVectorForCopy(rate float64) resource.Vector {
	return resource.NewVector(0.02, 32, rate, rate)
}
