package dfs

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/cluster"
	"repro/internal/sim"
)

func testFS(t *testing.T, nPMs, vmsPerPM int) (*sim.Engine, *cluster.Cluster, *FileSystem, []cluster.Node) {
	t.Helper()
	engine := sim.New()
	c := cluster.New(engine, cluster.DefaultConfig(), 42)
	pms := c.AddPMs("pm", nPMs)
	fs := New(engine, Config{}, 42)
	var nodes []cluster.Node
	if vmsPerPM == 0 {
		for _, pm := range pms {
			nodes = append(nodes, pm)
		}
	} else {
		vms, err := c.SpreadVMs("vm", nPMs*vmsPerPM, pms, 1, 1024)
		if err != nil {
			t.Fatal(err)
		}
		for _, vm := range vms {
			nodes = append(nodes, vm)
		}
	}
	for _, n := range nodes {
		fs.AddDataNode(n)
	}
	return engine, c, fs, nodes
}

func TestCreateFileBlocksAndReplicas(t *testing.T) {
	_, _, fs, nodes := testFS(t, 4, 0)
	f, err := fs.CreateFile("/data/in", 200, nodes[0])
	if err != nil {
		t.Fatal(err)
	}
	// 200 MB / 64 MB blocks = 4 blocks (64+64+64+8).
	if len(f.Blocks) != 4 {
		t.Fatalf("got %d blocks, want 4", len(f.Blocks))
	}
	if got := f.Blocks[3].SizeMB; got != 8 {
		t.Errorf("last block = %v MB, want 8", got)
	}
	for i, b := range f.Blocks {
		if len(b.Replicas) != 2 {
			t.Errorf("block %d has %d replicas, want 2", i, len(b.Replicas))
		}
		if b.Replicas[0].Node() != nodes[0] {
			t.Errorf("block %d first replica not on writer", i)
		}
		if b.Replicas[0] == b.Replicas[1] {
			t.Errorf("block %d replicas on the same DataNode", i)
		}
	}
	if _, err := fs.CreateFile("/data/in", 10, nil); err == nil {
		t.Error("duplicate CreateFile succeeded")
	}
	if _, err := fs.CreateFile("/data/neg", -1, nil); err == nil {
		t.Error("negative-size CreateFile succeeded")
	}
}

func TestDeleteFreesSpace(t *testing.T) {
	_, _, fs, nodes := testFS(t, 4, 0)
	if _, err := fs.CreateFile("/f", 128, nodes[0]); err != nil {
		t.Fatal(err)
	}
	var used float64
	for _, d := range fs.DataNodes() {
		used += d.UsedMB()
	}
	if used != 256 { // 128 MB x 2 replicas
		t.Errorf("used = %v MB, want 256", used)
	}
	if err := fs.Delete("/f"); err != nil {
		t.Fatal(err)
	}
	for _, d := range fs.DataNodes() {
		if d.UsedMB() != 0 || d.BlockCount() != 0 {
			t.Errorf("DataNode %s not empty after delete", d.Node().Name())
		}
	}
	if err := fs.Delete("/f"); err == nil {
		t.Error("double delete succeeded")
	}
}

func TestLocalityLevels(t *testing.T) {
	engine := sim.New()
	c := cluster.New(engine, cluster.DefaultConfig(), 1)
	pm0 := c.AddPM("pm-0")
	pm1 := c.AddPM("pm-1")
	vmA, err := c.AddVM("vm-a", pm0, 1, 1024)
	if err != nil {
		t.Fatal(err)
	}
	vmB, err := c.AddVM("vm-b", pm0, 1, 1024)
	if err != nil {
		t.Fatal(err)
	}
	vmC, err := c.AddVM("vm-c", pm1, 1, 1024)
	if err != nil {
		t.Fatal(err)
	}
	fs := New(engine, Config{Replication: 1}, 1)
	fs.AddDataNode(vmA)
	f, err := fs.CreateFile("/f", 10, vmA)
	if err != nil {
		t.Fatal(err)
	}
	b := f.Blocks[0]
	if got := fs.BlockLocality(b, vmA); got != NodeLocal {
		t.Errorf("same VM locality = %v, want node-local", got)
	}
	if got := fs.BlockLocality(b, vmB); got != HostLocal {
		t.Errorf("same host locality = %v, want host-local", got)
	}
	if got := fs.BlockLocality(b, vmC); got != Remote {
		t.Errorf("cross host locality = %v, want remote", got)
	}
}

func TestLocalityFractions(t *testing.T) {
	_, _, fs, nodes := testFS(t, 8, 0)
	if _, err := fs.CreateFile("/big", 64*32, nil); err != nil {
		t.Fatal(err)
	}
	nl, hl, rem, err := fs.LocalityFractions("/big", nodes[0])
	if err != nil {
		t.Fatal(err)
	}
	if sum := nl + hl + rem; math.Abs(sum-1) > 1e-9 {
		t.Errorf("fractions sum to %v, want 1", sum)
	}
	if nl == 0 {
		t.Error("no node-local blocks across 32 blocks x 2 replicas on 8 nodes is vanishingly unlikely")
	}
	if _, _, _, err := fs.LocalityFractions("/missing", nodes[0]); err == nil {
		t.Error("missing file succeeded")
	}
}

func TestReadCompletesAndReportsRate(t *testing.T) {
	engine, _, fs, nodes := testFS(t, 4, 0)
	if _, err := fs.CreateFile("/in", 600, nodes[0]); err != nil {
		t.Fatal(err)
	}
	var got TransferStats
	err := fs.Read("/in", nodes[0], ReadOptions{}, func(s TransferStats) { got = s })
	if err != nil {
		t.Fatal(err)
	}
	engine.Run()
	if got.SizeMB != 600 {
		t.Fatalf("read %v MB, want 600 (stats: %+v)", got.SizeMB, got)
	}
	// Mostly local read at default 60 MB/s: elapsed ≥ 10s; rate <= 60.
	if got.RateMBps <= 0 || got.RateMBps > 60.5 {
		t.Errorf("rate = %v MB/s, want (0, 60]", got.RateMBps)
	}
}

func TestVirtualReadSlowerThanNative(t *testing.T) {
	run := func(vmsPerPM int) float64 {
		engine, _, fs, nodes := testFS(t, 4, vmsPerPM)
		if _, err := fs.CreateFile("/in", 600, nodes[0]); err != nil {
			t.Fatal(err)
		}
		var rate float64
		err := fs.Read("/in", nodes[0], ReadOptions{RateMBps: 90}, func(s TransferStats) { rate = s.RateMBps })
		if err != nil {
			t.Fatal(err)
		}
		engine.Run()
		return rate
	}
	native := run(0)
	virtual := run(2)
	if virtual >= native {
		t.Errorf("virtual read rate %v not below native %v", virtual, native)
	}
}

func TestWriteSlowerThanRead(t *testing.T) {
	engine, _, fs, nodes := testFS(t, 4, 0)
	var w TransferStats
	if err := fs.Write("/out", 450, nodes[0], WriteOptions{}, func(s TransferStats) { w = s }); err != nil {
		t.Fatal(err)
	}
	engine.Run()
	if w.SizeMB != 450 {
		t.Fatalf("write incomplete: %+v", w)
	}
	var r TransferStats
	if err := fs.Read("/out", nodes[0], ReadOptions{}, func(s TransferStats) { r = s }); err != nil {
		t.Fatal(err)
	}
	engine.Run()
	if w.RateMBps >= r.RateMBps {
		t.Errorf("write rate %v not below read rate %v", w.RateMBps, r.RateMBps)
	}
}

func TestReadErrors(t *testing.T) {
	_, _, fs, nodes := testFS(t, 2, 0)
	if err := fs.Read("/nope", nodes[0], ReadOptions{}, nil); err == nil {
		t.Error("read of missing file succeeded")
	}
	if _, err := fs.CreateFile("/f", 10, nil); err != nil {
		t.Fatal(err)
	}
	if err := fs.Read("/f", nil, ReadOptions{}, nil); err == nil {
		t.Error("nil reader succeeded")
	}
	if err := fs.Write("/w", 10, nil, WriteOptions{}, nil); err == nil {
		t.Error("nil writer succeeded")
	}
}

func TestTestDFSIO(t *testing.T) {
	_, _, fs, nodes := testFS(t, 4, 0)
	wr, err := TestDFSIOWrite(fs, nodes, 256)
	if err != nil {
		t.Fatal(err)
	}
	if wr.Files != 4 || wr.AvgIORateMBps <= 0 || wr.ThroughputMBps <= 0 {
		t.Errorf("write result: %+v", wr)
	}
	rd, err := TestDFSIORead(fs, nodes, 256)
	if err != nil {
		t.Fatal(err)
	}
	if rd.AvgIORateMBps <= wr.AvgIORateMBps {
		t.Errorf("read rate %v not above write rate %v", rd.AvgIORateMBps, wr.AvgIORateMBps)
	}
	// Throughput cannot exceed the average IO rate definitionally here
	// (sum-of-times denominator), and both are bounded by the stream rate.
	if rd.ThroughputMBps > rd.AvgIORateMBps+1e-9 {
		t.Errorf("throughput %v exceeds avg IO rate %v", rd.ThroughputMBps, rd.AvgIORateMBps)
	}
}

func TestAddDataNodeIdempotent(t *testing.T) {
	_, _, fs, nodes := testFS(t, 2, 0)
	before := len(fs.DataNodes())
	fs.AddDataNode(nodes[0])
	if got := len(fs.DataNodes()); got != before {
		t.Errorf("duplicate AddDataNode grew the set to %d", got)
	}
}

// Property: replica placement never exceeds the DataNode count, never
// duplicates a DataNode within a block, and block sizes sum to the file
// size.
func TestPlacementInvariants(t *testing.T) {
	f := func(sizeRaw uint16, nNodes uint8) bool {
		size := float64(sizeRaw%4096) + 1
		n := int(nNodes%12) + 1
		engine := sim.New()
		c := cluster.New(engine, cluster.DefaultConfig(), int64(nNodes))
		pms := c.AddPMs("pm", n)
		fs := New(engine, Config{}, int64(sizeRaw))
		for _, pm := range pms {
			fs.AddDataNode(pm)
		}
		file, err := fs.CreateFile("/f", size, pms[0])
		if err != nil {
			return false
		}
		var total float64
		for _, b := range file.Blocks {
			total += b.SizeMB
			if len(b.Replicas) > n || len(b.Replicas) == 0 {
				return false
			}
			seen := make(map[*DataNode]struct{})
			for _, r := range b.Replicas {
				if _, dup := seen[r]; dup {
					return false
				}
				seen[r] = struct{}{}
			}
		}
		return math.Abs(total-size) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestReplicasPreferDistinctMachines(t *testing.T) {
	// 4 PMs x 2 VMs: with 2-way replication every block must span two
	// physical machines, so one server failure never loses data.
	_, _, fs, _ := testFS(t, 4, 2)
	f, err := fs.CreateFile("/diverse", 64*20, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i, b := range f.Blocks {
		if len(b.Replicas) != 2 {
			t.Fatalf("block %d has %d replicas", i, len(b.Replicas))
		}
		if b.Replicas[0].Node().Machine() == b.Replicas[1].Node().Machine() {
			t.Errorf("block %d replicas share machine %s", i, b.Replicas[0].Node().Machine().Name())
		}
	}
}

func TestHandleNodeFailuresBatch(t *testing.T) {
	engine, c, fs, nodes := testFS(t, 6, 2)
	_ = engine
	if _, err := fs.CreateFile("/f", 64*30, nil); err != nil {
		t.Fatal(err)
	}
	// Fail one machine's two VMs as a batch: nothing may be lost, and
	// re-replication must not target the dead nodes.
	pm := c.PMs()[0]
	var affected []cluster.Node
	for _, n := range nodes {
		if n.Machine() == pm {
			affected = append(affected, n)
		}
	}
	if len(affected) != 2 {
		t.Fatalf("expected 2 nodes on %s, got %d", pm.Name(), len(affected))
	}
	report := fs.HandleNodeFailures(affected)
	if report.Lost != 0 {
		t.Errorf("lost %d blocks despite machine-diverse replication", report.Lost)
	}
	if report.ReReplicated == 0 {
		t.Error("no re-replication after losing two DataNodes")
	}
	for _, d := range fs.DataNodes() {
		if d.Node().Machine() == pm {
			t.Error("dead DataNode still registered")
		}
	}
	f, _ := fs.File("/f")
	for i, b := range f.Blocks {
		for _, r := range b.Replicas {
			if r.Node().Machine() == pm {
				t.Errorf("block %d still has a replica on the failed machine", i)
			}
		}
	}
	// Unknown node: a no-op.
	if rep := fs.HandleNodeFailure(nodes[3]); rep.Lost != 0 {
		t.Errorf("second failure lost data: %+v", rep)
	}
}

func TestTotalReplicaLossReported(t *testing.T) {
	// Replication 1: failing the only holder loses the block.
	engine := sim.New()
	c := cluster.New(engine, cluster.DefaultConfig(), 1)
	pms := c.AddPMs("pm", 2)
	fs := New(engine, Config{Replication: 1}, 1)
	for _, pm := range pms {
		fs.AddDataNode(pm)
	}
	if _, err := fs.CreateFile("/single", 64, pms[0]); err != nil {
		t.Fatal(err)
	}
	report := fs.HandleNodeFailure(pms[0])
	if report.Lost != 1 {
		t.Errorf("Lost = %d, want 1", report.Lost)
	}
}

func TestReReplicationAndConcurrentReadSurviveNodeFailure(t *testing.T) {
	// S4: a node holding replicas dies mid-read. The in-flight read must
	// finish from the surviving replicas, and repair must bring every
	// block back to target replication without using the dead node.
	engine, c, fs, nodes := testFS(t, 6, 0)
	if _, err := fs.CreateFile("/live", 64*10, nodes[0]); err != nil {
		t.Fatal(err)
	}
	var stats *TransferStats
	if err := fs.Read("/live", nodes[5], ReadOptions{}, func(s TransferStats) { stats = &s }); err != nil {
		t.Fatal(err)
	}
	failed := c.PMs()[0] // the writer: first replica of every block
	engine.AfterSeconds(2, func() {
		_ = failed.Fail()
		report := fs.HandleNodeFailure(failed)
		if report.Lost != 0 {
			t.Errorf("lost %d blocks despite a surviving replica each", report.Lost)
		}
		if report.ReReplicated == 0 {
			t.Error("no re-replication after losing the writer's DataNode")
		}
	})
	engine.Run()
	if stats == nil {
		t.Fatal("concurrent read never completed after the holder failure")
	}
	if got := fs.UnderReplicated(); got != 0 {
		t.Errorf("%d blocks still under-replicated after repair", got)
	}
	f, _ := fs.File("/live")
	for i, b := range f.Blocks {
		if len(b.Replicas) != fs.TargetReplication() {
			t.Errorf("block %d has %d replicas, want %d", i, len(b.Replicas), fs.TargetReplication())
		}
		for _, r := range b.Replicas {
			if r.Node().Machine() == failed {
				t.Errorf("block %d repaired onto the failed machine", i)
			}
		}
	}
}

func TestReadFailsCleanlyWhenAllReplicasGone(t *testing.T) {
	engine := sim.New()
	c := cluster.New(engine, cluster.DefaultConfig(), 9)
	pms := c.AddPMs("pm", 3)
	fs := New(engine, Config{Replication: 1}, 9)
	for _, pm := range pms {
		fs.AddDataNode(pm)
	}
	if _, err := fs.CreateFile("/fragile", 64, pms[0]); err != nil {
		t.Fatal(err)
	}
	if report := fs.HandleNodeFailure(pms[0]); report.Lost != 1 {
		t.Fatalf("Lost = %d, want 1", report.Lost)
	}
	if err := fs.Read("/fragile", pms[1], ReadOptions{}, nil); err == nil {
		t.Error("reading a file with a fully-lost block succeeded")
	}
	if got := fs.LostBlocks(); got != 1 {
		t.Errorf("LostBlocks = %d, want 1", got)
	}
}
