// Package dfs simulates an HDFS-like distributed filesystem: a namespace
// of files split into fixed-size blocks, replicated across DataNodes that
// live on cluster nodes. Reads and writes become resource consumers on
// the involved nodes, so DFS traffic contends with MapReduce tasks and
// interactive services exactly as on the paper's testbed. The package
// also provides the TestDFSIO benchmark used for Figure 1(c).
package dfs

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"repro/internal/cluster"
	"repro/internal/perfstat"
	"repro/internal/sim"
	"repro/internal/trace"
)

// Config parameterizes the filesystem. Zero values take the Hadoop v0.22
// defaults used in the paper (64 MB blocks, 2 replicas).
type Config struct {
	// BlockMB is the block size.
	BlockMB float64
	// Replication is the number of replicas per block.
	Replication int
}

func (c Config) withDefaults() Config {
	if c.BlockMB <= 0 {
		c.BlockMB = 64
	}
	if c.Replication <= 0 {
		c.Replication = 2
	}
	return c
}

// DataNode stores block replicas on a cluster node.
type DataNode struct {
	node   cluster.Node
	blocks map[string]struct{}
	usedMB float64
}

// Node returns the cluster node backing this DataNode.
func (d *DataNode) Node() cluster.Node { return d.node }

// UsedMB returns the bytes stored.
func (d *DataNode) UsedMB() float64 { return d.usedMB }

// BlockCount returns the number of replicas resident.
func (d *DataNode) BlockCount() int { return len(d.blocks) }

// Block is one block of a file.
type Block struct {
	// ID is unique within the filesystem.
	ID string
	// SizeMB is the block's size (the last block may be short).
	SizeMB float64
	// Replicas are the DataNodes holding a copy.
	Replicas []*DataNode
}

// File is a named sequence of blocks.
type File struct {
	// Name is the file's path.
	Name string
	// SizeMB is the total size.
	SizeMB float64
	// Blocks lists the file's blocks in order.
	Blocks []*Block
}

// FileSystem is the NameNode: namespace plus block placement.
type FileSystem struct {
	engine    *sim.Engine
	cfg       Config
	rng       *rand.Rand
	datanodes []*DataNode
	byNode    map[cluster.Node]*DataNode
	files     map[string]*File
	nextBlock int

	// pool is the placement sampling pool: the same DataNodes as
	// datanodes, but in an order placeReplicas is free to permute so a
	// draw window can exclude ineligible nodes by swapping them past the
	// window edge instead of rejection-sampling around them. poolPos
	// tracks each node's current pool index.
	pool    []*DataNode
	poolPos map[*DataNode]int

	tracer *trace.Tracer
	perf   *perfstat.Stats

	// Cached metric handles; nil (a no-op) until SetTrace installs a
	// registry.
	mReadNodeLocal     *trace.Counter
	mReadHostLocal     *trace.Counter
	mReadRemote        *trace.Counter
	mReReplications    *trace.Counter
	mBlocksLost        *trace.Counter
	mBlocksRestored    *trace.Counter
	mReplicasCorrupted *trace.Counter
}

// New creates an empty filesystem on the given engine.
func New(engine *sim.Engine, cfg Config, seed int64) *FileSystem {
	return &FileSystem{
		engine:  engine,
		cfg:     cfg.withDefaults(),
		rng:     rand.New(rand.NewSource(seed)),
		byNode:  make(map[cluster.Node]*DataNode),
		files:   make(map[string]*File),
		poolPos: make(map[*DataNode]int),
	}
}

// Config returns the effective configuration.
func (fs *FileSystem) Config() Config { return fs.cfg }

// SetTrace installs a tracer and metrics registry. Either may be nil;
// instrumentation is then a no-op.
func (fs *FileSystem) SetTrace(tr *trace.Tracer, reg *trace.Registry) {
	fs.tracer = tr
	fs.mReadNodeLocal = reg.Counter("dfs.reads.node_local")
	fs.mReadHostLocal = reg.Counter("dfs.reads.host_local")
	fs.mReadRemote = reg.Counter("dfs.reads.remote")
	fs.mReReplications = reg.Counter("dfs.blocks.rereplicated")
	fs.mBlocksLost = reg.Counter("dfs.blocks.lost")
	fs.mBlocksRestored = reg.Counter("dfs.blocks.restored")
	fs.mReplicasCorrupted = reg.Counter("dfs.replicas.corrupted")
}

// SetPerf installs a performance-attribution collector; block placement
// and repair work is then counted and timed. A nil collector keeps the
// instrumentation off.
func (fs *FileSystem) SetPerf(ps *perfstat.Stats) { fs.perf = ps }

// CountRead records a block read at the given locality in the metrics
// registry and, when a tracer is installed, as an instant event on the
// reader's track. Readers (the MapReduce layer) call it when they
// resolve a block's locality for an actual read.
func (fs *FileSystem) CountRead(b *Block, reader cluster.Node, loc Locality) {
	switch loc {
	case NodeLocal:
		fs.mReadNodeLocal.Inc()
	case HostLocal:
		fs.mReadHostLocal.Inc()
	default:
		fs.mReadRemote.Inc()
	}
	if fs.tracer != nil && b != nil && reader != nil {
		fs.tracer.Instant(reader.Name(), "dfs", "block-read",
			trace.S("block", b.ID),
			trace.S("locality", loc.String()),
			trace.F("size_mb", b.SizeMB))
	}
}

// AddDataNode registers a cluster node as block storage. Adding the same
// node twice returns the existing DataNode.
func (fs *FileSystem) AddDataNode(n cluster.Node) *DataNode {
	if d, ok := fs.byNode[n]; ok {
		return d
	}
	d := &DataNode{node: n, blocks: make(map[string]struct{})}
	fs.datanodes = append(fs.datanodes, d)
	fs.byNode[n] = d
	fs.poolPos[d] = len(fs.pool)
	fs.pool = append(fs.pool, d)
	return d
}

// swapPool exchanges two pool slots, keeping poolPos in sync.
func (fs *FileSystem) swapPool(i, j int) {
	if i == j {
		return
	}
	fs.pool[i], fs.pool[j] = fs.pool[j], fs.pool[i]
	fs.poolPos[fs.pool[i]] = i
	fs.poolPos[fs.pool[j]] = j
}

// DataNodes returns the registered DataNodes.
func (fs *FileSystem) DataNodes() []*DataNode {
	out := make([]*DataNode, len(fs.datanodes))
	copy(out, fs.datanodes)
	return out
}

// File looks up a file by name.
func (fs *FileSystem) File(name string) (*File, bool) {
	f, ok := fs.files[name]
	return f, ok
}

// CreateFile lays out a file's blocks and replicas instantly, without
// simulating the write traffic. Workload setup uses it to pre-load input
// data sets, mirroring how the paper's inputs exist in HDFS before the
// measured runs begin.
func (fs *FileSystem) CreateFile(name string, sizeMB float64, preferred cluster.Node) (*File, error) {
	if _, exists := fs.files[name]; exists {
		return nil, fmt.Errorf("dfs: file %q already exists", name)
	}
	if sizeMB <= 0 {
		return nil, fmt.Errorf("dfs: file %q: size must be positive", name)
	}
	if len(fs.datanodes) == 0 {
		return nil, fmt.Errorf("dfs: no DataNodes registered")
	}
	f := &File{Name: name, SizeMB: sizeMB}
	fs.perf.Enter("dfs.placement")
	defer fs.perf.Exit()
	remaining := sizeMB
	for remaining > 0 {
		size := math.Min(fs.cfg.BlockMB, remaining)
		remaining -= size
		b := &Block{
			ID:     fmt.Sprintf("blk-%d", fs.nextBlock),
			SizeMB: size,
		}
		fs.nextBlock++
		b.Replicas = fs.placeReplicas(preferred)
		for _, d := range b.Replicas {
			d.blocks[b.ID] = struct{}{}
			d.usedMB += size
		}
		f.Blocks = append(f.Blocks, b)
	}
	fs.files[name] = f
	return f, nil
}

// Delete removes a file and frees its replicas.
func (fs *FileSystem) Delete(name string) error {
	f, ok := fs.files[name]
	if !ok {
		return fmt.Errorf("dfs: file %q not found", name)
	}
	for _, b := range f.Blocks {
		for _, d := range b.Replicas {
			if _, has := d.blocks[b.ID]; has {
				delete(d.blocks, b.ID)
				d.usedMB -= b.SizeMB
			}
		}
	}
	delete(fs.files, name)
	return nil
}

// placeReplicas implements the HDFS policy: first replica on the
// writer's DataNode when it is one, remaining replicas on randomly chosen
// DataNodes — preferring distinct racks when the datanodes span more than
// one (Hadoop's rack-aware placement, so a rack switch or PDU loss cannot
// take out every copy), then distinct physical machines, falling back to
// merely distinct DataNodes when the cluster is too small for diversity.
// DataNodes isolated by a network partition are never eligible: the
// NameNode cannot reach them.
//
// Sampling draws from the shared pool through a shrinking window rather
// than rejection-sampling the full fleet: every draw either places a
// replica or permanently narrows the window (isolated or already-used
// nodes leave it for the rest of the block, diversity violators for the
// rest of the pass), so draws per block stay near the replication factor
// instead of scaling with fleet size. Window layout during a pass:
// [0, limit) eligible, [limit, hard) excluded this pass only,
// [hard, len) excluded for the whole block.
func (fs *FileSystem) placeReplicas(preferred cluster.Node) []*DataNode {
	if fs.perf != nil {
		fs.perf.C.DFSBlocksPlaced++
	}
	want := fs.cfg.Replication
	if want > len(fs.datanodes) {
		want = len(fs.datanodes)
	}
	chosen := make([]*DataNode, 0, want)
	usedMachines := make(map[*cluster.PM]struct{}, want)
	usedRacks := make(map[string]struct{}, want)
	hard := len(fs.pool)
	limit := hard
	add := func(d *DataNode) {
		chosen = append(chosen, d)
		usedMachines[d.node.Machine()] = struct{}{}
		usedRacks[nodeRack(d)] = struct{}{}
		if j := fs.poolPos[d]; j < hard {
			if j < limit {
				fs.swapPool(j, limit-1)
				limit--
				j = limit
			}
			fs.swapPool(j, hard-1)
			hard--
		}
	}
	if preferred != nil {
		if d, ok := fs.byNode[preferred]; ok {
			add(d)
		}
	}
	// Passes from strictest to loosest. The rack-diverse pass only exists
	// when the datanodes actually span racks, so clusters without an
	// assigned topology skip straight to machine diversity.
	type placePass struct{ machineDiverse, rackDiverse bool }
	passes := []placePass{{true, false}, {false, false}}
	if fs.spansRacks() {
		passes = []placePass{{true, true}, {true, false}, {false, false}}
	}
	for _, pass := range passes {
		limit = hard
		for len(chosen) < want && limit > 0 {
			if fs.perf != nil {
				fs.perf.C.DFSPlacementDraws++
			}
			j := limit - 1 - fs.rng.Intn(limit)
			d := fs.pool[j]
			if nodeIsolated(d) {
				// Unreachable for every pass of this block.
				fs.swapPool(j, limit-1)
				limit--
				fs.swapPool(limit, hard-1)
				hard--
				continue
			}
			if pass.machineDiverse {
				if _, dup := usedMachines[d.node.Machine()]; dup {
					fs.swapPool(j, limit-1)
					limit--
					continue
				}
			}
			if pass.rackDiverse {
				if _, dup := usedRacks[nodeRack(d)]; dup {
					fs.swapPool(j, limit-1)
					limit--
					continue
				}
			}
			add(d)
		}
	}
	return chosen
}

// nodeRack is the rack label of the machine behind a DataNode ("" when
// no topology was assigned or the machine is gone).
func nodeRack(d *DataNode) string {
	if pm := d.node.Machine(); pm != nil {
		return pm.Rack()
	}
	return ""
}

// nodeIsolated reports whether a network partition cuts the DataNode's
// machine off from the NameNode.
func nodeIsolated(d *DataNode) bool {
	pm := d.node.Machine()
	return pm != nil && pm.Isolated()
}

// spansRacks reports whether the registered DataNodes sit in more than
// one rack — the condition under which rack-diverse placement engages.
func (fs *FileSystem) spansRacks() bool {
	first := ""
	seen := false
	for _, d := range fs.datanodes {
		r := nodeRack(d)
		if !seen {
			first, seen = r, true
			continue
		}
		if r != first {
			return true
		}
	}
	return false
}

// FailureReport summarizes the namespace damage after a DataNode loss.
type FailureReport struct {
	// ReReplicated counts blocks that lost one replica and were copied
	// to a new holder.
	ReReplicated int
	// Lost counts blocks whose every replica was on failed nodes; their
	// files are unreadable.
	Lost int
}

// HandleNodeFailure removes the DataNode on n from the namespace and
// repairs the damage; see HandleNodeFailures.
func (fs *FileSystem) HandleNodeFailure(n cluster.Node) FailureReport {
	return fs.HandleNodeFailures([]cluster.Node{n})
}

// HandleNodeFailures removes the DataNodes on every given node from the
// namespace, then re-replicates blocks that lost replicas onto surviving
// DataNodes (charging best-effort background copy traffic to the new
// holders, as the NameNode's re-replication queue would), and reports
// blocks whose last replica died. Correlated failures — a physical
// machine taking all of its VMs down — must be passed as one batch so no
// doomed node is chosen as a re-replication target.
func (fs *FileSystem) HandleNodeFailures(nodes []cluster.Node) FailureReport {
	failedSet := make(map[*DataNode]struct{}, len(nodes))
	for _, n := range nodes {
		failed, ok := fs.byNode[n]
		if !ok {
			continue
		}
		failedSet[failed] = struct{}{}
		delete(fs.byNode, n)
		for i, d := range fs.datanodes {
			if d == failed {
				fs.datanodes = append(fs.datanodes[:i], fs.datanodes[i+1:]...)
				break
			}
		}
	}
	if len(failedSet) == 0 {
		return FailureReport{}
	}

	var report FailureReport
	// Walk files in name order: map iteration order would randomize the
	// rng draw sequence (and thus replica placement) across runs.
	names := make([]string, 0, len(fs.files))
	for name := range fs.files {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		f := fs.files[name]
		for _, b := range f.Blocks {
			kept := b.Replicas[:0]
			lostOne := false
			for _, r := range b.Replicas {
				if _, dead := failedSet[r]; dead {
					lostOne = true
					continue
				}
				kept = append(kept, r)
			}
			b.Replicas = kept
			if !lostOne {
				continue
			}
			if len(b.Replicas) == 0 {
				report.Lost++
				fs.mBlocksLost.Inc()
				continue
			}
			for len(b.Replicas) < fs.TargetReplication() && fs.repairBlock(b) {
				report.ReReplicated++
			}
		}
	}
	return report
}

// repairBlock copies one surviving replica of an under-replicated block
// to a new DataNode, charging best-effort background copy traffic to the
// new holder as the NameNode's re-replication queue would. It returns
// false when no eligible target exists (or the block has no live replica
// to copy from).
func (fs *FileSystem) repairBlock(b *Block) bool {
	if len(b.Replicas) == 0 || len(fs.datanodes) <= len(b.Replicas) {
		return false
	}
	target := fs.pickNewReplica(b)
	if target == nil {
		return false
	}
	b.Replicas = append(b.Replicas, target)
	target.blocks[b.ID] = struct{}{}
	target.usedMB += b.SizeMB
	fs.mReReplications.Inc()
	if fs.tracer != nil {
		fs.tracer.Instant(target.node.Name(), "dfs", "re-replicate",
			trace.S("block", b.ID),
			trace.F("size_mb", b.SizeMB))
	}
	// Background copy: disk+net load on the new holder for the block's
	// transfer, best effort.
	copyRate := 20.0
	_ = target.node.Start(&cluster.Consumer{
		Name:   fmt.Sprintf("dfs-rereplicate:%s@%s", b.ID, target.node.Name()),
		Demand: resourceVectorForCopy(copyRate),
		Work:   b.SizeMB / copyRate,
	})
	return true
}

// TargetReplication is the replication factor the namespace can actually
// sustain: the configured factor, bounded by the number of live
// DataNodes.
func (fs *FileSystem) TargetReplication() int {
	if n := len(fs.datanodes); n < fs.cfg.Replication {
		return n
	}
	return fs.cfg.Replication
}

// Files returns the namespace in name order.
func (fs *FileSystem) Files() []*File {
	names := make([]string, 0, len(fs.files))
	for name := range fs.files {
		names = append(names, name)
	}
	sort.Strings(names)
	out := make([]*File, 0, len(names))
	for _, name := range names {
		out = append(out, fs.files[name])
	}
	return out
}

// UnderReplicated counts live blocks (at least one replica) below the
// target replication.
func (fs *FileSystem) UnderReplicated() int {
	n := 0
	target := fs.TargetReplication()
	for _, f := range fs.files {
		for _, b := range f.Blocks {
			if len(b.Replicas) > 0 && len(b.Replicas) < target {
				n++
			}
		}
	}
	return n
}

// LostBlocks counts blocks with no surviving replica.
func (fs *FileSystem) LostBlocks() int {
	n := 0
	for _, f := range fs.files {
		for _, b := range f.Blocks {
			if len(b.Replicas) == 0 {
				n++
			}
		}
	}
	return n
}

// RepairUnderReplicated sweeps the namespace and re-replicates every
// live block below target replication, returning the number of copies
// made. Callers run it after capacity returns (a repaired PM brings its
// DataNodes back) to converge the namespace.
func (fs *FileSystem) RepairUnderReplicated() int {
	copies := 0
	for _, f := range fs.Files() { // name order keeps rng draws deterministic
		for _, b := range f.Blocks {
			if len(b.Replicas) == 0 {
				continue
			}
			for len(b.Replicas) < fs.TargetReplication() && fs.repairBlock(b) {
				copies++
			}
		}
	}
	return copies
}

// RestoreBlock re-ingests a block whose every replica was destroyed,
// from the file's durable upstream source — the gateway the input was
// originally imported from, which outlives the cluster. Fresh replicas
// are written to live DataNodes up to the sustainable target and the
// ingest traffic is charged to each new holder, like re-replication. It
// returns false when the block still has replicas (nothing to restore)
// or no DataNode can take a copy. Correlated failures make total
// replica loss a real event — a rack crash can take out every holder at
// once — and without this path a re-executed map would read data that
// no longer exists anywhere.
func (fs *FileSystem) RestoreBlock(b *Block) bool {
	if b == nil || len(b.Replicas) > 0 || len(fs.datanodes) == 0 {
		return false
	}
	restored := false
	for len(b.Replicas) < fs.TargetReplication() {
		target := fs.pickNewReplica(b)
		if target == nil {
			break
		}
		b.Replicas = append(b.Replicas, target)
		target.blocks[b.ID] = struct{}{}
		target.usedMB += b.SizeMB
		restored = true
		fs.mBlocksRestored.Inc()
		if fs.tracer != nil {
			fs.tracer.Instant(target.node.Name(), "dfs", "restore-from-source",
				trace.S("block", b.ID),
				trace.F("size_mb", b.SizeMB))
		}
		// Re-ingest traffic: the copy streams in over the new holder's
		// network and disk, best effort like the re-replication queue.
		copyRate := 20.0
		_ = target.node.Start(&cluster.Consumer{
			Name:   fmt.Sprintf("dfs-restore:%s@%s", b.ID, target.node.Name()),
			Demand: resourceVectorForCopy(copyRate),
			Work:   b.SizeMB / copyRate,
		})
	}
	return restored
}

// CorruptReplica destroys one replica of a block — a checksum failure on
// d's disk. If other replicas survive, the block is immediately
// re-replicated; if it was the last copy, the block is lost and the
// return value is true.
func (fs *FileSystem) CorruptReplica(b *Block, d *DataNode) (lost bool) {
	found := false
	for i, r := range b.Replicas {
		if r == d {
			b.Replicas = append(b.Replicas[:i], b.Replicas[i+1:]...)
			found = true
			break
		}
	}
	if !found {
		return false
	}
	delete(d.blocks, b.ID)
	d.usedMB -= b.SizeMB
	fs.mReplicasCorrupted.Inc()
	if fs.tracer != nil {
		fs.tracer.Instant(d.node.Name(), "dfs", "replica-corrupted",
			trace.S("block", b.ID),
			trace.F("survivors", float64(len(b.Replicas))))
	}
	if len(b.Replicas) == 0 {
		fs.mBlocksLost.Inc()
		return true
	}
	for len(b.Replicas) < fs.TargetReplication() && fs.repairBlock(b) {
	}
	return false
}

// pickNewReplica chooses a surviving DataNode not already holding the
// block, preferring racks that hold no replica yet (so repairs restore
// rack diversity, not just the count) and never picking a node isolated
// by a network partition. Without topology or partitions the candidate
// set and the single rng draw are identical to the pre-rack-aware
// behavior.
func (fs *FileSystem) pickNewReplica(b *Block) *DataNode {
	if fs.perf != nil {
		// Repair scans every DataNode to find survivors not holding the
		// block.
		fs.perf.C.DFSRepairScans += int64(len(fs.datanodes))
	}
	holders := make(map[*DataNode]struct{}, len(b.Replicas))
	holderRacks := make(map[string]struct{}, len(b.Replicas))
	for _, r := range b.Replicas {
		holders[r] = struct{}{}
		holderRacks[nodeRack(r)] = struct{}{}
	}
	rackAware := fs.spansRacks()
	// Deterministic seeded choice among candidates.
	var candidates, offRack []*DataNode
	for _, d := range fs.datanodes {
		if _, dup := holders[d]; dup {
			continue
		}
		if nodeIsolated(d) {
			continue
		}
		candidates = append(candidates, d)
		if rackAware {
			if _, dup := holderRacks[nodeRack(d)]; !dup {
				offRack = append(offRack, d)
			}
		}
	}
	if len(offRack) > 0 {
		candidates = offRack
	}
	if len(candidates) == 0 {
		return nil
	}
	return candidates[fs.rng.Intn(len(candidates))]
}

// Locality describes how close a block replica is to a reader.
type Locality int

// Locality levels, from best to worst.
const (
	NodeLocal Locality = iota + 1
	HostLocal
	Remote
)

// String names the locality level.
func (l Locality) String() string {
	switch l {
	case NodeLocal:
		return "node-local"
	case HostLocal:
		return "host-local"
	case Remote:
		return "remote"
	default:
		return fmt.Sprintf("locality(%d)", int(l))
	}
}

// BlockLocality returns the best locality of any replica of b relative to
// the reader: on the same node, on a different node of the same physical
// host (VMs sharing a PM exchange data without the NIC), or remote.
func (fs *FileSystem) BlockLocality(b *Block, reader cluster.Node) Locality {
	best := Remote
	for _, d := range b.Replicas {
		if d.node == reader {
			return NodeLocal
		}
		if d.node.Machine() == reader.Machine() && best > HostLocal {
			best = HostLocal
		}
	}
	return best
}

// LocalityFractions returns the fraction of a file's blocks at each
// locality level for the given reader.
func (fs *FileSystem) LocalityFractions(name string, reader cluster.Node) (nodeLocal, hostLocal, remote float64, err error) {
	f, ok := fs.files[name]
	if !ok {
		return 0, 0, 0, fmt.Errorf("dfs: file %q not found", name)
	}
	if len(f.Blocks) == 0 {
		return 0, 0, 0, nil
	}
	for _, b := range f.Blocks {
		switch fs.BlockLocality(b, reader) {
		case NodeLocal:
			nodeLocal++
		case HostLocal:
			hostLocal++
		default:
			remote++
		}
	}
	n := float64(len(f.Blocks))
	return nodeLocal / n, hostLocal / n, remote / n, nil
}
