package fidelity

// Checks returns the assertion suite: every registered figure and
// extension maps to at least one check or explicit waiver. Bounds come
// from the paper's reported numbers where the simulator tracks them,
// and from measured envelopes (with headroom) where the claim is
// qualitative; ScaledBand pairs carry separate reduced-scale bounds
// for figures whose shape changes when inputs hit the 256 MB floor.
func Checks() map[string][]Check {
	return map[string][]Check{
		"fig1a": {
			Ordering{
				Desc:   "I/O-bound jobs degrade more than CPU-bound under virtualization",
				A:      Ref{Scalar: "io_degrade_max"},
				B:      Ref{Scalar: "cpu_degrade_max"},
				MinGap: 0.05,
			},
			RatioBand{
				Desc:  "CPU-bound degradation stays within the paper's 8%",
				Value: Ref{Scalar: "cpu_degrade_max"},
				Band:  One(-0.01, 0.08),
			},
			RatioBand{
				Desc:  "I/O-bound worst-case degradation is substantial",
				Value: Ref{Scalar: "io_degrade_max"},
				Band:  Two(Band{0.15, 0.60}, Band{0.10, 0.50}),
			},
			Ordering{
				Desc:   "Wcount suffers more than PiEst at 4 VMs per PM",
				A:      Ref{Row: "Wcount", Col: "4-VM"},
				B:      Ref{Row: "PiEst", Col: "4-VM"},
				MinGap: 0.10,
			},
		},
		"fig1b": {
			Monotone{
				Desc:   "4-VM Sort JCT grows with input size",
				Series: Series{Row: "4-VM"},
			},
			Monotone{
				Desc:   "1-VM Sort JCT grows with input size",
				Series: Series{Row: "1-VM"},
			},
			KnownDivergence{
				Desc: "native/virtual gap widens with data size",
				Why: "the simulated 4-VM gap narrows slightly with input size " +
					"(24% at 1 GB to 18% at 16 GB at full scale) because disk " +
					"contention saturates early; the paper's widening rides " +
					"page-cache exhaustion, which the simulator does not model",
				Instead: RatioBand{
					Desc:  "a substantial 4-VM gap persists at the largest input",
					Value: Ref{Scalar: "gap_large"},
					Band:  One(0.08, 0.40),
				},
			},
		},
		"fig1c": {
			RatioBand{
				Desc:  "virtual HDFS runs below native everywhere",
				Value: Ref{Scalar: "max_norm"},
				Band:  One(0.30, 0.90),
			},
			KnownDivergence{
				Desc: "read-IO gap broadens with data size",
				Why: "the simulated read-IO ratio is flat (~0.47 at every size) " +
					"because the disk model has no cache cliff to fall off; the " +
					"constant virtualization tax still keeps virtual well below native",
				Instead: RatioBand{
					Desc:  "read-IO ratio at the largest size stays well below native",
					Value: Ref{Scalar: "read_io_last"},
					Band:  One(0.30, 0.70),
				},
			},
		},
		"fig2a": {
			Monotone{
				Desc:      "Same-Host Sort JCT grows with input size",
				Series:    Series{Col: "Same-Host"},
				Tolerance: 0.5,
			},
			Monotone{
				Desc:      "Cross-Host Sort JCT grows with input size",
				Series:    Series{Col: "Cross-Host"},
				Tolerance: 0.5,
			},
			KnownDivergence{
				Desc: "Cross-Host is slower than Same-Host",
				Why: "the paper's cross-host penalty is network-delay bound; our " +
					"disk model charges all spill I/O to the consolidated hosts' " +
					"two spindles, which dominates instead — the paper's 1-5 GB " +
					"inputs largely fit the page cache, which we do not model",
				Instead: RatioBand{
					Desc:  "the inversion is stable: Cross-Host wins at nearly every size",
					Value: Ref{Scalar: "cross_host_slower_sizes"},
					Band:  One(-0.1, 2.1),
				},
			},
		},
		"fig2b": {
			RatioBand{
				Desc:  "V4 config beats V1 substantially at 8 GB",
				Value: Ref{Scalar: "gain_8gb"},
				Band:  Two(Band{0.25, 0.70}, Band{0.20, 0.70}),
			},
			RatioBand{
				Desc:  "V4 gain at 1 GB (vanishes at reduced scale: input floor)",
				Value: Ref{Scalar: "gain_1gb"},
				Band:  Two(Band{0.20, 0.70}, Band{-0.05, 0.70}),
			},
			Ordering{
				Desc:   "gains grow with input size (8 GB gain >= 1 GB gain)",
				A:      Ref{Scalar: "gain_8gb"},
				B:      Ref{Scalar: "gain_1gb"},
				MinGap: 0,
			},
		},
		"fig2c": {
			RatioBand{
				Desc:  "Dom-0 overhead averages under the paper's 5%",
				Value: Ref{Scalar: "dom0_overhead_avg"},
				Band:  One(-0.02, 0.06),
			},
		},
		"fig2d": {
			RatioBand{
				Desc:  "split architecture gains at full scale (paper: 12.8%); small inputs underuse the split",
				Value: Ref{Scalar: "split_gain_avg"},
				Band:  Two(Band{0.05, 0.40}, Band{-0.30, 0.40}),
			},
		},
		"fig5a": {
			RatioBand{
				Desc:  "Sort JCT vs cluster size fits the inverse A + B/x model",
				Value: Ref{Scalar: "inverse_r2"},
				Band:  One(0.90, 1.0),
			},
			Monotone{
				Desc:       "Sort JCT falls with cluster size",
				Series:     Series{Col: "Sort"},
				Decreasing: true,
				Tolerance:  0.01,
			},
			Monotone{
				Desc:       "DistGrep JCT falls with cluster size",
				Series:     Series{Col: "DistGrep"},
				Decreasing: true,
				Tolerance:  0.02,
			},
		},
		"fig5b": {
			RatioBand{
				Desc:  "map-phase time is inverse in cluster size",
				Value: Ref{Scalar: "inverse_r2"},
				Band:  One(0.90, 1.0),
			},
		},
		"fig5c": {
			RatioBand{
				Desc:  "reduce-phase time fits the piece-wise model",
				Value: Ref{Scalar: "piecewise_r2"},
				Band:  One(0.90, 1.0),
			},
		},
		"fig5d": {
			RatioBand{
				Desc:  "JCT is almost linear in input size (C4 fit)",
				Value: Ref{Scalar: "linear_r2"},
				Band:  One(0.95, 1.0),
			},
			Monotone{
				Desc:   "C4 JCT grows with input size",
				Series: Series{Col: "C4"},
			},
			Monotone{
				Desc:   "C16 JCT grows with input size",
				Series: Series{Col: "C16"},
			},
		},
		"fig6a": {
			WithinPct{
				Desc:    "profiler mean estimation error within bounds (paper: 10.8%)",
				Value:   Ref{Scalar: "mean_err"},
				Max:     0.12,
				Reduced: 0.25,
			},
		},
		"fig6b": {
			RatioBand{
				Desc:  "PiEst slowdown is linear in collocated CPU",
				Value: Ref{Scalar: "pi_fit_r2"},
				Band:  One(0.80, 1.0),
			},
			Ordering{
				Desc:   "CPU antagonists hurt PiEst, not Sort",
				A:      Ref{Scalar: "pi_slowdown_max"},
				B:      Ref{Scalar: "sort_slowdown_max"},
				MinGap: 0.30,
			},
		},
		"fig6c": {
			RatioBand{
				Desc:  "Sort slowdown fits the exponential model under I/O contention",
				Value: Ref{Scalar: "sort_fit_r2"},
				Band:  One(0.70, 1.0),
			},
			Ordering{
				Desc:   "I/O antagonists hurt Sort, not PiEst",
				A:      Ref{Scalar: "sort_slowdown_max"},
				B:      Ref{Scalar: "pi_slowdown_max"},
				MinGap: 0.30,
			},
		},
		"fig8a": {
			RatioBand{
				Desc:  "Phase I placement beats random placement on batch JCT",
				Value: Ref{Scalar: "best_batch_gain"},
				Band:  One(0.05, 0.50),
			},
		},
		"fig8b": {
			RatioBand{
				Desc:  "all-resource DRM cuts single-job JCT (paper: 22.0% avg)",
				Value: Ref{Scalar: "allmode_avg_reduction"},
				Band:  Two(Band{0.08, 0.40}, Band{0.05, 0.40}),
			},
			RatioBand{
				Desc:  "best single-job reduction is sizable (paper: 29.1% max)",
				Value: Ref{Scalar: "allmode_max_reduction"},
				Band:  Two(Band{0.15, 0.60}, Band{0.10, 0.60}),
			},
		},
		"fig8c": {
			RatioBand{
				Desc:  "all-resource DRM cuts multi-job JCT (paper: 28.5% avg)",
				Value: Ref{Scalar: "allmode_avg_reduction"},
				Band:  One(0.05, 0.40),
			},
		},
		"fig8d": {
			Ordering{
				Desc:   "HybridMR violates the SLA at fewer client levels than FIFO",
				A:      Ref{Scalar: "fifo_sla_violations"},
				B:      Ref{Scalar: "hybrid_sla_violations"},
				MinGap: 1,
			},
		},
		"fig9a": {
			RatioBand{
				Desc:  "SLA violations are brief (paper: around minutes 12-14)",
				Value: Ref{Scalar: "minutes_above_sla"},
				Band:  Two(Band{1, 8}, Band{0, 5}),
			},
			RatioBand{
				Desc:  "IPS intervenes with mitigation actions",
				Value: Ref{Scalar: "ips_actions"},
				Band:  Two(Band{20, 400}, Band{1, 400}),
			},
			RatioBand{
				Desc:  "latencies recover after IPS intervention",
				Value: Ref{Scalar: "minutes_recovered"},
				Band:  Two(Band{5, 34}, Band{0, 34}),
			},
		},
		"fig9b": {
			RatioBand{
				Desc:  "Native <= HybridMR <= Virtual holds for most benchmarks",
				Value: Ref{Scalar: "ordered_benchmarks"},
				Band:  One(4, 6),
			},
			RatioBand{
				Desc:  "HybridMR improves mean JCT over Virtual (paper: up to 40%)",
				Value: Ref{Scalar: "hybrid_gain_vs_virtual"},
				Band:  Two(Band{0.20, 0.80}, Band{0.10, 0.80}),
			},
			Ordering{
				Desc:   "HybridMR's mean JCT beats the all-virtual design",
				A:      Ref{Scalar: "mean_jct_virtual"},
				B:      Ref{Scalar: "mean_jct_hybrid"},
				MinGap: 0,
			},
		},
		"fig9c": {
			KnownDivergence{
				Desc: "HybridMR saves ~43% energy vs Native",
				Why: "measured savings run 20-23%: the common-horizon accounting " +
					"keeps finished designs idling at the power floor, which " +
					"compresses the gap the paper reports from wall-socket meters",
				Instead: RatioBand{
					Desc:  "HybridMR still saves real energy vs Native",
					Value: Ref{Scalar: "energy_saving_vs_native"},
					Band:  One(0.05, 0.60),
				},
			},
			KnownDivergence{
				Desc: "HybridMR achieves the best perf/energy of the three designs",
				Why: "Native's fast completion keeps its perf/energy ahead in the " +
					"simulator; HybridMR beats the all-virtual design but not Native",
				Instead: Ordering{
					Desc:   "HybridMR's perf/energy beats the all-virtual design",
					A:      Ref{Scalar: "perf_energy_hybrid"},
					B:      Ref{Scalar: "perf_energy_virtual"},
					MinGap: 0,
				},
			},
			RatioBand{
				Desc:  "HybridMR boosts utilization over Native (paper: ~45%)",
				Value: Ref{Scalar: "util_boost_vs_native"},
				Band:  Two(Band{0.20, 1.20}, Band{0.05, 1.20}),
			},
		},
		"fig10a": {
			Ordering{
				Desc:   "HybridMR raises mean CPU utilization",
				A:      Ref{Scalar: "cpu_hyb_mean"},
				B:      Ref{Scalar: "cpu_base_mean"},
				MinGap: 0.02,
			},
			Ordering{
				Desc:   "HybridMR raises mean memory utilization",
				A:      Ref{Scalar: "mem_hyb_mean"},
				B:      Ref{Scalar: "mem_base_mean"},
				MinGap: 0.01,
			},
			Ordering{
				Desc:   "HybridMR raises mean I/O utilization",
				A:      Ref{Scalar: "io_hyb_mean"},
				B:      Ref{Scalar: "io_base_mean"},
				MinGap: 0.02,
			},
		},
		"fig10b": {
			Ordering{
				Desc:   "active Hadoop lengthens migration (Wcount-1GB vs Idle-1GB)",
				A:      Ref{Scalar: "mean_wcount_1"},
				B:      Ref{Scalar: "mean_idle_1"},
				MinGap: 0.5,
			},
			Ordering{
				Desc:   "more memory lengthens migration (Idle-1GB vs Idle-0.5GB)",
				A:      Ref{Scalar: "mean_idle_1"},
				B:      Ref{Scalar: "mean_idle_05"},
				MinGap: 0,
			},
		},
		"fig10c": {
			Ordering{
				Desc:   "loaded VMs show far wider downtime variation than idle ones",
				A:      Ref{Scalar: "wcount_spread_ms"},
				B:      Ref{Scalar: "idle_spread_ms"},
				MinGap: 100,
			},
		},
		"fig11": {
			RatioBand{
				Desc:  "the best split is a mixed configuration (paper: 12 PM + 12 VM)",
				Value: Ref{Scalar: "best_is_mixed"},
				Band:  One(0.5, 1.5),
			},
			Crossover{
				Desc:    "perf/energy peaks between the all-native and VM-heavy extremes",
				Series:  Series{Col: "perf/energy", SortBy: "VMs"},
				EndDrop: 0.05,
			},
		},
		"ext-iterative": {
			Ordering{
				Desc:   "in-memory iteration gains more on big-memory nodes than 1 GB guests",
				A:      Ref{Scalar: "speedup_native"},
				B:      Ref{Scalar: "speedup_virtual"},
				MinGap: 0.05,
			},
			RatioBand{
				Desc:  "in-memory iteration speeds up big-memory PageRank",
				Value: Ref{Scalar: "speedup_native"},
				Band:  Two(Band{1.5, 4.0}, Band{1.1, 4.0}),
			},
		},
		"ext-stream": {
			Ordering{
				Desc:   "HybridMR's SLA compliance is no worse than vanilla Hadoop",
				A:      Ref{Scalar: "compliance_hybrid"},
				B:      Ref{Scalar: "compliance_vanilla"},
				MinGap: -0.005,
			},
			RatioBand{
				Desc:  "HybridMR keeps the services compliant under the open stream",
				Value: Ref{Scalar: "compliance_hybrid"},
				Band:  One(0.90, 1.0),
			},
			RatioBand{
				Desc:  "batch JCT cost of protection stays modest",
				Value: Ref{Scalar: "jct_delta"},
				Band:  One(-0.30, 0.30),
			},
		},
		"ext-faults": {
			RatioBand{
				Desc:  "crash storms slow virtual Sort (recovery amplifies on 2 VMs/PM)",
				Value: Ref{Scalar: "slowdown_virtual"},
				Band:  Two(Band{0.50, 8.0}, Band{-0.05, 8.0}),
			},
			Ordering{
				Desc:   "virtual clusters pay at least the native fault penalty",
				A:      Ref{Scalar: "slowdown_virtual"},
				B:      Ref{Scalar: "slowdown_native"},
				MinGap: -0.01,
			},
		},
		"abl-speculation": {
			RatioBand{
				Desc:  "speculative execution cuts the straggler-bound JCT",
				Value: Ref{Scalar: "speculation_gain"},
				Band:  One(0.30, 0.95),
			},
		},
		"abl-capacity": {
			RatioBand{
				Desc:  "capacity-aware placement trims Sort JCT under loaded services",
				Value: Ref{Scalar: "jct_delta"},
				Band:  One(0.01, 0.50),
			},
			RatioBand{
				Desc:  "service latency stays near the blind baseline",
				Value: Ref{Scalar: "lat_delta"},
				Band:  One(-0.30, 0.50),
			},
		},
		"abl-deferral": {
			RatioBand{
				Desc:  "deferral and proportional paging finish within 30% of each other",
				Value: Ref{Scalar: "jct_delta"},
				Band:  One(-0.30, 0.30),
			},
		},
	}
}

// For returns the checks registered for one figure ID (nil if none).
func For(id string) []Check { return Checks()[id] }
