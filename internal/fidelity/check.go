// Package fidelity encodes the paper's headline claims as
// machine-checkable predicates over experiment outcomes. Each figure
// registers a set of shape assertions — orderings, bands, monotone
// trends, crossovers — evaluated against the numeric values the
// experiment tables and scalars record. Claims the simulator knowingly
// does not reproduce are registered as KnownDivergence waivers, which
// document the gap and guard the behavior that replaced it.
//
// The suite runs at any experiment scale; bounds that change shape at
// reduced scale (where input floors kick in) carry explicit
// reduced-scale variants so the CI gate at scale 0.1 checks honest
// bounds rather than loosened full-scale ones.
package fidelity

import (
	"fmt"
	"sort"

	"repro/internal/experiments"
)

// Status classifies one evaluated assertion.
type Status string

const (
	// Pass means the measured values satisfy the paper's claim.
	Pass Status = "pass"
	// Fail means they do not, and no waiver covers the gap.
	Fail Status = "fail"
	// Waived marks a documented divergence from the paper whose guard
	// condition (if any) still holds.
	Waived Status = "waived"
)

// Result is one evaluated assertion with the measured evidence.
type Result struct {
	Name   string `json:"name"`
	Status Status `json:"status"`
	// Detail holds the measured values and the bounds they were checked
	// against, so FIDELITY.json is self-explanatory.
	Detail string `json:"detail,omitempty"`
	// Waiver records why a known divergence is accepted.
	Waiver string `json:"waiver,omitempty"`
}

// Check is a single machine-checkable claim about a figure's outcome.
type Check interface {
	// Name identifies the claim ("I/O-bound degrades more than CPU-bound").
	Name() string
	// Eval judges the claim against a completed outcome at the given
	// experiment scale.
	Eval(o *experiments.Outcome, scale float64) Result
}

// Ref locates one measured value in an outcome: a named scalar, or a
// table cell addressed by (row label, column header).
type Ref struct {
	Scalar string
	Row    string
	Col    string
}

func (r Ref) String() string {
	if r.Scalar != "" {
		return r.Scalar
	}
	return r.Row + "/" + r.Col
}

func (r Ref) fetch(o *experiments.Outcome) (float64, error) {
	if r.Scalar != "" {
		v, ok := o.Scalars[r.Scalar]
		if !ok {
			return 0, fmt.Errorf("scalar %q not recorded", r.Scalar)
		}
		return v, nil
	}
	v, ok := o.Table.Value(r.Row, r.Col)
	if !ok {
		return 0, fmt.Errorf("cell (%q, %q) missing or not numeric", r.Row, r.Col)
	}
	return v, nil
}

// Series locates an ordered run of values: a table column (in row
// order) or a row (in column order). SortBy, valid with Col, reorders
// the column's values ascending by another numeric column — for sweeps
// whose display order is not the axis of interest (Figure 11 orders
// configurations by name, but the crossover claim is over VM count).
type Series struct {
	Col    string
	Row    string
	SortBy string
}

func (s Series) String() string {
	if s.Row != "" {
		return "row " + s.Row
	}
	if s.SortBy != "" {
		return "col " + s.Col + " by " + s.SortBy
	}
	return "col " + s.Col
}

func (s Series) fetch(t *experiments.Table) ([]float64, error) {
	if s.Row != "" {
		vals := t.RowValues(s.Row)
		if len(vals) == 0 {
			return nil, fmt.Errorf("row %q missing or not numeric", s.Row)
		}
		return vals, nil
	}
	vals := t.Column(s.Col)
	if len(vals) == 0 {
		return nil, fmt.Errorf("column %q missing or not numeric", s.Col)
	}
	if s.SortBy == "" {
		return vals, nil
	}
	keys := t.Column(s.SortBy)
	if len(keys) != len(vals) {
		return nil, fmt.Errorf("sort key %q covers %d of %d rows", s.SortBy, len(keys), len(vals))
	}
	idx := make([]int, len(vals))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool { return keys[idx[a]] < keys[idx[b]] })
	out := make([]float64, len(vals))
	for i, j := range idx {
		out[i] = vals[j]
	}
	return out, nil
}

// Band is an inclusive numeric range.
type Band struct {
	Lo float64
	Hi float64
}

func (b Band) contains(v float64) bool { return v >= b.Lo && v <= b.Hi }
func (b Band) String() string          { return fmt.Sprintf("[%g, %g]", b.Lo, b.Hi) }

// ScaledBand selects bounds by run scale. Reduced, when set, applies
// below scale 0.5: shrunken inputs hit the experiment package's 256 MB
// floor and change some figures' shape, so the CI operating point
// (scale 0.1) carries its own honest bounds instead of loosened
// full-scale ones.
type ScaledBand struct {
	Full    Band
	Reduced *Band
}

// One wraps a single band that holds at every scale.
func One(lo, hi float64) ScaledBand { return ScaledBand{Full: Band{Lo: lo, Hi: hi}} }

// Two pairs a full-scale band with a reduced-scale one.
func Two(full, reduced Band) ScaledBand { return ScaledBand{Full: full, Reduced: &reduced} }

// reducedScale is the threshold below which Reduced bounds apply.
const reducedScale = 0.5

func (s ScaledBand) at(scale float64) Band {
	if scale < reducedScale && s.Reduced != nil {
		return *s.Reduced
	}
	return s.Full
}

func pass(name, detail string) Result { return Result{Name: name, Status: Pass, Detail: detail} }
func fail(name, detail string) Result { return Result{Name: name, Status: Fail, Detail: detail} }

func errResult(name string, err error) Result {
	return Result{Name: name, Status: Fail, Detail: "unresolved: " + err.Error()}
}
