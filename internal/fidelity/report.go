package fidelity

import (
	"encoding/json"
	"fmt"
	"io"

	"repro/internal/experiments"
)

// FigureResult is one figure's evaluated assertions.
type FigureResult struct {
	ID      string   `json:"id"`
	Results []Result `json:"results,omitempty"`
	// Error records an experiment that failed to run at all.
	Error string `json:"error,omitempty"`
	// WallSeconds and EventsFired annotate the Summary table with how
	// long the experiment took and how much simulation it drove. They
	// are deliberately excluded from the JSON document: wall time is
	// nondeterministic and FIDELITY.json must stay byte-identical
	// across runs.
	WallSeconds float64 `json:"-"`
	EventsFired uint64  `json:"-"`
}

// Report is the FIDELITY.json document: per-figure verdicts with
// measured values and bounds, plus the tallies the CI gate keys off.
// It contains no timestamps or host details, so it is byte-identical
// across runs at any worker count.
type Report struct {
	Scale   float64        `json:"scale"`
	Figures []FigureResult `json:"figures"`
	Passed  int            `json:"passed"`
	Failed  int            `json:"failed"`
	Waived  int            `json:"waived"`
}

// Evaluate runs a figure's registered checks against its outcome.
func Evaluate(id string, o *experiments.Outcome, scale float64) FigureResult {
	fr := FigureResult{ID: id}
	for _, c := range For(id) {
		fr.Results = append(fr.Results, c.Eval(o, scale))
	}
	return fr
}

// Add appends a figure's verdicts and folds them into the tallies.
func (r *Report) Add(fr FigureResult) {
	r.Figures = append(r.Figures, fr)
	if fr.Error != "" {
		r.Failed++
		return
	}
	for _, res := range fr.Results {
		switch res.Status {
		case Pass:
			r.Passed++
		case Waived:
			r.Waived++
		default:
			r.Failed++
		}
	}
}

// HasFailures reports whether any unwaived assertion failed (or any
// experiment errored).
func (r *Report) HasFailures() bool { return r.Failed > 0 }

// JSON renders the report deterministically with a trailing newline.
func (r *Report) JSON() ([]byte, error) {
	b, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}

// Summary prints a per-assertion table — each figure annotated with its
// wall time and events fired when the caller recorded them — and the
// overall tally.
func (r *Report) Summary(w io.Writer) {
	fmt.Fprintf(w, "Fidelity suite at scale %g\n", r.Scale)
	for _, fig := range r.Figures {
		cost := ""
		if fig.WallSeconds > 0 {
			cost = fmt.Sprintf("  [%6.1fs  %9d events]", fig.WallSeconds, fig.EventsFired)
		}
		if fig.Error != "" {
			fmt.Fprintf(w, "  %-8s ERROR  %s\n", fig.ID, fig.Error)
			continue
		}
		for i, res := range fig.Results {
			status := "PASS"
			switch res.Status {
			case Fail:
				status = "FAIL"
			case Waived:
				status = "WAIVE"
			}
			// The cost annotation rides on the figure's first row only.
			rowCost := ""
			if i == 0 {
				rowCost = cost
			}
			fmt.Fprintf(w, "  %-8s %-5s  %s%s\n", fig.ID, status, res.Name, rowCost)
			if res.Status == Fail && res.Detail != "" {
				fmt.Fprintf(w, "  %-8s        %s\n", "", res.Detail)
			}
		}
	}
	fmt.Fprintf(w, "fidelity: %d passed, %d failed, %d waived\n", r.Passed, r.Failed, r.Waived)
}
