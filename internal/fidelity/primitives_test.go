package fidelity

import (
	"strings"
	"testing"

	"repro/internal/experiments"
)

// outcomeWith builds a minimal outcome carrying the given scalars and
// an optional table.
func outcomeWith(scalars map[string]float64, table *experiments.Table) *experiments.Outcome {
	if table == nil {
		table = &experiments.Table{ID: "t", Columns: []string{"k"}}
	}
	o := &experiments.Outcome{Table: table}
	for k, v := range scalars {
		o.Scalar(k, v)
	}
	return o
}

func sweepTable(col string, vals ...float64) *experiments.Table {
	t := &experiments.Table{ID: "t", Columns: []string{"x", col}}
	for i, v := range vals {
		t.AddCells(experiments.Int(i), experiments.F3(v))
	}
	return t
}

func TestOrdering(t *testing.T) {
	cases := []struct {
		name   string
		a, b   float64
		minGap float64
		want   Status
	}{
		{"clear gap", 2.0, 1.0, 0.5, Pass},
		{"exact boundary gap", 1.5, 1.0, 0.5, Pass},
		{"just under the gap", 1.49, 1.0, 0.5, Fail},
		{"tie passes at zero gap", 1.0, 1.0, 0, Pass},
		{"reversed order", 1.0, 2.0, 0, Fail},
		{"negative gap tolerates noise", 0.996, 1.0, -0.005, Pass},
		{"negative gap still bounds the deficit", 0.99, 1.0, -0.005, Fail},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			c := Ordering{Desc: "o", A: Ref{Scalar: "a"}, B: Ref{Scalar: "b"}, MinGap: tc.minGap}
			got := c.Eval(outcomeWith(map[string]float64{"a": tc.a, "b": tc.b}, nil), 1)
			if got.Status != tc.want {
				t.Fatalf("status = %s, want %s (%s)", got.Status, tc.want, got.Detail)
			}
		})
	}
	t.Run("missing scalar fails with diagnosis", func(t *testing.T) {
		c := Ordering{Desc: "o", A: Ref{Scalar: "absent"}, B: Ref{Scalar: "b"}}
		got := c.Eval(outcomeWith(map[string]float64{"b": 1}, nil), 1)
		if got.Status != Fail || !strings.Contains(got.Detail, "absent") {
			t.Fatalf("got %s %q, want Fail naming the scalar", got.Status, got.Detail)
		}
	})
}

func TestRatioBand(t *testing.T) {
	band := Two(Band{0.2, 0.5}, Band{-0.1, 0.5})
	cases := []struct {
		name  string
		v     float64
		scale float64
		want  Status
	}{
		{"inside full band", 0.39, 1, Pass},
		{"at full lower bound", 0.2, 1, Pass},
		{"at full upper bound", 0.5, 1, Pass},
		{"below full band", 0.19, 1, Fail},
		{"above full band", 0.51, 1, Fail},
		{"reduced band admits the scale-0.1 shape", 0.0, 0.1, Pass},
		{"reduced band still bounds above", 0.51, 0.1, Fail},
		{"full band applies at scale 0.5 and up", 0.0, 0.5, Fail},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			c := RatioBand{Desc: "r", Value: Ref{Scalar: "v"}, Band: band}
			got := c.Eval(outcomeWith(map[string]float64{"v": tc.v}, nil), tc.scale)
			if got.Status != tc.want {
				t.Fatalf("status = %s, want %s (%s)", got.Status, tc.want, got.Detail)
			}
		})
	}
}

func TestRatioBandTableCell(t *testing.T) {
	tab := &experiments.Table{ID: "t", Columns: []string{"benchmark", "4-VM"}}
	tab.AddCells(experiments.Str("Wcount"), experiments.Pct(0.28))
	c := RatioBand{Desc: "cell", Value: Ref{Row: "Wcount", Col: "4-VM"}, Band: One(0.2, 0.4)}
	if got := c.Eval(outcomeWith(nil, tab), 1); got.Status != Pass {
		t.Fatalf("cell lookup: %s (%s)", got.Status, got.Detail)
	}
	miss := RatioBand{Desc: "cell", Value: Ref{Row: "PiEst", Col: "4-VM"}, Band: One(0, 1)}
	if got := miss.Eval(outcomeWith(nil, tab), 1); got.Status != Fail {
		t.Fatalf("missing row should fail, got %s", got.Status)
	}
}

func TestMonotone(t *testing.T) {
	cases := []struct {
		name string
		vals []float64
		dec  bool
		tol  float64
		want Status
	}{
		{"strictly rising", []float64{1, 2, 3}, false, 0, Pass},
		{"plateau passes", []float64{1, 2, 2}, false, 0, Pass},
		{"dip fails", []float64{1, 2, 1.9}, false, 0, Fail},
		{"dip within tolerance", []float64{1, 2, 1.99}, false, 0.02, Pass},
		{"strictly falling", []float64{3, 2, 1}, true, 0, Pass},
		{"uptick fails when decreasing", []float64{3, 2, 2.1}, true, 0, Fail},
		{"uptick within tolerance", []float64{3, 2, 2.01}, true, 0.02, Pass},
		{"single point fails", []float64{1}, false, 0, Fail},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			c := Monotone{Desc: "m", Series: Series{Col: "y"}, Decreasing: tc.dec, Tolerance: tc.tol}
			got := c.Eval(outcomeWith(nil, sweepTable("y", tc.vals...)), 1)
			if got.Status != tc.want {
				t.Fatalf("status = %s, want %s (%s)", got.Status, tc.want, got.Detail)
			}
		})
	}
	t.Run("row series", func(t *testing.T) {
		tab := &experiments.Table{ID: "t", Columns: []string{"config", "1GB", "8GB"}}
		tab.AddCells(experiments.Str("4-VM"), experiments.F1(6.0), experiments.F1(7.4))
		c := Monotone{Desc: "m", Series: Series{Row: "4-VM"}}
		if got := c.Eval(outcomeWith(nil, tab), 1); got.Status != Pass {
			t.Fatalf("row series: %s (%s)", got.Status, got.Detail)
		}
	})
}

func TestCrossover(t *testing.T) {
	cases := []struct {
		name    string
		vals    []float64
		endDrop float64
		want    Status
	}{
		{"interior peak with low ends", []float64{0.3, 1.0, 0.5}, 0.05, Pass},
		{"peak at first point", []float64{1.0, 0.8, 0.5}, 0.05, Fail},
		{"peak at last point", []float64{0.3, 0.8, 1.0}, 0.05, Fail},
		{"endpoint rivals the peak", []float64{0.97, 1.0, 0.5}, 0.05, Fail},
		{"endpoint exactly at the cap", []float64{0.95, 1.0, 0.5}, 0.05, Pass},
		{"too short", []float64{0.3, 1.0}, 0.05, Fail},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			c := Crossover{Desc: "x", Series: Series{Col: "y"}, EndDrop: tc.endDrop}
			got := c.Eval(outcomeWith(nil, sweepTable("y", tc.vals...)), 1)
			if got.Status != tc.want {
				t.Fatalf("status = %s, want %s (%s)", got.Status, tc.want, got.Detail)
			}
		})
	}
}

func TestCrossoverSortBy(t *testing.T) {
	// Display order hides the crossover; sorting by the VMs column
	// reveals it, as in Figure 11.
	tab := &experiments.Table{ID: "t", Columns: []string{"config", "VMs", "perf"}}
	tab.AddCells(experiments.Str("C1"), experiments.Int(12), experiments.F3(1.0))
	tab.AddCells(experiments.Str("C2"), experiments.Int(40), experiments.F3(0.5))
	tab.AddCells(experiments.Str("C3"), experiments.Int(0), experiments.F3(0.3))
	c := Crossover{Desc: "x", Series: Series{Col: "perf", SortBy: "VMs"}, EndDrop: 0.05}
	if got := c.Eval(outcomeWith(nil, tab), 1); got.Status != Pass {
		t.Fatalf("sorted crossover: %s (%s)", got.Status, got.Detail)
	}
}

func TestWithinPct(t *testing.T) {
	cases := []struct {
		name  string
		v     float64
		scale float64
		want  Status
	}{
		{"under the full ceiling", 0.05, 1, Pass},
		{"at the full ceiling", 0.12, 1, Pass},
		{"over the full ceiling", 0.13, 1, Fail},
		{"reduced ceiling admits more error", 0.20, 0.1, Pass},
		{"reduced ceiling still binds", 0.26, 0.1, Fail},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			c := WithinPct{Desc: "w", Value: Ref{Scalar: "e"}, Max: 0.12, Reduced: 0.25}
			got := c.Eval(outcomeWith(map[string]float64{"e": tc.v}, nil), tc.scale)
			if got.Status != tc.want {
				t.Fatalf("status = %s, want %s (%s)", got.Status, tc.want, got.Detail)
			}
		})
	}
}

func TestKnownDivergence(t *testing.T) {
	t.Run("no guard is always waived", func(t *testing.T) {
		c := KnownDivergence{Desc: "d", Why: "documented gap"}
		got := c.Eval(outcomeWith(nil, nil), 1)
		if got.Status != Waived || got.Waiver != "documented gap" {
			t.Fatalf("got %s %q, want Waived with the why", got.Status, got.Waiver)
		}
	})
	t.Run("holding guard keeps the waiver", func(t *testing.T) {
		c := KnownDivergence{Desc: "d", Why: "gap", Instead: RatioBand{
			Desc: "g", Value: Ref{Scalar: "v"}, Band: One(0, 1),
		}}
		got := c.Eval(outcomeWith(map[string]float64{"v": 0.5}, nil), 1)
		if got.Status != Waived {
			t.Fatalf("got %s, want Waived (%s)", got.Status, got.Detail)
		}
	})
	t.Run("failing guard fails the waiver", func(t *testing.T) {
		c := KnownDivergence{Desc: "d", Why: "gap", Instead: RatioBand{
			Desc: "g", Value: Ref{Scalar: "v"}, Band: One(0, 1),
		}}
		got := c.Eval(outcomeWith(map[string]float64{"v": 2}, nil), 1)
		if got.Status != Fail || !strings.Contains(got.Detail, "guard failed") {
			t.Fatalf("got %s %q, want Fail citing the guard", got.Status, got.Detail)
		}
	})
	t.Run("a waiver never passes", func(t *testing.T) {
		// Even with a passing guard, the divergence itself stays visible.
		c := KnownDivergence{Desc: "d", Why: "gap", Instead: Ordering{
			Desc: "g", A: Ref{Scalar: "a"}, B: Ref{Scalar: "b"},
		}}
		got := c.Eval(outcomeWith(map[string]float64{"a": 2, "b": 1}, nil), 1)
		if got.Status == Pass {
			t.Fatal("KnownDivergence must not report Pass")
		}
	})
}

func TestReportTallies(t *testing.T) {
	var r Report
	r.Scale = 1
	r.Add(FigureResult{ID: "a", Results: []Result{
		{Name: "p", Status: Pass},
		{Name: "f", Status: Fail},
		{Name: "w", Status: Waived},
	}})
	r.Add(FigureResult{ID: "b", Error: "boom"})
	if r.Passed != 1 || r.Failed != 2 || r.Waived != 1 {
		t.Fatalf("tallies = %d/%d/%d, want 1/2/1", r.Passed, r.Failed, r.Waived)
	}
	if !r.HasFailures() {
		t.Fatal("HasFailures should be true")
	}
	b, err := r.JSON()
	if err != nil {
		t.Fatal(err)
	}
	if b[len(b)-1] != '\n' {
		t.Fatal("JSON should end with a newline")
	}
	var sb strings.Builder
	r.Summary(&sb)
	for _, want := range []string{"FAIL", "WAIVE", "ERROR", "1 passed, 2 failed, 1 waived"} {
		if !strings.Contains(sb.String(), want) {
			t.Fatalf("summary missing %q:\n%s", want, sb.String())
		}
	}
}

func TestReportSummaryCostAnnotation(t *testing.T) {
	var r Report
	r.Scale = 1
	r.Add(FigureResult{
		ID:          "a",
		Results:     []Result{{Name: "p1", Status: Pass}, {Name: "p2", Status: Pass}},
		WallSeconds: 1.5,
		EventsFired: 4200,
	})
	var sb strings.Builder
	r.Summary(&sb)
	got := sb.String()
	if !strings.Contains(got, "1.5s") || !strings.Contains(got, "4200 events") {
		t.Fatalf("summary missing the wall-time/events annotation:\n%s", got)
	}
	// The annotation rides on the figure's first row only.
	if strings.Count(got, "4200 events") != 1 {
		t.Fatalf("cost annotation repeated:\n%s", got)
	}
	// And it must never leak into FIDELITY.json, which stays
	// byte-deterministic across runs.
	b, err := r.JSON()
	if err != nil {
		t.Fatal(err)
	}
	for _, leak := range []string{"wall", "events", "4200", "1.5"} {
		if strings.Contains(string(b), leak) {
			t.Fatalf("JSON leaks nondeterministic cost field %q:\n%s", leak, b)
		}
	}
}
