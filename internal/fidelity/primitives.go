package fidelity

import (
	"fmt"

	"repro/internal/experiments"
)

// Ordering asserts A - B >= MinGap: the paper's "X degrades (or
// improves, or costs) more than Y" claims. A MinGap of zero accepts a
// tie; a small negative MinGap tolerates measurement noise on claims
// that only promise "no worse".
type Ordering struct {
	Desc   string
	A, B   Ref
	MinGap float64
}

func (c Ordering) Name() string { return c.Desc }

func (c Ordering) Eval(o *experiments.Outcome, scale float64) Result {
	a, err := c.A.fetch(o)
	if err != nil {
		return errResult(c.Desc, err)
	}
	b, err := c.B.fetch(o)
	if err != nil {
		return errResult(c.Desc, err)
	}
	detail := fmt.Sprintf("%s=%.4g vs %s=%.4g, need gap >= %g", c.A, a, c.B, b, c.MinGap)
	if a-b >= c.MinGap {
		return pass(c.Desc, detail)
	}
	return fail(c.Desc, detail)
}

// RatioBand asserts a single value sits inside a (possibly
// scale-dependent) band: savings percentages, fit qualities, counts.
type RatioBand struct {
	Desc  string
	Value Ref
	Band  ScaledBand
}

func (c RatioBand) Name() string { return c.Desc }

func (c RatioBand) Eval(o *experiments.Outcome, scale float64) Result {
	v, err := c.Value.fetch(o)
	if err != nil {
		return errResult(c.Desc, err)
	}
	band := c.Band.at(scale)
	detail := fmt.Sprintf("%s=%.4g, want %s", c.Value, v, band)
	if band.contains(v) {
		return pass(c.Desc, detail)
	}
	return fail(c.Desc, detail)
}

// Monotone asserts a series rises (or, with Decreasing, falls) along
// its axis, allowing per-step reversals up to Tolerance — the paper's
// "JCT grows with input size" and "JCT shrinks with cluster size"
// claims.
type Monotone struct {
	Desc       string
	Series     Series
	Decreasing bool
	Tolerance  float64
}

func (c Monotone) Name() string { return c.Desc }

func (c Monotone) Eval(o *experiments.Outcome, scale float64) Result {
	vals, err := c.Series.fetch(o.Table)
	if err != nil {
		return errResult(c.Desc, err)
	}
	if len(vals) < 2 {
		return fail(c.Desc, fmt.Sprintf("%s has %d value(s), need >= 2", c.Series, len(vals)))
	}
	dir := "rise"
	if c.Decreasing {
		dir = "fall"
	}
	for i := 0; i+1 < len(vals); i++ {
		step := vals[i+1] - vals[i]
		if c.Decreasing {
			step = -step
		}
		if step < -c.Tolerance {
			return fail(c.Desc, fmt.Sprintf("%s must %s: step %d goes %.4g -> %.4g (tolerance %g)",
				c.Series, dir, i, vals[i], vals[i+1], c.Tolerance))
		}
	}
	return pass(c.Desc, fmt.Sprintf("%s %ss over %d points: %.4g -> %.4g",
		c.Series, dir, len(vals), vals[0], vals[len(vals)-1]))
}

// Crossover asserts a series peaks strictly in the interior of its
// sweep, with both endpoints at most (1-EndDrop) of the peak — the
// Figure 11 claim that a mixed native/virtual split beats both
// extremes of the trade-off.
type Crossover struct {
	Desc    string
	Series  Series
	EndDrop float64
}

func (c Crossover) Name() string { return c.Desc }

func (c Crossover) Eval(o *experiments.Outcome, scale float64) Result {
	vals, err := c.Series.fetch(o.Table)
	if err != nil {
		return errResult(c.Desc, err)
	}
	if len(vals) < 3 {
		return fail(c.Desc, fmt.Sprintf("%s has %d value(s), need >= 3", c.Series, len(vals)))
	}
	peak := 0
	for i, v := range vals {
		if v > vals[peak] {
			peak = i
		}
	}
	cap := (1 - c.EndDrop) * vals[peak]
	detail := fmt.Sprintf("%s: peak %.4g at index %d/%d, ends %.4g and %.4g, end cap %.4g",
		c.Series, vals[peak], peak, len(vals)-1, vals[0], vals[len(vals)-1], cap)
	if peak == 0 || peak == len(vals)-1 {
		return fail(c.Desc, detail+" (peak at an endpoint)")
	}
	if vals[0] > cap || vals[len(vals)-1] > cap {
		return fail(c.Desc, detail+" (an endpoint rivals the peak)")
	}
	return pass(c.Desc, detail)
}

// WithinPct asserts a fractional error stays at or below a ceiling —
// the profiling-accuracy claims. Reduced, when positive, replaces Max
// below the reduced-scale threshold.
type WithinPct struct {
	Desc    string
	Value   Ref
	Max     float64
	Reduced float64
}

func (c WithinPct) Name() string { return c.Desc }

func (c WithinPct) Eval(o *experiments.Outcome, scale float64) Result {
	v, err := c.Value.fetch(o)
	if err != nil {
		return errResult(c.Desc, err)
	}
	max := c.Max
	if scale < reducedScale && c.Reduced > 0 {
		max = c.Reduced
	}
	detail := fmt.Sprintf("%s=%.2f%%, ceiling %.2f%%", c.Value, v*100, max*100)
	if v <= max {
		return pass(c.Desc, detail)
	}
	return fail(c.Desc, detail)
}

// KnownDivergence documents a paper claim the simulator knowingly does
// not reproduce. It never passes — at best it reports Waived, keeping
// the gap visible in every report. The optional Instead check guards
// the behavior the simulator does exhibit in that figure; if the guard
// regresses, the waiver fails like any other check.
type KnownDivergence struct {
	Desc    string
	Why     string
	Instead Check
}

func (c KnownDivergence) Name() string { return c.Desc }

func (c KnownDivergence) Eval(o *experiments.Outcome, scale float64) Result {
	if c.Instead == nil {
		return Result{Name: c.Desc, Status: Waived, Waiver: c.Why}
	}
	guard := c.Instead.Eval(o, scale)
	if guard.Status == Fail {
		return Result{Name: c.Desc, Status: Fail, Detail: "guard failed: " + guard.Detail, Waiver: c.Why}
	}
	return Result{Name: c.Desc, Status: Waived, Detail: "guard holds: " + guard.Detail, Waiver: c.Why}
}
