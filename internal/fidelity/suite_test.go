package fidelity

import (
	"testing"

	"repro/internal/experiments"
)

// TestSuiteCoversEveryExperiment enforces the gate's contract: every
// registered figure and extension carries at least one assertion or an
// explicit waiver, and the registry names no unknown figures.
func TestSuiteCoversEveryExperiment(t *testing.T) {
	registered := make(map[string]bool)
	for _, e := range experiments.All() {
		registered[e.ID] = true
	}
	for _, e := range experiments.Extensions() {
		registered[e.ID] = true
	}
	checks := Checks()
	for id := range registered {
		if len(checks[id]) == 0 {
			t.Errorf("experiment %s has no fidelity checks and no waiver", id)
		}
	}
	for id := range checks {
		if !registered[id] {
			t.Errorf("fidelity suite names unknown experiment %s", id)
		}
	}
}

// TestSuiteChecksAreNamed catches empty display names, which would
// make FIDELITY.json unreadable.
func TestSuiteChecksAreNamed(t *testing.T) {
	for id, checks := range Checks() {
		seen := make(map[string]bool)
		for _, c := range checks {
			name := c.Name()
			if name == "" {
				t.Errorf("%s: check with empty name", id)
			}
			if seen[name] {
				t.Errorf("%s: duplicate check name %q", id, name)
			}
			seen[name] = true
		}
	}
}

// TestEvaluateMissingScalars verifies that a check referencing data an
// experiment did not record fails loudly instead of passing silently.
func TestEvaluateMissingScalars(t *testing.T) {
	empty := &experiments.Outcome{Table: &experiments.Table{ID: "fig8a", Columns: []string{"mix"}}}
	fr := Evaluate("fig8a", empty, 1)
	if len(fr.Results) == 0 {
		t.Fatal("fig8a should have checks")
	}
	for _, res := range fr.Results {
		if res.Status != Fail {
			t.Errorf("check %q on an empty outcome: %s, want Fail", res.Name, res.Status)
		}
	}
}

// TestEvaluateUnregisteredFigure returns an empty result set rather
// than erroring, so callers can distinguish "no checks" explicitly.
func TestEvaluateUnregisteredFigure(t *testing.T) {
	fr := Evaluate("not-a-figure", &experiments.Outcome{Table: &experiments.Table{}}, 1)
	if len(fr.Results) != 0 {
		t.Fatalf("unexpected results for unregistered figure: %v", fr.Results)
	}
}
