package fidelity_test

import (
	"fmt"

	"repro/internal/experiments"
	"repro/internal/fidelity"
)

// Example shows the three moving parts a figure's checks combine: a
// runner records numeric values next to its formatted table, the suite
// states the paper's claim as a predicate, and Eval judges the claim
// at a given scale — here the Figure 1(a) headline that I/O-bound
// benchmarks degrade more under virtualization than CPU-bound ones.
func Example() {
	out := &experiments.Outcome{Table: &experiments.Table{}}
	out.Scalar("io_degrade_max", 0.31)
	out.Scalar("cpu_degrade_max", 0.04)

	ordering := fidelity.Ordering{
		Desc:   "I/O-bound degrades more than CPU-bound",
		A:      fidelity.Ref{Scalar: "io_degrade_max"},
		B:      fidelity.Ref{Scalar: "cpu_degrade_max"},
		MinGap: 0.05,
	}
	band := fidelity.RatioBand{
		Desc:  "worst I/O-bound degradation in the paper's range",
		Value: fidelity.Ref{Scalar: "io_degrade_max"},
		// Full-scale bound plus a looser one for runs below scale 0.5,
		// where the 256 MB input floor changes the experiment's shape.
		Band: fidelity.Two(fidelity.Band{Lo: 0.15, Hi: 0.60}, fidelity.Band{Lo: 0.10, Hi: 0.50}),
	}

	for _, check := range []fidelity.Check{ordering, band} {
		res := check.Eval(out, 1.0)
		fmt.Printf("%s: %s (%s)\n", res.Status, res.Name, res.Detail)
	}
	// Output:
	// pass: I/O-bound degrades more than CPU-bound (io_degrade_max=0.31 vs cpu_degrade_max=0.04, need gap >= 0.05)
	// pass: worst I/O-bound degradation in the paper's range (io_degrade_max=0.31, want [0.15, 0.6])
}
