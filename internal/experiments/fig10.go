package experiments

import (
	"fmt"
	"sync/atomic"
	"time"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/mapred"
	"repro/internal/metrics"
	"repro/internal/resource"
	"repro/internal/testbed"
	"repro/internal/workload"
)

// Fig10a reproduces Figure 10(a): CPU, memory and I/O utilization over
// time, baseline versus HybridMR. The baseline is the traditional
// isolated deployment — interactive applications on dedicated,
// over-provisioned machines and batch work on the rest — while HybridMR
// consolidates batch VMs onto every host and harvests the spare capacity.
func Fig10a() (*Outcome, error) {
	var fired atomic.Uint64
	run := func(hybrid bool) (*metrics.Recorder, error) {
		batchPMs := 12
		if !hybrid {
			batchPMs = 8 // four hosts are reserved for the services
		}
		rig, err := testbed.New(testbed.Options{
			PMs: batchPMs, VMsPerPM: 2, Seed: 1001,
			MapredConfig: mapred.Config{
				SlotCaps:      mapred.DefaultSlotCaps(),
				CapacityAware: hybrid,
			},
			EventSink: &fired,
		})
		if err != nil {
			return nil, err
		}
		if !hybrid {
			rig.PMs = append(rig.PMs, rig.Cluster.AddPMs("svc", 4)...)
		}
		var drm *core.DRM
		var ips *core.IPS
		svcSpecs := workload.Services()
		for i := 0; i < 4; i++ {
			spec := svcSpecs[i%len(svcSpecs)]
			pmIndex := i
			if !hybrid {
				pmIndex = batchPMs + i // the dedicated service hosts
			}
			svcVM, err := addServiceVM(rig, pmIndex, fmt.Sprintf("%s%d", spec.Name, i))
			if err != nil {
				return nil, err
			}
			svc, err := workload.Deploy(spec, svcVM)
			if err != nil {
				return nil, err
			}
			svc.SetClients(900)
			if hybrid {
				if ips == nil {
					ips = core.NewIPS(rig.Engine, rig.Cluster, rig.JT)
					ips.Start(5 * time.Second)
				}
				ips.Watch(svc)
			}
		}
		// A continuous batch stream keeps the cluster busy for the whole
		// 80-minute window, as in the paper's mixed-workload run.
		for i, b := range []mapred.JobSpec{workload.Sort(), workload.Kmeans(), workload.Wcount(), workload.Twitter()} {
			spec := b.WithInputMB(scaledMB(4 * workload.GB))
			var resubmit func(*mapred.Job)
			resubmit = func(*mapred.Job) {
				if rig.Engine.Now() < 75*time.Minute {
					_, _ = rig.JT.Submit(spec, resubmit)
				}
			}
			i := i
			rig.Engine.After(time.Duration(i)*2*time.Minute, func() {
				_, _ = rig.JT.Submit(spec, resubmit)
			})
		}
		if hybrid {
			rig.Engine.After(time.Second, func() {
				drm = core.NewDRM(rig.Engine, rig.JT, core.AllModes(), 5*time.Second)
				drm.Start()
			})
		}
		rec := metrics.NewRecorder(rig.Cluster, time.Minute, 80*time.Minute)
		rig.Engine.RunUntil(80 * time.Minute)
		rec.Stop()
		if ips != nil {
			ips.Stop()
		}
		if drm != nil {
			drm.Stop()
		}
		return rec, nil
	}
	both, err := Map(2, func(i int) (*metrics.Recorder, error) {
		return run(i == 1)
	})
	if err != nil {
		return nil, err
	}
	base, hyb := both[0], both[1]
	out := &Outcome{Table: &Table{
		ID:      "fig10a",
		Title:   "Mean utilization over 80 minutes: baseline vs HybridMR",
		Columns: []string{"minute", "cpu-base", "cpu-hyb", "mem-base", "mem-hyb", "io-base", "io-hyb"},
	}}
	_, cpuB := base.Series(resource.CPU)
	_, cpuH := hyb.Series(resource.CPU)
	_, memB := base.Series(resource.Memory)
	_, memH := hyb.Series(resource.Memory)
	_, ioB := base.Series(resource.DiskIO)
	_, ioH := hyb.Series(resource.DiskIO)
	for m := 4; m < len(cpuB) && m < len(cpuH); m += 5 {
		out.Table.AddCells(Str(fmt.Sprintf("%d", m+1)),
			F3(cpuB[m]), F3(cpuH[m]), F3(memB[m]), F3(memH[m]), F3(ioB[m]), F3(ioH[m]))
	}
	out.Notef("mean CPU util %.2f -> %.2f, memory %.2f -> %.2f, I/O %.2f -> %.2f under HybridMR (paper: HybridMR boosts all three)",
		base.MeanUtil(resource.CPU), hyb.MeanUtil(resource.CPU),
		base.MeanUtil(resource.Memory), hyb.MeanUtil(resource.Memory),
		base.MeanUtil(resource.DiskIO), hyb.MeanUtil(resource.DiskIO))
	out.Scalar("cpu_base_mean", base.MeanUtil(resource.CPU))
	out.Scalar("cpu_hyb_mean", hyb.MeanUtil(resource.CPU))
	out.Scalar("mem_base_mean", base.MeanUtil(resource.Memory))
	out.Scalar("mem_hyb_mean", hyb.MeanUtil(resource.Memory))
	out.Scalar("io_base_mean", base.MeanUtil(resource.DiskIO))
	out.Scalar("io_hyb_mean", hyb.MeanUtil(resource.DiskIO))
	out.EventsFired = fired.Load()
	return out, nil
}

// migrationSweep migrates each of 24 VMs once and returns per-node stats.
func migrationSweep(memMB float64, runWcount bool, sink *atomic.Uint64) ([]cluster.MigrationStats, error) {
	rig, err := testbed.New(testbed.Options{
		PMs: 24, VMsPerPM: 1, VMMemoryMB: memMB, Seed: 1009, EventSink: sink,
	})
	if err != nil {
		return nil, err
	}
	// Spare destinations.
	spares := rig.Cluster.AddPMs("spare", 24)
	if runWcount {
		// Keep Wcount running for the whole migration sweep by
		// resubmitting it as it completes.
		spec := workload.Wcount().WithInputMB(scaledMB(10 * workload.GB))
		var resubmit func(*mapred.Job)
		resubmit = func(*mapred.Job) {
			// Keep the cluster loaded until the last migration starts.
			if rig.Engine.Now() < time.Duration(30+4*24)*time.Second {
				_, _ = rig.JT.Submit(spec, resubmit)
			}
		}
		if _, err := rig.JT.Submit(spec, resubmit); err != nil {
			return nil, err
		}
	}
	stats := make([]cluster.MigrationStats, 24)
	gotAll := 0
	for i, vm := range rig.VMs {
		i, vm := i, vm
		rig.Engine.After(time.Duration(30+4*i)*time.Second, func() {
			_ = rig.Cluster.Migrate(vm, spares[i], func(s cluster.MigrationStats) {
				stats[i] = s
				gotAll++
			})
		})
	}
	rig.Engine.RunUntil(4 * time.Hour)
	if gotAll != 24 {
		return nil, fmt.Errorf("experiments: only %d/24 migrations completed", gotAll)
	}
	return stats, nil
}

type migrationConfig struct {
	name   string
	memMB  float64
	wcount bool
}

var migrationConfigs = []migrationConfig{
	{"Idle-0.5GB", 512, false},
	{"Idle-1GB", 1024, false},
	{"Wcount-0.5GB", 512, true},
	{"Wcount-1GB", 1024, true},
}

func runMigrationConfigs(sink *atomic.Uint64) (map[string][]cluster.MigrationStats, error) {
	results, err := Map(len(migrationConfigs), func(i int) ([]cluster.MigrationStats, error) {
		cfg := migrationConfigs[i]
		s, err := migrationSweep(cfg.memMB, cfg.wcount, sink)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", cfg.name, err)
		}
		return s, nil
	})
	if err != nil {
		return nil, err
	}
	out := make(map[string][]cluster.MigrationStats, len(migrationConfigs))
	for i, cfg := range migrationConfigs {
		out[cfg.name] = results[i]
	}
	return out, nil
}

// Fig10b reproduces Figure 10(b): per-VM live-migration time for idle
// and Wcount-loaded VMs at 0.5 and 1 GB.
func Fig10b() (*Outcome, error) {
	var fired atomic.Uint64
	all, err := runMigrationConfigs(&fired)
	if err != nil {
		return nil, err
	}
	out := &Outcome{Table: &Table{
		ID:      "fig10b",
		Title:   "VM migration time (s) per node",
		Columns: []string{"node", "Idle-0.5GB", "Idle-1GB", "Wcount-0.5GB", "Wcount-1GB"},
	}}
	for i := 0; i < 24; i++ {
		row := []Cell{Str(fmt.Sprintf("%d", i))}
		for _, cfg := range migrationConfigs {
			row = append(row, F1(all[cfg.name][i].TotalTime.Seconds()))
		}
		out.Table.AddCells(row...)
	}
	mean := func(name string) float64 {
		var s float64
		for _, m := range all[name] {
			s += m.TotalTime.Seconds()
		}
		return s / 24
	}
	out.Notef("mean migration time: idle-1GB %.1fs vs Wcount-1GB %.1fs (paper: more memory and active Hadoop lengthen migration)",
		mean("Idle-1GB"), mean("Wcount-1GB"))
	out.Scalar("mean_idle_05", mean("Idle-0.5GB"))
	out.Scalar("mean_idle_1", mean("Idle-1GB"))
	out.Scalar("mean_wcount_05", mean("Wcount-0.5GB"))
	out.Scalar("mean_wcount_1", mean("Wcount-1GB"))
	out.EventsFired = fired.Load()
	return out, nil
}

// Fig10c reproduces Figure 10(c): per-VM migration downtime; loaded VMs
// show wide variation.
func Fig10c() (*Outcome, error) {
	var fired atomic.Uint64
	all, err := runMigrationConfigs(&fired)
	if err != nil {
		return nil, err
	}
	out := &Outcome{Table: &Table{
		ID:      "fig10c",
		Title:   "VM migration downtime (ms) per node",
		Columns: []string{"node", "Idle-1GB", "Wcount-0.5GB", "Wcount-1GB"},
	}}
	names := []string{"Idle-1GB", "Wcount-0.5GB", "Wcount-1GB"}
	for i := 0; i < 24; i++ {
		row := []Cell{Str(fmt.Sprintf("%d", i))}
		for _, name := range names {
			row = append(row, F0(float64(all[name][i].Downtime.Milliseconds())))
		}
		out.Table.AddCells(row...)
	}
	spread := func(name string) (lo, hi float64) {
		lo, hi = 1e18, 0
		for _, m := range all[name] {
			ms := float64(m.Downtime.Milliseconds())
			if ms < lo {
				lo = ms
			}
			if ms > hi {
				hi = ms
			}
		}
		return lo, hi
	}
	iLo, iHi := spread("Idle-1GB")
	wLo, wHi := spread("Wcount-1GB")
	out.Notef("downtime spread: idle-1GB %.0f-%.0f ms, Wcount-1GB %.0f-%.0f ms (paper: loaded VMs vary widely)",
		iLo, iHi, wLo, wHi)
	out.Scalar("idle_spread_ms", iHi-iLo)
	out.Scalar("wcount_spread_ms", wHi-wLo)
	out.EventsFired = fired.Load()
	return out, nil
}
