package experiments

import (
	"encoding/json"
	"fmt"
	"strings"
	"testing"

	"repro/internal/critpath"
	"repro/internal/trace"
)

// withParallelism runs fn with the worker-pool width pinned and restores
// the global.
func withParallelism(t *testing.T, n int, fn func()) {
	t.Helper()
	prev := Parallelism
	Parallelism = n
	defer func() { Parallelism = prev }()
	fn()
}

func TestWorkersResolvesParallelism(t *testing.T) {
	withParallelism(t, 3, func() {
		if got := Workers(); got != 3 {
			t.Errorf("Workers() = %d with Parallelism=3", got)
		}
	})
	withParallelism(t, 0, func() {
		if got := Workers(); got < 1 {
			t.Errorf("Workers() = %d with Parallelism unset, want >= 1", got)
		}
	})
}

func TestMapReturnsResultsInIndexOrder(t *testing.T) {
	for _, workers := range []int{1, 4, 16} {
		withParallelism(t, workers, func() {
			out, err := Map(100, func(i int) (int, error) { return i * i, nil })
			if err != nil {
				t.Fatalf("workers=%d: %v", workers, err)
			}
			for i, v := range out {
				if v != i*i {
					t.Fatalf("workers=%d: out[%d] = %d, want %d", workers, i, v, i*i)
				}
			}
		})
	}
}

func TestMapZeroItems(t *testing.T) {
	out, err := Map(0, func(i int) (int, error) { return 0, nil })
	if err != nil || len(out) != 0 {
		t.Errorf("Map(0) = %v, %v", out, err)
	}
}

// TestMapReportsLowestIndexError pins the deterministic error contract:
// whichever goroutine fails first, the caller always sees the failure of
// the lowest sweep-point index.
func TestMapReportsLowestIndexError(t *testing.T) {
	for _, workers := range []int{1, 8} {
		withParallelism(t, workers, func() {
			_, err := Map(50, func(i int) (int, error) {
				if i%7 == 3 { // fails at 3, 10, 17, ...
					return 0, fmt.Errorf("point %d failed", i)
				}
				return i, nil
			})
			if err == nil || err.Error() != "point 3 failed" {
				t.Errorf("workers=%d: err = %v, want lowest-index failure (point 3)", workers, err)
			}
		})
	}
}

// TestParallelDeterminism is the regression gate for the experiment
// worker pool: a representative subset of figures must render
// byte-identical tables and notes — and attribute identical event
// totals — at parallelism 1 and 8. Every sweep point owns its seeded
// engine, so the worker count can only change scheduling, never results.
func TestParallelDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("full experiment sweep")
	}
	// The subset covers the refactor patterns: grid fan-out (fig1a),
	// shared helper with sink (fig2a), normalized series (fig5a), the
	// interference sweep (fig6c), paired A/B runs (abl-speculation) and
	// fault-injected runs (ext-faults).
	ids := []string{"fig1a", "fig2a", "fig5a", "fig6c", "abl-speculation", "ext-faults"}
	withScale(t, 0.1, func() {
		for _, id := range ids {
			exp, ok := ByID(id)
			if !ok {
				t.Fatalf("unknown experiment %s", id)
			}
			render := func(workers int) (string, uint64, string) {
				var text string
				var events uint64
				var snap string
				withParallelism(t, workers, func() {
					outcome, err := exp.Run()
					if err != nil {
						t.Fatalf("%s at parallelism %d: %v", id, workers, err)
					}
					var sb strings.Builder
					outcome.Fprint(&sb)
					text = sb.String()
					events = outcome.EventsFired
					data, err := json.Marshal(struct {
						M trace.Snapshot              `json:"metrics"`
						C map[string]critpath.Summary `json:"critical_paths"`
					}{outcome.Metrics, outcome.CritPaths})
					if err != nil {
						t.Fatalf("%s: marshal metrics: %v", id, err)
					}
					snap = string(data)
				})
				return text, events, snap
			}
			serial, serialEvents, serialSnap := render(1)
			parallel, parallelEvents, parallelSnap := render(8)
			if serial != parallel {
				t.Errorf("%s output differs between parallelism 1 and 8:\n--- serial ---\n%s\n--- parallel ---\n%s", id, serial, parallel)
			}
			if serialEvents != parallelEvents {
				t.Errorf("%s EventsFired differs: %d serial vs %d parallel", id, serialEvents, parallelEvents)
			}
			if serialEvents == 0 {
				t.Errorf("%s attributed zero events — sink not plumbed", id)
			}
			// The merged metrics snapshot (and any critical-path digests)
			// must also be worker-count independent: Registry.Merge is
			// order-independent by construction.
			if serialSnap != parallelSnap {
				t.Errorf("%s metrics snapshot differs between parallelism 1 and 8:\n--- serial ---\n%s\n--- parallel ---\n%s", id, serialSnap, parallelSnap)
			}
			if serialSnap == `{"metrics":{},"critical_paths":null}` {
				t.Errorf("%s recorded no metrics — pool not plumbed", id)
			}
		}
	})
}
