package experiments

import (
	"sync"

	"repro/internal/critpath"
	"repro/internal/trace"
)

// metricsPool collects metrics from concurrent sweep points. Each point
// records into its own private registry (shared registries are not
// goroutine-safe, and interleaving would be nondeterministic anyway) and
// folds it in afterwards. Folded registries are combined lazily with
// Registry.MergeAll, whose float accumulations are order-canonical, so
// the merged snapshot is byte-identical at any worker count even though
// workers hand registries over in finish order.
type metricsPool struct {
	mu   sync.Mutex
	regs []*trace.Registry
}

func newMetricsPool() *metricsPool {
	return &metricsPool{}
}

// registry hands out a fresh private registry for one sweep point.
func (p *metricsPool) registry() *trace.Registry {
	if p == nil {
		return nil
	}
	return trace.NewRegistry()
}

// fold hands one sweep point's registry to the pool; safe to call from
// Map workers.
func (p *metricsPool) fold(r *trace.Registry) {
	if p == nil || r == nil {
		return
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	p.regs = append(p.regs, r)
}

// snapshot merges everything folded so far and summarizes it.
func (p *metricsPool) snapshot() trace.Snapshot {
	if p == nil {
		return trace.Snapshot{}
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	merged := trace.NewRegistry()
	merged.MergeAll(p.regs)
	return merged.Snapshot()
}

// critPaths accumulates per-benchmark critical-path summaries keyed by a
// deterministic label; safe to call from Map workers.
type critPaths struct {
	mu sync.Mutex
	m  map[string]critpath.Summary
}

func (c *critPaths) add(label string, sum *critpath.Summary) {
	if c == nil || sum == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.m == nil {
		c.m = map[string]critpath.Summary{}
	}
	c.m[label] = *sum
}
