package experiments

import (
	"fmt"
	"sync/atomic"
	"time"

	"repro/internal/fault"
	"repro/internal/invariant"
	"repro/internal/testbed"
	"repro/internal/workload"
)

// ExtFaults measures the cost of fault tolerance: Sort completion time
// under increasing machine-crash rates (each crash repaired two minutes
// later), on a native cluster and on the paper's virtualized layout. The
// axis is an accelerated per-machine rate — real MTBFs are months, far
// beyond a single job's span, so fault-injection studies compress them —
// and the cluster-wide rate is the per-machine rate times the fleet size.
// Every cell uses the same fault seed, so the curves are comparable and
// any run is replayable.
func ExtFaults() (*Outcome, error) {
	const faultSeed = 1231
	const pms = 8
	rates := []float64{0, 2, 4, 8} // crashes per machine-hour
	var fired atomic.Uint64
	pool := newMetricsPool()
	var paths critPaths
	run := func(virtual bool, rate float64) (float64, error) {
		reg := pool.registry()
		// The safety-invariant checker is always on here: this is the one
		// figure whose whole point is recovery, so a broken recovery path
		// must fail the experiment (and with it the -check fidelity gate)
		// by name rather than skew the JCT curve silently.
		inv := invariant.New()
		opts := testbed.Options{PMs: pms, Seed: 1237, EventSink: &fired, Metrics: reg, Invariants: inv}
		if virtual {
			opts.VMsPerPM = 2
		}
		if rate > 0 {
			opts.Faults = &fault.Options{
				Seed: faultSeed,
				Profile: &fault.Profile{
					PMCrashPerHour: rate * pms,
					RepairAfter:    2 * time.Minute,
					Horizon:        30 * time.Minute,
				},
			}
		}
		rig, err := testbed.New(opts)
		if err != nil {
			return 0, err
		}
		defer pool.fold(reg)
		res, err := rig.RunJob(workload.Sort().WithInputMB(scaledMB(8 * workload.GB)))
		if err != nil {
			return 0, err
		}
		if got := rig.FS.UnderReplicated(); got != 0 {
			return 0, fmt.Errorf("ext-faults: %d blocks under-replicated after recovery", got)
		}
		if vs := inv.Final(); len(vs) > 0 {
			return 0, fmt.Errorf("ext-faults: safety invariant violated: %s", vs[0])
		}
		mode := "native"
		if virtual {
			mode = "virtual"
		}
		paths.add(fmt.Sprintf("%s-%.0f-crashes", mode, rate), res.CritPath)
		return res.JCT.Seconds(), nil
	}
	out := &Outcome{Table: &Table{
		ID:      "ext-faults",
		Title:   "Sort JCT (s) vs accelerated machine-crash rate (repair after 2 min)",
		Columns: []string{"crashes/machine-hour", "native", "virtual (2 VMs/PM)"},
	}}
	type faultPair struct{ nat, virt float64 }
	results, err := Map(len(rates), func(i int) (faultPair, error) {
		nat, err := run(false, rates[i])
		if err != nil {
			return faultPair{}, err
		}
		virt, err := run(true, rates[i])
		if err != nil {
			return faultPair{}, err
		}
		return faultPair{nat: nat, virt: virt}, nil
	})
	if err != nil {
		return nil, err
	}
	var base, worst [2]float64
	for i, rate := range rates {
		nat, virt := results[i].nat, results[i].virt
		if rate == 0 {
			base = [2]float64{nat, virt}
		}
		worst = [2]float64{nat, virt}
		out.Table.AddCells(Str(fmt.Sprintf("%.0f", rate)), F1(nat), F1(virt))
	}
	out.Notef("at 8 crashes/machine-hour Sort slows %.0f%% native and %.0f%% virtual; every job still completes and all surviving blocks heal to target replication (fault seed %d)",
		(worst[0]-base[0])/base[0]*100, (worst[1]-base[1])/base[1]*100, faultSeed)
	out.Scalar("slowdown_native", (worst[0]-base[0])/base[0])
	out.Scalar("slowdown_virtual", (worst[1]-base[1])/base[1])
	out.EventsFired = fired.Load()
	out.Metrics = pool.snapshot()
	out.CritPaths = paths.m
	return out, nil
}
