package experiments

import (
	"fmt"
	"sync/atomic"

	"repro/internal/mapred"
	"repro/internal/testbed"
	"repro/internal/workload"
)

// Fig2a reproduces Figure 2(a): Sort JCT with 16 VMs consolidated on 2
// PMs (Same-Host) versus spread across 8 PMs (Cross-Host), for 1-5 GB of
// input. Cross-host shuffle rides the network and loses.
func Fig2a() (*Outcome, error) {
	out := &Outcome{Table: &Table{
		ID:      "fig2a",
		Title:   "Sort JCT (s): Same-Host (16 VMs on 2 PMs) vs Cross-Host (16 VMs on 8 PMs)",
		Columns: []string{"data(GB)", "Same-Host", "Cross-Host"},
	}}
	var fired atomic.Uint64
	pool := newMetricsPool()
	// The paper squeezes 16 one-vCPU VMs onto 2 dual-core PMs for the
	// Same-Host case; VMs are shrunk to 480 MB with single task slots so
	// that eight guests fit in 4 GB of host memory.
	run := func(pms int, mb float64) (float64, error) {
		reg := pool.registry()
		rig, err := testbed.New(testbed.Options{
			PMs:          pms,
			VMsPerPM:     16 / pms,
			VMMemoryMB:   480,
			Seed:         211,
			MapredConfig: mapred.Config{MapSlots: 1, ReduceSlots: 1},
			EventSink:    &fired,
			Metrics:      reg,
		})
		if err != nil {
			return 0, err
		}
		res, err := rig.RunJob(workload.Sort().WithInputMB(scaledMB(mb)))
		if err != nil {
			return 0, err
		}
		pool.fold(reg)
		return res.JCT.Seconds(), nil
	}
	sizes := []float64{1, 2, 3, 4, 5}
	type pair struct{ same, cross float64 }
	results, err := Map(len(sizes), func(i int) (pair, error) {
		same, err := run(2, sizes[i]*workload.GB)
		if err != nil {
			return pair{}, err
		}
		cross, err := run(8, sizes[i]*workload.GB)
		if err != nil {
			return pair{}, err
		}
		return pair{same: same, cross: cross}, nil
	})
	if err != nil {
		return nil, err
	}
	worseCount := 0
	firstSame, lastSame := 0.0, 0.0
	for i, gb := range sizes {
		same, cross := results[i].same, results[i].cross
		if cross > same {
			worseCount++
		}
		if i == 0 {
			firstSame = same
		}
		lastSame = same
		out.Table.AddCells(Str(fmt.Sprintf("%.0f", gb)), F1(same), F1(cross))
	}
	out.Notef("JCTs grow with input size in both layouts (Same-Host %.0fs -> %.0fs), matching the paper's trend", firstSame, lastSame)
	out.Notef("KNOWN DIVERGENCE: the paper measures Cross-Host as slower (network-delay bound); our disk model charges all spill I/O to the consolidated hosts' two spindles, which dominates instead (%d/5 sizes have Cross-Host slower). The paper's 1-5 GB inputs largely fit the page cache, which this simulator does not model.", worseCount)
	out.Scalar("cross_host_slower_sizes", float64(worseCount))
	out.Scalar("same_host_first", firstSame)
	out.Scalar("same_host_last", lastSame)
	out.EventsFired = fired.Load()
	out.Metrics = pool.snapshot()
	return out, nil
}

// Fig2b reproduces Figure 2(b): CPU-bound Kmeans speeds up with more VMs
// per PM and more task slots (V1-1M-1R, V2-2M-4R, V4-4M-6R), normalized
// to V1, with larger gains at larger inputs.
func Fig2b() (*Outcome, error) {
	out := &Outcome{Table: &Table{
		ID:      "fig2b",
		Title:   "Kmeans normalized JCT: more VMs and slots exploit idle cores",
		Columns: []string{"config", "Kmeans-1GB", "Kmeans-4GB", "Kmeans-8GB"},
	}}
	type cfg struct {
		name     string
		vmsPerPM int
		mapSlots int
		redSlots int
	}
	cfgs := []cfg{
		{"V1-1M-1R", 1, 1, 1},
		{"V2-2M-4R", 2, 2, 4},
		{"V4-4M-6R", 4, 4, 6},
	}
	sizes := []float64{1, 4, 8}
	var fired atomic.Uint64
	pool := newMetricsPool()
	flat, err := Map(len(cfgs)*len(sizes), func(i int) (float64, error) {
		c := cfgs[i/len(sizes)]
		gb := sizes[i%len(sizes)]
		reg := pool.registry()
		rig, err := testbed.New(testbed.Options{
			PMs:          12,
			VMsPerPM:     c.vmsPerPM,
			Seed:         223,
			MapredConfig: mapred.Config{MapSlots: c.mapSlots, ReduceSlots: c.redSlots},
			EventSink:    &fired,
			Metrics:      reg,
		})
		if err != nil {
			return 0, err
		}
		res, err := rig.RunJob(workload.Kmeans().WithInputMB(scaledMB(gb * workload.GB)))
		if err != nil {
			return 0, err
		}
		pool.fold(reg)
		return res.JCT.Seconds(), nil
	})
	if err != nil {
		return nil, err
	}
	jcts := make(map[string][]float64)
	for ci, c := range cfgs {
		jcts[c.name] = flat[ci*len(sizes) : (ci+1)*len(sizes)]
	}
	for _, c := range cfgs {
		row := []Cell{Str(c.name)}
		for i := range sizes {
			row = append(row, F3(jcts[c.name][i]/jcts["V1-1M-1R"][i]))
		}
		out.Table.AddCells(row...)
	}
	gain1 := 1 - jcts["V4-4M-6R"][0]/jcts["V1-1M-1R"][0]
	gain8 := 1 - jcts["V4-4M-6R"][2]/jcts["V1-1M-1R"][2]
	out.Notef("V4 beats V1 by %.0f%% at 1 GB and %.0f%% at 8 GB (paper: CPU-bound jobs gain from more VMs, more at larger inputs)", gain1*100, gain8*100)
	out.Scalar("gain_1gb", gain1)
	out.Scalar("gain_8gb", gain8)
	out.EventsFired = fired.Load()
	out.Metrics = pool.snapshot()
	return out, nil
}

// Fig2c reproduces Figure 2(c): Dom-0 execution is near native for every
// benchmark.
func Fig2c() (*Outcome, error) {
	out := &Outcome{Table: &Table{
		ID:      "fig2c",
		Title:   "Normalized JCT: Native vs Dom-0 (48 nodes)",
		Columns: []string{"benchmark", "Native", "Dom-0"},
	}}
	specs := workload.Benchmarks()
	var fired atomic.Uint64
	pool := newMetricsPool()
	ratios, err := Map(len(specs), func(i int) (float64, error) {
		spec := specs[i]
		nat, err := runIsolated(spec, 0, 229, &fired, pool)
		if err != nil {
			return 0, err
		}
		rig, err := testbed.New(testbed.Options{PMs: testbedPMs, Dom0: true, Seed: 229, EventSink: &fired})
		if err != nil {
			return 0, err
		}
		dom0, err := rig.RunJob(scaledSpec(spec))
		if err != nil {
			return 0, err
		}
		return dom0.JCT.Seconds() / nat.JCT.Seconds(), nil
	})
	if err != nil {
		return nil, err
	}
	var sum float64
	for i, spec := range specs {
		sum += ratios[i] - 1
		out.Table.AddCells(Str(spec.Name), F3(1), F3(ratios[i]))
	}
	out.Notef("average Dom-0 overhead %.1f%% (paper: under 5%% on average)", sum/float64(len(specs))*100)
	out.Scalar("dom0_overhead_avg", sum/float64(len(specs)))
	out.EventsFired = fired.Load()
	out.Metrics = pool.snapshot()
	return out, nil
}

// Fig2d reproduces Figure 2(d): the split architecture (separate
// TaskTracker and DataNode VMs, Figure 3) beats the combined deployment.
func Fig2d() (*Outcome, error) {
	out := &Outcome{Table: &Table{
		ID:      "fig2d",
		Title:   "Normalized JCT: Combined vs Split Hadoop architecture (24 PMs, 48 VMs)",
		Columns: []string{"benchmark", "Combined", "Split"},
	}}
	specs := workload.Benchmarks()
	var fired atomic.Uint64
	pool := newMetricsPool()
	ratios, err := Map(len(specs), func(i int) (float64, error) {
		spec := specs[i]
		combined, err := runOnRig(testbed.Options{PMs: 24, VMsPerPM: 2, Seed: 233, EventSink: &fired}, spec, pool)
		if err != nil {
			return 0, err
		}
		split, err := runOnRig(testbed.Options{PMs: 24, VMsPerPM: 2, Split: true, Seed: 233, EventSink: &fired}, spec, pool)
		if err != nil {
			return 0, err
		}
		return split / combined, nil
	})
	if err != nil {
		return nil, err
	}
	var sum float64
	for i, spec := range specs {
		sum += 1 - ratios[i]
		out.Table.AddCells(Str(spec.Name), F3(1), F3(ratios[i]))
	}
	out.Notef("split architecture improves JCT by %.1f%% on average (paper: 12.8%%)", sum/float64(len(specs))*100)
	out.Scalar("split_gain_avg", sum/float64(len(specs)))
	out.EventsFired = fired.Load()
	out.Metrics = pool.snapshot()
	return out, nil
}

func runOnRig(opts testbed.Options, spec mapred.JobSpec, pool *metricsPool) (float64, error) {
	reg := pool.registry()
	opts.Metrics = reg
	rig, err := testbed.New(opts)
	if err != nil {
		return 0, err
	}
	res, err := rig.RunJob(scaledSpec(spec))
	if err != nil {
		return 0, err
	}
	pool.fold(reg)
	return res.JCT.Seconds(), nil
}
