package experiments

import (
	"fmt"
	"math"
	"sync/atomic"
	"time"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/dfs"
	"repro/internal/mapred"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/testbed"
	"repro/internal/trace"
	"repro/internal/workload"
)

// hybridRig is the Figure 8(a) testbed: a native partition plus a
// virtual partition (2 VMs per PM) sharing one cluster and one DFS.
type hybridRig struct {
	rig       *testbed.Rig
	engine    *sim.Engine
	cluster   *cluster.Cluster
	nativeJT  *mapred.JobTracker
	virtualJT *mapred.JobTracker
	vms       []*cluster.VM
}

func newHybridRig(nativePMs, vmHosts int, seed int64, capacityAware bool, sink *atomic.Uint64, reg *trace.Registry) (*hybridRig, error) {
	rig, err := testbed.New(testbed.Options{
		PMs:      vmHosts,
		VMsPerPM: 2,
		Seed:     seed,
		MapredConfig: mapred.Config{
			SlotCaps:      mapred.DefaultSlotCaps(),
			CapacityAware: capacityAware,
		},
		EventSink: sink,
		Metrics:   reg,
	})
	if err != nil {
		return nil, err
	}
	h := &hybridRig{
		rig:       rig,
		engine:    rig.Engine,
		cluster:   rig.Cluster,
		virtualJT: rig.JT,
		vms:       rig.VMs,
	}
	if nativePMs > 0 {
		// The native partition runs its own HDFS instance, as on the
		// paper's testbed; otherwise native jobs would pull blocks from
		// (and interfere with) the virtual cluster's DataNodes.
		pms := rig.Cluster.AddPMs("native", nativePMs)
		nativeFS := dfs.New(rig.Engine, dfs.Config{}, seed+13)
		h.nativeJT = mapred.NewJobTracker(rig.Engine, nativeFS, mapred.Config{}, mapred.Fair{})
		for _, pm := range pms {
			h.nativeJT.AddTracker(pm)
		}
	}
	return h, nil
}

// mixResult summarizes one workload-mix run.
type mixResult struct {
	meanJCT     float64
	meanLatency float64
}

// runMix drives nServices interactive applications and nJobs batch jobs
// on a hybrid rig under the given placement policy, returning mean batch
// JCT and mean interactive latency.
func runMix(nServices, nJobs int, usePhase1 bool, seed int64, sink *atomic.Uint64, pool *metricsPool) (mixResult, error) {
	// 8 native PMs plus 16 PMs hosting 32 VMs: the virtual partition
	// keeps real spare capacity, which is the premise the paper's
	// consolidation argument rests on.
	reg := pool.registry()
	h, err := newHybridRig(8, 16, seed, usePhase1, sink, reg)
	if err != nil {
		return mixResult{}, err
	}
	// The baseline is the paper's FCFS discipline: random placement with
	// no Phase II protection, i.e. plain Hadoop on the hybrid hardware.
	cfg := core.Config{TrainingSeed: seed, EventSink: sink}
	if !usePhase1 {
		cfg.DisableDRM = true
		cfg.DisableIPS = true
	}
	sys, err := core.NewSystem(h.engine, h.cluster, h.nativeJT, h.virtualJT, cfg)
	if err != nil {
		return mixResult{}, err
	}
	defer sys.Stop()
	if !usePhase1 {
		sys.Placer = core.NewRandomPlacer(seed)
	}

	svcSpecs := workload.Services()
	var services []*workload.Service
	var drivers []*workload.LoadDriver
	for i := 0; i < nServices; i++ {
		svcVM, err := addServiceVM(h.rig, i, svcSpecs[i%len(svcSpecs)].Name)
		if err != nil {
			return mixResult{}, err
		}
		svc, err := sys.DeployService(svcSpecs[i%len(svcSpecs)], svcVM)
		if err != nil {
			return mixResult{}, err
		}
		services = append(services, svc)
		drivers = append(drivers, workload.NewLoadDriver(h.engine, svc, &workload.DiurnalTrace{
			Base: 1500, Amplitude: 500, Seed: seed + int64(i),
		}, 15*time.Second))
	}

	// A representative batch roster: I/O-heavy, CPU-heavy and mixed jobs
	// in every mix, so small mixes are not dominated by one profile.
	roster := []mapred.JobSpec{
		workload.Sort(), workload.Kmeans(), workload.Wcount(),
		workload.DistGrep(), workload.Twitter(), workload.PiEst(),
	}
	var jobs []*mapred.Job
	for i := 0; i < nJobs; i++ {
		spec := roster[i%len(roster)].WithInputMB(scaledMB(3 * workload.GB))
		if spec.FixedMapWork > 0 {
			spec = scaledSpec(roster[i%len(roster)])
		}
		i := i
		h.engine.After(time.Duration(i)*time.Minute, func() {
			job, _, err := sys.SubmitJob(spec, 0, nil)
			if err == nil {
				jobs = append(jobs, job)
			}
		})
	}

	var latencies []float64
	latTick := sim.NewTicker(h.engine, 15*time.Second, func(time.Duration) {
		for _, svc := range services {
			// Cap samples at a client-timeout level so a single
			// saturated epoch does not dominate the mean.
			latencies = append(latencies, math.Min(svc.LatencyMs(), 5000))
		}
	})

	allDone := func() bool {
		if len(jobs) < nJobs {
			return false
		}
		for _, j := range jobs {
			if !j.Done() {
				return false
			}
		}
		return true
	}
	deadline := 6 * time.Hour
	for at := time.Minute; at <= deadline && !allDone(); at += time.Minute {
		h.engine.RunUntil(at)
	}
	latTick.Stop()
	for _, d := range drivers {
		d.Stop()
	}
	if !allDone() {
		return mixResult{}, fmt.Errorf("experiments: mix did not finish within %v", deadline)
	}
	var js metricsJCT
	for _, j := range jobs {
		js.add(j.JCT().Seconds())
	}
	pool.fold(reg)
	return mixResult{meanJCT: js.mean(), meanLatency: stats.Mean(latencies)}, nil
}

type metricsJCT struct{ vals []float64 }

func (m *metricsJCT) add(v float64) { m.vals = append(m.vals, v) }
func (m *metricsJCT) mean() float64 { return stats.Mean(m.vals) }

// Fig8a reproduces Figure 8(a): the performance gain of Phase I
// placement over random (FCFS) placement for the three workload mixes.
func Fig8a() (*Outcome, error) {
	out := &Outcome{Table: &Table{
		ID:      "fig8a",
		Title:   "Phase I performance gain vs random placement",
		Columns: []string{"mix", "Transactional", "Batch"},
	}}
	mixes := []struct {
		name     string
		services int
		jobs     int
	}{
		{"wmix-1 (50/50)", 6, 6},
		{"wmix-2 (20/80)", 2, 10},
		{"wmix-3 (80/20)", 10, 3},
	}
	var fired atomic.Uint64
	pool := newMetricsPool()
	// Each (mix, policy) run is independent: even index = random
	// placement, odd = Phase I.
	results, err := Map(len(mixes)*2, func(i int) (mixResult, error) {
		mix := mixes[i/2]
		usePhase1 := i%2 == 1
		res, err := runMix(mix.services, mix.jobs, usePhase1, 801, &fired, pool)
		if err != nil {
			policy := "random"
			if usePhase1 {
				policy = "phase1"
			}
			return mixResult{}, fmt.Errorf("fig8a %s %s: %w", mix.name, policy, err)
		}
		return res, nil
	})
	if err != nil {
		return nil, err
	}
	best := 0.0
	for mi, mix := range mixes {
		random, phase1 := results[mi*2], results[mi*2+1]
		transGain := 1 - phase1.meanLatency/random.meanLatency
		batchGain := 1 - phase1.meanJCT/random.meanJCT
		if batchGain > best {
			best = batchGain
		}
		out.Table.AddCells(Str(mix.name), F3(transGain), F3(batchGain))
	}
	out.Notef("profiled placement helps both classes in the batch-heavy mixes; best batch gain %.0f%% (paper: gains up to ~0.4, magnitude varying with mix); wmix-3 has too little batch work for placement to matter much", best*100)
	out.Scalar("best_batch_gain", best)
	out.EventsFired = fired.Load()
	out.Metrics = pool.snapshot()
	return out, nil
}

// drmJCT runs jobs on a 48-VM virtual cluster with static slot caps,
// optionally managed by the DRM in the given mode, and returns each
// job's JCT by benchmark name.
func drmJCT(specs []mapred.JobSpec, managed bool, modes core.ResourceModes, seed int64, sink *atomic.Uint64, pool *metricsPool) (map[string]float64, error) {
	reg := pool.registry()
	rig, err := testbed.New(testbed.Options{
		PMs:      24,
		VMsPerPM: 2,
		Seed:     seed,
		MapredConfig: mapred.Config{
			SlotCaps:      mapred.DefaultSlotCaps(),
			CapacityAware: managed,
		},
		EventSink: sink,
		Metrics:   reg,
	})
	if err != nil {
		return nil, err
	}
	jobs := make([]*mapred.Job, 0, len(specs))
	for _, spec := range specs {
		job, err := rig.JT.Submit(spec, nil)
		if err != nil {
			return nil, err
		}
		jobs = append(jobs, job)
	}
	if managed {
		drm := core.NewDRM(rig.Engine, rig.JT, modes, 5*time.Second)
		drm.Start()
		defer drm.Stop()
	}
	rig.Engine.Run()
	out := make(map[string]float64, len(jobs))
	for _, j := range jobs {
		if !j.Done() {
			return nil, fmt.Errorf("experiments: job %s stalled", j.Spec.Name)
		}
		out[j.Spec.Name] = j.JCT().Seconds()
	}
	pool.fold(reg)
	return out, nil
}

var drmModes = []struct {
	name  string
	modes core.ResourceModes
}{
	{"CPU", core.ResourceModes{CPU: true}},
	{"Memory", core.ResourceModes{Memory: true}},
	{"I/O", core.ResourceModes{IO: true}},
	{"CPU+Mem+I/O", core.AllModes()},
}

func fig8bc(id, title string, together bool, paperAvg, paperMax float64) (*Outcome, error) {
	out := &Outcome{Table: &Table{
		ID:      id,
		Title:   title,
		Columns: []string{"benchmark", "CPU", "Memory", "I/O", "CPU+Mem+I/O"},
	}}
	specs := make([]mapred.JobSpec, 0, 6)
	for _, b := range workload.Benchmarks() {
		specs = append(specs, scaledSpec(b))
	}
	// Config 0 is the unmanaged baseline, then the four DRM modes.
	type drmCfg struct {
		managed bool
		modes   core.ResourceModes
	}
	cfgs := []drmCfg{{false, core.ResourceModes{}}}
	for _, m := range drmModes {
		cfgs = append(cfgs, drmCfg{true, m.modes})
	}
	var fired atomic.Uint64
	pool := newMetricsPool()
	var byCfg []map[string]float64
	if together {
		res, err := Map(len(cfgs), func(i int) (map[string]float64, error) {
			return drmJCT(specs, cfgs[i].managed, cfgs[i].modes, 811, &fired, pool)
		})
		if err != nil {
			return nil, err
		}
		byCfg = res
	} else {
		flat, err := Map(len(cfgs)*len(specs), func(i int) (map[string]float64, error) {
			c := cfgs[i/len(specs)]
			return drmJCT([]mapred.JobSpec{specs[i%len(specs)]}, c.managed, c.modes, 811, &fired, pool)
		})
		if err != nil {
			return nil, err
		}
		byCfg = make([]map[string]float64, len(cfgs))
		for ci := range cfgs {
			merged := make(map[string]float64, len(specs))
			for si, spec := range specs {
				merged[spec.Name] = flat[ci*len(specs)+si][spec.Name]
			}
			byCfg[ci] = merged
		}
	}
	base := byCfg[0]
	reductions := make(map[string]map[string]float64) // benchmark -> mode -> reduction
	for _, b := range specs {
		reductions[b.Name] = make(map[string]float64)
	}
	for mi, m := range drmModes {
		managed := byCfg[mi+1]
		for name, b := range base {
			reductions[name][m.name] = (b - managed[name]) / b
		}
	}
	var all []float64
	for _, spec := range specs {
		row := []Cell{Str(spec.Name)}
		for _, m := range drmModes {
			r := reductions[spec.Name][m.name]
			row = append(row, Pct(r))
			if m.name == "CPU+Mem+I/O" {
				all = append(all, r)
			}
		}
		out.Table.AddCells(row...)
	}
	avg := stats.Mean(all)
	max := stats.Percentile(all, 100)
	out.Notef("CPU+Mem+I/O mode: average JCT reduction %.1f%%, max %.1f%% (paper: %.1f%% / %.1f%%)",
		avg*100, max*100, paperAvg, paperMax)
	out.Scalar("allmode_avg_reduction", avg)
	out.Scalar("allmode_max_reduction", max)
	out.EventsFired = fired.Load()
	out.Metrics = pool.snapshot()
	return out, nil
}

// Fig8b reproduces Figure 8(b): single-job JCT reduction under Phase II
// resource orchestration, per managed-resource mode.
func Fig8b() (*Outcome, error) {
	return fig8bc("fig8b", "Single-job % reduction in JCT under Phase II DRM (48 VMs)", false, 22.0, 29.1)
}

// Fig8c reproduces Figure 8(c): the same comparison with all six jobs
// running concurrently — more interference, more opportunity.
func Fig8c() (*Outcome, error) {
	return fig8bc("fig8c", "Multi-job % reduction in JCT under Phase II DRM (48 VMs)", true, 28.5, 40.8)
}

// Fig8d reproduces Figure 8(d): RUBiS latency versus client count in
// isolation, collocated with FIFO MapReduce, and under HybridMR's IPS.
func Fig8d() (*Outcome, error) {
	out := &Outcome{Table: &Table{
		ID:      "fig8d",
		Title:   "RUBiS latency (ms) vs clients",
		Columns: []string{"clients", "RUBiS", "RUBiS+MapReduce", "HybridMR"},
	}}
	var fired atomic.Uint64
	pool := newMetricsPool()
	run := func(clients int, batch, ips bool) (float64, error) {
		reg := pool.registry()
		rig, err := testbed.New(testbed.Options{
			PMs:      12,
			VMsPerPM: 2,
			Seed:     821,
			MapredConfig: mapred.Config{
				SlotCaps:      mapred.DefaultSlotCaps(),
				CapacityAware: ips,
			},
			Scheduler: mapred.FIFO{},
			EventSink: &fired,
			Metrics:   reg,
		})
		if err != nil {
			return 0, err
		}
		svcVM, err := addServiceVM(rig, 0, "rubis")
		if err != nil {
			return 0, err
		}
		svc, err := workload.Deploy(workload.RUBiS(), svcVM)
		if err != nil {
			return 0, err
		}
		svc.SetClients(clients)
		if batch {
			// A continuous batch stream: each finished job is replaced,
			// as in the paper's co-hosted MapReduce queue.
			spec := workload.Sort().WithInputMB(scaledMB(4 * workload.GB))
			var resubmit func(*mapred.Job)
			resubmit = func(*mapred.Job) {
				_, _ = rig.JT.Submit(spec, resubmit)
			}
			for i := 0; i < 2; i++ {
				if _, err := rig.JT.Submit(spec, resubmit); err != nil {
					return 0, err
				}
			}
		}
		if ips {
			ctl := core.NewIPS(rig.Engine, rig.Cluster, rig.JT)
			ctl.Watch(svc)
			ctl.Start(5 * time.Second)
			defer ctl.Stop()
		}
		// Steady-state latency: the paper's continuously running system
		// is measured in equilibrium, so the first three minutes (IPS
		// convergence) are warm-up.
		var lat []float64
		tick := sim.NewTicker(rig.Engine, 10*time.Second, func(now time.Duration) {
			if now >= 3*time.Minute {
				lat = append(lat, svc.LatencyMs())
			}
		})
		rig.Engine.RunUntil(6 * time.Minute)
		tick.Stop()
		pool.fold(reg)
		return stats.Mean(lat), nil
	}
	var levels []int
	for clients := 400; clients <= 6400; clients += 800 {
		levels = append(levels, clients)
	}
	type latTriple struct{ alone, fifo, hybrid float64 }
	results, err := Map(len(levels), func(i int) (latTriple, error) {
		clients := levels[i]
		alone, err := run(clients, false, false)
		if err != nil {
			return latTriple{}, err
		}
		fifo, err := run(clients, true, false)
		if err != nil {
			return latTriple{}, err
		}
		hybrid, err := run(clients, true, true)
		if err != nil {
			return latTriple{}, err
		}
		return latTriple{alone: alone, fifo: fifo, hybrid: hybrid}, nil
	})
	if err != nil {
		return nil, err
	}
	sla := workload.RUBiS().SLAMs
	var fifoViolations, hybridViolations int
	for i, clients := range levels {
		r := results[i]
		if r.fifo > sla {
			fifoViolations++
		}
		if r.hybrid > sla {
			hybridViolations++
		}
		out.Table.AddCells(Str(fmt.Sprintf("%d", clients)),
			F0(r.alone), F0(r.fifo), F0(r.hybrid))
	}
	out.Notef("FIFO collocation violates the 2 s SLA at %d client levels; HybridMR at %d (paper: HybridMR keeps latency within bounds)",
		fifoViolations, hybridViolations)
	out.Scalar("fifo_sla_violations", float64(fifoViolations))
	out.Scalar("hybrid_sla_violations", float64(hybridViolations))
	out.EventsFired = fired.Load()
	out.Metrics = pool.snapshot()
	return out, nil
}
