package experiments

import (
	"fmt"
	"sync/atomic"
	"time"

	"math"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/mapred"
	"repro/internal/policy"
	"repro/internal/resource"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/testbed"
	"repro/internal/workload"
)

// Extensions lists the beyond-the-paper experiments: the future-work
// directions Section VI names (iterative and in-memory MapReduce), a
// job-arrival-stream throughput study, and ablations of HybridMR's
// design choices from DESIGN.md.
func Extensions() []Experiment {
	return []Experiment{
		{"ext-iterative", "Future work: Twister-style iterative and Spark-style in-memory MapReduce", ExtIterative},
		{"ext-stream", "Poisson job-arrival stream: vanilla Hadoop vs HybridMR on a hybrid fleet", ExtStream},
		{"ext-faults", "Fault tolerance: Sort JCT vs machine-crash rate, native vs virtualized", ExtFaults},
		{"abl-speculation", "Ablation: speculative execution on a straggling node", AblSpeculation},
		{"abl-capacity", "Ablation: capacity-aware in-cluster placement", AblCapacity},
		{"abl-deferral", "Ablation: DRM memory deferral vs proportional paging", AblDeferral},
	}
}

// ExtIterative compares classic (disk-spilling, per-iteration HDFS
// round-trips) against in-memory iterative execution of a Kmeans-style
// job, on a big-memory native cluster and on the paper's 1 GB guests.
// The Spark claim — big gains when the working set fits in RAM, eroded
// gains when it does not — falls out of the memory model.
func ExtIterative() (*Outcome, error) {
	out := &Outcome{Table: &Table{
		ID:      "ext-iterative",
		Title:   "Iterative PageRank, 4 rounds: classic vs in-memory (JCT seconds)",
		Columns: []string{"platform", "classic", "in-memory", "speedup"},
	}}
	// A PageRank-shaped iterative job: each round shuffles its whole
	// input, the workload class Twister and Spark were built for.
	pageRank := func(inputMB float64) mapred.JobSpec {
		return mapred.JobSpec{
			Name:             "PageRank",
			InputMB:          inputMB,
			Reduces:          16,
			MapStreamMBps:    48,
			MapCPUPerMB:      0.008,
			MapMemMB:         220,
			ShuffleRatio:     1,
			ReduceStreamMBps: 40,
			ReduceCPUPerMB:   0.008,
			ReduceMemMB:      260,
			OutputRatio:      1,
		}
	}
	var fired atomic.Uint64
	pool := newMetricsPool()
	run := func(virtual, inMemory bool) (float64, error) {
		reg := pool.registry()
		opts := testbed.Options{PMs: 8, Seed: 1201, EventSink: &fired, Metrics: reg}
		if virtual {
			opts.VMsPerPM = 2
		}
		rig, err := testbed.New(opts)
		if err != nil {
			return 0, err
		}
		defer pool.fold(reg)
		base := pageRank(scaledMB(2 * workload.GB))
		base.InMemory = inMemory
		ij, err := rig.JT.SubmitIterative(mapred.IterativeSpec{
			Base:       base,
			Iterations: 4,
		}, nil)
		if err != nil {
			return 0, err
		}
		rig.Engine.Run()
		if !ij.Done() || ij.Err() != nil {
			return 0, fmt.Errorf("iterative chain incomplete: %v", ij.Err())
		}
		return ij.JCT().Seconds(), nil
	}
	platforms := []struct {
		name    string
		virtual bool
	}{
		{"native (4 GB nodes)", false},
		{"virtual (1 GB guests)", true},
	}
	// Four independent runs: (platform, classic|in-memory).
	jcts, err := Map(len(platforms)*2, func(i int) (float64, error) {
		return run(platforms[i/2].virtual, i%2 == 1)
	})
	if err != nil {
		return nil, err
	}
	var speedups []float64
	for pi, platform := range platforms {
		classic, inMem := jcts[pi*2], jcts[pi*2+1]
		speedup := classic / inMem
		speedups = append(speedups, speedup)
		out.Table.AddCells(Str(platform.name),
			F1(classic), F1(inMem), Num(fmt.Sprintf("%.2fx", speedup), speedup))
	}
	out.Notef("in-memory iteration gains %.2fx on big-memory nodes but only %.2fx on 1 GB guests, where cached partitions page — the Spark-on-small-VMs trade-off the paper's future work anticipates",
		speedups[0], speedups[1])
	out.Scalar("speedup_native", speedups[0])
	out.Scalar("speedup_virtual", speedups[1])
	out.EventsFired = fired.Load()
	out.Metrics = pool.snapshot()
	return out, nil
}

// ExtStream drives a two-hour Poisson stream of mixed jobs at a hybrid
// fleet under vanilla Hadoop (random placement, no Phase II) and under
// HybridMR, comparing completions, completion-time statistics and SLA
// compliance of the co-hosted services.
func ExtStream() (*Outcome, error) {
	type result struct {
		completed  int
		meanJCT    float64
		p95JCT     float64
		compliance float64
	}
	var fired atomic.Uint64
	pool := newMetricsPool()
	run := func(hybrid bool) (result, error) {
		reg := pool.registry()
		h, err := newHybridRig(8, 8, 1207, hybrid, &fired, reg)
		if err != nil {
			return result{}, err
		}
		defer pool.fold(reg)
		cfg := core.Config{TrainingSeed: 1207, EventSink: &fired}
		if !hybrid {
			cfg.DisableDRM = true
			cfg.DisableIPS = true
		}
		sys, err := core.NewSystem(h.engine, h.cluster, h.nativeJT, h.virtualJT, cfg)
		if err != nil {
			return result{}, err
		}
		defer sys.Stop()
		if !hybrid {
			sys.Placer = core.NewRandomPlacer(1207)
		}
		var services []*workload.Service
		for i, spec := range workload.Services() {
			svcVM, err := addServiceVM(h.rig, i, spec.Name)
			if err != nil {
				return result{}, err
			}
			svc, err := sys.DeployService(spec, svcVM)
			if err != nil {
				return result{}, err
			}
			svc.SetClients(2200)
			services = append(services, svc)
		}
		var jcts []float64
		horizon := 2 * time.Hour
		_, err = workload.ScheduleSuite(workload.SuiteSpec{
			Mix:              workload.DefaultMix(scaledMB(2 * workload.GB)),
			MeanInterarrival: 3 * time.Minute,
			Horizon:          horizon,
			Seed:             1213,
		}, func(d time.Duration, fn func()) { h.engine.After(d, fn) }, func(a workload.Arrival) error {
			_, _, err := sys.SubmitJob(a.Spec, 0, func(j *mapred.Job) {
				jcts = append(jcts, j.JCT().Seconds())
			})
			return err
		})
		if err != nil {
			return result{}, err
		}
		samples, violations := 0, 0
		tick := sim.NewTicker(h.engine, 15*time.Second, func(time.Duration) {
			for _, svc := range services {
				samples++
				if svc.SLAViolated() {
					violations++
				}
			}
		})
		h.engine.RunUntil(horizon + 30*time.Minute) // drain the tail
		tick.Stop()
		res := result{
			completed: len(jcts),
			meanJCT:   stats.Mean(jcts),
			p95JCT:    stats.Percentile(jcts, 95),
		}
		if samples > 0 {
			res.compliance = 1 - float64(violations)/float64(samples)
		}
		return res, nil
	}
	both, err := Map(2, func(i int) (result, error) {
		return run(i == 1)
	})
	if err != nil {
		return nil, err
	}
	vanilla, hybrid := both[0], both[1]
	out := &Outcome{Table: &Table{
		ID:      "ext-stream",
		Title:   "Two-hour Poisson job stream on an 8 PM + 16 VM hybrid fleet",
		Columns: []string{"metric", "vanilla", "hybridmr"},
	}}
	out.Table.AddCells(Str("jobs completed"), Int(vanilla.completed), Int(hybrid.completed))
	out.Table.AddCells(Str("mean JCT (s)"), F0(vanilla.meanJCT), F0(hybrid.meanJCT))
	out.Table.AddCells(Str("p95 JCT (s)"), F0(vanilla.p95JCT), F0(hybrid.p95JCT))
	out.Table.AddCells(Str("SLA compliance"), F3(vanilla.compliance), F3(hybrid.compliance))
	out.Notef("HybridMR changes mean JCT by %.0f%% and SLA compliance from %.2f to %.2f under an open arrival process",
		(vanilla.meanJCT-hybrid.meanJCT)/vanilla.meanJCT*100, vanilla.compliance, hybrid.compliance)
	out.Scalar("compliance_vanilla", vanilla.compliance)
	out.Scalar("compliance_hybrid", hybrid.compliance)
	out.Scalar("jct_delta", (vanilla.meanJCT-hybrid.meanJCT)/vanilla.meanJCT)
	out.Scalar("completed_vanilla", float64(vanilla.completed))
	out.Scalar("completed_hybrid", float64(hybrid.completed))
	out.EventsFired = fired.Load()
	out.Metrics = pool.snapshot()
	return out, nil
}

// AblSpeculation quantifies speculative execution: a Sort on a cluster
// with one antagonist-loaded straggler node, with and without backups.
func AblSpeculation() (*Outcome, error) {
	var fired atomic.Uint64
	pool := newMetricsPool()
	var paths critPaths
	run := func(disable bool) (float64, error) {
		reg := pool.registry()
		rig, err := testbed.New(testbed.Options{
			PMs: 8, Seed: 1217,
			MapredConfig: mapred.Config{DisableSpeculation: disable},
			EventSink:    &fired,
			Metrics:      reg,
		})
		if err != nil {
			return 0, err
		}
		defer pool.fold(reg)
		antagonist := &cluster.Consumer{
			Name:   "antagonist",
			Demand: resource.NewVector(2, 0, 85, 0),
			Work:   cluster.OpenEnded,
			Weight: 20,
		}
		if err := rig.PMs[7].Start(antagonist); err != nil {
			return 0, err
		}
		res, err := rig.RunJob(workload.Sort().WithInputMB(scaledMB(4 * workload.GB)))
		if err != nil {
			return 0, err
		}
		label := "speculation-on"
		if disable {
			label = "speculation-off"
		}
		paths.add(label, res.CritPath)
		return res.JCT.Seconds(), nil
	}
	both, err := Map(2, func(i int) (float64, error) {
		return run(i == 1)
	})
	if err != nil {
		return nil, err
	}
	withSpec, without := both[0], both[1]
	out := &Outcome{Table: &Table{
		ID:      "abl-speculation",
		Title:   "Sort JCT (s) with one straggling node",
		Columns: []string{"speculation", "JCT"},
	}}
	out.Table.AddCells(Str("on"), F1(withSpec))
	out.Table.AddCells(Str("off"), F1(without))
	out.Notef("speculative execution cuts the straggler-bound JCT by %.0f%%", (without-withSpec)/without*100)
	out.Scalar("speculation_gain", (without-withSpec)/without)
	if sp, ok := paths.m["speculation-on"]; ok {
		out.Notef("critical path with speculation: %d retried unit(s), %d speculative win(s)", sp.Retried, sp.SpeculativeWins)
	}
	out.EventsFired = fired.Load()
	out.Metrics = pool.snapshot()
	out.CritPaths = paths.m
	return out, nil
}

// AblCapacity quantifies capacity-aware in-cluster placement: batch work
// plus loaded services, with trackers visited least-loaded-first versus
// fixed heartbeat order.
func AblCapacity() (*Outcome, error) {
	var fired atomic.Uint64
	pool := newMetricsPool()
	run := func(aware bool) (jct float64, latency float64, err error) {
		reg := pool.registry()
		rig, err := testbed.New(testbed.Options{
			PMs: 8, VMsPerPM: 2, Seed: 1223,
			MapredConfig: mapred.Config{
				SlotCaps:      mapred.DefaultSlotCaps(),
				CapacityAware: aware,
			},
			EventSink: &fired,
			Metrics:   reg,
		})
		if err != nil {
			return 0, 0, err
		}
		defer pool.fold(reg)
		var services []*workload.Service
		for i := 0; i < 3; i++ {
			svcVM, err := addServiceVM(rig, i, fmt.Sprintf("s%d", i))
			if err != nil {
				return 0, 0, err
			}
			svc, err := workload.Deploy(workload.Services()[i], svcVM)
			if err != nil {
				return 0, 0, err
			}
			svc.SetClients(2000)
			services = append(services, svc)
		}
		job, err := rig.JT.Submit(workload.Sort().WithInputMB(scaledMB(4*workload.GB)), nil)
		if err != nil {
			return 0, 0, err
		}
		var lats []float64
		tick := sim.NewTicker(rig.Engine, 15*time.Second, func(time.Duration) {
			for _, svc := range services {
				// Capped at client-timeout level, as in Figure 8(a).
				lats = append(lats, math.Min(svc.LatencyMs(), 5000))
			}
		})
		for at := time.Minute; at < 4*time.Hour && !job.Done(); at += time.Minute {
			rig.Engine.RunUntil(at)
		}
		tick.Stop()
		if !job.Done() {
			return 0, 0, fmt.Errorf("job stalled")
		}
		return job.JCT().Seconds(), stats.Mean(lats), nil
	}
	type capResult struct{ jct, lat float64 }
	both, err := Map(2, func(i int) (capResult, error) {
		jct, lat, err := run(i == 1)
		return capResult{jct: jct, lat: lat}, err
	})
	if err != nil {
		return nil, err
	}
	blindJCT, blindLat := both[0].jct, both[0].lat
	awareJCT, awareLat := both[1].jct, both[1].lat
	out := &Outcome{Table: &Table{
		ID:      "abl-capacity",
		Title:   "Capacity-aware placement: Sort + 3 loaded services on 16 VMs",
		Columns: []string{"placement", "Sort JCT (s)", "service mean latency (ms)"},
	}}
	out.Table.AddCells(Str("heartbeat order"), F1(blindJCT), F0(blindLat))
	out.Table.AddCells(Str("capacity-aware"), F1(awareJCT), F0(awareLat))
	out.Notef("steering tasks toward lightly-loaded hosts changes Sort JCT by %.0f%% and service mean latency by %.0f%%",
		(blindJCT-awareJCT)/blindJCT*100, (blindLat-awareLat)/blindLat*100)
	out.Scalar("jct_delta", (blindJCT-awareJCT)/blindJCT)
	out.Scalar("lat_delta", (blindLat-awareLat)/blindLat)
	out.EventsFired = fired.Load()
	out.Metrics = pool.snapshot()
	return out, nil
}

// AblDeferral compares the DRM memory balancer's two policies on an
// overcommitted mix: deferring the youngest tasks versus shrinking every
// task's residency proportionally.
func AblDeferral() (*Outcome, error) {
	var fired atomic.Uint64
	pool := newMetricsPool()
	run := func(disableDeferral bool) (float64, error) {
		reg := pool.registry()
		rig, err := testbed.New(testbed.Options{
			PMs: 8, VMsPerPM: 2, Seed: 1229,
			MapredConfig: mapred.Config{SlotCaps: mapred.DefaultSlotCaps()},
			EventSink:    &fired,
			Metrics:      reg,
		})
		if err != nil {
			return 0, err
		}
		defer pool.fold(reg)
		var jobs []*mapred.Job
		for _, spec := range []mapred.JobSpec{
			workload.Twitter().WithInputMB(scaledMB(3 * workload.GB)),
			workload.Sort().WithInputMB(scaledMB(3 * workload.GB)),
		} {
			job, err := rig.JT.Submit(spec, nil)
			if err != nil {
				return 0, err
			}
			jobs = append(jobs, job)
		}
		drm := core.NewDRM(rig.Engine, rig.JT, core.ResourceModes{Memory: true}, 5*time.Second)
		if disableDeferral {
			drm.Policy = policy.StaticSplitDRM{}.Params()
		}
		drm.Start()
		defer drm.Stop()
		rig.Engine.Run()
		var sum float64
		for _, j := range jobs {
			if !j.Done() {
				return 0, fmt.Errorf("job %s stalled", j.Spec.Name)
			}
			sum += j.JCT().Seconds()
		}
		return sum / float64(len(jobs)), nil
	}
	both, err := Map(2, func(i int) (float64, error) {
		return run(i == 1)
	})
	if err != nil {
		return nil, err
	}
	defer2, proportional := both[0], both[1]
	out := &Outcome{Table: &Table{
		ID:      "abl-deferral",
		Title:   "DRM memory policy on an overcommitted two-job mix (mean JCT, s)",
		Columns: []string{"policy", "mean JCT"},
	}}
	out.Table.AddCells(Str("defer youngest"), F1(defer2))
	out.Table.AddCells(Str("proportional paging"), F1(proportional))
	out.Notef("deferral vs proportional paging: %.1f%% mean-JCT difference", (proportional-defer2)/proportional*100)
	out.Scalar("jct_delta", (proportional-defer2)/proportional)
	out.EventsFired = fired.Load()
	out.Metrics = pool.snapshot()
	return out, nil
}
