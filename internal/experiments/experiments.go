// Package experiments regenerates every table and figure of the paper's
// evaluation (Section II measurements and Section IV results). Each
// runner builds the scenario from the testbed package, drives the
// simulation, and returns the same rows/series the paper plots, plus
// headline notes comparing against the paper's reported numbers.
package experiments

import (
	"fmt"
	"io"
	"math"
	"strings"
	"time"

	"repro/internal/critpath"
	"repro/internal/mapred"
	"repro/internal/trace"
)

// Scale shrinks experiment input sizes for quick runs (1 = the paper's
// full sizes). Experiment runners multiply their data volumes by it; task
// counts and cluster shapes are unaffected.
var Scale = 1.0

func scaledMB(mb float64) float64 {
	s := Scale
	if s <= 0 {
		s = 1
	}
	out := mb * s
	if out < 256 {
		out = 256
	}
	return out
}

// scaledSpec shrinks a benchmark's input (and fixed-work task count)
// by Scale.
func scaledSpec(spec mapred.JobSpec) mapred.JobSpec {
	if spec.FixedMapWork > 0 {
		n := int(float64(spec.FixedMapTasks) * Scale)
		if n < 4 {
			n = 4
		}
		spec.FixedMapTasks = n
		return spec
	}
	return spec.WithInputMB(scaledMB(spec.InputMB))
}

// Table is a printable experiment result.
type Table struct {
	// ID is the figure identifier, e.g. "fig1a".
	ID string
	// Title describes the experiment.
	Title string
	// Columns are the header cells.
	Columns []string
	// Rows hold formatted cells, parallel to Columns.
	Rows [][]string
	// Vals hold the numeric value behind each formatted cell, parallel
	// to Rows; cells that render no measurement (labels, config names)
	// carry NaN. The fidelity suite checks the paper's claims against
	// these, so they are exactly the numbers the table prints.
	Vals [][]float64
}

// AddRow appends a row of label-only cells (no numeric values).
func (t *Table) AddRow(cells ...string) {
	t.Rows = append(t.Rows, cells)
	vals := make([]float64, len(cells))
	for i := range vals {
		vals[i] = math.NaN()
	}
	t.Vals = append(t.Vals, vals)
}

// AddCells appends a row of cells, keeping each cell's numeric value
// alongside its formatted text.
func (t *Table) AddCells(cells ...Cell) {
	row := make([]string, len(cells))
	vals := make([]float64, len(cells))
	for i, c := range cells {
		row[i] = c.Text
		if c.Numeric {
			vals[i] = c.Value
		} else {
			vals[i] = math.NaN()
		}
	}
	t.Rows = append(t.Rows, row)
	t.Vals = append(t.Vals, vals)
}

// ColIndex resolves a column header to its index, or -1.
func (t *Table) ColIndex(col string) int {
	for i, c := range t.Columns {
		if c == col {
			return i
		}
	}
	return -1
}

// RowIndex resolves a row by the text of its first cell, or -1.
func (t *Table) RowIndex(label string) int {
	for i, row := range t.Rows {
		if len(row) > 0 && row[0] == label {
			return i
		}
	}
	return -1
}

// Value looks up the numeric value of the cell at (row label, column
// header). The second return is false when the cell does not exist or
// is not numeric.
func (t *Table) Value(rowLabel, col string) (float64, bool) {
	ri, ci := t.RowIndex(rowLabel), t.ColIndex(col)
	if ri < 0 || ci < 0 || ci >= len(t.Vals[ri]) {
		return 0, false
	}
	v := t.Vals[ri][ci]
	if math.IsNaN(v) {
		return 0, false
	}
	return v, true
}

// Column returns the numeric values down a column in row order,
// skipping rows whose cell is not numeric.
func (t *Table) Column(col string) []float64 {
	ci := t.ColIndex(col)
	if ci < 0 {
		return nil
	}
	var out []float64
	for _, vals := range t.Vals {
		if ci < len(vals) && !math.IsNaN(vals[ci]) {
			out = append(out, vals[ci])
		}
	}
	return out
}

// RowValues returns the numeric values across the row with the given
// first-cell label, skipping non-numeric cells.
func (t *Table) RowValues(label string) []float64 {
	ri := t.RowIndex(label)
	if ri < 0 {
		return nil
	}
	var out []float64
	for _, v := range t.Vals[ri] {
		if !math.IsNaN(v) {
			out = append(out, v)
		}
	}
	return out
}

// Fprint renders the table with aligned columns.
func (t *Table) Fprint(w io.Writer) {
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	fmt.Fprintf(w, "%s — %s\n", strings.ToUpper(t.ID), t.Title)
	printRow := func(cells []string) {
		var b strings.Builder
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		fmt.Fprintln(w, strings.TrimRight(b.String(), " "))
	}
	printRow(t.Columns)
	sep := make([]string, len(t.Columns))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	printRow(sep)
	for _, row := range t.Rows {
		printRow(row)
	}
}

// Outcome is a completed experiment: its table plus headline notes that
// EXPERIMENTS.md records against the paper's claims.
type Outcome struct {
	Table *Table
	// Notes are "measured vs paper" headlines.
	Notes []string
	// Scalars are the named headline measurements behind the notes
	// (degradation extremes, fit qualities, savings ratios). The
	// fidelity suite asserts the paper's claims against these by name.
	Scalars map[string]float64
	// EventsFired counts the simulation events this experiment fired
	// across all of its rigs — including nested Phase I training
	// simulations — attributed via per-engine sinks rather than the
	// process-global counter, so concurrent experiments don't bleed
	// into each other's totals.
	EventsFired uint64
	// Metrics is the merged metrics-registry snapshot across every rig
	// the experiment built (counters and histogram buckets summed,
	// gauges maxed), recorded into BENCH_<id>.json by hybridmr-bench
	// -json. The merge is order-independent, so it is byte-identical at
	// any worker count.
	Metrics trace.Snapshot
	// CritPaths digests the critical path of representative jobs, keyed
	// by a deterministic label (typically the benchmark name).
	CritPaths map[string]critpath.Summary
}

// Notef appends a formatted note.
func (o *Outcome) Notef(format string, args ...any) {
	o.Notes = append(o.Notes, fmt.Sprintf(format, args...))
}

// Scalar records a named headline measurement.
func (o *Outcome) Scalar(name string, v float64) {
	if o.Scalars == nil {
		o.Scalars = make(map[string]float64)
	}
	o.Scalars[name] = v
}

// Fprint renders the outcome.
func (o *Outcome) Fprint(w io.Writer) {
	o.Table.Fprint(w)
	for _, n := range o.Notes {
		fmt.Fprintf(w, "  * %s\n", n)
	}
	fmt.Fprintln(w)
}

// Experiment is a registered figure reproduction.
type Experiment struct {
	// ID is the figure identifier ("fig8b").
	ID string
	// Title describes what the paper's figure shows.
	Title string
	// Run executes the experiment.
	Run func() (*Outcome, error)
}

// All lists every experiment in paper order.
func All() []Experiment {
	return []Experiment{
		{"fig1a", "Virtualization overhead on Hadoop: % JCT increase, virtual vs native", Fig1a},
		{"fig1b", "Impact of data size on virtual Sort JCT", Fig1b},
		{"fig1c", "HDFS performance on virtual Hadoop (TestDFSIO), normalized to native", Fig1c},
		{"fig2a", "Network I/O effect: Same-Host vs Cross-Host virtual Hadoop", Fig2a},
		{"fig2b", "Effect of more CPU cycles: Kmeans with more VMs and slots", Fig2b},
		{"fig2c", "Native vs Dom-0 execution", Fig2c},
		{"fig2d", "Hadoop split architecture vs combined", Fig2d},
		{"fig5a", "JCT vs cluster size (end-to-end, normalized)", Fig5a},
		{"fig5b", "Map-phase completion time vs cluster size", Fig5b},
		{"fig5c", "Reduce-phase completion time vs cluster size", Fig5c},
		{"fig5d", "JCT vs input data size per cluster size", Fig5d},
		{"fig6a", "Phase I profiling accuracy: actual vs estimated JCT", Fig6a},
		{"fig6b", "CPU interference from collocated VMs", Fig6b},
		{"fig6c", "I/O interference from collocated VMs", Fig6c},
		{"fig8a", "Phase I placement gain over random placement (wmix-1/2/3)", Fig8a},
		{"fig8b", "Phase II single-job JCT reduction by managed resource", Fig8b},
		{"fig8c", "Phase II multi-job JCT reduction by managed resource", Fig8c},
		{"fig8d", "RUBiS latency vs clients: isolation / +MapReduce / HybridMR", Fig8d},
		{"fig9a", "SLA compliance timeline for RUBiS and TPC-W under HybridMR", Fig9a},
		{"fig9b", "Cross-platform JCT: Native vs Virtual vs HybridMR", Fig9b},
		{"fig9c", "Cross-platform savings: perf/energy, energy, servers, utilization", Fig9c},
		{"fig10a", "Resource utilization: baseline vs HybridMR", Fig10a},
		{"fig10b", "Live migration time of Hadoop VMs", Fig10b},
		{"fig10c", "Live migration downtime of Hadoop VMs", Fig10c},
		{"fig11", "Hybrid configuration design trade-off (C1-C20)", Fig11},
	}
}

// ByID finds an experiment among the paper figures and the extensions.
func ByID(id string) (Experiment, bool) {
	for _, e := range All() {
		if e.ID == id {
			return e, true
		}
	}
	for _, e := range Extensions() {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}

func fmtDur(d time.Duration) string {
	return fmt.Sprintf("%.1fs", d.Seconds())
}

func fmtPct(f float64) string {
	return fmt.Sprintf("%.1f%%", f*100)
}

func fmtF(f float64) string {
	return fmt.Sprintf("%.3f", f)
}
