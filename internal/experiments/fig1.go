package experiments

import (
	"fmt"
	"sync/atomic"

	"repro/internal/cluster"
	"repro/internal/dfs"
	"repro/internal/mapred"
	"repro/internal/sim"
	"repro/internal/testbed"
	"repro/internal/workload"
)

// testbedPMs is the paper's physical fleet: 24 servers. The 1/2/4-VM
// virtual configurations run on the same hardware, so the native/virtual
// comparison isolates virtualization and consolidation overheads rather
// than hardware differences.
const testbedPMs = 24

// runIsolated measures one benchmark's JCT on a fresh rig of 24 PMs,
// virtualized at the given density (0 = native), averaged over three
// seeded runs as in the paper's methodology. Fired-event totals
// accumulate into sink (which may be shared across concurrent sweep
// points).
func runIsolated(spec mapred.JobSpec, vmsPerPM int, seed int64, sink *atomic.Uint64, pool *metricsPool) (testbed.JobResult, error) {
	var sum testbed.JobResult
	const repeats = 3
	for r := 0; r < repeats; r++ {
		reg := pool.registry()
		opts := testbed.Options{Seed: seed + int64(r)*131, PMs: testbedPMs, VMsPerPM: vmsPerPM, EventSink: sink, Metrics: reg}
		if vmsPerPM == 1 {
			// A single VM per PM is sized to fill the host, as an
			// operator would configure it.
			opts.VMCPUs = 2
			opts.VMMemoryMB = 2048
		}
		rig, err := testbed.New(opts)
		if err != nil {
			return testbed.JobResult{}, err
		}
		res, err := rig.RunJob(scaledSpec(spec))
		if err != nil {
			return testbed.JobResult{}, err
		}
		pool.fold(reg)
		sum.Name = res.Name
		sum.CritPath = res.CritPath
		sum.JCT += res.JCT / repeats
		sum.MapPhase += res.MapPhase / repeats
		sum.ReducePhase += res.ReducePhase / repeats
	}
	return sum, nil
}

// Fig1a reproduces Figure 1(a): percentage increase in JCT of the six
// benchmarks on a 48-VM virtual cluster (1, 2 and 4 VMs per PM) relative
// to an equivalent 48-node physical cluster.
func Fig1a() (*Outcome, error) {
	out := &Outcome{Table: &Table{
		ID:      "fig1a",
		Title:   "% increase in JCT on virtual vs equivalent native cluster (24 PMs)",
		Columns: []string{"benchmark", "1-VM", "2-VM", "4-VM"},
	}}
	specs := workload.Benchmarks()
	densities := []int{0, 1, 2, 4}
	var fired atomic.Uint64
	pool := newMetricsPool()
	// Every (benchmark, density) pair is an independent sweep point:
	// fan them all out, then assemble rows in paper order.
	results, err := Map(len(specs)*len(densities), func(i int) (testbed.JobResult, error) {
		spec := specs[i/len(densities)]
		vpp := densities[i%len(densities)]
		res, err := runIsolated(spec, vpp, 101, &fired, pool)
		if err != nil {
			return testbed.JobResult{}, fmt.Errorf("fig1a %s %d-VM: %w", spec.Name, vpp, err)
		}
		return res, nil
	})
	if err != nil {
		return nil, err
	}
	var ioMin, ioMax, cpuMax float64
	ioMin = 1e9
	for si, spec := range specs {
		native := results[si*len(densities)]
		row := []Cell{Str(spec.Name)}
		for di := 1; di < len(densities); di++ {
			virt := results[si*len(densities)+di]
			incr := virt.JCT.Seconds()/native.JCT.Seconds() - 1
			row = append(row, Pct(incr))
			if workload.IsCPUBound(spec) {
				if incr > cpuMax {
					cpuMax = incr
				}
			} else {
				if incr < ioMin {
					ioMin = incr
				}
				if incr > ioMax {
					ioMax = incr
				}
			}
		}
		out.Table.AddCells(row...)
	}
	out.Notef("I/O-bound jobs degrade %.0f-%.0f%% on virtual (paper: 7-24%%)", ioMin*100, ioMax*100)
	out.Notef("CPU-bound jobs degrade at most %.0f%% (paper: within 8%%)", cpuMax*100)
	out.Scalar("io_degrade_min", ioMin)
	out.Scalar("io_degrade_max", ioMax)
	out.Scalar("cpu_degrade_max", cpuMax)
	out.EventsFired = fired.Load()
	out.Metrics = pool.snapshot()
	var paths critPaths
	for si, spec := range specs {
		// The native run's critical path, per benchmark (the last of the
		// three averaged repeats).
		paths.add(spec.Name, results[si*len(densities)].CritPath)
	}
	out.CritPaths = paths.m
	return out, nil
}

// Fig1b reproduces Figure 1(b): Sort JCT at 1, 8 and 16 GB under 1, 2
// and 4 VMs per PM — the native/virtual gap widens with data size.
func Fig1b() (*Outcome, error) {
	out := &Outcome{Table: &Table{
		ID:      "fig1b",
		Title:   "Sort JCT (s) vs input size and VMs per PM (48 VMs)",
		Columns: []string{"config", "Sort-1GB", "Sort-8GB", "Sort-16GB"},
	}}
	sizes := []float64{1 * workload.GB, 8 * workload.GB, 16 * workload.GB}
	densities := []int{0, 1, 2, 4}
	var fired atomic.Uint64
	pool := newMetricsPool()
	results, err := Map(len(densities)*len(sizes), func(i int) (testbed.JobResult, error) {
		vpp := densities[i/len(sizes)]
		mb := sizes[i%len(sizes)]
		return runIsolated(workload.Sort().WithInputMB(mb), vpp, 103, &fired, pool)
	})
	if err != nil {
		return nil, err
	}
	gapSmall, gapLarge := 0.0, 0.0
	natives := results[:len(sizes)]
	for di := 1; di < len(densities); di++ {
		vpp := densities[di]
		row := []Cell{Str(fmt.Sprintf("%d-VM", vpp))}
		for i := range sizes {
			res := results[di*len(sizes)+i]
			row = append(row, Sec(res.JCT))
			if vpp == 4 {
				gap := res.JCT.Seconds()/natives[i].JCT.Seconds() - 1
				if i == 0 {
					gapSmall = gap
				}
				if i == len(sizes)-1 {
					gapLarge = gap
				}
			}
		}
		out.Table.AddCells(row...)
	}
	out.Notef("4-VM virtual gap grows from %.0f%% at 1 GB to %.0f%% at 16 GB (paper: gap widens with data size)",
		gapSmall*100, gapLarge*100)
	out.Scalar("gap_small", gapSmall)
	out.Scalar("gap_large", gapLarge)
	out.EventsFired = fired.Load()
	out.Metrics = pool.snapshot()
	return out, nil
}

// Fig1c reproduces Figure 1(c): TestDFSIO read/write IO rate and
// throughput on the virtual cluster normalized to the native cluster,
// for total data sizes of 1-16 GB.
func Fig1c() (*Outcome, error) {
	out := &Outcome{Table: &Table{
		ID:      "fig1c",
		Title:   "Virtual HDFS TestDFSIO normalized to native (48 workers)",
		Columns: []string{"data(GB)", "R-IO", "W-IO", "R-Tput", "W-Tput"},
	}}
	type point struct{ rio, wio, rtp, wtp float64 }
	var fired atomic.Uint64
	pool := newMetricsPool()
	run := func(vmsPerPM int, totalMB float64) (point, error) {
		engine := sim.New()
		engine.SetFiredSink(&fired)
		reg := pool.registry()
		cl := cluster.New(engine, cluster.Config{}, 107)
		cl.SetTrace(nil, reg)
		fs := dfs.New(engine, dfs.Config{}, 107)
		fs.SetTrace(nil, reg)
		defer pool.fold(reg)
		var nodes []cluster.Node
		if vmsPerPM <= 0 {
			for _, pm := range cl.AddPMs("pm", testbedPMs) {
				nodes = append(nodes, pm)
			}
		} else {
			pms := cl.AddPMs("pm", testbedPMs)
			vms, err := cl.SpreadVMs("vm", testbedPMs*vmsPerPM, pms, 1, 1024)
			if err != nil {
				return point{}, err
			}
			for _, vm := range vms {
				nodes = append(nodes, vm)
			}
		}
		for _, n := range nodes {
			fs.AddDataNode(n)
		}
		fileMB := totalMB / float64(len(nodes))
		if fileMB < 16 {
			fileMB = 16
		}
		w, err := dfs.TestDFSIOWrite(fs, nodes, fileMB)
		if err != nil {
			return point{}, err
		}
		r, err := dfs.TestDFSIORead(fs, nodes, fileMB)
		if err != nil {
			return point{}, err
		}
		return point{rio: r.AvgIORateMBps, wio: w.AvgIORateMBps, rtp: r.ThroughputMBps, wtp: w.ThroughputMBps}, nil
	}
	sizes := []float64{1, 2, 4, 8, 16}
	type pair struct{ nat, virt point }
	results, err := Map(len(sizes), func(i int) (pair, error) {
		totalMB := scaledMB(sizes[i] * workload.GB)
		nat, err := run(0, totalMB)
		if err != nil {
			return pair{}, err
		}
		virt, err := run(2, totalMB)
		if err != nil {
			return pair{}, err
		}
		return pair{nat: nat, virt: virt}, nil
	})
	if err != nil {
		return nil, err
	}
	firstR, lastR, maxNorm := 0.0, 0.0, 0.0
	for i, gb := range sizes {
		nat, virt := results[i].nat, results[i].virt
		norm := point{
			rio: virt.rio / nat.rio, wio: virt.wio / nat.wio,
			rtp: virt.rtp / nat.rtp, wtp: virt.wtp / nat.wtp,
		}
		out.Table.AddCells(Str(fmt.Sprintf("%.0f", gb)), F3(norm.rio), F3(norm.wio), F3(norm.rtp), F3(norm.wtp))
		for _, v := range []float64{norm.rio, norm.wio, norm.rtp, norm.wtp} {
			if v > maxNorm {
				maxNorm = v
			}
		}
		if i == 0 {
			firstR = norm.rio
		}
		if i == len(sizes)-1 {
			lastR = norm.rio
		}
	}
	out.Notef("virtual HDFS runs below native everywhere; read-IO ratio falls from %.2f at 1 GB to %.2f at 16 GB (paper: gap broadens with data size)",
		firstR, lastR)
	out.Scalar("read_io_first", firstR)
	out.Scalar("read_io_last", lastR)
	out.Scalar("max_norm", maxNorm)
	out.EventsFired = fired.Load()
	out.Metrics = pool.snapshot()
	return out, nil
}
