package experiments

import (
	"fmt"
	"strconv"
	"time"
)

// Cell is one table cell: the formatted text a runner prints plus,
// when the cell renders a measurement, the numeric value behind it.
// Recording the number next to the string lets the fidelity suite
// (internal/fidelity) check each figure's headline claims against the
// exact values its table shows, instead of re-parsing formatted text.
type Cell struct {
	// Text is the formatted cell content.
	Text string
	// Value is the measurement the text renders; meaningful only when
	// Numeric is set.
	Value float64
	// Numeric marks cells that carry a measurement (as opposed to
	// labels and config names).
	Numeric bool
}

// Str is a label cell with no numeric value.
func Str(s string) Cell { return Cell{Text: s} }

// Num pairs custom formatted text with its numeric value.
func Num(text string, v float64) Cell { return Cell{Text: text, Value: v, Numeric: true} }

// Int renders an integer count.
func Int(n int) Cell { return Num(strconv.Itoa(n), float64(n)) }

// Pct renders a fraction as a percentage ("12.5%"); the value stays a
// fraction.
func Pct(v float64) Cell { return Num(fmtPct(v), v) }

// F3 renders with three decimals ("0.469").
func F3(v float64) Cell { return Num(fmtF(v), v) }

// F1 renders with one decimal ("43.2").
func F1(v float64) Cell { return Num(fmt.Sprintf("%.1f", v), v) }

// F0 renders with no decimals ("43").
func F0(v float64) Cell { return Num(fmt.Sprintf("%.0f", v), v) }

// Sec renders a duration in seconds ("7.4s"); the value is seconds.
func Sec(d time.Duration) Cell { return Num(fmtDur(d), d.Seconds()) }
