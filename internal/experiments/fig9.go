package experiments

import (
	"fmt"
	"sync/atomic"
	"time"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/dfs"
	"repro/internal/mapred"
	"repro/internal/metrics"
	"repro/internal/resource"
	"repro/internal/stats"
	"repro/internal/testbed"
	"repro/internal/workload"
)

// Fig9a reproduces Figure 9(a): a 35-minute timeline of RUBiS and TPC-W
// response times. Batch MapReduce arrives mid-run, pushes both services
// over the 2-second SLA, and HybridMR's IPS migrates the interfering
// tasks until the latencies recover.
func Fig9a() (*Outcome, error) {
	// A single 35-minute timeline is one continuous simulation, so there
	// is nothing to fan out; it still attributes its events to the run.
	var fired atomic.Uint64
	rig, err := testbed.New(testbed.Options{
		PMs:      12,
		VMsPerPM: 2,
		Seed:     901,
		MapredConfig: mapred.Config{
			SlotCaps:      mapred.DefaultSlotCaps(),
			CapacityAware: true,
		},
		EventSink: &fired,
	})
	if err != nil {
		return nil, err
	}
	rubisVM, err := addServiceVM(rig, 0, "rubis")
	if err != nil {
		return nil, err
	}
	rubis, err := workload.Deploy(workload.RUBiS(), rubisVM)
	if err != nil {
		return nil, err
	}
	tpcwVM, err := addServiceVM(rig, 1, "tpcw")
	if err != nil {
		return nil, err
	}
	tpcw, err := workload.Deploy(workload.TPCW(), tpcwVM)
	if err != nil {
		return nil, err
	}
	rubis.SetClients(3200)
	tpcw.SetClients(2400)

	ips := core.NewIPS(rig.Engine, rig.Cluster, rig.JT)
	ips.Watch(rubis)
	ips.Watch(tpcw)
	ips.Start(5 * time.Second)
	defer ips.Stop()

	// Batch load lands at minute 10: heavy I/O jobs across the cluster.
	rig.Engine.After(10*time.Minute, func() {
		for i := 0; i < 3; i++ {
			_, _ = rig.JT.Submit(workload.Sort().WithInputMB(scaledMB(6*workload.GB)), nil)
		}
	})

	out := &Outcome{Table: &Table{
		ID:      "fig9a",
		Title:   "Response time (ms) over 35 minutes; SLA = 2000 ms",
		Columns: []string{"minute", "RUBiS", "TPC-W"},
	}}
	var above, recovered int
	sla := workload.RUBiS().SLAMs
	everViolated := false
	for minute := 1; minute <= 35; minute++ {
		rig.Engine.RunUntil(time.Duration(minute) * time.Minute)
		r := rubis.LatencyMs()
		w := tpcw.LatencyMs()
		out.Table.AddCells(Str(fmt.Sprintf("%d", minute)), F0(r), F0(w))
		if r > sla || w > sla {
			above++
			everViolated = true
		} else if everViolated {
			recovered++
		}
	}
	out.Notef("%d/35 minutes above SLA, %d minutes recovered after IPS intervention; %d mitigation actions (paper: violations around min 12-14, then restored)",
		above, recovered, len(ips.Actions()))
	out.Scalar("minutes_above_sla", float64(above))
	out.Scalar("minutes_recovered", float64(recovered))
	out.Scalar("ips_actions", float64(len(ips.Actions())))
	out.EventsFired = fired.Load()
	return out, nil
}

// crossPlatformResult holds one design point of Figure 9(b)/(c).
type crossPlatformResult struct {
	name        string
	jct         map[string]float64
	meanJCT     float64
	energyWh    float64 // over the common horizon (set by runAllDesigns)
	runEnergyWh float64 // integrated while the design was active
	makespanSec float64
	servers     int
	util        float64 // over the common horizon (set by runAllDesigns)
	runUtil     float64
}

// runCrossPlatform evaluates one of the three cluster design choices on
// the same workload mix (all six benchmarks plus three interactive
// services).
func runCrossPlatform(design string, sink *atomic.Uint64) (*crossPlatformResult, error) {
	var (
		rig       *testbed.Rig
		nativeJT  *mapred.JobTracker
		virtualJT *mapred.JobTracker
		svcNodes  []cluster.Node
		err       error
	)
	switch design {
	case "Native":
		rig, err = testbed.New(testbed.Options{PMs: 24, Seed: 907, EventSink: sink})
		if err != nil {
			return nil, err
		}
		nativeJT = rig.JT
		for _, pm := range rig.PMs[:3] {
			svcNodes = append(svcNodes, pm)
		}
	case "Virtual":
		rig, err = testbed.New(testbed.Options{
			PMs: 12, VMsPerPM: 2, Seed: 907,
			MapredConfig: mapred.Config{SlotCaps: mapred.DefaultSlotCaps()},
			EventSink:    sink,
		})
		if err != nil {
			return nil, err
		}
		virtualJT = rig.JT
		for i := 0; i < 3; i++ {
			svcVM, err := addServiceVM(rig, i, fmt.Sprintf("s%d", i))
			if err != nil {
				return nil, err
			}
			svcNodes = append(svcNodes, svcVM)
		}
	case "HybridMR":
		rig, err = testbed.New(testbed.Options{
			PMs: 6, VMsPerPM: 2, Seed: 907,
			MapredConfig: mapred.Config{
				SlotCaps:      mapred.DefaultSlotCaps(),
				CapacityAware: true,
			},
			EventSink: sink,
		})
		if err != nil {
			return nil, err
		}
		virtualJT = rig.JT
		// The native partition runs its own HDFS, as on the testbed.
		pms := rig.Cluster.AddPMs("native", 12)
		nativeFS := dfs.New(rig.Engine, dfs.Config{}, 911)
		nativeJT = mapred.NewJobTracker(rig.Engine, nativeFS, mapred.Config{}, mapred.Fair{})
		for _, pm := range pms {
			nativeJT.AddTracker(pm)
		}
		for i := 0; i < 3; i++ {
			svcVM, err := addServiceVM(rig, i, fmt.Sprintf("s%d", i))
			if err != nil {
				return nil, err
			}
			svcNodes = append(svcNodes, svcVM)
		}
	default:
		return nil, fmt.Errorf("experiments: unknown design %q", design)
	}

	cfg := core.Config{TrainingSeed: 907, EventSink: sink}
	if design != "HybridMR" {
		cfg.DisableDRM = true
		cfg.DisableIPS = true
	}
	sys, err := core.NewSystem(rig.Engine, rig.Cluster, nativeJT, virtualJT, cfg)
	if err != nil {
		return nil, err
	}
	defer sys.Stop()
	if design == "Native" {
		sys.Placer = core.StaticPlacer(core.PlacedNative)
	}
	if design == "Virtual" {
		sys.Placer = core.StaticPlacer(core.PlacedVirtual)
	}

	svcSpecs := workload.Services()
	for i, node := range svcNodes {
		var svc *workload.Service
		if vm, ok := node.(*cluster.VM); ok {
			svc, err = sys.DeployService(svcSpecs[i], vm)
		} else {
			svc, err = workload.Deploy(svcSpecs[i], node)
		}
		if err != nil {
			return nil, err
		}
		svc.SetClients(1600)
	}

	rec := metrics.NewRecorder(rig.Cluster, 30*time.Second, 0)
	var jobs []*mapred.Job
	for i, b := range workload.Benchmarks() {
		spec := scaledSpec(b)
		i := i
		rig.Engine.After(time.Duration(i)*30*time.Second, func() {
			job, _, err := sys.SubmitJob(spec, 0, nil)
			if err == nil {
				jobs = append(jobs, job)
			}
		})
	}
	allDone := func() bool {
		if len(jobs) < 6 {
			return false
		}
		for _, j := range jobs {
			if !j.Done() {
				return false
			}
		}
		return true
	}
	for at := time.Minute; at <= 8*time.Hour && !allDone(); at += time.Minute {
		rig.Engine.RunUntil(at)
	}
	rec.Stop()
	if !allDone() {
		return nil, fmt.Errorf("experiments: %s design did not finish", design)
	}
	res := &crossPlatformResult{
		name:        design,
		jct:         make(map[string]float64),
		runEnergyWh: rec.EnergyWh(),
		makespanSec: rig.Engine.Now().Seconds(),
		servers:     rig.Cluster.PoweredOnPMs(),
		runUtil:     rec.MeanUtil(resource.CPU),
	}
	var sum float64
	for _, j := range jobs {
		res.jct[j.Spec.Name] = j.JCT().Seconds()
		sum += j.JCT().Seconds()
	}
	res.meanJCT = sum / float64(len(jobs))
	return res, nil
}

var fig9Designs = []string{"Native", "Virtual", "HybridMR"}

func runAllDesigns(sink *atomic.Uint64) ([]*crossPlatformResult, error) {
	out, err := Map(len(fig9Designs), func(i int) (*crossPlatformResult, error) {
		r, err := runCrossPlatform(fig9Designs[i], sink)
		if err != nil {
			return nil, fmt.Errorf("fig9 %s: %w", fig9Designs[i], err)
		}
		return r, nil
	})
	if err != nil {
		return nil, err
	}
	// Account energy and utilization over a common horizon: the data
	// center keeps its servers powered after a design finishes its
	// workload, idling at the power model's floor. Comparing integrals
	// over different makespans would reward fast designs twice.
	horizon := 0.0
	for _, r := range out {
		if r.makespanSec > horizon {
			horizon = r.makespanSec
		}
	}
	idleW := cluster.DefaultConfig().PowerIdleW
	for _, r := range out {
		idleSec := horizon - r.makespanSec
		r.energyWh = r.runEnergyWh + idleW*float64(r.servers)*idleSec/3600
		if horizon > 0 {
			r.util = r.runUtil * r.makespanSec / horizon
		}
	}
	return out, nil
}

// Fig9b reproduces Figure 9(b): per-benchmark JCT across the Native,
// Virtual and HybridMR design choices, normalized to the worst.
func Fig9b() (*Outcome, error) {
	var fired atomic.Uint64
	results, err := runAllDesigns(&fired)
	if err != nil {
		return nil, err
	}
	out := &Outcome{Table: &Table{
		ID:      "fig9b",
		Title:   "Normalized JCT per benchmark across cluster designs",
		Columns: []string{"benchmark", "Native", "Virtual", "HybridMR"},
	}}
	ordered := 0
	for _, b := range workload.BenchmarkNames() {
		max := 0.0
		for _, r := range results {
			if r.jct[b] > max {
				max = r.jct[b]
			}
		}
		row := []Cell{Str(b)}
		for _, r := range results {
			row = append(row, F3(r.jct[b]/max))
		}
		out.Table.AddCells(row...)
		if results[0].jct[b] <= results[2].jct[b] && results[2].jct[b] <= results[1].jct[b] {
			ordered++
		}
	}
	gain := 1 - results[2].meanJCT/results[1].meanJCT
	out.Notef("Native <= HybridMR <= Virtual holds for %d/6 benchmarks; HybridMR improves mean JCT over Virtual by %.0f%% (paper: up to 40%%)",
		ordered, gain*100)
	out.Scalar("ordered_benchmarks", float64(ordered))
	out.Scalar("hybrid_gain_vs_virtual", gain)
	out.Scalar("mean_jct_native", results[0].meanJCT)
	out.Scalar("mean_jct_virtual", results[1].meanJCT)
	out.Scalar("mean_jct_hybrid", results[2].meanJCT)
	out.EventsFired = fired.Load()
	return out, nil
}

// Fig9c reproduces Figure 9(c): the aggregate design metrics — energy,
// performance per energy, server count and utilization — normalized to
// the maximum across designs.
func Fig9c() (*Outcome, error) {
	var fired atomic.Uint64
	results, err := runAllDesigns(&fired)
	if err != nil {
		return nil, err
	}
	out := &Outcome{Table: &Table{
		ID:      "fig9c",
		Title:   "Design metrics normalized to maximum",
		Columns: []string{"metric", "Native", "Virtual", "HybridMR"},
	}}
	perf := make([]float64, len(results))
	energy := make([]float64, len(results))
	servers := make([]float64, len(results))
	util := make([]float64, len(results))
	for i, r := range results {
		perf[i] = metrics.PerfPerEnergy(r.meanJCT, r.energyWh)
		energy[i] = r.energyWh
		servers[i] = float64(r.servers)
		util[i] = r.util
	}
	addRow := func(name string, vals []float64) {
		n := stats.Normalize(vals)
		out.Table.AddCells(Str(name), F3(n[0]), F3(n[1]), F3(n[2]))
	}
	addRow("Perf/Energy", perf)
	addRow("Energy", energy)
	addRow("# of Servers", servers)
	addRow("Utilization", util)
	energySaving := 1 - energy[2]/energy[0]
	utilBoost := util[2]/util[0] - 1
	out.Notef("HybridMR saves %.0f%% energy vs Native (paper: ~43%%) and boosts utilization by %.0f%% (paper: ~45%%)",
		energySaving*100, utilBoost*100)
	if perf[2] < perf[0] || perf[2] < perf[1] {
		out.Notef("NOTE: HybridMR did not achieve the best perf/energy in this run")
	} else {
		out.Notef("HybridMR achieves the best Performance/Energy of the three designs (matches paper)")
	}
	out.Scalar("energy_saving_vs_native", energySaving)
	out.Scalar("util_boost_vs_native", utilBoost)
	out.Scalar("perf_energy_native", perf[0])
	out.Scalar("perf_energy_virtual", perf[1])
	out.Scalar("perf_energy_hybrid", perf[2])
	out.EventsFired = fired.Load()
	return out, nil
}
