package experiments

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Parallelism is the number of worker goroutines experiment runners use
// to fan out independent sweep points. Values <= 0 (the default) use
// GOMAXPROCS. Every sweep point builds its own seeded testbed and
// sim.Engine, so results are independent of the worker count; the pool
// assembles them in deterministic index order, which keeps rendered
// tables and notes byte-identical at any parallelism.
var Parallelism = 0

// Workers resolves Parallelism to a concrete worker count.
func Workers() int {
	if Parallelism > 0 {
		return Parallelism
	}
	return runtime.GOMAXPROCS(0)
}

// Map runs fn(i) for every i in [0, n) across Workers() goroutines and
// returns the results in index order. Each fn call must be
// self-contained: it owns its engines and rigs and touches no shared
// mutable state. If any call fails, Map returns the error of the
// lowest-index failure (so the reported error does not depend on
// goroutine scheduling); results of other points are discarded.
func Map[T any](n int, fn func(i int) (T, error)) ([]T, error) {
	out := make([]T, n)
	errs := make([]error, n)
	w := Workers()
	if w > n {
		w = n
	}
	if w <= 1 {
		for i := 0; i < n; i++ {
			out[i], errs[i] = fn(i)
		}
	} else {
		var next atomic.Int64
		var wg sync.WaitGroup
		wg.Add(w)
		for g := 0; g < w; g++ {
			go func() {
				defer wg.Done()
				for {
					i := int(next.Add(1)) - 1
					if i >= n {
						return
					}
					out[i], errs[i] = fn(i)
				}
			}()
		}
		wg.Wait()
	}
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}
