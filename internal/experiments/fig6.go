package experiments

import (
	"fmt"
	"sync/atomic"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/profiler"
	"repro/internal/resource"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/testbed"
	"repro/internal/workload"
)

// Fig6a reproduces Figure 6(a): Phase I profiling accuracy. The profiler
// trains on small clusters and data fractions, then predicts Sort JCTs
// across a grid of cluster and data sizes; each sample's estimate is
// compared with an actual simulated run. The paper reports 10.8% mean
// error with 9.7% standard deviation.
func Fig6a() (*Outcome, error) {
	var fired atomic.Uint64
	pool := newMetricsPool()
	prof := profiler.New(core.SimRunner(testbed.Options{Seed: 601, EventSink: &fired}))
	// Profile a slightly denser training grid than the placement default,
	// as the paper's accuracy study accumulates more history.
	prof.TrainNodes = []int{4, 8, 16}
	prof.TrainFractions = []float64{0.05, 0.10, 0.20}
	out := &Outcome{Table: &Table{
		ID:      "fig6a",
		Title:   "Actual vs estimated Sort JCT (s) across 24 samples",
		Columns: []string{"sample", "VMs", "data(GB)", "actual", "estimated", "err"},
	}}
	vmGrid := []int{8, 12, 16, 20, 24, 32}
	gbGrid := []float64{4, 6, 8, 10}
	// The actual runs are independent sweep points and fan out across the
	// pool; the estimates share the profiler's training database (mutable
	// state that accumulates lazily), so they stay serial in grid order.
	actualRes, err := Map(len(vmGrid)*len(gbGrid), func(i int) (testbed.JobResult, error) {
		vms := vmGrid[i/len(gbGrid)]
		gb := gbGrid[i%len(gbGrid)]
		spec := workload.Sort().WithInputMB(scaledMB(gb * workload.GB))
		res, err := virtualJCT(spec, vms, 607, &fired, pool)
		if err != nil {
			return testbed.JobResult{}, fmt.Errorf("fig6a actual: %w", err)
		}
		return res, nil
	})
	if err != nil {
		return nil, err
	}
	var actuals, estimates []float64
	sample := 0
	for vi, vms := range vmGrid {
		for gi, gb := range gbGrid {
			spec := workload.Sort().WithInputMB(scaledMB(gb * workload.GB))
			est, err := prof.EstimateJCT(spec, profiler.Virtual, vms)
			if err != nil {
				return nil, fmt.Errorf("fig6a estimate: %w", err)
			}
			actual := actualRes[vi*len(gbGrid)+gi].JCT.Seconds()
			actuals = append(actuals, actual)
			estimates = append(estimates, est)
			sample++
			out.Table.AddCells(
				Str(fmt.Sprintf("%d", sample)),
				Int(vms),
				F0(gb),
				F1(actual),
				F1(est),
				Pct(absf(actual-est)/actual),
			)
		}
	}
	errs := stats.AbsPercentErrors(actuals, estimates)
	out.Notef("mean profiling error %.1f%% ± %.1f%% (paper: 10.8%% ± 9.7%%)",
		stats.Mean(errs)*100, stats.StdDev(errs)*100)
	out.Scalar("mean_err", stats.Mean(errs))
	out.Scalar("stddev_err", stats.StdDev(errs))
	out.EventsFired = fired.Load()
	out.Metrics = pool.snapshot()
	return out, nil
}

// interferenceRig builds the paper's quad-core interference testbed: one
// 4-core PM hosting 4 VMs whose vCPUs float across all cores (the study
// runs 8 concurrent threads, so guests are not confined to one core).
func interferenceRig(sink *atomic.Uint64) (*sim.Engine, *cluster.Cluster, []*cluster.VM, error) {
	engine := sim.New()
	if sink != nil {
		engine.SetFiredSink(sink)
	}
	cfg := cluster.DefaultConfig()
	cfg.Cores = 4
	cl := cluster.New(engine, cfg, 613)
	pm := cl.AddPM("quad")
	vms := make([]*cluster.VM, 0, 4)
	for i := 0; i < 4; i++ {
		vm, err := cl.AddVM(fmt.Sprintf("vm-%d", i), pm, 4, 1024)
		if err != nil {
			return nil, nil, nil, err
		}
		vms = append(vms, vm)
	}
	return engine, cl, vms, nil
}

// victimJCT runs a victim task on vms[0] with antagonists spreading the
// given total CPU (cores) and disk (MB/s) demand over vms[1:3], and
// returns the victim's completion time in seconds.
func victimJCT(victim resource.Vector, antagonistCPU, antagonistDisk float64, sink *atomic.Uint64, pool *metricsPool) (float64, error) {
	engine, cl, vms, err := interferenceRig(sink)
	if err != nil {
		return 0, err
	}
	reg := pool.registry()
	cl.SetTrace(nil, reg)
	defer pool.fold(reg)
	// The victim VM competes like a single busy thread; antagonist VMs
	// carry as much scheduler weight as the threads they run, as the Xen
	// credit scheduler grants runnable vCPUs.
	vms[0].SetWeight(1)
	for i := 1; i < 4; i++ {
		demand := resource.NewVector(antagonistCPU/3, 128, antagonistDisk/3, 0)
		if demand.IsZero() {
			vms[i].SetWeight(0.01)
			continue
		}
		threads := antagonistCPU / 3
		if threads < 1 {
			threads = 1
		}
		vms[i].SetWeight(threads)
		hog := &cluster.Consumer{
			Name:   fmt.Sprintf("antagonist-%d", i),
			Demand: demand,
			Work:   cluster.OpenEnded,
		}
		if err := vms[i].Start(hog); err != nil {
			return 0, err
		}
	}
	done := -1.0
	task := &cluster.Consumer{Name: "victim", Demand: victim, Work: 100}
	task.OnComplete = func() { done = engine.Now().Seconds() }
	if err := vms[0].Start(task); err != nil {
		return 0, err
	}
	engine.RunUntil(sim.DurationFromSeconds(100_000))
	if done < 0 {
		return 0, fmt.Errorf("victim starved")
	}
	return done, nil
}

// piVictim and sortVictim mirror the paper's CPU-bound PiEst and
// I/O-bound Sort probes.
func piVictim() resource.Vector   { return resource.NewVector(1, 180, 0, 0) }
func sortVictim() resource.Vector { return resource.NewVector(0.2, 380, 60, 0) }

// interferenceSweep runs the Figure 6(b)/(c) shape: both victims at each
// antagonist level (index 0 is the unloaded baseline pair), fanned across
// the pool.
type victimPair struct{ pi, srt float64 }

func interferenceSweep(levels []float64, load func(level float64) (cpu, disk float64), fired *atomic.Uint64, pool *metricsPool) (base victimPair, points []victimPair, err error) {
	results, err := Map(len(levels)+1, func(i int) (victimPair, error) {
		cpu, disk := 0.0, 0.0
		if i > 0 {
			cpu, disk = load(levels[i-1])
		}
		pi, err := victimJCT(piVictim(), cpu, disk, fired, pool)
		if err != nil {
			return victimPair{}, err
		}
		srt, err := victimJCT(sortVictim(), cpu, disk, fired, pool)
		if err != nil {
			return victimPair{}, err
		}
		return victimPair{pi: pi, srt: srt}, nil
	})
	if err != nil {
		return victimPair{}, nil, err
	}
	return results[0], results[1:], nil
}

// Fig6b reproduces Figure 6(b): JCT slowdown versus total CPU
// utilization of collocated VMs — PiEst degrades, Sort barely moves.
func Fig6b() (*Outcome, error) {
	out := &Outcome{Table: &Table{
		ID:      "fig6b",
		Title:   "Normalized JCT vs collocated CPU utilization (% of one core)",
		Columns: []string{"cpu(%)", "Sort", "PiEst"},
	}}
	pcts := []float64{0, 100, 300, 500, 700, 900}
	var fired atomic.Uint64
	pool := newMetricsPool()
	base, points, err := interferenceSweep(pcts, func(pct float64) (float64, float64) {
		return pct / 100, 0
	}, &fired, pool)
	if err != nil {
		return nil, err
	}
	var cpuXs, piYs []float64
	sortMax := 0.0
	for i, pct := range pcts {
		sortRatio := points[i].srt / base.srt
		if sortRatio > sortMax {
			sortMax = sortRatio
		}
		out.Table.AddCells(Str(fmt.Sprintf("%.0f", pct)), F3(sortRatio), F3(points[i].pi/base.pi))
		cpuXs = append(cpuXs, pct)
		piYs = append(piYs, points[i].pi/base.pi)
	}
	fit, err := stats.FitLinear(cpuXs, piYs)
	if err != nil {
		return nil, err
	}
	out.Notef("PiEst slowdown grows with collocated CPU (linear fit slope %.4f/%%, R²=%.2f); Sort unaffected (paper: same shape)",
		fit.Slope, fit.R2)
	out.Scalar("pi_fit_r2", fit.R2)
	out.Scalar("pi_slowdown_max", piYs[len(piYs)-1])
	out.Scalar("sort_slowdown_max", sortMax)
	out.EventsFired = fired.Load()
	out.Metrics = pool.snapshot()
	return out, nil
}

// Fig6c reproduces Figure 6(c): JCT slowdown versus total I/O rate of
// collocated VMs — Sort blows up super-linearly, PiEst stays flat.
func Fig6c() (*Outcome, error) {
	out := &Outcome{Table: &Table{
		ID:      "fig6c",
		Title:   "Normalized JCT vs collocated I/O rate (MB/s)",
		Columns: []string{"io(MB/s)", "Sort", "PiEst"},
	}}
	rates := []float64{0, 10, 20, 30, 40, 50, 60}
	var fired atomic.Uint64
	pool := newMetricsPool()
	base, points, err := interferenceSweep(rates, func(rate float64) (float64, float64) {
		return 0, rate
	}, &fired, pool)
	if err != nil {
		return nil, err
	}
	var xs, sortYs []float64
	piMax := 0.0
	for i, rate := range rates {
		piRatio := points[i].pi / base.pi
		if piRatio > piMax {
			piMax = piRatio
		}
		out.Table.AddCells(Str(fmt.Sprintf("%.0f", rate)), F3(points[i].srt/base.srt), F3(piRatio))
		xs = append(xs, rate)
		sortYs = append(sortYs, points[i].srt/base.srt)
	}
	fit, err := stats.FitExponential(xs, sortYs)
	if err != nil {
		return nil, err
	}
	out.Notef("Sort slowdown fits %.2f*exp(%.3f*x) with R²=%.2f — super-linear under I/O contention; PiEst flat (paper: exponential increase)",
		fit.A, fit.B, fit.R2)
	out.Scalar("sort_fit_r2", fit.R2)
	out.Scalar("sort_slowdown_max", sortYs[len(sortYs)-1])
	out.Scalar("pi_slowdown_max", piMax)
	out.EventsFired = fired.Load()
	out.Metrics = pool.snapshot()
	return out, nil
}

func absf(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
