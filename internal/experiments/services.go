package experiments

import (
	"fmt"

	"repro/internal/cluster"
	"repro/internal/testbed"
)

// addServiceVM provisions a dedicated 1-vCPU/1-GB VM for an interactive
// application on the given PM of a rig. The paper runs interactive
// tenants in their own VMs (and adopts the split Hadoop architecture), so
// service VMs are never TaskTrackers or DataNodes — interference with
// batch work happens at the physical-host level.
func addServiceVM(rig *testbed.Rig, pmIndex int, name string) (*cluster.VM, error) {
	pm := rig.PMs[pmIndex%len(rig.PMs)]
	return rig.Cluster.AddVM(fmt.Sprintf("svc-%s-%d", name, pmIndex), pm, 1, 1024)
}
