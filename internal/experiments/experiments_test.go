package experiments

import (
	"strings"
	"testing"

	"repro/internal/workload"
)

// withScale runs fn at a reduced data scale and restores the global.
func withScale(t *testing.T, scale float64, fn func()) {
	t.Helper()
	prev := Scale
	Scale = scale
	defer func() { Scale = prev }()
	fn()
}

func TestTableFormatting(t *testing.T) {
	tbl := &Table{
		ID:      "figX",
		Title:   "a title",
		Columns: []string{"col", "value"},
	}
	tbl.AddRow("short", "1")
	tbl.AddRow("a-much-longer-cell", "2")
	var sb strings.Builder
	tbl.Fprint(&sb)
	out := sb.String()
	if !strings.Contains(out, "FIGX — a title") {
		t.Errorf("missing header in:\n%s", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 5 { // header, columns, separator, two rows
		t.Fatalf("got %d lines, want 5:\n%s", len(lines), out)
	}
	// Columns align: every data line starts its second column at the
	// same offset.
	if idx1, idx2 := strings.Index(lines[3], "1"), strings.Index(lines[4], "2"); idx1 != idx2 {
		t.Errorf("columns misaligned:\n%s", out)
	}
}

func TestOutcomeNotes(t *testing.T) {
	o := &Outcome{Table: &Table{ID: "figY", Columns: []string{"a"}}}
	o.Notef("measured %d vs paper %d", 1, 2)
	var sb strings.Builder
	o.Fprint(&sb)
	if !strings.Contains(sb.String(), "* measured 1 vs paper 2") {
		t.Errorf("note missing:\n%s", sb.String())
	}
}

func TestRegistryCoversEveryFigure(t *testing.T) {
	want := []string{
		"fig1a", "fig1b", "fig1c",
		"fig2a", "fig2b", "fig2c", "fig2d",
		"fig5a", "fig5b", "fig5c", "fig5d",
		"fig6a", "fig6b", "fig6c",
		"fig8a", "fig8b", "fig8c", "fig8d",
		"fig9a", "fig9b", "fig9c",
		"fig10a", "fig10b", "fig10c",
		"fig11",
	}
	all := All()
	if len(all) != len(want) {
		t.Fatalf("registry has %d entries, want %d", len(all), len(want))
	}
	for i, id := range want {
		if all[i].ID != id {
			t.Errorf("registry[%d] = %s, want %s (paper order)", i, all[i].ID, id)
		}
	}
	if _, ok := ByID("nope"); ok {
		t.Error("ByID accepted a bogus id")
	}
}

func TestScaledSpecRespectsFloors(t *testing.T) {
	withScale(t, 0.01, func() {
		if got := scaledMB(20 * 1024); got != 256 {
			t.Errorf("scaledMB floor = %v, want 256", got)
		}
		pi := scaledSpec(workload.PiEst())
		if pi.FixedMapTasks < 4 {
			t.Errorf("fixed tasks floor = %d", pi.FixedMapTasks)
		}
	})
	withScale(t, 1, func() {
		if got := scaledMB(20 * 1024); got != 20*1024 {
			t.Errorf("scale 1 altered size: %v", got)
		}
	})
	withScale(t, 0, func() {
		if got := scaledMB(1024); got != 1024 {
			t.Errorf("zero scale should behave as 1, got %v", got)
		}
	})
}

// TestSectionIIExperimentsRun exercises the Section II measurement
// experiments end to end at a small scale, checking the headline claims
// embedded in their notes.
func TestSectionIIExperimentsRun(t *testing.T) {
	if testing.Short() {
		t.Skip("full experiment sweep")
	}
	withScale(t, 0.1, func() {
		for _, id := range []string{"fig1a", "fig2b", "fig2c", "fig5a", "fig6b", "fig6c"} {
			exp, _ := ByID(id)
			outcome, err := exp.Run()
			if err != nil {
				t.Fatalf("%s: %v", id, err)
			}
			if len(outcome.Table.Rows) == 0 {
				t.Errorf("%s: empty table", id)
			}
			if len(outcome.Notes) == 0 {
				t.Errorf("%s: no headline notes", id)
			}
		}
	})
}

// TestEveryExperimentRuns executes the complete registry — all 25 paper
// figures plus the extensions — at a tiny data scale, verifying that each
// produces a table and notes without error. This is the integration test
// for the whole reproduction pipeline.
func TestEveryExperimentRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("full experiment sweep")
	}
	withScale(t, 0.1, func() {
		all := append(All(), Extensions()...)
		for _, exp := range all {
			exp := exp
			t.Run(exp.ID, func(t *testing.T) {
				outcome, err := exp.Run()
				if err != nil {
					t.Fatal(err)
				}
				if len(outcome.Table.Rows) == 0 {
					t.Error("empty table")
				}
				if len(outcome.Notes) == 0 {
					t.Error("no headline notes")
				}
				if len(outcome.Table.Columns) == 0 {
					t.Error("no columns")
				}
				for i, row := range outcome.Table.Rows {
					if len(row) != len(outcome.Table.Columns) {
						t.Errorf("row %d has %d cells, want %d", i, len(row), len(outcome.Table.Columns))
					}
				}
			})
		}
	})
}

// TestPhase2ExperimentRuns exercises the Fig 8(b) DRM comparison at small
// scale and checks the direction of the result.
func TestPhase2ExperimentRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("full experiment sweep")
	}
	withScale(t, 0.15, func() {
		outcome, err := Fig8b()
		if err != nil {
			t.Fatal(err)
		}
		if len(outcome.Table.Rows) != 6 {
			t.Fatalf("fig8b rows = %d, want 6", len(outcome.Table.Rows))
		}
	})
}
