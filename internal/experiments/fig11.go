package experiments

import (
	"fmt"
	"math/rand"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/dfs"
	"repro/internal/mapred"
	"repro/internal/metrics"
	"repro/internal/sim"
	"repro/internal/testbed"
	"repro/internal/workload"
)

// fig11Config is one hybrid split of the physical infrastructure.
type fig11Config struct {
	name      string
	nativePMs int
	vms       int // hosted 2 per PM on additional machines
}

// fig11Configs generates the paper's 20 cluster configurations: 18
// seeded-random splits plus the two instructive extremes the paper calls
// out (C7-like balanced hybrid, C17-like all-native).
func fig11Configs() []fig11Config {
	rng := rand.New(rand.NewSource(1111))
	out := make([]fig11Config, 0, 20)
	out = append(out, fig11Config{name: "C1", nativePMs: 12, vms: 12}) // balanced hybrid
	for i := 2; i <= 19; i++ {
		nat := rng.Intn(17) + 2 // 2..18
		maxHosts := 24 - nat
		hosts := 0
		if maxHosts > 0 {
			hosts = rng.Intn(maxHosts) + 1
		}
		out = append(out, fig11Config{
			name:      fmt.Sprintf("C%d", i),
			nativePMs: nat,
			vms:       hosts * 2,
		})
	}
	out = append(out, fig11Config{name: "C20", nativePMs: 24, vms: 0}) // all native
	return out
}

// fig11Run is one configuration's raw measurement.
type fig11Run struct {
	meanJCT       float64
	slaCompliance float64 // fraction of latency samples within the SLA
	runEnergyWh   float64
	makespanSec   float64
	servers       int
}

// runFig11Config measures one split under a fixed small workload mix.
func runFig11Config(cfg fig11Config, sink *atomic.Uint64) (fig11Run, error) {
	vmHosts := cfg.vms / 2
	var rig *testbed.Rig
	var err error
	var nativeJT, virtualJT *mapred.JobTracker
	if vmHosts > 0 {
		rig, err = testbed.New(testbed.Options{
			PMs: vmHosts, VMsPerPM: 2, Seed: 1117,
			MapredConfig: mapred.Config{
				SlotCaps:      mapred.DefaultSlotCaps(),
				CapacityAware: true,
			},
			EventSink: sink,
		})
		if err != nil {
			return fig11Run{}, err
		}
		virtualJT = rig.JT
	} else {
		rig, err = testbed.New(testbed.Options{PMs: cfg.nativePMs, Seed: 1117, EventSink: sink})
		if err != nil {
			return fig11Run{}, err
		}
		nativeJT = rig.JT
	}
	if vmHosts > 0 && cfg.nativePMs > 0 {
		// Separate HDFS instance for the native partition, as on the
		// paper's testbed.
		pms := rig.Cluster.AddPMs("native", cfg.nativePMs)
		nativeFS := dfs.New(rig.Engine, dfs.Config{}, 1123)
		nativeJT = mapred.NewJobTracker(rig.Engine, nativeFS, mapred.Config{}, mapred.Fair{})
		for _, pm := range pms {
			nativeJT.AddTracker(pm)
		}
	}
	sys, err := core.NewSystem(rig.Engine, rig.Cluster, nativeJT, virtualJT, core.Config{TrainingSeed: 1117, EventSink: sink})
	if err != nil {
		return fig11Run{}, err
	}
	defer sys.Stop()
	// Every configuration carries the same two interactive tenants; a
	// no-VM split must host them natively on its physical machines.
	var services []*workload.Service
	for i, spec := range workload.Services()[:2] {
		var svc *workload.Service
		if vmHosts > 0 {
			svcVM, err := addServiceVM(rig, i, spec.Name)
			if err != nil {
				return fig11Run{}, err
			}
			svc, err = sys.DeployService(spec, svcVM)
			if err != nil {
				return fig11Run{}, err
			}
		} else {
			var err error
			svc, err = workload.Deploy(spec, rig.PMs[i%len(rig.PMs)])
			if err != nil {
				return fig11Run{}, err
			}
		}
		svc.SetClients(3600)
		services = append(services, svc)
	}
	// Sample SLA compliance: the paper's "performance" covers all jobs,
	// interactive included, which is what sinks the all-native extreme.
	samples, violations := 0, 0
	slaTick := sim.NewTicker(rig.Engine, 15*time.Second, func(time.Duration) {
		for _, svc := range services {
			samples++
			if svc.SLAViolated() {
				violations++
			}
		}
	})
	defer slaTick.Stop()
	rec := metrics.NewRecorder(rig.Cluster, 30*time.Second, 0)
	specs := []mapred.JobSpec{
		workload.Sort().WithInputMB(scaledMB(3 * workload.GB)),
		workload.Kmeans().WithInputMB(scaledMB(2 * workload.GB)),
		workload.Wcount().WithInputMB(scaledMB(3 * workload.GB)),
	}
	var jobs []*mapred.Job
	for _, spec := range specs {
		job, _, err := sys.SubmitJob(spec, 0, nil)
		if err != nil {
			return fig11Run{}, err
		}
		jobs = append(jobs, job)
	}
	done := func() bool {
		for _, j := range jobs {
			if !j.Done() {
				return false
			}
		}
		return true
	}
	for at := time.Minute; at <= 6*time.Hour && !done(); at += time.Minute {
		rig.Engine.RunUntil(at)
	}
	rec.Stop()
	if !done() {
		return fig11Run{}, fmt.Errorf("config %s stalled", cfg.name)
	}
	var sum float64
	for _, j := range jobs {
		sum += j.JCT().Seconds()
	}
	compliance := 1.0
	if samples > 0 {
		compliance = 1 - float64(violations)/float64(samples)
	}
	if compliance < 0.05 {
		compliance = 0.05
	}
	return fig11Run{
		meanJCT:       sum / float64(len(jobs)),
		slaCompliance: compliance,
		runEnergyWh:   rec.EnergyWh(),
		makespanSec:   rig.Engine.Now().Seconds(),
		servers:       rig.Cluster.PoweredOnPMs(),
	}, nil
}

// Fig11 reproduces Figure 11: the ⟨#PMs, #VMs, performance/energy⟩
// trade-off surface over 20 hybrid configurations.
func Fig11() (*Outcome, error) {
	out := &Outcome{Table: &Table{
		ID:      "fig11",
		Title:   "Hybrid configuration trade-off: performance/energy by split",
		Columns: []string{"config", "PMs", "VMs", "perf/energy"},
	}}
	configs := fig11Configs()
	var fired atomic.Uint64
	runs, err := Map(len(configs), func(i int) (fig11Run, error) {
		r, err := runFig11Config(configs[i], &fired)
		if err != nil {
			return fig11Run{}, fmt.Errorf("fig11 %s: %w", configs[i].name, err)
		}
		return r, nil
	})
	if err != nil {
		return nil, err
	}
	horizon := 0.0
	for _, r := range runs {
		if r.makespanSec > horizon {
			horizon = r.makespanSec
		}
	}
	// Energy over a common horizon, as in Figure 9(c): servers stay
	// powered (idling) after their configuration finishes its workload.
	idleW := 150.0
	values := make([]float64, len(configs))
	best, worst := 0, 0
	for i, r := range runs {
		energy := r.runEnergyWh + idleW*float64(r.servers)*(horizon-r.makespanSec)/3600
		// Performance covers every job class: batch completion time
		// inflated by the interactive tenants' SLA violations.
		values[i] = metrics.PerfPerEnergy(r.meanJCT/r.slaCompliance, energy)
		if values[i] > values[best] {
			best = i
		}
		if values[i] < values[worst] {
			worst = i
		}
	}
	max := values[best]
	for i, cfg := range configs {
		norm := 0.0
		if max > 0 {
			norm = values[i] / max
		}
		out.Table.AddCells(Str(cfg.name), Int(cfg.nativePMs), Int(cfg.vms), F3(norm))
	}
	out.Notef("best split %s (%d PMs, %d VMs); worst %s (%d PMs, %d VMs)",
		configs[best].name, configs[best].nativePMs, configs[best].vms,
		configs[worst].name, configs[worst].nativePMs, configs[worst].vms)
	mixed := 0.0
	if configs[best].nativePMs > 0 && configs[best].vms > 0 {
		mixed = 1
		out.Notef("a mixed configuration maximizes performance/energy, matching the paper's qualitative claim (paper: 12 PM + 12 VM best, 24 PM + 0 VM worst)")
	} else {
		out.Notef("NOTE: an extreme configuration won performance/energy in this run, diverging from the paper's balanced-hybrid claim")
	}
	out.Scalar("best_is_mixed", mixed)
	out.Scalar("best_pms", float64(configs[best].nativePMs))
	out.Scalar("best_vms", float64(configs[best].vms))
	out.Scalar("worst_pms", float64(configs[worst].nativePMs))
	out.Scalar("worst_vms", float64(configs[worst].vms))
	out.EventsFired = fired.Load()
	return out, nil
}
