package experiments

import (
	"fmt"
	"sync/atomic"

	"repro/internal/mapred"
	"repro/internal/stats"
	"repro/internal/testbed"
	"repro/internal/workload"
)

// virtualJCT runs a spec on a virtual cluster of the given VM count
// (2 VMs per PM) and returns the phase timings.
func virtualJCT(spec mapred.JobSpec, vms int, seed int64, sink *atomic.Uint64, pool *metricsPool) (testbed.JobResult, error) {
	pms := (vms + 1) / 2
	vpp := 2
	if vms == 1 {
		pms, vpp = 1, 1
	}
	reg := pool.registry()
	rig, err := testbed.New(testbed.Options{PMs: pms, VMsPerPM: vpp, Seed: seed, EventSink: sink, Metrics: reg})
	if err != nil {
		return testbed.JobResult{}, err
	}
	res, err := rig.RunJob(spec)
	if err == nil {
		pool.fold(reg)
	}
	return res, err
}

// Fig5a reproduces Figure 5(a): end-to-end JCT versus cluster size
// follows an inverse relation, for Sort, PiEst and DistGrep.
func Fig5a() (*Outcome, error) {
	clusterSizes := []int{4, 8, 16, 24, 32, 40}
	specs := []mapred.JobSpec{
		workload.Sort().WithInputMB(scaledMB(8 * workload.GB)),
		scaledSpec(workload.PiEst()),
		workload.DistGrep().WithInputMB(scaledMB(8 * workload.GB)),
	}
	out := &Outcome{Table: &Table{
		ID:      "fig5a",
		Title:   "Normalized JCT vs cluster size (number of VMs)",
		Columns: []string{"VMs", "Sort", "PiEst", "DistGrep"},
	}}
	var fired atomic.Uint64
	pool := newMetricsPool()
	flat, err := Map(len(specs)*len(clusterSizes), func(i int) (float64, error) {
		spec := specs[i/len(clusterSizes)]
		n := clusterSizes[i%len(clusterSizes)]
		res, err := virtualJCT(spec, n, 503, &fired, pool)
		if err != nil {
			return 0, fmt.Errorf("fig5a %s/%d: %w", spec.Name, n, err)
		}
		return res.JCT.Seconds(), nil
	})
	if err != nil {
		return nil, err
	}
	series := make([][]float64, len(specs))
	for si := range specs {
		series[si] = stats.Normalize(flat[si*len(clusterSizes) : (si+1)*len(clusterSizes)])
	}
	for i, n := range clusterSizes {
		out.Table.AddCells(Str(fmt.Sprintf("%d", n)), F3(series[0][i]), F3(series[1][i]), F3(series[2][i]))
	}
	// Quantify the inverse relation with the same fit the profiler uses.
	xs := make([]float64, len(clusterSizes))
	for i, n := range clusterSizes {
		xs[i] = float64(n)
	}
	fit, err := stats.FitInverseLinear(xs, series[0])
	if err != nil {
		return nil, err
	}
	out.Notef("Sort JCT vs cluster size fits A + B/x with R²=%.3f (paper: inverse relation)", fit.R2)
	out.Scalar("inverse_r2", fit.R2)
	out.EventsFired = fired.Load()
	out.Metrics = pool.snapshot()
	return out, nil
}

// fig5Phases runs the Figure 5(b)/(c) sweep: Sort at 2-5 GB over 2-12
// VMs, returning map and reduce phase times.
func fig5Phases(fired *atomic.Uint64, pool *metricsPool) (clusterSizes []int, sizesGB []float64, mapSec, redSec map[string]float64, err error) {
	clusterSizes = []int{2, 4, 6, 8, 10, 12}
	sizesGB = []float64{2, 3, 4, 5}
	mapSec = make(map[string]float64)
	redSec = make(map[string]float64)
	results, err := Map(len(sizesGB)*len(clusterSizes), func(i int) (testbed.JobResult, error) {
		gb := sizesGB[i/len(clusterSizes)]
		n := clusterSizes[i%len(clusterSizes)]
		return virtualJCT(workload.Sort().WithInputMB(scaledMB(gb*workload.GB)), n, 509, fired, pool)
	})
	if err != nil {
		return nil, nil, nil, nil, err
	}
	for i, res := range results {
		gb := sizesGB[i/len(clusterSizes)]
		n := clusterSizes[i%len(clusterSizes)]
		key := fmt.Sprintf("%.0f/%d", gb, n)
		mapSec[key] = res.MapPhase.Seconds()
		redSec[key] = res.ReducePhase.Seconds()
	}
	return clusterSizes, sizesGB, mapSec, redSec, nil
}

// Fig5b reproduces Figure 5(b): map-phase time versus cluster size.
func Fig5b() (*Outcome, error) {
	return fig5PhaseTable("fig5b", "Sort map-phase time (s) vs cluster size", true)
}

// Fig5c reproduces Figure 5(c): reduce-phase time versus cluster size
// (piece-wise, not smoothly inverse).
func Fig5c() (*Outcome, error) {
	return fig5PhaseTable("fig5c", "Sort reduce-phase time (s) vs cluster size", false)
}

func fig5PhaseTable(id, title string, mapPhase bool) (*Outcome, error) {
	var fired atomic.Uint64
	pool := newMetricsPool()
	clusterSizes, sizesGB, mapSec, redSec, err := fig5Phases(&fired, pool)
	if err != nil {
		return nil, err
	}
	src := redSec
	if mapPhase {
		src = mapSec
	}
	out := &Outcome{Table: &Table{
		ID:      id,
		Title:   title,
		Columns: []string{"VMs", "5GB", "4GB", "3GB", "2GB"},
	}}
	for _, n := range clusterSizes {
		row := []Cell{Str(fmt.Sprintf("%d", n))}
		for i := len(sizesGB) - 1; i >= 0; i-- {
			row = append(row, F1(src[fmt.Sprintf("%.0f/%d", sizesGB[i], n)]))
		}
		out.Table.AddCells(row...)
	}
	// Characterize the 5 GB series' fit quality under the two families.
	xs := make([]float64, len(clusterSizes))
	ys := make([]float64, len(clusterSizes))
	for i, n := range clusterSizes {
		xs[i] = float64(n)
		ys[i] = src[fmt.Sprintf("%.0f/%d", sizesGB[len(sizesGB)-1], n)]
	}
	if inv, err := stats.FitInverseLinear(xs, ys); err == nil {
		out.Notef("5 GB series inverse fit R²=%.3f", inv.R2)
		out.Scalar("inverse_r2", inv.R2)
	}
	if pw, err := stats.FitPiecewiseLinear(xs, ys); err == nil {
		out.Notef("5 GB series piece-wise fit R²=%.3f (paper: map inverse, reduce piece-wise)", pw.R2)
		out.Scalar("piecewise_r2", pw.R2)
	}
	out.EventsFired = fired.Load()
	out.Metrics = pool.snapshot()
	return out, nil
}

// Fig5d reproduces Figure 5(d): JCT versus input size is close to linear
// for each cluster size C1-C16.
func Fig5d() (*Outcome, error) {
	clusterSizes := []int{1, 2, 4, 8, 16}
	sizesGB := []float64{5, 10, 15}
	out := &Outcome{Table: &Table{
		ID:      "fig5d",
		Title:   "Sort JCT (s) vs input size per virtual cluster size",
		Columns: []string{"data(GB)", "C1", "C2", "C4", "C8", "C16"},
	}}
	var fired atomic.Uint64
	pool := newMetricsPool()
	flat, err := Map(len(sizesGB)*len(clusterSizes), func(i int) (float64, error) {
		gb := sizesGB[i/len(clusterSizes)]
		n := clusterSizes[i%len(clusterSizes)]
		res, err := virtualJCT(workload.Sort().WithInputMB(scaledMB(gb*workload.GB)), n, 521, &fired, pool)
		if err != nil {
			return 0, err
		}
		return res.JCT.Seconds(), nil
	})
	if err != nil {
		return nil, err
	}
	jct := make(map[string]float64)
	for i, v := range flat {
		gb := sizesGB[i/len(clusterSizes)]
		n := clusterSizes[i%len(clusterSizes)]
		jct[fmt.Sprintf("%.0f/%d", gb, n)] = v
	}
	for _, gb := range sizesGB {
		row := []Cell{Str(fmt.Sprintf("%.0f", gb))}
		for _, n := range clusterSizes {
			row = append(row, F1(jct[fmt.Sprintf("%.0f/%d", gb, n)]))
		}
		out.Table.AddCells(row...)
	}
	// Linearity check on C4.
	xs := make([]float64, len(sizesGB))
	ys := make([]float64, len(sizesGB))
	for i, gb := range sizesGB {
		xs[i] = gb
		ys[i] = jct[fmt.Sprintf("%.0f/4", gb)]
	}
	fit, err := stats.FitLinear(xs, ys)
	if err != nil {
		return nil, err
	}
	out.Notef("C4 series linear fit R²=%.3f (paper: JCT almost linearly proportional to data size)", fit.R2)
	out.Scalar("linear_r2", fit.R2)
	out.EventsFired = fired.Load()
	out.Metrics = pool.snapshot()
	return out, nil
}
