package experiments

import (
	"math"
	"testing"
	"time"
)

func TestCellConstructors(t *testing.T) {
	cases := []struct {
		name    string
		cell    Cell
		text    string
		value   float64
		numeric bool
	}{
		{"Str", Str("Sort"), "Sort", 0, false},
		{"Num", Num("2.35x", 2.35), "2.35x", 2.35, true},
		{"Int", Int(42), "42", 42, true},
		{"Pct", Pct(0.125), fmtPct(0.125), 0.125, true},
		{"F3", F3(0.469), "0.469", 0.469, true},
		{"F1", F1(43.24), "43.2", 43.24, true},
		{"F0", F0(43.4), "43", 43.4, true},
		{"Sec", Sec(7400 * time.Millisecond), fmtDur(7400 * time.Millisecond), 7.4, true},
	}
	for _, c := range cases {
		if c.cell.Text != c.text {
			t.Errorf("%s: text %q, want %q", c.name, c.cell.Text, c.text)
		}
		if c.cell.Numeric != c.numeric {
			t.Errorf("%s: numeric %v, want %v", c.name, c.cell.Numeric, c.numeric)
		}
		if c.numeric && math.Abs(c.cell.Value-c.value) > 1e-9 {
			t.Errorf("%s: value %g, want %g", c.name, c.cell.Value, c.value)
		}
	}
}

// TestTableNumericAccessors covers the value plumbing the fidelity
// suite reads: AddCells records numbers, AddRow backfills NaN, and the
// accessors skip label cells instead of returning garbage zeros.
func TestTableNumericAccessors(t *testing.T) {
	tb := &Table{Columns: []string{"bench", "native", "virtual"}}
	tb.AddCells(Str("Sort"), F1(100), F1(150))
	tb.AddCells(Str("PiEst"), F1(80), F1(90))
	tb.AddRow("Grep", "n/a", "n/a") // string-only row: all NaN

	if v, ok := tb.Value("Sort", "virtual"); !ok || v != 150 {
		t.Errorf("Value(Sort, virtual) = %g, %v; want 150, true", v, ok)
	}
	if _, ok := tb.Value("Sort", "bench"); ok {
		t.Error("Value on a label cell should report no number")
	}
	if _, ok := tb.Value("Grep", "native"); ok {
		t.Error("Value on an AddRow row should report no number")
	}
	if _, ok := tb.Value("missing", "native"); ok {
		t.Error("Value on a missing row should report no number")
	}

	if got := tb.Column("native"); len(got) != 2 || got[0] != 100 || got[1] != 80 {
		t.Errorf("Column(native) = %v, want [100 80]", got)
	}
	if got := tb.Column("bench"); len(got) != 0 {
		t.Errorf("Column over labels should be empty, got %v", got)
	}
	if got := tb.RowValues("PiEst"); len(got) != 2 || got[0] != 80 || got[1] != 90 {
		t.Errorf("RowValues(PiEst) = %v, want [80 90]", got)
	}
	if got := tb.RowValues("nope"); got != nil {
		t.Errorf("RowValues on a missing row should be nil, got %v", got)
	}

	// Rows and Vals must stay in lockstep — Fprint walks Rows while
	// the fidelity suite walks Vals.
	if len(tb.Rows) != len(tb.Vals) {
		t.Fatalf("Rows/Vals out of sync: %d vs %d", len(tb.Rows), len(tb.Vals))
	}
	for i := range tb.Rows {
		if len(tb.Rows[i]) != len(tb.Vals[i]) {
			t.Errorf("row %d: %d cells but %d vals", i, len(tb.Rows[i]), len(tb.Vals[i]))
		}
	}
}

func TestOutcomeScalar(t *testing.T) {
	var o Outcome
	o.Scalar("speedup", 2.35)
	o.Scalar("speedup", 3.0) // last write wins
	if got := o.Scalars["speedup"]; got != 3.0 {
		t.Errorf("Scalars[speedup] = %g, want 3.0", got)
	}
}
