// Package progress prints a live wall-clock heartbeat for long runs:
// completed fraction, simulated time, events fired, events/sec and an
// ETA, on stderr. It exists for the human watching a -scale-up sweep, so
// everything it prints is wall-clock-derived and must never enter a
// deterministic artifact. The engine's state is not goroutine-safe; the
// only engine value the reporter reads from its own goroutine is the
// atomic processed-event total (sim.ProcessEvents), and everything else
// arrives via the atomic setters below.
package progress

import (
	"fmt"
	"io"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/sim"
)

// Reporter periodically writes one status line. The zero value is not
// usable; a nil *Reporter accepts every method as a no-op, so callers
// thread one through unconditionally and only construct it when the user
// asked for a heartbeat.
type Reporter struct {
	w        io.Writer
	label    string
	interval time.Duration
	started  time.Time
	start0   uint64 // process-wide event total at Start

	// done/total measure completed work in caller-defined units
	// (sim-time milliseconds, sweep points) as a fraction for the ETA.
	done  atomic.Int64
	total atomic.Int64

	mu      sync.Mutex
	stop    chan struct{}
	stopped bool
	lastLen int
}

// Start launches a heartbeat printing to w every interval (default 1s).
// total is the amount of work in caller-defined units; Set/Add move the
// completed amount. Call Stop when the run finishes.
func Start(w io.Writer, label string, total int64, interval time.Duration) *Reporter {
	if interval <= 0 {
		interval = time.Second
	}
	r := &Reporter{
		w:        w,
		label:    label,
		interval: interval,
		started:  time.Now(),
		start0:   sim.ProcessEvents(),
		stop:     make(chan struct{}),
	}
	r.total.Store(total)
	go r.loop()
	return r
}

// Set reports the completed amount of work.
func (r *Reporter) Set(done int64) {
	if r == nil {
		return
	}
	r.done.Store(done)
}

// Add increments the completed amount of work.
func (r *Reporter) Add(delta int64) {
	if r == nil {
		return
	}
	r.done.Add(delta)
}

// SetTotal replaces the total amount of work, for callers that only
// learn the workload size after starting the heartbeat.
func (r *Reporter) SetTotal(total int64) {
	if r == nil {
		return
	}
	r.total.Store(total)
}

// Stop halts the heartbeat, printing one final line (with a trailing
// newline so subsequent output starts clean). Stop is idempotent.
func (r *Reporter) Stop() {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.stopped {
		return
	}
	r.stopped = true
	close(r.stop)
	r.print(true)
}

func (r *Reporter) loop() {
	t := time.NewTicker(r.interval)
	defer t.Stop()
	for {
		select {
		case <-r.stop:
			return
		case <-t.C:
			r.mu.Lock()
			if !r.stopped {
				r.print(false)
			}
			r.mu.Unlock()
		}
	}
}

// print renders one status line in place (carriage return, padded to
// cover the previous line). Callers hold r.mu.
func (r *Reporter) print(final bool) {
	elapsed := time.Since(r.started)
	events := sim.ProcessEvents() - r.start0
	evRate := float64(events) / elapsed.Seconds()
	done, total := r.done.Load(), r.total.Load()

	line := fmt.Sprintf("%s: %s elapsed, %d events (%.0f/s)",
		r.label, elapsed.Truncate(time.Second), events, evRate)
	if total > 0 {
		frac := float64(done) / float64(total)
		if frac > 1 {
			frac = 1
		}
		line += fmt.Sprintf(", %.0f%%", frac*100)
		if frac > 0 && frac < 1 {
			eta := time.Duration(float64(elapsed) * (1 - frac) / frac)
			line += fmt.Sprintf(", ETA %s", eta.Truncate(time.Second))
		}
	}
	pad := r.lastLen - len(line)
	if pad < 0 {
		pad = 0
	}
	r.lastLen = len(line)
	end := ""
	if final {
		end = "\n"
	}
	fmt.Fprintf(r.w, "\r%s%*s%s", line, pad, "", end)
}
