package progress

import (
	"bytes"
	"strings"
	"testing"
	"time"
)

func TestReporterFinalLine(t *testing.T) {
	var buf bytes.Buffer
	r := Start(&buf, "sweep", 4, time.Hour) // interval far past the test's life
	r.Add(1)
	r.Add(3)
	r.Stop()
	out := buf.String()
	if !strings.Contains(out, "sweep:") {
		t.Fatalf("final line missing label: %q", out)
	}
	if !strings.Contains(out, "100%") {
		t.Fatalf("final line should report completion: %q", out)
	}
	if !strings.HasSuffix(out, "\n") {
		t.Fatalf("final line must end with a newline: %q", out)
	}
}

func TestReporterStopIdempotent(t *testing.T) {
	var buf bytes.Buffer
	r := Start(&buf, "x", 0, time.Hour)
	r.Stop()
	n := buf.Len()
	r.Stop()
	if buf.Len() != n {
		t.Fatalf("second Stop wrote more output")
	}
}

func TestNilReporterNoOps(t *testing.T) {
	var r *Reporter
	r.Set(1)
	r.Add(2)
	r.SetTotal(3)
	r.Stop() // must not panic
}

func TestSetTotalDrivesETA(t *testing.T) {
	var buf bytes.Buffer
	r := Start(&buf, "run", 0, time.Hour)
	r.SetTotal(10)
	r.Set(5)
	time.Sleep(10 * time.Millisecond) // nonzero elapsed so the ETA term is live
	r.Stop()
	out := buf.String()
	if !strings.Contains(out, "50%") {
		t.Fatalf("expected a completed fraction in %q", out)
	}
	if !strings.Contains(out, "ETA") {
		t.Fatalf("expected an ETA for a partial run in %q", out)
	}
}
