package resource

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEq(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestVectorAccessors(t *testing.T) {
	v := NewVector(2, 1024, 80, 100)
	tests := []struct {
		kind Kind
		want float64
	}{
		{CPU, 2},
		{Memory, 1024},
		{DiskIO, 80},
		{NetIO, 100},
	}
	for _, tt := range tests {
		if got := v.Get(tt.kind); got != tt.want {
			t.Errorf("Get(%s) = %v, want %v", tt.kind, got, tt.want)
		}
	}
	v2 := v.Set(CPU, 4)
	if v2.Get(CPU) != 4 {
		t.Errorf("Set(CPU, 4).Get(CPU) = %v", v2.Get(CPU))
	}
	if v.Get(CPU) != 2 {
		t.Errorf("Set mutated receiver: %v", v.Get(CPU))
	}
}

func TestVectorArithmetic(t *testing.T) {
	a := NewVector(1, 2, 3, 4)
	b := NewVector(4, 3, 2, 1)
	if got := a.Add(b); got != NewVector(5, 5, 5, 5) {
		t.Errorf("Add = %v", got)
	}
	if got := a.Sub(b); got != NewVector(-3, -1, 1, 3) {
		t.Errorf("Sub = %v", got)
	}
	if got := a.Scale(2); got != NewVector(2, 4, 6, 8) {
		t.Errorf("Scale = %v", got)
	}
	if got := a.Mul(b); got != NewVector(4, 6, 6, 4) {
		t.Errorf("Mul = %v", got)
	}
	if got := a.Min(b); got != NewVector(1, 2, 2, 1) {
		t.Errorf("Min = %v", got)
	}
	if got := a.Max(b); got != NewVector(4, 3, 3, 4) {
		t.Errorf("Max = %v", got)
	}
}

func TestVectorDivZeroMeansUnused(t *testing.T) {
	a := NewVector(10, 0, 5, 0)
	b := NewVector(2, 0, 0, 4)
	got := a.Div(b)
	if got.Get(CPU) != 5 {
		t.Errorf("Div cpu = %v, want 5", got.Get(CPU))
	}
	if got.Get(Memory) != 0 || got.Get(DiskIO) != 0 {
		t.Errorf("Div by zero should be 0, got %v", got)
	}
}

func TestVectorClamp(t *testing.T) {
	v := NewVector(-1, 5, 100, 2)
	hi := NewVector(4, 4, 4, 4)
	got := v.Clamp(hi)
	if got != NewVector(0, 4, 4, 2) {
		t.Errorf("Clamp = %v", got)
	}
}

func TestVectorPredicates(t *testing.T) {
	var zero Vector
	if !zero.IsZero() {
		t.Error("zero vector IsZero() = false")
	}
	if NewVector(0, 0, 0, 1).IsZero() {
		t.Error("nonzero vector IsZero() = true")
	}
	if !NewVector(-1, 0, 0, 0).AnyNegative() {
		t.Error("AnyNegative missed a negative")
	}
	if NewVector(1, 2, 3, 4).AnyNegative() {
		t.Error("AnyNegative false positive")
	}
	if !NewVector(1, 1, 1, 1).LessEq(NewVector(1, 2, 3, 4)) {
		t.Error("LessEq = false, want true")
	}
	if NewVector(2, 1, 1, 1).LessEq(NewVector(1, 2, 3, 4)) {
		t.Error("LessEq = true, want false")
	}
}

func TestVectorDominant(t *testing.T) {
	ref := NewVector(2, 4096, 80, 100)
	tests := []struct {
		name string
		v    Vector
		want Kind
		ok   bool
	}{
		{"cpu-heavy", NewVector(1.9, 100, 1, 1), CPU, true},
		{"disk-heavy", NewVector(0.1, 100, 79, 1), DiskIO, true},
		{"net-heavy", NewVector(0.1, 100, 1, 99), NetIO, true},
		{"memory-heavy", NewVector(0.1, 4000, 1, 1), Memory, true},
		{"zero", Vector{}, CPU, false},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got, ok := tt.v.Dominant(ref)
			if ok != tt.ok {
				t.Fatalf("Dominant ok = %v, want %v", ok, tt.ok)
			}
			if ok && got != tt.want {
				t.Errorf("Dominant = %s, want %s", got, tt.want)
			}
		})
	}
}

func TestFairShareUncontended(t *testing.T) {
	claims := []Claim{{Demand: 10}, {Demand: 20}, {Demand: 30}}
	got := FairShare(100, claims)
	for i, want := range []float64{10, 20, 30} {
		if !almostEq(got[i], want) {
			t.Errorf("alloc[%d] = %v, want %v", i, got[i], want)
		}
	}
}

func TestFairShareContendedEqualWeights(t *testing.T) {
	claims := []Claim{{Demand: 100}, {Demand: 100}, {Demand: 100}, {Demand: 100}}
	got := FairShare(100, claims)
	for i := range got {
		if !almostEq(got[i], 25) {
			t.Errorf("alloc[%d] = %v, want 25", i, got[i])
		}
	}
}

func TestFairShareMaxMinRedistribution(t *testing.T) {
	// One small claim frees capacity that the two big claims split.
	claims := []Claim{{Demand: 10}, {Demand: 100}, {Demand: 100}}
	got := FairShare(100, claims)
	if !almostEq(got[0], 10) {
		t.Errorf("small claim = %v, want its full 10", got[0])
	}
	if !almostEq(got[1], 45) || !almostEq(got[2], 45) {
		t.Errorf("big claims = %v, %v, want 45 each", got[1], got[2])
	}
}

func TestFairShareWeights(t *testing.T) {
	claims := []Claim{
		{Demand: 100, Weight: 3},
		{Demand: 100, Weight: 1},
	}
	got := FairShare(100, claims)
	if !almostEq(got[0], 75) || !almostEq(got[1], 25) {
		t.Errorf("weighted allocs = %v, want [75 25]", got)
	}
}

func TestFairShareCap(t *testing.T) {
	claims := []Claim{
		{Demand: 100, Cap: 20},
		{Demand: 100},
	}
	got := FairShare(100, claims)
	if !almostEq(got[0], 20) {
		t.Errorf("capped claim = %v, want 20", got[0])
	}
	if !almostEq(got[1], 80) {
		t.Errorf("uncapped claim = %v, want 80", got[1])
	}
}

func TestFairShareZeroAndNegativeDemand(t *testing.T) {
	claims := []Claim{{Demand: 0}, {Demand: -5}, {Demand: 50}}
	got := FairShare(100, claims)
	if got[0] != 0 || got[1] != 0 {
		t.Errorf("zero/negative demand got allocation: %v", got)
	}
	if !almostEq(got[2], 50) {
		t.Errorf("real claim = %v, want 50", got[2])
	}
}

func TestFairShareNoCapacity(t *testing.T) {
	got := FairShare(0, []Claim{{Demand: 10}})
	if got[0] != 0 {
		t.Errorf("alloc with zero capacity = %v", got[0])
	}
	if got := FairShare(10, nil); len(got) != 0 {
		t.Errorf("nil claims gave %v", got)
	}
}

// Property: allocations never exceed capacity, never exceed demand or cap,
// and are never negative — for any random claim set.
func TestFairShareInvariants(t *testing.T) {
	f := func(rawDemands []uint16, capacity uint16) bool {
		if len(rawDemands) == 0 {
			return true
		}
		if len(rawDemands) > 64 {
			rawDemands = rawDemands[:64]
		}
		claims := make([]Claim, len(rawDemands))
		for i, d := range rawDemands {
			claims[i] = Claim{
				Demand: float64(d % 1000),
				Weight: float64(d%7) + 0.5,
				Cap:    float64(d % 500),
			}
		}
		cap := float64(capacity % 2000)
		allocs := FairShare(cap, claims)
		total := 0.0
		for i, a := range allocs {
			if a < -1e-9 {
				return false
			}
			if a > claims[i].bound()+1e-9 {
				return false
			}
			total += a
		}
		return total <= cap+1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: when capacity is scarce, it is fully used (work-conserving).
func TestFairShareWorkConserving(t *testing.T) {
	f := func(seed uint32) bool {
		n := int(seed%10) + 2
		claims := make([]Claim, n)
		totalDemand := 0.0
		for i := range claims {
			d := float64((seed>>uint(i%16))%50) + 10
			claims[i] = Claim{Demand: d}
			totalDemand += d
		}
		cap := totalDemand / 2 // scarce
		allocs := FairShare(cap, claims)
		total := 0.0
		for _, a := range allocs {
			total += a
		}
		return math.Abs(total-cap) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestShareVector(t *testing.T) {
	capacity := NewVector(4, 4096, 100, 100)
	demands := []Vector{
		NewVector(4, 1024, 0, 0),
		NewVector(4, 1024, 100, 0),
	}
	got := ShareVector(capacity, demands, nil, nil)
	if !almostEq(got[0].Get(CPU), 2) || !almostEq(got[1].Get(CPU), 2) {
		t.Errorf("cpu split = %v / %v, want 2 / 2", got[0].Get(CPU), got[1].Get(CPU))
	}
	if !almostEq(got[0].Get(Memory), 1024) {
		t.Errorf("memory = %v, want full 1024", got[0].Get(Memory))
	}
	if !almostEq(got[1].Get(DiskIO), 100) {
		t.Errorf("disk = %v, want full 100 (no contention)", got[1].Get(DiskIO))
	}
}

func TestShareVectorCaps(t *testing.T) {
	capacity := NewVector(4, 4096, 100, 100)
	demands := []Vector{NewVector(4, 0, 0, 0), NewVector(4, 0, 0, 0)}
	caps := []Vector{NewVector(1, 0, 0, 0), {}}
	got := ShareVector(capacity, demands, nil, caps)
	if !almostEq(got[0].Get(CPU), 1) {
		t.Errorf("capped consumer cpu = %v, want 1", got[0].Get(CPU))
	}
	if !almostEq(got[1].Get(CPU), 3) {
		t.Errorf("uncapped consumer cpu = %v, want 3", got[1].Get(CPU))
	}
}

func TestKindString(t *testing.T) {
	tests := []struct {
		kind Kind
		want string
	}{
		{CPU, "cpu"}, {Memory, "mem"}, {DiskIO, "dio"}, {NetIO, "nio"}, {Kind(99), "kind(99)"},
	}
	for _, tt := range tests {
		if got := tt.kind.String(); got != tt.want {
			t.Errorf("Kind(%d).String() = %q, want %q", tt.kind, got, tt.want)
		}
	}
}
