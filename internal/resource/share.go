package resource

import "sort"

// Claim is one consumer's request in a fair-share round for a single
// resource dimension.
type Claim struct {
	// Demand is how much the consumer wants (same units as capacity).
	Demand float64
	// Weight scales the consumer's fair share. Non-positive weights are
	// treated as 1.
	Weight float64
	// Cap is a hard upper bound on the allocation (for example a VM's
	// vCPU limit, or a cgroup throttle installed by the DRM). Zero or
	// negative means "no cap".
	Cap float64
}

func (c Claim) effWeight() float64 {
	if c.Weight <= 0 {
		return 1
	}
	return c.Weight
}

func (c Claim) bound() float64 {
	b := c.Demand
	if c.Cap > 0 && c.Cap < b {
		b = c.Cap
	}
	if b < 0 {
		b = 0
	}
	return b
}

// FairShare divides capacity among claims by weighted max-min fairness
// (progressive filling): every claim is granted min(bound, weighted share),
// and capacity freed by claims that need less than their share is
// redistributed to the rest. The returned slice is parallel to claims and
// sums to at most capacity.
//
// The algorithm sorts claims by bound/weight and fills in one pass, which
// is O(n log n) and exact for the water-filling solution.
func FairShare(capacity float64, claims []Claim) []float64 {
	alloc := make([]float64, len(claims))
	if capacity <= 0 || len(claims) == 0 {
		return alloc
	}

	type entry struct {
		idx     int
		bound   float64
		weight  float64
		perUnit float64 // bound / weight: the water level at which it saturates
	}
	entries := make([]entry, 0, len(claims))
	totalWeight := 0.0
	for i, c := range claims {
		b := c.bound()
		if b <= 0 {
			continue
		}
		w := c.effWeight()
		entries = append(entries, entry{idx: i, bound: b, weight: w, perUnit: b / w})
		totalWeight += w
	}
	sort.Slice(entries, func(i, j int) bool { return entries[i].perUnit < entries[j].perUnit })

	remaining := capacity
	for i, e := range entries {
		// Water level if the remaining capacity were spread over the
		// still-unsaturated claims.
		level := remaining / totalWeight
		if e.perUnit <= level {
			// Claim saturates below the water level: give it its bound.
			alloc[e.idx] = e.bound
			remaining -= e.bound
			totalWeight -= e.weight
			if remaining <= 0 {
				remaining = 0
			}
			continue
		}
		// All remaining claims are capacity-limited: split by weight.
		for _, e2 := range entries[i:] {
			alloc[e2.idx] = level * e2.weight
		}
		return alloc
	}
	return alloc
}

// ShareVector solves FairShare independently on each resource dimension.
// demands, weights and caps are parallel slices: weights applies to all
// dimensions of a consumer, caps may be the zero Vector for "no cap".
func ShareVector(capacity Vector, demands []Vector, weights []float64, caps []Vector) []Vector {
	out := make([]Vector, len(demands))
	claims := make([]Claim, len(demands))
	for _, k := range Kinds() {
		for i := range demands {
			var w float64 = 1
			if weights != nil {
				w = weights[i]
			}
			var cap float64
			if caps != nil {
				cap = caps[i].Get(k)
			}
			claims[i] = Claim{Demand: demands[i].Get(k), Weight: w, Cap: cap}
		}
		allocs := FairShare(capacity.Get(k), claims)
		for i := range out {
			out[i] = out[i].Set(k, allocs[i])
		}
	}
	return out
}
