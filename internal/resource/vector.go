// Package resource defines the resource dimensions of the simulated data
// center (CPU, memory, disk I/O, network I/O) and a weighted max-min fair
// sharing solver used by hosts to divide capacity among collocated
// consumers.
package resource

import (
	"fmt"
	"strings"
)

// Kind identifies one resource dimension.
type Kind int

// The four resource dimensions tracked throughout the system. They mirror
// the resources HybridMR's Phase II manages: CPU, memory, and I/O (split
// into disk and network so that shuffle traffic and HDFS traffic contend
// realistically).
const (
	CPU Kind = iota + 1
	Memory
	DiskIO
	NetIO
)

// NumKinds is the number of resource dimensions.
const NumKinds = 4

// Kinds lists all resource dimensions in canonical order.
func Kinds() [NumKinds]Kind {
	return [NumKinds]Kind{CPU, Memory, DiskIO, NetIO}
}

// String returns the conventional short name of the resource.
func (k Kind) String() string {
	switch k {
	case CPU:
		return "cpu"
	case Memory:
		return "mem"
	case DiskIO:
		return "dio"
	case NetIO:
		return "nio"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// Vector holds one value per resource dimension. Units by convention:
// CPU in cores (1.0 = one fully busy core), Memory in MB, DiskIO and NetIO
// in MB/s. The zero Vector is valid and means "nothing".
type Vector [NumKinds]float64

// NewVector builds a vector from named components.
func NewVector(cpu, memMB, diskMBps, netMBps float64) Vector {
	var v Vector
	v[CPU.index()] = cpu
	v[Memory.index()] = memMB
	v[DiskIO.index()] = diskMBps
	v[NetIO.index()] = netMBps
	return v
}

func (k Kind) index() int { return int(k) - 1 }

// Get returns the component for kind k.
func (v Vector) Get(k Kind) float64 { return v[k.index()] }

// Set returns a copy of v with component k replaced.
func (v Vector) Set(k Kind, val float64) Vector {
	v[k.index()] = val
	return v
}

// Add returns v + o component-wise.
func (v Vector) Add(o Vector) Vector {
	for i := range v {
		v[i] += o[i]
	}
	return v
}

// Sub returns v - o component-wise.
func (v Vector) Sub(o Vector) Vector {
	for i := range v {
		v[i] -= o[i]
	}
	return v
}

// Scale returns v scaled by f.
func (v Vector) Scale(f float64) Vector {
	for i := range v {
		v[i] *= f
	}
	return v
}

// Mul returns the component-wise product.
func (v Vector) Mul(o Vector) Vector {
	for i := range v {
		v[i] *= o[i]
	}
	return v
}

// Div returns the component-wise quotient; components where o is zero
// yield zero rather than Inf, because a zero divisor in this codebase
// always means "dimension unused".
func (v Vector) Div(o Vector) Vector {
	for i := range v {
		if o[i] == 0 {
			v[i] = 0
		} else {
			v[i] /= o[i]
		}
	}
	return v
}

// Min returns the component-wise minimum.
func (v Vector) Min(o Vector) Vector {
	for i := range v {
		if o[i] < v[i] {
			v[i] = o[i]
		}
	}
	return v
}

// Max returns the component-wise maximum.
func (v Vector) Max(o Vector) Vector {
	for i := range v {
		if o[i] > v[i] {
			v[i] = o[i]
		}
	}
	return v
}

// Clamp limits each component to [0, hi_k].
func (v Vector) Clamp(hi Vector) Vector {
	for i := range v {
		if v[i] < 0 {
			v[i] = 0
		}
		if v[i] > hi[i] {
			v[i] = hi[i]
		}
	}
	return v
}

// IsZero reports whether every component is zero.
func (v Vector) IsZero() bool {
	for i := range v {
		if v[i] != 0 {
			return false
		}
	}
	return true
}

// AnyNegative reports whether any component is negative.
func (v Vector) AnyNegative() bool {
	for i := range v {
		if v[i] < 0 {
			return true
		}
	}
	return false
}

// LessEq reports whether v <= o in every component.
func (v Vector) LessEq(o Vector) bool {
	for i := range v {
		if v[i] > o[i] {
			return false
		}
	}
	return true
}

// Dominant returns the kind with the largest ratio v_k / ref_k, i.e. the
// resource the vector stresses most relative to the reference capacity.
// Dimensions with zero reference are skipped. If all ratios are zero the
// second return is false.
func (v Vector) Dominant(ref Vector) (Kind, bool) {
	best, bestRatio := CPU, 0.0
	found := false
	for _, k := range Kinds() {
		r := ref.Get(k)
		if r <= 0 {
			continue
		}
		ratio := v.Get(k) / r
		if ratio > bestRatio {
			best, bestRatio = k, ratio
			found = true
		}
	}
	return best, found
}

// String formats the vector with short component names.
func (v Vector) String() string {
	var b strings.Builder
	b.WriteByte('{')
	for i, k := range Kinds() {
		if i > 0 {
			b.WriteByte(' ')
		}
		fmt.Fprintf(&b, "%s=%.3g", k, v.Get(k))
	}
	b.WriteByte('}')
	return b.String()
}
