package policy

import (
	"strings"
	"testing"
)

// TestRegistryRoundTrip constructs every registered policy by name and
// checks the constructed policy answers to that name — the property the
// -policy flag and SEARCH.json identity strings rest on.
func TestRegistryRoundTrip(t *testing.T) {
	for _, name := range Phase1Names() {
		p, err := NewPhase1(name)
		if err != nil {
			t.Fatalf("NewPhase1(%q): %v", name, err)
		}
		if p.Name() != name {
			t.Errorf("NewPhase1(%q).Name() = %q", name, p.Name())
		}
	}
	for _, name := range DRMNames() {
		p, err := NewDRM(name)
		if err != nil {
			t.Fatalf("NewDRM(%q): %v", name, err)
		}
		if p.Name() != name {
			t.Errorf("NewDRM(%q).Name() = %q", name, p.Name())
		}
	}
	for _, name := range IPSNames() {
		p, err := NewIPS(name)
		if err != nil {
			t.Fatalf("NewIPS(%q): %v", name, err)
		}
		if p.Name() != name {
			t.Errorf("NewIPS(%q).Name() = %q", name, p.Name())
		}
	}
	for _, name := range Phase2Names() {
		p, err := NewPhase2(name)
		if err != nil {
			t.Fatalf("NewPhase2(%q): %v", name, err)
		}
		if p.Name() != name {
			t.Errorf("NewPhase2(%q).Name() = %q", name, p.Name())
		}
		if p.NewScheduler() == nil {
			t.Errorf("NewPhase2(%q).NewScheduler() = nil", name)
		}
	}
}

// TestUnknownNamesError checks every seam rejects unregistered names
// and lists the registered alternatives in the error.
func TestUnknownNamesError(t *testing.T) {
	if _, err := NewPhase1("nope"); err == nil || !strings.Contains(err.Error(), "paper-p1") {
		t.Errorf("NewPhase1 unknown: %v", err)
	}
	if _, err := NewDRM("nope"); err == nil || !strings.Contains(err.Error(), "paper-drm") {
		t.Errorf("NewDRM unknown: %v", err)
	}
	if _, err := NewIPS("nope"); err == nil || !strings.Contains(err.Error(), "paper-ips") {
		t.Errorf("NewIPS unknown: %v", err)
	}
	if _, err := NewPhase2("nope"); err == nil || !strings.Contains(err.Error(), "paper-p2") {
		t.Errorf("NewPhase2 unknown: %v", err)
	}
}

// TestDefaultMatchesPaperKnobs pins the default set to the hard-coded
// controller parameters the policy extraction replaced — the values the
// CI policy-gate's byte comparison depends on.
func TestDefaultMatchesPaperKnobs(t *testing.T) {
	set := Default()
	if got := set.DRM.Params(); got != (DRMParams{Deferral: true, HogTrimAbove: 1.5, HogTrimTo: 1.2}) {
		t.Errorf("default DRM params = %+v", got)
	}
	want := IPSParams{PauseStreak: 3, MaxRelocationsPerEpoch: 2, RelocateBelowProgress: 0.6, ThrottleFactor: 0.5}
	if got := set.IPS.Params(); got != want {
		t.Errorf("default IPS params = %+v", got)
	}
	if set.Phase2.NewScheduler().Name() != "fair" {
		t.Errorf("default Phase II scheduler = %q", set.Phase2.NewScheduler().Name())
	}
	sp := set.Phase2.Speculation()
	if sp.Disable || sp.Slowdown != 0 {
		t.Errorf("default speculation = %+v", sp)
	}
}

// TestParseSpec covers the -policy syntax: happy path, canonical
// rendering, knob overrides, and up-front rejection of unknown keys and
// names.
func TestParseSpec(t *testing.T) {
	spec, err := ParseSpec("p2=jobdriven-p2, drm=static-split, p1.overhead=0.4")
	if err != nil {
		t.Fatalf("ParseSpec: %v", err)
	}
	if spec.Phase2 != "jobdriven-p2" || spec.DRM != "static-split" || spec.Overhead != 0.4 {
		t.Errorf("parsed %+v", spec)
	}
	want := "p1=paper-p1,drm=static-split,ips=paper-ips,p2=jobdriven-p2,p1.overhead=0.4"
	if got := spec.String(); got != want {
		t.Errorf("String() = %q, want %q", got, want)
	}
	set, err := spec.Resolve()
	if err != nil {
		t.Fatalf("Resolve: %v", err)
	}
	p1 := set.Phase1.(PaperPhase1)
	if p1.Overhead != 0.4 {
		t.Errorf("overhead override not applied: %+v", p1)
	}

	if _, err := ParseSpec("p2=warp-speed"); err == nil || !strings.Contains(err.Error(), "registered") {
		t.Errorf("unknown name error = %v", err)
	}
	if _, err := ParseSpec("flux=9"); err == nil {
		t.Error("unknown key accepted")
	}
	if _, err := ParseSpec("p1.overhead=-1"); err == nil {
		t.Error("negative overhead accepted")
	}

	// The slowdown override survives wrapping a non-paper Phase II.
	spec2, err := ParseSpec("p2=fifo-p2,p2.slowdown=0.3")
	if err != nil {
		t.Fatalf("ParseSpec slowdown: %v", err)
	}
	set2, err := spec2.Resolve()
	if err != nil {
		t.Fatalf("Resolve slowdown: %v", err)
	}
	if got := set2.Phase2.Speculation().Slowdown; got != 0.3 {
		t.Errorf("slowdown override = %v", got)
	}
	if set2.Phase2.NewScheduler().Name() != "fifo" {
		t.Errorf("wrapped scheduler = %q", set2.Phase2.NewScheduler().Name())
	}
}

// TestEmptySpecIsDefault checks the zero Spec resolves to the paper
// names on every seam.
func TestEmptySpecIsDefault(t *testing.T) {
	set, err := Spec{}.Resolve()
	if err != nil {
		t.Fatal(err)
	}
	for _, got := range []struct{ name, want string }{
		{set.Phase1.Name(), "paper-p1"},
		{set.DRM.Name(), "paper-drm"},
		{set.IPS.Name(), "paper-ips"},
		{set.Phase2.Name(), "paper-p2"},
	} {
		if got.name != got.want {
			t.Errorf("default seam = %q, want %q", got.name, got.want)
		}
	}
}
