package policy

import (
	"fmt"
	"strconv"
	"strings"
)

// Spec is the textual selection of one policy per seam, plus the
// numeric knobs the search harness sweeps. The zero Spec selects the
// paper defaults everywhere. Field order here is the canonical key
// order of String(), which SEARCH.json uses as the candidate identity.
type Spec struct {
	// Phase1, DRM, IPS and Phase2 name registered policies; empty means
	// the paper default for that seam.
	Phase1 string `json:"p1,omitempty"`
	DRM    string `json:"drm,omitempty"`
	IPS    string `json:"ips,omitempty"`
	Phase2 string `json:"p2,omitempty"`
	// Overhead, when positive, overrides Phase I's virtual-overhead
	// tolerance (key "p1.overhead").
	Overhead float64 `json:"p1_overhead,omitempty"`
	// SpecSlowdown, when positive, overrides the Phase II straggler
	// threshold (key "p2.slowdown").
	SpecSlowdown float64 `json:"p2_slowdown,omitempty"`
}

// ParseSpec parses the -policy flag syntax: comma-separated key=value
// pairs with keys p1, drm, ips, p2, p1.overhead and p2.slowdown, e.g.
// "p2=jobdriven-p2,drm=static-split,p1.overhead=0.4". Policy names are
// validated here (via Resolve), so a typo fails before any setup runs.
func ParseSpec(s string) (Spec, error) {
	var spec Spec
	s = strings.TrimSpace(s)
	if s == "" {
		return spec, nil
	}
	for _, kv := range strings.Split(s, ",") {
		kv = strings.TrimSpace(kv)
		if kv == "" {
			continue
		}
		key, val, ok := strings.Cut(kv, "=")
		if !ok {
			return Spec{}, fmt.Errorf("policy: %q is not key=value", kv)
		}
		key, val = strings.TrimSpace(key), strings.TrimSpace(val)
		switch key {
		case "p1":
			spec.Phase1 = val
		case "drm":
			spec.DRM = val
		case "ips":
			spec.IPS = val
		case "p2":
			spec.Phase2 = val
		case "p1.overhead":
			f, err := strconv.ParseFloat(val, 64)
			if err != nil || f <= 0 {
				return Spec{}, fmt.Errorf("policy: p1.overhead wants a positive number, got %q", val)
			}
			spec.Overhead = f
		case "p2.slowdown":
			f, err := strconv.ParseFloat(val, 64)
			if err != nil || f <= 0 || f >= 1 {
				return Spec{}, fmt.Errorf("policy: p2.slowdown wants a number in (0,1), got %q", val)
			}
			spec.SpecSlowdown = f
		default:
			return Spec{}, fmt.Errorf("policy: unknown key %q (want p1, drm, ips, p2, p1.overhead or p2.slowdown)", key)
		}
	}
	if _, err := spec.Resolve(); err != nil {
		return Spec{}, err
	}
	return spec, nil
}

// String renders the spec in canonical -policy syntax, defaults
// included, so equal policy bundles always render to equal strings.
func (s Spec) String() string {
	set, err := s.Resolve()
	if err != nil {
		return fmt.Sprintf("invalid policy spec: %v", err)
	}
	parts := []string{
		"p1=" + set.Phase1.Name(),
		"drm=" + set.DRM.Name(),
		"ips=" + set.IPS.Name(),
		"p2=" + set.Phase2.Name(),
	}
	if s.Overhead > 0 {
		parts = append(parts, fmt.Sprintf("p1.overhead=%g", s.Overhead))
	}
	if s.SpecSlowdown > 0 {
		parts = append(parts, fmt.Sprintf("p2.slowdown=%g", s.SpecSlowdown))
	}
	return strings.Join(parts, ",")
}

// Set is a resolved bundle of policies, one per seam — what the wiring
// layers (core.Config, testbed.Options, ClusterSpec) consume.
type Set struct {
	// Spec is the selection the set was resolved from.
	Spec Spec
	// Phase1, DRM, IPS and Phase2 are the concrete policies.
	Phase1 Phase1Policy
	DRM    DRMPolicy
	IPS    IPSPolicy
	Phase2 Phase2Policy
}

// specSlowdownOverride wraps a Phase II policy with a swept straggler
// threshold.
type specSlowdownOverride struct {
	Phase2Policy
	slowdown float64
}

func (o specSlowdownOverride) Speculation() SpecParams {
	sp := o.Phase2Policy.Speculation()
	sp.Slowdown = o.slowdown
	return sp
}

// Resolve constructs the named policies, applying the numeric
// overrides. Unknown names error with the registered alternatives.
func (s Spec) Resolve() (*Set, error) {
	p1, err := NewPhase1(s.Phase1)
	if err != nil {
		return nil, err
	}
	drm, err := NewDRM(s.DRM)
	if err != nil {
		return nil, err
	}
	ips, err := NewIPS(s.IPS)
	if err != nil {
		return nil, err
	}
	p2, err := NewPhase2(s.Phase2)
	if err != nil {
		return nil, err
	}
	if s.Overhead > 0 {
		if pp, ok := p1.(PaperPhase1); ok {
			pp.Overhead = s.Overhead
			p1 = pp
		}
	}
	if s.SpecSlowdown > 0 {
		if pp, ok := p2.(PaperPhase2); ok {
			pp.Slowdown = s.SpecSlowdown
			p2 = pp
		} else {
			p2 = specSlowdownOverride{Phase2Policy: p2, slowdown: s.SpecSlowdown}
		}
	}
	return &Set{Spec: s, Phase1: p1, DRM: drm, IPS: ips, Phase2: p2}, nil
}

// Default is the paper's policy set — the one every deployment uses
// unless told otherwise.
func Default() *Set {
	set, err := Spec{}.Resolve()
	if err != nil {
		panic(err) // the empty spec always resolves
	}
	return set
}
