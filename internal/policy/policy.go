// Package policy names and constructs the pluggable scheduling policies
// of the HybridMR stack. The paper's contribution is one specific policy
// per seam — Phase I profiling placement (Algorithm 2), the DRM's
// deferral-based balancing, the IPS's escalating arbitration (Algorithm
// 3) and the Fair scheduler with median-speed speculation on Phase II
// slots — but each seam is a design axis, and encoding the alternatives
// behind a common registry is what lets the policy-search harness sweep
// them.
//
// Every seam has a named default registered under a paper-* name that
// reconstructs the hard-coded controller byte-for-byte: selecting the
// default set must not change a single scheduling decision (the CI
// policy-gate compares fidelity output against a pre-refactor golden to
// prove it). Alternatives are drawn from the paper's own baselines
// (random/static placement), its ablations (proportional memory split),
// and related work (the job-driven Phase II discipline of Lee & Lin,
// "Hybrid Job-driven Scheduling for Virtual MapReduce Clusters").
package policy

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/mapred"
	"repro/internal/profiler"
)

// Phase1Env is the deployment context a Phase I policy builds its Placer
// from: the trained profiler, the partition sizes the estimates scale
// to, and the deployment's configured knobs.
type Phase1Env struct {
	// Profiler supplies Algorithm 1 JCT estimates.
	Profiler *profiler.Profiler
	// NativeNodes and VirtualNodes are the partition sizes.
	NativeNodes  int
	VirtualNodes int
	// OverheadThreshold is the deployment's configured virtual-overhead
	// tolerance (core.Config.OverheadThreshold, defaulted to 0.25).
	OverheadThreshold float64
	// Seed parameterizes randomized placers.
	Seed int64
}

// Phase1Policy constructs a Phase I placer for a deployment.
type Phase1Policy interface {
	// Name is the registry name.
	Name() string
	// NewPlacer builds the placer.
	NewPlacer(env Phase1Env) Placer
}

// PaperPhase1 is Algorithm 2, the paper's profiling placer
// ("paper-p1"). Overhead, when positive, overrides the deployment's
// OverheadThreshold — the knob the policy search sweeps.
type PaperPhase1 struct{ Overhead float64 }

// Name returns "paper-p1".
func (PaperPhase1) Name() string { return "paper-p1" }

// NewPlacer builds the ProfilingPlacer.
func (p PaperPhase1) NewPlacer(env Phase1Env) Placer {
	threshold := p.Overhead
	if threshold <= 0 {
		threshold = env.OverheadThreshold
	}
	return &ProfilingPlacer{
		Profiler:          env.Profiler,
		NativeNodes:       env.NativeNodes,
		VirtualNodes:      env.VirtualNodes,
		OverheadThreshold: threshold,
	}
}

// RandomPhase1 is the FCFS baseline of Figure 8(a) ("random-p1"): a
// seeded coin flip between the partitions, no profiling.
type RandomPhase1 struct{}

// Name returns "random-p1".
func (RandomPhase1) Name() string { return "random-p1" }

// NewPlacer builds the seeded coin placer.
func (RandomPhase1) NewPlacer(env Phase1Env) Placer { return NewRandomPlacer(env.Seed) }

// StaticPhase1 always answers one partition — the native-only and
// virtual-only design points of Figure 9 ("static-native",
// "static-virtual").
type StaticPhase1 struct{ Target Placement }

// Name returns "static-native" or "static-virtual".
func (s StaticPhase1) Name() string {
	if s.Target == PlacedNative {
		return "static-native"
	}
	return "static-virtual"
}

// NewPlacer builds the fixed placer.
func (s StaticPhase1) NewPlacer(Phase1Env) Placer { return StaticPlacer(s.Target) }

// DRMParams are the Dynamic Resource Manager's balancing knobs.
type DRMParams struct {
	// Deferral selects the paper's memory discipline: when resident
	// demands overflow a container, swap out the least-progressed
	// attempts until space frees up. False selects the static-split
	// alternative — every cap scales proportionally and all tasks page.
	Deferral bool
	// HogTrimAbove and HogTrimTo bound rate-cap hogging: a cap above
	// demand×HogTrimAbove is trimmed to demand×HogTrimTo so the
	// contention detector's headroom means something next epoch.
	HogTrimAbove float64
	HogTrimTo    float64
}

// DRMPolicy parameterizes the DRM's Performance Balancer.
type DRMPolicy interface {
	// Name is the registry name.
	Name() string
	// Params returns the balancing knobs.
	Params() DRMParams
}

// PaperDRM is the paper's deferral-based balancer ("paper-drm").
type PaperDRM struct{}

// Name returns "paper-drm".
func (PaperDRM) Name() string { return "paper-drm" }

// Params returns the paper's knobs.
func (PaperDRM) Params() DRMParams {
	return DRMParams{Deferral: true, HogTrimAbove: 1.5, HogTrimTo: 1.2}
}

// StaticSplitDRM shares memory pressure proportionally instead of
// deferring the tail ("static-split") — the deferral ablation's
// alternative, promoted to a first-class policy.
type StaticSplitDRM struct{}

// Name returns "static-split".
func (StaticSplitDRM) Name() string { return "static-split" }

// Params returns the proportional-split knobs.
func (StaticSplitDRM) Params() DRMParams {
	return DRMParams{Deferral: false, HogTrimAbove: 1.5, HogTrimTo: 1.2}
}

// IPSParams are the Interference Prevention System's arbitration knobs.
type IPSParams struct {
	// PauseStreak is the violating-epoch streak before the Arbiter
	// escalates to pausing a batch VM; twice the streak live-migrates.
	PauseStreak int
	// MaxRelocationsPerEpoch bounds evictions per service per epoch.
	MaxRelocationsPerEpoch int
	// RelocateBelowProgress relocates only attempts below this progress
	// (restarting nearly-done work wastes it); attempts above are
	// throttled instead. Zero never relocates.
	RelocateBelowProgress float64
	// ThrottleFactor scales an interferer's bottleneck cap when it is
	// throttled (0.5 halves it).
	ThrottleFactor float64
}

// IPSPolicy parameterizes the IPS Arbiter.
type IPSPolicy interface {
	// Name is the registry name.
	Name() string
	// Params returns the arbitration knobs.
	Params() IPSParams
}

// PaperIPS is Algorithm 3's escalation ladder ("paper-ips").
type PaperIPS struct{}

// Name returns "paper-ips".
func (PaperIPS) Name() string { return "paper-ips" }

// Params returns the paper's knobs.
func (PaperIPS) Params() IPSParams {
	return IPSParams{
		PauseStreak:            3,
		MaxRelocationsPerEpoch: 2,
		RelocateBelowProgress:  0.6,
		ThrottleFactor:         0.5,
	}
}

// ThrottleFirstIPS never relocates ("throttle-first"): every interferer
// is throttled in place, trading batch progress for zero wasted restart
// work. The escalation ladder above throttling is unchanged.
type ThrottleFirstIPS struct{}

// Name returns "throttle-first".
func (ThrottleFirstIPS) Name() string { return "throttle-first" }

// Params returns the throttle-only knobs.
func (ThrottleFirstIPS) Params() IPSParams {
	return IPSParams{
		PauseStreak:            3,
		MaxRelocationsPerEpoch: 2,
		RelocateBelowProgress:  0,
		ThrottleFactor:         0.5,
	}
}

// SpecParams are the Phase II speculation knobs, mapped onto the
// framework's straggler detector.
type SpecParams struct {
	// Disable turns straggler backups off.
	Disable bool
	// Slowdown is the fraction of the median attempt speed below which
	// an attempt counts as a straggler (0 takes the default 0.5).
	Slowdown float64
}

// Phase2Policy selects the Phase II slot-assignment discipline and its
// speculation behaviour.
type Phase2Policy interface {
	// Name is the registry name.
	Name() string
	// NewScheduler builds the slot scheduler.
	NewScheduler() mapred.Scheduler
	// Speculation returns the straggler-detector knobs.
	Speculation() SpecParams
}

// PaperPhase2 is the testbed's Fair scheduler with median-speed
// speculation ("paper-p2"). Slowdown, when positive, overrides the
// straggler threshold.
type PaperPhase2 struct{ Slowdown float64 }

// Name returns "paper-p2".
func (PaperPhase2) Name() string { return "paper-p2" }

// NewScheduler builds the Fair scheduler.
func (PaperPhase2) NewScheduler() mapred.Scheduler { return mapred.Fair{} }

// Speculation returns the paper's speculation knobs.
func (p PaperPhase2) Speculation() SpecParams { return SpecParams{Slowdown: p.Slowdown} }

// FIFOPhase2 serves jobs strictly in submission order ("fifo-p2") — the
// plain-Hadoop baseline discipline.
type FIFOPhase2 struct{}

// Name returns "fifo-p2".
func (FIFOPhase2) Name() string { return "fifo-p2" }

// NewScheduler builds the FIFO scheduler.
func (FIFOPhase2) NewScheduler() mapred.Scheduler { return mapred.FIFO{} }

// Speculation returns default speculation.
func (FIFOPhase2) Speculation() SpecParams { return SpecParams{} }

// LocalityPhase2 serves whichever job has a node-local map for the
// requesting tracker ("locality-p2"), trading fairness for data-local
// reads.
type LocalityPhase2 struct{}

// Name returns "locality-p2".
func (LocalityPhase2) Name() string { return "locality-p2" }

// NewScheduler builds the locality-greedy scheduler.
func (LocalityPhase2) NewScheduler() mapred.Scheduler { return mapred.LocalityGreedy{} }

// Speculation returns default speculation.
func (LocalityPhase2) Speculation() SpecParams { return SpecParams{} }

// JobDrivenPhase2 serves the job closest to completion first
// ("jobdriven-p2"), after the job-driven slot assignment of Lee & Lin,
// "Hybrid Job-driven Scheduling for Virtual MapReduce Clusters":
// draining the smallest remainder frees its slots (and its memory
// footprint) for the jobs behind it.
type JobDrivenPhase2 struct{}

// Name returns "jobdriven-p2".
func (JobDrivenPhase2) Name() string { return "jobdriven-p2" }

// NewScheduler builds the job-driven scheduler.
func (JobDrivenPhase2) NewScheduler() mapred.Scheduler { return mapred.JobDriven{} }

// Speculation returns default speculation.
func (JobDrivenPhase2) Speculation() SpecParams { return SpecParams{} }

// The four seam registries. Constructors, not values, so resolved sets
// never share placer state.
var (
	phase1Reg = map[string]func() Phase1Policy{
		"paper-p1":       func() Phase1Policy { return PaperPhase1{} },
		"random-p1":      func() Phase1Policy { return RandomPhase1{} },
		"static-native":  func() Phase1Policy { return StaticPhase1{Target: PlacedNative} },
		"static-virtual": func() Phase1Policy { return StaticPhase1{Target: PlacedVirtual} },
	}
	drmReg = map[string]func() DRMPolicy{
		"paper-drm":    func() DRMPolicy { return PaperDRM{} },
		"static-split": func() DRMPolicy { return StaticSplitDRM{} },
	}
	ipsReg = map[string]func() IPSPolicy{
		"paper-ips":      func() IPSPolicy { return PaperIPS{} },
		"throttle-first": func() IPSPolicy { return ThrottleFirstIPS{} },
	}
	phase2Reg = map[string]func() Phase2Policy{
		"paper-p2":     func() Phase2Policy { return PaperPhase2{} },
		"fifo-p2":      func() Phase2Policy { return FIFOPhase2{} },
		"locality-p2":  func() Phase2Policy { return LocalityPhase2{} },
		"jobdriven-p2": func() Phase2Policy { return JobDrivenPhase2{} },
	}
)

func sortedKeys[T any](m map[string]func() T) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Phase1Names lists the registered Phase I policies.
func Phase1Names() []string { return sortedKeys(phase1Reg) }

// DRMNames lists the registered DRM policies.
func DRMNames() []string { return sortedKeys(drmReg) }

// IPSNames lists the registered IPS policies.
func IPSNames() []string { return sortedKeys(ipsReg) }

// Phase2Names lists the registered Phase II policies.
func Phase2Names() []string { return sortedKeys(phase2Reg) }

// NewPhase1 constructs a registered Phase I policy by name; the empty
// name takes the paper default.
func NewPhase1(name string) (Phase1Policy, error) {
	if name == "" {
		name = "paper-p1"
	}
	mk, ok := phase1Reg[name]
	if !ok {
		return nil, fmt.Errorf("policy: unknown p1 policy %q (registered: %s)",
			name, strings.Join(Phase1Names(), ", "))
	}
	return mk(), nil
}

// NewDRM constructs a registered DRM policy by name; the empty name
// takes the paper default.
func NewDRM(name string) (DRMPolicy, error) {
	if name == "" {
		name = "paper-drm"
	}
	mk, ok := drmReg[name]
	if !ok {
		return nil, fmt.Errorf("policy: unknown drm policy %q (registered: %s)",
			name, strings.Join(DRMNames(), ", "))
	}
	return mk(), nil
}

// NewIPS constructs a registered IPS policy by name; the empty name
// takes the paper default.
func NewIPS(name string) (IPSPolicy, error) {
	if name == "" {
		name = "paper-ips"
	}
	mk, ok := ipsReg[name]
	if !ok {
		return nil, fmt.Errorf("policy: unknown ips policy %q (registered: %s)",
			name, strings.Join(IPSNames(), ", "))
	}
	return mk(), nil
}

// NewPhase2 constructs a registered Phase II policy by name; the empty
// name takes the paper default.
func NewPhase2(name string) (Phase2Policy, error) {
	if name == "" {
		name = "paper-p2"
	}
	mk, ok := phase2Reg[name]
	if !ok {
		return nil, fmt.Errorf("policy: unknown p2 policy %q (registered: %s)",
			name, strings.Join(Phase2Names(), ", "))
	}
	return mk(), nil
}
