package policy

import (
	"fmt"
	"math/rand"
	"time"

	"repro/internal/audit"
	"repro/internal/mapred"
	"repro/internal/profiler"
)

// Placement says which partition of the hybrid cluster a job runs on.
type Placement int

// Placements.
const (
	PlacedNative Placement = iota + 1
	PlacedVirtual
)

// String names the placement.
func (p Placement) String() string {
	if p == PlacedNative {
		return "native"
	}
	return "virtual"
}

// Placer decides the initial placement of a batch job (Phase I).
type Placer interface {
	// Place returns where the job should start. desiredJCT of zero means
	// the submitter expressed no deadline.
	Place(spec mapred.JobSpec, desiredJCT time.Duration) (Placement, error)
}

// ReasonedPlacer is an optional Placer extension that also explains the
// decision; the System records the reason in the trace.
type ReasonedPlacer interface {
	Placer
	// PlaceWithReason returns the placement and a short human-readable
	// justification.
	PlaceWithReason(spec mapred.JobSpec, desiredJCT time.Duration) (Placement, string, error)
}

// ExplainedPlacer is an optional further extension that also reports
// the candidates the placer actually weighed — the per-partition JCT
// estimates — so the System can audit the decision. Only estimates the
// placer computed anyway appear as scored candidates: explaining a
// decision must never add profiler work (and thus training simulations)
// that an unaudited run would not do.
type ExplainedPlacer interface {
	ReasonedPlacer
	// PlaceExplained returns the placement, the justification, and the
	// candidates considered with their scores.
	PlaceExplained(spec mapred.JobSpec, desiredJCT time.Duration) (Placement, string, []audit.Candidate, error)
}

// ProfilingPlacer is HybridMR's Phase I scheduler (Algorithm 2): profile
// the job, estimate its virtual-cluster completion time, and keep it on
// the virtual cluster only when that estimate meets the job's desired
// completion time (or, with no deadline, when the virtualization overhead
// versus native execution is acceptable).
type ProfilingPlacer struct {
	// Profiler supplies Algorithm 1 estimates.
	Profiler *profiler.Profiler
	// NativeNodes and VirtualNodes are the sizes of the two partitions
	// the estimates are scaled to.
	NativeNodes  int
	VirtualNodes int
	// OverheadThreshold is the acceptable virtual/native JCT inflation
	// when no deadline is given (default 0.25).
	OverheadThreshold float64
}

var _ ExplainedPlacer = (*ProfilingPlacer)(nil)

// Place implements Algorithm 2 for batch jobs.
func (p *ProfilingPlacer) Place(spec mapred.JobSpec, desiredJCT time.Duration) (Placement, error) {
	placement, _, err := p.PlaceWithReason(spec, desiredJCT)
	return placement, err
}

// PlaceWithReason implements Algorithm 2 and reports why the partition
// was chosen.
func (p *ProfilingPlacer) PlaceWithReason(spec mapred.JobSpec, desiredJCT time.Duration) (Placement, string, error) {
	placement, reason, _, err := p.PlaceExplained(spec, desiredJCT)
	return placement, reason, err
}

// PlaceExplained implements Algorithm 2 and reports the estimates it
// weighed. Candidate scores are estimated JCT seconds; deadline
// placements only estimate the virtual partition (Algorithm 2 never
// profiles native execution in that mode), so the native candidate then
// carries no score.
func (p *ProfilingPlacer) PlaceExplained(spec mapred.JobSpec, desiredJCT time.Duration) (Placement, string, []audit.Candidate, error) {
	if p.Profiler == nil {
		return 0, "", nil, fmt.Errorf("policy: ProfilingPlacer has no profiler")
	}
	if p.VirtualNodes <= 0 {
		return PlacedNative, "no virtual partition", nil, nil
	}
	if p.NativeNodes <= 0 {
		return PlacedVirtual, "no native partition", nil, nil
	}
	estVirtual, err := p.Profiler.EstimateJCT(spec, profiler.Virtual, p.VirtualNodes)
	if err != nil {
		return 0, "", nil, fmt.Errorf("policy: estimate virtual JCT of %s: %w", spec.Name, err)
	}
	if desiredJCT > 0 {
		virtualWins := estVirtual < desiredJCT.Seconds()
		cands := []audit.Candidate{
			{Name: "virtual", Score: estVirtual, Chosen: virtualWins, Note: "estimated JCT (s) vs deadline"},
			{Name: "native", Chosen: !virtualWins, Note: "deadline fallback, not estimated"},
		}
		if !virtualWins {
			return PlacedNative,
				fmt.Sprintf("virtual estimate %.0fs misses %.0fs deadline", estVirtual, desiredJCT.Seconds()), cands, nil
		}
		return PlacedVirtual,
			fmt.Sprintf("virtual estimate %.0fs meets %.0fs deadline", estVirtual, desiredJCT.Seconds()), cands, nil
	}
	estNative, err := p.Profiler.EstimateJCT(spec, profiler.Native, p.NativeNodes)
	if err != nil {
		return 0, "", nil, fmt.Errorf("policy: estimate native JCT of %s: %w", spec.Name, err)
	}
	threshold := p.OverheadThreshold
	if threshold <= 0 {
		threshold = 0.25
	}
	nativeWins := estNative > 0 && estVirtual/estNative-1 > threshold
	cands := []audit.Candidate{
		{Name: "native", Score: estNative, Chosen: nativeWins, Note: "estimated JCT (s)"},
		{Name: "virtual", Score: estVirtual, Chosen: !nativeWins, Note: "estimated JCT (s)"},
	}
	if nativeWins {
		return PlacedNative,
			fmt.Sprintf("virtual overhead %.0f%% exceeds %.0f%% threshold",
				(estVirtual/estNative-1)*100, threshold*100), cands, nil
	}
	return PlacedVirtual, "virtual overhead acceptable", cands, nil
}

// RandomPlacer is the paper's baseline for Figure 8(a): first-come-first-
// served placement with no profiling, flipping a seeded coin between the
// partitions.
type RandomPlacer struct {
	rng *rand.Rand
}

var _ ReasonedPlacer = (*RandomPlacer)(nil)

// NewRandomPlacer builds the baseline placer.
func NewRandomPlacer(seed int64) *RandomPlacer {
	return &RandomPlacer{rng: rand.New(rand.NewSource(seed))}
}

// Place ignores the job entirely.
func (r *RandomPlacer) Place(spec mapred.JobSpec, desiredJCT time.Duration) (Placement, error) {
	placement, _, err := r.PlaceWithReason(spec, desiredJCT)
	return placement, err
}

// PlaceWithReason flips the seeded coin and says so.
func (r *RandomPlacer) PlaceWithReason(mapred.JobSpec, time.Duration) (Placement, string, error) {
	if r.rng.Intn(2) == 0 {
		return PlacedNative, "random baseline", nil
	}
	return PlacedVirtual, "random baseline", nil
}

// StaticPlacer always answers the same partition; it provides the
// native-only and virtual-only design points of Figure 9.
type StaticPlacer Placement

var _ ReasonedPlacer = StaticPlacer(0)

// Place returns the fixed partition.
func (s StaticPlacer) Place(mapred.JobSpec, time.Duration) (Placement, error) {
	return Placement(s), nil
}

// PlaceWithReason returns the fixed partition.
func (s StaticPlacer) PlaceWithReason(mapred.JobSpec, time.Duration) (Placement, string, error) {
	return Placement(s), "static placement", nil
}
