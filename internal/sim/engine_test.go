package sim

import (
	"math"
	"testing"
	"time"
)

func TestEngineOrdering(t *testing.T) {
	e := New()
	var got []int
	e.At(3*time.Second, func() { got = append(got, 3) })
	e.At(1*time.Second, func() { got = append(got, 1) })
	e.At(2*time.Second, func() { got = append(got, 2) })
	e.Run()
	want := []int{1, 2, 3}
	if len(got) != len(want) {
		t.Fatalf("fired %d events, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("event %d = %d, want %d", i, got[i], want[i])
		}
	}
	if e.Now() != 3*time.Second {
		t.Errorf("Now() = %s, want 3s", e.Now())
	}
}

func TestEngineSameInstantFIFO(t *testing.T) {
	e := New()
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		e.At(time.Second, func() { got = append(got, i) })
	}
	e.Run()
	for i := range got {
		if got[i] != i {
			t.Fatalf("same-instant events fired out of order: %v", got)
		}
	}
}

func TestEngineCancel(t *testing.T) {
	e := New()
	fired := false
	ev := e.After(time.Second, func() { fired = true })
	e.Cancel(ev)
	e.Run()
	if fired {
		t.Error("cancelled event fired")
	}
	if !ev.Cancelled() {
		t.Error("Cancelled() = false after Cancel")
	}
	// Cancelling again, or cancelling nil, must not panic.
	e.Cancel(ev)
	e.Cancel(nil)
}

func TestEngineCancelOneOfMany(t *testing.T) {
	e := New()
	var got []int
	evs := make([]*Event, 5)
	for i := 0; i < 5; i++ {
		i := i
		evs[i] = e.After(time.Duration(i+1)*time.Second, func() { got = append(got, i) })
	}
	e.Cancel(evs[2])
	e.Run()
	want := []int{0, 1, 3, 4}
	if len(got) != len(want) {
		t.Fatalf("got %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
}

func TestEngineSchedulingInsideEvent(t *testing.T) {
	e := New()
	var got []time.Duration
	e.After(time.Second, func() {
		got = append(got, e.Now())
		e.After(time.Second, func() {
			got = append(got, e.Now())
		})
	})
	e.Run()
	if len(got) != 2 || got[0] != time.Second || got[1] != 2*time.Second {
		t.Errorf("nested scheduling times = %v", got)
	}
}

func TestEnginePastEventClamped(t *testing.T) {
	e := New()
	var at time.Duration = -1
	e.After(5*time.Second, func() {
		e.At(time.Second, func() { at = e.Now() }) // in the past
	})
	e.Run()
	if at != 5*time.Second {
		t.Errorf("past event fired at %s, want clamp to 5s", at)
	}
}

func TestEngineRunUntil(t *testing.T) {
	e := New()
	count := 0
	for i := 1; i <= 10; i++ {
		e.At(time.Duration(i)*time.Second, func() { count++ })
	}
	e.RunUntil(5 * time.Second)
	if count != 5 {
		t.Errorf("fired %d events, want 5", count)
	}
	if e.Now() != 5*time.Second {
		t.Errorf("Now() = %s, want 5s", e.Now())
	}
	if e.Pending() != 5 {
		t.Errorf("Pending() = %d, want 5", e.Pending())
	}
	// RunUntil with no events in range still advances the clock.
	e2 := New()
	e2.RunUntil(42 * time.Second)
	if e2.Now() != 42*time.Second {
		t.Errorf("empty RunUntil: Now() = %s, want 42s", e2.Now())
	}
}

func TestEngineHalt(t *testing.T) {
	e := New()
	count := 0
	e.After(time.Second, func() { count++; e.Halt() })
	e.After(2*time.Second, func() { count++ })
	e.Run()
	if count != 1 {
		t.Errorf("fired %d events after Halt, want 1", count)
	}
	if !e.Halted() {
		t.Error("Halted() = false")
	}
}

func TestAfterSecondsEdgeCases(t *testing.T) {
	e := New()
	if ev := e.AfterSeconds(math.Inf(1), func() {}); ev != nil {
		t.Error("AfterSeconds(+Inf) scheduled an event")
	}
	if ev := e.AfterSeconds(math.NaN(), func() {}); ev != nil {
		t.Error("AfterSeconds(NaN) scheduled an event")
	}
	fired := false
	if ev := e.AfterSeconds(0.5, func() { fired = true }); ev == nil {
		t.Fatal("AfterSeconds(0.5) returned nil")
	}
	e.Run()
	if !fired {
		t.Error("AfterSeconds(0.5) event did not fire")
	}
}

func TestDurationFromSeconds(t *testing.T) {
	tests := []struct {
		give float64
		want time.Duration
	}{
		{0, 0},
		{-3, 0},
		{1, time.Second},
		{0.25, 250 * time.Millisecond},
		{1e18, time.Duration(math.MaxInt64)}, // saturates, no overflow
	}
	for _, tt := range tests {
		if got := DurationFromSeconds(tt.give); got != tt.want {
			t.Errorf("DurationFromSeconds(%v) = %v, want %v", tt.give, got, tt.want)
		}
	}
}

func TestTicker(t *testing.T) {
	e := New()
	var ticks []time.Duration
	tk := NewTicker(e, 10*time.Second, func(now time.Duration) {
		ticks = append(ticks, now)
	})
	e.RunUntil(35 * time.Second)
	tk.Stop()
	e.Run()
	if len(ticks) != 3 {
		t.Fatalf("got %d ticks, want 3 (%v)", len(ticks), ticks)
	}
	for i, at := range ticks {
		want := time.Duration(i+1) * 10 * time.Second
		if at != want {
			t.Errorf("tick %d at %s, want %s", i, at, want)
		}
	}
}

func TestTickerStopInsideCallback(t *testing.T) {
	e := New()
	count := 0
	var tk *Ticker
	tk = NewTicker(e, time.Second, func(time.Duration) {
		count++
		if count == 2 {
			tk.Stop()
		}
	})
	e.Run()
	if count != 2 {
		t.Errorf("ticked %d times, want 2", count)
	}
	if !tk.Stopped() {
		t.Error("Stopped() = false")
	}
}

func TestTickerZeroPeriod(t *testing.T) {
	e := New()
	tk := NewTicker(e, 0, func(time.Duration) { t.Error("zero-period ticker fired") })
	if !tk.Stopped() {
		t.Error("zero-period ticker not stopped")
	}
	e.Run()
}

func TestEngineFiredCount(t *testing.T) {
	e := New()
	for i := 0; i < 7; i++ {
		e.After(time.Duration(i)*time.Second, func() {})
	}
	e.Run()
	if e.Fired() != 7 {
		t.Errorf("Fired() = %d, want 7", e.Fired())
	}
}

func TestTickerStopBeforeFirstTick(t *testing.T) {
	e := New()
	fired := false
	tk := NewTicker(e, 10*time.Second, func(time.Duration) { fired = true })
	if tk.Stopped() {
		t.Fatal("fresh ticker reports stopped")
	}
	// Stop before the simulation ever advances: the first tick must not
	// fire, and the pending event must leave the queue so Run terminates.
	tk.Stop()
	if !tk.Stopped() {
		t.Error("Stopped() = false after Stop")
	}
	if e.Pending() != 0 {
		t.Errorf("Pending() = %d after stopping the only ticker, want 0", e.Pending())
	}
	e.Run()
	if fired {
		t.Error("stopped ticker fired")
	}
	// Stop is terminal: a second Stop is a harmless no-op.
	tk.Stop()
}

func TestTickerRestartSemantics(t *testing.T) {
	// A stopped ticker stays stopped; restarting means creating a new
	// ticker, whose phase is one full period from the moment of creation
	// (not from the old ticker's schedule).
	e := New()
	var first []time.Duration
	tk := NewTicker(e, 10*time.Second, func(now time.Duration) { first = append(first, now) })
	e.RunUntil(25 * time.Second)
	tk.Stop()
	if len(first) != 2 {
		t.Fatalf("first ticker fired %d times, want 2", len(first))
	}

	var second []time.Duration
	tk2 := NewTicker(e, 10*time.Second, func(now time.Duration) { second = append(second, now) })
	e.RunUntil(60 * time.Second)
	tk2.Stop()
	want := []time.Duration{35 * time.Second, 45 * time.Second, 55 * time.Second}
	if len(second) != len(want) {
		t.Fatalf("second ticker fired at %v, want %v", second, want)
	}
	for i := range want {
		if second[i] != want[i] {
			t.Errorf("second ticker fire %d at %v, want %v", i, second[i], want[i])
		}
	}
	if len(first) != 2 {
		t.Error("old ticker fired after Stop")
	}
}

func TestTickerHorizonAlignment(t *testing.T) {
	// RunUntil(t) is inclusive of events at exactly t, so a ticker whose
	// period divides the horizon fires on the boundary itself.
	e := New()
	var ticks []time.Duration
	tk := NewTicker(e, 10*time.Second, func(now time.Duration) { ticks = append(ticks, now) })
	e.RunUntil(30 * time.Second)
	tk.Stop()
	if len(ticks) != 3 || ticks[2] != 30*time.Second {
		t.Fatalf("ticks = %v, want the last exactly on the 30s horizon", ticks)
	}
	if e.Now() != 30*time.Second {
		t.Errorf("Now() = %v after RunUntil(30s)", e.Now())
	}
}

func TestEngineAccountingUnderCancel(t *testing.T) {
	e := New()
	events := make([]*Event, 10)
	for i := range events {
		events[i] = e.After(time.Duration(i+1)*time.Second, func() {})
	}
	if e.Pending() != 10 || e.MaxPending() != 10 {
		t.Fatalf("Pending/MaxPending = %d/%d, want 10/10", e.Pending(), e.MaxPending())
	}

	// Cancel three pending events; cancelling one of them twice must not
	// double-count.
	e.Cancel(events[2])
	e.Cancel(events[5])
	e.Cancel(events[8])
	e.Cancel(events[5])
	if e.Cancelled() != 3 {
		t.Errorf("Cancelled() = %d, want 3", e.Cancelled())
	}
	if e.Pending() != 7 {
		t.Errorf("Pending() = %d after 3 cancels, want 7", e.Pending())
	}

	e.Run()
	if e.Fired() != 7 {
		t.Errorf("Fired() = %d, want 7 (cancelled events must not fire)", e.Fired())
	}
	if e.Pending() != 0 {
		t.Errorf("Pending() = %d after Run, want 0", e.Pending())
	}

	// Cancelling an event that already fired is a no-op for accounting.
	e.Cancel(events[0])
	if e.Cancelled() != 3 {
		t.Errorf("Cancelled() = %d after cancelling a fired event, want 3", e.Cancelled())
	}
	// Cancelling nil is safe.
	e.Cancel(nil)

	// The high-water mark survives the drain.
	if e.MaxPending() != 10 {
		t.Errorf("MaxPending() = %d, want 10", e.MaxPending())
	}
}
