package sim

import (
	"testing"
	"time"

	"repro/internal/perfstat"
)

// TestEnginePerfCounters verifies the batched flush of heap-op counters
// into an attached perfstat collector at Run/RunUntil boundaries.
func TestEnginePerfCounters(t *testing.T) {
	ps := perfstat.New()
	e := New()
	e.SetPerf(ps)
	for i := 0; i < 10; i++ {
		e.After(time.Duration(i)*time.Second, func() {})
	}
	e.RunUntil(4 * time.Second)
	if got := ps.C.EngineEventsFired; got != 5 {
		t.Errorf("EngineEventsFired = %d after RunUntil(4s), want 5", got)
	}
	e.Run()
	if got := ps.C.EngineEventsFired; got != 10 {
		t.Errorf("EngineEventsFired = %d after Run, want 10", got)
	}
	if ps.C.EngineHeapPushes != 10 {
		t.Errorf("EngineHeapPushes = %d, want 10", ps.C.EngineHeapPushes)
	}
	if ps.C.EngineHeapPops != 10 {
		t.Errorf("EngineHeapPops = %d, want 10", ps.C.EngineHeapPops)
	}
	if ps.C.EngineHeapSiftSwaps == 0 {
		t.Error("EngineHeapSiftSwaps = 0, want sift activity from a 10-deep queue")
	}
	// The pump span telescopes and was entered twice (RunUntil + Run).
	sn := ps.Snapshot()
	if len(sn.Spans) != 1 || sn.Spans[0].Name != "engine.pump" {
		t.Fatalf("span roots = %+v, want engine.pump", sn.Spans)
	}
	if sn.Spans[0].Count != 2 {
		t.Errorf("engine.pump count = %d, want 2", sn.Spans[0].Count)
	}
	if v := perfstat.Telescopes(sn.Spans, 0); v != "" {
		t.Errorf("telescoping invariant violated at %q", v)
	}
}

// TestEnginePerfCompactions verifies cancel-churn compactions reach the
// collector.
func TestEnginePerfCompactions(t *testing.T) {
	ps := perfstat.New()
	e := New()
	e.SetPerf(ps)
	for i := 0; i < 10_000; i++ {
		e.Cancel(e.After(time.Hour, func() {}))
	}
	e.Run()
	if ps.C.EngineCompactions == 0 {
		t.Error("EngineCompactions = 0 after heavy cancel churn, want > 0")
	}
}

// TestPumpZeroAllocsPerfEnabled extends the PR 3 zero-alloc guarantee to
// the instrumented pump: with a perfstat collector attached, the warm
// schedule+pump loop (including the span Enter/Exit and the counter
// flush) must still allocate nothing.
func TestPumpZeroAllocsPerfEnabled(t *testing.T) {
	e := New()
	e.SetPerf(perfstat.New())
	fn := func() {}
	for i := 0; i < 64; i++ {
		e.After(time.Duration(i), fn)
	}
	e.Run() // warm: freelist, queue backing array, and the pump span node
	allocs := testing.AllocsPerRun(1000, func() {
		e.After(time.Microsecond, fn)
		e.Run()
	})
	if allocs != 0 {
		t.Errorf("instrumented pump (perf enabled) allocates %.1f/op, want 0", allocs)
	}
}

// TestPumpZeroAllocsPerfDisabled pins the disabled path: with no
// collector attached the same loop is equally allocation-free (the
// instrumentation is nil checks and engine-local integer adds).
func TestPumpZeroAllocsPerfDisabled(t *testing.T) {
	e := New()
	fn := func() {}
	for i := 0; i < 64; i++ {
		e.After(time.Duration(i), fn)
	}
	e.Run()
	allocs := testing.AllocsPerRun(1000, func() {
		e.After(time.Microsecond, fn)
		e.Run()
	})
	if allocs != 0 {
		t.Errorf("instrumented pump (perf disabled) allocates %.1f/op, want 0", allocs)
	}
}

// TestCancelZeroAllocsPerfEnabled extends the cancel-churn zero-alloc
// guarantee to the instrumented compactor.
func TestCancelZeroAllocsPerfEnabled(t *testing.T) {
	e := New()
	e.SetPerf(perfstat.New())
	fn := func() {}
	for i := 0; i < 512; i++ {
		e.Cancel(e.After(time.Hour, fn))
	}
	allocs := testing.AllocsPerRun(1000, func() {
		e.Cancel(e.After(time.Hour, fn))
	})
	if allocs != 0 {
		t.Errorf("instrumented schedule+cancel churn allocates %.1f/op, want 0", allocs)
	}
}
