package sim

import (
	"sync/atomic"
	"testing"
	"time"
)

// TestSteadyStateSchedulingZeroAllocs pins the freelist contract: once
// warm, the schedule+fire loop — the hottest path in the repository —
// must not allocate at all.
func TestSteadyStateSchedulingZeroAllocs(t *testing.T) {
	e := New()
	fn := func() {}
	// Warm the freelist and the queue's backing array.
	for i := 0; i < 64; i++ {
		e.After(time.Duration(i), fn)
	}
	e.Run()
	allocs := testing.AllocsPerRun(1000, func() {
		e.After(time.Microsecond, fn)
		e.Step()
	})
	if allocs != 0 {
		t.Errorf("steady-state schedule+fire allocates %.1f/op, want 0", allocs)
	}
}

// TestTickerZeroAllocs pins the Ticker steady state: the tick closure is
// allocated once at construction and reused every period.
func TestTickerZeroAllocs(t *testing.T) {
	e := New()
	tk := NewTicker(e, time.Second, func(time.Duration) {})
	defer tk.Stop()
	e.Step() // warm: first tick recycles its event into the freelist
	allocs := testing.AllocsPerRun(1000, func() { e.Step() })
	if allocs != 0 {
		t.Errorf("ticker steady state allocates %.1f/op, want 0", allocs)
	}
}

// TestCancelZeroAllocs pins the lazy-deletion path: schedule+cancel churn
// must not allocate once the freelist is warm (the compactor recycles
// dead events back into it).
func TestCancelZeroAllocs(t *testing.T) {
	e := New()
	fn := func() {}
	for i := 0; i < 512; i++ {
		e.Cancel(e.After(time.Hour, fn))
	}
	allocs := testing.AllocsPerRun(1000, func() {
		e.Cancel(e.After(time.Hour, fn))
	})
	if allocs != 0 {
		t.Errorf("schedule+cancel churn allocates %.1f/op, want 0", allocs)
	}
}

// TestEventRecycling verifies fired events return to the freelist and
// back the next schedule, rather than being reallocated.
func TestEventRecycling(t *testing.T) {
	e := New()
	fn := func() {}
	first := e.After(time.Second, fn)
	e.Run()
	second := e.After(time.Second, fn)
	if first != second {
		t.Error("fired event was not recycled by the next schedule")
	}
	if second.Cancelled() || second.fired {
		t.Error("recycled event kept stale state")
	}
	e.Run()
}

// TestCancelChurnBounded verifies the compactor keeps the queue from
// growing without bound under schedule+cancel churn, and that survivors
// still fire in order afterwards.
func TestCancelChurnBounded(t *testing.T) {
	e := New()
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		e.At(time.Duration(i+1)*time.Minute, func() { got = append(got, i) })
	}
	for i := 0; i < 100_000; i++ {
		e.Cancel(e.After(time.Hour, func() {}))
	}
	if n := len(e.queue); n > 1024 {
		t.Errorf("queue holds %d entries after churn, compaction failed", n)
	}
	if e.Pending() != 10 {
		t.Errorf("Pending() = %d, want the 10 live events", e.Pending())
	}
	if e.Cancelled() != 100_000 {
		t.Errorf("Cancelled() = %d, want 100000", e.Cancelled())
	}
	e.Run()
	for i := range got {
		if got[i] != i {
			t.Fatalf("survivors fired out of order after compaction: %v", got)
		}
	}
	if len(got) != 10 {
		t.Fatalf("fired %d survivors, want 10", len(got))
	}
}

// TestCancelCurrentlyFiringEvent verifies that cancelling the event whose
// callback is executing — the Ticker.Stop-inside-callback pattern — is a
// safe no-op.
func TestCancelCurrentlyFiringEvent(t *testing.T) {
	e := New()
	var ev *Event
	ran := false
	ev = e.After(time.Second, func() {
		ran = true
		e.Cancel(ev)
	})
	e.Run()
	if !ran {
		t.Fatal("event did not fire")
	}
	if e.Cancelled() != 0 {
		t.Errorf("Cancelled() = %d after self-cancel of a firing event, want 0", e.Cancelled())
	}
	// The engine stays healthy: new work schedules and fires normally.
	fired := false
	e.After(time.Second, func() { fired = true })
	e.Run()
	if !fired {
		t.Error("engine wedged after self-cancel")
	}
}

// TestFiredSink verifies batched flushing into an attached sink at
// Run/RunUntil boundaries.
func TestFiredSink(t *testing.T) {
	var sink atomic.Uint64
	e := New()
	e.SetFiredSink(&sink)
	for i := 0; i < 5; i++ {
		e.After(time.Duration(i)*time.Second, func() {})
	}
	e.RunUntil(2 * time.Second)
	if got := sink.Load(); got != 3 {
		t.Errorf("sink = %d after RunUntil(2s), want 3", got)
	}
	e.Run()
	if got := sink.Load(); got != 5 {
		t.Errorf("sink = %d after Run, want 5", got)
	}
	// A second engine sharing the sink accumulates.
	e2 := New()
	e2.SetFiredSink(&sink)
	e2.After(time.Second, func() {})
	e2.Run()
	if got := sink.Load(); got != 6 {
		t.Errorf("shared sink = %d, want 6", got)
	}
}
