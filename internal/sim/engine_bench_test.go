package sim

import (
	"testing"
	"time"
)

// The engine microbenchmarks cover the three hot paths of the simulator:
// steady-state schedule+fire (the common case: one event scheduled per
// event fired, queue depth roughly constant), schedule+cancel churn (the
// timer-wheel pattern every timeout/heartbeat follows: most scheduled
// events are cancelled before they fire), and the Ticker steady state
// that backs every periodic controller in the system.

// BenchmarkScheduleFire measures raw schedule+fire throughput at queue
// depth ~1: each iteration schedules one event and fires it.
func BenchmarkScheduleFire(b *testing.B) {
	e := New()
	fn := func() {}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.After(time.Microsecond, fn)
		e.Step()
	}
}

// benchDepth measures schedule+fire throughput with a standing queue of
// the given depth, which exercises the heap's sift paths.
func benchDepth(b *testing.B, depth int) {
	e := New()
	fn := func() {}
	for i := 0; i < depth; i++ {
		e.After(time.Duration(i)*time.Millisecond, fn)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.After(time.Duration(depth)*time.Millisecond, fn)
		e.Step()
	}
}

func BenchmarkScheduleFireDepth64(b *testing.B)    { benchDepth(b, 64) }
func BenchmarkScheduleFireDepth1024(b *testing.B)  { benchDepth(b, 1024) }
func BenchmarkScheduleFireDepth16384(b *testing.B) { benchDepth(b, 16384) }

// BenchmarkScheduleCancel measures the timeout pattern: schedule a far
// deadline, cancel it, schedule the next — the event almost never fires.
// A standing queue of live events keeps the heap honest.
func BenchmarkScheduleCancel(b *testing.B) {
	e := New()
	fn := func() {}
	for i := 0; i < 256; i++ {
		e.After(time.Duration(i)*time.Hour, fn)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ev := e.After(time.Minute, fn)
		e.Cancel(ev)
	}
}

// BenchmarkTickerSteadyState measures one periodic-controller tick:
// fire the tick callback and reschedule the next period.
func BenchmarkTickerSteadyState(b *testing.B) {
	e := New()
	tk := NewTicker(e, time.Second, func(time.Duration) {})
	defer tk.Stop()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Step()
	}
}
