// Package sim implements a deterministic discrete-event simulation engine.
//
// The engine maintains a virtual clock and an ordered queue of events.
// Events scheduled for the same instant fire in the order they were
// scheduled, which makes every simulation that uses a seeded random source
// fully reproducible. All of the data-center substrates in this repository
// (cluster, DFS, MapReduce, interactive services) advance on a shared
// Engine.
package sim

import (
	"container/heap"
	"fmt"
	"math"
	"sync/atomic"
	"time"
)

// processEvents counts events fired across every Engine in the process.
// Benchmark tooling reads it to compute events/sec for code (such as the
// experiment suite) that constructs engines internally.
var processEvents atomic.Uint64

// ProcessEvents returns the total number of events fired by all engines
// in this process since start.
func ProcessEvents() uint64 { return processEvents.Load() }

// Event is a scheduled callback. It is returned by the scheduling methods
// so that callers can cancel it before it fires.
type Event struct {
	at     time.Duration
	seq    uint64
	fn     func()
	index  int // heap index; -1 once removed
	cancel bool
}

// At returns the virtual time at which the event fires.
func (e *Event) At() time.Duration { return e.at }

// Cancelled reports whether Cancel was called on the event.
func (e *Event) Cancelled() bool { return e.cancel }

// Engine is a discrete-event simulator. The zero value is not usable; use
// New.
type Engine struct {
	now        time.Duration
	queue      eventHeap
	seq        uint64
	fired      uint64
	cancelled  uint64
	maxPending int
	halted     bool
}

// New returns an Engine with its clock at zero.
func New() *Engine {
	return &Engine{}
}

// Now returns the current virtual time.
func (e *Engine) Now() time.Duration { return e.now }

// Fired returns the number of events processed so far. It is useful in
// tests and for detecting runaway simulations.
func (e *Engine) Fired() uint64 { return e.fired }

// Pending returns the number of events still queued.
func (e *Engine) Pending() int { return len(e.queue) }

// MaxPending returns the high-water mark of the event queue depth, a
// proxy for how much concurrent activity the simulation carried.
func (e *Engine) MaxPending() int { return e.maxPending }

// Cancelled returns the number of pending events removed via Cancel.
// Cancelling an event that already fired (or was already cancelled) does
// not count.
func (e *Engine) Cancelled() uint64 { return e.cancelled }

// At schedules fn to run at absolute virtual time t. Scheduling in the past
// is an error that indicates a logic bug in the caller; the event is
// clamped to Now so the simulation remains monotonic, and the returned
// event fires immediately on the next step.
func (e *Engine) At(t time.Duration, fn func()) *Event {
	if t < e.now {
		t = e.now
	}
	ev := &Event{at: t, seq: e.seq, fn: fn}
	e.seq++
	heap.Push(&e.queue, ev)
	if len(e.queue) > e.maxPending {
		e.maxPending = len(e.queue)
	}
	return ev
}

// After schedules fn to run d from now. Negative durations are clamped to
// zero.
func (e *Engine) After(d time.Duration, fn func()) *Event {
	if d < 0 {
		d = 0
	}
	return e.At(e.now+d, fn)
}

// AfterSeconds schedules fn after the given number of (possibly fractional)
// virtual seconds. Infinite or NaN delays are never scheduled and return
// nil; callers use this to express "no completion in sight" without special
// cases.
func (e *Engine) AfterSeconds(sec float64, fn func()) *Event {
	if math.IsNaN(sec) || math.IsInf(sec, 0) {
		return nil
	}
	return e.After(DurationFromSeconds(sec), fn)
}

// Cancel removes a pending event. Cancelling nil, an already-fired, or an
// already-cancelled event is a no-op.
func (e *Engine) Cancel(ev *Event) {
	if ev == nil || ev.cancel || ev.index < 0 {
		if ev != nil {
			ev.cancel = true
		}
		return
	}
	ev.cancel = true
	e.cancelled++
	heap.Remove(&e.queue, ev.index)
}

// Step fires the next event, advancing the clock. It returns false when the
// queue is empty or the engine has been halted.
func (e *Engine) Step() bool {
	if e.halted || len(e.queue) == 0 {
		return false
	}
	ev, ok := heap.Pop(&e.queue).(*Event)
	if !ok {
		return false
	}
	e.now = ev.at
	e.fired++
	processEvents.Add(1)
	ev.fn()
	return true
}

// Run processes events until the queue drains or Halt is called.
func (e *Engine) Run() {
	for e.Step() {
	}
}

// RunUntil processes events with timestamps <= t, then advances the clock
// to exactly t (even if no event fires there).
func (e *Engine) RunUntil(t time.Duration) {
	for !e.halted && len(e.queue) > 0 && e.queue[0].at <= t {
		e.Step()
	}
	if t > e.now {
		e.now = t
	}
}

// Halt stops Run / RunUntil after the current event. Pending events remain
// queued.
func (e *Engine) Halt() { e.halted = true }

// Halted reports whether Halt was called.
func (e *Engine) Halted() bool { return e.halted }

// String describes the engine state, for debugging.
func (e *Engine) String() string {
	return fmt.Sprintf("sim.Engine{now=%s pending=%d fired=%d}", e.now, len(e.queue), e.fired)
}

// Seconds converts a virtual duration to float seconds.
func Seconds(d time.Duration) float64 { return d.Seconds() }

// DurationFromSeconds converts float seconds into a duration, saturating at
// the maximum representable duration instead of overflowing.
func DurationFromSeconds(sec float64) time.Duration {
	if sec <= 0 {
		return 0
	}
	const maxSec = float64(math.MaxInt64) / float64(time.Second)
	if sec >= maxSec {
		return time.Duration(math.MaxInt64)
	}
	return time.Duration(sec * float64(time.Second))
}

// eventHeap orders events by (time, sequence).
type eventHeap []*Event

func (h eventHeap) Len() int { return len(h) }

func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}

func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}

func (h *eventHeap) Push(x any) {
	ev, ok := x.(*Event)
	if !ok {
		return
	}
	ev.index = len(*h)
	*h = append(*h, ev)
}

func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	ev.index = -1
	*h = old[:n-1]
	return ev
}
