// Package sim implements a deterministic discrete-event simulation engine.
//
// The engine maintains a virtual clock and an ordered queue of events.
// Events scheduled for the same instant fire in the order they were
// scheduled, which makes every simulation that uses a seeded random source
// fully reproducible. All of the data-center substrates in this repository
// (cluster, DFS, MapReduce, interactive services) advance on a shared
// Engine.
//
// # Performance model
//
// The queue is an inlined 4-ary min-heap specialized to *Event — no
// interface dispatch on the hot path — and fired events are recycled
// through a per-engine freelist, so steady-state scheduling (one event
// scheduled per event fired) performs no heap allocations. Cancel is a
// lazy deletion: it marks the event and the queue skips it at pop time,
// so cancelling costs O(1) instead of an O(log n) removal; when dead
// events outnumber live ones the queue compacts in one O(n) pass.
//
// # Event retention contract
//
// Because fired and cancelled events return to the engine's freelist and
// are reused by later Schedule calls, an *Event handle must not be
// retained after its callback has fired: clear any stored reference from
// within the callback (as sim.Ticker and the cluster substrates do), and
// never call Cancel on an event that is known to have fired in an earlier
// step. Cancelling the event currently being fired, from inside its own
// callback, is safe and remains a no-op.
//
// An Engine is not safe for concurrent use; run concurrent simulations on
// separate engines (the experiment worker pool runs one engine per sweep
// point).
package sim

import (
	"fmt"
	"math"
	"sync/atomic"
	"time"

	"repro/internal/perfstat"
)

// processEvents counts events fired across every Engine in the process.
// Engines flush into it in batches when Run or RunUntil return, so the
// hot loop pays no atomic operation per event; read it between runs, not
// mid-run. Benchmark tooling that wants exact per-run totals should use
// Engine.Fired or SetFiredSink instead.
var processEvents atomic.Uint64

// ProcessEvents returns the total number of events fired by all engines
// in this process, as of each engine's last completed Run/RunUntil.
func ProcessEvents() uint64 { return processEvents.Load() }

// Event is a scheduled callback. It is returned by the scheduling methods
// so that callers can cancel it before it fires. See the package
// documentation for the retention contract: handles must not be kept
// after the event fires, because the object is recycled.
type Event struct {
	at     time.Duration
	seq    uint64
	fn     func()
	fired  bool
	cancel bool
	freed  bool // on the freelist; any use is a retention bug
}

// At returns the virtual time at which the event fires.
func (e *Event) At() time.Duration { return e.at }

// Cancelled reports whether Cancel was called on the event.
func (e *Event) Cancelled() bool { return e.cancel }

// Engine is a discrete-event simulator. The zero value is not usable; use
// New.
type Engine struct {
	now        time.Duration
	queue      eventQueue
	free       []*Event
	seq        uint64
	fired      uint64
	flushed    uint64 // fired count already pushed to processEvents/sink
	cancelled  uint64
	live       int // queued events not yet cancelled
	dead       int // queued events cancelled but not yet popped
	maxPending int
	halted     bool
	sink       *atomic.Uint64

	// Heap-operation tallies for perfstat. They are engine-local plain
	// integers (no atomics, no indirection) so the hot path stays
	// zero-alloc and branch-cheap whether profiling is on or off; flush
	// copies the deltas into perf at Run/RunUntil boundaries.
	heapPushes  uint64
	heapPops    uint64
	siftSwaps   uint64
	compactions uint64

	perf *perfstat.Stats
	// perfFlushed* remember the totals already copied into perf.
	perfFlushedFired   uint64
	perfFlushedPushes  uint64
	perfFlushedPops    uint64
	perfFlushedSwaps   uint64
	perfFlushedCompact uint64
}

// New returns an Engine with its clock at zero.
func New() *Engine {
	return &Engine{}
}

// Now returns the current virtual time.
func (e *Engine) Now() time.Duration { return e.now }

// Fired returns the number of events processed so far. It is useful in
// tests, for detecting runaway simulations, and for attributing event
// totals to a specific run when many engines share the process.
func (e *Engine) Fired() uint64 { return e.fired }

// Pending returns the number of events still queued (cancelled events are
// excluded, even while they await lazy removal).
func (e *Engine) Pending() int { return e.live }

// MaxPending returns the high-water mark of the event queue depth, a
// proxy for how much concurrent activity the simulation carried.
func (e *Engine) MaxPending() int { return e.maxPending }

// FreelistLen returns the number of recycled events currently parked on
// the freelist — allocated capacity waiting for reuse.
func (e *Engine) FreelistLen() int { return len(e.free) }

// CancelDebt returns the number of cancelled events still occupying heap
// slots while they await lazy removal (the sweep threshold bounds it at
// max(64, live)).
func (e *Engine) CancelDebt() int { return e.dead }

// Cancelled returns the number of pending events removed via Cancel.
// Cancelling an event that already fired (or was already cancelled) does
// not count.
func (e *Engine) Cancelled() uint64 { return e.cancelled }

// SetFiredSink attaches an atomic counter that accumulates this engine's
// fired-event total. The engine adds its as-yet-unflushed count whenever
// Run or RunUntil return, so a sink shared by many engines (one per
// concurrent sweep point) attributes every event without a per-event
// atomic operation. Pass nil to detach.
func (e *Engine) SetFiredSink(sink *atomic.Uint64) { e.sink = sink }

// SetPerf attaches a performance-attribution collector. Heap-operation
// and fired-event counters are accumulated engine-locally and flushed
// into it at Run/RunUntil boundaries (the same batching as the fired
// sink), and each pump is recorded as an "engine.pump" wall-time span.
// Pass nil to detach.
func (e *Engine) SetPerf(ps *perfstat.Stats) { e.perf = ps }

// alloc takes an event from the freelist, or allocates one.
func (e *Engine) alloc() *Event {
	if n := len(e.free); n > 0 {
		ev := e.free[n-1]
		e.free[n-1] = nil
		e.free = e.free[:n-1]
		ev.fired = false
		ev.cancel = false
		ev.freed = false
		return ev
	}
	return &Event{}
}

// release returns a fired or dead event to the freelist.
func (e *Engine) release(ev *Event) {
	ev.fn = nil
	ev.freed = true
	e.free = append(e.free, ev)
}

// At schedules fn to run at absolute virtual time t. Scheduling in the past
// is an error that indicates a logic bug in the caller; the event is
// clamped to Now so the simulation remains monotonic, and the returned
// event fires immediately on the next step.
func (e *Engine) At(t time.Duration, fn func()) *Event {
	if t < e.now {
		t = e.now
	}
	ev := e.alloc()
	ev.at = t
	ev.seq = e.seq
	ev.fn = fn
	e.seq++
	e.heapPushes++
	e.queue.push(ev, &e.siftSwaps)
	e.live++
	if e.live > e.maxPending {
		e.maxPending = e.live
	}
	return ev
}

// After schedules fn to run d from now. Negative durations are clamped to
// zero.
func (e *Engine) After(d time.Duration, fn func()) *Event {
	if d < 0 {
		d = 0
	}
	return e.At(e.now+d, fn)
}

// AfterSeconds schedules fn after the given number of (possibly fractional)
// virtual seconds. Infinite or NaN delays are never scheduled and return
// nil; callers use this to express "no completion in sight" without special
// cases.
func (e *Engine) AfterSeconds(sec float64, fn func()) *Event {
	if math.IsNaN(sec) || math.IsInf(sec, 0) {
		return nil
	}
	return e.After(DurationFromSeconds(sec), fn)
}

// Cancel removes a pending event. Cancelling nil, an already-fired, or an
// already-cancelled event is a no-op. The removal is lazy: the event is
// marked dead and skipped (and recycled) when it reaches the head of the
// queue, or swept out when dead events outnumber live ones.
func (e *Engine) Cancel(ev *Event) {
	if ev == nil || ev.freed {
		return
	}
	if ev.cancel || ev.fired {
		ev.cancel = true
		return
	}
	ev.cancel = true
	e.cancelled++
	e.live--
	e.dead++
	// Compact when the queue is mostly corpses, so unbounded
	// schedule+cancel churn cannot grow the queue without bound.
	if e.dead > 64 && e.dead > e.live {
		e.compact()
	}
}

// compact rebuilds the queue without its cancelled events, releasing them
// to the freelist. Heap order among survivors is restored by a full
// heapify; pop order is unaffected because (at, seq) is a total order.
func (e *Engine) compact() {
	q := e.queue
	kept := q[:0]
	for _, ev := range q {
		if ev.cancel {
			e.release(ev)
		} else {
			kept = append(kept, ev)
		}
	}
	for i := len(kept); i < len(q); i++ {
		q[i] = nil
	}
	e.queue = kept
	e.queue.heapify(&e.siftSwaps)
	e.compactions++
	e.dead = 0
}

// peekLive discards cancelled events from the head of the queue and
// returns the next live event without popping it, or nil when drained.
func (e *Engine) peekLive() *Event {
	for {
		ev := e.queue.peek()
		if ev == nil {
			return nil
		}
		if !ev.cancel {
			return ev
		}
		e.heapPops++
		e.queue.pop(&e.siftSwaps)
		e.dead--
		e.release(ev)
	}
}

// fire advances the clock to ev and runs its callback. The event is
// recycled after the callback returns.
func (e *Engine) fire(ev *Event) {
	e.now = ev.at
	e.fired++
	fn := ev.fn
	ev.fired = true
	fn()
	e.release(ev)
}

// flush pushes the fired-count delta since the last flush into the
// process-wide counter and the engine's sink, if any, and the heap-op
// deltas into the perf collector, if attached.
func (e *Engine) flush() {
	if e.perf != nil {
		c := &e.perf.C
		c.EngineEventsFired += int64(e.fired - e.perfFlushedFired)
		c.EngineHeapPushes += int64(e.heapPushes - e.perfFlushedPushes)
		c.EngineHeapPops += int64(e.heapPops - e.perfFlushedPops)
		c.EngineHeapSiftSwaps += int64(e.siftSwaps - e.perfFlushedSwaps)
		c.EngineCompactions += int64(e.compactions - e.perfFlushedCompact)
		e.perfFlushedFired = e.fired
		e.perfFlushedPushes = e.heapPushes
		e.perfFlushedPops = e.heapPops
		e.perfFlushedSwaps = e.siftSwaps
		e.perfFlushedCompact = e.compactions
	}
	d := e.fired - e.flushed
	if d == 0 {
		return
	}
	e.flushed = e.fired
	processEvents.Add(d)
	if e.sink != nil {
		e.sink.Add(d)
	}
}

// Step fires the next event, advancing the clock. It returns false when the
// queue is empty or the engine has been halted.
func (e *Engine) Step() bool {
	if e.halted {
		return false
	}
	ev := e.peekLive()
	if ev == nil {
		return false
	}
	e.heapPops++
	e.queue.pop(&e.siftSwaps)
	e.live--
	e.fire(ev)
	return true
}

// Run processes events until the queue drains or Halt is called.
func (e *Engine) Run() {
	e.perf.Enter("engine.pump")
	for e.Step() {
	}
	e.perf.Exit()
	e.flush()
}

// RunUntil processes events with timestamps <= t, then advances the clock
// to exactly t (even if no event fires there).
func (e *Engine) RunUntil(t time.Duration) {
	e.perf.Enter("engine.pump")
	for !e.halted {
		ev := e.peekLive()
		if ev == nil || ev.at > t {
			break
		}
		e.heapPops++
		e.queue.pop(&e.siftSwaps)
		e.live--
		e.fire(ev)
	}
	if t > e.now {
		e.now = t
	}
	e.perf.Exit()
	e.flush()
}

// Halt stops Run / RunUntil after the current event. Pending events remain
// queued.
func (e *Engine) Halt() { e.halted = true }

// Halted reports whether Halt was called.
func (e *Engine) Halted() bool { return e.halted }

// String describes the engine state, for debugging.
func (e *Engine) String() string {
	return fmt.Sprintf("sim.Engine{now=%s pending=%d fired=%d}", e.now, e.live, e.fired)
}

// Seconds converts a virtual duration to float seconds.
func Seconds(d time.Duration) float64 { return d.Seconds() }

// DurationFromSeconds converts float seconds into a duration, saturating at
// the maximum representable duration instead of overflowing.
func DurationFromSeconds(sec float64) time.Duration {
	if sec <= 0 {
		return 0
	}
	const maxSec = float64(math.MaxInt64) / float64(time.Second)
	if sec >= maxSec {
		return time.Duration(math.MaxInt64)
	}
	return time.Duration(sec * float64(time.Second))
}

// eventQueue is a 4-ary min-heap of events ordered by (time, sequence).
// A 4-ary layout halves the tree depth of a binary heap and keeps the
// children of a node on one cache line, which measurably speeds up the
// sift-down path that dominates pop.
type eventQueue []*Event

// before reports whether a fires before b: earlier time first, and FIFO
// among events scheduled for the same instant.
func before(a, b *Event) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

func (q eventQueue) peek() *Event {
	if len(q) == 0 {
		return nil
	}
	return q[0]
}

// The queue methods take a swap tally so the engine can attribute heap
// work (sift swaps) to perfstat without any indirection held inside the
// queue itself.
func (q *eventQueue) push(ev *Event, swaps *uint64) {
	h := append(*q, ev)
	i := len(h) - 1
	for i > 0 {
		p := (i - 1) >> 2
		if !before(h[i], h[p]) {
			break
		}
		h[i], h[p] = h[p], h[i]
		*swaps++
		i = p
	}
	*q = h
}

func (q *eventQueue) pop(swaps *uint64) *Event {
	h := *q
	n := len(h) - 1
	root := h[0]
	last := h[n]
	h[n] = nil
	h = h[:n]
	*q = h
	if n > 0 {
		h[0] = last
		h.siftDown(0, swaps)
	}
	return root
}

func (q eventQueue) siftDown(i int, swaps *uint64) {
	n := len(q)
	for {
		c := i<<2 + 1
		if c >= n {
			return
		}
		best := c
		end := c + 4
		if end > n {
			end = n
		}
		for j := c + 1; j < end; j++ {
			if before(q[j], q[best]) {
				best = j
			}
		}
		if !before(q[best], q[i]) {
			return
		}
		q[i], q[best] = q[best], q[i]
		*swaps++
		i = best
	}
}

// heapify restores heap order over the whole slice after a compaction.
func (q eventQueue) heapify(swaps *uint64) {
	for i := (len(q) - 2) >> 2; i >= 0; i-- {
		q.siftDown(i, swaps)
	}
}
