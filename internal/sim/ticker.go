package sim

import "time"

// Ticker invokes a callback at a fixed virtual-time period. It is the
// backbone of the periodic controllers in the system (the Phase II DRM
// epoch loop, the IPS SLA monitor, and the metrics samplers).
//
// A ticker allocates its tick closure once and rides the engine's event
// freelist thereafter, so steady-state ticking performs no allocations.
type Ticker struct {
	engine *Engine
	period time.Duration
	fn     func(now time.Duration)
	tick   func()
	ev     *Event
	done   bool
}

// NewTicker schedules fn every period, with the first firing one period
// from now. A non-positive period yields a stopped ticker, since a
// zero-period ticker would never let the simulation advance.
func NewTicker(engine *Engine, period time.Duration, fn func(now time.Duration)) *Ticker {
	t := &Ticker{engine: engine, period: period, fn: fn}
	if period <= 0 {
		t.done = true
		return t
	}
	t.tick = func() {
		// The event now firing must not outlive its callback (it is
		// recycled by the engine); drop our reference before user code
		// runs so Stop never cancels a stale handle.
		t.ev = nil
		if t.done {
			return
		}
		t.fn(t.engine.Now())
		if !t.done {
			t.ev = t.engine.After(t.period, t.tick)
		}
	}
	t.ev = engine.After(period, t.tick)
	return t
}

// Stop cancels future firings. It is safe to call multiple times and from
// within the callback itself.
func (t *Ticker) Stop() {
	if t.done {
		return
	}
	t.done = true
	t.engine.Cancel(t.ev)
	t.ev = nil
}

// Stopped reports whether the ticker has been stopped.
func (t *Ticker) Stopped() bool { return t.done }
