package trace

import (
	"sort"
	"time"
)

// HistogramStats is a point-in-time summary of a Histogram: the count,
// moments and estimated quantiles, in a JSON-friendly shape.
type HistogramStats struct {
	Count uint64  `json:"count"`
	Mean  float64 `json:"mean"`
	Min   float64 `json:"min"`
	Max   float64 `json:"max"`
	P50   float64 `json:"p50"`
	P95   float64 `json:"p95"`
	P99   float64 `json:"p99"`
}

// Snapshot is a point-in-time view of a Registry's metrics, suitable for
// embedding in result records. Maps marshal with sorted keys, so the
// JSON encoding is deterministic.
type Snapshot struct {
	Counters   map[string]float64        `json:"counters,omitempty"`
	Gauges     map[string]float64        `json:"gauges,omitempty"`
	Histograms map[string]HistogramStats `json:"histograms,omitempty"`
}

// Snapshot summarizes every registered metric. A nil registry yields a
// zero Snapshot.
func (r *Registry) Snapshot() Snapshot {
	if r == nil {
		return Snapshot{}
	}
	var s Snapshot
	if len(r.counters) > 0 {
		s.Counters = make(map[string]float64, len(r.counters))
		for name, c := range r.counters {
			s.Counters[name] = c.Value()
		}
	}
	if len(r.gauges) > 0 {
		s.Gauges = make(map[string]float64, len(r.gauges))
		for name, g := range r.gauges {
			s.Gauges[name] = g.Value()
		}
	}
	if len(r.hists) > 0 {
		s.Histograms = make(map[string]HistogramStats, len(r.hists))
		for name, h := range r.hists {
			s.Histograms[name] = HistogramStats{
				Count: h.Count(),
				Mean:  h.Mean(),
				Min:   h.Min(),
				Max:   h.Max(),
				P50:   h.Quantile(0.50),
				P95:   h.Quantile(0.95),
				P99:   h.Quantile(0.99),
			}
		}
	}
	return s
}

// Merge folds another registry's metrics into r: counters and histogram
// buckets sum, and gauges take the maximum — the only order-independent
// combination for last-value-wins metrics, and the conservative reading
// for the utilization-style gauges the simulation publishes. One-shot
// pairwise merges commute exactly, but folding many registries with
// repeated Merge calls is float-associativity-sensitive; use MergeAll
// to combine a batch bit-identically regardless of order. A nil
// receiver or argument is a no-op.
func (r *Registry) Merge(other *Registry) {
	if other == nil {
		return
	}
	r.MergeAll([]*Registry{other})
}

// MergeAll folds a batch of registries into r in a value-deterministic
// way: every float accumulation (counter totals, histogram sums) adds
// contributions in sorted numeric order, so the result is bit-identical
// no matter how the slice is ordered. This is what lets concurrent
// sweep points record into private registries, hand them over in
// worker-finish order, and still produce byte-identical snapshots at
// any worker count. Bucket counts and gauge maxima are intrinsically
// order-independent. A nil receiver is a no-op; nil entries are skipped.
func (r *Registry) MergeAll(others []*Registry) {
	if r == nil {
		return
	}
	counterVals := map[string][]float64{}
	gaugeMax := map[string]float64{}
	histSums := map[string][]float64{}
	for _, other := range others {
		if other == nil {
			continue
		}
		for name, c := range other.counters {
			counterVals[name] = append(counterVals[name], c.Value())
		}
		for name, g := range other.gauges {
			if v, seen := gaugeMax[name]; !seen || g.Value() > v {
				gaugeMax[name] = g.Value()
			}
		}
		for name, h := range other.hists {
			if h.count == 0 {
				// Still materialize the metric so snapshots keep the
				// same key set at any worker count.
				r.Histogram(name)
				continue
			}
			histSums[name] = append(histSums[name], h.sum)
			mine := r.Histogram(name)
			if mine.count == 0 || h.min < mine.min {
				mine.min = h.min
			}
			if mine.count == 0 || h.max > mine.max {
				mine.max = h.max
			}
			mine.count += h.count
			mine.zero += h.zero
			for i := range mine.buckets {
				mine.buckets[i] += h.buckets[i]
			}
		}
	}
	for name, vals := range counterVals {
		sort.Float64s(vals)
		total := 0.0
		for _, v := range vals {
			total += v
		}
		r.Counter(name).Add(total)
	}
	for name, v := range gaugeMax {
		if mine := r.Gauge(name); v > mine.Value() {
			mine.Set(v)
		}
	}
	for name, sums := range histSums {
		sort.Float64s(sums)
		total := 0.0
		for _, s := range sums {
			total += s
		}
		r.hists[name].sum += total
	}
}

// Event is an exported view of one recorded trace entry, for consumers
// (like the HTML report) that render events directly instead of going
// through a serialized export.
type Event struct {
	// Instant is true for zero-duration instant events, false for
	// complete spans.
	Instant bool
	// Start is the event's simulated start time; Duration is zero for
	// instants.
	Start    time.Duration
	Duration time.Duration
	// Track, Category and Name identify the event.
	Track    string
	Category string
	Name     string
	// Args are the event's annotations.
	Args []Arg
}

// Events returns every recorded event (plus still-open spans, rendered
// as running to the current instant) in deterministic emission order.
func (t *Tracer) Events() []Event {
	if t == nil {
		return nil
	}
	evs := t.snapshot()
	out := make([]Event, len(evs))
	for i, ev := range evs {
		out[i] = Event{
			Instant:  ev.phase == 'i',
			Start:    ev.start,
			Duration: ev.dur,
			Track:    ev.track,
			Category: ev.cat,
			Name:     ev.name,
			Args:     ev.args,
		}
	}
	return out
}

// Text returns the string value of an Arg, and whether it is a string
// argument (built with S).
func (a Arg) Text() (string, bool) { return a.str, !a.isNum }

// Number returns the numeric value of an Arg, and whether it is a
// numeric argument (built with F).
func (a Arg) Number() (float64, bool) { return a.num, a.isNum }
