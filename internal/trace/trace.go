// Package trace provides structured event tracing and a metrics registry
// for the simulation stack. Subsystems emit typed spans (task attempts,
// job phases, VM migrations, PM power states) and instant events onto
// named tracks — one track per PM, VM or TaskTracker — and publish
// counters, gauges and streaming histograms into a Registry. Exporters
// write the collected events as JSONL or as the Chrome trace_event format
// loadable in Perfetto / chrome://tracing.
//
// Two properties shape the design:
//
//   - Disabled tracing must be free. Every method is nil-safe: a nil
//     *Tracer, *Registry, *Counter, *Gauge or *Histogram accepts the full
//     API as a no-op, so instrumented code never branches and the hot
//     path of an untraced simulation pays only a nil check.
//
//   - Traces must be deterministic. Timestamps come exclusively from the
//     bound simulation clock (never the wall clock), events are stored in
//     emission order, and exporters serialize with stable field and key
//     ordering — two runs with the same seed produce byte-identical
//     files.
package trace

import "time"

// Clock supplies simulated time. *sim.Engine satisfies it.
type Clock interface {
	Now() time.Duration
}

// Arg is one key/value annotation on a span or instant event. Values are
// either strings or numbers; construct them with S and F.
type Arg struct {
	// Key names the annotation.
	Key string

	str   string
	num   float64
	isNum bool
}

// S builds a string-valued argument.
func S(key, value string) Arg { return Arg{Key: key, str: value} }

// F builds a numeric argument.
func F(key string, value float64) Arg { return Arg{Key: key, num: value, isNum: true} }

// event is one recorded trace entry.
type event struct {
	phase byte // 'X' complete span, 'i' instant
	start time.Duration
	dur   time.Duration
	track string
	cat   string
	name  string
	args  []Arg
}

// openSpan is a begun-but-unfinished span. Slots are reused through a
// free list; gen guards stale Span handles after reuse.
type openSpan struct {
	start time.Duration
	track string
	cat   string
	name  string
	args  []Arg
	gen   uint32
	live  bool
}

// Tracer collects spans and instant events against a simulation clock.
// The zero value is not usable; use New. A nil *Tracer is a valid no-op
// tracer. Tracers are not safe for concurrent use: the simulation stack
// is single-goroutine by construction.
type Tracer struct {
	clock  Clock
	events []event
	open   []openSpan
	free   []int
}

// New returns an empty tracer. The clock may be nil initially (events
// stamp at zero) and bound later with SetClock — deployment helpers
// create the engine after the user creates the tracer.
func New(clock Clock) *Tracer {
	return &Tracer{clock: clock}
}

// SetClock binds (or re-binds) the simulated time source.
func (t *Tracer) SetClock(clock Clock) {
	if t == nil {
		return
	}
	t.clock = clock
}

func (t *Tracer) now() time.Duration {
	if t.clock == nil {
		return 0
	}
	return t.clock.Now()
}

// Len returns the number of completed events recorded so far.
func (t *Tracer) Len() int {
	if t == nil {
		return 0
	}
	return len(t.events)
}

// OpenSpans returns the number of begun-but-unfinished spans.
func (t *Tracer) OpenSpans() int {
	if t == nil {
		return 0
	}
	n := 0
	for i := range t.open {
		if t.open[i].live {
			n++
		}
	}
	return n
}

// Instant records a zero-duration event on a track.
func (t *Tracer) Instant(track, category, name string, args ...Arg) {
	if t == nil {
		return
	}
	t.events = append(t.events, event{
		phase: 'i',
		start: t.now(),
		track: track,
		cat:   category,
		name:  name,
		args:  args,
	})
}

// Span is a handle to an in-progress span returned by Begin. The zero
// Span (and any Span from a nil tracer) is valid and End on it is a
// no-op, so callers can hold spans unconditionally.
type Span struct {
	t   *Tracer
	idx int
	gen uint32
}

// Begin opens a span on a track. End it with Span.End; spans still open
// when an exporter runs are emitted as running to the export instant.
func (t *Tracer) Begin(track, category, name string, args ...Arg) Span {
	if t == nil {
		return Span{}
	}
	var idx int
	if n := len(t.free); n > 0 {
		idx = t.free[n-1]
		t.free = t.free[:n-1]
	} else {
		idx = len(t.open)
		t.open = append(t.open, openSpan{})
	}
	slot := &t.open[idx]
	gen := slot.gen + 1
	*slot = openSpan{
		start: t.now(),
		track: track,
		cat:   category,
		name:  name,
		args:  args,
		gen:   gen,
		live:  true,
	}
	return Span{t: t, idx: idx, gen: gen}
}

// End closes the span, recording a complete event whose duration runs
// from Begin to now. Extra args are appended to those given at Begin.
// Ending a zero Span, or ending twice, is a no-op.
func (s Span) End(args ...Arg) {
	if s.t == nil || s.idx >= len(s.t.open) {
		return
	}
	slot := &s.t.open[s.idx]
	if !slot.live || slot.gen != s.gen {
		return
	}
	all := slot.args
	if len(args) > 0 {
		all = append(append([]Arg{}, slot.args...), args...)
	}
	now := s.t.now()
	s.t.events = append(s.t.events, event{
		phase: 'X',
		start: slot.start,
		dur:   now - slot.start,
		track: slot.track,
		cat:   slot.cat,
		name:  slot.name,
		args:  all,
	})
	slot.live = false
	slot.args = nil
	s.t.free = append(s.t.free, s.idx)
}

// Active reports whether the span is open (begun on a live tracer and
// not yet ended).
func (s Span) Active() bool {
	if s.t == nil || s.idx >= len(s.t.open) {
		return false
	}
	slot := &s.t.open[s.idx]
	return slot.live && slot.gen == s.gen
}

// snapshot returns completed events plus every still-open span rendered
// as a span ending at the export instant, in deterministic order.
func (t *Tracer) snapshot() []event {
	out := make([]event, 0, len(t.events)+len(t.open))
	out = append(out, t.events...)
	now := t.now()
	for i := range t.open {
		slot := &t.open[i]
		if !slot.live {
			continue
		}
		out = append(out, event{
			phase: 'X',
			start: slot.start,
			dur:   now - slot.start,
			track: slot.track,
			cat:   slot.cat,
			name:  slot.name,
			args:  append(append([]Arg{}, slot.args...), S("state", "running")),
		})
	}
	return out
}
