package trace

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

func TestNilRegistryAndMetrics(t *testing.T) {
	var r *Registry
	c := r.Counter("c")
	g := r.Gauge("g")
	h := r.Histogram("h")
	if c != nil || g != nil || h != nil {
		t.Fatal("nil registry should hand out nil metrics")
	}
	c.Inc()
	c.Add(5)
	g.Set(3)
	h.Observe(1)
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 {
		t.Fatal("nil metrics should read as zero")
	}
	if h.Mean() != 0 || h.Quantile(0.5) != 0 || h.Min() != 0 || h.Max() != 0 || h.Sum() != 0 {
		t.Fatal("nil histogram stats should read as zero")
	}
	r.Fprint(&bytes.Buffer{}) // must not panic
}

func TestCounterAndGauge(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("jobs")
	c.Inc()
	c.Add(2.5)
	if c.Value() != 3.5 {
		t.Fatalf("counter = %v, want 3.5", c.Value())
	}
	if r.Counter("jobs") != c {
		t.Fatal("Counter should return the same instance for the same name")
	}
	g := r.Gauge("depth")
	g.Set(7)
	g.Set(4)
	if g.Value() != 4 {
		t.Fatalf("gauge = %v, want 4", g.Value())
	}
}

func TestHistogramBasicStats(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("wait")
	for _, v := range []float64{1, 2, 3, 4, 5} {
		h.Observe(v)
	}
	if h.Count() != 5 || h.Sum() != 15 || h.Mean() != 3 {
		t.Fatalf("count=%d sum=%v mean=%v", h.Count(), h.Sum(), h.Mean())
	}
	if h.Min() != 1 || h.Max() != 5 {
		t.Fatalf("min=%v max=%v", h.Min(), h.Max())
	}
}

func TestHistogramQuantiles(t *testing.T) {
	h := NewRegistry().Histogram("q")
	// Uniform 1..1000: p50 ~ 500, p95 ~ 950, p99 ~ 990.
	for i := 1; i <= 1000; i++ {
		h.Observe(float64(i))
	}
	checks := []struct{ q, want float64 }{
		{0.50, 500},
		{0.95, 950},
		{0.99, 990},
	}
	for _, c := range checks {
		got := h.Quantile(c.q)
		// Log buckets at 8 per octave bound relative error to ~9%.
		if math.Abs(got-c.want)/c.want > 0.10 {
			t.Errorf("Quantile(%v) = %v, want ~%v", c.q, got, c.want)
		}
	}
	if h.Quantile(0) < 1 || h.Quantile(1) > 1000 {
		t.Errorf("quantiles escape [min,max]: q0=%v q1=%v", h.Quantile(0), h.Quantile(1))
	}
}

func TestHistogramZeroAndNegative(t *testing.T) {
	h := NewRegistry().Histogram("z")
	h.Observe(0)
	h.Observe(-5)
	h.Observe(10)
	if h.Count() != 3 {
		t.Fatalf("count = %d, want 3", h.Count())
	}
	if h.Min() != -5 || h.Max() != 10 {
		t.Fatalf("min=%v max=%v", h.Min(), h.Max())
	}
	// Two of three observations are <= 0, so the median lands in the zero
	// bucket (represented as 0, which is the true median of {-5, 0, 10}).
	if q := h.Quantile(0.5); q != 0 {
		t.Fatalf("Quantile(0.5) = %v, want 0 (zero bucket)", q)
	}
}

func TestHistogramExtremes(t *testing.T) {
	h := NewRegistry().Histogram("x")
	h.Observe(1e-12) // below the smallest bucket: clamps, must not panic
	h.Observe(1e18)  // above the largest bucket: clamps, must not panic
	if h.Count() != 2 {
		t.Fatalf("count = %d", h.Count())
	}
	if q := h.Quantile(0.99); q > h.Max() {
		t.Fatalf("quantile %v exceeds max %v", q, h.Max())
	}
}

func TestRegistryFprint(t *testing.T) {
	r := NewRegistry()
	r.Counter("b.counter").Add(2)
	r.Counter("a.counter").Inc()
	r.Gauge("g.gauge").Set(1.5)
	h := r.Histogram("h.hist")
	h.Observe(10)
	h.Observe(20)

	var buf bytes.Buffer
	r.Fprint(&buf)
	out := buf.String()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 4 {
		t.Fatalf("got %d lines:\n%s", len(lines), out)
	}
	// Counters sorted by name, then gauges, then histograms.
	if !strings.Contains(lines[0], "a.counter") || !strings.Contains(lines[1], "b.counter") {
		t.Fatalf("counters not sorted:\n%s", out)
	}
	if !strings.Contains(lines[3], "count=2") || !strings.Contains(lines[3], "mean=15") {
		t.Fatalf("histogram row missing stats:\n%s", out)
	}
}

func TestBucketMonotonic(t *testing.T) {
	prev := -1
	for _, v := range []float64{1e-7, 0.001, 0.5, 1, 2, 10, 1e3, 1e9, 1e12} {
		idx := bucketIndex(v)
		if idx <= prev {
			t.Fatalf("bucketIndex not increasing at %v: %d <= %d", v, idx, prev)
		}
		if up := bucketUpper(idx); up < v {
			t.Fatalf("bucketUpper(%d)=%v < observed %v", idx, up, v)
		}
		prev = idx
	}
}
