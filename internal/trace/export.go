package trace

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
)

// argsMap converts an Arg list to a map for JSON encoding. encoding/json
// marshals map keys in sorted order, which keeps the output
// deterministic.
func argsMap(args []Arg) map[string]any {
	if len(args) == 0 {
		return nil
	}
	m := make(map[string]any, len(args))
	for _, a := range args {
		if a.isNum {
			m[a.Key] = a.num
		} else {
			m[a.Key] = a.str
		}
	}
	return m
}

// jsonlEvent is the JSONL export schema: one event per line, timestamps
// in simulated microseconds.
type jsonlEvent struct {
	Type  string         `json:"type"` // "span" or "instant"
	TsUs  int64          `json:"ts_us"`
	DurUs int64          `json:"dur_us,omitempty"`
	Track string         `json:"track"`
	Cat   string         `json:"cat"`
	Name  string         `json:"name"`
	Args  map[string]any `json:"args,omitempty"`
}

// WriteJSONL writes every recorded event (plus still-open spans, closed
// at the export instant) as one JSON object per line.
func (t *Tracer) WriteJSONL(w io.Writer) error {
	if t == nil {
		return nil
	}
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for _, ev := range t.snapshot() {
		typ := "span"
		if ev.phase == 'i' {
			typ = "instant"
		}
		if err := enc.Encode(jsonlEvent{
			Type:  typ,
			TsUs:  ev.start.Microseconds(),
			DurUs: ev.dur.Microseconds(),
			Track: ev.track,
			Cat:   ev.cat,
			Name:  ev.name,
			Args:  argsMap(ev.args),
		}); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// chromeEvent is one entry of the Chrome trace_event format
// (https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU).
// Perfetto and chrome://tracing load the resulting file directly; each
// track (PM, VM, TaskTracker, job) renders as its own named thread row.
type chromeEvent struct {
	Name  string         `json:"name"`
	Cat   string         `json:"cat,omitempty"`
	Ph    string         `json:"ph"`
	Ts    int64          `json:"ts"`
	Dur   *int64         `json:"dur,omitempty"`
	Pid   int            `json:"pid"`
	Tid   int            `json:"tid"`
	Scope string         `json:"s,omitempty"`
	Args  map[string]any `json:"args,omitempty"`
}

// WriteChromeTrace writes the events in Chrome trace_event JSON format.
// Tracks are assigned thread IDs in order of first appearance and named
// via thread_name metadata, so the viewer shows one labelled row per
// track. Simulated time maps to the trace's microsecond timebase.
func (t *Tracer) WriteChromeTrace(w io.Writer) error {
	if t == nil {
		_, err := io.WriteString(w, `{"traceEvents":[]}`+"\n")
		return err
	}
	events := t.snapshot()

	// Track registry in first-appearance order.
	tids := make(map[string]int)
	var tracks []string
	tidOf := func(track string) int {
		id, ok := tids[track]
		if !ok {
			id = len(tracks) + 1
			tids[track] = id
			tracks = append(tracks, track)
		}
		return id
	}
	for _, ev := range events {
		tidOf(ev.track)
	}

	bw := bufio.NewWriter(w)
	if _, err := io.WriteString(bw, `{"traceEvents":[`); err != nil {
		return err
	}
	first := true
	emit := func(ce chromeEvent) error {
		raw, err := json.Marshal(ce)
		if err != nil {
			return err
		}
		if !first {
			if _, err := bw.WriteString(",\n"); err != nil {
				return err
			}
		}
		first = false
		_, err = bw.Write(raw)
		return err
	}

	for i, track := range tracks {
		if err := emit(chromeEvent{
			Name: "thread_name", Ph: "M", Pid: 1, Tid: i + 1,
			Args: map[string]any{"name": track},
		}); err != nil {
			return err
		}
		if err := emit(chromeEvent{
			Name: "thread_sort_index", Ph: "M", Pid: 1, Tid: i + 1,
			Args: map[string]any{"sort_index": i},
		}); err != nil {
			return err
		}
	}
	for _, ev := range events {
		ce := chromeEvent{
			Name: ev.name,
			Cat:  ev.cat,
			Ts:   ev.start.Microseconds(),
			Pid:  1,
			Tid:  tids[ev.track],
			Args: argsMap(ev.args),
		}
		if ev.phase == 'X' {
			ce.Ph = "X"
			dur := ev.dur.Microseconds()
			ce.Dur = &dur
		} else {
			ce.Ph = "i"
			ce.Scope = "t"
		}
		if err := emit(ce); err != nil {
			return err
		}
	}
	if _, err := io.WriteString(bw, "],\"displayTimeUnit\":\"ms\"}\n"); err != nil {
		return err
	}
	return bw.Flush()
}

// ExportFormat names a trace serialization.
type ExportFormat string

// Supported export formats.
const (
	FormatJSONL  ExportFormat = "jsonl"
	FormatChrome ExportFormat = "chrome"
)

// Write serializes the trace in the given format.
func (t *Tracer) Write(w io.Writer, format ExportFormat) error {
	switch format {
	case FormatJSONL:
		return t.WriteJSONL(w)
	case FormatChrome, "":
		return t.WriteChromeTrace(w)
	default:
		return fmt.Errorf("trace: unknown export format %q", format)
	}
}
