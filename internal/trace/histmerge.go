package trace

import "sort"

// Merge folds another histogram into h: counts, zero tallies and bucket
// occupancies add, min/max extend, and sums add. A single pairwise merge
// is exact; folding many histograms with repeated Merge calls is
// float-associativity-sensitive in the sum — use MergeHistograms to
// combine a batch bit-identically regardless of input order. A nil
// receiver or argument (or an empty argument) is a no-op.
func (h *Histogram) Merge(other *Histogram) {
	if h == nil || other == nil || other.count == 0 {
		return
	}
	if h.count == 0 || other.min < h.min {
		h.min = other.min
	}
	if h.count == 0 || other.max > h.max {
		h.max = other.max
	}
	h.count += other.count
	h.zero += other.zero
	h.sum += other.sum
	for i := range h.buckets {
		h.buckets[i] += other.buckets[i]
	}
}

// MergeHistograms combines a batch of histograms into a fresh one in a
// value-deterministic way: bucket counts, zero tallies and min/max are
// intrinsically order-independent, and the floating-point sums are added
// in sorted numeric order, so the result is bit-identical no matter how
// the slice is ordered. This is the merge the windowed time-series layer
// uses to aggregate per-label digests, where the set of labels must not
// leak an ordering into the output bytes. Nil and empty entries are
// skipped.
func MergeHistograms(hs []*Histogram) *Histogram {
	out := &Histogram{}
	sums := make([]float64, 0, len(hs))
	for _, h := range hs {
		if h == nil || h.count == 0 {
			continue
		}
		if out.count == 0 || h.min < out.min {
			out.min = h.min
		}
		if out.count == 0 || h.max > out.max {
			out.max = h.max
		}
		out.count += h.count
		out.zero += h.zero
		for i := range out.buckets {
			out.buckets[i] += h.buckets[i]
		}
		sums = append(sums, h.sum)
	}
	sort.Float64s(sums)
	total := 0.0
	for _, s := range sums {
		total += s
	}
	out.sum = total
	return out
}

// FractionAtOrBelow estimates the fraction of observations that were at
// or below v, from the bucket boundaries — the per-window "good event"
// ratio an SLO with an upper-bound threshold needs. Like Quantile, the
// estimate's resolution is one log bucket (~9%), with the observed
// min/max giving exact answers at the extremes. An empty (or nil)
// histogram reports 1: no observations means no violating observations.
func (h *Histogram) FractionAtOrBelow(v float64) float64 {
	if h == nil || h.count == 0 {
		return 1
	}
	if v >= h.max {
		return 1
	}
	if v < h.min {
		return 0
	}
	cum := h.zero
	if v > 0 {
		idx := bucketIndex(v)
		for i := 0; i <= idx; i++ {
			cum += h.buckets[i]
		}
	}
	frac := float64(cum) / float64(h.count)
	if frac > 1 {
		frac = 1
	}
	return frac
}

// Stats summarizes the histogram into its JSON-friendly snapshot shape.
func (h *Histogram) Stats() HistogramStats {
	return HistogramStats{
		Count: h.Count(),
		Mean:  h.Mean(),
		Min:   h.Min(),
		Max:   h.Max(),
		P50:   h.Quantile(0.50),
		P95:   h.Quantile(0.95),
		P99:   h.Quantile(0.99),
	}
}
