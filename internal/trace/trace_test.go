package trace

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
	"time"
)

// fakeClock is a manually advanced Clock.
type fakeClock struct{ t time.Duration }

func (c *fakeClock) Now() time.Duration { return c.t }

func TestNilTracerIsNoOp(t *testing.T) {
	var tr *Tracer
	tr.Instant("track", "cat", "name")
	sp := tr.Begin("track", "cat", "name")
	if sp.Active() {
		t.Fatal("span from nil tracer should not be active")
	}
	sp.End()
	tr.SetClock(&fakeClock{})
	if tr.Len() != 0 || tr.OpenSpans() != 0 {
		t.Fatal("nil tracer should report zero events")
	}
	var buf bytes.Buffer
	if err := tr.WriteJSONL(&buf); err != nil {
		t.Fatalf("nil WriteJSONL: %v", err)
	}
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatalf("nil WriteChromeTrace: %v", err)
	}
	var doc map[string]any
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("nil chrome trace not valid JSON: %v", err)
	}
}

func TestSpanLifecycle(t *testing.T) {
	clk := &fakeClock{}
	tr := New(clk)

	clk.t = 5 * time.Second
	sp := tr.Begin("tt-0", "task", "map-0", S("job", "j1"))
	if !sp.Active() {
		t.Fatal("span should be active after Begin")
	}
	if tr.OpenSpans() != 1 {
		t.Fatalf("OpenSpans = %d, want 1", tr.OpenSpans())
	}

	clk.t = 12 * time.Second
	sp.End(F("progress", 1))
	if sp.Active() {
		t.Fatal("span should be inactive after End")
	}
	if tr.Len() != 1 || tr.OpenSpans() != 0 {
		t.Fatalf("Len=%d OpenSpans=%d, want 1/0", tr.Len(), tr.OpenSpans())
	}

	ev := tr.events[0]
	if ev.phase != 'X' || ev.start != 5*time.Second || ev.dur != 7*time.Second {
		t.Fatalf("event = %+v, want X span [5s,12s]", ev)
	}
	if len(ev.args) != 2 || ev.args[0].Key != "job" || ev.args[1].Key != "progress" {
		t.Fatalf("args = %+v, want Begin args then End args", ev.args)
	}

	// Double End is a no-op.
	sp.End()
	if tr.Len() != 1 {
		t.Fatal("double End recorded a second event")
	}
}

func TestStaleSpanHandleAfterSlotReuse(t *testing.T) {
	clk := &fakeClock{}
	tr := New(clk)

	a := tr.Begin("t", "c", "a")
	a.End()
	b := tr.Begin("t", "c", "b") // reuses a's slot
	a.End()                      // stale handle: must not close b
	if !b.Active() {
		t.Fatal("stale End closed an unrelated span")
	}
	b.End()
	if tr.Len() != 2 {
		t.Fatalf("Len = %d, want 2", tr.Len())
	}
}

func TestInstant(t *testing.T) {
	clk := &fakeClock{t: 3 * time.Second}
	tr := New(clk)
	tr.Instant("pm-0", "power", "power-off", S("reason", "consolidation"))
	if tr.Len() != 1 {
		t.Fatalf("Len = %d, want 1", tr.Len())
	}
	ev := tr.events[0]
	if ev.phase != 'i' || ev.start != 3*time.Second || ev.name != "power-off" {
		t.Fatalf("event = %+v", ev)
	}
}

func TestSnapshotIncludesOpenSpans(t *testing.T) {
	clk := &fakeClock{}
	tr := New(clk)
	tr.Begin("t", "c", "still-running")
	clk.t = 9 * time.Second

	evs := tr.snapshot()
	if len(evs) != 1 {
		t.Fatalf("snapshot has %d events, want 1", len(evs))
	}
	ev := evs[0]
	if ev.dur != 9*time.Second {
		t.Fatalf("open span dur = %v, want 9s", ev.dur)
	}
	last := ev.args[len(ev.args)-1]
	if last.Key != "state" || last.str != "running" {
		t.Fatalf("open span missing state=running arg: %+v", ev.args)
	}
	// Snapshot must not close the span.
	if tr.OpenSpans() != 1 {
		t.Fatal("snapshot closed an open span")
	}
}

func TestLateClockBinding(t *testing.T) {
	tr := New(nil)
	tr.Instant("t", "c", "early") // clock unbound: stamps at 0
	clk := &fakeClock{t: time.Minute}
	tr.SetClock(clk)
	tr.Instant("t", "c", "late")
	if tr.events[0].start != 0 || tr.events[1].start != time.Minute {
		t.Fatalf("timestamps = %v, %v", tr.events[0].start, tr.events[1].start)
	}
}

func TestWriteJSONL(t *testing.T) {
	clk := &fakeClock{t: time.Second}
	tr := New(clk)
	sp := tr.Begin("vm-1", "migration", "migrate", S("to", "pm-2"))
	clk.t = 4 * time.Second
	sp.End(F("rounds", 3))
	tr.Instant("vm-1", "migration", "stop-and-copy")

	var buf bytes.Buffer
	if err := tr.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("got %d lines, want 2", len(lines))
	}
	var span struct {
		Type  string         `json:"type"`
		TsUs  int64          `json:"ts_us"`
		DurUs int64          `json:"dur_us"`
		Track string         `json:"track"`
		Name  string         `json:"name"`
		Args  map[string]any `json:"args"`
	}
	if err := json.Unmarshal([]byte(lines[0]), &span); err != nil {
		t.Fatal(err)
	}
	if span.Type != "span" || span.TsUs != 1e6 || span.DurUs != 3e6 ||
		span.Track != "vm-1" || span.Args["to"] != "pm-2" || span.Args["rounds"] != 3.0 {
		t.Fatalf("span line = %+v", span)
	}
}

func TestWriteChromeTrace(t *testing.T) {
	clk := &fakeClock{}
	tr := New(clk)
	sp := tr.Begin("pm-0", "power", "powered-off")
	clk.t = 2 * time.Second
	sp.End()
	tr.Instant("pm-1", "power", "power-on")

	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			Ts   int64          `json:"ts"`
			Dur  int64          `json:"dur"`
			Pid  int            `json:"pid"`
			Tid  int            `json:"tid"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("invalid chrome trace: %v", err)
	}
	// 2 tracks x 2 metadata events + 2 real events.
	if len(doc.TraceEvents) != 6 {
		t.Fatalf("got %d events, want 6", len(doc.TraceEvents))
	}
	byPh := map[string]int{}
	for _, ev := range doc.TraceEvents {
		byPh[ev.Ph]++
	}
	if byPh["M"] != 4 || byPh["X"] != 1 || byPh["i"] != 1 {
		t.Fatalf("phase counts = %v", byPh)
	}
	// First metadata event names the first-seen track.
	md := doc.TraceEvents[0]
	if md.Name != "thread_name" || md.Args["name"] != "pm-0" {
		t.Fatalf("first metadata event = %+v", md)
	}
	// The X event carries its duration in microseconds.
	for _, ev := range doc.TraceEvents {
		if ev.Ph == "X" && ev.Dur != 2e6 {
			t.Fatalf("span dur = %d, want 2e6", ev.Dur)
		}
	}
}

func TestExportDeterminism(t *testing.T) {
	build := func() *Tracer {
		clk := &fakeClock{}
		tr := New(clk)
		for i := 0; i < 50; i++ {
			clk.t = time.Duration(i) * time.Second
			sp := tr.Begin("track-a", "cat", "span", F("i", float64(i)), S("k", "v"))
			tr.Instant("track-b", "cat", "inst", F("i", float64(i)))
			clk.t += 500 * time.Millisecond
			sp.End(S("done", "yes"))
		}
		tr.Begin("track-c", "cat", "open")
		return tr
	}
	for _, format := range []ExportFormat{FormatJSONL, FormatChrome} {
		var a, b bytes.Buffer
		if err := build().Write(&a, format); err != nil {
			t.Fatal(err)
		}
		if err := build().Write(&b, format); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(a.Bytes(), b.Bytes()) {
			t.Fatalf("%s export not byte-identical across identical runs", format)
		}
	}
}

func TestWriteUnknownFormat(t *testing.T) {
	tr := New(nil)
	if err := tr.Write(&bytes.Buffer{}, "xml"); err == nil {
		t.Fatal("expected error for unknown format")
	}
}
