package trace

import (
	"math"
	"math/rand"
	"testing"
)

func TestHistogramMergePairwise(t *testing.T) {
	a, b := &Histogram{}, &Histogram{}
	for _, v := range []float64{1, 2, 4} {
		a.Observe(v)
	}
	for _, v := range []float64{0.5, 8, -1} {
		b.Observe(v)
	}
	a.Merge(b)
	if a.Count() != 6 {
		t.Fatalf("merged count = %d, want 6", a.Count())
	}
	if a.Min() != -1 || a.Max() != 8 {
		t.Fatalf("merged min/max = %g/%g, want -1/8", a.Min(), a.Max())
	}
	if got, want := a.Sum(), 14.5; got != want {
		t.Fatalf("merged sum = %g, want %g", got, want)
	}
	// Merging an empty or nil histogram changes nothing.
	before := *a
	a.Merge(&Histogram{})
	a.Merge(nil)
	if *a != before {
		t.Fatal("merging empty/nil histograms mutated the receiver")
	}
	// Nil receiver is a no-op, not a panic.
	var nilH *Histogram
	nilH.Merge(b)
}

// TestMergeHistogramsOrderIndependent is the window-digest associativity
// guarantee: merging the same set of per-label digests in any order must
// produce bit-identical results — bucket counts, quantiles, and the
// floating-point sum — because the merged bytes end up in deterministic
// JSONL outputs compared across worker counts.
func TestMergeHistogramsOrderIndependent(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	hs := make([]*Histogram, 9)
	for i := range hs {
		hs[i] = &Histogram{}
		for j := 0; j < 50+i; j++ {
			// Spread magnitudes so naive summation order would visibly
			// change the float result.
			hs[i].Observe(math.Exp2(float64(rng.Intn(40) - 10)))
		}
	}
	base := MergeHistograms(hs)
	for trial := 0; trial < 10; trial++ {
		perm := make([]*Histogram, len(hs))
		for i, j := range rng.Perm(len(hs)) {
			perm[i] = hs[j]
		}
		got := MergeHistograms(perm)
		if got.Count() != base.Count() || got.zero != base.zero {
			t.Fatalf("trial %d: count/zero differ", trial)
		}
		if math.Float64bits(got.Sum()) != math.Float64bits(base.Sum()) {
			t.Fatalf("trial %d: sum bits differ: %x vs %x", trial,
				math.Float64bits(got.Sum()), math.Float64bits(base.Sum()))
		}
		if math.Float64bits(got.Min()) != math.Float64bits(base.Min()) ||
			math.Float64bits(got.Max()) != math.Float64bits(base.Max()) {
			t.Fatalf("trial %d: min/max differ", trial)
		}
		if got.buckets != base.buckets {
			t.Fatalf("trial %d: buckets differ", trial)
		}
		if got.Stats() != base.Stats() {
			t.Fatalf("trial %d: stats differ: %+v vs %+v", trial, got.Stats(), base.Stats())
		}
	}
	// Nil and empty entries are skipped, not merged or crashed on.
	withNils := append([]*Histogram{nil, {}}, hs...)
	if got := MergeHistograms(withNils); got.Stats() != base.Stats() {
		t.Fatal("nil/empty entries changed the merge result")
	}
}

func TestMergeAllEmptyRegistries(t *testing.T) {
	dst := NewRegistry()
	// Merging a batch of brand-new registries (no metrics at all) must be
	// a no-op that leaves the destination usable.
	dst.MergeAll([]*Registry{NewRegistry(), NewRegistry(), nil})
	if s := dst.Snapshot(); len(s.Counters) != 0 || len(s.Gauges) != 0 || len(s.Histograms) != 0 {
		t.Fatalf("merging empty registries materialized metrics: %+v", s)
	}
	// A registry holding only empty (zero-count) histograms still
	// materializes the names, so merged snapshots keep a stable key set.
	src := NewRegistry()
	src.Histogram("h.empty")
	dst.MergeAll([]*Registry{src})
	s := dst.Snapshot()
	if _, ok := s.Histograms["h.empty"]; !ok {
		t.Fatal("empty histogram name was not materialized by MergeAll")
	}
	if s.Histograms["h.empty"].Count != 0 {
		t.Fatal("empty histogram gained observations")
	}
}

func TestSingleObservationQuantiles(t *testing.T) {
	h := &Histogram{}
	h.Observe(3.7)
	// With one observation every quantile is that observation: the bucket
	// estimate is clamped to the observed [min, max].
	for _, q := range []float64{0, 0.25, 0.5, 0.95, 0.99, 1} {
		if got := h.Quantile(q); got != 3.7 {
			t.Fatalf("Quantile(%g) = %g, want 3.7", q, got)
		}
	}
	// Same for a single non-positive observation (the zero bucket).
	hz := &Histogram{}
	hz.Observe(-2)
	for _, q := range []float64{0, 0.5, 1} {
		if got := hz.Quantile(q); got != -2 {
			t.Fatalf("zero-bucket Quantile(%g) = %g, want -2", q, got)
		}
	}
}

func TestFractionAtOrBelow(t *testing.T) {
	var nilH *Histogram
	if got := nilH.FractionAtOrBelow(1); got != 1 {
		t.Fatalf("nil FractionAtOrBelow = %g, want 1", got)
	}
	h := &Histogram{}
	if got := h.FractionAtOrBelow(1); got != 1 {
		t.Fatalf("empty FractionAtOrBelow = %g, want 1", got)
	}
	for _, v := range []float64{1, 2, 4, 8, 100} {
		h.Observe(v)
	}
	if got := h.FractionAtOrBelow(0.5); got != 0 {
		t.Fatalf("below-min fraction = %g, want 0", got)
	}
	if got := h.FractionAtOrBelow(100); got != 1 {
		t.Fatalf("at-max fraction = %g, want 1", got)
	}
	if got := h.FractionAtOrBelow(9); got < 0.6 || got > 1 {
		t.Fatalf("mid fraction = %g, want ~0.8 within bucket resolution", got)
	}
}
