package trace

import (
	"fmt"
	"io"
	"math"
	"sort"
)

// Counter is a monotonically increasing sum. A nil *Counter accepts the
// full API as a no-op.
type Counter struct {
	v float64
}

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Add increases the counter by n.
func (c *Counter) Add(n float64) {
	if c == nil {
		return
	}
	c.v += n
}

// Value returns the accumulated sum.
func (c *Counter) Value() float64 {
	if c == nil {
		return 0
	}
	return c.v
}

// Gauge is a last-value-wins observation. A nil *Gauge is a no-op.
type Gauge struct {
	v float64
}

// Set records the current value.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.v = v
}

// Value returns the most recently set value.
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return g.v
}

// Histogram bucket layout: observations are spread over log-scale
// buckets, histSubBuckets per octave (factor of 2), covering 2^-20
// through 2^+43 — comfortably nanoseconds to weeks when observing
// seconds, or bytes to terabytes when observing sizes. Quantiles are
// estimated from bucket boundaries, so their relative error is bounded
// by one bucket width (about 9% with 8 sub-buckets per octave).
const (
	histSubBuckets = 8
	histMinExp     = -20
	histMaxExp     = 43
	histBuckets    = (histMaxExp - histMinExp) * histSubBuckets
)

// Histogram is a streaming log-bucketed distribution. Memory is fixed
// regardless of observation count. A nil *Histogram is a no-op.
type Histogram struct {
	count   uint64
	sum     float64
	min     float64
	max     float64
	zero    uint64 // observations <= 0
	buckets [histBuckets]uint64
}

func bucketIndex(v float64) int {
	idx := int(math.Floor((math.Log2(v) - histMinExp) * histSubBuckets))
	if idx < 0 {
		return 0
	}
	if idx >= histBuckets {
		return histBuckets - 1
	}
	return idx
}

// bucketUpper is the upper bound of bucket idx.
func bucketUpper(idx int) float64 {
	return math.Exp2(float64(idx+1)/histSubBuckets + histMinExp)
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	if h.count == 0 || v < h.min {
		h.min = v
	}
	if h.count == 0 || v > h.max {
		h.max = v
	}
	h.count++
	h.sum += v
	if v <= 0 {
		h.zero++
		return
	}
	h.buckets[bucketIndex(v)]++
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count
}

// Sum returns the sum of observations.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return h.sum
}

// Mean returns the average observation, or 0 when empty.
func (h *Histogram) Mean() float64 {
	if h == nil || h.count == 0 {
		return 0
	}
	return h.sum / float64(h.count)
}

// Min returns the smallest observation, or 0 when empty.
func (h *Histogram) Min() float64 {
	if h == nil {
		return 0
	}
	return h.min
}

// Max returns the largest observation, or 0 when empty.
func (h *Histogram) Max() float64 {
	if h == nil {
		return 0
	}
	return h.max
}

// Quantile estimates the q-quantile (q in [0, 1]) from the bucket
// boundaries, clamped to the observed [min, max]. Returns 0 when empty.
func (h *Histogram) Quantile(q float64) float64 {
	if h == nil || h.count == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(h.count)
	cum := float64(h.zero)
	if cum >= rank && h.zero > 0 {
		return clampf(0, h.min, h.max)
	}
	for i := 0; i < histBuckets; i++ {
		if h.buckets[i] == 0 {
			continue
		}
		cum += float64(h.buckets[i])
		if cum >= rank {
			return clampf(bucketUpper(i), h.min, h.max)
		}
	}
	return h.max
}

func clampf(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// Registry holds named metrics published by the instrumented subsystems.
// Metric accessors register on first use and return the same instance
// thereafter. A nil *Registry returns nil metrics, whose methods are all
// no-ops — disabled metrics cost only nil checks. Not safe for
// concurrent use (the simulation stack is single-goroutine).
type Registry struct {
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
	}
}

// Counter returns the named counter, registering it on first use.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, registering it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, registering it on first use.
func (r *Registry) Histogram(name string) *Histogram {
	if r == nil {
		return nil
	}
	h, ok := r.hists[name]
	if !ok {
		h = &Histogram{}
		r.hists[name] = h
	}
	return h
}

// Fprint renders every registered metric as an aligned table, sorted by
// name within each metric type. Histograms print count, mean, p50, p95,
// p99 and max.
func (r *Registry) Fprint(w io.Writer) {
	if r == nil {
		return
	}
	type row struct{ kind, name, value string }
	rows := make([]row, 0, len(r.counters)+len(r.gauges)+len(r.hists))
	for _, name := range sortedKeys(r.counters) {
		rows = append(rows, row{"counter", name, fmtMetric(r.counters[name].Value())})
	}
	for _, name := range sortedKeys(r.gauges) {
		rows = append(rows, row{"gauge", name, fmtMetric(r.gauges[name].Value())})
	}
	for _, name := range sortedKeys(r.hists) {
		h := r.hists[name]
		rows = append(rows, row{"histogram", name, fmt.Sprintf(
			"count=%d mean=%s p50=%s p95=%s p99=%s max=%s",
			h.Count(), fmtMetric(h.Mean()), fmtMetric(h.Quantile(0.50)),
			fmtMetric(h.Quantile(0.95)), fmtMetric(h.Quantile(0.99)), fmtMetric(h.Max()))})
	}
	nameWidth := 0
	for _, rw := range rows {
		if len(rw.name) > nameWidth {
			nameWidth = len(rw.name)
		}
	}
	for _, rw := range rows {
		fmt.Fprintf(w, "%-9s  %-*s  %s\n", rw.kind, nameWidth, rw.name, rw.value)
	}
}

func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func fmtMetric(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return fmt.Sprintf("%.0f", v)
	}
	return fmt.Sprintf("%.4g", v)
}
