package trace

import (
	"encoding/json"
	"testing"
)

func TestSnapshotSummarizes(t *testing.T) {
	r := NewRegistry()
	r.Counter("jobs").Add(3)
	r.Gauge("util").Set(0.7)
	for i := 1; i <= 100; i++ {
		r.Histogram("jct").Observe(float64(i))
	}
	s := r.Snapshot()
	if got := s.Counters["jobs"]; got != 3 {
		t.Errorf("counter jobs = %v, want 3", got)
	}
	if got := s.Gauges["util"]; got != 0.7 {
		t.Errorf("gauge util = %v, want 0.7", got)
	}
	h := s.Histograms["jct"]
	if h.Count != 100 || h.Min != 1 || h.Max != 100 {
		t.Errorf("hist jct = %+v, want count 100 min 1 max 100", h)
	}
	if h.P50 < 40 || h.P50 > 60 {
		t.Errorf("hist jct p50 = %v, want ~50", h.P50)
	}
}

func TestMergeIsOrderIndependent(t *testing.T) {
	build := func(vals []float64, gauge float64) *Registry {
		r := NewRegistry()
		r.Counter("n").Add(float64(len(vals)))
		r.Gauge("peak").Set(gauge)
		for _, v := range vals {
			r.Histogram("d").Observe(v)
		}
		return r
	}
	a := func() *Registry { return build([]float64{1, 2, 3}, 0.4) }
	b := func() *Registry { return build([]float64{10, 20}, 0.9) }

	ab := NewRegistry()
	ab.Merge(a())
	ab.Merge(b())
	ba := NewRegistry()
	ba.Merge(b())
	ba.Merge(a())

	sa, _ := json.Marshal(ab.Snapshot())
	sb, _ := json.Marshal(ba.Snapshot())
	if string(sa) != string(sb) {
		t.Fatalf("merge order changed snapshot:\n%s\n%s", sa, sb)
	}

	s := ab.Snapshot()
	if s.Counters["n"] != 5 {
		t.Errorf("merged counter n = %v, want 5", s.Counters["n"])
	}
	if s.Gauges["peak"] != 0.9 {
		t.Errorf("merged gauge peak = %v, want max 0.9", s.Gauges["peak"])
	}
	h := s.Histograms["d"]
	if h.Count != 5 || h.Min != 1 || h.Max != 20 || h.Mean != 36.0/5 {
		t.Errorf("merged hist d = %+v", h)
	}
}

func TestEventsExposesArgs(t *testing.T) {
	tr := New(&fakeClock{})
	tr.Instant("pm-0", "power", "on", S("why", "boot"), F("watts", 120))
	sp := tr.Begin("pm-0", "task", "m-0")
	sp.End()
	evs := tr.Events()
	if len(evs) != 2 {
		t.Fatalf("len(Events()) = %d, want 2", len(evs))
	}
	if !evs[0].Instant || evs[0].Name != "on" {
		t.Errorf("event 0 = %+v, want instant 'on'", evs[0])
	}
	if txt, ok := evs[0].Args[0].Text(); !ok || txt != "boot" {
		t.Errorf("arg 0 text = %q/%v, want boot/true", txt, ok)
	}
	if num, ok := evs[0].Args[1].Number(); !ok || num != 120 {
		t.Errorf("arg 1 number = %v/%v, want 120/true", num, ok)
	}
	if evs[1].Instant || evs[1].Track != "pm-0" {
		t.Errorf("event 1 = %+v, want span on pm-0", evs[1])
	}
}
