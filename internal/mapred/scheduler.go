package mapred

import "repro/internal/resource"

// Scheduler picks the next task for a free slot. Implementations mirror
// the two Hadoop schedulers used in the paper: plain FIFO (the default
// MapReduce scheduler of Figure 8(d)'s baseline) and the Fair Scheduler
// the testbed runs.
type Scheduler interface {
	// Name identifies the policy.
	Name() string
	// NextTask returns a pending task of the kind for the tracker, or
	// nil when nothing is assignable.
	NextTask(jt *JobTracker, tr *TaskTracker, kind TaskKind) *Task
}

// FIFO serves jobs strictly in submission order.
type FIFO struct{}

var _ Scheduler = FIFO{}

// Name returns "fifo".
func (FIFO) Name() string { return "fifo" }

// NextTask returns the first pending task of the oldest job that has one.
// activeJobs holds exactly the non-done jobs in submission order, so the
// walk skips completed history instead of filtering it per call.
func (FIFO) NextTask(jt *JobTracker, tr *TaskTracker, kind TaskKind) *Task {
	for _, j := range jt.activeJobs {
		if t := j.pendingTask(kind, tr); t != nil {
			return t
		}
	}
	return nil
}

// Fair approximates the Hadoop Fair Scheduler: the job whose running task
// count is furthest below its weighted fair share is served first.
type Fair struct{}

var _ Scheduler = Fair{}

// Name returns "fair".
func (Fair) Name() string { return "fair" }

// NextTask picks the most under-served job with pending work.
func (Fair) NextTask(jt *JobTracker, tr *TaskTracker, kind TaskKind) *Task {
	var best *Job
	bestDeficit := 0.0
	var totalWeight float64
	for _, j := range jt.activeJobs {
		w := j.Weight
		if w <= 0 {
			w = 1
		}
		totalWeight += w
	}
	if len(jt.activeJobs) == 0 {
		return nil
	}
	totalSlots := float64(len(jt.trackers) * (jt.cfg.MapSlots + jt.cfg.ReduceSlots))
	for _, j := range jt.activeJobs {
		if !j.hasPending(kind) {
			continue
		}
		w := j.Weight
		if w <= 0 {
			w = 1
		}
		share := totalSlots * w / totalWeight
		deficit := share - float64(j.runningTasks())
		if best == nil || deficit > bestDeficit {
			best = j
			bestDeficit = deficit
		}
	}
	if best == nil {
		return nil
	}
	return best.pendingTask(kind, tr)
}

// demandServe is the storage-side demand of a split-architecture input
// stream.
func demandServe(diskRate float64) resource.Vector {
	return resource.NewVector(0.03, 32, diskRate, diskRate*0.15)
}
