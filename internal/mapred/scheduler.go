package mapred

import (
	"repro/internal/dfs"
	"repro/internal/resource"
)

// Scheduler picks the next task for a free slot. Implementations mirror
// the two Hadoop schedulers used in the paper: plain FIFO (the default
// MapReduce scheduler of Figure 8(d)'s baseline) and the Fair Scheduler
// the testbed runs.
type Scheduler interface {
	// Name identifies the policy.
	Name() string
	// NextTask returns a pending task of the kind for the tracker, or
	// nil when nothing is assignable.
	NextTask(jt *JobTracker, tr *TaskTracker, kind TaskKind) *Task
}

// FIFO serves jobs strictly in submission order.
type FIFO struct{}

var _ Scheduler = FIFO{}

// Name returns "fifo".
func (FIFO) Name() string { return "fifo" }

// NextTask returns the first pending task of the oldest job that has one.
// activeJobs holds exactly the non-done jobs in submission order, so the
// walk skips completed history instead of filtering it per call.
func (FIFO) NextTask(jt *JobTracker, tr *TaskTracker, kind TaskKind) *Task {
	for _, j := range jt.activeJobs {
		if t := j.pendingTask(kind, tr); t != nil {
			return t
		}
	}
	return nil
}

// Fair approximates the Hadoop Fair Scheduler: the job whose running task
// count is furthest below its weighted fair share is served first.
type Fair struct{}

var _ Scheduler = Fair{}

// Name returns "fair".
func (Fair) Name() string { return "fair" }

// NextTask picks the most under-served job with pending work.
func (Fair) NextTask(jt *JobTracker, tr *TaskTracker, kind TaskKind) *Task {
	var best *Job
	bestDeficit := 0.0
	var totalWeight float64
	for _, j := range jt.activeJobs {
		w := j.Weight
		if w <= 0 {
			w = 1
		}
		totalWeight += w
	}
	if len(jt.activeJobs) == 0 {
		return nil
	}
	totalSlots := float64(len(jt.trackers) * (jt.cfg.MapSlots + jt.cfg.ReduceSlots))
	for _, j := range jt.activeJobs {
		if !j.hasPending(kind) {
			continue
		}
		w := j.Weight
		if w <= 0 {
			w = 1
		}
		share := totalSlots * w / totalWeight
		deficit := share - float64(j.runningTasks())
		if best == nil || deficit > bestDeficit {
			best = j
			bestDeficit = deficit
		}
	}
	if best == nil {
		return nil
	}
	return best.pendingTask(kind, tr)
}

// LocalityGreedy serves whichever job can run a node-local map on the
// requesting tracker, falling back to submission order when none can —
// a delay-scheduling-flavoured alternative that trades fairness for
// data-local reads.
type LocalityGreedy struct{}

var _ Scheduler = LocalityGreedy{}

// Name returns "locality-greedy".
func (LocalityGreedy) Name() string { return "locality-greedy" }

// NextTask prefers, across all active jobs in submission order, the
// first task whose input block is node-local to the tracker; reduces
// (which have no input block) fall back to FIFO order.
func (LocalityGreedy) NextTask(jt *JobTracker, tr *TaskTracker, kind TaskKind) *Task {
	var fallback *Task
	for _, j := range jt.activeJobs {
		t := j.pendingTask(kind, tr)
		if t == nil {
			continue
		}
		if kind == MapTask && t.Block != nil &&
			jt.fs.BlockLocality(t.Block, tr.Storage) == dfs.NodeLocal {
			return t
		}
		if fallback == nil {
			fallback = t
		}
	}
	return fallback
}

// JobDriven serves the job closest to completion first, after the
// job-driven slot assignment of Lee & Lin ("Hybrid Job-driven
// Scheduling for Virtual MapReduce Clusters"): draining the smallest
// remainder frees its slots and memory footprint for the jobs queued
// behind it, shrinking the number of jobs resident at once.
type JobDriven struct{}

var _ Scheduler = JobDriven{}

// Name returns "job-driven".
func (JobDriven) Name() string { return "job-driven" }

// NextTask picks the schedulable job with the fewest unscheduled tasks
// left, ties broken by submission order.
func (JobDriven) NextTask(jt *JobTracker, tr *TaskTracker, kind TaskKind) *Task {
	var best *Job
	bestLeft := 0
	for _, j := range jt.activeJobs {
		if !j.hasPending(kind) {
			continue
		}
		left := j.pendingMaps + j.pendingReds
		if best == nil || left < bestLeft {
			best = j
			bestLeft = left
		}
	}
	if best == nil {
		return nil
	}
	return best.pendingTask(kind, tr)
}

// demandServe is the storage-side demand of a split-architecture input
// stream.
func demandServe(diskRate float64) resource.Vector {
	return resource.NewVector(0.03, 32, diskRate, diskRate*0.15)
}
