// Package mapred simulates a Hadoop-v0.22-style MapReduce framework on
// top of the cluster and dfs substrates: a JobTracker with pluggable
// schedulers (FIFO and Fair), TaskTrackers with fixed map/reduce slots,
// locality-aware map placement, a shuffle model whose network demand
// depends on where map outputs physically live, speculative execution of
// stragglers, and both the combined and the split (separate compute and
// storage nodes) deployment architectures from the paper's Figure 3.
package mapred

import (
	"fmt"
)

// JobSpec describes the workload shape of a MapReduce job. Map tasks
// stream their input block; reduce tasks shuffle, merge and write output.
// All rates are full-speed values on unloaded native hardware; the
// cluster kernel slows tasks under contention and virtualization.
type JobSpec struct {
	// Name identifies the benchmark (e.g. "Sort").
	Name string
	// InputMB is the total input data size. The framework materializes
	// the input in the DFS at submit time if it does not already exist.
	InputMB float64
	// Reduces is the number of reduce tasks (0 for map-only jobs).
	Reduces int

	// MapStreamMBps is the rate at which one map task consumes input at
	// full speed (pipeline bound).
	MapStreamMBps float64
	// MapCPUPerMB is CPU-seconds of map computation per MB of input; the
	// effective stream rate is additionally bounded by one core.
	MapCPUPerMB float64
	// MapMemMB is a map task's resident memory.
	MapMemMB float64
	// FixedMapWork, when positive, makes each map task a pure
	// compute-bound unit of this many CPU-seconds, ignoring the stream
	// model (used by PiEst-style jobs whose input is negligible).
	FixedMapWork float64
	// FixedMapTasks forces the number of map tasks when FixedMapWork is
	// used; otherwise one map task runs per DFS block.
	FixedMapTasks int

	// ShuffleRatio is map-output MB per input MB (Sort ≈ 1, DistGrep ≈ 0).
	ShuffleRatio float64

	// ReduceStreamMBps is the rate at which one reduce task consumes
	// shuffle data at full speed.
	ReduceStreamMBps float64
	// ReduceCPUPerMB is CPU-seconds per MB of shuffle input.
	ReduceCPUPerMB float64
	// ReduceMemMB is a reduce task's resident memory.
	ReduceMemMB float64
	// OutputRatio is final-output MB per shuffle MB.
	OutputRatio float64

	// TaskOverheadSec is the fixed per-attempt startup cost (JVM launch,
	// task setup); defaults to 1.5 s.
	TaskOverheadSec float64

	// InMemory keeps intermediate data in RAM instead of spilling to
	// disk, in the style of Spark's resilient distributed datasets —
	// the paper's named future work. Map outputs are cached in the map
	// task's memory and reduces merge in memory, so disk traffic shrinks
	// to input reads and final output writes while resident memory grows
	// by the cached partition sizes. On 1 GB guests this trades I/O
	// pressure for paging pressure, exactly the Spark-on-small-VMs
	// trade-off.
	InMemory bool
}

// Validate reports structural problems in the spec.
func (s JobSpec) Validate() error {
	if s.Name == "" {
		return fmt.Errorf("mapred: spec has no name")
	}
	if s.FixedMapWork <= 0 {
		if s.InputMB <= 0 {
			return fmt.Errorf("mapred: %s: InputMB must be positive", s.Name)
		}
		if s.MapStreamMBps <= 0 {
			return fmt.Errorf("mapred: %s: MapStreamMBps must be positive", s.Name)
		}
	} else if s.FixedMapTasks <= 0 {
		return fmt.Errorf("mapred: %s: FixedMapWork requires FixedMapTasks", s.Name)
	}
	if s.Reduces > 0 && s.ShuffleRatio > 0 && s.ReduceStreamMBps <= 0 {
		return fmt.Errorf("mapred: %s: shuffling job needs ReduceStreamMBps", s.Name)
	}
	if s.Reduces < 0 {
		return fmt.Errorf("mapred: %s: negative Reduces", s.Name)
	}
	return nil
}

// WithInputMB returns a copy of the spec with a different input size, the
// knob every data-size sweep in the evaluation turns.
func (s JobSpec) WithInputMB(mb float64) JobSpec {
	s.InputMB = mb
	return s
}

// WithReduces returns a copy with a different reduce count.
func (s JobSpec) WithReduces(n int) JobSpec {
	s.Reduces = n
	return s
}

func (s JobSpec) overhead() float64 {
	if s.TaskOverheadSec > 0 {
		return s.TaskOverheadSec
	}
	return 1.5
}

// effectiveMapStream is the map stream rate after the one-core CPU bound.
func (s JobSpec) effectiveMapStream() float64 {
	rate := s.MapStreamMBps
	if s.MapCPUPerMB > 0 && 1/s.MapCPUPerMB < rate {
		rate = 1 / s.MapCPUPerMB
	}
	return rate
}

// effectiveReduceStream is the reduce stream rate after the one-core CPU
// bound.
func (s JobSpec) effectiveReduceStream() float64 {
	rate := s.ReduceStreamMBps
	if rate <= 0 {
		rate = 40
	}
	if s.ReduceCPUPerMB > 0 && 1/s.ReduceCPUPerMB < rate {
		rate = 1 / s.ReduceCPUPerMB
	}
	return rate
}
