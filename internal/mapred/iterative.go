package mapred

import (
	"fmt"
	"time"
)

// IterativeSpec describes a Twister-style iterative MapReduce
// computation — the paper's named future work. The base job runs
// Iterations times; each iteration's output becomes the next iteration's
// input.
type IterativeSpec struct {
	// Base is the per-iteration job shape.
	Base JobSpec
	// Iterations is the number of rounds (e.g. Kmeans until
	// convergence).
	Iterations int
	// OutputGrowth scales the next iteration's input relative to the
	// current one (1 for Kmeans-style relabeling, <1 for shrinking
	// frontiers). Default 1.
	OutputGrowth float64
}

// Validate reports structural problems.
func (s IterativeSpec) Validate() error {
	if err := s.Base.Validate(); err != nil {
		return err
	}
	if s.Iterations <= 0 {
		return fmt.Errorf("mapred: iterative %s: Iterations must be positive", s.Base.Name)
	}
	if s.OutputGrowth < 0 {
		return fmt.Errorf("mapred: iterative %s: negative OutputGrowth", s.Base.Name)
	}
	return nil
}

// IterativeJob is a chain of per-iteration jobs.
type IterativeJob struct {
	// Spec is the iterative description.
	Spec IterativeSpec
	// OnComplete fires when the last iteration finishes.
	OnComplete func(*IterativeJob)

	jt          *JobTracker
	jobs        []*Job
	submittedAt time.Duration
	doneAt      time.Duration
	done        bool
	failed      error
}

// Jobs returns the per-iteration jobs launched so far.
func (ij *IterativeJob) Jobs() []*Job {
	out := make([]*Job, len(ij.jobs))
	copy(out, ij.jobs)
	return out
}

// Done reports whether every iteration completed.
func (ij *IterativeJob) Done() bool { return ij.done }

// Err returns the error that aborted the chain, if any.
func (ij *IterativeJob) Err() error { return ij.failed }

// JCT is the end-to-end completion time across all iterations, zero
// until done.
func (ij *IterativeJob) JCT() time.Duration {
	if !ij.done {
		return 0
	}
	return ij.doneAt - ij.submittedAt
}

// CompletedIterations counts finished rounds.
func (ij *IterativeJob) CompletedIterations() int {
	n := 0
	for _, j := range ij.jobs {
		if j.Done() {
			n++
		}
	}
	return n
}

// SubmitIterative runs an iterative computation: iteration i+1 is
// submitted from iteration i's completion callback with the scaled input
// size, exactly as Twister re-feeds intermediate results. Fixed-work
// jobs repeat unchanged.
func (jt *JobTracker) SubmitIterative(spec IterativeSpec, onDone func(*IterativeJob)) (*IterativeJob, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	if spec.OutputGrowth == 0 {
		spec.OutputGrowth = 1
	}
	ij := &IterativeJob{Spec: spec, OnComplete: onDone, jt: jt, submittedAt: jt.engine.Now()}
	if err := ij.submitRound(0, spec.Base.InputMB); err != nil {
		return nil, err
	}
	return ij, nil
}

func (ij *IterativeJob) submitRound(round int, inputMB float64) error {
	spec := ij.Spec.Base
	spec.Name = fmt.Sprintf("%s-iter%d", ij.Spec.Base.Name, round)
	if spec.FixedMapWork <= 0 {
		spec.InputMB = inputMB
		if spec.InputMB < 64 {
			spec.InputMB = 64
		}
	}
	job, err := ij.jt.Submit(spec, func(j *Job) { ij.roundDone(round, j) })
	if err != nil {
		ij.failed = err
		return err
	}
	ij.jobs = append(ij.jobs, job)
	return nil
}

func (ij *IterativeJob) roundDone(round int, j *Job) {
	if round+1 >= ij.Spec.Iterations {
		ij.done = true
		ij.doneAt = ij.jt.engine.Now()
		if ij.OnComplete != nil {
			ij.OnComplete(ij)
		}
		return
	}
	next := j.Spec.InputMB * ij.Spec.OutputGrowth
	if err := ij.submitRound(round+1, next); err != nil {
		// The chain aborts; Err exposes the cause.
		ij.done = true
		ij.doneAt = ij.jt.engine.Now()
		if ij.OnComplete != nil {
			ij.OnComplete(ij)
		}
	}
}
