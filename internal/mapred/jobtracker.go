package mapred

import (
	"fmt"
	"math"
	"time"

	"repro/internal/audit"
	"repro/internal/cluster"
	"repro/internal/dfs"
	"repro/internal/perfstat"
	"repro/internal/resource"
	"repro/internal/sim"
	"repro/internal/timeseries"
	"repro/internal/trace"
)

// Config parameterizes the framework. Zero values take the paper's Hadoop
// configuration: 2 map and 2 reduce slots per node, speculative execution
// on.
type Config struct {
	// MapSlots is the number of concurrent map tasks per TaskTracker.
	MapSlots int
	// ReduceSlots is the number of concurrent reduce tasks per
	// TaskTracker.
	ReduceSlots int
	// DisableSpeculation turns straggler backups off.
	DisableSpeculation bool
	// SpeculationInterval is how often the straggler detector scans
	// (default 10 s).
	SpeculationInterval time.Duration
	// SpeculationSlowdown is the fraction of the median attempt speed
	// below which a task is considered a straggler (default 0.5).
	SpeculationSlowdown float64
	// SlotCaps, when non-nil, installs static per-task resource caps on
	// every attempt, modeling vanilla Hadoop's rigid slot containers.
	// HybridMR's Phase II DRM replaces these with dynamically
	// orchestrated caps; the gap between the two is the paper's
	// Figure 8(b,c) improvement.
	SlotCaps *SlotCapPolicy
	// CapacityAware fills slots on the least-loaded physical machines
	// first, the DRM's capacity-guided in-cluster placement. Vanilla
	// Hadoop (the baseline configurations) visits trackers in fixed
	// heartbeat order.
	CapacityAware bool

	// HeartbeatInterval is how often the JobTracker checks tracker
	// liveness (default 3 s, Hadoop's heartbeat period).
	HeartbeatInterval time.Duration
	// TrackerTimeout is how long a tracker may miss heartbeats before it
	// is declared lost and its work re-executed (default 30 s; Hadoop's
	// default was 10 min, scaled down to the simulation's job sizes).
	TrackerTimeout time.Duration
	// TrackerFailureLimit is the failure count at which a tracker is
	// blacklisted with exponential backoff instead of rejoining as soon
	// as it responds again (default 3).
	TrackerFailureLimit int
	// BlacklistBackoff is the initial blacklist hold-off; it doubles
	// with each failure beyond the limit (default 60 s).
	BlacklistBackoff time.Duration

	// DisableMapReexecution is a fault-injection hook: it turns off the
	// re-execution of completed maps whose output node was lost, leaving
	// reducers to consume vanished intermediate data. Only the chaos
	// harness sets it, to prove the invariant checker catches the broken
	// recovery path; it must never be on in a real configuration.
	DisableMapReexecution bool
}

// SlotCapPolicy fixes each task's resource cap as a fraction of its
// node's useful capacity, regardless of what the task actually needs —
// the static containers of slot-based Hadoop.
type SlotCapPolicy struct {
	// CPUFrac caps CPU at this fraction of node capacity per task.
	CPUFrac float64
	// MemFrac caps resident memory likewise.
	MemFrac float64
	// DiskFrac and NetFrac cap the I/O dimensions.
	DiskFrac float64
	NetFrac  float64
}

// DefaultSlotCaps mirrors a 2-map/2-reduce-slot Hadoop node: fixed
// fractions of CPU and memory per task container, and a coarser share of
// each I/O channel (Hadoop never partitioned I/O as strictly as CPU and
// memory).
func DefaultSlotCaps() *SlotCapPolicy {
	return &SlotCapPolicy{CPUFrac: 0.75, MemFrac: 0.25, DiskFrac: 0.45, NetFrac: 0.45}
}

func (c Config) withDefaults() Config {
	if c.MapSlots <= 0 {
		c.MapSlots = 2
	}
	if c.ReduceSlots <= 0 {
		c.ReduceSlots = 2
	}
	if c.SpeculationInterval <= 0 {
		c.SpeculationInterval = 10 * time.Second
	}
	if c.SpeculationSlowdown <= 0 {
		c.SpeculationSlowdown = 0.5
	}
	if c.HeartbeatInterval <= 0 {
		c.HeartbeatInterval = 3 * time.Second
	}
	if c.TrackerTimeout <= 0 {
		c.TrackerTimeout = 30 * time.Second
	}
	if c.TrackerFailureLimit <= 0 {
		c.TrackerFailureLimit = 3
	}
	if c.BlacklistBackoff <= 0 {
		c.BlacklistBackoff = 60 * time.Second
	}
	return c
}

// TaskTracker is one worker node of the framework. In the combined
// architecture Compute and Storage are the same node; in the split
// architecture (Figure 3) Compute is a TaskTracker VM and Storage a
// DataNode VM, usually on the same physical machine.
type TaskTracker struct {
	// Compute is the node running task attempts.
	Compute cluster.Node
	// Storage is the node holding the tracker's DFS blocks.
	Storage cluster.Node

	jt          *JobTracker
	mapRunning  int
	redsRunning int
	disabled    bool

	// idx is the registration order, the deterministic tie-breaker the
	// free-slot index sorts on.
	idx int
	// pm is the physical machine currently backing Compute, tracked so
	// the free-slot index can follow VM migrations.
	pm *cluster.PM
	// pressure caches trackerPressure(tr); it is recomputed only when the
	// backing machine's allocation changed (see JobTracker.flushDirty), so
	// at every schedule() entry it equals the freshly computed value.
	pressure float64
	// inFreeMaps/inFreeReds record membership in the JobTracker's
	// per-task-type free-slot sets.
	inFreeMaps bool
	inFreeReds bool

	// hung simulates a wedged TaskTracker daemon: tasks may keep
	// running, but heartbeats stop and the JobTracker eventually
	// declares the tracker lost.
	hung bool
	// lost marks a tracker the JobTracker has declared dead (heartbeat
	// timeout or machine failure). Lost trackers receive no work until
	// the health checker restores them.
	lost bool
	// lastSeen is the last simulation time the tracker heartbeated.
	lastSeen time.Duration
	// failures counts how many times this tracker has been declared
	// lost; at TrackerFailureLimit it starts getting blacklisted.
	failures int
	// blacklistUntil is the earliest time a responsive tracker may
	// rejoin after being lost.
	blacklistUntil time.Duration
}

// SetDisabled excludes the tracker from task assignment (the IPS
// blacklists trackers on hosts whose interactive tenants are violating
// their SLA). Running attempts are unaffected.
func (tr *TaskTracker) SetDisabled(disabled bool) {
	tr.disabled = disabled
	if !disabled {
		tr.jt.schedule()
	}
}

// Disabled reports whether the tracker is blacklisted.
func (tr *TaskTracker) Disabled() bool { return tr.disabled }

// SetHung wedges (or unwedges) the tracker daemon: a hung tracker stops
// heartbeating and is eventually declared lost, exactly like a real
// TaskTracker JVM stuck in GC. The fault injector drives this.
func (tr *TaskTracker) SetHung(hung bool) {
	if tr.hung == hung {
		return
	}
	tr.hung = hung
	if jt := tr.jt; jt.tracer != nil {
		name := "tracker-hung"
		if !hung {
			name = "tracker-recovered"
		}
		jt.tracer.Instant(tr.Compute.Name(), "mapred", name)
	}
}

// Hung reports whether the tracker daemon is wedged.
func (tr *TaskTracker) Hung() bool { return tr.hung }

// Lost reports whether the JobTracker has declared this tracker dead.
func (tr *TaskTracker) Lost() bool { return tr.lost }

// Failures returns how many times the tracker has been declared lost.
func (tr *TaskTracker) Failures() int { return tr.failures }

// responsive reports whether the tracker could heartbeat right now: its
// daemon is not hung, both of its nodes still sit on live machines, and
// no network partition cuts those machines off from the control plane.
func (tr *TaskTracker) responsive() bool {
	if tr.hung {
		return false
	}
	cm, sm := tr.Compute.Machine(), tr.Storage.Machine()
	if cm == nil || sm == nil {
		return false
	}
	if cm.Failed() || sm.Failed() {
		return false
	}
	return !cm.Isolated() && !sm.Isolated()
}

// isolatedOnly reports whether the tracker is unreachable purely
// because of a network partition: its machines are alive and the daemon
// is not hung, but a partition cuts it off. Such a loss is the
// network's fault, not the node's, so it does not advance the failure
// count toward the blacklist.
func (tr *TaskTracker) isolatedOnly() bool {
	if tr.hung {
		return false
	}
	cm, sm := tr.Compute.Machine(), tr.Storage.Machine()
	if cm == nil || sm == nil || cm.Failed() || sm.Failed() {
		return false
	}
	return cm.Isolated() || sm.Isolated()
}

func (tr *TaskTracker) split() bool { return tr.Compute != tr.Storage }

// FreeSlots returns the tracker's free slots of the kind.
func (tr *TaskTracker) FreeSlots(kind TaskKind) int {
	if kind == MapTask {
		return tr.jt.cfg.MapSlots - tr.mapRunning
	}
	return tr.jt.cfg.ReduceSlots - tr.redsRunning
}

// JobTracker owns the job queue, slot scheduling, the map→reduce barrier
// and speculative execution.
type JobTracker struct {
	engine     *sim.Engine
	fs         *dfs.FileSystem
	cfg        Config
	sched      Scheduler
	trackers   []*TaskTracker
	jobs       []*Job
	nextID     int
	specTick   *sim.Ticker
	healthTick *sim.Ticker
	// attempts holds every running attempt for DRM/IPS introspection.
	attempts map[*Attempt]struct{}

	// Incrementally maintained indexes. They replace the full-fleet scans
	// the scale sweep measured superlinear (jt O(n^2.20) before): schedule()
	// walks only trackers with free slots, ordered by cached machine
	// pressure; RunningAttempts returns a maintained name-sorted list; the
	// DRM iterates per-node attempt buckets instead of rebuilding and
	// sorting the fleet every tick. Every structure is updated at the state
	// transition that changes it, so the scheduling decisions — and with
	// them every simulation byte — are identical to the scan-based code.

	// activeJobs holds non-done jobs in submission order.
	activeJobs []*Job
	// schedulableMaps/Reds count pending tasks whose phase gate is open
	// (maps of JobMapPhase jobs, reduces of JobReducePhase jobs). A zero
	// count proves NextTask would return nil for every tracker, letting
	// schedule() stop without touching the fleet.
	schedulableMaps int
	schedulableReds int
	// freeMaps/freeReds hold trackers with a free slot of each task
	// type, ordered by (cached pressure, registration index) under
	// CapacityAware and by registration index otherwise — exactly the
	// prefix order the old sort.SliceStable produced. Their union is the
	// old single free set; schedule() merge-iterates whichever sets have
	// schedulable work so a map wave never walks map-full trackers.
	freeMaps    []*TaskTracker
	freeReds    []*TaskTracker
	scratchMaps []*TaskTracker
	scratchReds []*TaskTracker
	runningSnap []*Attempt
	// runningSorted holds every running attempt ordered by consumer name,
	// maintained at launch/release instead of rebuilt and re-sorted per
	// RunningAttempts call.
	runningSorted []*Attempt
	// buckets groups running attempts by compute node for the DRM's
	// per-node sweep; bucketOrder keeps the buckets in node-name order.
	buckets     map[cluster.Node]*nodeBucket
	bucketOrder []*nodeBucket
	// Pressure-cache invalidation: each PM hosting a tracker gets a
	// cluster watcher that marks it dirty when its allocation is
	// re-solved; flushDirty refreshes the affected cached pressures at the
	// next schedule() entry.
	dirtySet   map[*cluster.PM]bool
	dirtyPMs   []*cluster.PM
	pmTrackers map[*cluster.PM][]*TaskTracker
	watched    map[*cluster.PM]bool

	tracer     *trace.Tracer
	auditLog   *audit.Log
	perf       *perfstat.Stats
	inv        InvariantSink
	ts         *timeseries.Collector
	countReads bool

	// Cached metric handles; nil (a no-op) until SetTrace installs a
	// registry.
	mSlotWait            *trace.Histogram
	mAttemptDuration     *trace.Histogram
	mSpeculative         *trace.Counter
	mKilled              *trace.Counter
	mRelocations         *trace.Counter
	mJobsCompleted       *trace.Counter
	mTrackersLost        *trace.Counter
	mTrackersRestored    *trace.Counter
	mTrackersBlacklisted *trace.Counter
	mMapsReexecuted      *trace.Counter
	mFetchFailures       *trace.Counter
}

// NewJobTracker creates a framework instance over the given DFS. A nil
// scheduler defaults to FIFO.
func NewJobTracker(engine *sim.Engine, fs *dfs.FileSystem, cfg Config, sched Scheduler) *JobTracker {
	if sched == nil {
		sched = FIFO{}
	}
	return &JobTracker{
		engine:     engine,
		fs:         fs,
		cfg:        cfg.withDefaults(),
		sched:      sched,
		attempts:   make(map[*Attempt]struct{}),
		buckets:    make(map[cluster.Node]*nodeBucket),
		dirtySet:   make(map[*cluster.PM]bool),
		pmTrackers: make(map[*cluster.PM][]*TaskTracker),
		watched:    make(map[*cluster.PM]bool),
	}
}

// nodeBucket groups the running attempts on one compute node, ordered by
// consumer name — the per-node view the DRM sweeps.
type nodeBucket struct {
	node     cluster.Node
	name     string
	attempts []*Attempt
}

// ensureSpecTicker starts the straggler scanner while jobs are active; it
// stops itself when the queue drains so that simulations can run the
// event queue dry.
func (jt *JobTracker) ensureSpecTicker() {
	if jt.cfg.DisableSpeculation || (jt.specTick != nil && !jt.specTick.Stopped()) {
		return
	}
	jt.specTick = sim.NewTicker(jt.engine, jt.cfg.SpeculationInterval, func(time.Duration) {
		// Park on a drained queue, and also when every worker is
		// permanently gone — stalled jobs would otherwise keep this
		// ticker (and simulated time) running forever.
		if len(jt.activeJobs) == 0 || !jt.anyViableTracker() {
			jt.specTick.Stop()
			return
		}
		jt.speculate()
	})
}

// SetTrace installs a tracer and metrics registry. Either may be nil;
// instrumentation is then a no-op.
func (jt *JobTracker) SetTrace(tr *trace.Tracer, reg *trace.Registry) {
	jt.tracer = tr
	jt.countReads = tr != nil || reg != nil
	jt.mSlotWait = reg.Histogram("mapred.task.slot_wait_sec")
	jt.mAttemptDuration = reg.Histogram("mapred.attempt.duration_sec")
	jt.mSpeculative = reg.Counter("mapred.attempts.speculative")
	jt.mKilled = reg.Counter("mapred.attempts.killed")
	jt.mRelocations = reg.Counter("mapred.attempts.relocated")
	jt.mJobsCompleted = reg.Counter("mapred.jobs.completed")
	jt.mTrackersLost = reg.Counter("mapred.trackers.lost")
	jt.mTrackersRestored = reg.Counter("mapred.trackers.restored")
	jt.mTrackersBlacklisted = reg.Counter("mapred.trackers.blacklisted")
	jt.mMapsReexecuted = reg.Counter("mapred.maps.reexecuted")
	jt.mFetchFailures = reg.Counter("mapred.shuffle.fetch_failures")
}

// SetAudit installs a decision log. Slot assignments, speculation
// triggers and tracker blacklisting decisions are recorded on it; a nil
// log keeps auditing off.
func (jt *JobTracker) SetAudit(l *audit.Log) { jt.auditLog = l }

// SetPerf installs a performance-attribution collector; scheduling
// rounds, tracker×kind scans and speculation sweeps are then counted
// and timed. A nil collector keeps the instrumentation off.
func (jt *JobTracker) SetPerf(ps *perfstat.Stats) { jt.perf = ps }

// SetTimeSeries attaches a windowed telemetry collector: slot waits
// become per-job windowed histograms (labeled by job name), and
// pending/running task depths are registered as probes the recorder
// samples each tick, labeled with the given partition label (hybrid
// deployments run two JobTrackers against one collector). A nil
// collector keeps the series off.
func (jt *JobTracker) SetTimeSeries(ts *timeseries.Collector, label string) {
	jt.ts = ts
	ts.Probe("mapred.tasks.pending", label, func() float64 {
		return float64(jt.schedulableMaps + jt.schedulableReds)
	})
	ts.Probe("mapred.tasks.running", label, func() float64 {
		return float64(len(jt.runningSorted))
	})
}

// InvariantSink receives scheduling safety events; the invariant
// checker implements it.
type InvariantSink interface {
	// AttemptStarted fires after an attempt is launched on a tracker.
	AttemptStarted(jt *JobTracker, a *Attempt)
	// AttemptFinished fires when an attempt completes (before the task
	// and job state advance).
	AttemptFinished(jt *JobTracker, a *Attempt)
}

// SetInvariants installs an invariant sink. A nil sink keeps checking
// off.
func (jt *JobTracker) SetInvariants(s InvariantSink) { jt.inv = s }

// LiveTrackers counts trackers able to accept work right now: enabled,
// not declared lost, and responsive (machines alive, daemon not hung,
// no partition cutting them off). Phase I consults it to avoid placing
// a job into a partition whose failure domain is currently down.
func (jt *JobTracker) LiveTrackers() int {
	n := 0
	for _, tr := range jt.trackers {
		if !tr.disabled && !tr.lost && tr.responsive() {
			n++
		}
	}
	return n
}

// AnyLiveTracker reports whether at least one tracker can accept work
// right now — the early-exit form of LiveTrackers() > 0 for callers that
// only need existence, not the count (Phase I's failure-domain check runs
// per submission; counting the whole fleet each time is O(n²) over a run).
func (jt *JobTracker) AnyLiveTracker() bool {
	for _, tr := range jt.trackers {
		if !tr.disabled && !tr.lost && tr.responsive() {
			return true
		}
	}
	return false
}

// FleetViable reports whether at least one tracker could still run
// work, now or after a repair — the condition under which parked jobs
// are a livelock rather than a clean fleet-dead stall.
func (jt *JobTracker) FleetViable() bool { return jt.anyViableTracker() }

// Close stops the background speculation and health scanners.
func (jt *JobTracker) Close() {
	if jt.specTick != nil {
		jt.specTick.Stop()
	}
	if jt.healthTick != nil {
		jt.healthTick.Stop()
	}
}

// Engine returns the simulation engine.
func (jt *JobTracker) Engine() *sim.Engine { return jt.engine }

// FS returns the underlying filesystem.
func (jt *JobTracker) FS() *dfs.FileSystem { return jt.fs }

// AddTracker registers a combined-architecture worker: one node acting as
// both TaskTracker and DataNode.
func (jt *JobTracker) AddTracker(node cluster.Node) *TaskTracker {
	return jt.AddSplitTracker(node, node)
}

// AddSplitTracker registers a split-architecture worker with separate
// compute and storage nodes. The storage node is registered as a DFS
// DataNode.
func (jt *JobTracker) AddSplitTracker(compute, storage cluster.Node) *TaskTracker {
	tr := &TaskTracker{Compute: compute, Storage: storage, jt: jt, idx: len(jt.trackers)}
	tr.lastSeen = jt.engine.Now()
	jt.fs.AddDataNode(storage)
	jt.trackers = append(jt.trackers, tr)
	if jt.cfg.CapacityAware {
		tr.pm = compute.Machine()
		if tr.pm != nil {
			jt.pmTrackers[tr.pm] = append(jt.pmTrackers[tr.pm], tr)
			jt.watchPM(tr.pm)
		}
		if jt.perf != nil {
			jt.perf.C.JTPressureProbes++
		}
		tr.pressure = trackerPressure(tr)
	}
	jt.syncFree(tr) // a fresh tracker always has free slots
	if len(jt.activeJobs) > 0 {
		// Capacity added mid-run (e.g. after a fleet-dead park): revive
		// the failure detector and straggler scanner, and offer the
		// queue to the new worker.
		jt.ensureHealthTicker()
		jt.ensureSpecTicker()
		jt.schedule()
	}
	return tr
}

// Trackers returns the registered workers.
func (jt *JobTracker) Trackers() []*TaskTracker {
	out := make([]*TaskTracker, len(jt.trackers))
	copy(out, jt.trackers)
	return out
}

// Jobs returns jobs that are not yet complete, in submission order.
func (jt *JobTracker) Jobs() []*Job {
	out := make([]*Job, len(jt.activeJobs))
	copy(out, jt.activeJobs)
	return out
}

// RunningAttempts returns every attempt currently executing, ordered by
// consumer name; the Phase II DRM and IPS iterate this to observe and
// control MapReduce load.
//
// Determinism contract (established in PR 6, preserved by the index
// refactor): the order is always ascending consumer name, never a map
// iteration order — map order would leak into the DRM's cap-adjustment
// sequence and randomize the simulation across runs. The list is now
// maintained incrementally (each attempt is inserted at its sorted
// position at launch and removed at release) instead of rebuilt and
// re-sorted per call; jt.attempts_sorted keeps its PR 6 semantics of
// counting elements returned, not sort comparisons, because comparison
// tallies of a map-fed sort were run-dependent even when the sorted
// result was identical.
func (jt *JobTracker) RunningAttempts() []*Attempt {
	if jt.perf != nil {
		jt.perf.C.JTAttemptsSorted += int64(len(jt.runningSorted))
	}
	out := make([]*Attempt, len(jt.runningSorted))
	copy(out, jt.runningSorted)
	return out
}

// Submit enqueues a job. Input data is materialized in the DFS
// (spread across DataNodes) if this spec's input file does not exist yet.
// OnComplete fires when the job finishes.
func (jt *JobTracker) Submit(spec JobSpec, onComplete func(*Job)) (*Job, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	if len(jt.trackers) == 0 {
		return nil, fmt.Errorf("mapred: no TaskTrackers registered")
	}
	job := &Job{
		ID:          jt.nextID,
		Spec:        spec,
		Weight:      1,
		OnComplete:  onComplete,
		jt:          jt,
		state:       JobMapPhase,
		submittedAt: jt.engine.Now(),
		mapOutputMB: make(map[*cluster.PM]float64),
		rateStats:   make(map[TaskKind]*rateStat),
	}
	jt.nextID++

	if spec.FixedMapWork > 0 {
		for i := 0; i < spec.FixedMapTasks; i++ {
			job.maps = append(job.maps, &Task{Job: job, Kind: MapTask, Index: i, state: TaskPending})
		}
	} else {
		job.inputName = fmt.Sprintf("/jobs/%s-%d/input", spec.Name, job.ID)
		file, ok := jt.fs.File(job.inputName)
		if !ok {
			var err error
			file, err = jt.fs.CreateFile(job.inputName, spec.InputMB, nil)
			if err != nil {
				return nil, fmt.Errorf("mapred: materialize input: %w", err)
			}
		}
		for i, b := range file.Blocks {
			job.maps = append(job.maps, &Task{Job: job, Kind: MapTask, Index: i, Block: b, state: TaskPending})
		}
	}
	job.mapsRemaining = len(job.maps)
	for _, t := range job.maps {
		t.pendingSince = job.submittedAt
	}
	for i := 0; i < spec.Reduces; i++ {
		job.reduces = append(job.reduces, &Task{Job: job, Kind: ReduceTask, Index: i, state: TaskPending})
	}
	job.redsRemaining = len(job.reduces)
	job.pendingMaps = len(job.maps)
	job.pendingReds = len(job.reduces)
	// The job starts in the map phase: only its maps are schedulable.
	jt.schedulableMaps += job.pendingMaps

	if jt.tracer != nil {
		track := fmt.Sprintf("job:%s-%d", spec.Name, job.ID)
		job.span = jt.tracer.Begin(track, "job", spec.Name,
			trace.F("maps", float64(len(job.maps))),
			trace.F("reduces", float64(len(job.reduces))),
			trace.F("input_mb", spec.InputMB))
		job.phaseSpan = jt.tracer.Begin(track, "job", "map-phase")
	}

	jt.jobs = append(jt.jobs, job)
	jt.activeJobs = append(jt.activeJobs, job)
	jt.ensureSpecTicker()
	jt.ensureHealthTicker()
	jt.schedule()
	return job, nil
}

// schedule fills free slots until no assignable work remains. Trackers
// are visited least-loaded first, so batch tasks flow toward VMs with
// spare capacity before touching nodes already busy with interactive
// tenants — the capacity-guided placement of HybridMR's DRM.
//
// The loop runs on the maintained free-slot index instead of copying and
// sorting the whole fleet per call: cached pressures are refreshed for
// dirtied machines at entry (so the index order equals what a fresh
// stable sort would produce), only trackers with free slots are visited,
// and the walk stops as soon as the schedulable-task counters prove
// NextTask would return nil everywhere. Decisions are unchanged — the
// trackers skipped by the index are exactly those the old scan skipped
// after probing them.
func (jt *JobTracker) schedule() {
	jt.perf.Enter("mapred.schedule")
	defer jt.perf.Exit()
	if jt.perf != nil {
		jt.perf.C.JTScheduleCalls++
	}
	jt.flushDirty()
	for {
		if jt.schedulableMaps == 0 && jt.schedulableReds == 0 {
			return
		}
		if jt.perf != nil {
			jt.perf.C.JTScheduleRounds++
		}
		assigned := false
		// Snapshot the free sets with schedulable work: launches during
		// the round remove filled trackers from the live sets, and the
		// original per-call order must hold for the whole round.
		// Pressures are not recomputed mid-call, exactly as the old
		// per-call sort froze them. A set whose task type has nothing
		// schedulable is skipped entirely — every visit to it would be
		// the no-op probe the old scan performed on map-full trackers
		// during a map wave, which is where its O(n^2) hid.
		var snapM, snapR []*TaskTracker
		if jt.schedulableMaps > 0 {
			snapM = append(jt.scratchMaps[:0], jt.freeMaps...)
			jt.scratchMaps = snapM
		}
		if jt.schedulableReds > 0 {
			snapR = append(jt.scratchReds[:0], jt.freeReds...)
			jt.scratchReds = snapR
		}
		// Merge-iterate the two sets in the shared (pressure, idx) order;
		// a tracker free for both kinds appears in both and is visited
		// once, map kind first — the old per-tracker kind order.
		mi, ri := 0, 0
		for mi < len(snapM) || ri < len(snapR) {
			if jt.schedulableMaps == 0 && jt.schedulableReds == 0 {
				break // drained: every further probe would return nil
			}
			var tr *TaskTracker
			tryMap, tryRed := false, false
			switch {
			case mi < len(snapM) && ri < len(snapR):
				if snapM[mi] == snapR[ri] {
					tr, tryMap, tryRed = snapM[mi], true, true
					mi++
					ri++
				} else if jt.freeLess(snapM[mi], snapR[ri]) {
					tr, tryMap = snapM[mi], true
					mi++
				} else {
					tr, tryRed = snapR[ri], true
					ri++
				}
			case mi < len(snapM):
				tr, tryMap = snapM[mi], true
				mi++
			default:
				tr, tryRed = snapR[ri], true
				ri++
			}
			if tr.disabled || tr.lost {
				continue
			}
			if tryMap {
				if jt.perf != nil {
					jt.perf.C.JTPairsScanned++
				}
				if tr.FreeSlots(MapTask) > 0 && jt.schedulableMaps > 0 {
					if task := jt.sched.NextTask(jt, tr, MapTask); task != nil {
						if err := jt.launch(task, tr, false); err == nil {
							assigned = true
						}
					}
				}
			}
			if tryRed {
				if jt.perf != nil {
					jt.perf.C.JTPairsScanned++
				}
				if tr.FreeSlots(ReduceTask) > 0 && jt.schedulableReds > 0 {
					if task := jt.sched.NextTask(jt, tr, ReduceTask); task != nil {
						if err := jt.launch(task, tr, false); err == nil {
							assigned = true
						}
					}
				}
			}
		}
		if !assigned {
			return
		}
	}
}

// trackerPressure estimates how contended the physical machine behind a
// tracker is: the sum over every resident consumer (tasks, services, DFS
// streams, on any VM of the host and natively) of its dominant demand
// relative to the machine's capacity. Counting the whole machine matters:
// a VM can look idle while its sibling VM runs a latency-critical
// service on the same spindle and cores.
func trackerPressure(tr *TaskTracker) float64 {
	pm := tr.Compute.Machine()
	if pm == nil {
		// The tracker's VM is gone; infinitely contended keeps it at the
		// back of every placement order.
		return math.Inf(1)
	}
	cap := pm.Capacity()
	var p float64
	add := func(c *cluster.Consumer) {
		best := 0.0
		for _, k := range resource.Kinds() {
			if cv := cap.Get(k); cv > 0 {
				if r := c.Demand.Get(k) / cv; r > best {
					best = r
				}
			}
		}
		p += best
	}
	for _, c := range pm.Consumers() {
		add(c)
	}
	for _, vm := range pm.VMs() {
		for _, c := range vm.Consumers() {
			add(c)
		}
	}
	return p
}

// launch starts an attempt of task on tracker.
func (jt *JobTracker) launch(task *Task, tr *TaskTracker, speculative bool) error {
	if tr.lost {
		return fmt.Errorf("mapred: launch(%s): tracker %s is lost", task.ID(), tr.Compute.Name())
	}
	if task.Kind == MapTask && task.Block != nil && len(task.Block.Replicas) == 0 {
		// Correlated failures can destroy every holder of an input block
		// faster than re-replication copies it away. Re-ingest the block
		// from the job's durable upstream source before reading — without
		// this, a re-executed map would consume data that no longer exists
		// anywhere in the cluster.
		if jt.fs.RestoreBlock(task.Block) {
			jt.auditLog.Add("dfs", "restore-input", task.Block.ID,
				"re-ingested from source",
				fmt.Sprintf("all replicas lost; map %s needs the block", task.ID()))
		}
	}
	demand, work, serveDisk := demandAndWork(task, tr)
	a := &Attempt{
		Task:        task,
		Tracker:     tr,
		Speculative: speculative,
		StartedAt:   jt.engine.Now(),
	}
	a.consumer = &cluster.Consumer{
		Name:   fmt.Sprintf("%s@%s", task.ID(), tr.Compute.Name()),
		Demand: demand,
		Work:   work,
	}
	if p := jt.cfg.SlotCaps; p != nil {
		cap := tr.Compute.UsefulCapacity()
		a.consumer.Cap = resource.NewVector(
			cap.Get(resource.CPU)*p.CPUFrac,
			cap.Get(resource.Memory)*p.MemFrac,
			cap.Get(resource.DiskIO)*p.DiskFrac,
			cap.Get(resource.NetIO)*p.NetFrac,
		)
	}
	a.consumer.OnComplete = func() { jt.attemptFinished(a) }
	a.consumer.OnKilled = func() { jt.attemptKilled(a) }
	if err := tr.Compute.Start(a.consumer); err != nil {
		return err
	}
	if !speculative {
		a.SlotWait = jt.engine.Now() - task.pendingSince
		jt.mSlotWait.Observe(a.SlotWait.Seconds())
		jt.ts.Observe("mapred.task.slot_wait_sec", task.Job.Spec.Name, jt.engine.Now(), a.SlotWait.Seconds())
	} else {
		jt.mSpeculative.Inc()
	}
	var loc dfs.Locality
	if jt.countReads && task.Kind == MapTask && task.Block != nil {
		loc = jt.fs.BlockLocality(task.Block, tr.Storage)
		jt.fs.CountRead(task.Block, tr.Compute, loc)
	}
	if jt.tracer != nil {
		args := []trace.Arg{
			trace.S("job", fmt.Sprintf("%s-%d", task.Job.Spec.Name, task.Job.ID)),
			trace.S("kind", task.Kind.String()),
			trace.F("slot_wait_sec", a.SlotWait.Seconds()),
		}
		if speculative {
			args = append(args, trace.S("speculative", "true"))
		}
		if loc != 0 {
			args = append(args, trace.S("locality", loc.String()))
		}
		a.span = jt.tracer.Begin(tr.Compute.Name(), "task", task.ID(), args...)
	}
	if jt.auditLog != nil {
		reason := "fixed heartbeat order (vanilla Hadoop)"
		if jt.cfg.CapacityAware {
			reason = "capacity-aware: least-pressure machine first"
		}
		if speculative {
			reason = "speculative backup on the least-loaded alternative"
		}
		jt.auditLog.Add("mapred", "assign", task.ID(), tr.Compute.Name(), reason,
			jt.assignCandidates(task.Kind, tr)...)
	}
	if serveDisk > 0 && tr.split() {
		a.serve = &cluster.Consumer{
			Name:   fmt.Sprintf("%s-serve@%s", task.ID(), tr.Storage.Name()),
			Demand: demandServe(serveDisk),
			Work:   work,
		}
		// Best effort: storage-side stream failure does not fail the task.
		_ = tr.Storage.Start(a.serve)
	}
	task.attempts = append(task.attempts, a)
	jt.setTaskState(task, TaskRunning)
	if task.Kind == MapTask {
		tr.mapRunning++
	} else {
		tr.redsRunning++
	}
	jt.syncFree(tr)
	jt.attempts[a] = struct{}{}
	jt.runningInsert(a)
	if jt.inv != nil {
		jt.inv.AttemptStarted(jt, a)
	}
	return nil
}

// assignCandidates lists, for the audit log, the trackers that had a
// free slot of the kind when one of them was chosen, scored by machine
// pressure. The list is capped (the chosen tracker is always kept) so
// records stay readable on large clusters.
func (jt *JobTracker) assignCandidates(kind TaskKind, chosen *TaskTracker) []audit.Candidate {
	const maxCandidates = 8
	var out []audit.Candidate
	for _, tr := range jt.trackers {
		if tr != chosen && (tr.disabled || tr.lost || tr.FreeSlots(kind) <= 0) {
			continue
		}
		c := audit.Candidate{
			Name:   tr.Compute.Name(),
			Score:  trackerPressure(tr),
			Chosen: tr == chosen,
			Note:   "machine pressure",
		}
		if len(out) == maxCandidates {
			if tr != chosen {
				continue
			}
			out[len(out)-1] = c // chosen beyond the cap replaces the tail
			continue
		}
		out = append(out, c)
	}
	return out
}

// attemptFinished handles a completed attempt: the first completion wins
// the task; other attempts are cancelled.
func (jt *JobTracker) attemptFinished(a *Attempt) {
	if a.finished || a.killed {
		return
	}
	if a.Task.Kind == ReduceTask && jt.shuffleFetchFailed(a) {
		return
	}
	a.finished = true
	a.FinishedAt = jt.engine.Now()
	if jt.inv != nil {
		jt.inv.AttemptFinished(jt, a)
	}
	jt.releaseSlot(a)
	if a.serve != nil && a.serve.Running() {
		a.serve.Stop()
	}
	a.span.End(trace.S("outcome", "done"))
	jt.mAttemptDuration.Observe((a.FinishedAt - a.StartedAt).Seconds())
	if elapsed := (jt.engine.Now() - a.StartedAt).Seconds(); elapsed > 0 && a.consumer != nil {
		a.Task.Job.recordAttemptRate(a.Task.Kind, a.consumer.Work/elapsed)
	}
	task := a.Task
	if task.state == TaskDone {
		jt.schedule()
		return
	}
	jt.setTaskState(task, TaskDone)
	// Cancel losing attempts.
	for _, other := range task.attempts {
		if other != a && other.Running() {
			other.killed = true
			other.FinishedAt = jt.engine.Now()
			other.span.End(trace.S("outcome", "lost-race"))
			jt.releaseSlot(other)
			if other.consumer != nil && other.consumer.Running() {
				other.consumer.OnKilled = nil
				other.consumer.Stop()
			}
			if other.serve != nil && other.serve.Running() {
				other.serve.Stop()
			}
		}
	}
	job := task.Job
	if task.Kind == MapTask {
		job.recordMapOutput(task, a.Tracker)
		job.mapsRemaining--
		if job.mapsRemaining == 0 {
			job.mapsDoneAt = jt.engine.Now()
			job.phaseSpan.End()
			if len(job.reduces) == 0 {
				jt.finishJob(job)
			} else {
				jt.setJobState(job, JobReducePhase)
				// Reduces become schedulable only now: slot wait is
				// measured from the barrier, not from submission.
				for _, t := range job.reduces {
					if t.state == TaskPending {
						t.pendingSince = job.mapsDoneAt
					}
				}
				if jt.tracer != nil {
					job.phaseSpan = jt.tracer.Begin(
						fmt.Sprintf("job:%s-%d", job.Spec.Name, job.ID), "job", "reduce-phase")
				}
			}
		}
	} else {
		job.redsRemaining--
		if job.redsRemaining == 0 {
			jt.finishJob(job)
		}
	}
	jt.schedule()
}

// attemptKilled handles an externally killed attempt (IPS action or VM
// failure): the task returns to the pending queue, as Hadoop's
// re-execution machinery guarantees.
func (jt *JobTracker) attemptKilled(a *Attempt) {
	if a.finished || a.killed {
		return
	}
	a.killed = true
	a.FinishedAt = jt.engine.Now()
	a.span.End(trace.S("outcome", "killed"))
	jt.mKilled.Inc()
	jt.releaseSlot(a)
	if a.serve != nil && a.serve.Running() {
		a.serve.Stop()
	}
	task := a.Task
	if task.state == TaskRunning && task.runningAttempts() == 0 {
		jt.setTaskState(task, TaskPending)
		task.pendingSince = jt.engine.Now()
	}
	jt.schedule()
}

func (jt *JobTracker) releaseSlot(a *Attempt) {
	if _, live := jt.attempts[a]; !live {
		return
	}
	delete(jt.attempts, a)
	jt.runningRemove(a)
	if a.Task.Kind == MapTask {
		a.Tracker.mapRunning--
	} else {
		a.Tracker.redsRunning--
	}
	jt.syncFree(a.Tracker)
}

func (jt *JobTracker) finishJob(job *Job) {
	jt.setJobState(job, JobDone)
	jt.removeActiveJob(job)
	job.doneAt = jt.engine.Now()
	job.phaseSpan.End()
	job.span.End(trace.F("jct_sec", job.JCT().Seconds()))
	jt.mJobsCompleted.Inc()
	if len(jt.activeJobs) == 0 && jt.specTick != nil {
		jt.specTick.Stop()
	}
	if job.OnComplete != nil {
		job.OnComplete(job)
	}
}

// Relocate moves a running attempt to another tracker: the original
// attempt is cancelled (its progress is lost, as in Hadoop task
// re-execution) and a fresh attempt starts on the destination. The
// Phase II IPS uses this to evict interfering map/reduce tasks from VMs
// whose interactive tenants are violating their SLA.
func (jt *JobTracker) Relocate(a *Attempt, dst *TaskTracker) error {
	if a == nil || dst == nil {
		return fmt.Errorf("mapred: Relocate: nil attempt or destination")
	}
	if !a.Running() {
		return fmt.Errorf("mapred: Relocate(%s): attempt not running", a.Task.ID())
	}
	if dst == a.Tracker {
		return fmt.Errorf("mapred: Relocate(%s): already on %s", a.Task.ID(), dst.Compute.Name())
	}
	if dst.FreeSlots(a.Task.Kind) <= 0 {
		return fmt.Errorf("mapred: Relocate(%s): no free %s slot on %s", a.Task.ID(), a.Task.Kind, dst.Compute.Name())
	}
	a.killed = true
	a.FinishedAt = jt.engine.Now()
	a.span.End(trace.S("outcome", "relocated"), trace.S("to", dst.Compute.Name()))
	jt.mRelocations.Inc()
	jt.releaseSlot(a)
	if a.consumer != nil && a.consumer.Running() {
		a.consumer.OnKilled = nil
		a.consumer.Stop()
	}
	if a.serve != nil && a.serve.Running() {
		a.serve.Stop()
	}
	jt.setTaskState(a.Task, TaskPending)
	a.Task.pendingSince = jt.engine.Now()
	return jt.launch(a.Task, dst, false)
}

// offHostFraction is the probability that a random DataNode lives on a
// different physical machine than n — the share of replication traffic
// that crosses the wire.
func (jt *JobTracker) offHostFraction(n cluster.Node) float64 {
	dns := jt.fs.DataNodes()
	if len(dns) == 0 {
		return 1
	}
	off := 0
	for _, d := range dns {
		if d.Node().Machine() != n.Machine() {
			off++
		}
	}
	return float64(off) / float64(len(dns))
}

// HandleMachineFailure declares lost every tracker whose compute or
// storage node lived on the failed machine, returning how many were.
// Running attempts on them are killed and their tasks re-queued,
// completed map outputs stranded on the machine are re-executed
// (reducers could no longer fetch them), and the trackers rejoin only
// if their machine comes back and any blacklist hold-off expires.
func (jt *JobTracker) HandleMachineFailure(pm *cluster.PM) int {
	return jt.HandleMachineFailures([]*cluster.PM{pm})
}

// HandleMachineFailures is the correlated-loss variant: every tracker
// on any of the failed machines is declared lost in ONE batch, so the
// re-queue triggered by the first kill cannot land work on a sibling
// that the same rack or power-domain crash is about to take down too.
func (jt *JobTracker) HandleMachineFailures(pms []*cluster.PM) int {
	failed := make(map[*cluster.PM]bool, len(pms))
	for _, pm := range pms {
		if pm != nil {
			failed[pm] = true
		}
	}
	var affected []*TaskTracker
	for _, tr := range jt.trackers {
		if tr.lost {
			continue
		}
		cm, sm := tr.Compute.Machine(), tr.Storage.Machine()
		// A nil machine means the node's VM was already destroyed by the
		// failure.
		if failed[cm] || failed[sm] || cm == nil || sm == nil {
			affected = append(affected, tr)
		}
	}
	return jt.trackersLost(affected, "machine-failure")
}

// HandleNodeLost declares lost every tracker using the given node — the
// VM-crash analogue of HandleMachineFailure.
func (jt *JobTracker) HandleNodeLost(n cluster.Node) int {
	var affected []*TaskTracker
	for _, tr := range jt.trackers {
		if tr.lost {
			continue
		}
		if tr.Compute == n || tr.Storage == n ||
			tr.Compute.Machine() == nil || tr.Storage.Machine() == nil {
			affected = append(affected, tr)
		}
	}
	return jt.trackersLost(affected, "node-lost")
}

// TrackerFor returns the tracker whose compute node is n, if any.
func (jt *JobTracker) TrackerFor(n cluster.Node) (*TaskTracker, bool) {
	for _, tr := range jt.trackers {
		if tr.Compute == n {
			return tr, true
		}
	}
	return nil, false
}

// speculate launches backup attempts for stragglers: running attempts
// whose speed is well below the median of their job's running attempts of
// the same kind.
func (jt *JobTracker) speculate() {
	jt.perf.Enter("mapred.speculate")
	defer jt.perf.Exit()
	// Group via the sorted attempt list and visit jobs in submission
	// order: iteration order decides which straggler claims the last free
	// slot, so it must be stable across runs.
	byJobKind := make(map[*Job]map[TaskKind][]*Attempt)
	running := jt.RunningAttempts()
	if jt.perf != nil {
		jt.perf.C.JTSpeculationScans += int64(len(running))
	}
	for _, a := range running {
		m, ok := byJobKind[a.Task.Job]
		if !ok {
			m = make(map[TaskKind][]*Attempt)
			byJobKind[a.Task.Job] = m
		}
		m[a.Task.Kind] = append(m[a.Task.Kind], a)
	}
	for _, job := range jt.activeJobs {
		kinds, ok := byJobKind[job]
		if !ok {
			continue
		}
		for _, kind := range [...]TaskKind{MapTask, ReduceTask} {
			attempts := kinds[kind]
			if len(attempts) == 0 {
				continue
			}
			// Reference rate: the job's completed-attempt history when
			// available (so a tail of uniformly slow stragglers is
			// still detected), otherwise the running median.
			reference, ok := job.historicalRate(kind)
			if !ok {
				if len(attempts) < 2 {
					continue
				}
				reference = medianSpeed(attempts)
			}
			if reference <= 0 {
				continue
			}
			for _, a := range attempts {
				if a.Speculative || a.Task.runningAttempts() > 1 {
					continue
				}
				if a.Progress() > 0.9 {
					continue
				}
				if a.Speed() >= reference*jt.cfg.SpeculationSlowdown {
					continue
				}
				reason := fmt.Sprintf("straggler: speed %.3f below %.3f (reference %.3f × slowdown %.2f)",
					a.Speed(), reference*jt.cfg.SpeculationSlowdown, reference, jt.cfg.SpeculationSlowdown)
				if tr := jt.freeTrackerExcluding(a.Tracker, a.Task.Kind); tr != nil {
					if err := jt.launch(a.Task, tr, true); err == nil && jt.auditLog != nil {
						jt.auditLog.Add("mapred", "speculate", a.Task.ID(),
							tr.Compute.Name(), reason, speedCandidates(attempts, a)...)
					}
				} else if jt.auditLog != nil {
					jt.auditLog.Add("mapred", "speculate", a.Task.ID(),
						"none", reason+"; no free tracker for a backup",
						speedCandidates(attempts, a)...)
				}
			}
		}
	}
}

// speedCandidates lists, for the audit log, the progress rates the
// straggler detector compared: each running attempt of the scanned
// job/kind group, the flagged straggler marked chosen.
func speedCandidates(attempts []*Attempt, straggler *Attempt) []audit.Candidate {
	const maxCandidates = 8
	var out []audit.Candidate
	for _, a := range attempts {
		c := audit.Candidate{
			Name:   a.consumer.Name,
			Score:  a.Speed(),
			Chosen: a == straggler,
			Note:   "progress rate",
		}
		if len(out) == maxCandidates {
			if a != straggler {
				continue
			}
			out[len(out)-1] = c
			continue
		}
		out = append(out, c)
	}
	return out
}

// freeTrackerExcluding picks the least-loaded tracker with a free slot —
// a speculative backup on a node as contended as the straggler's would
// only double the pain.
func (jt *JobTracker) freeTrackerExcluding(exclude *TaskTracker, kind TaskKind) *TaskTracker {
	var best *TaskTracker
	bestPressure := 0.0
	for _, tr := range jt.trackers {
		if tr == exclude || tr.disabled || tr.lost || tr.FreeSlots(kind) <= 0 {
			continue
		}
		p := trackerPressure(tr)
		if best == nil || p < bestPressure {
			best, bestPressure = tr, p
		}
	}
	return best
}

func medianSpeed(attempts []*Attempt) float64 {
	// Mass re-execution after a failure can empty an attempt list
	// between grouping and inspection; a zero reference disables
	// speculation for the scan rather than indexing an empty slice.
	if len(attempts) == 0 {
		return 0
	}
	speeds := make([]float64, len(attempts))
	for i, a := range attempts {
		speeds[i] = a.Speed()
	}
	// Insertion sort: attempt lists are small.
	for i := 1; i < len(speeds); i++ {
		for k := i; k > 0 && speeds[k] < speeds[k-1]; k-- {
			speeds[k], speeds[k-1] = speeds[k-1], speeds[k]
		}
	}
	return speeds[len(speeds)/2]
}
