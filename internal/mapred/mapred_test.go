package mapred

import (
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/dfs"
	"repro/internal/resource"
	"repro/internal/sim"
	"repro/internal/trace"
)

// sortLike is a Sort-shaped spec: I/O bound, shuffle ≈ input.
func sortLike(inputMB float64) JobSpec {
	return JobSpec{
		Name:             "Sort",
		InputMB:          inputMB,
		Reduces:          4,
		MapStreamMBps:    50,
		MapCPUPerMB:      0.004,
		MapMemMB:         200,
		ShuffleRatio:     1,
		ReduceStreamMBps: 40,
		ReduceCPUPerMB:   0.004,
		ReduceMemMB:      300,
		OutputRatio:      1,
	}
}

// piLike is a PiEst-shaped spec: pure CPU, negligible data.
func piLike() JobSpec {
	return JobSpec{
		Name:          "PiEst",
		Reduces:       1,
		FixedMapWork:  30,
		FixedMapTasks: 8,
		MapMemMB:      150,
		ReduceMemMB:   100,
	}
}

// rig builds an engine, native cluster, DFS and JobTracker over n PMs.
func rig(t *testing.T, nPMs int, cfg Config, sched Scheduler) (*sim.Engine, *JobTracker) {
	t.Helper()
	engine := sim.New()
	c := cluster.New(engine, cluster.DefaultConfig(), 7)
	fs := dfs.New(engine, dfs.Config{}, 7)
	jt := NewJobTracker(engine, fs, cfg, sched)
	for _, pm := range c.AddPMs("pm", nPMs) {
		jt.AddTracker(pm)
	}
	return engine, jt
}

func runJob(t *testing.T, engine *sim.Engine, jt *JobTracker, spec JobSpec) *Job {
	t.Helper()
	job, err := jt.Submit(spec, nil)
	if err != nil {
		t.Fatal(err)
	}
	engine.Run()
	if !job.Done() {
		t.Fatalf("job %s-%d did not complete", spec.Name, job.ID)
	}
	return job
}

func TestJobCompletesWithPhases(t *testing.T) {
	engine, jt := rig(t, 4, Config{}, nil)
	job := runJob(t, engine, jt, sortLike(1024))
	if job.JCT() <= 0 {
		t.Errorf("JCT = %v, want > 0", job.JCT())
	}
	if job.MapPhase() <= 0 {
		t.Errorf("map phase = %v, want > 0", job.MapPhase())
	}
	if job.ReducePhase() <= 0 {
		t.Errorf("reduce phase = %v, want > 0", job.ReducePhase())
	}
	if got := job.MapPhase() + job.ReducePhase(); got != job.JCT() {
		t.Errorf("phases sum %v != JCT %v", got, job.JCT())
	}
	// 1024 MB / 64 MB blocks = 16 map tasks.
	if got := len(job.Maps()); got != 16 {
		t.Errorf("map tasks = %d, want 16", got)
	}
	if got := len(job.Reduces()); got != 4 {
		t.Errorf("reduce tasks = %d, want 4", got)
	}
}

func TestMoreNodesFasterJCT(t *testing.T) {
	jct := func(n int) time.Duration {
		engine, jt := rig(t, n, Config{}, nil)
		return runJob(t, engine, jt, sortLike(2048)).JCT()
	}
	j2, j4, j8 := jct(2), jct(4), jct(8)
	if !(j2 > j4 && j4 > j8) {
		t.Errorf("JCT not decreasing with cluster size: 2=%v 4=%v 8=%v", j2, j4, j8)
	}
	// Inverse-style relation: doubling nodes should cut JCT well below
	// 75%, not just marginally.
	if float64(j4) > 0.75*float64(j2) {
		t.Errorf("scaling too weak: 4 nodes %v vs 2 nodes %v", j4, j2)
	}
}

func TestDataSizeRoughlyLinear(t *testing.T) {
	jct := func(mb float64) float64 {
		engine, jt := rig(t, 4, Config{}, nil)
		return runJob(t, engine, jt, sortLike(mb)).JCT().Seconds()
	}
	j1, j2, j4 := jct(1024), jct(2048), jct(4096)
	r21 := j2 / j1
	r42 := j4 / j2
	if r21 < 1.5 || r21 > 2.6 || r42 < 1.5 || r42 > 2.6 {
		t.Errorf("doubling ratios %v, %v not roughly linear (JCTs %v %v %v)", r21, r42, j1, j2, j4)
	}
}

func TestCPUBoundJobUsesAllCores(t *testing.T) {
	// 8 fixed-work maps of 30s each on 2 PMs x 2 slots = 4 concurrent:
	// 2 waves ≈ 60s + overhead + reduce.
	engine, jt := rig(t, 2, Config{}, nil)
	job := runJob(t, engine, jt, piLike())
	jct := job.JCT().Seconds()
	if jct < 60 || jct > 90 {
		t.Errorf("PiEst JCT = %v, want ~60-90s (2 waves of 30s + overhead)", jct)
	}
}

func TestMapOnlyJob(t *testing.T) {
	engine, jt := rig(t, 2, Config{}, nil)
	spec := piLike()
	spec.Reduces = 0
	job := runJob(t, engine, jt, spec)
	if job.ReducePhase() != 0 {
		t.Errorf("map-only job has reduce phase %v", job.ReducePhase())
	}
}

func TestSubmitValidation(t *testing.T) {
	_, jt := rig(t, 2, Config{}, nil)
	bad := []JobSpec{
		{},                           // no name
		{Name: "x"},                  // no input, no fixed work
		{Name: "x", FixedMapWork: 5}, // fixed work without task count
		{Name: "x", InputMB: -3},     // negative input
		{Name: "x", InputMB: 100, MapStreamMBps: 10, Reduces: -1}, // negative reduces
	}
	for i, spec := range bad {
		if _, err := jt.Submit(spec, nil); err == nil {
			t.Errorf("bad spec %d accepted", i)
		}
	}
	empty := NewJobTracker(jt.Engine(), jt.FS(), Config{}, nil)
	if _, err := empty.Submit(sortLike(128), nil); err == nil {
		t.Error("submit with no trackers accepted")
	}
}

func TestOnCompleteCallback(t *testing.T) {
	engine, jt := rig(t, 2, Config{}, nil)
	var completed *Job
	job, err := jt.Submit(sortLike(256), func(j *Job) { completed = j })
	if err != nil {
		t.Fatal(err)
	}
	engine.Run()
	if completed != job {
		t.Error("OnComplete not invoked with the job")
	}
}

func TestFairSchedulerHelpsSmallJob(t *testing.T) {
	smallJCT := func(sched Scheduler) time.Duration {
		engine, jt := rig(t, 4, Config{}, sched)
		big := sortLike(4096)
		big.Name = "Big"
		small := sortLike(256)
		small.Name = "Small"
		var bigDone, smallDone bool
		var jct time.Duration
		if _, err := jt.Submit(big, func(j *Job) { bigDone = true }); err != nil {
			t.Fatal(err)
		}
		// Small job arrives shortly after the big one monopolizes slots.
		engine.After(5*time.Second, func() {
			if _, err := jt.Submit(small, func(j *Job) {
				smallDone = true
				jct = j.JCT()
			}); err != nil {
				t.Error(err)
			}
		})
		engine.Run()
		if !bigDone || !smallDone {
			t.Fatalf("%s: jobs incomplete (big=%v small=%v)", sched.Name(), bigDone, smallDone)
		}
		return jct
	}
	fifo := smallJCT(FIFO{})
	fair := smallJCT(Fair{})
	if fair >= fifo {
		t.Errorf("Fair did not help the small job: fair=%v fifo=%v", fair, fifo)
	}
}

func TestSpeculationRescuesStraggler(t *testing.T) {
	run := func(disable bool) time.Duration {
		engine := sim.New()
		c := cluster.New(engine, cluster.DefaultConfig(), 7)
		fs := dfs.New(engine, dfs.Config{}, 7)
		jt := NewJobTracker(engine, fs, Config{DisableSpeculation: disable}, nil)
		pms := c.AddPMs("pm", 4)
		for _, pm := range pms {
			jt.AddTracker(pm)
		}
		// A heavy antagonist makes pm-3 a straggler node.
		antagonist := &cluster.Consumer{
			Name:   "antagonist",
			Demand: resource.NewVector(2, 0, 85, 0),
			Work:   cluster.OpenEnded,
			Weight: 20,
		}
		if err := pms[3].Start(antagonist); err != nil {
			t.Fatal(err)
		}
		job, err := jt.Submit(sortLike(1024), nil)
		if err != nil {
			t.Fatal(err)
		}
		engine.RunUntil(4 * time.Hour)
		jt.Close()
		if !job.Done() {
			t.Fatalf("job did not finish (speculation disabled=%v)", disable)
		}
		return job.JCT()
	}
	withSpec := run(false)
	withoutSpec := run(true)
	if withSpec >= withoutSpec {
		t.Errorf("speculation did not help: with=%v without=%v", withSpec, withoutSpec)
	}
}

func TestKilledAttemptReexecutes(t *testing.T) {
	engine, jt := rig(t, 2, Config{}, nil)
	job, err := jt.Submit(sortLike(512), nil)
	if err != nil {
		t.Fatal(err)
	}
	// Kill every running attempt once, early in the run.
	killed := 0
	engine.After(5*time.Second, func() {
		for _, a := range jt.RunningAttempts() {
			a.Consumer().Kill()
			killed++
		}
	})
	engine.Run()
	if killed == 0 {
		t.Fatal("nothing was killed; test is vacuous")
	}
	if !job.Done() {
		t.Fatal("job did not recover from kills")
	}
	// At least one task must have more than one attempt.
	multi := 0
	for _, task := range job.Maps() {
		if len(task.Attempts()) > 1 {
			multi++
		}
	}
	if multi == 0 {
		t.Error("no task was re-executed after kill")
	}
}

func TestSplitArchitectureCompletes(t *testing.T) {
	engine := sim.New()
	c := cluster.New(engine, cluster.DefaultConfig(), 7)
	fs := dfs.New(engine, dfs.Config{}, 7)
	jt := NewJobTracker(engine, fs, Config{}, nil)
	pms := c.AddPMs("pm", 4)
	for i, pm := range pms {
		compute, err := c.AddVM("tt", pm, 1, 1024)
		if err != nil {
			t.Fatal(err)
		}
		storage, err := c.AddVM("dn", pm, 1, 1024)
		if err != nil {
			t.Fatal(err)
		}
		_ = i
		jt.AddSplitTracker(compute, storage)
	}
	job := runJob(t, engine, jt, sortLike(512))
	if job.JCT() <= 0 {
		t.Error("split job JCT not recorded")
	}
}

func TestLocalityPreferred(t *testing.T) {
	engine, jt := rig(t, 8, Config{}, nil)
	job, err := jt.Submit(sortLike(2048), nil)
	if err != nil {
		t.Fatal(err)
	}
	// Sample placement quality shortly after scheduling.
	local, total := 0, 0
	engine.After(2*time.Second, func() {
		for _, a := range jt.RunningAttempts() {
			if a.Task.Kind != MapTask || a.Task.Block == nil {
				continue
			}
			total++
			if jt.FS().BlockLocality(a.Task.Block, a.Tracker.Storage) == dfs.NodeLocal {
				local++
			}
		}
	})
	engine.Run()
	if !job.Done() {
		t.Fatal("job incomplete")
	}
	if total == 0 {
		t.Fatal("no running map attempts sampled")
	}
	if float64(local)/float64(total) < 0.5 {
		t.Errorf("only %d/%d sampled maps node-local; locality scheduling broken", local, total)
	}
}

func TestReduceBarrier(t *testing.T) {
	engine, jt := rig(t, 2, Config{}, nil)
	job, err := jt.Submit(sortLike(512), nil)
	if err != nil {
		t.Fatal(err)
	}
	violated := false
	var tick *sim.Ticker
	tick = sim.NewTicker(engine, time.Second, func(time.Duration) {
		if job.Done() {
			tick.Stop()
			return
		}
		for _, a := range jt.RunningAttempts() {
			if a.Task.Kind == ReduceTask && a.Task.Job == job && job.State() == JobMapPhase {
				violated = true
			}
		}
	})
	engine.Run()
	if violated {
		t.Error("reduce attempt observed during map phase")
	}
	if !job.Done() {
		t.Fatal("job incomplete")
	}
}

func TestSlotLimitsRespected(t *testing.T) {
	engine, jt := rig(t, 2, Config{MapSlots: 2, ReduceSlots: 2}, nil)
	job, err := jt.Submit(sortLike(2048), nil)
	if err != nil {
		t.Fatal(err)
	}
	maxPerTracker := 0
	var tick *sim.Ticker
	tick = sim.NewTicker(engine, time.Second, func(time.Duration) {
		if job.Done() {
			tick.Stop()
			return
		}
		counts := make(map[*TaskTracker]int)
		for _, a := range jt.RunningAttempts() {
			if a.Task.Kind == MapTask {
				counts[a.Tracker]++
			}
		}
		for _, n := range counts {
			if n > maxPerTracker {
				maxPerTracker = n
			}
		}
	})
	engine.Run()
	if !job.Done() {
		t.Fatal("job incomplete")
	}
	if maxPerTracker > 2 {
		t.Errorf("observed %d concurrent maps on one tracker, slots = 2", maxPerTracker)
	}
}

func TestWithHelpers(t *testing.T) {
	s := sortLike(1000)
	if got := s.WithInputMB(123).InputMB; got != 123 {
		t.Errorf("WithInputMB = %v", got)
	}
	if got := s.WithReduces(9).Reduces; got != 9 {
		t.Errorf("WithReduces = %v", got)
	}
	if s.InputMB != 1000 || s.Reduces != 4 {
		t.Error("With helpers mutated the receiver")
	}
}

func TestMapredMetricsInstrumentation(t *testing.T) {
	engine := sim.New()
	c := cluster.New(engine, cluster.DefaultConfig(), 7)
	fs := dfs.New(engine, dfs.Config{}, 7)
	jt := NewJobTracker(engine, fs, Config{}, nil)
	tr := trace.New(engine)
	reg := trace.NewRegistry()
	c.SetTrace(tr, reg)
	fs.SetTrace(tr, reg)
	jt.SetTrace(tr, reg)
	pms := c.AddPMs("pm", 4)
	for _, pm := range pms {
		jt.AddTracker(pm)
	}
	// A heavy antagonist makes pm-3 a straggler node, forcing
	// speculative backups.
	antagonist := &cluster.Consumer{
		Name:   "antagonist",
		Demand: resource.NewVector(2, 0, 85, 0),
		Work:   cluster.OpenEnded,
		Weight: 20,
	}
	if err := pms[3].Start(antagonist); err != nil {
		t.Fatal(err)
	}
	job, err := jt.Submit(sortLike(1024), nil)
	if err != nil {
		t.Fatal(err)
	}
	engine.RunUntil(4 * time.Hour)
	jt.Close()
	if !job.Done() {
		t.Fatal("job did not finish")
	}

	if h := reg.Histogram("mapred.task.slot_wait_sec"); h.Count() == 0 {
		t.Error("slot-wait histogram is empty")
	}
	if h := reg.Histogram("mapred.attempt.duration_sec"); h.Count() == 0 {
		t.Error("attempt-duration histogram is empty")
	}
	if got := reg.Counter("mapred.attempts.speculative").Value(); got == 0 {
		t.Error("speculative-launch counter is zero despite a straggler node")
	}
	if got := reg.Counter("mapred.jobs.completed").Value(); got != 1 {
		t.Errorf("jobs completed = %v, want 1", got)
	}
	locality := reg.Counter("dfs.reads.node_local").Value() +
		reg.Counter("dfs.reads.host_local").Value() +
		reg.Counter("dfs.reads.remote").Value()
	if locality == 0 {
		t.Error("data-locality read counters are all zero")
	}
	// Every map attempt span should carry a slot-wait argument via the
	// trace too.
	if tr.Len() == 0 {
		t.Error("tracer recorded no events")
	}
}
