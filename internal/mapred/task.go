package mapred

import (
	"fmt"
	"time"

	"repro/internal/cluster"
	"repro/internal/dfs"
	"repro/internal/resource"
	"repro/internal/trace"
)

// TaskKind distinguishes map from reduce tasks.
type TaskKind int

// Task kinds.
const (
	MapTask TaskKind = iota + 1
	ReduceTask
)

// String names the kind.
func (k TaskKind) String() string {
	if k == MapTask {
		return "map"
	}
	return "reduce"
}

// TaskState is a task's scheduling state.
type TaskState int

// Task states.
const (
	TaskPending TaskState = iota + 1
	TaskRunning
	TaskDone
)

// Task is one map or reduce task of a job. A task may have several
// attempts (re-execution after a kill, or speculative backups); it is done
// when any attempt completes.
type Task struct {
	// Job is the owning job.
	Job *Job
	// Kind is map or reduce.
	Kind TaskKind
	// Index is the task number within its kind.
	Index int
	// Block is the input block for map tasks (nil for fixed-work maps
	// and reduces).
	Block *dfs.Block

	state    TaskState
	attempts []*Attempt
	// pendingSince is when the task last became schedulable (submission,
	// the map→reduce barrier, or re-queue after a kill); launch measures
	// slot wait from it.
	pendingSince time.Duration

	// outputTracker/outputPM/outputMB record where a completed map's
	// intermediate output lives (the winning attempt's tracker). Map
	// output stays on the mapper's local disk in Hadoop, so losing that
	// node forces the map to re-execute; see reexecuteLostMaps.
	outputTracker *TaskTracker
	outputPM      *cluster.PM
	outputMB      float64
}

// State returns the task's scheduling state.
func (t *Task) State() TaskState { return t.state }

// Attempts returns all attempts launched so far.
func (t *Task) Attempts() []*Attempt {
	out := make([]*Attempt, len(t.attempts))
	copy(out, t.attempts)
	return out
}

// runningAttempts counts attempts still executing.
func (t *Task) runningAttempts() int {
	n := 0
	for _, a := range t.attempts {
		if a.Running() {
			n++
		}
	}
	return n
}

// OutputTracker returns the tracker holding this completed map's
// intermediate output, or nil while the task is not done (or after the
// output node was lost and the task was re-queued). The invariant
// checker uses it to assert that no reduce consumes vanished map
// output.
func (t *Task) OutputTracker() *TaskTracker { return t.outputTracker }

// ID identifies the task within its job.
func (t *Task) ID() string {
	return fmt.Sprintf("%s-%d/%s-%d", t.Job.Spec.Name, t.Job.ID, t.Kind, t.Index)
}

// Attempt is one execution of a task on a specific tracker.
type Attempt struct {
	// Task is the task being attempted.
	Task *Task
	// Tracker is where the attempt runs.
	Tracker *TaskTracker
	// Speculative marks backup attempts launched by the straggler
	// detector.
	Speculative bool
	// StartedAt is the simulation time the attempt began.
	StartedAt time.Duration
	// FinishedAt is when the attempt completed, was killed, or lost the
	// speculative race; zero while running.
	FinishedAt time.Duration
	// SlotWait is how long the task waited for this (non-speculative)
	// attempt's slot.
	SlotWait time.Duration

	consumer *cluster.Consumer
	serve    *cluster.Consumer // split-architecture storage-side stream
	finished bool
	killed   bool
	span     trace.Span
}

// Running reports whether the attempt is still executing.
func (a *Attempt) Running() bool { return !a.finished && !a.killed }

// Progress returns the completed fraction in [0, 1].
func (a *Attempt) Progress() float64 {
	if a.finished {
		return 1
	}
	if a.consumer == nil {
		return 0
	}
	return a.consumer.Progress()
}

// Speed returns the attempt's current progress rate (1 = full speed).
func (a *Attempt) Speed() float64 {
	if a.consumer == nil {
		return 0
	}
	return a.consumer.Speed()
}

// Consumer exposes the underlying resource consumer so that the Phase II
// DRM can observe usage and install caps, and the IPS can kill or weigh
// down interfering attempts.
func (a *Attempt) Consumer() *cluster.Consumer { return a.consumer }

// Node returns the node the attempt runs on.
func (a *Attempt) Node() cluster.Node { return a.Tracker.Compute }

// demandAndWork computes an attempt's resource demand vector and
// full-speed work for the given task on the given tracker, based on the
// job spec and current data placement.
func demandAndWork(t *Task, tr *TaskTracker) (demand resource.Vector, work float64, serveDisk float64) {
	spec := t.Job.Spec
	switch t.Kind {
	case MapTask:
		if spec.FixedMapWork > 0 {
			mem := spec.MapMemMB
			if mem <= 0 {
				mem = 200
			}
			return resource.NewVector(1, mem, 0, 0), spec.FixedMapWork + spec.overhead(), 0
		}
		rate := spec.effectiveMapStream()
		cpu := rate * spec.MapCPUPerMB
		if cpu < 0.05 {
			cpu = 0.05
		}
		blockMB := t.Job.blockMB(t)
		spill := rate * spec.ShuffleRatio
		mapMem := spec.MapMemMB
		if spec.InMemory {
			// Spark-style: map output is cached in RAM, not spilled.
			mapMem += blockMB * spec.ShuffleRatio
			spill = 0
		}
		work = blockMB/rate + spec.overhead()
		locality := t.Job.jt.fs.BlockLocality(t.Block, tr.Storage)
		var disk, net float64
		switch {
		case tr.split():
			// Split architecture: input streams from the storage node;
			// the compute node pays CPU plus spill, the storage node
			// serves the read in parallel.
			disk = spill
			net = rate * 0.15 // virtual NIC hop to the storage VM
			if locality == dfs.Remote {
				net += rate
			}
			serveDisk = rate
		case locality == dfs.Remote:
			disk = spill
			net = rate
			serveDisk = 0
		default:
			disk = rate + spill
		}
		return resource.NewVector(cpu, mapMem, disk, net), work, serveDisk

	default: // ReduceTask
		shuffleMB := t.Job.shufflePerReduce()
		rate := spec.effectiveReduceStream()
		cpu := rate * spec.ReduceCPUPerMB
		if cpu < 0.05 {
			cpu = 0.05
		}
		remoteFrac := t.Job.remoteShuffleFraction(tr.Compute)
		outRatio := spec.OutputRatio
		disk := rate * (1 + outRatio)
		// Remote shuffle fetches plus the off-host share of output
		// replication; replicas landing on VMs of the same PM never
		// touch the NIC.
		net := rate*remoteFrac + rate*outRatio*t.Job.jt.offHostFraction(tr.Compute)
		mem := spec.ReduceMemMB
		if mem <= 0 {
			mem = 300
		}
		if spec.InMemory {
			// Spark-style: shuffle data merges in RAM; only the final
			// output touches the disk.
			disk = rate * outRatio
			mem += shuffleMB
		}
		work = shuffleMB/rate + spec.overhead()
		return resource.NewVector(cpu, mem, disk, net), work, 0
	}
}
