package mapred

import (
	"sort"

	"repro/internal/cluster"
)

// This file is the JobTracker's incremental index layer. Three structures
// replace the full-fleet scans the scale sweep measured superlinear:
//
//   - freeMaps/freeReds: trackers with a free slot of each task type,
//     ordered by (cached machine pressure, registration index).
//     schedule() merge-iterates them instead of copying and sorting the
//     whole fleet every call. The sets are per task type because they
//     must be: a tracker whose map slots are full but reduce slots are
//     empty would otherwise sit in every map wave's scan as a no-op
//     visit, and with waves sized to the fleet those visits are the
//     O(n^2) the sweep measured.
//   - runningSorted: every running attempt ordered by consumer name,
//     maintained at launch/release. RunningAttempts() copies it instead
//     of rebuilding and sorting from the attempts map.
//   - buckets/bucketOrder: running attempts grouped per compute node in
//     node-name order, the exact iteration order the DRM's tick used to
//     reconstruct by sorting every sweep.
//
// Cached pressures are invalidated through cluster watchers: every PM
// backing a tracker notifies the JobTracker when its allocation is
// re-solved (consumer attach/detach, demand or cap change, VM arrival or
// departure, failure), and flushDirty refreshes exactly the affected
// trackers at the next schedule() entry. Because every input of
// trackerPressure changes only through PM re-solves, the cached value at
// schedule() entry always equals what a fresh computation would return —
// the index changes where the cost goes, never what is decided.

// freeLess orders the free-slot index: by cached pressure then
// registration index under CapacityAware (the stable-sort order the old
// code produced each call), by registration index alone otherwise (the
// fixed heartbeat order of vanilla Hadoop).
func (jt *JobTracker) freeLess(a, b *TaskTracker) bool {
	if jt.cfg.CapacityAware && a.pressure != b.pressure {
		return a.pressure < b.pressure
	}
	return a.idx < b.idx
}

// freeInsert adds a tracker to one free-slot set at its sorted position,
// returning the updated slice.
func (jt *JobTracker) freeInsert(set []*TaskTracker, tr *TaskTracker) []*TaskTracker {
	i := sort.Search(len(set), func(i int) bool {
		return jt.freeLess(tr, set[i])
	})
	set = append(set, nil)
	copy(set[i+1:], set[i:])
	set[i] = tr
	return set
}

// freeRemove deletes a tracker from one free-slot set. The search runs
// on the same cached key the element was inserted under, so it always
// lands on the exact slot.
func (jt *JobTracker) freeRemove(set []*TaskTracker, tr *TaskTracker) []*TaskTracker {
	i := sort.Search(len(set), func(i int) bool {
		return !jt.freeLess(set[i], tr)
	})
	for i < len(set) && set[i] != tr {
		i++ // equal keys cannot happen (idx is unique); defensive only
	}
	if i < len(set) {
		set = append(set[:i], set[i+1:]...)
	}
	return set
}

// syncFree reconciles a tracker's free-slot set memberships with its
// slot counters; launch and releaseSlot call it after every change.
func (jt *JobTracker) syncFree(tr *TaskTracker) {
	if freeM := tr.mapRunning < jt.cfg.MapSlots; freeM != tr.inFreeMaps {
		if freeM {
			jt.freeMaps = jt.freeInsert(jt.freeMaps, tr)
		} else {
			jt.freeMaps = jt.freeRemove(jt.freeMaps, tr)
		}
		tr.inFreeMaps = freeM
	}
	if freeR := tr.redsRunning < jt.cfg.ReduceSlots; freeR != tr.inFreeReds {
		if freeR {
			jt.freeReds = jt.freeInsert(jt.freeReds, tr)
		} else {
			jt.freeReds = jt.freeRemove(jt.freeReds, tr)
		}
		tr.inFreeReds = freeR
	}
}

// watchPM installs the pressure-invalidation watcher on a PM the first
// time a tracker is backed by it.
func (jt *JobTracker) watchPM(pm *cluster.PM) {
	if pm == nil || jt.watched[pm] {
		return
	}
	jt.watched[pm] = true
	pm.Watch(func() { jt.markDirty(pm) })
}

// markDirty queues a PM whose allocation changed for a pressure refresh.
func (jt *JobTracker) markDirty(pm *cluster.PM) {
	if jt.dirtySet[pm] {
		return
	}
	jt.dirtySet[pm] = true
	jt.dirtyPMs = append(jt.dirtyPMs, pm)
}

// flushDirty refreshes the cached pressure of every tracker on a dirtied
// machine, re-slotting it in the free index under its new key. Trackers
// whose compute VM migrated away are remapped to their current machine
// first (the source PM is always dirtied by the migration's detach).
// Pressures never change between flushes — every input of
// trackerPressure changes only through a PM re-solve, which dirties the
// machine — so after a flush every cached value equals a fresh one.
func (jt *JobTracker) flushDirty() {
	if !jt.cfg.CapacityAware || len(jt.dirtyPMs) == 0 {
		return
	}
	for _, pm := range jt.dirtyPMs {
		delete(jt.dirtySet, pm)
		list := jt.pmTrackers[pm]
		for i := 0; i < len(list); i++ {
			tr := list[i]
			if cur := tr.Compute.Machine(); cur != pm {
				list[i] = list[len(list)-1]
				list[len(list)-1] = nil
				list = list[:len(list)-1]
				i--
				tr.pm = cur
				if cur != nil {
					jt.pmTrackers[cur] = append(jt.pmTrackers[cur], tr)
					jt.watchPM(cur)
				}
			}
			jt.refreshPressure(tr)
		}
		jt.pmTrackers[pm] = list
	}
	jt.dirtyPMs = jt.dirtyPMs[:0]
}

// refreshPressure recomputes one tracker's cached pressure, keeping the
// free-slot sets ordered: entries are removed under the old key and
// reinserted under the new one. jt.pressure_probes counts exactly these
// recomputations now — the real work done — instead of two probes per
// sort comparison.
func (jt *JobTracker) refreshPressure(tr *TaskTracker) {
	if tr.inFreeMaps {
		jt.freeMaps = jt.freeRemove(jt.freeMaps, tr)
	}
	if tr.inFreeReds {
		jt.freeReds = jt.freeRemove(jt.freeReds, tr)
	}
	if jt.perf != nil {
		jt.perf.C.JTPressureProbes++
	}
	tr.pressure = trackerPressure(tr)
	if tr.inFreeMaps {
		jt.freeMaps = jt.freeInsert(jt.freeMaps, tr)
	}
	if tr.inFreeReds {
		jt.freeReds = jt.freeInsert(jt.freeReds, tr)
	}
}

// runningInsert adds a just-launched attempt to the name-sorted running
// list and its node bucket.
func (jt *JobTracker) runningInsert(a *Attempt) {
	name := a.consumer.Name
	i := sort.Search(len(jt.runningSorted), func(i int) bool {
		return jt.runningSorted[i].consumer.Name >= name
	})
	jt.runningSorted = append(jt.runningSorted, nil)
	copy(jt.runningSorted[i+1:], jt.runningSorted[i:])
	jt.runningSorted[i] = a

	node := a.Tracker.Compute
	b, ok := jt.buckets[node]
	if !ok {
		b = &nodeBucket{node: node, name: node.Name()}
		jt.buckets[node] = b
		j := sort.Search(len(jt.bucketOrder), func(j int) bool {
			return jt.bucketOrder[j].name >= b.name
		})
		jt.bucketOrder = append(jt.bucketOrder, nil)
		copy(jt.bucketOrder[j+1:], jt.bucketOrder[j:])
		jt.bucketOrder[j] = b
	}
	j := sort.Search(len(b.attempts), func(j int) bool {
		return b.attempts[j].consumer.Name >= name
	})
	b.attempts = append(b.attempts, nil)
	copy(b.attempts[j+1:], b.attempts[j:])
	b.attempts[j] = a
}

// runningRemove drops a finished or killed attempt from the running list
// and its node bucket. Emptied buckets stay registered (skipped by
// iteration) so node churn never reshuffles bucketOrder.
func (jt *JobTracker) runningRemove(a *Attempt) {
	name := a.consumer.Name
	i := sort.Search(len(jt.runningSorted), func(i int) bool {
		return jt.runningSorted[i].consumer.Name >= name
	})
	for i < len(jt.runningSorted) && jt.runningSorted[i] != a {
		i++
	}
	if i < len(jt.runningSorted) {
		jt.runningSorted = append(jt.runningSorted[:i], jt.runningSorted[i+1:]...)
	}
	if b, ok := jt.buckets[a.Tracker.Compute]; ok {
		j := sort.Search(len(b.attempts), func(j int) bool {
			return b.attempts[j].consumer.Name >= name
		})
		for j < len(b.attempts) && b.attempts[j] != a {
			j++
		}
		if j < len(b.attempts) {
			b.attempts = append(b.attempts[:j], b.attempts[j+1:]...)
		}
	}
}

// RunningCount returns the number of attempts currently executing,
// without materializing the list.
func (jt *JobTracker) RunningCount() int { return len(jt.runningSorted) }

// EachNodeAttempts visits every compute node with running attempts in
// node-name order, passing the attempts on it ordered by consumer name —
// the grouping and order the Phase II DRM's sweep previously rebuilt from
// scratch each tick. The callback must not launch, kill, or relocate
// attempts; adjusting demands, caps, and weights is safe.
func (jt *JobTracker) EachNodeAttempts(fn func(node cluster.Node, attempts []*Attempt)) {
	for _, b := range jt.bucketOrder {
		if len(b.attempts) > 0 {
			fn(b.node, b.attempts)
		}
	}
}

// attemptsOn snapshots the running attempts of one tracker in consumer-
// name order, for the failure path that kills them (killing mutates the
// bucket, so iteration needs a stable copy). The returned slice is reused
// across calls.
func (jt *JobTracker) attemptsOn(tr *TaskTracker) []*Attempt {
	out := jt.runningSnap[:0]
	if b, ok := jt.buckets[tr.Compute]; ok {
		for _, a := range b.attempts {
			if a.Tracker == tr {
				out = append(out, a)
			}
		}
	}
	jt.runningSnap = out
	return out
}

// setTaskState moves a task between scheduling states, maintaining the
// per-job pending counters and the gate-aware schedulable totals that let
// schedule() prove "no assignable work" in O(1).
func (jt *JobTracker) setTaskState(t *Task, s TaskState) {
	old := t.state
	if old == s {
		return
	}
	t.state = s
	job := t.Job
	if t.Kind == MapTask {
		if old == TaskPending {
			job.pendingMaps--
			if job.state == JobMapPhase {
				jt.schedulableMaps--
			}
		}
		if s == TaskPending {
			job.pendingMaps++
			if job.state == JobMapPhase {
				jt.schedulableMaps++
			}
		}
		return
	}
	if old == TaskPending {
		job.pendingReds--
		if job.state == JobReducePhase {
			jt.schedulableReds--
		}
	}
	if s == TaskPending {
		job.pendingReds++
		if job.state == JobReducePhase {
			jt.schedulableReds++
		}
	}
}

// setJobState moves a job between phases, shifting its pending tasks'
// contribution between the schedulable totals as the phase gates open and
// close (maps schedule only in JobMapPhase, reduces only in
// JobReducePhase — the same gates pendingTask and hasPending enforce).
func (jt *JobTracker) setJobState(job *Job, s JobState) {
	switch job.state {
	case JobMapPhase:
		jt.schedulableMaps -= job.pendingMaps
	case JobReducePhase:
		jt.schedulableReds -= job.pendingReds
	}
	job.state = s
	switch s {
	case JobMapPhase:
		jt.schedulableMaps += job.pendingMaps
	case JobReducePhase:
		jt.schedulableReds += job.pendingReds
	}
}

// removeActiveJob drops a completed job from the submission-ordered
// active list.
func (jt *JobTracker) removeActiveJob(job *Job) {
	for i, j := range jt.activeJobs {
		if j == job {
			jt.activeJobs = append(jt.activeJobs[:i], jt.activeJobs[i+1:]...)
			return
		}
	}
}
