package mapred

import (
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/dfs"
	"repro/internal/resource"
	"repro/internal/sim"
)

func memoryKindForTest() resource.Kind { return resource.Memory }

func newEngineForTest() *sim.Engine { return sim.New() }

// newVirtualJT builds a virtual cluster (1 GB single-vCPU guests) with a
// JobTracker over its VMs.
func newVirtualJT(t *testing.T, engine *sim.Engine, pms, vmsPerPM int) *JobTracker {
	t.Helper()
	c := cluster.New(engine, cluster.DefaultConfig(), 7)
	fs := dfs.New(engine, dfs.Config{}, 7)
	jt := NewJobTracker(engine, fs, Config{}, nil)
	hosts := c.AddPMs("pm", pms)
	vms, err := c.SpreadVMs("vm", pms*vmsPerPM, hosts, 1, 1024)
	if err != nil {
		t.Fatal(err)
	}
	for _, vm := range vms {
		jt.AddTracker(vm)
	}
	return jt
}

func kmeansLike(inputMB float64) JobSpec {
	return JobSpec{
		Name:             "Kmeans",
		InputMB:          inputMB,
		Reduces:          4,
		MapStreamMBps:    40,
		MapCPUPerMB:      0.05,
		MapMemMB:         250,
		ShuffleRatio:     0.06,
		ReduceStreamMBps: 30,
		ReduceCPUPerMB:   0.03,
		ReduceMemMB:      250,
		OutputRatio:      1,
	}
}

func TestIterativeJobChainsRounds(t *testing.T) {
	engine, jt := rig(t, 4, Config{}, nil)
	var finished *IterativeJob
	ij, err := jt.SubmitIterative(IterativeSpec{
		Base:         kmeansLike(512),
		Iterations:   3,
		OutputGrowth: 1,
	}, func(j *IterativeJob) { finished = j })
	if err != nil {
		t.Fatal(err)
	}
	engine.Run()
	if finished != ij {
		t.Fatal("OnComplete not delivered")
	}
	if !ij.Done() || ij.Err() != nil {
		t.Fatalf("chain incomplete: done=%v err=%v", ij.Done(), ij.Err())
	}
	if got := ij.CompletedIterations(); got != 3 {
		t.Errorf("completed iterations = %d, want 3", got)
	}
	jobs := ij.Jobs()
	if len(jobs) != 3 {
		t.Fatalf("launched %d jobs, want 3", len(jobs))
	}
	// Rounds are sequenced: each starts after the previous finishes.
	var sum time.Duration
	for i, j := range jobs {
		if !j.Done() {
			t.Fatalf("round %d incomplete", i)
		}
		sum += j.JCT()
	}
	if ij.JCT() < sum {
		t.Errorf("chain JCT %v below the sum of rounds %v (rounds overlapped)", ij.JCT(), sum)
	}
	for i, j := range jobs {
		want := "Kmeans-iter" + string(rune('0'+i))
		if j.Spec.Name != want {
			t.Errorf("round %d name = %s, want %s", i, j.Spec.Name, want)
		}
	}
}

func TestIterativeOutputGrowthShrinksInput(t *testing.T) {
	engine, jt := rig(t, 4, Config{}, nil)
	ij, err := jt.SubmitIterative(IterativeSpec{
		Base:         kmeansLike(2048),
		Iterations:   3,
		OutputGrowth: 0.5,
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	engine.Run()
	jobs := ij.Jobs()
	if len(jobs) != 3 {
		t.Fatalf("launched %d jobs", len(jobs))
	}
	if jobs[1].Spec.InputMB >= jobs[0].Spec.InputMB {
		t.Errorf("round 1 input %v not below round 0 %v", jobs[1].Spec.InputMB, jobs[0].Spec.InputMB)
	}
	if jobs[2].Spec.InputMB >= jobs[1].Spec.InputMB {
		t.Errorf("round 2 input %v not below round 1 %v", jobs[2].Spec.InputMB, jobs[1].Spec.InputMB)
	}
}

func TestIterativeValidation(t *testing.T) {
	_, jt := rig(t, 2, Config{}, nil)
	if _, err := jt.SubmitIterative(IterativeSpec{Base: kmeansLike(512)}, nil); err == nil {
		t.Error("zero iterations accepted")
	}
	if _, err := jt.SubmitIterative(IterativeSpec{Base: JobSpec{}, Iterations: 2}, nil); err == nil {
		t.Error("invalid base spec accepted")
	}
	if _, err := jt.SubmitIterative(IterativeSpec{Base: kmeansLike(512), Iterations: 2, OutputGrowth: -1}, nil); err == nil {
		t.Error("negative growth accepted")
	}
}

func TestIterativeFixedWorkJob(t *testing.T) {
	engine, jt := rig(t, 2, Config{}, nil)
	pi := JobSpec{Name: "PiEst", Reduces: 1, FixedMapWork: 20, FixedMapTasks: 4, MapMemMB: 150}
	ij, err := jt.SubmitIterative(IterativeSpec{Base: pi, Iterations: 2}, nil)
	if err != nil {
		t.Fatal(err)
	}
	engine.Run()
	if !ij.Done() || ij.CompletedIterations() != 2 {
		t.Fatalf("fixed-work chain incomplete: %d/2", ij.CompletedIterations())
	}
}

func TestInMemoryShiftsDiskToMemory(t *testing.T) {
	// Same Sort-shaped job, classic vs in-memory, on one native node with
	// plenty of RAM: in-memory must be at least as fast (no spill) and
	// its reduce tasks must demand more memory.
	run := func(inMemory bool) (jct float64, maxMem float64) {
		engine, jt := rig(t, 4, Config{}, nil)
		spec := sortLike(1024)
		spec.InMemory = inMemory
		job, err := jt.Submit(spec, nil)
		if err != nil {
			t.Fatal(err)
		}
		sampled := 0.0
		for !job.Done() {
			engine.RunUntil(engine.Now() + time.Second)
			for _, a := range jt.RunningAttempts() {
				if m := a.Consumer().Demand.Get(memoryKindForTest()); m > sampled {
					sampled = m
				}
			}
			if engine.Now() > 4*time.Hour {
				t.Fatal("job stalled")
			}
		}
		return job.JCT().Seconds(), sampled
	}
	classicJCT, classicMem := run(false)
	memJCT, memMem := run(true)
	if memJCT > classicJCT {
		t.Errorf("in-memory JCT %v slower than classic %v with ample RAM", memJCT, classicJCT)
	}
	if memMem <= classicMem {
		t.Errorf("in-memory peak task memory %v not above classic %v", memMem, classicMem)
	}
}

func TestInMemoryPaysPagingOnSmallVMs(t *testing.T) {
	// On 1 GB guests, caching an entire Sort partition in RAM overcommits
	// the VM: the Spark-style variant should lose its advantage or pay a
	// paging penalty relative to its own performance on big-memory nodes.
	run := func(inMemory bool) float64 {
		engine := newEngineForTest()
		jt := newVirtualJT(t, engine, 4, 2)
		spec := sortLike(2048)
		spec.InMemory = inMemory
		job, err := jt.Submit(spec, nil)
		if err != nil {
			t.Fatal(err)
		}
		engine.Run()
		if !job.Done() {
			t.Fatal("job stalled")
		}
		return job.JCT().Seconds()
	}
	classic := run(false)
	inMem := run(true)
	// With 24 reducers each caching ~85 MB plus base footprints on 1 GB
	// VMs, in-memory should not be dramatically better; allow it to win
	// modestly but flag a suspiciously large gap, which would mean the
	// memory pressure model is not engaging.
	if inMem < classic*0.5 {
		t.Errorf("in-memory %vs vs classic %vs: paging pressure not engaging", inMem, classic)
	}
}
