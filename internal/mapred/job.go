package mapred

import (
	"time"

	"repro/internal/cluster"
	"repro/internal/dfs"
	"repro/internal/trace"
)

// JobState is a job's lifecycle state.
type JobState int

// Job states.
const (
	JobMapPhase JobState = iota + 1
	JobReducePhase
	JobDone
)

// Job is a submitted MapReduce job.
type Job struct {
	// ID is the submission sequence number.
	ID int
	// Spec is the workload description.
	Spec JobSpec
	// Weight is the job's Fair-scheduler share weight (default 1).
	Weight float64
	// OnComplete fires when the last reduce (or last map of a map-only
	// job) finishes.
	OnComplete func(*Job)

	jt        *JobTracker
	inputName string
	maps      []*Task
	reduces   []*Task
	state     JobState

	submittedAt   time.Duration
	mapsDoneAt    time.Duration
	doneAt        time.Duration
	mapsRemaining int
	redsRemaining int
	// pendingMaps/pendingReds count tasks in TaskPending, maintained by
	// JobTracker.setTaskState; together with the phase gate they answer
	// hasPending in O(1) and feed the scheduler's schedulable totals.
	pendingMaps int
	pendingReds int

	// mapOutputMB records, per physical machine, how much map output
	// lives there; the shuffle model charges network for the fraction a
	// reduce task cannot fetch host-locally.
	mapOutputMB map[*cluster.PM]float64
	totalOutput float64

	// rateStats accumulates the average progress rate of completed
	// attempts per kind; the straggler detector compares running
	// attempts against this history.
	rateStats map[TaskKind]*rateStat

	span      trace.Span // whole-job span
	phaseSpan trace.Span // current phase (map, then reduce)
}

type rateStat struct {
	count int
	sum   float64
}

func (j *Job) recordAttemptRate(kind TaskKind, rate float64) {
	if rate <= 0 {
		return
	}
	st, ok := j.rateStats[kind]
	if !ok {
		st = &rateStat{}
		j.rateStats[kind] = st
	}
	st.count++
	st.sum += rate
}

// historicalRate is the mean progress rate of completed attempts of the
// kind; ok is false before any completion.
func (j *Job) historicalRate(kind TaskKind) (float64, bool) {
	st, ok := j.rateStats[kind]
	if !ok || st.count == 0 {
		return 0, false
	}
	return st.sum / float64(st.count), true
}

// State returns the job's phase.
func (j *Job) State() JobState { return j.state }

// Done reports whether the job has finished.
func (j *Job) Done() bool { return j.state == JobDone }

// Maps returns the job's map tasks.
func (j *Job) Maps() []*Task {
	out := make([]*Task, len(j.maps))
	copy(out, j.maps)
	return out
}

// Reduces returns the job's reduce tasks.
func (j *Job) Reduces() []*Task {
	out := make([]*Task, len(j.reduces))
	copy(out, j.reduces)
	return out
}

// JCT returns the job completion time; zero until the job is done.
func (j *Job) JCT() time.Duration {
	if j.state != JobDone {
		return 0
	}
	return j.doneAt - j.submittedAt
}

// MapPhase returns the duration from submission to the last map
// completion; zero until the map phase ends.
func (j *Job) MapPhase() time.Duration {
	if j.mapsDoneAt == 0 {
		return 0
	}
	return j.mapsDoneAt - j.submittedAt
}

// ReducePhase returns the duration from the last map to job completion;
// zero until done. Map-only jobs report zero.
func (j *Job) ReducePhase() time.Duration {
	if j.state != JobDone || len(j.reduces) == 0 {
		return 0
	}
	return j.doneAt - j.mapsDoneAt
}

// pendingTask returns a schedulable task of the kind, honouring the map
// barrier before reduces, with locality preference for maps: node-local
// first, then host-local, then any.
func (j *Job) pendingTask(kind TaskKind, tr *TaskTracker) *Task {
	if kind == ReduceTask {
		if j.state != JobReducePhase {
			return nil
		}
		for _, t := range j.reduces {
			if t.state == TaskPending {
				return t
			}
		}
		return nil
	}
	if j.state != JobMapPhase {
		return nil
	}
	var hostLocal, any *Task
	for _, t := range j.maps {
		if t.state != TaskPending {
			continue
		}
		if t.Block == nil {
			if any == nil {
				any = t
			}
			continue
		}
		switch j.jt.fs.BlockLocality(t.Block, tr.Storage) {
		case dfs.NodeLocal:
			return t
		case dfs.HostLocal:
			if hostLocal == nil {
				hostLocal = t
			}
		default:
			if any == nil {
				any = t
			}
		}
	}
	if hostLocal != nil {
		return hostLocal
	}
	return any
}

// hasPending reports whether the job has unscheduled tasks of the kind,
// from the maintained pending counters — no task-list scan.
func (j *Job) hasPending(kind TaskKind) bool {
	if kind == ReduceTask {
		return j.state == JobReducePhase && j.pendingReds > 0
	}
	return j.state == JobMapPhase && j.pendingMaps > 0
}

// runningTasks counts tasks currently in the running state.
func (j *Job) runningTasks() int {
	n := 0
	for _, t := range j.maps {
		if t.state == TaskRunning {
			n++
		}
	}
	for _, t := range j.reduces {
		if t.state == TaskRunning {
			n++
		}
	}
	return n
}

// blockMB is the input size of a map task's block.
func (j *Job) blockMB(t *Task) float64 {
	if t.Block != nil {
		return t.Block.SizeMB
	}
	if len(j.maps) == 0 {
		return 0
	}
	return j.Spec.InputMB / float64(len(j.maps))
}

// shufflePerReduce is the shuffle volume each reduce task consumes.
func (j *Job) shufflePerReduce() float64 {
	if len(j.reduces) == 0 {
		return 0
	}
	return j.totalOutput / float64(len(j.reduces))
}

// remoteShuffleFraction is the fraction of map output that is not on the
// reduce node's physical machine and must cross the network.
func (j *Job) remoteShuffleFraction(n cluster.Node) float64 {
	if j.totalOutput <= 0 {
		return 0
	}
	local := j.mapOutputMB[n.Machine()]
	f := 1 - local/j.totalOutput
	if f < 0 {
		return 0
	}
	return f
}

// recordMapOutput accounts a finished map attempt's output on the machine
// it ran on.
func (j *Job) recordMapOutput(t *Task, tr *TaskTracker) {
	out := j.blockMB(t) * j.Spec.ShuffleRatio
	if j.Spec.FixedMapWork > 0 {
		out = 1 // trivial intermediate data
	}
	pm := tr.Compute.Machine()
	j.mapOutputMB[pm] += out
	j.totalOutput += out
	t.outputTracker = tr
	t.outputPM = pm
	t.outputMB = out
}

// uncountMapOutput reverses recordMapOutput when a completed map's
// output node is lost and the task returns to the pending queue.
func (j *Job) uncountMapOutput(t *Task) {
	if t.outputTracker == nil {
		return
	}
	if v := j.mapOutputMB[t.outputPM] - t.outputMB; v > 1e-9 {
		j.mapOutputMB[t.outputPM] = v
	} else {
		delete(j.mapOutputMB, t.outputPM)
	}
	j.totalOutput -= t.outputMB
	if j.totalOutput < 0 {
		j.totalOutput = 0
	}
	t.outputTracker = nil
	t.outputPM = nil
	t.outputMB = 0
}
