package mapred

import (
	"fmt"
	"time"

	"repro/internal/sim"
	"repro/internal/trace"
)

// This file is the JobTracker's failure detector and recovery machinery:
// heartbeat-based loss detection, per-tracker failure counting with
// blacklist + exponential-backoff rejoin, and Hadoop's map-output
// re-execution semantics (a reducer that can no longer fetch a completed
// map's output forces that map to run again).

// ensureHealthTicker starts the heartbeat scanner while jobs are active;
// like the speculation ticker it stops itself when the queue drains so
// simulations can run the event queue dry.
func (jt *JobTracker) ensureHealthTicker() {
	if jt.healthTick != nil && !jt.healthTick.Stopped() {
		return
	}
	jt.healthTick = sim.NewTicker(jt.engine, jt.cfg.HeartbeatInterval, func(time.Duration) {
		if len(jt.activeJobs) == 0 {
			jt.healthTick.Stop()
			return
		}
		jt.checkTrackerHealth()
		if !jt.anyViableTracker() {
			// Every worker is permanently gone — a destroyed VM never
			// comes back, so pending jobs can never finish. Park the
			// detector so the simulation runs its event queue dry and the
			// caller sees a clean stall instead of time ticking forever.
			if jt.tracer != nil {
				jt.tracer.Instant("jobtracker", "mapred", "fleet-dead",
					trace.F("pending_jobs", float64(len(jt.Jobs()))))
			}
			jt.healthTick.Stop()
		}
	})
}

// anyViableTracker reports whether at least one tracker could still run
// work, now or after a repair: its nodes must exist (destroyed VMs leave
// nil machines behind, which is permanent) and it must not be
// administratively disabled. Failed-but-repairable machines, hangs and
// blacklist hold-offs all count as viable — they can recover.
func (jt *JobTracker) anyViableTracker() bool {
	for _, tr := range jt.trackers {
		if !tr.disabled && tr.Compute.Machine() != nil && tr.Storage.Machine() != nil {
			return true
		}
	}
	return false
}

// checkTrackerHealth is one heartbeat sweep: responsive trackers renew
// their lease (and rejoin once any blacklist hold-off expires), silent
// ones are declared lost after TrackerTimeout.
func (jt *JobTracker) checkTrackerHealth() {
	now := jt.engine.Now()
	for _, tr := range jt.trackers {
		if tr.lost {
			if tr.responsive() && now >= tr.blacklistUntil {
				jt.restoreTracker(tr)
			}
			continue
		}
		if tr.responsive() {
			tr.lastSeen = now
			continue
		}
		if now-tr.lastSeen >= jt.cfg.TrackerTimeout {
			jt.trackerLost(tr, "heartbeat-timeout")
		}
	}
}

// OutputUnfetchable explains why a completed map's output on this
// tracker cannot serve shuffle fetches right now, or returns "" when it
// can. Map output lives on the mapper's local disk, so it is gone with
// the node and unreachable across a partition. The reducer-side fetch
// gate and the safety-invariant checker share this predicate so the
// recovery path and its watchdog cannot drift apart.
func (tr *TaskTracker) OutputUnfetchable() string {
	m := tr.Compute.Machine()
	switch {
	case m == nil:
		return "node destroyed"
	case m.Failed():
		return "machine failed"
	case m.Isolated():
		return "network partition"
	case tr.lost:
		return "tracker lost without map re-execution"
	}
	return ""
}

// shuffleFetchFailed is the reducer-side fetch-failure detector, checked
// at the moment a reduce attempt would complete: if any map output it
// shuffled from sits on an unreachable node, the completion is a lie —
// the data was never fetchable. The attempt is discarded and re-queued
// and the affected maps are re-executed, which is Hadoop's "too many
// fetch failures" escalation compressed to the simulator's granularity.
// This covers the window between a failure or partition and the
// heartbeat detector noticing it; once the detector fires, trackersLost
// handles the same outputs. Returns whether the completion was vetoed.
func (jt *JobTracker) shuffleFetchFailed(a *Attempt) bool {
	if jt.cfg.DisableMapReexecution {
		// Fault-injection hook: with re-execution broken the whole fetch
		// machinery is off, so the invariant checker sees the raw damage.
		return false
	}
	var bad []*TaskTracker
	seen := make(map[*TaskTracker]bool)
	for _, m := range a.Task.Job.maps {
		if m.state != TaskDone || m.outputTracker == nil || seen[m.outputTracker] {
			continue
		}
		if m.outputTracker.OutputUnfetchable() == "" {
			continue
		}
		seen[m.outputTracker] = true
		bad = append(bad, m.outputTracker)
	}
	if len(bad) == 0 {
		return false
	}
	jt.mFetchFailures.Inc()
	names := make([]string, len(bad))
	for i, tr := range bad {
		names[i] = tr.Compute.Name()
	}
	if jt.tracer != nil {
		jt.tracer.Instant(a.Tracker.Compute.Name(), "mapred", "fetch-failure",
			trace.S("reduce", a.Task.ID()),
			trace.F("unreachable_sources", float64(len(bad))))
	}
	if jt.auditLog != nil {
		jt.auditLog.Add("mapred", "fetch-failure", a.Task.ID(),
			"discard the reduce completion, re-execute the source maps",
			fmt.Sprintf("shuffle source(s) %v unreachable at completion (%s)",
				names, bad[0].OutputUnfetchable()))
	}
	// Re-queue the stranded outputs first: the job rolls back to the map
	// phase, so the re-queued reduce below cannot relaunch until the
	// barrier is re-met. The rollback kills this attempt too (it is still
	// formally running); the fallback covers reduce-less edge ordering.
	for _, tr := range bad {
		jt.reexecuteLostMaps(tr)
	}
	if !a.killed {
		jt.attemptKilled(a)
	}
	return true
}

// trackerLost declares a single tracker dead; see trackersLost.
func (jt *JobTracker) trackerLost(tr *TaskTracker, cause string) {
	jt.trackersLost([]*TaskTracker{tr}, cause)
}

// trackersLost declares a batch of trackers dead at once: their running
// attempts are killed and re-queued, completed map outputs on them are
// re-executed, and each tracker's failure count advances toward the
// blacklist threshold. Correlated losses (a PM taking several trackers
// down) must be one batch, so the re-queue triggered by the first kill
// cannot land work on a sibling that is about to be declared dead too.
// Returns how many trackers were newly lost.
func (jt *JobTracker) trackersLost(batch []*TaskTracker, cause string) int {
	now := jt.engine.Now()
	var lost []*TaskTracker
	for _, tr := range batch {
		if tr == nil || tr.lost {
			continue
		}
		lost = append(lost, tr)
		tr.lost = true
		tr.blacklistUntil = now
		blacklisted := false
		trCause := cause
		if tr.isolatedOnly() {
			// A network partition, not a node fault: the tracker is
			// healthy and rejoins as soon as the partition heals. Charging
			// the failure count here would blacklist innocent machines
			// after every split.
			trCause = "network-partition"
		} else {
			tr.failures++
			if over := tr.failures - jt.cfg.TrackerFailureLimit; over >= 0 {
				// Repeat offenders sit out exponentially longer, capped so
				// the shift cannot overflow.
				if over > 6 {
					over = 6
				}
				tr.blacklistUntil = now + jt.cfg.BlacklistBackoff<<uint(over)
				blacklisted = true
				jt.mTrackersBlacklisted.Inc()
			}
		}
		jt.mTrackersLost.Inc()
		if jt.tracer != nil {
			args := []trace.Arg{
				trace.S("cause", trCause),
				trace.F("failures", float64(tr.failures)),
			}
			if blacklisted {
				args = append(args, trace.F("blacklist_sec", (tr.blacklistUntil-now).Seconds()))
			}
			jt.tracer.Instant(tr.Compute.Name(), "mapred", "tracker-lost", args...)
		}
		if jt.auditLog != nil {
			decision := "rejoin on next responsive heartbeat"
			reason := fmt.Sprintf("%s; failure %d of %d tolerated", trCause, tr.failures, jt.cfg.TrackerFailureLimit)
			if blacklisted {
				decision = fmt.Sprintf("blacklist for %v", tr.blacklistUntil-now)
			}
			if trCause == "network-partition" {
				decision = "rejoin when the partition heals"
				reason = "partition isolated the node; no failure charged against it"
			}
			jt.auditLog.Add("mapred", "tracker-lost", tr.Compute.Name(), decision, reason)
		}
	}
	if len(lost) == 0 {
		return 0
	}
	// Every tracker in the batch is marked before any kill runs: the
	// schedule() calls inside attemptKilled skip all of them. attemptsOn
	// snapshots the tracker's node bucket in consumer-name order — the
	// same order the old full RunningAttempts scan visited the tracker's
	// attempts in, without materializing the fleet per lost tracker.
	for _, tr := range lost {
		for _, a := range jt.attemptsOn(tr) {
			if a.consumer != nil && a.consumer.Running() {
				a.consumer.Kill() // fires attemptKilled via OnKilled
			} else {
				jt.attemptKilled(a)
			}
		}
		jt.reexecuteLostMaps(tr)
	}
	jt.schedule()
	return len(lost)
}

// restoreTracker returns a lost-but-responsive tracker to service.
func (jt *JobTracker) restoreTracker(tr *TaskTracker) {
	tr.lost = false
	tr.lastSeen = jt.engine.Now()
	jt.mTrackersRestored.Inc()
	if jt.tracer != nil {
		jt.tracer.Instant(tr.Compute.Name(), "mapred", "tracker-restored",
			trace.F("failures", float64(tr.failures)))
	}
	jt.auditLog.Add("mapred", "tracker-restored", tr.Compute.Name(), "rejoin",
		fmt.Sprintf("responsive again after %d failure(s), blacklist hold-off expired", tr.failures))
	jt.schedule()
}

// reexecuteLostMaps re-queues every completed map task whose output
// lived on the lost tracker, for jobs that still have reduces to feed —
// Hadoop's semantics: map output is stored on the mapper's local disk,
// not in HDFS, so losing the node loses the output and the reducers'
// fetches force a re-run. Jobs already in the reduce phase roll back to
// the map phase. Returns the number of re-queued maps.
func (jt *JobTracker) reexecuteLostMaps(tr *TaskTracker) int {
	if jt.cfg.DisableMapReexecution {
		// Fault-injection hook: leave the lost outputs dangling so the
		// invariant checker can prove it notices.
		return 0
	}
	now := jt.engine.Now()
	total := 0
	for _, job := range jt.activeJobs {
		if len(job.reduces) == 0 {
			// Map-only jobs write straight to the DFS; nothing to redo.
			continue
		}
		n := 0
		for _, t := range job.maps {
			if t.state != TaskDone || t.outputTracker != tr {
				continue
			}
			job.uncountMapOutput(t)
			jt.setTaskState(t, TaskPending)
			t.pendingSince = now
			job.mapsRemaining++
			n++
		}
		if n == 0 {
			continue
		}
		total += n
		rolledBack := false
		if job.state == JobReducePhase {
			jt.rollbackToMapPhase(job)
			rolledBack = true
		}
		if jt.auditLog != nil {
			decision := fmt.Sprintf("re-queue %d completed map(s)", n)
			if rolledBack {
				decision += ", roll job back to map phase"
			}
			jt.auditLog.Add("mapred", "reexecute-maps",
				fmt.Sprintf("%s-%d", job.Spec.Name, job.ID), decision,
				fmt.Sprintf("map outputs lived on lost tracker %s; reducers can no longer fetch them", tr.Compute.Name()))
		}
		if jt.tracer != nil {
			jt.tracer.Instant(fmt.Sprintf("job:%s-%d", job.Spec.Name, job.ID),
				"job", "maps-reexecuted",
				trace.S("tracker", tr.Compute.Name()),
				trace.F("count", float64(n)))
		}
	}
	if total > 0 {
		jt.mMapsReexecuted.Add(float64(total))
	}
	return total
}

// rollbackToMapPhase returns a reduce-phase job to the map phase after
// map output loss: running reduce attempts are killed (they can no
// longer fetch) and re-queued behind the restored map barrier.
func (jt *JobTracker) rollbackToMapPhase(job *Job) {
	// Phase flips first so the kills below cannot relaunch reduces.
	jt.setJobState(job, JobMapPhase)
	job.mapsDoneAt = 0
	job.phaseSpan.End(trace.S("outcome", "rolled-back"))
	if jt.tracer != nil {
		job.phaseSpan = jt.tracer.Begin(
			fmt.Sprintf("job:%s-%d", job.Spec.Name, job.ID), "job", "map-phase",
			trace.S("cause", "map-output-lost"))
	}
	for _, t := range job.reduces {
		for _, a := range t.attempts {
			if !a.Running() {
				continue
			}
			if a.consumer != nil && a.consumer.Running() {
				a.consumer.Kill()
			} else {
				jt.attemptKilled(a)
			}
		}
	}
}
