package mapred

import (
	"fmt"

	"repro/internal/critpath"
)

// CriticalPath reconstructs the chain of task attempts and barrier
// waits that bounded this job's completion time. The DAG handed to the
// analyzer is the job as it actually ran: one node per task (its
// winning attempt — for re-executed maps, the last attempt whose
// output survived), plus a synthetic zero-duration barrier at the
// map→reduce transition so the edge count stays O(maps+reduces).
//
// The per-phase totals in the returned report telescope exactly to the
// job's JCT. Only completed jobs can be analyzed.
func (j *Job) CriticalPath() (*critpath.Report, error) {
	if j.state != JobDone {
		return nil, fmt.Errorf("mapred: CriticalPath(%s-%d): job not done", j.Spec.Name, j.ID)
	}
	nodes := make([]critpath.Node, 0, len(j.maps)+1+len(j.reduces))
	for _, t := range j.maps {
		n, err := winningNode(t)
		if err != nil {
			return nil, err
		}
		nodes = append(nodes, n)
	}
	if len(j.reduces) > 0 {
		barrier := len(nodes)
		deps := make([]int, len(j.maps))
		for i := range deps {
			deps[i] = i
		}
		nodes = append(nodes, critpath.Node{
			ID: "map-barrier", Kind: "barrier",
			Start: j.mapsDoneAt, End: j.mapsDoneAt,
			Deps: deps, Attempts: 1, Barrier: true,
		})
		for _, t := range j.reduces {
			n, err := winningNode(t)
			if err != nil {
				return nil, err
			}
			// A reduce that completed before a map-output-loss rollback
			// predates the final barrier; it did not wait on it.
			if n.Start >= j.mapsDoneAt {
				n.Deps = []int{barrier}
			}
			nodes = append(nodes, n)
		}
	}
	return critpath.Analyze(j.submittedAt, nodes)
}

// winningNode maps a completed task to its DAG node: the last attempt
// that finished successfully (re-executions after output loss finish
// later than the original, and losing speculative racers never finish).
func winningNode(t *Task) (critpath.Node, error) {
	var win *Attempt
	for _, a := range t.attempts {
		if a.finished && (win == nil || a.FinishedAt > win.FinishedAt) {
			win = a
		}
	}
	if win == nil {
		return critpath.Node{}, fmt.Errorf("mapred: task %s has no completed attempt", t.ID())
	}
	return critpath.Node{
		ID: t.ID(), Kind: t.Kind.String(), Where: win.Tracker.Compute.Name(),
		Start: win.StartedAt, End: win.FinishedAt,
		Attempts: len(t.attempts), Speculative: win.Speculative,
	}, nil
}
