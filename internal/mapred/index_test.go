package mapred

import (
	"fmt"
	"testing"

	"repro/internal/cluster"
)

// The index layer exists to make steady-state scheduling cheap at
// datacenter scale, so its maintenance operations must not allocate
// once the backing slices have grown to the fleet's working size —
// otherwise a 10k-PM run spends its time in the garbage collector
// instead of the event loop. Growth allocations (first insert into a
// fresh set, a new node bucket) are expected and excluded by
// prewarming before measuring.

// TestFreeSetMaintenanceZeroAlloc measures the slot-churn hot path:
// a tracker leaving and re-entering the free-slot sets as its map and
// reduce slots fill and drain.
func TestFreeSetMaintenanceZeroAlloc(t *testing.T) {
	_, jt := rig(t, 16, Config{}, nil)
	trackers := jt.Trackers()
	tr := trackers[len(trackers)/2]
	churn := func() {
		tr.mapRunning = jt.cfg.MapSlots
		tr.redsRunning = jt.cfg.ReduceSlots
		jt.syncFree(tr) // leaves both sets
		tr.mapRunning = 0
		tr.redsRunning = 0
		jt.syncFree(tr) // re-enters both sets
	}
	churn() // prewarm: every tracker already resides in both sets from AddTracker
	if allocs := testing.AllocsPerRun(100, churn); allocs != 0 {
		t.Errorf("free-set churn allocates %.1f times per slot cycle, want 0", allocs)
	}
}

// TestRunningIndexMaintenanceZeroAlloc measures the attempt-launch and
// -release hot path: inserting into and removing from the name-sorted
// running list and its per-node bucket.
func TestRunningIndexMaintenanceZeroAlloc(t *testing.T) {
	_, jt := rig(t, 16, Config{}, nil)
	trackers := jt.Trackers()
	attempts := make([]*Attempt, len(trackers))
	for i, tr := range trackers {
		attempts[i] = &Attempt{
			Tracker:  tr,
			consumer: &cluster.Consumer{Name: fmt.Sprintf("alloc-test-%02d", i)},
		}
	}
	churn := func() {
		for _, a := range attempts {
			jt.runningInsert(a)
		}
		for _, a := range attempts {
			jt.runningRemove(a)
		}
	}
	churn() // prewarm: creates the node buckets and grows the slices once
	if allocs := testing.AllocsPerRun(100, churn); allocs != 0 {
		t.Errorf("running-index churn allocates %.1f times per launch/release sweep, want 0", allocs)
	}
}

// TestPressureRefreshKeepsSetsOrdered drives the dirty-PM refresh path
// and verifies both free-slot sets stay sorted under their comparator —
// the invariant the binary searches in freeInsert/freeRemove rely on.
func TestPressureRefreshKeepsSetsOrdered(t *testing.T) {
	_, jt := rig(t, 16, Config{CapacityAware: true}, nil)
	for _, tr := range jt.Trackers() {
		jt.refreshPressure(tr)
	}
	for _, set := range [][]*TaskTracker{jt.freeMaps, jt.freeReds} {
		for i := 1; i < len(set); i++ {
			if jt.freeLess(set[i], set[i-1]) {
				t.Fatalf("free set out of order at %d: %s before %s",
					i, set[i-1].Compute.Name(), set[i].Compute.Name())
			}
		}
	}
}
