// Package chaossearch is a seed-deterministic fuzzer for the simulated
// stack's recovery machinery. It generates random correlated-fault
// schedules (machine, rack and power-domain crashes, network
// partitions, hangs, block loss, stragglers) against a fixed scenario
// template, runs every schedule under the runtime invariant checker,
// and — when a schedule breaks an invariant — delta-debugs it down to
// the smallest schedule that still reproduces the same named violation.
//
// Everything is derived from (template, search seed, trial index), so
// a search is exactly reproducible: the same seed finds the same
// failing schedule, minimizes it identically, and emits byte-identical
// CHAOS.json at any worker-pool parallelism. Trials run through the
// experiments worker pool; results are index-ordered, and the lowest
// failing index wins, which makes the outcome independent of worker
// scheduling.
package chaossearch

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"sort"
	"time"

	"repro/internal/audit"
	"repro/internal/experiments"
	"repro/internal/fault"
	"repro/internal/invariant"
	"repro/internal/mapred"
	"repro/internal/testbed"
	"repro/internal/workload"
)

// Template fixes the scenario a chaos schedule runs against: the rig
// shape, its topology, the workload window, and optional sabotage
// hooks that deliberately break recovery paths so the harness can prove
// it notices.
type Template struct {
	// Name labels the template in reports.
	Name string `json:"name"`
	// PMs and VMsPerPM shape the rig (a virtual cluster).
	PMs      int `json:"pms"`
	VMsPerPM int `json:"vms_per_pm"`
	// Racks and PowerDomains assign failure domains
	// (cluster.StripeTopology).
	Racks        int `json:"racks"`
	PowerDomains int `json:"power_domains"`
	// Seed fixes the rig's own randomized decisions (all trials share
	// it; only the fault schedule varies between trials).
	Seed int64 `json:"seed"`
	// Horizon bounds injection times; Slack is extra simulated time the
	// trial runs past the horizon so recovery can finish. A livelocked
	// job keeps its health ticker alive forever, so trials drive
	// RunUntil(Horizon+Slack) — never Run() — and then check invariants.
	Horizon time.Duration `json:"horizon"`
	Slack   time.Duration `json:"slack"`
	// BreakMapRecovery disables the JobTracker's map re-execution path
	// (mapred.Config.DisableMapReexecution) — the deliberate bug the
	// acceptance test hunts.
	BreakMapRecovery bool `json:"break_map_recovery,omitempty"`
}

// DefaultTemplate is a 6 PM x 2 VM hybrid rig across 3 racks and 2
// power domains, running two small shuffle-heavy jobs.
func DefaultTemplate() Template {
	return Template{
		Name:         "virt-6x2-r3p2",
		PMs:          6,
		VMsPerPM:     2,
		Racks:        3,
		PowerDomains: 2,
		Seed:         1,
		Horizon:      8 * time.Minute,
		Slack:        52 * time.Minute,
	}
}

// jobs is the trial workload: small enough that hundreds of trials are
// cheap, shuffle-heavy enough that the reduce/map-output invariants
// have something to bite on.
func (t Template) jobs() []mapred.JobSpec {
	return []mapred.JobSpec{
		workload.Sort().WithInputMB(256),
		workload.Wcount().WithInputMB(192),
	}
}

// Entry is the JSON form of one fault.ScheduledFault; times are integer
// microseconds of simulated time, matching the trace convention.
type Entry struct {
	AtUs       int64   `json:"at_us"`
	Kind       string  `json:"kind"`
	Target     string  `json:"target,omitempty"`
	DurationUs int64   `json:"duration_us,omitempty"`
	Factor     float64 `json:"factor,omitempty"`
}

func entryOf(f fault.ScheduledFault) Entry {
	return Entry{
		AtUs:       f.At.Microseconds(),
		Kind:       string(f.Kind),
		Target:     f.Target,
		DurationUs: f.Duration.Microseconds(),
		Factor:     f.Factor,
	}
}

func (e Entry) fault() fault.ScheduledFault {
	return fault.ScheduledFault{
		At:       time.Duration(e.AtUs) * time.Microsecond,
		Kind:     fault.Kind(e.Kind),
		Target:   e.Target,
		Duration: time.Duration(e.DurationUs) * time.Microsecond,
		Factor:   e.Factor,
	}
}

// Generate derives trial index's fault schedule from the search seed.
// Schedules hold 1–6 faults drawn over the template horizon, weighted
// toward the correlated kinds (that is what the harness exists to
// exercise), sorted by time.
func Generate(tpl Template, searchSeed int64, index int) []fault.ScheduledFault {
	rng := rand.New(rand.NewSource(searchSeed + int64(index+1)*1_000_003))
	n := 1 + rng.Intn(6)
	sched := make([]fault.ScheduledFault, 0, n+2)
	horizon := int64(tpl.Horizon)
	for i := 0; i < n; i++ {
		at := time.Duration(rng.Int63n(horizon))
		switch rng.Intn(8) {
		case 0:
			pm := fmt.Sprintf("pm-%d", rng.Intn(tpl.PMs))
			sched = append(sched, fault.ScheduledFault{At: at, Kind: fault.PMCrash, Target: pm})
			if rng.Float64() < 0.75 {
				repair := at + time.Duration(30+rng.Intn(120))*time.Second
				sched = append(sched, fault.ScheduledFault{At: repair, Kind: fault.PMRepair, Target: pm})
			}
		case 1:
			vm := fmt.Sprintf("vm-%d", rng.Intn(tpl.PMs*tpl.VMsPerPM))
			sched = append(sched, fault.ScheduledFault{At: at, Kind: fault.VMCrash, Target: vm})
		case 2:
			vm := fmt.Sprintf("vm-%d", rng.Intn(tpl.PMs*tpl.VMsPerPM))
			d := time.Duration(20+rng.Intn(60)) * time.Second
			sched = append(sched, fault.ScheduledFault{At: at, Kind: fault.TrackerHang, Target: vm, Duration: d})
		case 3:
			sched = append(sched, fault.ScheduledFault{At: at, Kind: fault.BlockLoss})
		case 4:
			pm := fmt.Sprintf("pm-%d", rng.Intn(tpl.PMs))
			d := time.Duration(30+rng.Intn(90)) * time.Second
			f := 2 + rng.Float64()*3
			sched = append(sched, fault.ScheduledFault{At: at, Kind: fault.Straggler, Target: pm, Duration: d, Factor: f})
		case 5:
			rack := fmt.Sprintf("rack-%d", rng.Intn(tpl.Racks))
			sched = append(sched, fault.ScheduledFault{At: at, Kind: fault.RackCrash, Target: rack})
		case 6:
			pd := fmt.Sprintf("pd-%d", rng.Intn(tpl.PowerDomains))
			sched = append(sched, fault.ScheduledFault{At: at, Kind: fault.PowerDomainCrash, Target: pd})
		default:
			rack := fmt.Sprintf("rack-%d", rng.Intn(tpl.Racks))
			heal := time.Duration(30+rng.Intn(90)) * time.Second
			sched = append(sched, fault.ScheduledFault{At: at, Kind: fault.NetPartition, Target: rack, Duration: heal})
		}
	}
	sort.Slice(sched, func(i, j int) bool {
		if sched[i].At != sched[j].At {
			return sched[i].At < sched[j].At
		}
		if sched[i].Kind != sched[j].Kind {
			return sched[i].Kind < sched[j].Kind
		}
		return sched[i].Target < sched[j].Target
	})
	return sched
}

// Run executes one schedule against the template and returns what the
// invariant checker saw.
func Run(tpl Template, sched []fault.ScheduledFault) ([]invariant.Violation, error) {
	inv := invariant.New()
	rig, err := testbed.New(testbed.Options{
		PMs:          tpl.PMs,
		VMsPerPM:     tpl.VMsPerPM,
		Racks:        tpl.Racks,
		PowerDomains: tpl.PowerDomains,
		Seed:         tpl.Seed,
		MapredConfig: mapred.Config{DisableMapReexecution: tpl.BreakMapRecovery},
		Audit:        audit.New(0),
		Faults:       &fault.Options{Seed: tpl.Seed + 2, Schedule: sched},
		Invariants:   inv,
	})
	if err != nil {
		return nil, err
	}
	for _, spec := range tpl.jobs() {
		if _, err := rig.JT.Submit(spec, nil); err != nil {
			return nil, err
		}
	}
	rig.Engine.RunUntil(tpl.Horizon + tpl.Slack)
	return inv.Final(), nil
}

// Report is the byte-deterministic artifact of a search (CHAOS.json).
// FailingIndex is -1 when every trial upheld every invariant; otherwise
// Schedule is the minimized repro and Violations is what replaying it
// produces.
type Report struct {
	Template       Template              `json:"template"`
	SearchSeed     int64                 `json:"search_seed"`
	Budget         int                   `json:"budget"`
	FailingIndex   int                   `json:"failing_index"`
	OriginalFaults int                   `json:"original_faults,omitempty"`
	MinimizeRuns   int                   `json:"minimize_runs,omitempty"`
	Schedule       []Entry               `json:"schedule,omitempty"`
	Violations     []invariant.Violation `json:"violations,omitempty"`
}

// JSON renders the report deterministically (stable field order, no
// wall-clock anywhere).
func (r Report) JSON() ([]byte, error) {
	b, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}

// Load parses a report written by JSON.
func Load(b []byte) (Report, error) {
	var r Report
	if err := json.Unmarshal(b, &r); err != nil {
		return Report{}, fmt.Errorf("chaossearch: parse report: %w", err)
	}
	return r, nil
}

// Search runs budget generated schedules through the invariant checker
// (in parallel, via the experiments worker pool) and minimizes the
// lowest-indexed failing one. The result is identical at any
// parallelism: trials are independent and the winner is picked by
// index, not completion order.
func Search(tpl Template, searchSeed int64, budget int) (Report, error) {
	rep := Report{Template: tpl, SearchSeed: searchSeed, Budget: budget, FailingIndex: -1}
	if budget <= 0 {
		return rep, nil
	}
	violations, err := experiments.Map(budget, func(i int) ([]invariant.Violation, error) {
		return Run(tpl, Generate(tpl, searchSeed, i))
	})
	if err != nil {
		return rep, err
	}
	for i, vs := range violations {
		if len(vs) == 0 {
			continue
		}
		rep.FailingIndex = i
		sched := Generate(tpl, searchSeed, i)
		rep.OriginalFaults = len(sched)
		minimized, runs, err := minimize(tpl, sched, vs[0].Name)
		if err != nil {
			return rep, err
		}
		rep.MinimizeRuns = runs
		// One final replay of the minimized schedule pins the recorded
		// violations to exactly what a reader of CHAOS.json will see.
		final, err := Run(tpl, minimized)
		if err != nil {
			return rep, err
		}
		rep.Violations = final
		rep.Schedule = make([]Entry, len(minimized))
		for j, f := range minimized {
			rep.Schedule[j] = entryOf(f)
		}
		return rep, nil
	}
	return rep, nil
}

// Replay re-runs a report's minimized schedule against its template and
// returns the violations observed — the deterministic repro loop.
func Replay(rep Report) ([]invariant.Violation, error) {
	sched := make([]fault.ScheduledFault, len(rep.Schedule))
	for i, e := range rep.Schedule {
		sched[i] = e.fault()
	}
	return Run(rep.Template, sched)
}

// minimize is greedy ddmin: repeatedly drop the first entry whose
// removal still reproduces a violation with the same name, until no
// single removal does. Serial and index-ordered, hence deterministic.
// Returns the minimized schedule and how many trial runs it spent.
func minimize(tpl Template, sched []fault.ScheduledFault, name string) ([]fault.ScheduledFault, int, error) {
	runs := 0
	for improved := true; improved && len(sched) > 1; {
		improved = false
		for i := range sched {
			trial := make([]fault.ScheduledFault, 0, len(sched)-1)
			trial = append(trial, sched[:i]...)
			trial = append(trial, sched[i+1:]...)
			runs++
			vs, err := Run(tpl, trial)
			if err != nil {
				return sched, runs, err
			}
			if hasViolation(vs, name) {
				sched = trial
				improved = true
				break
			}
		}
	}
	return sched, runs, nil
}

func hasViolation(vs []invariant.Violation, name string) bool {
	for _, v := range vs {
		if v.Name == name {
			return true
		}
	}
	return false
}
