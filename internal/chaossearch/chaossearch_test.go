package chaossearch

import (
	"bytes"
	"testing"

	"repro/internal/experiments"
)

// Generation must be a pure function of (template, seed, index).
func TestGenerateDeterministic(t *testing.T) {
	tpl := DefaultTemplate()
	a := Generate(tpl, 42, 7)
	b := Generate(tpl, 42, 7)
	if len(a) == 0 {
		t.Fatal("empty schedule")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("schedule differs at %d: %+v vs %+v", i, a[i], b[i])
		}
	}
	if len(Generate(tpl, 43, 7)) == len(a) {
		// Different seeds usually differ; this is a smoke check only, so
		// compare contents rather than failing on a length coincidence.
		c := Generate(tpl, 43, 7)
		same := true
		for i := range a {
			if a[i] != c[i] {
				same = false
				break
			}
		}
		if same {
			t.Fatal("different seeds produced identical schedules")
		}
	}
}

// A healthy stack must survive a meaningful budget of correlated-fault
// schedules with zero violations.
func TestSearchCleanOnHealthyStack(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	rep, err := Search(DefaultTemplate(), 7, 40)
	if err != nil {
		t.Fatal(err)
	}
	if rep.FailingIndex != -1 {
		t.Fatalf("healthy stack violated %v (trial %d, schedule %+v)",
			rep.Violations, rep.FailingIndex, rep.Schedule)
	}
}

// The acceptance bar: a deliberately broken recovery path (map
// re-execution disabled behind the test hook) must be caught within a
// 200-schedule budget, and the minimized repro must replay to the same
// named invariant violation.
func TestSearchCatchesBrokenMapRecovery(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	tpl := DefaultTemplate()
	tpl.BreakMapRecovery = true
	rep, err := Search(tpl, 7, 200)
	if err != nil {
		t.Fatal(err)
	}
	if rep.FailingIndex < 0 {
		t.Fatal("broken map recovery not caught within a 200-schedule budget")
	}
	if len(rep.Violations) == 0 || len(rep.Schedule) == 0 {
		t.Fatalf("failing report lacks violations/schedule: %+v", rep)
	}
	if rep.OriginalFaults < len(rep.Schedule) {
		t.Fatalf("minimization grew the schedule: %d -> %d", rep.OriginalFaults, len(rep.Schedule))
	}
	name := rep.Violations[0].Name
	vs, err := Replay(rep)
	if err != nil {
		t.Fatal(err)
	}
	if !hasViolation(vs, name) {
		t.Fatalf("minimized repro did not reproduce %q; replay saw %v", name, vs)
	}
}

// CHAOS.json must be byte-identical at any worker-pool parallelism.
func TestSearchBytesIndependentOfParallelism(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	tpl := DefaultTemplate()
	tpl.BreakMapRecovery = true
	old := experiments.Parallelism
	defer func() { experiments.Parallelism = old }()

	experiments.Parallelism = 1
	serial, err := Search(tpl, 11, 60)
	if err != nil {
		t.Fatal(err)
	}
	experiments.Parallelism = 8
	wide, err := Search(tpl, 11, 60)
	if err != nil {
		t.Fatal(err)
	}
	a, err := serial.JSON()
	if err != nil {
		t.Fatal(err)
	}
	b, err := wide.JSON()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Fatalf("CHAOS.json differs between -parallel 1 and -parallel 8:\n%s\nvs\n%s", a, b)
	}
}

// Reports round-trip through JSON without loss of the replay inputs.
func TestReportRoundTrip(t *testing.T) {
	tpl := DefaultTemplate()
	rep := Report{
		Template:     tpl,
		SearchSeed:   3,
		Budget:       10,
		FailingIndex: 4,
		Schedule:     []Entry{{AtUs: 1_000_000, Kind: "rack-crash", Target: "rack-1"}},
	}
	b, err := rep.JSON()
	if err != nil {
		t.Fatal(err)
	}
	got, err := Load(b)
	if err != nil {
		t.Fatal(err)
	}
	if got.Template != tpl || got.FailingIndex != 4 || len(got.Schedule) != 1 ||
		got.Schedule[0] != rep.Schedule[0] {
		t.Fatalf("round trip mangled report: %+v", got)
	}
}
