package timeseries

import (
	"bytes"
	"encoding/json"
	"testing"
	"time"
)

// feedLatency records n observations of v ms into each window of
// [fromW, toW) for the given service label.
func feedLatency(c *Collector, label string, fromW, toW, n int, v float64) {
	for wi := fromW; wi < toW; wi++ {
		ts := time.Duration(wi)*c.width + time.Second
		for i := 0; i < n; i++ {
			c.Observe("service.latency_ms", label, ts, v)
		}
	}
}

func TestSLOBurnRateAlerts(t *testing.T) {
	c := New(10*time.Second, 240)
	obj := Objective{
		Name: "lat-p99", Series: "service.latency_ms", Label: "*",
		Agg: "p99", Op: "le", Threshold: 100, Target: 0.99,
		FastWindows: 3, FastBurn: 10, SlowWindows: 12, SlowBurn: 2,
	}
	// 20 healthy windows, then 5 windows fully violating, then recovery.
	feedLatency(c, "svc", 0, 20, 50, 10)
	feedLatency(c, "svc", 20, 25, 50, 5000)
	feedLatency(c, "svc", 25, 40, 50, 10)

	rep, rows := Evaluate(c, []Objective{obj})
	if len(rep.Objectives) != 1 {
		t.Fatalf("objectives = %d, want 1", len(rep.Objectives))
	}
	res := rep.Objectives[0]
	if res.BadWindows != 5 {
		t.Fatalf("bad windows = %d, want 5", res.BadWindows)
	}
	if res.FirstBreachS != 200 {
		t.Fatalf("first breach = %gs, want 200", res.FirstBreachS)
	}
	// Five fully-bad windows burn 5/(40*0.01) = 12.5 budgets — missed.
	if res.Met {
		t.Fatal("objective reported met despite burning >1 budget")
	}
	if rep.Pages == 0 {
		t.Fatal("a full-outage stretch did not page")
	}
	// The page episode covers the outage windows.
	var page *Alert
	for i := range res.Alerts {
		if res.Alerts[i].Severity == "page" {
			page = &res.Alerts[i]
			break
		}
	}
	if page == nil {
		t.Fatal("no page episode in alerts")
	}
	if page.StartS < 200 || page.StartS > 220 {
		t.Fatalf("page starts at %gs, want within the outage (200-220)", page.StartS)
	}
	if page.PeakBurn < 10 {
		t.Fatalf("page peak burn = %g, want >= 10", page.PeakBurn)
	}
	// Rows cover every window, and the outage windows carry the alert.
	if len(rows) != 40 {
		t.Fatalf("rows = %d, want 40", len(rows))
	}
	if rows[22].Alert != "page" {
		t.Fatalf("window 22 alert = %q, want page", rows[22].Alert)
	}
	if rows[5].Alert != "" || rows[5].GoodFrac != 1 {
		t.Fatalf("healthy window flagged: %+v", rows[5])
	}
}

func TestSLOHealthyRunIsMet(t *testing.T) {
	c := New(10*time.Second, 240)
	feedLatency(c, "svc", 0, 30, 20, 10)
	rep, _ := Evaluate(c, []Objective{{
		Name: "lat-p99", Series: "service.latency_ms", Label: "*",
		Agg: "p99", Op: "le", Threshold: 100, Target: 0.99,
	}})
	res := rep.Objectives[0]
	if !res.Met || res.BadWindows != 0 || res.BudgetConsumed != 0 {
		t.Fatalf("healthy run not clean: %+v", res)
	}
	if res.FirstBreachS != -1 {
		t.Fatalf("first breach = %g, want -1", res.FirstBreachS)
	}
	if rep.Pages != 0 || rep.Tickets != 0 {
		t.Fatal("healthy run alerted")
	}
}

// TestSLOPartialWindowBurn: histogram objectives grade per observation,
// so a window where 20% of events violate burns 20% of that window — not
// all-or-nothing.
func TestSLOPartialWindowBurn(t *testing.T) {
	c := New(10*time.Second, 240)
	for wi := 0; wi < 10; wi++ {
		ts := time.Duration(wi)*c.width + time.Second
		for i := 0; i < 80; i++ {
			c.Observe("service.latency_ms", "svc", ts, 10)
		}
		for i := 0; i < 20; i++ {
			c.Observe("service.latency_ms", "svc", ts, 5000)
		}
	}
	_, rows := Evaluate(c, []Objective{{
		Name: "lat", Series: "service.latency_ms", Label: "svc",
		Agg: "p99", Op: "le", Threshold: 100, Target: 0.99,
	}})
	for _, r := range rows {
		if r.GoodFrac < 0.7 || r.GoodFrac > 0.9 {
			t.Fatalf("window %d good frac = %g, want ~0.8", r.Window, r.GoodFrac)
		}
		if r.Events != 100 {
			t.Fatalf("window %d events = %d, want 100", r.Window, r.Events)
		}
	}
}

func TestSLOGaugeAndCounterObjectives(t *testing.T) {
	c := New(10*time.Second, 240)
	for wi := 0; wi < 6; wi++ {
		ts := time.Duration(wi)*c.width + time.Second
		util := 0.5
		if wi >= 3 {
			util = 0.99
		}
		c.SetGauge("cluster.util.cpu", "", ts, util)
		c.Add("errs", "", ts, float64(wi*10))
	}
	rep, rows := Evaluate(c, []Objective{
		{Name: "cpu", Series: "cluster.util.cpu", Label: "", Agg: "mean", Op: "le", Threshold: 0.95, Target: 0.9},
		{Name: "errs", Series: "errs", Label: "", Agg: "rate", Op: "le", Threshold: 2, Target: 0.9},
	})
	cpu := rep.Objectives[0]
	if cpu.BadWindows != 3 {
		t.Fatalf("cpu bad windows = %d, want 3", cpu.BadWindows)
	}
	// Counter rate: deltas 0,10,..,50 over 10s windows → rates 0..5;
	// windows with rate > 2 (30,40,50 deltas) are bad.
	errs := rep.Objectives[1]
	if errs.BadWindows != 3 {
		t.Fatalf("errs bad windows = %d, want 3", errs.BadWindows)
	}
	// Ungraded series windows report value as evaluated.
	if rows[0].Value != 0.5 {
		t.Fatalf("cpu window 0 value = %g, want 0.5", rows[0].Value)
	}
}

// TestSLOOutputsByteDeterministic: both the JSONL rows and the SLO.json
// summary serialize identically across repeated evaluations.
func TestSLOOutputsByteDeterministic(t *testing.T) {
	render := func() ([]byte, []byte) {
		c := New(10*time.Second, 240)
		feedLatency(c, "svc-a", 0, 15, 30, 10)
		feedLatency(c, "svc-b", 0, 15, 30, 40)
		feedLatency(c, "svc-a", 15, 18, 30, 9000)
		rep, rows := Evaluate(c, DefaultObjectives())
		var jl bytes.Buffer
		if err := WriteSLOJSONL(&jl, rows); err != nil {
			t.Fatal(err)
		}
		js, err := rep.JSON()
		if err != nil {
			t.Fatal(err)
		}
		return jl.Bytes(), js
	}
	jl1, js1 := render()
	jl2, js2 := render()
	if !bytes.Equal(jl1, jl2) {
		t.Fatal("SLO JSONL bytes differ across identical evaluations")
	}
	if !bytes.Equal(js1, js2) {
		t.Fatal("SLO.json bytes differ across identical evaluations")
	}
	var rep SLOReport
	if err := json.Unmarshal(js1, &rep); err != nil {
		t.Fatalf("SLO.json does not round-trip: %v", err)
	}
	if rep.Schema != SLOSchema {
		t.Fatalf("schema = %q, want %q", rep.Schema, SLOSchema)
	}
}
