// The SLO engine: declarative objectives evaluated per window over a
// Collector into error budgets and multi-window fast/slow burn-rate
// alerts, in the Google-SRE style — a short trailing span at a high burn
// threshold pages (a fast-burning budget needs a human now), a long span
// at a lower threshold tickets (a slow leak needs attention eventually).
// Evaluation is a pure function of the collector's windows, so the JSONL
// evaluation rows and the SLO.json summary are byte-deterministic.

package timeseries

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"time"
)

// Objective is one declarative service-level objective: an aggregate of
// one series compared against a threshold per window, with a good-event
// target and burn-rate alert policy.
type Objective struct {
	// Name identifies the objective in outputs.
	Name string `json:"name"`
	// Series is the telemetry series the objective reads; Label selects
	// one label stream, or "*" to aggregate every label of the series
	// (histograms merge order-independently; gauges and counters take the
	// worst window value, i.e. max).
	Series string `json:"series"`
	Label  string `json:"label"`
	// Agg picks the per-window aggregate: p50, p95, p99, mean or max for
	// histogram series; last or mean for gauges; rate for counters.
	Agg string `json:"agg"`
	// Op compares the aggregate to Threshold: "le" (good when value <=
	// threshold) or "ge" (good when value >= threshold). Utilization
	// bands are two objectives, one per bound.
	Op        string  `json:"op"`
	Threshold float64 `json:"threshold"`
	// Target is the good-event target, e.g. 0.99; the error budget is
	// 1 - Target.
	Target float64 `json:"target"`
	// FastWindows/FastBurn and SlowWindows/SlowBurn parameterize the two
	// alert conditions: a trailing span of that many windows whose mean
	// burn rate (bad fraction over budget) at or above the threshold
	// fires. Zero values take defaults (3 windows at 10x, 12 windows at
	// 2x).
	FastWindows int     `json:"fast_windows"`
	FastBurn    float64 `json:"fast_burn"`
	SlowWindows int     `json:"slow_windows"`
	SlowBurn    float64 `json:"slow_burn"`
}

func (o Objective) withDefaults() Objective {
	if o.Target <= 0 || o.Target >= 1 {
		o.Target = 0.99
	}
	if o.FastWindows <= 0 {
		o.FastWindows = 3
	}
	if o.FastBurn <= 0 {
		o.FastBurn = 10
	}
	if o.SlowWindows <= 0 {
		o.SlowWindows = 12
	}
	if o.SlowBurn <= 0 {
		o.SlowBurn = 2
	}
	return o
}

// DefaultObjectives is the simulator's stock SLO set: interactive
// services answer within their SLA at p99, map tasks get slots promptly
// at p95, and the cluster's CPU stays out of the saturation band. The
// thresholds are chosen so a healthy run holds them and the chaos
// scenario's machine crash deterministically burns the slot-wait budget.
func DefaultObjectives() []Objective {
	return []Objective{
		{
			Name: "interactive-latency-p99", Series: "service.latency_ms", Label: "*",
			Agg: "p99", Op: "le", Threshold: 2000, Target: 0.99,
		},
		{
			Name: "map-slot-wait-p95", Series: "mapred.task.slot_wait_sec", Label: "*",
			Agg: "p95", Op: "le", Threshold: 20, Target: 0.95,
		},
		{
			Name: "pm-cpu-saturation", Series: "cluster.util.cpu", Label: "",
			Agg: "mean", Op: "le", Threshold: 0.95, Target: 0.9,
		},
	}
}

// WindowEval is one objective's evaluation of one window — the SLO JSONL
// row schema.
type WindowEval struct {
	Objective string  `json:"objective"`
	Window    int     `json:"window"`
	StartS    float64 `json:"start_s"`
	EndS      float64 `json:"end_s"`
	// Value is the window's aggregate (NaN-free: windows with no data
	// report 0 with Events 0 and count as fully good).
	Value float64 `json:"value"`
	// GoodFrac is the window's good-event fraction; Events the
	// observation count behind it (0 for gauge/counter objectives, which
	// are all-or-nothing per window).
	GoodFrac float64 `json:"good_frac"`
	Events   uint64  `json:"events,omitempty"`
	// BurnFast/BurnSlow are the trailing burn rates ending at this
	// window; Alert is "", "ticket" or "page".
	BurnFast float64 `json:"burn_fast"`
	BurnSlow float64 `json:"burn_slow"`
	Alert    string  `json:"alert,omitempty"`
}

// Alert is one contiguous run of alerting windows.
type Alert struct {
	Objective string  `json:"objective"`
	Severity  string  `json:"severity"` // "page" or "ticket"
	StartS    float64 `json:"start_s"`
	EndS      float64 `json:"end_s"`
	Windows   int     `json:"windows"`
	PeakBurn  float64 `json:"peak_burn"`
}

// ObjectiveResult summarizes one objective over the run.
type ObjectiveResult struct {
	Objective Objective `json:"objective"`
	Windows   int       `json:"windows"`
	// BadWindows counts windows with any budget burn.
	BadWindows int `json:"bad_windows"`
	// BudgetConsumed is the fraction of the run's error budget spent:
	// mean bad fraction over windows divided by (1 - target). Above 1
	// the objective is missed.
	BudgetConsumed float64 `json:"budget_consumed"`
	// FirstBreachS is the start of the first window that burned budget,
	// or -1 when none did.
	FirstBreachS float64 `json:"first_breach_s"`
	Alerts       []Alert `json:"alerts,omitempty"`
	Met          bool    `json:"met"`
}

// SLOReport is the SLO.json document.
type SLOReport struct {
	Schema     string            `json:"schema"`
	WindowS    float64           `json:"window_s"`
	Windows    int               `json:"windows"`
	Objectives []ObjectiveResult `json:"objectives"`
	// Pages/Tickets count alert episodes across all objectives.
	Pages   int `json:"pages"`
	Tickets int `json:"tickets"`
}

// SLOSchema identifies the SLO.json layout.
const SLOSchema = "hybridmr.slo/v1"

// Evaluate runs every objective over the collector's windows and returns
// the summary plus the per-window evaluation rows (in objective order,
// windows ascending). A nil collector yields an empty report.
func Evaluate(c *Collector, objectives []Objective) (SLOReport, []WindowEval) {
	rep := SLOReport{Schema: SLOSchema}
	if c == nil || c.cursor < 0 {
		return rep, nil
	}
	rep.WindowS = c.width.Seconds()
	rep.Windows = c.cursor + 1
	var rows []WindowEval
	for _, obj := range objectives {
		obj = obj.withDefaults()
		res, objRows := evaluateObjective(c, obj)
		rep.Objectives = append(rep.Objectives, res)
		rows = append(rows, objRows...)
		for _, a := range res.Alerts {
			switch a.Severity {
			case "page":
				rep.Pages++
			case "ticket":
				rep.Tickets++
			}
		}
	}
	return rep, rows
}

func evaluateObjective(c *Collector, obj Objective) (ObjectiveResult, []WindowEval) {
	n := c.cursor + 1
	budget := 1 - obj.Target
	res := ObjectiveResult{Objective: obj, Windows: n, FirstBreachS: -1}
	badFrac := make([]float64, n)
	rows := make([]WindowEval, 0, n)

	for wi := 0; wi < n; wi++ {
		value, goodFrac, events := c.windowGood(obj, wi)
		badFrac[wi] = 1 - goodFrac
		if badFrac[wi] > 0 {
			res.BadWindows++
			if res.FirstBreachS < 0 {
				res.FirstBreachS = (time.Duration(wi) * c.width).Seconds()
			}
		}
		burnFast := trailingBurn(badFrac, wi, obj.FastWindows, budget)
		burnSlow := trailingBurn(badFrac, wi, obj.SlowWindows, budget)
		alert := ""
		switch {
		case burnFast >= obj.FastBurn:
			alert = "page"
		case burnSlow >= obj.SlowBurn:
			alert = "ticket"
		}
		p := c.point(wi)
		rows = append(rows, WindowEval{
			Objective: obj.Name,
			Window:    wi,
			StartS:    p.Start.Seconds(),
			EndS:      p.End.Seconds(),
			Value:     value,
			GoodFrac:  goodFrac,
			Events:    events,
			BurnFast:  burnFast,
			BurnSlow:  burnSlow,
			Alert:     alert,
		})
	}

	total := 0.0
	for _, b := range badFrac {
		total += b
	}
	res.BudgetConsumed = total / (float64(n) * budget)
	res.Met = res.BudgetConsumed <= 1
	res.Alerts = collapseAlerts(obj.Name, rows)
	return res, rows
}

// trailingBurn is the mean bad fraction over the span of windows ending
// at wi, divided by the error budget — the burn rate. Spans are clamped
// at the start of the run.
func trailingBurn(badFrac []float64, wi, span int, budget float64) float64 {
	lo := wi - span + 1
	if lo < 0 {
		lo = 0
	}
	sum := 0.0
	for i := lo; i <= wi; i++ {
		sum += badFrac[i]
	}
	return sum / (float64(wi-lo+1) * budget)
}

// collapseAlerts folds consecutive alerting windows into episodes; a
// severity change starts a new episode.
func collapseAlerts(objective string, rows []WindowEval) []Alert {
	var out []Alert
	var cur *Alert
	for _, r := range rows {
		if r.Alert == "" {
			cur = nil
			continue
		}
		if cur != nil && cur.Severity == r.Alert {
			cur.EndS = r.EndS
			cur.Windows++
			if b := maxf(r.BurnFast, r.BurnSlow); b > cur.PeakBurn {
				cur.PeakBurn = b
			}
			continue
		}
		out = append(out, Alert{
			Objective: objective,
			Severity:  r.Alert,
			StartS:    r.StartS,
			EndS:      r.EndS,
			Windows:   1,
			PeakBurn:  maxf(r.BurnFast, r.BurnSlow),
		})
		cur = &out[len(out)-1]
	}
	return out
}

func maxf(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}

// windowGood computes one objective's window aggregate, good fraction
// and event count. Dispatch follows the series' recorded kind — "mean"
// and "max" are meaningful for both gauges and histograms, so the data
// decides. Histogram objectives grade every observation against the
// threshold (bucket-resolution); gauge and counter objectives grade the
// window as a whole. Windows with no data are fully good.
func (c *Collector) windowGood(obj Objective, wi int) (value, goodFrac float64, events uint64) {
	switch c.kindOf(obj.Series, obj.Label) {
	case KindHist:
		h := c.windowHist(obj.Series, obj.Label, wi)
		if h == nil || h.Count() == 0 {
			return 0, 1, 0
		}
		switch obj.Agg {
		case "p50":
			value = h.Quantile(0.50)
		case "p95":
			value = h.Quantile(0.95)
		case "mean":
			value = h.Mean()
		case "max":
			value = h.Max()
		default: // p99
			value = h.Quantile(0.99)
		}
		frac := h.FractionAtOrBelow(obj.Threshold)
		if obj.Op == "ge" {
			// Good events are those at or above the threshold; the bucket
			// estimate's complement keeps the same resolution.
			frac = 1 - frac
		}
		return value, frac, h.Count()
	case KindGauge:
		v, ok := c.windowGauge(obj.Series, obj.Label, wi, obj.Agg == "last")
		if !ok {
			return 0, 1, 0
		}
		return v, boolFrac(compare(v, obj.Op, obj.Threshold)), 0
	case KindCounter:
		s := c.series[seriesKey{obj.Series, obj.Label}]
		if s == nil || wi > c.cursor {
			return 0, 1, 0
		}
		var delta float64
		if wi < len(s.counters) {
			delta = s.counters[wi]
		}
		v := delta / c.width.Seconds()
		return v, boolFrac(compare(v, obj.Op, obj.Threshold)), 0
	default:
		// The series never appeared in this run: no data, fully good.
		return 0, 1, 0
	}
}

// kindOf resolves a series name (honoring the "*" label wildcard) to its
// recorded kind, or "" when the series never appeared.
func (c *Collector) kindOf(name, label string) Kind {
	if label != "*" {
		if s := c.series[seriesKey{name, label}]; s != nil {
			return s.kind
		}
		return ""
	}
	for _, s := range c.order {
		if s.name == name {
			return s.kind
		}
	}
	return ""
}

// windowGauge reads a gauge window; label "*" takes the worst (max)
// value across labels.
func (c *Collector) windowGauge(name, label string, wi int, last bool) (float64, bool) {
	read := func(s *series) (float64, bool) {
		if s == nil || s.kind != KindGauge || wi >= len(s.gauges) || s.gauges[wi].n == 0 {
			return 0, false
		}
		if last {
			return s.gauges[wi].last, true
		}
		return s.gauges[wi].sum / float64(s.gauges[wi].n), true
	}
	if label != "*" {
		return read(c.series[seriesKey{name, label}])
	}
	worst, ok := 0.0, false
	for _, s := range c.sorted() {
		if s.name != name {
			continue
		}
		if v, has := read(s); has && (!ok || v > worst) {
			worst, ok = v, true
		}
	}
	return worst, ok
}

func compare(v float64, op string, threshold float64) bool {
	if op == "ge" {
		return v >= threshold
	}
	return v <= threshold
}

func boolFrac(good bool) float64 {
	if good {
		return 1
	}
	return 0
}

// WriteSLOJSONL appends the evaluation rows as JSONL (one row per
// objective-window), the stream the observatory and jq read.
func WriteSLOJSONL(w io.Writer, rows []WindowEval) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for _, r := range rows {
		if err := enc.Encode(r); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// JSON renders the report with stable formatting.
func (r SLOReport) JSON() ([]byte, error) {
	for _, o := range r.Objectives {
		if math.IsNaN(o.BudgetConsumed) || math.IsInf(o.BudgetConsumed, 0) {
			return nil, fmt.Errorf("timeseries: objective %s has non-finite budget", o.Objective.Name)
		}
	}
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(data, '\n'), nil
}
