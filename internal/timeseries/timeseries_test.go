package timeseries

import (
	"bytes"
	"math/rand"
	"testing"
	"time"
)

// TestMemoryBoundedAtTenTimesHorizon is the acceptance test for the
// fixed-memory claim: feed observations across more than 10x the default
// horizon (240 x 10s = 40min; we run 8 hours at 1-second cadence) and
// verify the buffer never exceeds MaxWindows cells per series — the
// downsampler must absorb the overflow by doubling the width.
func TestMemoryBoundedAtTenTimesHorizon(t *testing.T) {
	c := New(0, 0) // defaults: 10s windows, 240 max
	horizon := 8 * time.Hour
	rng := rand.New(rand.NewSource(42))
	for ts := time.Duration(0); ts < horizon; ts += time.Second {
		c.Add("events", "", ts, 1)
		c.SetGauge("depth", "", ts, float64(rng.Intn(100)))
		c.Observe("lat", "svc", ts, rng.Float64()*100)
	}
	if c.Windows() > c.MaxWindows() {
		t.Fatalf("windows = %d exceeds cap %d", c.Windows(), c.MaxWindows())
	}
	for _, s := range c.order {
		if len(s.counters) > c.maxWindows || len(s.gauges) > c.maxWindows || len(s.hists) > c.maxWindows {
			t.Fatalf("series %s buffer exceeds cap: %d/%d/%d",
				s.name, len(s.counters), len(s.gauges), len(s.hists))
		}
	}
	// The width must have doubled enough times to cover the horizon.
	if got := time.Duration(c.MaxWindows()) * c.Window(); got < horizon {
		t.Fatalf("window span %v does not cover horizon %v (width %v)", got, horizon, c.Window())
	}
	// No observations were lost: the counter total survives downsampling.
	total := 0.0
	for _, snap := range c.Snapshot() {
		if snap.Name != "events" {
			continue
		}
		for _, p := range snap.Points {
			total += p.Delta
		}
	}
	if want := horizon.Seconds(); total != want {
		t.Fatalf("counter total after downsampling = %g, want %g", total, want)
	}
}

// TestDownsampleDeterminism: the exported bytes are a pure function of
// the observation stream — identical reruns produce identical JSONL,
// including across the downsampling path.
func TestDownsampleDeterminism(t *testing.T) {
	render := func() []byte {
		c := New(time.Second, 8)
		rng := rand.New(rand.NewSource(7))
		for i := 0; i < 500; i++ {
			ts := time.Duration(i) * 317 * time.Millisecond
			c.Add("ctr", "a", ts, float64(rng.Intn(5)))
			c.Observe("hist", "x", ts, rng.Float64()*1000)
			c.Observe("hist", "y", ts, rng.Float64()*10)
			c.SetGauge("g", "", ts, rng.Float64())
		}
		var buf bytes.Buffer
		if err := c.WriteJSONL(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	a, b := render(), render()
	if !bytes.Equal(a, b) {
		t.Fatal("identical observation streams rendered different JSONL bytes")
	}
}

func TestCounterRatesAndGaugePooling(t *testing.T) {
	c := New(10*time.Second, 100)
	c.Add("jobs", "sort", 2*time.Second, 3)
	c.Add("jobs", "sort", 8*time.Second, 2)
	c.Add("jobs", "sort", 15*time.Second, 10)
	c.SetGauge("depth", "", 3*time.Second, 4)
	c.SetGauge("depth", "", 7*time.Second, 8)
	snaps := c.Snapshot()
	byName := map[string]SeriesSnapshot{}
	for _, s := range snaps {
		byName[s.Name] = s
	}
	jobs := byName["jobs"]
	if len(jobs.Points) != 2 {
		t.Fatalf("jobs windows = %d, want 2", len(jobs.Points))
	}
	if jobs.Points[0].Delta != 5 || jobs.Points[0].Rate != 0.5 {
		t.Fatalf("window 0 delta/rate = %g/%g, want 5/0.5", jobs.Points[0].Delta, jobs.Points[0].Rate)
	}
	if jobs.Points[1].Delta != 10 {
		t.Fatalf("window 1 delta = %g, want 10", jobs.Points[1].Delta)
	}
	depth := byName["depth"]
	if len(depth.Points) != 1 {
		t.Fatalf("depth windows = %d, want 1", len(depth.Points))
	}
	if p := depth.Points[0]; p.Last != 8 || p.Mean != 6 || p.Samples != 2 {
		t.Fatalf("gauge pool = last %g mean %g n %d, want 8/6/2", p.Last, p.Mean, p.Samples)
	}
}

func TestProbeSampling(t *testing.T) {
	c := New(10*time.Second, 100)
	depth := 0.0
	fired := 0.0
	c.Probe("sim.pending", "", func() float64 { return depth })
	c.ProbeCounter("sim.events", "", func() float64 { return fired })

	depth, fired = 5, 100
	c.SampleProbes(5 * time.Second)
	depth, fired = 7, 250
	c.SampleProbes(15 * time.Second)

	byName := map[string]SeriesSnapshot{}
	for _, s := range c.Snapshot() {
		byName[s.Name] = s
	}
	pend := byName["sim.pending"]
	if len(pend.Points) != 2 || pend.Points[0].Last != 5 || pend.Points[1].Last != 7 {
		t.Fatalf("gauge probe points wrong: %+v", pend.Points)
	}
	ev := byName["sim.events"]
	// First sample takes the whole cumulative value; second the delta.
	if len(ev.Points) != 2 || ev.Points[0].Delta != 100 || ev.Points[1].Delta != 150 {
		t.Fatalf("counter probe deltas wrong: %+v", ev.Points)
	}
}

func TestNilCollectorNoOps(t *testing.T) {
	var c *Collector
	c.Add("a", "", 0, 1)
	c.SetGauge("b", "", 0, 1)
	c.Observe("c", "", 0, 1)
	c.Probe("d", "", func() float64 { return 0 })
	c.ProbeCounter("e", "", func() float64 { return 0 })
	c.SampleProbes(0)
	if c.Snapshot() != nil || c.Windows() != 0 || c.Window() != 0 || c.MaxWindows() != 0 {
		t.Fatal("nil collector is not inert")
	}
	if err := c.WriteJSONL(&bytes.Buffer{}); err != nil {
		t.Fatal(err)
	}
	rep, rows := Evaluate(nil, DefaultObjectives())
	if len(rep.Objectives) != 0 || rows != nil {
		t.Fatal("nil collector evaluation not empty")
	}
}

func TestKindMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("observing a counter series as a histogram did not panic")
		}
	}()
	c := New(time.Second, 10)
	c.Add("x", "", 0, 1)
	c.Observe("x", "", 0, 1)
}

// TestWindowHistAggregateLabel: "*" merges all labels of a series
// order-independently (the per-label digests go through MergeHistograms).
func TestWindowHistAggregateLabel(t *testing.T) {
	c := New(10*time.Second, 100)
	c.Observe("lat", "svc-a", time.Second, 10)
	c.Observe("lat", "svc-b", time.Second, 1000)
	h := c.windowHist("lat", "*", 0)
	if h == nil || h.Count() != 2 {
		t.Fatalf("aggregate digest count = %v, want 2", h.Count())
	}
	if h.Min() != 10 || h.Max() != 1000 {
		t.Fatalf("aggregate min/max = %g/%g", h.Min(), h.Max())
	}
	if got := c.windowHist("lat", "svc-a", 0); got == nil || got.Count() != 1 {
		t.Fatal("single-label digest lookup failed")
	}
	if got := c.windowHist("lat", "missing", 0); got != nil {
		t.Fatal("missing label returned a digest")
	}
}
