// Package timeseries is the simulator's windowed streaming telemetry
// layer: counters, gauges and log-bucketed histogram digests aggregated
// per sim-clock window, with a label dimension (benchmark, job, service
// — pre-wiring tenants), in fixed memory regardless of how long the run
// is or how many events fire.
//
// # Memory model
//
// All series share one global window axis: windows of the current width
// starting at sim time zero. When an observation would land past the
// window cap, every series downsamples — adjacent window pairs merge and
// the width doubles — so the buffer never exceeds MaxWindows cells per
// series no matter the horizon. Counter cells are one float, gauge cells
// three words, and histogram cells are lazily allocated trace.Histogram
// digests (fixed-size themselves), so the collector's footprint is
// bounded by series-count × MaxWindows and independent of events fired.
//
// # Determinism
//
// Everything the collector emits is a pure function of the observations
// fed to it, which carry simulated timestamps; wall-clock never enters.
// Downsampling merges adjacent cells in a fixed order, and cross-label
// aggregation uses trace.MergeHistograms (order-independent float
// summation), so the JSONL export and every snapshot are byte-identical
// across runs and worker counts. Like the rest of the observability
// stack, a nil *Collector accepts the full API as a no-op, and a
// collector is single-goroutine, owned by one simulation run.
package timeseries

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"time"

	"repro/internal/trace"
)

// DefaultWindow is the initial window width (matching the utilization
// recorder's default sampling interval).
const DefaultWindow = 10 * time.Second

// DefaultMaxWindows caps the number of windows buffered per series
// before downsampling doubles the width: 240 ten-second windows cover a
// 40-minute run at full resolution and a week at ~42-minute resolution.
const DefaultMaxWindows = 240

// Kind classifies a series.
type Kind string

// Series kinds: counters aggregate per-window deltas (reported with a
// per-second rate), gauges keep last/mean/sample-count per window, and
// histograms keep a full mergeable log-bucketed digest per window.
const (
	KindCounter Kind = "counter"
	KindGauge   Kind = "gauge"
	KindHist    Kind = "hist"
)

type seriesKey struct{ name, label string }

type gaugeCell struct {
	last float64
	sum  float64
	n    uint64
}

// series is one (name, label) stream. Exactly one of the cell slices is
// used, per kind; cells are indexed by window and grown lazily.
type series struct {
	name  string
	label string
	kind  Kind

	counters []float64
	gauges   []gaugeCell
	hists    []*trace.Histogram
}

type probe struct {
	name    string
	label   string
	fn      func() float64
	counter bool // cumulative source: record per-sample deltas
	prev    float64
	primed  bool
}

// Collector aggregates observations into the shared window axis. Use
// New; the zero value is not usable, but a nil *Collector is a valid
// disabled collector (every method no-ops).
type Collector struct {
	width      time.Duration
	maxWindows int
	// cursor is the highest window index any observation or probe sample
	// has reached; -1 until the first one.
	cursor int

	series map[seriesKey]*series
	order  []*series // insertion order; sorted at export
	probes []*probe
}

// New builds a collector. Non-positive arguments take DefaultWindow and
// DefaultMaxWindows; maxWindows is clamped to at least 8 so downsampling
// always has pairs to merge.
func New(window time.Duration, maxWindows int) *Collector {
	if window <= 0 {
		window = DefaultWindow
	}
	if maxWindows <= 0 {
		maxWindows = DefaultMaxWindows
	}
	if maxWindows < 8 {
		maxWindows = 8
	}
	return &Collector{
		width:      window,
		maxWindows: maxWindows,
		cursor:     -1,
		series:     make(map[seriesKey]*series),
	}
}

// Window returns the current window width (it doubles on downsampling).
func (c *Collector) Window() time.Duration {
	if c == nil {
		return 0
	}
	return c.width
}

// Windows returns the number of windows touched so far.
func (c *Collector) Windows() int {
	if c == nil {
		return 0
	}
	return c.cursor + 1
}

// MaxWindows returns the per-series buffer cap.
func (c *Collector) MaxWindows() int {
	if c == nil {
		return 0
	}
	return c.maxWindows
}

// at resolves the window index for a sim time, downsampling first if the
// index would exceed the cap, and advances the cursor.
func (c *Collector) at(t time.Duration) int {
	if t < 0 {
		t = 0
	}
	for int(t/c.width) >= c.maxWindows {
		c.downsample()
	}
	wi := int(t / c.width)
	if wi > c.cursor {
		c.cursor = wi
	}
	return wi
}

// downsample halves the resolution: adjacent window pairs (2i, 2i+1)
// merge into window i for every series, in fixed ascending order, and
// the width doubles. Counter deltas add, gauge cells pool (the later
// window's last value wins), histogram digests merge pairwise.
func (c *Collector) downsample() {
	for _, s := range c.order {
		switch s.kind {
		case KindCounter:
			n := (len(s.counters) + 1) / 2
			for i := 0; i < n; i++ {
				v := s.counters[2*i]
				if 2*i+1 < len(s.counters) {
					v += s.counters[2*i+1]
				}
				s.counters[i] = v
			}
			s.counters = s.counters[:n]
		case KindGauge:
			n := (len(s.gauges) + 1) / 2
			for i := 0; i < n; i++ {
				g := s.gauges[2*i]
				if 2*i+1 < len(s.gauges) {
					hi := s.gauges[2*i+1]
					if hi.n > 0 {
						g.last = hi.last
					}
					g.sum += hi.sum
					g.n += hi.n
				}
				s.gauges[i] = g
			}
			s.gauges = s.gauges[:n]
		case KindHist:
			n := (len(s.hists) + 1) / 2
			for i := 0; i < n; i++ {
				h := s.hists[2*i]
				if 2*i+1 < len(s.hists) {
					if hi := s.hists[2*i+1]; hi != nil {
						if h == nil {
							h = hi
						} else {
							h.Merge(hi)
						}
					}
				}
				s.hists[i] = h
			}
			for i := n; i < len(s.hists); i++ {
				s.hists[i] = nil
			}
			s.hists = s.hists[:n]
		}
	}
	c.width *= 2
	if c.cursor >= 0 {
		c.cursor /= 2
	}
}

// get finds or creates the (name, label) series, enforcing a stable kind.
func (c *Collector) get(name, label string, kind Kind) *series {
	key := seriesKey{name, label}
	s, ok := c.series[key]
	if !ok {
		s = &series{name: name, label: label, kind: kind}
		c.series[key] = s
		c.order = append(c.order, s)
	}
	if s.kind != kind {
		panic(fmt.Sprintf("timeseries: series %q label %q registered as %s, observed as %s",
			name, label, s.kind, kind))
	}
	return s
}

// Add accumulates a counter delta into the window containing sim time t.
func (c *Collector) Add(name, label string, t time.Duration, delta float64) {
	if c == nil {
		return
	}
	wi := c.at(t)
	s := c.get(name, label, KindCounter)
	for len(s.counters) <= wi {
		s.counters = append(s.counters, 0)
	}
	s.counters[wi] += delta
}

// SetGauge records a gauge sample into the window containing sim time t.
func (c *Collector) SetGauge(name, label string, t time.Duration, v float64) {
	if c == nil {
		return
	}
	wi := c.at(t)
	s := c.get(name, label, KindGauge)
	for len(s.gauges) <= wi {
		s.gauges = append(s.gauges, gaugeCell{})
	}
	g := &s.gauges[wi]
	g.last = v
	g.sum += v
	g.n++
}

// Observe records a histogram observation into the window containing sim
// time t.
func (c *Collector) Observe(name, label string, t time.Duration, v float64) {
	if c == nil {
		return
	}
	wi := c.at(t)
	s := c.get(name, label, KindHist)
	for len(s.hists) <= wi {
		s.hists = append(s.hists, nil)
	}
	if s.hists[wi] == nil {
		s.hists[wi] = &trace.Histogram{}
	}
	s.hists[wi].Observe(v)
}

// Probe registers a gauge probe: fn is read at every SampleProbes call
// (the utilization recorder's tick) and recorded as a gauge sample. The
// function must be cheap and side-effect-free.
func (c *Collector) Probe(name, label string, fn func() float64) {
	if c == nil || fn == nil {
		return
	}
	c.probes = append(c.probes, &probe{name: name, label: label, fn: fn})
	c.get(name, label, KindGauge)
}

// ProbeCounter registers a cumulative-counter probe: fn returns a
// monotonic total (e.g. events fired) and each SampleProbes call records
// the delta since the previous sample into the counter series — which
// the export then turns into a per-window rate.
func (c *Collector) ProbeCounter(name, label string, fn func() float64) {
	if c == nil || fn == nil {
		return
	}
	c.probes = append(c.probes, &probe{name: name, label: label, fn: fn, counter: true})
	c.get(name, label, KindCounter)
}

// SampleProbes reads every registered probe at sim time t. The
// utilization recorder calls it on each sampling tick, so probe series
// get one sample per interval; a final call at recorder Stop closes the
// books. Deltas before the first sample are attributed to it.
func (c *Collector) SampleProbes(t time.Duration) {
	if c == nil {
		return
	}
	for _, p := range c.probes {
		v := p.fn()
		if p.counter {
			if p.primed {
				c.Add(p.name, p.label, t, v-p.prev)
			} else {
				c.Add(p.name, p.label, t, v)
				p.primed = true
			}
			p.prev = v
			continue
		}
		c.SetGauge(p.name, p.label, t, v)
	}
}

// sorted returns the series in (name, label) order — the deterministic
// export order.
func (c *Collector) sorted() []*series {
	out := make([]*series, len(c.order))
	copy(out, c.order)
	sort.Slice(out, func(i, j int) bool {
		if out[i].name != out[j].name {
			return out[i].name < out[j].name
		}
		return out[i].label < out[j].label
	})
	return out
}

// Point is one window of one series, with the aggregate fields of its
// kind populated.
type Point struct {
	// Window is the window index; Start/End bound it in sim time.
	Window int
	Start  time.Duration
	End    time.Duration

	// Counter: Delta is the windowed sum, Rate is Delta per second.
	Delta float64
	Rate  float64

	// Gauge: Last and Mean over the window's samples.
	Last    float64
	Mean    float64
	Samples uint64

	// Histogram: the window digest's summary.
	Hist trace.HistogramStats
}

// SeriesSnapshot is one series' windows, for the report's charts.
type SeriesSnapshot struct {
	Name   string
	Label  string
	Kind   Kind
	Points []Point
}

// Value returns the point's representative scalar for charting: rate for
// counters, mean for gauges, p99 for histograms.
func (p Point) Value(kind Kind) float64 {
	switch kind {
	case KindCounter:
		return p.Rate
	case KindGauge:
		return p.Mean
	default:
		return p.Hist.P99
	}
}

// Snapshot renders every series into its windowed aggregate form, in
// deterministic (name, label) order. Counter series materialize every
// window up to the cursor (a zero delta is real data); gauge and
// histogram series include only windows that saw samples.
func (c *Collector) Snapshot() []SeriesSnapshot {
	if c == nil {
		return nil
	}
	out := make([]SeriesSnapshot, 0, len(c.order))
	for _, s := range c.sorted() {
		snap := SeriesSnapshot{Name: s.name, Label: s.label, Kind: s.kind}
		switch s.kind {
		case KindCounter:
			for wi := 0; wi <= c.cursor; wi++ {
				var delta float64
				if wi < len(s.counters) {
					delta = s.counters[wi]
				}
				p := c.point(wi)
				p.Delta = delta
				p.Rate = delta / c.width.Seconds()
				snap.Points = append(snap.Points, p)
			}
		case KindGauge:
			for wi, g := range s.gauges {
				if g.n == 0 {
					continue
				}
				p := c.point(wi)
				p.Last = g.last
				p.Mean = g.sum / float64(g.n)
				p.Samples = g.n
				snap.Points = append(snap.Points, p)
			}
		case KindHist:
			for wi, h := range s.hists {
				if h == nil || h.Count() == 0 {
					continue
				}
				p := c.point(wi)
				p.Hist = h.Stats()
				snap.Points = append(snap.Points, p)
			}
		}
		out = append(out, snap)
	}
	return out
}

func (c *Collector) point(wi int) Point {
	return Point{
		Window: wi,
		Start:  time.Duration(wi) * c.width,
		End:    time.Duration(wi+1) * c.width,
	}
}

// windowHist returns the merged digest for (series, label) in window wi.
// label "*" aggregates across all labels of the series name with the
// order-independent multi-merge.
func (c *Collector) windowHist(name, label string, wi int) *trace.Histogram {
	if label != "*" {
		s := c.series[seriesKey{name, label}]
		if s == nil || wi >= len(s.hists) {
			return nil
		}
		return s.hists[wi]
	}
	var hs []*trace.Histogram
	for _, s := range c.sorted() {
		if s.name != name || s.kind != KindHist {
			continue
		}
		if wi < len(s.hists) && s.hists[wi] != nil {
			hs = append(hs, s.hists[wi])
		}
	}
	if len(hs) == 0 {
		return nil
	}
	if len(hs) == 1 {
		return hs[0]
	}
	return trace.MergeHistograms(hs)
}

// tsRow is the JSONL schema for one series-window.
type tsRow struct {
	Series string  `json:"series"`
	Label  string  `json:"label,omitempty"`
	Kind   Kind    `json:"kind"`
	Window int     `json:"window"`
	StartS float64 `json:"start_s"`
	EndS   float64 `json:"end_s"`

	Delta *float64 `json:"delta,omitempty"`
	Rate  *float64 `json:"rate_per_s,omitempty"`

	Last    *float64 `json:"last,omitempty"`
	Mean    *float64 `json:"mean,omitempty"`
	Samples uint64   `json:"samples,omitempty"`

	Count uint64   `json:"count,omitempty"`
	Min   *float64 `json:"min,omitempty"`
	Max   *float64 `json:"max,omitempty"`
	P50   *float64 `json:"p50,omitempty"`
	P95   *float64 `json:"p95,omitempty"`
	P99   *float64 `json:"p99,omitempty"`
}

func fptr(v float64) *float64 { return &v }

// WriteJSONL exports every series-window as one JSON object per line,
// ordered by series name, label, then window — byte-deterministic for a
// given observation stream.
func (c *Collector) WriteJSONL(w io.Writer) error {
	if c == nil {
		return nil
	}
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for _, snap := range c.Snapshot() {
		for _, p := range snap.Points {
			row := tsRow{
				Series: snap.Name,
				Label:  snap.Label,
				Kind:   snap.Kind,
				Window: p.Window,
				StartS: p.Start.Seconds(),
				EndS:   p.End.Seconds(),
			}
			switch snap.Kind {
			case KindCounter:
				row.Delta = fptr(p.Delta)
				row.Rate = fptr(p.Rate)
			case KindGauge:
				row.Last = fptr(p.Last)
				row.Mean = fptr(p.Mean)
				row.Samples = p.Samples
			case KindHist:
				row.Count = p.Hist.Count
				row.Mean = fptr(p.Hist.Mean)
				row.Min = fptr(p.Hist.Min)
				row.Max = fptr(p.Hist.Max)
				row.P50 = fptr(p.Hist.P50)
				row.P95 = fptr(p.Hist.P95)
				row.P99 = fptr(p.Hist.P99)
			}
			if err := enc.Encode(row); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}
