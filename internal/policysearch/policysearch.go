// Package policysearch sweeps the policy registry over a fixed mixed
// workload and maps the Pareto frontier of the three objectives the
// paper trades off: batch completion time, energy and SLA compliance.
// Each candidate policy bundle runs the same seeded scenario — a hybrid
// cluster serving two interactive applications under diurnal load while
// a roster of batch jobs arrives — so the objective values are exact
// event tallies and integrals, not measurements.
//
// SEARCH.json is byte-deterministic: candidates fan across the
// experiments worker pool but results are assembled in grid order, no
// wall-clock data is included, and every float is rounded before
// serialization. The same grid at -parallel 1 and -parallel 8 must
// produce identical bytes (CI's policy-search-smoke step compares
// them). The frontier winner is re-run with the decision audit log
// attached, and the report embeds a digest of its decisions so a
// winning policy is explainable, not just a score.
package policysearch

import (
	"encoding/json"
	"fmt"
	"math"
	"math/rand"
	"sort"
	"time"

	hybridmr "repro"
	"repro/internal/audit"
	"repro/internal/experiments"
	"repro/internal/perfstat"
	"repro/internal/policy"
	"repro/internal/sim"
	"repro/internal/workload"
)

// Schema identifies the SEARCH.json layout.
const Schema = "hybridmr.search/v1"

// Options parameterizes a search.
type Options struct {
	// Grid is the candidate policy specs to score (default SmokeGrid()).
	Grid []policy.Spec
	// Seed fixes the scenario; every candidate runs the same seed.
	Seed int64
	// Jobs is the batch-roster size (default 6).
	Jobs int
	// Services is the interactive-application count (default 2).
	Services int
	// OnPointDone, when non-nil, is called as each candidate finishes —
	// a progress hook. Candidates fan across worker goroutines, so the
	// callback may run concurrently; it must not touch the results.
	OnPointDone func()
}

func (o Options) withDefaults() Options {
	if len(o.Grid) == 0 {
		o.Grid = SmokeGrid()
	}
	if o.Seed == 0 {
		o.Seed = 11
	}
	if o.Jobs <= 0 {
		o.Jobs = 6
	}
	if o.Services <= 0 {
		o.Services = 2
	}
	return o
}

// SmokeGrid is the CI-sized candidate set: the paper default plus one
// single-seam swap per registered contender and two knob sweeps. Like
// FullGrid it keeps Phase I on the paper placer — the random and static
// placers are sanity baselines, not contenders.
func SmokeGrid() []policy.Spec {
	return []policy.Spec{
		{},
		{Phase2: "fifo-p2"},
		{Phase2: "locality-p2"},
		{Phase2: "jobdriven-p2"},
		{DRM: "static-split"},
		{IPS: "throttle-first"},
		{SpecSlowdown: 0.75},
		{Overhead: 0.5},
	}
}

// FullGrid crosses every registered Phase II, DRM and IPS policy
// (Phase I stays on the paper placer — the random and static placers
// are baselines, not contenders), then appends the knob sweeps.
func FullGrid() []policy.Spec {
	var out []policy.Spec
	for _, p2 := range policy.Phase2Names() {
		for _, drm := range policy.DRMNames() {
			for _, ips := range policy.IPSNames() {
				out = append(out, policy.Spec{Phase2: p2, DRM: drm, IPS: ips})
			}
		}
	}
	for _, ov := range []float64{0.15, 0.5} {
		out = append(out, policy.Spec{Overhead: ov})
	}
	for _, sl := range []float64{0.25, 0.75} {
		out = append(out, policy.Spec{SpecSlowdown: sl})
	}
	return out
}

// RandomGrid samples n candidate specs from the registry axes with a
// seeded generator — the random half of the grid/random harness. The
// same (n, seed) always yields the same grid.
func RandomGrid(n int, seed int64) []policy.Spec {
	rng := rand.New(rand.NewSource(seed))
	pick := func(names []string) string { return names[rng.Intn(len(names))] }
	out := make([]policy.Spec, 0, n)
	for i := 0; i < n; i++ {
		spec := policy.Spec{
			Phase2: pick(policy.Phase2Names()),
			DRM:    pick(policy.DRMNames()),
			IPS:    pick(policy.IPSNames()),
		}
		if rng.Intn(2) == 0 {
			spec.Overhead = math.Round((0.1+0.5*rng.Float64())*100) / 100
		}
		if rng.Intn(2) == 0 {
			spec.SpecSlowdown = math.Round((0.2+0.6*rng.Float64())*100) / 100
		}
		out = append(out, spec)
	}
	return out
}

// Objectives are one candidate's scores; all three are minimized.
type Objectives struct {
	// MeanJCTSec is the mean batch job completion time.
	MeanJCTSec float64 `json:"mean_jct_sec"`
	// EnergyWh is the cluster's integrated energy over the run.
	EnergyWh float64 `json:"energy_wh"`
	// SLAViolationRate is the fraction of service monitoring epochs in
	// violation.
	SLAViolationRate float64 `json:"sla_violation_rate"`
}

func (o Objectives) dominates(other Objectives) bool {
	if o.MeanJCTSec > other.MeanJCTSec || o.EnergyWh > other.EnergyWh ||
		o.SLAViolationRate > other.SLAViolationRate {
		return false
	}
	return o.MeanJCTSec < other.MeanJCTSec || o.EnergyWh < other.EnergyWh ||
		o.SLAViolationRate < other.SLAViolationRate
}

// Candidate is one scored policy bundle.
type Candidate struct {
	// Policy is the canonical spec string — the candidate's identity.
	Policy string `json:"policy"`
	// Spec is the structured selection.
	Spec policy.Spec `json:"spec"`
	// Objectives are the scores.
	Objectives Objectives `json:"objectives"`
	// Jobs is how many batch jobs completed (all of them, or the run
	// errors).
	Jobs int `json:"jobs"`
	// EventsFired counts the candidate's simulation events — the
	// denominator of the bench throughput floor.
	EventsFired int64 `json:"events_fired"`
	// Pareto marks frontier membership: no other candidate is at least
	// as good on every objective and better on one.
	Pareto bool `json:"pareto"`
}

// StageCount is one (stage, action) tally of the winner's audit trail.
type StageCount struct {
	Stage  string `json:"stage"`
	Action string `json:"action"`
	Count  int    `json:"count"`
}

// WinnerAudit is the decision digest of the frontier winner's re-run,
// linking the search verdict back to the audit trail that explains it.
type WinnerAudit struct {
	// Policy is the winner's canonical spec string.
	Policy string `json:"policy"`
	// Decisions is the total audited decision count.
	Decisions int `json:"decisions"`
	// ByStage tallies decisions per controller stage and action.
	ByStage []StageCount `json:"by_stage"`
	// FirstPlacement quotes the run's first Phase I decision verbatim.
	FirstPlacement string `json:"first_placement,omitempty"`
}

// Report is the deterministic body of SEARCH.json.
type Report struct {
	Seed       int64       `json:"seed"`
	Scenario   Scenario    `json:"scenario"`
	Candidates []Candidate `json:"candidates"`
	// Frontier lists the Pareto candidates' policy strings in grid
	// order.
	Frontier []string `json:"frontier"`
	// Winner digests the minimum-energy frontier point's decisions.
	Winner *WinnerAudit `json:"winner,omitempty"`
}

// Scenario describes the fixed workload every candidate ran.
type Scenario struct {
	NativePMs      int `json:"native_pms"`
	VirtualHostPMs int `json:"virtual_host_pms"`
	VMsPerHost     int `json:"vms_per_host"`
	Services       int `json:"services"`
	Jobs           int `json:"jobs"`
}

// File is the full SEARCH.json document. Unlike PERF.json there is no
// wall-clock section at all: the whole file is byte-deterministic so CI
// can compare serial and parallel runs with cmp.
type File struct {
	Schema string `json:"schema"`
	Report Report `json:"report"`
}

// JSON renders the document with stable formatting.
func (f File) JSON() ([]byte, error) {
	data, err := json.MarshalIndent(f, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(data, '\n'), nil
}

// Run scores every grid candidate, fanning across experiments.Workers()
// goroutines, computes the Pareto frontier, and re-runs the winner with
// the audit log attached. The returned log holds the winner's full
// decision trail (nil when the grid is empty).
func Run(opts Options) (File, *audit.Log, error) {
	opts = opts.withDefaults()
	scen := Scenario{
		NativePMs:      6,
		VirtualHostPMs: 6,
		VMsPerHost:     2,
		Services:       opts.Services,
		Jobs:           opts.Jobs,
	}
	cands, err := experiments.Map(len(opts.Grid), func(i int) (Candidate, error) {
		c, err := runCandidate(opts.Grid[i], scen, opts.Seed, nil)
		if err == nil && opts.OnPointDone != nil {
			opts.OnPointDone()
		}
		return c, err
	})
	if err != nil {
		return File{}, nil, err
	}
	markFrontier(cands)
	rep := Report{Seed: opts.Seed, Scenario: scen, Candidates: cands}
	for _, c := range cands {
		if c.Pareto {
			rep.Frontier = append(rep.Frontier, c.Policy)
		}
	}
	var winnerLog *audit.Log
	if w := pickWinner(cands); w >= 0 {
		winnerLog = audit.New(0)
		if _, err := runCandidate(cands[w].Spec, scen, opts.Seed, winnerLog); err != nil {
			return File{}, nil, fmt.Errorf("policysearch: winner re-run: %w", err)
		}
		rep.Winner = digestAudit(cands[w].Policy, winnerLog)
	}
	return File{Schema: Schema, Report: rep}, winnerLog, nil
}

// pickWinner returns the index of the minimum-energy frontier point,
// ties broken by the lexicographically smallest policy string; -1 when
// there are no candidates.
func pickWinner(cands []Candidate) int {
	best := -1
	for i, c := range cands {
		if !c.Pareto {
			continue
		}
		if best < 0 ||
			c.Objectives.EnergyWh < cands[best].Objectives.EnergyWh ||
			(c.Objectives.EnergyWh == cands[best].Objectives.EnergyWh && c.Policy < cands[best].Policy) {
			best = i
		}
	}
	return best
}

// markFrontier sets Pareto on every non-dominated candidate. Duplicate
// objective vectors are all kept: they tie, neither dominates.
func markFrontier(cands []Candidate) {
	for i := range cands {
		dominated := false
		for j := range cands {
			if i != j && cands[j].Objectives.dominates(cands[i].Objectives) {
				dominated = true
				break
			}
		}
		cands[i].Pareto = !dominated
	}
}

// digestAudit tallies a decision log per (stage, action).
func digestAudit(policyID string, log *audit.Log) *WinnerAudit {
	recs := log.Records()
	counts := make(map[StageCount]int)
	first := ""
	for _, r := range recs {
		counts[StageCount{Stage: r.Subsystem, Action: r.Action}]++
		if first == "" && r.Subsystem == "phase1" {
			first = fmt.Sprintf("%s -> %s (%s)", r.Subject, r.Decision, r.Reason)
		}
	}
	keys := make([]StageCount, 0, len(counts))
	for k := range counts {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].Stage != keys[j].Stage {
			return keys[i].Stage < keys[j].Stage
		}
		return keys[i].Action < keys[j].Action
	})
	w := &WinnerAudit{Policy: policyID, Decisions: len(recs), FirstPlacement: first}
	for _, k := range keys {
		k.Count = counts[StageCount{Stage: k.Stage, Action: k.Action}]
		w.ByStage = append(w.ByStage, k)
	}
	return w
}

// runCandidate runs the fixed scenario under one policy bundle: two
// interactive services under diurnal load on the virtual partition,
// with a staggered roster of batch jobs (every third job carrying a
// generous deadline, the rest exercising the overhead path), scored on
// mean JCT, integrated energy and the fraction of monitoring epochs in
// SLA violation.
func runCandidate(spec policy.Spec, scen Scenario, seed int64, log *audit.Log) (Candidate, error) {
	set, err := spec.Resolve()
	if err != nil {
		return Candidate{}, err
	}
	perf := perfstat.New()
	hc, err := hybridmr.NewHybridCluster(hybridmr.ClusterSpec{
		NativePMs:      scen.NativePMs,
		VirtualHostPMs: scen.VirtualHostPMs,
		VMsPerHost:     scen.VMsPerHost,
		Seed:           seed,
		Policies:       set,
		Perf:           perf,
		Audit:          log,
	})
	if err != nil {
		return Candidate{}, err
	}
	defer hc.Close()

	svcSpecs := workload.Services()
	var services []*hybridmr.Service
	var drivers []*workload.LoadDriver
	for i := 0; i < scen.Services; i++ {
		svc, err := hc.DeployService(svcSpecs[i%len(svcSpecs)])
		if err != nil {
			return Candidate{}, err
		}
		services = append(services, svc)
		drivers = append(drivers, workload.NewLoadDriver(hc.System.Engine(), svc, &workload.DiurnalTrace{
			Base: 1200, Amplitude: 600, Seed: seed + int64(i),
		}, 15*time.Second))
	}

	rec := hc.NewRecorder(30 * time.Second)

	roster := []hybridmr.JobSpec{
		workload.Sort(), workload.Wcount(), workload.DistGrep(),
		workload.Kmeans(), workload.Twitter(),
	}
	done := 0
	var jcts []float64
	var submitErr error
	for i := 0; i < scen.Jobs; i++ {
		js := roster[i%len(roster)].WithInputMB(4096)
		deadline := time.Duration(0)
		if i%3 == 0 {
			deadline = 90 * time.Minute
		}
		hc.System.Engine().After(time.Duration(i)*15*time.Second, func() {
			if _, _, err := hc.SubmitJob(js, deadline, func(j *hybridmr.Job) {
				done++
				jcts = append(jcts, j.JCT().Seconds())
			}); err != nil && submitErr == nil {
				submitErr = err
			}
		})
	}

	// SLA compliance sampling at the IPS cadence.
	epochs, violations := 0, 0
	slaTick := sim.NewTicker(hc.System.Engine(), 15*time.Second, func(time.Duration) {
		for _, svc := range services {
			epochs++
			if svc.SLAViolated() {
				violations++
			}
		}
	})

	deadline := 4 * time.Hour
	at := time.Duration(0)
	for at < deadline && done < scen.Jobs {
		at += time.Minute
		hc.RunFor(time.Minute)
	}
	slaTick.Stop()
	for _, d := range drivers {
		d.Stop()
	}
	rec.Stop()
	if submitErr != nil {
		return Candidate{}, fmt.Errorf("policysearch: %s: submit: %w", spec.String(), submitErr)
	}
	if done < scen.Jobs {
		return Candidate{}, fmt.Errorf("policysearch: %s: %d of %d jobs completed within %v",
			spec.String(), done, scen.Jobs, deadline)
	}

	var jctSum float64
	for _, v := range jcts {
		jctSum += v
	}
	rate := 0.0
	if epochs > 0 {
		rate = float64(violations) / float64(epochs)
	}
	return Candidate{
		Policy: spec.String(),
		Spec:   spec,
		Objectives: Objectives{
			MeanJCTSec:       round3(jctSum / float64(len(jcts))),
			EnergyWh:         round3(rec.EnergyWh()),
			SLAViolationRate: round3(rate),
		},
		Jobs:        done,
		EventsFired: perf.C.EngineEventsFired,
	}, nil
}

func round3(v float64) float64 { return math.Round(v*1000) / 1000 }
