package policysearch

import (
	"bytes"
	"testing"

	"repro/internal/experiments"
	"repro/internal/policy"
)

// testGrid is a cut-down grid so the test stays fast while still
// crossing worker boundaries at parallelism 8.
func testGrid() []policy.Spec {
	return []policy.Spec{
		{},
		{Phase2: "fifo-p2"},
		{DRM: "static-split"},
	}
}

func runJSON(t *testing.T, parallelism int) []byte {
	t.Helper()
	prev := experiments.Parallelism
	experiments.Parallelism = parallelism
	defer func() { experiments.Parallelism = prev }()
	file, _, err := Run(Options{Grid: testGrid(), Jobs: 3, Services: 1})
	if err != nil {
		t.Fatalf("Run(parallelism=%d): %v", parallelism, err)
	}
	data, err := file.JSON()
	if err != nil {
		t.Fatalf("JSON: %v", err)
	}
	return data
}

// TestParallelDeterminism is the satellite contract: the same grid at
// -parallel 1 and -parallel 8 yields byte-identical SEARCH.json —
// ordering, frontier and winner digest included.
func TestParallelDeterminism(t *testing.T) {
	serial := runJSON(t, 1)
	parallel := runJSON(t, 8)
	if !bytes.Equal(serial, parallel) {
		t.Fatalf("SEARCH.json differs between -parallel 1 and -parallel 8:\n--- serial ---\n%s\n--- parallel ---\n%s", serial, parallel)
	}
}

// TestRunShape checks the report's structural invariants: every
// candidate present in grid order, a non-empty frontier in grid order,
// and a winner digest referencing a frontier policy with audited
// decisions.
func TestRunShape(t *testing.T) {
	file, log, err := Run(Options{Grid: testGrid(), Jobs: 3, Services: 1})
	if err != nil {
		t.Fatal(err)
	}
	rep := file.Report
	if len(rep.Candidates) != len(testGrid()) {
		t.Fatalf("candidates = %d, want %d", len(rep.Candidates), len(testGrid()))
	}
	for i, spec := range testGrid() {
		if rep.Candidates[i].Policy != spec.String() {
			t.Errorf("candidate %d = %q, want %q (grid order)", i, rep.Candidates[i].Policy, spec.String())
		}
		if rep.Candidates[i].Jobs != 3 {
			t.Errorf("candidate %d completed %d jobs", i, rep.Candidates[i].Jobs)
		}
		if rep.Candidates[i].EventsFired <= 0 {
			t.Errorf("candidate %d fired no events", i)
		}
	}
	if len(rep.Frontier) == 0 {
		t.Fatal("empty frontier")
	}
	prev := -1
	for _, p := range rep.Frontier {
		idx := -1
		for i, c := range rep.Candidates {
			if c.Policy == p {
				idx = i
				break
			}
		}
		if idx < 0 {
			t.Fatalf("frontier policy %q not among candidates", p)
		}
		if !rep.Candidates[idx].Pareto {
			t.Errorf("frontier policy %q not marked pareto", p)
		}
		if idx <= prev {
			t.Errorf("frontier out of grid order at %q", p)
		}
		prev = idx
	}
	if rep.Winner == nil {
		t.Fatal("no winner digest")
	}
	if rep.Winner.Decisions == 0 || len(rep.Winner.ByStage) == 0 {
		t.Errorf("winner digest empty: %+v", rep.Winner)
	}
	if log == nil || len(log.Records()) != rep.Winner.Decisions {
		t.Errorf("winner log records mismatch digest")
	}
	found := false
	for _, p := range rep.Frontier {
		if p == rep.Winner.Policy {
			found = true
		}
	}
	if !found {
		t.Errorf("winner %q not on frontier", rep.Winner.Policy)
	}
}

// TestRandomGridStable pins seeded sampling: same (n, seed) yields the
// same grid, and every sampled spec resolves.
func TestRandomGridStable(t *testing.T) {
	a, b := RandomGrid(6, 7), RandomGrid(6, 7)
	if len(a) != 6 {
		t.Fatalf("len = %d", len(a))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Errorf("sample %d differs: %+v vs %+v", i, a[i], b[i])
		}
		if _, err := a[i].Resolve(); err != nil {
			t.Errorf("sample %d does not resolve: %v", i, err)
		}
	}
}
