// Package invariant is a runtime safety-invariant checker for the
// simulated stack. It hangs off the event hooks the subsystems expose
// (attempt launches and completions in mapred, migration commits in
// cluster, injections in fault) and asserts cross-layer properties that
// no single subsystem can see on its own:
//
//   - no task ever has two primary (or two speculative) attempts
//     running concurrently;
//   - no map is launched against a block whose replica set is empty;
//   - no reduce completes while a needed map output is unfetchable
//     (its node destroyed, failed, partitioned away, or its tracker
//     lost without the map being re-executed);
//   - no migration commits onto a failed or partition-unreachable
//     destination;
//   - no VM is ever hosted on a failed machine;
//   - after the last injection, re-replication restores the target
//     factor and no job livelocks while the fleet stays viable.
//
// A violation carries the simulated time and the most recent
// audit-trail record — the decision that caused it — so a chaos-search
// repro points straight at the broken code path. Like trace and audit,
// a nil *Checker accepts the whole API as a no-op, and a wired checker
// never perturbs the simulation beyond zero-delay sweep events: it
// reads state, it never mutates it.
package invariant

import (
	"fmt"

	"repro/internal/audit"
	"repro/internal/cluster"
	"repro/internal/dfs"
	"repro/internal/mapred"
	"repro/internal/sim"
)

// AuditRef is the slice of an audit.Record a violation keeps: enough to
// find the causing decision in the full trail, and byte-deterministic
// so chaos-search artifacts can be compared across runs.
type AuditRef struct {
	Seq       uint64 `json:"seq"`
	AtUs      int64  `json:"at_us"`
	Subsystem string `json:"subsystem"`
	Action    string `json:"action"`
	Subject   string `json:"subject"`
	Decision  string `json:"decision"`
	Reason    string `json:"reason,omitempty"`
}

// Violation is one observed invariant breach.
type Violation struct {
	// Name identifies the invariant, machine-readably.
	Name string `json:"name"`
	// AtUs is the simulated time of the breach, in microseconds.
	AtUs int64 `json:"at_us"`
	// Detail says what broke, with enough names to find it in a trace.
	Detail string `json:"detail"`
	// Audit is the most recent audit-trail record when the breach was
	// observed — the decision that caused it, when auditing is on.
	Audit *AuditRef `json:"audit,omitempty"`
}

func (v Violation) String() string {
	return fmt.Sprintf("%s@%dus: %s", v.Name, v.AtUs, v.Detail)
}

// Checker observes a running stack and records violations. The zero
// value from New is inert until Attach wires it to a built rig; every
// method is a no-op on a nil receiver.
type Checker struct {
	engine  *sim.Engine
	cluster *cluster.Cluster
	fss     []*dfs.FileSystem
	jts     []*mapred.JobTracker
	log     *audit.Log

	injections   int
	sweepPending bool
	violations   []Violation
	seen         map[string]bool
}

// New returns an unattached checker.
func New() *Checker {
	return &Checker{seen: make(map[string]bool)}
}

// Attach wires the checker into a built stack: it registers itself as
// the cluster's and every jobtracker's invariant sink and keeps the
// references it needs for the end-of-run liveness checks. Callers with
// a fault injector should additionally pass the checker to its
// SetInvariants (the fault package is a layer above this one, so the
// checker cannot reach it itself). Attaching a nil checker is a no-op.
func (c *Checker) Attach(engine *sim.Engine, cl *cluster.Cluster, fss []*dfs.FileSystem, jts []*mapred.JobTracker, log *audit.Log) {
	if c == nil {
		return
	}
	c.engine, c.cluster, c.fss, c.jts, c.log = engine, cl, fss, jts, log
	if cl != nil {
		cl.SetInvariants(c)
	}
	for _, jt := range jts {
		jt.SetInvariants(c)
	}
}

// violate records one breach, deduplicating exact repeats (a broken
// recovery path trips the same invariant at every reduce completion;
// one record per distinct detail keeps artifacts readable).
func (c *Checker) violate(name, detail string) {
	key := name + "|" + detail
	if c.seen[key] {
		return
	}
	c.seen[key] = true
	v := Violation{Name: name, Detail: detail}
	if c.engine != nil {
		v.AtUs = c.engine.Now().Microseconds()
	}
	if recs := c.log.Records(); len(recs) > 0 {
		r := recs[len(recs)-1]
		v.Audit = &AuditRef{
			Seq: r.Seq, AtUs: r.At.Microseconds(), Subsystem: r.Subsystem,
			Action: r.Action, Subject: r.Subject, Decision: r.Decision, Reason: r.Reason,
		}
	}
	c.violations = append(c.violations, v)
}

// AttemptStarted checks every launch: a task must never hold two
// primary attempts (re-execution racing a live original) nor two
// speculative backups, and a map must never be launched against a
// block with no replicas left. Implements mapred.InvariantSink.
func (c *Checker) AttemptStarted(jt *mapred.JobTracker, a *mapred.Attempt) {
	if c == nil || a == nil {
		return
	}
	t := a.Task
	running, backups := 0, 0
	for _, other := range t.Attempts() {
		if !other.Running() {
			continue
		}
		running++
		if other.Speculative {
			backups++
		}
	}
	if primaries := running - backups; primaries > 1 {
		c.violate("attempt-double-scheduled",
			fmt.Sprintf("task %s has %d primary attempts running concurrently", t.ID(), primaries))
	}
	if backups > 1 {
		c.violate("attempt-double-scheduled",
			fmt.Sprintf("task %s has %d speculative attempts running concurrently", t.ID(), backups))
	}
	if t.Kind == mapred.MapTask && t.Block != nil && len(t.Block.Replicas) == 0 {
		c.violate("map-reads-lost-block",
			fmt.Sprintf("map %s launched against block %s whose replica set is empty", t.ID(), t.Block.ID))
	}
}

// AttemptFinished checks reduce completions: every finished map the
// reduce shuffled from must still have fetchable output. The check runs
// at completion rather than launch because correlated-failure batches
// legitimately pass through windows where an output node is gone but
// its map's re-execution has not been queued yet — no simulated time
// passes inside the batch, so nothing can *complete* inside the window.
// A reduce that finishes while a needed output is unfetchable really
// did consume lost data. Implements mapred.InvariantSink.
func (c *Checker) AttemptFinished(jt *mapred.JobTracker, a *mapred.Attempt) {
	if c == nil || a == nil || a.Task.Kind != mapred.ReduceTask {
		return
	}
	for _, m := range a.Task.Job.Maps() {
		if m.State() != mapred.TaskDone {
			continue
		}
		ot := m.OutputTracker()
		if ot == nil {
			continue
		}
		// The predicate is shared with the JobTracker's reducer-side fetch
		// gate (TaskTracker.OutputUnfetchable), so the checker and the
		// recovery path agree on what "fetchable" means.
		if why := ot.OutputUnfetchable(); why != "" {
			c.violate("reduce-consumed-lost-map-output",
				fmt.Sprintf("reduce %s completed while map %s's output on %s is unfetchable (%s)",
					a.Task.ID(), m.ID(), ot.Compute.Name(), why))
		}
	}
}

// MigrationCommitted checks the commit point of every live migration:
// the destination must be alive and reachable from the source at the
// instant the VM attaches. Implements cluster.InvariantSink.
func (c *Checker) MigrationCommitted(vm *cluster.VM, from, to *cluster.PM) {
	if c == nil {
		return
	}
	if to == nil || to.Failed() {
		c.violate("migration-committed-to-dead-pm",
			fmt.Sprintf("VM %s committed its migration onto a failed machine", vm.Name()))
		return
	}
	if c.cluster != nil && !c.cluster.Reachable(from, to) {
		c.violate("migration-committed-across-partition",
			fmt.Sprintf("VM %s committed from %s to %s across an active network partition",
				vm.Name(), from.Name(), to.Name()))
	}
}

// Injected notes a fault injection and schedules a structural sweep for
// the instant the injection's propagation finishes (a zero-delay event:
// the injector calls this hook before it tears anything down, so
// sweeping inline would read the pre-fault state). Implements
// fault.InvariantSink.
func (c *Checker) Injected(kind, target string) {
	if c == nil {
		return
	}
	c.injections++
	if c.engine == nil || c.sweepPending {
		return
	}
	c.sweepPending = true
	c.engine.After(0, func() {
		c.sweepPending = false
		c.sweep()
	})
}

// sweep asserts the structural invariants that must hold between any
// two events; today that is "no VM is hosted on a failed machine"
// (fault propagation must destroy or migrate every resident VM).
func (c *Checker) sweep() {
	if c == nil || c.cluster == nil {
		return
	}
	for _, vm := range c.cluster.VMs() {
		if m := vm.Machine(); m != nil && m.Failed() {
			c.violate("vm-on-dead-pm",
				fmt.Sprintf("VM %s is hosted on failed machine %s", vm.Name(), m.Name()))
		}
	}
}

// Final runs the end-of-run liveness invariants and returns everything
// observed. Call it once the event queue has drained (or a RunUntil
// horizon well past the fault window was reached): with no partition
// still open, re-replication must have restored every block's target
// factor, and no job may sit unfinished while the fleet is viable — a
// fleet with no repairable tracker left parks by design, which is a
// clean stall, not a livelock.
func (c *Checker) Final() []Violation {
	if c == nil {
		return nil
	}
	c.sweep()
	partitioned := c.cluster != nil && c.cluster.Partitioned()
	if c.injections > 0 && !partitioned {
		for _, fs := range c.fss {
			if n := fs.UnderReplicated(); n > 0 {
				c.violate("rereplication-not-restored",
					fmt.Sprintf("%d block(s) still under target replication after the last injection with no partition active", n))
			}
		}
	}
	for _, jt := range c.jts {
		if !jt.FleetViable() || partitioned {
			continue
		}
		for _, job := range jt.Jobs() {
			c.violate("job-livelock",
				fmt.Sprintf("job %s-%d unfinished (phase %d) with a viable fleet and a drained event queue",
					job.Spec.Name, job.ID, job.State()))
		}
	}
	return c.Violations()
}

// Violations returns a copy of everything recorded so far.
func (c *Checker) Violations() []Violation {
	if c == nil || len(c.violations) == 0 {
		return nil
	}
	out := make([]Violation, len(c.violations))
	copy(out, c.violations)
	return out
}

// Ok reports whether no invariant has been violated.
func (c *Checker) Ok() bool { return c == nil || len(c.violations) == 0 }

// Err returns nil when Ok, else an error naming the first violation.
func (c *Checker) Err() error {
	if c.Ok() {
		return nil
	}
	v := c.violations[0]
	extra := ""
	if n := len(c.violations); n > 1 {
		extra = fmt.Sprintf(" (and %d more)", n-1)
	}
	return fmt.Errorf("invariant %s violated at %dus: %s%s", v.Name, v.AtUs, v.Detail, extra)
}
