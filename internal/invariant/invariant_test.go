// External test package: in-package tests could not import testbed
// (testbed imports invariant), and building rigs is the only honest way
// to exercise the checker against real subsystem state.
package invariant_test

import (
	"strings"
	"testing"
	"time"

	"repro/internal/audit"
	"repro/internal/cluster"
	"repro/internal/fault"
	"repro/internal/invariant"
	"repro/internal/mapred"
	"repro/internal/sim"
	"repro/internal/testbed"
	"repro/internal/trace"
	"repro/internal/workload"
)

// The whole API must be a no-op on a nil receiver, like trace and audit.
func TestNilCheckerNoOps(t *testing.T) {
	var c *invariant.Checker
	c.Attach(nil, nil, nil, nil, nil)
	c.AttemptStarted(nil, nil)
	c.AttemptFinished(nil, nil)
	c.MigrationCommitted(nil, nil, nil)
	c.Injected("pm-crash", "pm-0")
	if vs := c.Final(); vs != nil {
		t.Fatalf("nil checker produced violations: %v", vs)
	}
	if !c.Ok() || c.Err() != nil {
		t.Fatal("nil checker must report Ok")
	}
}

// A healthy stack under correlated faults — a rack crash with repair and
// a healing partition — must come out violation-free: recovery works, so
// the checker must not cry wolf.
func TestHealthyFaultRunClean(t *testing.T) {
	inv := invariant.New()
	rig, err := testbed.New(testbed.Options{
		PMs: 4, VMsPerPM: 2, Racks: 2, PowerDomains: 2, Seed: 5,
		Audit:      audit.New(0),
		Invariants: inv,
		Faults: &fault.Options{
			Seed: 9,
			Schedule: []fault.ScheduledFault{
				{At: 45 * time.Second, Kind: fault.RackCrash, Target: "rack-1"},
				{At: 100 * time.Second, Kind: fault.NetPartition, Target: "rack-0", Duration: 60 * time.Second},
			},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	// Repair the crashed rack so re-replication has somewhere to land and
	// the fleet stays viable for the liveness checks.
	rig.Engine.After(4*time.Minute, func() {
		for _, pm := range rig.Cluster.PMsInRack("rack-1") {
			pm.PowerOn()
		}
	})
	if _, err := rig.JT.Submit(workload.Sort().WithInputMB(256), nil); err != nil {
		t.Fatal(err)
	}
	rig.Engine.RunUntil(30 * time.Minute)
	if vs := inv.Final(); len(vs) > 0 {
		t.Fatalf("healthy run violated invariants: %v", vs)
	}
	if err := inv.Err(); err != nil {
		t.Fatal(err)
	}
}

// With map re-execution disabled behind the test hook, crashing a VM that
// holds finished map output during the reduce phase must trip
// reduce-consumed-lost-map-output, and the violation must carry the
// audit record that caused it.
func TestBrokenRecoveryFlagged(t *testing.T) {
	inv := invariant.New()
	rig, err := testbed.New(testbed.Options{
		PMs: 4, VMsPerPM: 2, Seed: 3,
		MapredConfig: mapred.Config{DisableMapReexecution: true},
		Audit:        audit.New(0),
		Invariants:   inv,
	})
	if err != nil {
		t.Fatal(err)
	}
	job, err := rig.JT.Submit(workload.Sort().WithInputMB(512), nil)
	if err != nil {
		t.Fatal(err)
	}
	// Step until the reduce phase, then kill a VM holding map output.
	for at := time.Second; at < 30*time.Minute && job.State() != mapred.JobReducePhase; at += time.Second {
		rig.Engine.RunUntil(at)
	}
	if job.State() != mapred.JobReducePhase {
		t.Fatal("job never reached the reduce phase")
	}
	killed := false
	for _, m := range job.Maps() {
		ot := m.OutputTracker()
		if m.State() != mapred.TaskDone || ot == nil {
			continue
		}
		if vm, ok := ot.Compute.(*cluster.VM); ok {
			rig.Faults.CrashVM(vm)
			killed = true
			break
		}
	}
	if !killed {
		t.Fatal("no finished map output found to destroy")
	}
	rig.Engine.RunUntil(time.Hour)
	vs := inv.Final()
	found := false
	for _, v := range vs {
		if v.Name == "reduce-consumed-lost-map-output" {
			found = true
			if v.Audit == nil {
				t.Error("violation lacks its causing audit record")
			}
			if !strings.Contains(v.Detail, "map") {
				t.Errorf("detail does not name the map: %q", v.Detail)
			}
		}
	}
	if !found {
		t.Fatalf("broken recovery not flagged; violations: %v", vs)
	}
	if inv.Err() == nil {
		t.Fatal("Err must be non-nil after a violation")
	}
}

// A partition that opens mid-shuffle, before the heartbeat detector can
// notice, must not let reduces complete against unreachable map output:
// the reducer-side fetch gate discards the completion, re-executes the
// stranded maps, and the job still finishes clean once the partition
// heals. This is the minimized schedule the chaos search found against
// the pre-gate code (net-partition rack-1 during the Sort shuffle).
func TestPartitionDuringShuffleFetchGate(t *testing.T) {
	inv := invariant.New()
	reg := trace.NewRegistry()
	rig, err := testbed.New(testbed.Options{
		PMs: 6, VMsPerPM: 2, Racks: 3, PowerDomains: 2, Seed: 5,
		Audit:      audit.New(0),
		Metrics:    reg,
		Invariants: inv,
	})
	if err != nil {
		t.Fatal(err)
	}
	job, err := rig.JT.Submit(workload.Sort().WithInputMB(512), nil)
	if err != nil {
		t.Fatal(err)
	}
	// Step to the reduce phase, then cut off a rack that holds finished
	// map output while its tracker still looks healthy to the JT.
	for at := time.Second; at < 30*time.Minute && job.State() != mapred.JobReducePhase; at += time.Second {
		rig.Engine.RunUntil(at)
	}
	if job.State() != mapred.JobReducePhase {
		t.Fatal("job never reached the reduce phase")
	}
	var victim string
	for _, m := range job.Maps() {
		if ot := m.OutputTracker(); m.State() == mapred.TaskDone && ot != nil {
			if r := ot.Compute.Machine().Rack(); r != "" {
				victim = r
				break
			}
		}
	}
	if victim == "" {
		t.Fatal("no finished map output on a racked machine")
	}
	p := rig.Cluster.PartitionNetwork(rig.Cluster.PMsInRack(victim))
	rig.Engine.After(111*time.Second, p.Heal)
	rig.Engine.RunUntil(time.Hour)
	if !job.Done() {
		t.Fatal("job incomplete after the partition healed")
	}
	if got := reg.Snapshot().Counters["mapred.shuffle.fetch_failures"]; got == 0 {
		t.Error("fetch gate never fired; the partition window went unnoticed")
	}
	if vs := inv.Final(); len(vs) > 0 {
		t.Fatalf("fetch gate failed to protect the shuffle: %v", vs)
	}
}

// The migration-commit checks fire on dead and partition-unreachable
// destinations, and exact repeats deduplicate.
func TestMigrationCommitChecks(t *testing.T) {
	engine := sim.New()
	cl := cluster.New(engine, cluster.Config{}, 1)
	pms := cl.AddPMs("pm", 3)
	vm, err := cl.AddVM("vm-0", pms[0], 1, 512)
	if err != nil {
		t.Fatal(err)
	}
	inv := invariant.New()
	inv.Attach(engine, cl, nil, nil, nil)

	inv.MigrationCommitted(vm, pms[0], pms[1])
	if !inv.Ok() {
		t.Fatalf("live reachable destination flagged: %v", inv.Violations())
	}
	if err := pms[1].Fail(); err != nil {
		t.Fatal(err)
	}
	inv.MigrationCommitted(vm, pms[0], pms[1])
	inv.MigrationCommitted(vm, pms[0], pms[1]) // exact repeat must dedup
	if vs := inv.Violations(); len(vs) != 1 || vs[0].Name != "migration-committed-to-dead-pm" {
		t.Fatalf("want one migration-committed-to-dead-pm, got %v", vs)
	}
	p := cl.PartitionNetwork([]*cluster.PM{pms[2]})
	inv.MigrationCommitted(vm, pms[0], pms[2])
	p.Heal()
	vs := inv.Violations()
	if len(vs) != 2 || vs[1].Name != "migration-committed-across-partition" {
		t.Fatalf("want migration-committed-across-partition second, got %v", vs)
	}
}
