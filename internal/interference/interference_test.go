package interference

import (
	"math"
	"math/rand"
	"testing"
)

func TestPredictorNeedsMinimumSamples(t *testing.T) {
	p := NewPredictor(LinearFamily)
	if _, ok := p.Predict(1); ok {
		t.Error("prediction available with zero samples")
	}
	p.Observe(1, 1)
	if _, ok := p.Predict(1); ok {
		t.Error("linear prediction available with one sample")
	}
	p.Observe(2, 2)
	if _, ok := p.Predict(3); !ok {
		t.Error("linear prediction unavailable with two samples")
	}
}

func TestLinearPredictorLearnsSlowdown(t *testing.T) {
	p := NewPredictor(LinearFamily)
	// Ground truth: slowdown = 1 + 0.6 * collocated CPU.
	for x := 0.0; x <= 4; x += 0.5 {
		p.Observe(x, 1+0.6*x)
	}
	got, ok := p.Predict(6)
	if !ok {
		t.Fatal("no prediction")
	}
	if math.Abs(got-4.6) > 1e-6 {
		t.Errorf("Predict(6) = %v, want 4.6", got)
	}
}

func TestExponentialPredictorLearnsIOInterference(t *testing.T) {
	p := NewPredictor(ExponentialFamily)
	// Ground truth: slowdown = exp(0.05 * ioRate), the paper's
	// exponential JCT blowup under I/O contention.
	for x := 0.0; x <= 60; x += 5 {
		p.Observe(x, math.Exp(0.05*x))
	}
	got, ok := p.Predict(80)
	if !ok {
		t.Fatal("no prediction")
	}
	want := math.Exp(0.05 * 80)
	if math.Abs(got-want)/want > 0.01 {
		t.Errorf("Predict(80) = %v, want %v", got, want)
	}
}

func TestExponentialFallsBackOnLinear(t *testing.T) {
	p := NewPredictor(ExponentialFamily)
	p.Observe(1, 0) // clamped to tiny positive, not rejected
	p.Observe(2, 2)
	p.Observe(3, 3)
	if _, ok := p.Predict(4); !ok {
		t.Error("no prediction despite fallback path")
	}
}

func TestPiecewisePredictorFindsKnee(t *testing.T) {
	p := NewPredictor(PiecewiseFamily)
	// Memory interference: flat until the working set exceeds RAM, then
	// steep.
	for x := 0.0; x <= 2; x += 0.125 {
		y := 1.0
		if x > 1 {
			y = 1 + 4*(x-1)
		}
		p.Observe(x, y)
	}
	low, ok := p.Predict(0.5)
	if !ok {
		t.Fatal("no prediction")
	}
	high, _ := p.Predict(1.9)
	if math.Abs(low-1) > 0.3 {
		t.Errorf("Predict(0.5) = %v, want ~1", low)
	}
	if high < 3 {
		t.Errorf("Predict(1.9) = %v, want > 3", high)
	}
}

func TestPiecewiseFallsBackWithFewSamples(t *testing.T) {
	p := NewPredictor(PiecewiseFamily)
	p.Observe(0, 1)
	p.Observe(1, 2)
	p.Observe(2, 3)
	if _, ok := p.Predict(1.5); ok {
		t.Error("piecewise predicted below its 4-sample minimum")
	}
	p.Observe(3, 4)
	got, ok := p.Predict(4)
	if !ok {
		t.Fatal("no prediction with 4 samples")
	}
	if math.Abs(got-5) > 0.5 {
		t.Errorf("Predict(4) = %v, want ~5", got)
	}
}

func TestObservationWindowSlides(t *testing.T) {
	p := NewPredictor(LinearFamily)
	p.MaxSamples = 10
	// Old regime: flat at 1.
	for i := 0; i < 50; i++ {
		p.Observe(float64(i%5), 1)
	}
	// New regime: steep.
	for i := 0; i < 10; i++ {
		x := float64(i % 5)
		p.Observe(x, 1+2*x)
	}
	if p.Len() != 10 {
		t.Fatalf("window length = %d, want 10", p.Len())
	}
	got, ok := p.Predict(4)
	if !ok {
		t.Fatal("no prediction")
	}
	if math.Abs(got-9) > 0.5 {
		t.Errorf("Predict(4) = %v, want ~9 (new regime)", got)
	}
}

func TestNoisyFitStillReasonable(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	p := NewPredictor(LinearFamily)
	for i := 0; i < 200; i++ {
		x := rng.Float64() * 8
		p.Observe(x, 1+0.5*x+rng.NormFloat64()*0.2)
	}
	got, ok := p.Predict(4)
	if !ok {
		t.Fatal("no prediction")
	}
	if math.Abs(got-3) > 0.3 {
		t.Errorf("Predict(4) = %v, want ~3", got)
	}
}

func TestNewModelsFamilies(t *testing.T) {
	m := NewModels()
	if m.CPU.Family() != LinearFamily {
		t.Errorf("CPU family = %v, want linear (paper Section III-B)", m.CPU.Family())
	}
	if m.Memory.Family() != PiecewiseFamily {
		t.Errorf("Memory family = %v, want piecewise", m.Memory.Family())
	}
	if m.IO.Family() != ExponentialFamily {
		t.Errorf("IO family = %v, want exponential", m.IO.Family())
	}
}

func TestFamilyString(t *testing.T) {
	tests := []struct {
		f    Family
		want string
	}{
		{LinearFamily, "linear"},
		{PiecewiseFamily, "piecewise-linear"},
		{ExponentialFamily, "exponential"},
		{Family(9), "family(9)"},
	}
	for _, tt := range tests {
		if got := tt.f.String(); got != tt.want {
			t.Errorf("String() = %q, want %q", got, tt.want)
		}
	}
}
