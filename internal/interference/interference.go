// Package interference implements the statistical interference models of
// HybridMR's Phase II: predictors that learn a workload's slowdown (or an
// interactive application's latency inflation) as a function of the
// resource pressure exerted by collocated tasks and VMs. Following the
// paper (and MROrchestrator [31] / TRACON [13]), CPU interference uses a
// linear model, memory a piece-wise linear model, and I/O an exponential
// model.
package interference

import (
	"fmt"

	"repro/internal/stats"
)

// Family selects a regression model family.
type Family int

// Model families used by the paper.
const (
	LinearFamily Family = iota + 1
	PiecewiseFamily
	ExponentialFamily
)

// String names the family.
func (f Family) String() string {
	switch f {
	case LinearFamily:
		return "linear"
	case PiecewiseFamily:
		return "piecewise-linear"
	case ExponentialFamily:
		return "exponential"
	default:
		return fmt.Sprintf("family(%d)", int(f))
	}
}

func (f Family) minSamples() int {
	if f == PiecewiseFamily {
		return 4
	}
	return 2
}

// Predictor accumulates (pressure, response) observations online and fits
// its family's regression lazily. It is the Estimator building block of
// the LRM.
type Predictor struct {
	family Family
	xs     []float64
	ys     []float64
	model  stats.Model
	dirty  bool
	// MaxSamples bounds the observation window (default 512); the oldest
	// samples are discarded, so the model tracks phase changes.
	MaxSamples int
}

// NewPredictor creates an empty predictor of the family.
func NewPredictor(family Family) *Predictor {
	return &Predictor{family: family, MaxSamples: 512}
}

// Family returns the predictor's model family.
func (p *Predictor) Family() Family { return p.family }

// Len returns the number of retained observations.
func (p *Predictor) Len() int { return len(p.xs) }

// Observe appends a sample. Non-positive responses are clamped to a tiny
// positive value so the exponential family stays fittable.
func (p *Predictor) Observe(pressure, response float64) {
	if p.family == ExponentialFamily && response <= 0 {
		response = 1e-6
	}
	p.xs = append(p.xs, pressure)
	p.ys = append(p.ys, response)
	if p.MaxSamples > 0 && len(p.xs) > p.MaxSamples {
		p.xs = p.xs[1:]
		p.ys = p.ys[1:]
	}
	p.dirty = true
}

// refit rebuilds the model if observations changed.
func (p *Predictor) refit() {
	if !p.dirty || len(p.xs) < p.family.minSamples() {
		return
	}
	var (
		m   stats.Model
		err error
	)
	switch p.family {
	case PiecewiseFamily:
		m, err = stats.FitPiecewiseLinear(p.xs, p.ys)
		if err != nil {
			m, err = stats.FitLinear(p.xs, p.ys)
		}
	case ExponentialFamily:
		m, err = stats.FitExponential(p.xs, p.ys)
		if err != nil {
			m, err = stats.FitLinear(p.xs, p.ys)
		}
	default:
		m, err = stats.FitLinear(p.xs, p.ys)
	}
	if err == nil {
		p.model = m
	}
	p.dirty = false
}

// Predict estimates the response at the given pressure. The second result
// is false while the predictor has too few observations to fit.
func (p *Predictor) Predict(pressure float64) (float64, bool) {
	p.refit()
	if p.model == nil {
		return 0, false
	}
	return p.model.Predict(pressure), true
}

// Model exposes the fitted model (nil before enough data), mainly for
// logging fitted coefficients into experiment reports.
func (p *Predictor) Model() stats.Model {
	p.refit()
	return p.model
}

// Models bundles the three per-resource predictors the paper specifies
// for one workload class.
type Models struct {
	// CPU is a linear slowdown model in collocated CPU usage.
	CPU *Predictor
	// Memory is a piece-wise linear model in collocated memory usage.
	Memory *Predictor
	// IO is an exponential model in collocated I/O rate.
	IO *Predictor
}

// NewModels creates the paper's model set: linear CPU, piece-wise linear
// memory, exponential I/O. The same construction serves both MapReduce
// tasks (DRM) and interactive applications (IPS).
func NewModels() *Models {
	return &Models{
		CPU:    NewPredictor(LinearFamily),
		Memory: NewPredictor(PiecewiseFamily),
		IO:     NewPredictor(ExponentialFamily),
	}
}
