package cluster

import (
	"time"

	"repro/internal/resource"
	"repro/internal/sim"
)

// OpenEnded marks a Consumer that runs until stopped (interactive
// services, long-lived daemons) rather than completing a fixed amount of
// work.
const OpenEnded = -1.0

// Consumer is a unit of resource consumption: a map/reduce task, a DFS
// transfer, an interactive service, or a migration stream. It declares the
// resource rates it would consume at full speed and the amount of work in
// full-speed seconds; the hosting PM's kernel decides how fast it actually
// progresses.
type Consumer struct {
	// Name identifies the consumer in logs and metrics.
	Name string
	// Demand is the full-speed resource appetite: CPU in cores, Memory in
	// resident MB, DiskIO/NetIO in MB/s.
	Demand resource.Vector
	// Work is the duration in seconds the consumer would run at full
	// speed, or OpenEnded.
	Work float64
	// Weight scales the consumer's share under contention (default 1).
	Weight float64
	// Cap is an externally installed throttle (the DRM's cgroup-style
	// control); zero components mean "uncapped".
	Cap resource.Vector
	// OnComplete fires when the work finishes. It is never called for
	// open-ended consumers.
	OnComplete func()
	// OnKilled fires if the consumer is killed before completing.
	OnKilled func()

	node       Node
	host       *PM
	vm         *VM
	remaining  float64
	lastSettle time.Duration
	alloc      resource.Vector
	speed      float64
	completion *sim.Event
	state      consumerState
}

type consumerState int

const (
	consumerIdle consumerState = iota
	consumerRunning
	consumerDone
	consumerKilled
)

// Running reports whether the consumer is attached to a node.
func (c *Consumer) Running() bool { return c.state == consumerRunning }

// Done reports whether the consumer completed its work.
func (c *Consumer) Done() bool { return c.state == consumerDone }

// Killed reports whether the consumer was killed before completing.
func (c *Consumer) Killed() bool { return c.state == consumerKilled }

// Node returns where the consumer runs, or nil.
func (c *Consumer) Node() Node { return c.node }

// Alloc returns the current resource allocation.
func (c *Consumer) Alloc() resource.Vector { return c.alloc }

// Speed returns the current progress rate in [0, 1].
func (c *Consumer) Speed() float64 { return c.speed }

// Remaining returns the un-done work in full-speed seconds, settling
// progress to the current instant first. Open-ended consumers return
// OpenEnded.
func (c *Consumer) Remaining() float64 {
	if c.Work < 0 {
		return OpenEnded
	}
	if c.host != nil {
		c.host.settle()
	}
	return c.remaining
}

// Progress returns the completed fraction in [0, 1]; open-ended consumers
// report 0.
func (c *Consumer) Progress() float64 {
	if c.Work <= 0 {
		return 0
	}
	rem := c.Remaining()
	p := 1 - rem/c.Work
	if p < 0 {
		return 0
	}
	if p > 1 {
		return 1
	}
	return p
}

// SetDemand replaces the demand vector and re-solves the host. It is how
// interactive services track their client load.
func (c *Consumer) SetDemand(d resource.Vector) {
	if c.host != nil {
		c.host.settle()
	}
	c.Demand = d
	if c.host != nil {
		c.host.update()
	}
}

// SetCap installs a resource throttle (the Phase II DRM's actuator) and
// re-solves the host.
func (c *Consumer) SetCap(cap resource.Vector) {
	if c.host != nil {
		c.host.settle()
	}
	c.Cap = cap
	if c.host != nil {
		c.host.update()
	}
}

// SetWeight changes the fair-share weight and re-solves the host.
func (c *Consumer) SetWeight(w float64) {
	if c.host != nil {
		c.host.settle()
	}
	c.Weight = w
	if c.host != nil {
		c.host.update()
	}
}

// Stop detaches the consumer without invoking callbacks. Stopping an
// already-detached consumer is a no-op.
func (c *Consumer) Stop() {
	if c.state != consumerRunning {
		return
	}
	host := c.host
	host.settle()
	c.detach()
	c.state = consumerIdle
	host.update()
}

// Kill detaches the consumer and invokes OnKilled. The Phase II IPS uses
// this for interfering tasks that must be re-run elsewhere (MapReduce
// regenerates them via speculative execution).
func (c *Consumer) Kill() {
	if c.state != consumerRunning {
		return
	}
	host := c.host
	host.settle()
	c.detach()
	c.state = consumerKilled
	host.update()
	if c.OnKilled != nil {
		c.OnKilled()
	}
}

// detach removes the consumer from its container without re-solving.
func (c *Consumer) detach() {
	if c.completion != nil {
		c.host.cluster.engine.Cancel(c.completion)
		c.completion = nil
	}
	if c.vm != nil {
		c.vm.consumers = removeConsumer(c.vm.consumers, c)
	} else if c.host != nil {
		c.host.native = removeConsumer(c.host.native, c)
	}
	c.node = nil
	c.host = nil
	c.vm = nil
	c.alloc = resource.Vector{}
	c.speed = 0
}

func (c *Consumer) complete() {
	// The firing event is recycled by the engine once this callback
	// returns; drop the handle first so no later path cancels a stale one.
	c.completion = nil
	if c.state != consumerRunning {
		return
	}
	host := c.host
	host.settle()
	c.remaining = 0
	c.detach()
	c.state = consumerDone
	host.update()
	if c.OnComplete != nil {
		c.OnComplete()
	}
}

func removeConsumer(list []*Consumer, c *Consumer) []*Consumer {
	for i, x := range list {
		if x == c {
			return append(list[:i], list[i+1:]...)
		}
	}
	return list
}
