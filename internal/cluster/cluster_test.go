package cluster

import (
	"math"
	"testing"
	"time"

	"repro/internal/resource"
	"repro/internal/sim"
	"repro/internal/trace"
)

// testCluster builds an engine plus a cluster with deterministic config.
func testCluster(t *testing.T) (*sim.Engine, *Cluster) {
	t.Helper()
	engine := sim.New()
	return engine, New(engine, DefaultConfig(), 1)
}

func runConsumer(t *testing.T, engine *sim.Engine, node Node, c *Consumer) time.Duration {
	t.Helper()
	var doneAt time.Duration = -1
	prev := c.OnComplete
	c.OnComplete = func() {
		doneAt = engine.Now()
		if prev != nil {
			prev()
		}
	}
	if err := node.Start(c); err != nil {
		t.Fatalf("Start(%s): %v", c.Name, err)
	}
	engine.Run()
	if doneAt < 0 {
		t.Fatalf("consumer %s never completed", c.Name)
	}
	return doneAt
}

func secs(d time.Duration) float64 { return d.Seconds() }

func TestNativeConsumerFullSpeed(t *testing.T) {
	engine, c := testCluster(t)
	pm := c.AddPM("pm-0")
	con := &Consumer{
		Name:   "t",
		Demand: resource.NewVector(1, 512, 0, 0),
		Work:   100,
	}
	at := runConsumer(t, engine, pm, con)
	if math.Abs(secs(at)-100) > 0.01 {
		t.Errorf("completed at %v, want 100s", secs(at))
	}
	if !con.Done() {
		t.Error("Done() = false")
	}
}

func TestCPUContentionHalvesSpeed(t *testing.T) {
	engine, c := testCluster(t) // 2 cores
	pm := c.AddPM("pm-0")
	// Three consumers each wanting 1 core on a 2-core PM: each gets 2/3.
	var doneAt []float64
	for i := 0; i < 3; i++ {
		con := &Consumer{
			Name:   "t",
			Demand: resource.NewVector(1, 0, 0, 0),
			Work:   100,
		}
		con.OnComplete = func() { doneAt = append(doneAt, secs(engine.Now())) }
		if err := pm.Start(con); err != nil {
			t.Fatal(err)
		}
	}
	engine.Run()
	if len(doneAt) != 3 {
		t.Fatalf("%d completions, want 3", len(doneAt))
	}
	for _, at := range doneAt {
		if math.Abs(at-150) > 0.5 {
			t.Errorf("completed at %vs, want 150s (2 cores / 3 claimants)", at)
		}
	}
}

func TestStaggeredArrivalIntegration(t *testing.T) {
	engine, c := testCluster(t)
	pm := c.AddPM("pm-0")
	cfg := c.Config()
	if cfg.Cores != 2 {
		t.Fatalf("test assumes 2 cores")
	}
	// First consumer runs alone for 50s at full speed, then a second
	// arrives; both want 2 cores, so each gets 1 core (speed 0.5).
	first := &Consumer{Name: "a", Demand: resource.NewVector(2, 0, 0, 0), Work: 100}
	var firstDone float64
	first.OnComplete = func() { firstDone = secs(engine.Now()) }
	if err := pm.Start(first); err != nil {
		t.Fatal(err)
	}
	engine.After(50*time.Second, func() {
		second := &Consumer{Name: "b", Demand: resource.NewVector(2, 0, 0, 0), Work: 100}
		if err := pm.Start(second); err != nil {
			t.Error(err)
		}
	})
	engine.Run()
	// 50s at speed 1 + 50 remaining at speed 0.5 = 100s more → 150s.
	if math.Abs(firstDone-150) > 0.5 {
		t.Errorf("first completed at %vs, want 150s", firstDone)
	}
}

func TestVMGuestOverheadOnIO(t *testing.T) {
	engine, c := testCluster(t)
	pm := c.AddPM("pm-0")
	vm, err := c.AddVM("vm-0", pm, 1, 1024)
	if err != nil {
		t.Fatal(err)
	}
	// Disk-bound consumer: demands the full native disk bandwidth, so the
	// guest overhead (0.84) plus a little seek thrash is the bottleneck.
	con := &Consumer{
		Name:   "io",
		Demand: resource.NewVector(0.1, 256, c.Config().DiskMBps, 0),
		Work:   100,
	}
	at := runConsumer(t, engine, vm, con)
	pureOverhead := 100 / XenGuestOverhead().Disk
	if secs(at) < pureOverhead || secs(at) > pureOverhead*1.15 {
		t.Errorf("virtual I/O job took %vs, want within [%v, %v]", secs(at), pureOverhead, pureOverhead*1.15)
	}
}

func TestCrossVMIOContentionSuperlinear(t *testing.T) {
	// Two VMs each running an I/O job must be slower than 2x the fair
	// share alone would predict, because of the Dom-0 inflation.
	mkJCT := func(nVM int) float64 {
		engine := sim.New()
		c := New(engine, DefaultConfig(), 1)
		pm := c.AddPM("pm-0")
		var last float64
		for i := 0; i < nVM; i++ {
			vm, err := c.AddVM("vm", pm, 1, 1024)
			if err != nil {
				panic(err)
			}
			con := &Consumer{
				Name:   "io",
				Demand: resource.NewVector(0.1, 0, c.Config().DiskMBps, 0),
				Work:   100,
			}
			con.OnComplete = func() { last = engine.Now().Seconds() }
			if err := vm.Start(con); err != nil {
				panic(err)
			}
		}
		engine.Run()
		return last
	}
	one := mkJCT(1)
	two := mkJCT(2)
	// Fair sharing alone would give 2x; Dom-0 stream inflation plus seek
	// thrashing push it well beyond, but the thrash floor bounds it.
	if two <= 2.1*one {
		t.Errorf("2-VM I/O JCT %v not superlinear vs 1-VM %v", two, one)
	}
	if two > 5*one {
		t.Errorf("2-VM JCT %v implausibly bad vs 1-VM %v", two, one)
	}
}

func TestMemoryOvercommitThrashing(t *testing.T) {
	engine, c := testCluster(t)
	pm := c.AddPM("pm-0")
	vm, err := c.AddVM("vm-0", pm, 1, 1024)
	if err != nil {
		t.Fatal(err)
	}
	// Two consumers each wanting 800 MB in a 1 GB VM: 1600/1024 = 1.5625
	// overcommit slows both beyond pure CPU sharing.
	var doneAt float64
	for i := 0; i < 2; i++ {
		con := &Consumer{
			Name:   "m",
			Demand: resource.NewVector(0.4, 800, 0, 0),
			Work:   50,
		}
		con.OnComplete = func() { doneAt = secs(engine.Now()) }
		if err := vm.Start(con); err != nil {
			t.Fatal(err)
		}
	}
	engine.Run()
	// Without thrashing both would finish at ~50/0.95 (CPU overhead only,
	// no CPU contention: 0.8 cores total demand on 1 vcpu).
	noThrash := 50 / XenGuestOverhead().CPU
	if doneAt <= noThrash*1.2 {
		t.Errorf("overcommitted JCT %v shows no thrashing (baseline %v)", doneAt, noThrash)
	}
}

func TestConsumerCapThrottles(t *testing.T) {
	engine, c := testCluster(t)
	pm := c.AddPM("pm-0")
	con := &Consumer{
		Name:   "capped",
		Demand: resource.NewVector(1, 0, 0, 0),
		Work:   100,
		Cap:    resource.NewVector(0.5, 0, 0, 0),
	}
	at := runConsumer(t, engine, pm, con)
	if math.Abs(secs(at)-200) > 0.5 {
		t.Errorf("capped consumer took %vs, want 200s", secs(at))
	}
}

func TestSetCapMidFlight(t *testing.T) {
	engine, c := testCluster(t)
	pm := c.AddPM("pm-0")
	con := &Consumer{Name: "x", Demand: resource.NewVector(1, 0, 0, 0), Work: 100}
	var doneAt float64
	con.OnComplete = func() { doneAt = secs(engine.Now()) }
	if err := pm.Start(con); err != nil {
		t.Fatal(err)
	}
	engine.After(50*time.Second, func() {
		con.SetCap(resource.NewVector(0.25, 0, 0, 0))
	})
	engine.Run()
	// 50s at speed 1, then 50 work left at speed 0.25 → +200s = 250s.
	if math.Abs(doneAt-250) > 0.5 {
		t.Errorf("completed at %vs, want 250s", doneAt)
	}
}

func TestVMPauseResume(t *testing.T) {
	engine, c := testCluster(t)
	pm := c.AddPM("pm-0")
	vm, err := c.AddVM("vm-0", pm, 1, 1024)
	if err != nil {
		t.Fatal(err)
	}
	con := &Consumer{Name: "x", Demand: resource.NewVector(0.5, 0, 0, 0), Work: 95}
	var doneAt float64
	con.OnComplete = func() { doneAt = secs(engine.Now()) }
	if err := vm.Start(con); err != nil {
		t.Fatal(err)
	}
	engine.After(10*time.Second, func() {
		if err := vm.Pause(); err != nil {
			t.Error(err)
		}
	})
	engine.After(60*time.Second, func() {
		if err := vm.Resume(); err != nil {
			t.Error(err)
		}
	})
	engine.Run()
	// Demand 0.5 core on a 1-vCPU VM is unsaturated, so the guest runs at
	// full speed: 95s of work plus 50s paused = 145s.
	if math.Abs(doneAt-145) > 0.5 {
		t.Errorf("completed at %vs, want 145s", doneAt)
	}
	if vm.State() != VMRunning {
		t.Errorf("state = %v, want running", vm.State())
	}
}

func TestKillInvokesCallbackAndFrees(t *testing.T) {
	engine, c := testCluster(t)
	pm := c.AddPM("pm-0")
	a := &Consumer{Name: "a", Demand: resource.NewVector(2, 0, 0, 0), Work: 100}
	b := &Consumer{Name: "b", Demand: resource.NewVector(2, 0, 0, 0), Work: 100}
	killed := false
	a.OnKilled = func() { killed = true }
	var bDone float64
	b.OnComplete = func() { bDone = secs(engine.Now()) }
	if err := pm.Start(a); err != nil {
		t.Fatal(err)
	}
	if err := pm.Start(b); err != nil {
		t.Fatal(err)
	}
	engine.After(50*time.Second, a.Kill)
	engine.Run()
	if !killed || !a.Killed() {
		t.Error("kill callback/state missing")
	}
	// b: 50s at half speed (25 done), then full speed for 75 → 125s.
	if math.Abs(bDone-125) > 0.5 {
		t.Errorf("b completed at %vs, want 125s", bDone)
	}
}

func TestDoubleStartFails(t *testing.T) {
	_, c := testCluster(t)
	pm := c.AddPM("pm-0")
	con := &Consumer{Name: "x", Demand: resource.NewVector(1, 0, 0, 0), Work: 10}
	if err := pm.Start(con); err != nil {
		t.Fatal(err)
	}
	if err := pm.Start(con); err == nil {
		t.Error("second Start succeeded")
	}
}

func TestAddVMMemoryExhaustion(t *testing.T) {
	_, c := testCluster(t) // 4096 MB hosts
	pm := c.AddPM("pm-0")
	if _, err := c.AddVM("vm-0", pm, 1, 3000); err != nil {
		t.Fatal(err)
	}
	if _, err := c.AddVM("vm-1", pm, 1, 2000); err == nil {
		t.Error("overcommitted AddVM succeeded")
	}
	if _, err := c.AddVM("vm-bad", pm, 0, 100); err == nil {
		t.Error("zero-vcpu AddVM succeeded")
	}
	if _, err := c.AddVM("vm-bad", nil, 1, 100); err == nil {
		t.Error("nil-host AddVM succeeded")
	}
}

func TestDom0ModeSmallOverhead(t *testing.T) {
	run := func(dom0 bool) float64 {
		engine := sim.New()
		c := New(engine, DefaultConfig(), 1)
		pm := c.AddPM("pm-0")
		pm.SetDom0Mode(dom0)
		// Saturate the disk so that the Dom-0 efficiency binds; overhead
		// only appears when the device has no headroom to absorb it.
		con := &Consumer{
			Name:   "x",
			Demand: resource.NewVector(1, 0, DefaultConfig().DiskMBps, 0),
			Work:   100,
		}
		var done float64
		con.OnComplete = func() { done = secs(engine.Now()) }
		if err := pm.Start(con); err != nil {
			panic(err)
		}
		engine.Run()
		return done
	}
	native := run(false)
	dom0 := run(true)
	overhead := dom0/native - 1
	if overhead <= 0 || overhead > 0.05 {
		t.Errorf("Dom-0 overhead = %.1f%%, want (0, 5%%]", overhead*100)
	}
}

func TestPowerModel(t *testing.T) {
	engine, c := testCluster(t)
	pm := c.AddPM("pm-0")
	cfg := c.Config()
	if got := pm.PowerW(); got != cfg.PowerIdleW {
		t.Errorf("idle power = %v, want %v", got, cfg.PowerIdleW)
	}
	con := &Consumer{Name: "x", Demand: resource.NewVector(2, 0, 0, 0), Work: 1000}
	if err := pm.Start(con); err != nil {
		t.Fatal(err)
	}
	engine.RunUntil(time.Second)
	if got := pm.PowerW(); math.Abs(got-cfg.PowerPeakW) > 1 {
		t.Errorf("busy power = %v, want ~%v", got, cfg.PowerPeakW)
	}
	if got := c.TotalPowerW(); math.Abs(got-pm.PowerW()) > 1e-9 {
		t.Errorf("TotalPowerW = %v, want %v", got, pm.PowerW())
	}
}

func TestPowerOff(t *testing.T) {
	_, c := testCluster(t)
	pm := c.AddPM("pm-0")
	con := &Consumer{Name: "x", Demand: resource.NewVector(1, 0, 0, 0), Work: 10}
	if err := pm.Start(con); err != nil {
		t.Fatal(err)
	}
	if err := pm.PowerOff(); err == nil {
		t.Error("PowerOff succeeded with a running consumer")
	}
	con.Stop()
	if err := pm.PowerOff(); err != nil {
		t.Errorf("PowerOff: %v", err)
	}
	if pm.PowerW() != 0 {
		t.Errorf("powered-off PM draws %v W", pm.PowerW())
	}
	if err := pm.Start(con); err == nil {
		t.Error("Start succeeded on powered-off PM")
	}
	if c.PoweredOnPMs() != 0 {
		t.Errorf("PoweredOnPMs = %d, want 0", c.PoweredOnPMs())
	}
	pm.PowerOn()
	if c.PoweredOnPMs() != 1 {
		t.Errorf("PoweredOnPMs = %d, want 1", c.PoweredOnPMs())
	}
}

func TestUtilizationReporting(t *testing.T) {
	engine, c := testCluster(t)
	pm := c.AddPM("pm-0")
	con := &Consumer{Name: "x", Demand: resource.NewVector(1, 1024, 45, 0), Work: 1000}
	if err := pm.Start(con); err != nil {
		t.Fatal(err)
	}
	engine.RunUntil(time.Second)
	u := pm.Utilization()
	if math.Abs(u.Get(resource.CPU)-0.5) > 0.01 {
		t.Errorf("cpu util = %v, want 0.5", u.Get(resource.CPU))
	}
	if math.Abs(u.Get(resource.DiskIO)-0.5) > 0.01 {
		t.Errorf("disk util = %v, want 0.5", u.Get(resource.DiskIO))
	}
	if got := c.MeanUtilization(resource.CPU); math.Abs(got-0.5) > 0.01 {
		t.Errorf("MeanUtilization = %v, want 0.5", got)
	}
}

func TestMigrationMovesVM(t *testing.T) {
	engine, c := testCluster(t)
	src := c.AddPM("pm-src")
	dst := c.AddPM("pm-dst")
	vm, err := c.AddVM("vm-0", src, 1, 1024)
	if err != nil {
		t.Fatal(err)
	}
	con := &Consumer{Name: "x", Demand: resource.NewVector(0.5, 256, 0, 0), Work: 500}
	var conDone float64
	con.OnComplete = func() { conDone = secs(engine.Now()) }
	if err := vm.Start(con); err != nil {
		t.Fatal(err)
	}
	var stats MigrationStats
	gotStats := false
	engine.After(10*time.Second, func() {
		if err := c.Migrate(vm, dst, func(s MigrationStats) {
			stats = s
			gotStats = true
		}); err != nil {
			t.Error(err)
		}
	})
	engine.Run()
	if !gotStats {
		t.Fatal("migration never completed")
	}
	if vm.Machine() != dst {
		t.Errorf("VM on %s, want %s", vm.Machine().Name(), dst.Name())
	}
	if stats.Downtime <= 0 {
		t.Error("downtime should be positive")
	}
	if stats.TotalTime < stats.Downtime {
		t.Error("total time less than downtime")
	}
	if stats.TransferredMB < vm.MemoryMB() {
		t.Errorf("transferred %v MB, want >= guest memory %v", stats.TransferredMB, vm.MemoryMB())
	}
	if conDone == 0 {
		t.Error("consumer never finished after migration")
	}
	if len(src.VMs()) != 0 || len(dst.VMs()) != 1 {
		t.Errorf("VM lists wrong: src=%d dst=%d", len(src.VMs()), len(dst.VMs()))
	}
}

func TestMigrationBusyVMTakesLonger(t *testing.T) {
	migTime := func(busy bool) time.Duration {
		engine := sim.New()
		c := New(engine, DefaultConfig(), 1)
		src := c.AddPM("s")
		dst := c.AddPM("d")
		vm, err := c.AddVM("vm", src, 1, 1024)
		if err != nil {
			panic(err)
		}
		if busy {
			con := &Consumer{Name: "w", Demand: resource.NewVector(1, 700, 20, 0), Work: 10_000}
			if err := vm.Start(con); err != nil {
				panic(err)
			}
		}
		var total time.Duration
		if err := c.Migrate(vm, dst, func(s MigrationStats) { total = s.TotalTime }); err != nil {
			panic(err)
		}
		engine.RunUntil(2 * time.Hour)
		return total
	}
	idle := migTime(false)
	busy := migTime(true)
	if idle <= 0 || busy <= 0 {
		t.Fatalf("migrations did not finish: idle=%v busy=%v", idle, busy)
	}
	if busy <= idle {
		t.Errorf("busy migration (%v) not longer than idle (%v)", busy, idle)
	}
}

func TestMigrationValidation(t *testing.T) {
	_, c := testCluster(t)
	src := c.AddPM("s")
	dst := c.AddPM("d")
	vm, err := c.AddVM("vm", src, 1, 1024)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Migrate(vm, src, nil); err == nil {
		t.Error("migration to same host succeeded")
	}
	if err := c.Migrate(nil, dst, nil); err == nil {
		t.Error("nil VM migration succeeded")
	}
	full := c.AddPM("full")
	if _, err := c.AddVM("big", full, 1, 4000); err != nil {
		t.Fatal(err)
	}
	if err := c.Migrate(vm, full, nil); err == nil {
		t.Error("migration to memory-exhausted host succeeded")
	}
	if err := dst.PowerOff(); err != nil {
		t.Fatal(err)
	}
	if err := c.Migrate(vm, dst, nil); err == nil {
		t.Error("migration to powered-off host succeeded")
	}
}

func TestSpreadVMs(t *testing.T) {
	_, c := testCluster(t)
	pms := c.AddPMs("pm", 4)
	vms, err := c.SpreadVMs("vm", 8, pms, 1, 1024)
	if err != nil {
		t.Fatal(err)
	}
	if len(vms) != 8 {
		t.Fatalf("got %d VMs, want 8", len(vms))
	}
	for _, pm := range pms {
		if got := len(pm.VMs()); got != 2 {
			t.Errorf("%s hosts %d VMs, want 2", pm.Name(), got)
		}
	}
	if _, err := c.SpreadVMs("vm", 2, nil, 1, 64); err == nil {
		t.Error("SpreadVMs with no hosts succeeded")
	}
}

func TestOpenEndedConsumerNeverCompletes(t *testing.T) {
	engine, c := testCluster(t)
	pm := c.AddPM("pm-0")
	svc := &Consumer{
		Name:   "svc",
		Demand: resource.NewVector(0.5, 512, 0, 0),
		Work:   OpenEnded,
		OnComplete: func() {
			t.Error("open-ended consumer completed")
		},
	}
	if err := pm.Start(svc); err != nil {
		t.Fatal(err)
	}
	engine.RunUntil(time.Hour)
	if !svc.Running() {
		t.Error("open-ended consumer stopped")
	}
	if svc.Remaining() != OpenEnded {
		t.Errorf("Remaining = %v, want OpenEnded", svc.Remaining())
	}
	svc.Stop()
	if svc.Running() {
		t.Error("Stop did not detach")
	}
}

func TestVMWeightSharing(t *testing.T) {
	engine, c := testCluster(t)
	pm := c.AddPM("pm-0")
	vm1, err := c.AddVM("vm-1", pm, 2, 1024)
	if err != nil {
		t.Fatal(err)
	}
	vm2, err := c.AddVM("vm-2", pm, 2, 1024)
	if err != nil {
		t.Fatal(err)
	}
	vm2.SetWeight(6) // 3x vm1's weight of 2
	mk := func() *Consumer {
		return &Consumer{Name: "x", Demand: resource.NewVector(2, 0, 0, 0), Work: 100}
	}
	a, b := mk(), mk()
	if err := vm1.Start(a); err != nil {
		t.Fatal(err)
	}
	if err := vm2.Start(b); err != nil {
		t.Fatal(err)
	}
	engine.RunUntil(time.Second)
	// 2 cores split 1:3 → 0.5 vs 1.5 raw.
	ra := a.Alloc().Get(resource.CPU)
	rb := b.Alloc().Get(resource.CPU)
	if math.Abs(rb/ra-3) > 0.05 {
		t.Errorf("alloc ratio = %v, want 3 (a=%v b=%v)", rb/ra, ra, rb)
	}
}

func TestVMCapLimitsIO(t *testing.T) {
	engine, c := testCluster(t)
	pm := c.AddPM("pm-0")
	vm, err := c.AddVM("vm-0", pm, 1, 1024)
	if err != nil {
		t.Fatal(err)
	}
	vm.SetCap(resource.NewVector(0, 0, 10, 0))
	con := &Consumer{Name: "io", Demand: resource.NewVector(0.1, 0, 50, 0), Work: 100}
	var done float64
	con.OnComplete = func() { done = secs(engine.Now()) }
	if err := vm.Start(con); err != nil {
		t.Fatal(err)
	}
	engine.Run()
	// Useful disk rate capped at 10*0.84 = 8.4 MB/s against a 50 MB/s
	// demand → speed 0.168 → ~595s.
	want := 100 / (10 * XenGuestOverhead().Disk / 50)
	if math.Abs(done-want) > 5 {
		t.Errorf("capped VM I/O JCT = %v, want ~%v", done, want)
	}
}

func TestClusterMetricsInstrumentation(t *testing.T) {
	engine, c := testCluster(t)
	tr := trace.New(engine)
	reg := trace.NewRegistry()
	c.SetTrace(tr, reg)

	src := c.AddPM("pm-src")
	dst := c.AddPM("pm-dst")
	spare := c.AddPM("pm-spare")
	vm, err := c.AddVM("vm-0", src, 1, 1024)
	if err != nil {
		t.Fatal(err)
	}
	done := false
	engine.After(10*time.Second, func() {
		if err := c.Migrate(vm, dst, func(MigrationStats) { done = true }); err != nil {
			t.Error(err)
		}
	})
	engine.Run()
	if !done {
		t.Fatal("migration never completed")
	}
	if err := spare.PowerOff(); err != nil {
		t.Fatal(err)
	}
	spare.PowerOn()

	if got := reg.Counter("cluster.migrations.completed").Value(); got != 1 {
		t.Errorf("migrations counter = %v, want 1", got)
	}
	h := reg.Histogram("cluster.migration.downtime_sec")
	if h.Count() != 1 {
		t.Fatalf("downtime histogram count = %d, want 1", h.Count())
	}
	if h.Max() <= 0 {
		t.Errorf("downtime histogram max = %v, want > 0", h.Max())
	}
	if got := reg.Counter("cluster.pm.power_transitions").Value(); got != 2 {
		t.Errorf("power transitions = %v, want 2 (off + on)", got)
	}
	if tr.Len() == 0 {
		t.Error("tracer recorded no events")
	}
}
