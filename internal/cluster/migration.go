package cluster

import (
	"fmt"
	"time"

	"repro/internal/resource"
	"repro/internal/sim"
	"repro/internal/trace"
)

// MigrationStats reports the outcome of a live VM migration.
type MigrationStats struct {
	// VM is the migrated VM's name.
	VM string
	// From and To are the source and destination PMs.
	From, To string
	// TotalTime is the wall time from start to the VM running on the
	// destination.
	TotalTime time.Duration
	// Downtime is the stop-and-copy blackout at the end of pre-copy.
	Downtime time.Duration
	// TransferredMB is the total data moved, including re-sent dirty
	// pages.
	TransferredMB float64
}

// migration tracks one in-flight live migration so that a machine
// failure mid-transfer can be unwound instead of dangling.
type migration struct {
	vm       *VM
	src, dst *PM
	stream   *Consumer  // pre-copy transfer riding on the source
	attachEv *sim.Event // pending stop-and-copy attach on the destination
	span     trace.Span
	done     func(MigrationStats)
	retries  int
	// inBlackout is true once pre-copy finished and the VM is detached
	// from the source, frozen for the final stop-and-copy.
	inBlackout bool
}

// Migrate live-migrates a VM to a destination PM using a pre-copy model:
// iterative rounds re-send pages dirtied during the previous round, until
// the residual set is small enough for a brief stop-and-copy. The transfer
// occupies network bandwidth on both PMs for its duration (so migrations
// of busy Hadoop VMs contend with shuffle traffic exactly as the paper's
// Figure 10 observes), and the VM freezes for the computed downtime before
// resuming on the destination. The callback, if non-nil, receives the
// stats when the VM is running again.
//
// If the source fails mid-migration the VM dies with it; if the
// destination fails, the VM keeps running on the source and the
// migration retries with exponential backoff (see Config's
// MigrationRetryBackoff and MigrationMaxRetries).
func (c *Cluster) Migrate(vm *VM, dst *PM, done func(MigrationStats)) error {
	return c.migrate(vm, dst, done, 0)
}

func (c *Cluster) migrate(vm *VM, dst *PM, done func(MigrationStats), retries int) error {
	if vm == nil || dst == nil {
		return fmt.Errorf("cluster: Migrate: nil vm or destination")
	}
	src := vm.host
	if src == nil {
		return fmt.Errorf("cluster: Migrate(%s): VM destroyed", vm.name)
	}
	if src == dst {
		return fmt.Errorf("cluster: Migrate(%s): already on %s", vm.name, dst.name)
	}
	if dst.off {
		return fmt.Errorf("cluster: Migrate(%s): destination %s is powered off", vm.name, dst.name)
	}
	if !c.Reachable(src, dst) {
		return fmt.Errorf("cluster: Migrate(%s): destination %s unreachable (network partition)", vm.name, dst.name)
	}
	if vm.state == VMMigrating {
		return fmt.Errorf("cluster: Migrate(%s): already migrating", vm.name)
	}
	var committed float64
	for _, other := range dst.vms {
		committed += other.memMB
	}
	if committed+vm.memMB > dst.capacity.Get(resource.Memory) {
		return fmt.Errorf("cluster: Migrate(%s): destination %s memory exhausted", vm.name, dst.name)
	}

	cfg := c.cfg
	activity := vm.activityLevel()
	dirtyMBps := cfg.MigrationDirtyFactor * activity

	// Pre-copy rounds at nominal bandwidth. The actual elapsed time
	// stretches under network contention because the transfer runs as a
	// normal consumer.
	bw := cfg.NetMBps * 0.8 // migration stream won't saturate the NIC
	residual := vm.memMB
	transferred := 0.0
	rounds := 0
	for residual > cfg.MigrationStopCopyMB && rounds < 30 {
		transferred += residual
		roundTime := residual / bw
		residual = dirtyMBps * roundTime
		rounds++
		if dirtyMBps >= bw {
			// Dirtying faster than copying: pre-copy cannot converge;
			// stop after this round.
			break
		}
	}
	transferred += residual
	// Stop-and-copy blackout plus a fixed suspend/resume cost, with
	// deterministic seeded jitter reflecting the paper's observation that
	// downtime varies widely for loaded Hadoop VMs.
	jitter := 1 + (c.rng.Float64()-0.5)*0.6*minf(activity*2, 1)
	downtimeSec := (residual/bw + 0.08 + 0.25*activity) * jitter

	vmName, srcName, dstName := vm.name, src.name, dst.name
	startAt := c.engine.Now()

	var span trace.Span
	if c.tracer != nil {
		span = c.tracer.Begin(vmName, "migration", "migrate",
			trace.S("from", srcName),
			trace.S("to", dstName),
			trace.F("rounds", float64(rounds)),
			trace.F("dirty_mbps", dirtyMBps))
	}

	src.settle()
	vm.state = VMMigrating
	src.update()

	m := &migration{vm: vm, src: src, dst: dst, span: span, done: done, retries: retries}
	stream := &Consumer{
		Name:   fmt.Sprintf("migrate:%s", vmName),
		Demand: resource.NewVector(0.05, 0, 0, bw),
		Work:   transferred / bw,
	}
	m.stream = stream
	stream.OnComplete = func() {
		// Pre-copy finished: detach from source, blackout, attach to
		// destination.
		src.settle()
		src.vms = removeVM(src.vms, vm)
		src.update()
		m.inBlackout = true
		if c.tracer != nil {
			c.tracer.Instant(vmName, "migration", "stop-and-copy",
				trace.F("downtime_sec", downtimeSec),
				trace.F("residual_mb", residual))
		}
		m.attachEv = c.engine.AfterSeconds(downtimeSec, func() {
			// The firing event is recycled by the engine; drop the handle
			// so nothing can Cancel it after the fact.
			m.attachEv = nil
			c.migrations = removeMigration(c.migrations, m)
			dst.settle()
			vm.host = dst
			for _, cons := range vm.consumers {
				cons.host = dst
			}
			dst.vms = append(dst.vms, vm)
			vm.state = VMRunning
			dst.update()
			if c.inv != nil {
				c.inv.MigrationCommitted(vm, src, dst)
			}
			span.End(trace.F("transferred_mb", transferred))
			c.mMigrations.Inc()
			c.mMigrationDowntime.Observe(downtimeSec)
			c.ts.Add("cluster.migrations", "", c.engine.Now(), 1)
			c.auditLog.Add("cluster", "migrate-done", vmName, "running on "+dstName,
				fmt.Sprintf("moved %.0f MB in %.1fs, %.2fs downtime",
					transferred, (c.engine.Now()-startAt).Seconds(), downtimeSec))
			if done != nil {
				done(MigrationStats{
					VM:            vmName,
					From:          srcName,
					To:            dstName,
					TotalTime:     c.engine.Now() - startAt,
					Downtime:      sim.DurationFromSeconds(downtimeSec),
					TransferredMB: transferred,
				})
			}
		})
	}
	if err := src.Start(stream); err != nil {
		vm.state = VMRunning
		src.update()
		span.End(trace.S("error", err.Error()))
		return fmt.Errorf("cluster: Migrate(%s): %w", vmName, err)
	}
	c.migrations = append(c.migrations, m)
	c.auditLog.Add("cluster", "migrate-start", vmName, "pre-copy to "+dstName,
		fmt.Sprintf("from %s: %d pre-copy round(s), %.0f MB to move, ~%.2fs stop-and-copy blackout",
			srcName, rounds, transferred, downtimeSec))
	return nil
}

// migrationOf returns the in-flight migration of vm, if any.
func (c *Cluster) migrationOf(vm *VM) *migration {
	for _, m := range c.migrations {
		if m.vm == vm {
			return m
		}
	}
	return nil
}

// detachMigration removes a migration from the registry and silences its
// pending machinery (transfer stream, stop-and-copy attach event) without
// deciding the VM's fate — the caller does that.
func (c *Cluster) detachMigration(m *migration) {
	c.migrations = removeMigration(c.migrations, m)
	if m.attachEv != nil {
		c.engine.Cancel(m.attachEv)
		m.attachEv = nil
	}
	if m.stream != nil && m.stream.Running() {
		m.stream.OnComplete = nil
		m.stream.Stop()
	}
}

// abortMigrationsFor unwinds every in-flight migration touching a
// failing machine. PM.Fail calls it before marking the machine off.
func (c *Cluster) abortMigrationsFor(pm *PM) {
	pending := make([]*migration, len(c.migrations))
	copy(pending, c.migrations)
	for _, m := range pending {
		if m.src != pm && m.dst != pm {
			continue
		}
		c.detachMigration(m)
		c.mMigrationsAborted.Inc()
		if m.src == pm {
			// The source crashed: the destination discards the pages it
			// received and the VM dies with the source.
			m.span.End(trace.S("outcome", "aborted"), trace.S("cause", "source-failed"))
			c.auditLog.Add("cluster", "migrate-abort", m.vm.name, "VM lost",
				fmt.Sprintf("source %s failed mid-transfer; the VM dies with it", pm.name))
			if m.inBlackout {
				// Already detached from the source for stop-and-copy, so
				// the failure sweep will not see it; destroy it here.
				c.destroyVM(m.vm)
			}
			// During pre-copy the VM is still in src.vms and the Fail
			// sweep destroys it with the rest.
			continue
		}
		// The destination crashed: the VM keeps running (or resumes, if
		// it was frozen for stop-and-copy) on the source, and the
		// migration retries after a backoff.
		m.span.End(trace.S("outcome", "aborted"), trace.S("cause", "destination-failed"))
		c.auditLog.Add("cluster", "migrate-abort", m.vm.name, "stay on "+m.src.name,
			fmt.Sprintf("destination %s failed mid-transfer; retry with backoff", pm.name))
		m.src.settle()
		if m.inBlackout {
			m.src.vms = append(m.src.vms, m.vm)
		}
		m.vm.state = VMRunning
		m.src.update()
		c.scheduleMigrationRetry(m.vm, m.dst, m.done, m.retries)
	}
}

// scheduleMigrationRetry re-attempts an aborted migration after an
// exponential backoff, giving up once MigrationMaxRetries is exhausted.
func (c *Cluster) scheduleMigrationRetry(vm *VM, dst *PM, done func(MigrationStats), prevRetries int) {
	if prevRetries >= c.cfg.MigrationMaxRetries {
		if c.tracer != nil {
			c.tracer.Instant(vm.name, "migration", "migration-abandoned",
				trace.S("to", dst.name),
				trace.F("retries", float64(prevRetries)))
		}
		c.auditLog.Add("cluster", "migrate-abandon", vm.name, "give up",
			fmt.Sprintf("%d retries toward %s exhausted", prevRetries, dst.name))
		return
	}
	attempt := prevRetries + 1
	backoff := c.cfg.MigrationRetryBackoff << uint(prevRetries)
	c.mMigrationRetries.Inc()
	c.auditLog.Add("cluster", "migrate-retry", vm.name,
		fmt.Sprintf("retry toward %s in %v", dst.name, backoff),
		fmt.Sprintf("attempt %d of %d, exponential backoff", attempt, c.cfg.MigrationMaxRetries))
	if c.tracer != nil {
		c.tracer.Instant(vm.name, "migration", "migration-retry-scheduled",
			trace.S("to", dst.name),
			trace.F("attempt", float64(attempt)),
			trace.F("backoff_sec", backoff.Seconds()))
	}
	c.engine.After(backoff, func() {
		if vm.host == nil || vm.host == dst || vm.state != VMRunning {
			return // the VM died, landed, or is otherwise occupied
		}
		if dst.off || !c.Reachable(vm.host, dst) {
			// Destination still down or partitioned away: keep backing
			// off until retries run out.
			c.scheduleMigrationRetry(vm, dst, done, attempt)
			return
		}
		if err := c.migrate(vm, dst, done, attempt); err != nil && c.tracer != nil {
			c.tracer.Instant(vm.name, "migration", "migration-abandoned",
				trace.S("to", dst.name),
				trace.S("error", err.Error()))
		}
	})
}

func removeMigration(list []*migration, m *migration) []*migration {
	for i, x := range list {
		if x == m {
			return append(list[:i], list[i+1:]...)
		}
	}
	return list
}

func removeVM(list []*VM, vm *VM) []*VM {
	for i, x := range list {
		if x == vm {
			return append(list[:i], list[i+1:]...)
		}
	}
	return list
}

func minf(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}
