package cluster

import (
	"fmt"
	"time"

	"repro/internal/resource"
	"repro/internal/sim"
	"repro/internal/trace"
)

// MigrationStats reports the outcome of a live VM migration.
type MigrationStats struct {
	// VM is the migrated VM's name.
	VM string
	// From and To are the source and destination PMs.
	From, To string
	// TotalTime is the wall time from start to the VM running on the
	// destination.
	TotalTime time.Duration
	// Downtime is the stop-and-copy blackout at the end of pre-copy.
	Downtime time.Duration
	// TransferredMB is the total data moved, including re-sent dirty
	// pages.
	TransferredMB float64
}

// Migrate live-migrates a VM to a destination PM using a pre-copy model:
// iterative rounds re-send pages dirtied during the previous round, until
// the residual set is small enough for a brief stop-and-copy. The transfer
// occupies network bandwidth on both PMs for its duration (so migrations
// of busy Hadoop VMs contend with shuffle traffic exactly as the paper's
// Figure 10 observes), and the VM freezes for the computed downtime before
// resuming on the destination. The callback, if non-nil, receives the
// stats when the VM is running again.
func (c *Cluster) Migrate(vm *VM, dst *PM, done func(MigrationStats)) error {
	if vm == nil || dst == nil {
		return fmt.Errorf("cluster: Migrate: nil vm or destination")
	}
	src := vm.host
	if src == dst {
		return fmt.Errorf("cluster: Migrate(%s): already on %s", vm.name, dst.name)
	}
	if dst.off {
		return fmt.Errorf("cluster: Migrate(%s): destination %s is powered off", vm.name, dst.name)
	}
	if vm.state == VMMigrating {
		return fmt.Errorf("cluster: Migrate(%s): already migrating", vm.name)
	}
	var committed float64
	for _, other := range dst.vms {
		committed += other.memMB
	}
	if committed+vm.memMB > dst.capacity.Get(resource.Memory) {
		return fmt.Errorf("cluster: Migrate(%s): destination %s memory exhausted", vm.name, dst.name)
	}

	cfg := c.cfg
	activity := vm.activityLevel()
	dirtyMBps := cfg.MigrationDirtyFactor * activity

	// Pre-copy rounds at nominal bandwidth. The actual elapsed time
	// stretches under network contention because the transfer runs as a
	// normal consumer.
	bw := cfg.NetMBps * 0.8 // migration stream won't saturate the NIC
	residual := vm.memMB
	transferred := 0.0
	rounds := 0
	for residual > cfg.MigrationStopCopyMB && rounds < 30 {
		transferred += residual
		roundTime := residual / bw
		residual = dirtyMBps * roundTime
		rounds++
		if dirtyMBps >= bw {
			// Dirtying faster than copying: pre-copy cannot converge;
			// stop after this round.
			break
		}
	}
	transferred += residual
	// Stop-and-copy blackout plus a fixed suspend/resume cost, with
	// deterministic seeded jitter reflecting the paper's observation that
	// downtime varies widely for loaded Hadoop VMs.
	jitter := 1 + (c.rng.Float64()-0.5)*0.6*minf(activity*2, 1)
	downtimeSec := (residual/bw + 0.08 + 0.25*activity) * jitter

	vmName, srcName, dstName := vm.name, src.name, dst.name
	startAt := c.engine.Now()

	var span trace.Span
	if c.tracer != nil {
		span = c.tracer.Begin(vmName, "migration", "migrate",
			trace.S("from", srcName),
			trace.S("to", dstName),
			trace.F("rounds", float64(rounds)),
			trace.F("dirty_mbps", dirtyMBps))
	}

	src.settle()
	vm.state = VMMigrating
	src.update()

	stream := &Consumer{
		Name:   fmt.Sprintf("migrate:%s", vmName),
		Demand: resource.NewVector(0.05, 0, 0, bw),
		Work:   transferred / bw,
	}
	stream.OnComplete = func() {
		// Pre-copy finished: detach from source, blackout, attach to
		// destination.
		src.settle()
		src.vms = removeVM(src.vms, vm)
		src.update()
		if c.tracer != nil {
			c.tracer.Instant(vmName, "migration", "stop-and-copy",
				trace.F("downtime_sec", downtimeSec),
				trace.F("residual_mb", residual))
		}
		c.engine.AfterSeconds(downtimeSec, func() {
			dst.settle()
			vm.host = dst
			for _, cons := range vm.consumers {
				cons.host = dst
			}
			dst.vms = append(dst.vms, vm)
			vm.state = VMRunning
			dst.update()
			span.End(trace.F("transferred_mb", transferred))
			c.mMigrations.Inc()
			c.mMigrationDowntime.Observe(downtimeSec)
			if done != nil {
				done(MigrationStats{
					VM:            vmName,
					From:          srcName,
					To:            dstName,
					TotalTime:     c.engine.Now() - startAt,
					Downtime:      sim.DurationFromSeconds(downtimeSec),
					TransferredMB: transferred,
				})
			}
		})
	}
	if err := src.Start(stream); err != nil {
		vm.state = VMRunning
		src.update()
		span.End(trace.S("error", err.Error()))
		return fmt.Errorf("cluster: Migrate(%s): %w", vmName, err)
	}
	return nil
}

func removeVM(list []*VM, vm *VM) []*VM {
	for i, x := range list {
		if x == vm {
			return append(list[:i], list[i+1:]...)
		}
	}
	return list
}

func minf(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}
