package cluster

import (
	"fmt"
	"math"
	"time"

	"repro/internal/resource"
	"repro/internal/trace"
)

// Node is anywhere a Consumer can run: a PM (native or Dom-0 execution)
// or a VM.
type Node interface {
	// Name identifies the node.
	Name() string
	// IsVirtual reports whether the node is a VM.
	IsVirtual() bool
	// Machine returns the physical machine backing the node.
	Machine() *PM
	// Start attaches a consumer to the node and begins executing it.
	Start(c *Consumer) error
	// UsefulCapacity is the node's full-speed capacity in useful units
	// (after virtualization overhead), assuming no contention.
	UsefulCapacity() resource.Vector
	// Consumers returns the consumers currently attached.
	Consumers() []*Consumer
}

var (
	_ Node = (*PM)(nil)
	_ Node = (*VM)(nil)
)

// PM is a physical machine. Consumers started directly on a PM run
// natively (or in Dom-0 if a Dom-0 overhead profile is installed); VMs
// hosted by the PM contend with them under the two-level fair-share
// kernel.
type PM struct {
	name           string
	cluster        *Cluster
	capacity       resource.Vector
	nativeOverhead OverheadProfile
	vms            []*VM
	native         []*Consumer
	off            bool
	rack           string
	powerDomain    string

	rawUsage   resource.Vector // current total raw allocation, for accounting
	lastSettle time.Duration
	slowdown   float64 // injected straggler factor; <= 1 means full speed

	watchers []func() // notified after every update(); see Watch

	offSpan trace.Span // open while the PM is powered off
}

// Name returns the PM's name.
func (pm *PM) Name() string { return pm.name }

// IsVirtual reports false: a PM is bare metal.
func (pm *PM) IsVirtual() bool { return false }

// Machine returns the PM itself.
func (pm *PM) Machine() *PM { return pm }

// Capacity returns the raw hardware capacity.
func (pm *PM) Capacity() resource.Vector { return pm.capacity }

// UsefulCapacity returns capacity scaled by the native overhead profile
// (identity for bare metal, slightly less for Dom-0 mode).
func (pm *PM) UsefulCapacity() resource.Vector {
	v := pm.capacity
	v = v.Set(resource.CPU, v.Get(resource.CPU)*pm.nativeOverhead.CPU)
	v = v.Set(resource.DiskIO, v.Get(resource.DiskIO)*pm.nativeOverhead.Disk)
	v = v.Set(resource.NetIO, v.Get(resource.NetIO)*pm.nativeOverhead.Net)
	return v
}

// SetDom0Mode switches direct execution on this PM between bare metal
// (false) and Xen privileged-domain mode (true), which carries the small
// Dom-0 overhead the paper measures in Figure 2(c).
func (pm *PM) SetDom0Mode(enabled bool) {
	pm.settle()
	if enabled {
		pm.nativeOverhead = Dom0Overhead()
	} else {
		pm.nativeOverhead = NoOverhead()
	}
	pm.update()
}

// VMs returns the VMs currently hosted on this PM.
func (pm *PM) VMs() []*VM {
	out := make([]*VM, len(pm.vms))
	copy(out, pm.vms)
	return out
}

// Consumers returns the native consumers attached directly to the PM.
func (pm *PM) Consumers() []*Consumer {
	out := make([]*Consumer, len(pm.native))
	copy(out, pm.native)
	return out
}

// Start begins executing a consumer natively on the PM.
func (pm *PM) Start(c *Consumer) error {
	if c == nil {
		return fmt.Errorf("cluster: %s: Start(nil)", pm.name)
	}
	if c.state == consumerRunning {
		return fmt.Errorf("cluster: %s: consumer %q already running on %s", pm.name, c.Name, c.node.Name())
	}
	if pm.off {
		return fmt.Errorf("cluster: %s: powered off", pm.name)
	}
	pm.settle()
	c.state = consumerRunning
	c.node = pm
	c.host = pm
	c.vm = nil
	c.remaining = c.Work
	c.lastSettle = pm.cluster.engine.Now()
	pm.native = append(pm.native, c)
	pm.update()
	return nil
}

// PowerOff turns the PM off. It fails if any consumer or VM is still
// present, because powering off busy hardware is an operator error the
// scheduler must never make.
func (pm *PM) PowerOff() error {
	if len(pm.native) > 0 || len(pm.vms) > 0 {
		return fmt.Errorf("cluster: %s: cannot power off with %d consumers and %d VMs",
			pm.name, len(pm.native), len(pm.vms))
	}
	pm.off = true
	pm.cluster.mPowerTransitions.Inc()
	pm.cluster.ts.Add("cluster.pm.power_transitions", "", pm.cluster.engine.Now(), 1)
	if tr := pm.cluster.tracer; tr != nil {
		tr.Instant(pm.name, "power", "power-off")
		pm.offSpan = tr.Begin(pm.name, "power", "powered-off")
	}
	return nil
}

// PowerOn turns the PM back on.
func (pm *PM) PowerOn() {
	if pm.off {
		pm.cluster.mPowerTransitions.Inc()
		pm.cluster.ts.Add("cluster.pm.power_transitions", "", pm.cluster.engine.Now(), 1)
		if tr := pm.cluster.tracer; tr != nil {
			tr.Instant(pm.name, "power", "power-on")
		}
		pm.offSpan.End()
		pm.offSpan = trace.Span{}
	}
	pm.off = false
}

// Off reports whether the PM is powered off.
func (pm *PM) Off() bool { return pm.off }

// SetSlowdown installs a degradation factor on the machine: every
// consumer — native and inside every hosted VM — progresses factor
// times slower than its fair-share allocation would allow. The fault
// injector uses it to model stragglers (failing disks, background
// scrubs, noisy neighbours outside the model) that slow a node without
// killing it. A factor of 1 or less restores full speed.
func (pm *PM) SetSlowdown(factor float64) {
	if factor < 1 {
		factor = 1
	}
	if factor == pm.Slowdown() {
		return
	}
	pm.settle()
	pm.slowdown = factor
	pm.update()
	if tr := pm.cluster.tracer; tr != nil {
		tr.Instant(pm.name, "fault", "slowdown", trace.F("factor", factor))
	}
}

// Slowdown returns the installed degradation factor (1 = full speed).
func (pm *PM) Slowdown() float64 {
	if pm.slowdown < 1 {
		return 1
	}
	return pm.slowdown
}

// Utilization returns the PM's current raw usage divided by capacity,
// per resource dimension, each in [0, 1].
func (pm *PM) Utilization() resource.Vector {
	u := pm.rawUsage.Div(pm.capacity)
	one := resource.NewVector(1, 1, 1, 1)
	return u.Min(one)
}

// PowerW returns the instantaneous power draw under the linear model
// P(u_cpu) = idle + (peak-idle) * u_cpu; 0 when powered off.
func (pm *PM) PowerW() float64 {
	if pm.off {
		return 0
	}
	cfg := pm.cluster.cfg
	return cfg.PowerIdleW + (cfg.PowerPeakW-cfg.PowerIdleW)*pm.Utilization().Get(resource.CPU)
}

// allConsumers iterates native consumers and those of every hosted VM.
func (pm *PM) allConsumers(fn func(c *Consumer)) {
	for _, c := range pm.native {
		fn(c)
	}
	for _, vm := range pm.vms {
		for _, c := range vm.consumers {
			fn(c)
		}
	}
}

// settle integrates every consumer's progress at the current speeds up to
// the present instant. It must run before any state change that affects
// allocations.
func (pm *PM) settle() {
	now := pm.cluster.engine.Now()
	pm.allConsumers(func(c *Consumer) {
		if c.Work < 0 {
			c.lastSettle = now
			return
		}
		dt := (now - c.lastSettle).Seconds()
		if dt > 0 && c.speed > 0 {
			c.remaining -= dt * c.speed
			if c.remaining < 0 {
				c.remaining = 0
			}
		}
		c.lastSettle = now
	})
	pm.lastSettle = now
}

// Watch registers a callback invoked after every re-solve of this PM's
// allocation (consumer attach/detach, demand/cap/weight change, VM
// arrival/departure, power or slowdown transitions, failure). Schedulers
// use it to invalidate cached per-machine state instead of rescanning the
// fleet. Callbacks must not mutate cluster state; they run synchronously
// on the simulation goroutine, so ordering is deterministic.
func (pm *PM) Watch(fn func()) {
	pm.watchers = append(pm.watchers, fn)
}

// update re-solves the two-level fair-share allocation and reschedules
// completion events. Callers must settle first (update settles again
// defensively; settling twice at the same instant is a no-op).
func (pm *PM) update() {
	pm.settle()
	pm.resolve()
	pm.reschedule()
	for _, fn := range pm.watchers {
		fn()
	}
}

// resolve computes allocations and speeds for every consumer on the PM.
func (pm *PM) resolve() {
	cfg := pm.cluster.cfg

	// Count VMs actively demanding disk and network I/O: the Dom-0
	// backend bottleneck penalizes concurrent virtual I/O streams.
	kDisk, kNet := 0, 0
	for _, vm := range pm.vms {
		if vm.state != VMRunning {
			continue
		}
		var disk, net float64
		for _, c := range vm.consumers {
			disk += c.Demand.Get(resource.DiskIO)
			net += c.Demand.Get(resource.NetIO)
		}
		if disk > 0 {
			kDisk++
		}
		if net > 0 {
			kNet++
		}
	}
	diskInflate := 1 + cfg.IOContentionPerVM*float64(max(kDisk-1, 0))
	netInflate := 1 + cfg.IOContentionPerVM*float64(max(kNet-1, 0))

	// Top level: one group per native consumer plus one per VM.
	type group struct {
		members    []*Consumer
		vm         *VM // nil for native
		overhead   OverheadProfile
		inflate    resource.Vector
		weight     float64
		cap        resource.Vector
		memCap     float64 // memory available to members
		rawDemands []resource.Vector
	}

	hostMem := pm.capacity.Get(resource.Memory)
	var vmReserved float64
	for _, vm := range pm.vms {
		vmReserved += vm.memMB
	}
	nativeMem := hostMem - vmReserved
	if nativeMem < 0 {
		nativeMem = 0
	}

	groups := make([]*group, 0, len(pm.native)+len(pm.vms))
	for _, c := range pm.native {
		groups = append(groups, &group{
			members:  []*Consumer{c},
			overhead: pm.nativeOverhead,
			inflate:  resource.NewVector(1, 1, 1, 1),
			weight:   effWeight(c.Weight),
			memCap:   nativeMem,
		})
	}
	for _, vm := range pm.vms {
		if vm.state != VMRunning || len(vm.consumers) == 0 {
			// Paused/migrating VMs and empty VMs get no CPU/IO share;
			// their consumers' speeds are zeroed below.
			continue
		}
		g := &group{
			members:  vm.consumers,
			vm:       vm,
			overhead: vm.overhead,
			inflate:  resource.NewVector(1, 1, diskInflate, netInflate),
			weight:   vm.weight,
			memCap:   vm.memMB,
		}
		g.cap = resource.NewVector(float64(vm.vcpus), vm.memMB, 0, 0)
		if vm.capIO.Get(resource.DiskIO) > 0 {
			g.cap = g.cap.Set(resource.DiskIO, vm.capIO.Get(resource.DiskIO))
		}
		if vm.capIO.Get(resource.NetIO) > 0 {
			g.cap = g.cap.Set(resource.NetIO, vm.capIO.Get(resource.NetIO))
		}
		if vm.capIO.Get(resource.CPU) > 0 && vm.capIO.Get(resource.CPU) < g.cap.Get(resource.CPU) {
			g.cap = g.cap.Set(resource.CPU, vm.capIO.Get(resource.CPU))
		}
		groups = append(groups, g)
	}

	// Raw (host-level) demand of each member: useful demand divided by
	// efficiency, inflated by cross-VM I/O contention.
	groupDemand := make([]resource.Vector, len(groups))
	groupWeights := make([]float64, len(groups))
	groupCaps := make([]resource.Vector, len(groups))
	for gi, g := range groups {
		g.rawDemands = make([]resource.Vector, len(g.members))
		var total resource.Vector
		for mi, c := range g.members {
			raw := rawDemand(c.Demand, g.overhead, g.inflate)
			g.rawDemands[mi] = raw
			total = total.Add(raw)
		}
		// A VM reserves its full memory on the host regardless of usage.
		if g.vm != nil {
			total = total.Set(resource.Memory, g.vm.memMB)
		}
		groupDemand[gi] = total
		groupWeights[gi] = g.weight
		groupCaps[gi] = g.cap
	}
	// Seek thrashing: an oversubscribed disk loses sequential bandwidth
	// to head movement between competing streams.
	solveCap := pm.capacity
	diskCap := solveCap.Get(resource.DiskIO)
	var totalDisk float64
	for _, gd := range groupDemand {
		totalDisk += gd.Get(resource.DiskIO)
	}
	if diskCap > 0 && totalDisk > diskCap {
		// Quadratic ramp: slight oversubscription costs almost nothing
		// (the elevator scheduler merges nearly-sequential streams),
		// heavy oversubscription converges to the thrash floor.
		over := totalDisk/diskCap - 1
		divisor := 1 + cfg.DiskSeekOverloadFactor*over*over
		if divisor > cfg.DiskSeekMaxPenalty {
			divisor = cfg.DiskSeekMaxPenalty
		}
		solveCap = solveCap.Set(resource.DiskIO, diskCap/divisor)
	}
	groupAlloc := resource.ShareVector(solveCap, groupDemand, groupWeights, groupCaps)

	// Second level: members share their group's allocation.
	var totalRaw resource.Vector
	for gi, g := range groups {
		weights := make([]float64, len(g.members))
		caps := make([]resource.Vector, len(g.members))
		for mi, c := range g.members {
			weights[mi] = effWeight(c.Weight)
			caps[mi] = rawDemand(c.Cap, g.overhead, g.inflate)
		}
		memberAlloc := resource.ShareVector(groupAlloc[gi], g.rawDemands, weights, caps)

		// Memory pressure inside the container: overcommit causes
		// thrashing that slows every memory-using member. A consumer
		// with a memory cap below its demand pages on its own (self
		// penalty) but relieves the container.
		var memDemand float64
		selfPenalty := make([]float64, len(g.members))
		for mi, c := range g.members {
			use := c.Demand.Get(resource.Memory)
			selfPenalty[mi] = 1
			if capMem := c.Cap.Get(resource.Memory); capMem > 0 && capMem < use {
				selfPenalty[mi] = math.Pow(capMem/use, cfg.MemPenaltyExp)
				use = capMem
			}
			memDemand += use
		}
		memPenalty := 1.0
		if g.memCap > 0 && memDemand > g.memCap {
			memPenalty = math.Pow(g.memCap/memDemand, cfg.MemPenaltyExp)
		}

		for mi, c := range g.members {
			raw := memberAlloc[mi]
			totalRaw = totalRaw.Add(raw)
			useful := usefulAlloc(raw, g.overhead, g.inflate)
			c.alloc = useful
			c.speed = progressSpeed(c.Demand, useful)
			if c.Demand.Get(resource.Memory) > 0 {
				c.speed *= memPenalty * selfPenalty[mi]
			}
		}
	}

	// An injected straggler factor slows every consumer on the machine
	// below what its allocation would sustain.
	if pm.slowdown > 1 {
		pm.allConsumers(func(c *Consumer) {
			c.speed /= pm.slowdown
		})
	}

	// Consumers on paused or migrating VMs are frozen.
	for _, vm := range pm.vms {
		if vm.state == VMRunning {
			continue
		}
		for _, c := range vm.consumers {
			c.alloc = resource.Vector{}
			c.speed = 0
		}
		totalRaw = totalRaw.Set(resource.Memory,
			totalRaw.Get(resource.Memory)+vm.memMB)
	}
	pm.rawUsage = totalRaw
}

// reschedule cancels and re-creates the completion event of every finite
// consumer, using the freshly computed speeds.
func (pm *PM) reschedule() {
	engine := pm.cluster.engine
	pm.allConsumers(func(c *Consumer) {
		if c.completion != nil {
			engine.Cancel(c.completion)
			c.completion = nil
		}
		if c.Work < 0 || c.state != consumerRunning {
			return
		}
		if c.speed <= 0 {
			return // stalled: a future update will reschedule
		}
		c.completion = engine.AfterSeconds(c.remaining/c.speed, c.complete)
	})
}

// rawDemand converts a useful demand vector into host-level raw demand
// under an overhead profile and I/O contention inflation. Zero components
// stay zero, so Cap vectors pass through correctly.
func rawDemand(d resource.Vector, o OverheadProfile, inflate resource.Vector) resource.Vector {
	d = d.Set(resource.CPU, d.Get(resource.CPU)/o.CPU*inflate.Get(resource.CPU))
	d = d.Set(resource.DiskIO, d.Get(resource.DiskIO)/o.Disk*inflate.Get(resource.DiskIO))
	d = d.Set(resource.NetIO, d.Get(resource.NetIO)/o.Net*inflate.Get(resource.NetIO))
	return d
}

// usefulAlloc converts a raw host allocation back into useful units.
func usefulAlloc(a resource.Vector, o OverheadProfile, inflate resource.Vector) resource.Vector {
	a = a.Set(resource.CPU, a.Get(resource.CPU)*o.CPU/inflate.Get(resource.CPU))
	a = a.Set(resource.DiskIO, a.Get(resource.DiskIO)*o.Disk/inflate.Get(resource.DiskIO))
	a = a.Set(resource.NetIO, a.Get(resource.NetIO)*o.Net/inflate.Get(resource.NetIO))
	return a
}

// progressSpeed is the Leontief rate: the minimum allocation/demand ratio
// over the rate dimensions the consumer actually uses.
func progressSpeed(demand, alloc resource.Vector) float64 {
	speed := 1.0
	for _, k := range [...]resource.Kind{resource.CPU, resource.DiskIO, resource.NetIO} {
		d := demand.Get(k)
		if d <= 0 {
			continue
		}
		r := alloc.Get(k) / d
		if r < speed {
			speed = r
		}
	}
	if speed < 0 {
		return 0
	}
	return speed
}

func effWeight(w float64) float64 {
	if w <= 0 {
		return 1
	}
	return w
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
