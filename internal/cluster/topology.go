package cluster

import (
	"fmt"
	"sort"

	"repro/internal/trace"
)

// Topology support: every PM can carry a rack label and a power-domain
// label, and the cluster can suffer heal-able network partitions that
// isolate a set of machines from the rest. Racks model top-of-rack
// switches and shared chassis (a rack crash kills its members together),
// power domains model PDUs/circuits that cross-cut racks, and network
// partitions split heartbeats and DFS traffic without stopping the
// machines — exactly the correlated-failure regimes that independent
// single-machine chaos never exercises.
//
// Everything here is optional: a cluster with no topology assigned has
// every PM in the anonymous rack "" and no partitions, and all the
// topology-aware consumers (DFS placement, JobTracker health, migration
// retry) behave exactly as before.

// Rack returns the PM's rack label ("" when no topology was assigned).
func (pm *PM) Rack() string { return pm.rack }

// PowerDomain returns the PM's power-domain label ("" when no topology
// was assigned).
func (pm *PM) PowerDomain() string { return pm.powerDomain }

// SetRack assigns the PM to a named rack.
func (pm *PM) SetRack(name string) { pm.rack = name }

// SetPowerDomain assigns the PM to a named power domain.
func (pm *PM) SetPowerDomain(name string) { pm.powerDomain = name }

// StripeTopology assigns the given PMs to racks and power domains:
// racks take contiguous runs (machines in one rack are physically
// adjacent, as a top-of-rack switch implies), while power domains
// stripe round-robin so they cross-cut racks (a PDU typically feeds one
// machine per chassis row). Either count may be zero to leave that
// dimension unassigned. Rack r gets PMs [r*n/racks, (r+1)*n/racks).
func StripeTopology(pms []*PM, racks, powerDomains int) {
	n := len(pms)
	if n == 0 {
		return
	}
	for i, pm := range pms {
		if racks > 0 {
			pm.rack = fmt.Sprintf("rack-%d", i*racks/n)
		}
		if powerDomains > 0 {
			pm.powerDomain = fmt.Sprintf("pd-%d", i%powerDomains)
		}
	}
}

// Racks returns the distinct rack labels in use, sorted. The anonymous
// rack "" is excluded.
func (c *Cluster) Racks() []string {
	return c.distinctLabels(func(pm *PM) string { return pm.rack })
}

// PowerDomains returns the distinct power-domain labels in use, sorted.
func (c *Cluster) PowerDomains() []string {
	return c.distinctLabels(func(pm *PM) string { return pm.powerDomain })
}

func (c *Cluster) distinctLabels(get func(*PM) string) []string {
	seen := make(map[string]bool)
	var out []string
	for _, pm := range c.pms {
		if l := get(pm); l != "" && !seen[l] {
			seen[l] = true
			out = append(out, l)
		}
	}
	sort.Strings(out)
	return out
}

// PMsInRack returns the members of a rack in provisioning order.
func (c *Cluster) PMsInRack(name string) []*PM {
	var out []*PM
	for _, pm := range c.pms {
		if pm.rack == name && name != "" {
			out = append(out, pm)
		}
	}
	return out
}

// PMsInPowerDomain returns the members of a power domain in
// provisioning order.
func (c *Cluster) PMsInPowerDomain(name string) []*PM {
	var out []*PM
	for _, pm := range c.pms {
		if pm.powerDomain == name && name != "" {
			out = append(out, pm)
		}
	}
	return out
}

// Partition is a heal-able network split: the isolated machines keep
// running (the sim clock does not stop for them) but cannot exchange
// heartbeats, DFS traffic or migration streams with the rest of the
// cluster. The control plane (JobTracker, NameNode) is modeled as
// living on the majority side, so isolated machines look lost to it
// until Heal.
type Partition struct {
	cluster  *Cluster
	isolated map[*PM]bool
	healed   bool
}

// PartitionNetwork splits the network: the given machines become
// unreachable from everything outside the set (machines within the set
// still reach each other). In-flight migrations crossing the cut are
// aborted with destination-failure semantics: the VM stays on its
// source and the migration retries with backoff, which keeps backing
// off until the partition heals. Returns a handle whose Heal restores
// connectivity; partitions may overlap.
func (c *Cluster) PartitionNetwork(pms []*PM) *Partition {
	p := &Partition{cluster: c, isolated: make(map[*PM]bool, len(pms))}
	names := make([]string, 0, len(pms))
	for _, pm := range pms {
		if pm != nil {
			p.isolated[pm] = true
			names = append(names, pm.name)
		}
	}
	c.partitions = append(c.partitions, p)
	if c.tracer != nil {
		c.tracer.Instant("network", "fault", "partition",
			trace.S("isolated", fmt.Sprintf("%v", names)))
	}
	c.auditLog.Add("cluster", "net-partition", fmt.Sprintf("%v", names),
		"isolated", fmt.Sprintf("%d machine(s) cut off from the control plane", len(names)))
	// Unwind migrations whose stream now crosses the cut. The VM keeps
	// running on its source; the retry backs off until connectivity is
	// restored.
	pending := make([]*migration, len(c.migrations))
	copy(pending, c.migrations)
	for _, m := range pending {
		if c.Reachable(m.src, m.dst) {
			continue
		}
		c.detachMigration(m)
		c.mMigrationsAborted.Inc()
		m.span.End(trace.S("outcome", "aborted"), trace.S("cause", "network-partition"))
		c.auditLog.Add("cluster", "migrate-abort", m.vm.name, "stay on "+m.src.name,
			fmt.Sprintf("network partition cut the stream to %s; retry with backoff", m.dst.name))
		m.src.settle()
		if m.inBlackout {
			m.src.vms = append(m.src.vms, m.vm)
		}
		m.vm.state = VMRunning
		m.src.update()
		c.scheduleMigrationRetry(m.vm, m.dst, m.done, m.retries)
	}
	return p
}

// Heal removes the partition; machines on both sides see each other
// again. Healing twice is a no-op.
func (p *Partition) Heal() {
	if p == nil || p.healed {
		return
	}
	p.healed = true
	c := p.cluster
	for i, x := range c.partitions {
		if x == p {
			c.partitions = append(c.partitions[:i], c.partitions[i+1:]...)
			break
		}
	}
	names := make([]string, 0, len(p.isolated))
	for pm := range p.isolated {
		names = append(names, pm.name)
	}
	sort.Strings(names)
	if c.tracer != nil {
		c.tracer.Instant("network", "fault", "partition-heal",
			trace.S("isolated", fmt.Sprintf("%v", names)))
	}
	c.auditLog.Add("cluster", "net-heal", fmt.Sprintf("%v", names),
		"reconnected", "network partition healed")
}

// Healed reports whether the partition has been healed.
func (p *Partition) Healed() bool { return p == nil || p.healed }

// Reachable reports whether two machines can exchange traffic under the
// currently active partitions: for every partition, both must sit on
// the same side of the cut. Nil machines are never reachable.
func (c *Cluster) Reachable(a, b *PM) bool {
	if a == nil || b == nil {
		return false
	}
	for _, p := range c.partitions {
		if p.isolated[a] != p.isolated[b] {
			return false
		}
	}
	return true
}

// Isolated reports whether the machine is cut off from the control
// plane (inside the isolated set of any active partition).
func (c *Cluster) Isolated(pm *PM) bool {
	if pm == nil {
		return false
	}
	for _, p := range c.partitions {
		if p.isolated[pm] {
			return true
		}
	}
	return false
}

// Partitioned reports whether any network partition is currently
// active.
func (c *Cluster) Partitioned() bool { return len(c.partitions) > 0 }

// Isolated reports whether this machine is cut off from the control
// plane by an active network partition.
func (pm *PM) Isolated() bool { return pm.cluster.Isolated(pm) }
