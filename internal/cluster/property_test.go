package cluster

import (
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/resource"
	"repro/internal/sim"
)

// Property: for any random population of consumers across native
// execution and VMs, the kernel never allocates more than the machine's
// raw capacity in any dimension, never gives a consumer more than its
// demand, and every finite consumer eventually completes.
func TestKernelAllocationInvariants(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		engine := sim.New()
		c := New(engine, DefaultConfig(), seed)
		pm := c.AddPM("pm")
		var vms []*VM
		for i := 0; i < rng.Intn(3); i++ {
			vm, err := c.AddVM("vm", pm, 1, 1024)
			if err != nil {
				return false
			}
			vms = append(vms, vm)
		}
		var consumers []*Consumer
		n := rng.Intn(6) + 1
		for i := 0; i < n; i++ {
			con := &Consumer{
				Name: "c",
				Demand: resource.NewVector(
					rng.Float64()*2,
					rng.Float64()*600,
					rng.Float64()*120,
					rng.Float64()*150,
				),
				Work:   rng.Float64()*50 + 1,
				Weight: rng.Float64()*3 + 0.1,
			}
			var node Node = pm
			if len(vms) > 0 && rng.Intn(2) == 0 {
				node = vms[rng.Intn(len(vms))]
			}
			if err := node.Start(con); err != nil {
				return false
			}
			consumers = append(consumers, con)
		}

		// Mid-run checks at a few instants.
		for _, at := range []time.Duration{time.Second, 5 * time.Second, 20 * time.Second} {
			engine.RunUntil(at)
			var total resource.Vector
			cap := pm.Capacity()
			for _, con := range consumers {
				if !con.Running() {
					continue
				}
				alloc := con.Alloc()
				for _, k := range resource.Kinds() {
					if alloc.Get(k) > con.Demand.Get(k)+1e-6 {
						return false // got more than asked
					}
				}
				total = total.Add(alloc)
			}
			// Useful allocations are below raw capacity by construction
			// (efficiency < 1), so raw capacity bounds them too.
			for _, k := range resource.Kinds() {
				if total.Get(k) > cap.Get(k)+1e-6 {
					return false
				}
			}
		}
		engine.RunUntil(100 * time.Hour)
		for _, con := range consumers {
			if !con.Done() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Property: work is conserved — a consumer's completion time is never
// earlier than its full-speed duration, regardless of contention.
func TestKernelNoSuperluminalProgress(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		engine := sim.New()
		c := New(engine, DefaultConfig(), seed)
		pm := c.AddPM("pm")
		type tracked struct {
			work   float64
			doneAt time.Duration
		}
		results := make([]*tracked, 0, 4)
		n := rng.Intn(4) + 1
		for i := 0; i < n; i++ {
			tr := &tracked{work: rng.Float64()*30 + 0.5}
			con := &Consumer{
				Name:   "c",
				Demand: resource.NewVector(rng.Float64()+0.1, 0, rng.Float64()*50, 0),
				Work:   tr.work,
			}
			con.OnComplete = func() { tr.doneAt = engine.Now() }
			if err := pm.Start(con); err != nil {
				return false
			}
			results = append(results, tr)
		}
		engine.Run()
		for _, tr := range results {
			if tr.doneAt.Seconds() < tr.work-1e-6 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}
