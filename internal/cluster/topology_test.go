package cluster

import (
	"testing"
	"time"

	"repro/internal/sim"
)

func TestStripeTopology(t *testing.T) {
	_, c := testCluster(t)
	pms := c.AddPMs("pm", 6)
	StripeTopology(pms, 3, 2)
	if got := c.Racks(); len(got) != 3 {
		t.Fatalf("racks = %v, want 3", got)
	}
	if got := c.PowerDomains(); len(got) != 2 {
		t.Fatalf("power domains = %v, want 2", got)
	}
	// Racks are contiguous runs of two; power domains stripe round-robin.
	if len(c.PMsInRack("rack-0")) != 2 || len(c.PMsInRack("rack-2")) != 2 {
		t.Errorf("rack membership uneven: %v / %v", c.PMsInRack("rack-0"), c.PMsInRack("rack-2"))
	}
	if len(c.PMsInPowerDomain("pd-0")) != 3 {
		t.Errorf("pd-0 members = %d, want 3", len(c.PMsInPowerDomain("pd-0")))
	}
	if pms[0].Rack() != "rack-0" || pms[5].Rack() != "rack-2" {
		t.Errorf("contiguous rack runs broken: %s, %s", pms[0].Rack(), pms[5].Rack())
	}
	if pms[0].PowerDomain() != "pd-0" || pms[1].PowerDomain() != "pd-1" {
		t.Errorf("round-robin power domains broken: %s, %s", pms[0].PowerDomain(), pms[1].PowerDomain())
	}
	// A rack and a power domain always cross-cut here: no rack is wholly
	// inside one power domain.
	for _, rack := range c.Racks() {
		domains := map[string]bool{}
		for _, pm := range c.PMsInRack(rack) {
			domains[pm.PowerDomain()] = true
		}
		if len(domains) < 2 {
			t.Errorf("rack %s entirely inside one power domain", rack)
		}
	}
}

func TestPartitionReachability(t *testing.T) {
	_, c := testCluster(t)
	pms := c.AddPMs("pm", 4)
	if !c.Reachable(pms[0], pms[3]) {
		t.Fatal("unpartitioned machines must reach each other")
	}
	p := c.PartitionNetwork(pms[:2])
	if !c.Partitioned() {
		t.Fatal("Partitioned() false with an active partition")
	}
	if c.Reachable(pms[0], pms[3]) {
		t.Error("cross-cut traffic must be blocked")
	}
	if !c.Reachable(pms[0], pms[1]) {
		t.Error("machines on the same side must still reach each other")
	}
	if !pms[0].Isolated() || pms[3].Isolated() {
		t.Error("isolation must cover exactly the cut set")
	}
	if c.Reachable(nil, pms[0]) {
		t.Error("nil machines are never reachable")
	}
	p.Heal()
	if c.Partitioned() || !c.Reachable(pms[0], pms[3]) {
		t.Error("heal must restore connectivity")
	}
	p.Heal() // idempotent
	if c.Partitioned() {
		t.Error("double heal re-partitioned the cluster")
	}
}

// A destination that fails during the stop-and-copy blackout must not
// strand the VM: it resumes on the source and the migration retries
// once the destination rejoins.
func TestMigrationDestFailsMidCopyThenRejoins(t *testing.T) {
	engine, c := testCluster(t)
	src := c.AddPM("src")
	dst := c.AddPM("dst")
	vm, err := c.AddVM("vm", src, 1, 1024)
	if err != nil {
		t.Fatal(err)
	}
	finished := false
	if err := c.Migrate(vm, dst, func(MigrationStats) { finished = true }); err != nil {
		t.Fatal(err)
	}

	// Poll for the blackout window (pre-copy done, VM detached from the
	// source, stop-and-copy attach pending) and kill the destination
	// inside it.
	var failedAt time.Duration
	wasInBlackout := false
	var tick *sim.Ticker
	tick = sim.NewTicker(engine, 2*time.Millisecond, func(now time.Duration) {
		m := c.migrationOf(vm)
		if m == nil || !m.inBlackout {
			return
		}
		wasInBlackout = true
		failedAt = now
		tick.Stop()
		dst.Fail()
		// The destination comes back before the 30 s retry backoff ends.
		engine.After(10*time.Second, func() { dst.PowerOn() })
	})
	engine.RunUntil(10 * time.Minute)

	if !wasInBlackout {
		t.Fatal("never observed the stop-and-copy blackout; test setup broken")
	}
	if !finished {
		t.Fatal("migration never completed after the destination rejoined")
	}
	if vm.Machine() != dst {
		t.Fatalf("VM on %v, want %s after retry", vm.Machine(), dst.Name())
	}
	if vm.Machine().Failed() {
		t.Fatal("VM landed on a failed machine")
	}
	if failedAt <= 0 {
		t.Fatal("blackout fail time not recorded")
	}
}

// A destination cut off by a network partition mid-transfer behaves
// like a failed destination: the VM stays on the source and the retry
// backs off until the partition heals.
func TestMigrationAbortsAcrossPartition(t *testing.T) {
	engine, c := testCluster(t)
	src := c.AddPM("src")
	dst := c.AddPM("dst")
	vm, err := c.AddVM("vm", src, 1, 1024)
	if err != nil {
		t.Fatal(err)
	}
	finished := false
	if err := c.Migrate(vm, dst, func(MigrationStats) { finished = true }); err != nil {
		t.Fatal(err)
	}
	var p *Partition
	engine.After(2*time.Second, func() {
		p = c.PartitionNetwork([]*PM{dst})
		if vm.Machine() != src {
			t.Error("VM must stay on the source when the stream is cut")
		}
	})
	engine.After(40*time.Second, func() { p.Heal() })
	engine.RunUntil(10 * time.Minute)
	if !finished {
		t.Fatal("migration never completed after the partition healed")
	}
	if vm.Machine() != dst {
		t.Fatalf("VM on %v, want %s", vm.Machine(), dst.Name())
	}

	// And starting a migration straight into an active partition must be
	// refused up front.
	vm2, err := c.AddVM("vm2", src, 1, 512)
	if err != nil {
		t.Fatal(err)
	}
	p2 := c.PartitionNetwork([]*PM{dst})
	if err := c.Migrate(vm2, dst, nil); err == nil {
		t.Error("migration into an active partition must be rejected")
	}
	p2.Heal()
}
