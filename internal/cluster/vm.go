package cluster

import (
	"fmt"

	"repro/internal/resource"
	"repro/internal/trace"
)

// VMState is the lifecycle state of a virtual machine.
type VMState int

// VM lifecycle states.
const (
	VMRunning VMState = iota + 1
	VMPaused
	VMMigrating
	VMDestroyed
)

// String names the state.
func (s VMState) String() string {
	switch s {
	case VMRunning:
		return "running"
	case VMPaused:
		return "paused"
	case VMMigrating:
		return "migrating"
	case VMDestroyed:
		return "destroyed"
	default:
		return fmt.Sprintf("state(%d)", int(s))
	}
}

// VM is a virtual machine hosted on a PM. Consumers inside a VM pay the
// guest virtualization overhead and contend with collocated VMs through
// the host's two-level kernel.
type VM struct {
	name     string
	host     *PM
	vcpus    int
	memMB    float64
	state    VMState
	overhead OverheadProfile
	weight   float64
	capIO    resource.Vector // DRM-installed VM-level caps; zero = uncapped

	consumers []*Consumer

	pauseSpan trace.Span // open while the VM is paused
}

// Name returns the VM's name.
func (vm *VM) Name() string { return vm.name }

// IsVirtual reports true.
func (vm *VM) IsVirtual() bool { return true }

// Machine returns the current physical host.
func (vm *VM) Machine() *PM { return vm.host }

// State returns the lifecycle state.
func (vm *VM) State() VMState { return vm.state }

// VCPUs returns the virtual CPU count.
func (vm *VM) VCPUs() int { return vm.vcpus }

// MemoryMB returns the configured guest memory.
func (vm *VM) MemoryMB() float64 { return vm.memMB }

// UsefulCapacity is the VM's full-speed capacity in useful units under
// its overhead profile, assuming an otherwise idle host.
func (vm *VM) UsefulCapacity() resource.Vector {
	if vm.host == nil {
		return resource.Vector{} // destroyed: no capacity anywhere
	}
	host := vm.host.capacity
	cpu := float64(vm.vcpus)
	if hc := host.Get(resource.CPU); hc < cpu {
		cpu = hc
	}
	return resource.NewVector(
		cpu*vm.overhead.CPU,
		vm.memMB,
		host.Get(resource.DiskIO)*vm.overhead.Disk,
		host.Get(resource.NetIO)*vm.overhead.Net,
	)
}

// Consumers returns the consumers currently attached to the VM.
func (vm *VM) Consumers() []*Consumer {
	out := make([]*Consumer, len(vm.consumers))
	copy(out, vm.consumers)
	return out
}

// Start begins executing a consumer inside the VM. Starting work on a
// paused VM is allowed; it simply makes no progress until Resume.
func (vm *VM) Start(c *Consumer) error {
	if c == nil {
		return fmt.Errorf("cluster: %s: Start(nil)", vm.name)
	}
	if c.state == consumerRunning {
		return fmt.Errorf("cluster: %s: consumer %q already running on %s", vm.name, c.Name, c.node.Name())
	}
	if vm.state == VMMigrating {
		return fmt.Errorf("cluster: %s: cannot start work while migrating", vm.name)
	}
	if vm.host == nil {
		return fmt.Errorf("cluster: %s: VM destroyed (host failed)", vm.name)
	}
	pm := vm.host
	pm.settle()
	c.state = consumerRunning
	c.node = vm
	c.host = pm
	c.vm = vm
	c.remaining = c.Work
	c.lastSettle = pm.cluster.engine.Now()
	vm.consumers = append(vm.consumers, c)
	pm.update()
	return nil
}

// Pause freezes the VM: all of its consumers stop progressing and stop
// consuming CPU and I/O (the memory reservation remains). This is one of
// the IPS interference-mitigation actions.
func (vm *VM) Pause() error {
	if vm.host == nil {
		return fmt.Errorf("cluster: %s: VM destroyed", vm.name)
	}
	if vm.state == VMMigrating {
		return fmt.Errorf("cluster: %s: cannot pause while migrating", vm.name)
	}
	if vm.state == VMPaused {
		return nil
	}
	vm.host.settle()
	vm.state = VMPaused
	vm.host.update()
	cl := vm.host.cluster
	cl.mVMPauses.Inc()
	if cl.tracer != nil {
		vm.pauseSpan = cl.tracer.Begin(vm.name, "vm", "paused")
	}
	return nil
}

// Resume unfreezes a paused VM.
func (vm *VM) Resume() error {
	if vm.host == nil {
		return fmt.Errorf("cluster: %s: VM destroyed", vm.name)
	}
	if vm.state == VMMigrating {
		return fmt.Errorf("cluster: %s: cannot resume while migrating", vm.name)
	}
	if vm.state == VMRunning {
		return nil
	}
	vm.host.settle()
	vm.state = VMRunning
	vm.host.update()
	vm.pauseSpan.End()
	vm.pauseSpan = trace.Span{}
	return nil
}

// SetWeight changes the VM's host-level fair-share weight (defaults to
// its vCPU count).
func (vm *VM) SetWeight(w float64) {
	if vm.host == nil {
		return
	}
	vm.host.settle()
	if w <= 0 {
		w = float64(vm.vcpus)
	}
	vm.weight = w
	vm.host.update()
}

// SetCap installs VM-level CPU/disk/network caps (the DRM's coarse
// actuator, akin to Xen's credit scheduler cap plus blkio throttling).
// Zero components remove the corresponding cap.
func (vm *VM) SetCap(cap resource.Vector) {
	if vm.host == nil {
		return
	}
	vm.host.settle()
	vm.capIO = cap
	vm.host.update()
}

// Cap returns the currently installed VM-level cap.
func (vm *VM) Cap() resource.Vector { return vm.capIO }

// activityLevel estimates how busy the VM is, in [0, 1]; it drives the
// dirty-page rate during live migration.
func (vm *VM) activityLevel() float64 {
	if vm.state != VMRunning || len(vm.consumers) == 0 {
		return 0
	}
	level := 0.0
	for _, c := range vm.consumers {
		level += c.speed
	}
	if level > 1 {
		level = 1
	}
	return level
}
