package cluster

import (
	"repro/internal/trace"
)

// Fail crashes the physical machine: every native consumer and every
// consumer inside a hosted VM is killed (OnKilled callbacks fire, which
// is how MapReduce learns to re-execute the lost attempts), the VMs are
// destroyed, and the machine powers off. It models the abrupt server
// loss the paper's fault-tolerance arguments lean on.
//
// In-flight live migrations touching the machine are aborted first: a
// VM migrating away dies with its source (the destination discards the
// received pages), while a VM migrating in stays on its still-healthy
// source and the migration retries with backoff. Failing an
// already-off machine is a no-op.
func (pm *PM) Fail() error {
	if pm.off {
		// Already dark: crashing a dead machine changes nothing, and
		// re-counting the power transition or re-opening the
		// powered-off span would corrupt the accounting.
		return nil
	}
	pm.cluster.abortMigrationsFor(pm)
	pm.settle()

	// Collect first: Kill mutates the consumer lists.
	var victims []*Consumer
	victims = append(victims, pm.native...)
	for _, vm := range pm.vms {
		victims = append(victims, vm.consumers...)
	}
	vms := pm.vms
	pm.vms = nil
	pm.off = true
	pm.update()
	pm.cluster.mPowerTransitions.Inc()
	pm.cluster.mPMCrashes.Inc()
	pm.cluster.ts.Add("cluster.pm.power_transitions", "", pm.cluster.engine.Now(), 1)
	if tr := pm.cluster.tracer; tr != nil {
		tr.Instant(pm.name, "power", "failure",
			trace.F("killed_consumers", float64(len(victims))),
			trace.F("destroyed_vms", float64(len(vms))))
		pm.offSpan = tr.Begin(pm.name, "power", "powered-off", trace.S("cause", "failure"))
	}

	for _, c := range victims {
		// Consumers were attached to this PM; Kill routes through the
		// normal detach path and fires OnKilled.
		if c.state == consumerRunning {
			c.Kill()
		}
	}
	// Destroyed VMs are removed from the cluster inventory.
	for _, vm := range vms {
		pm.cluster.vms = removeVM(pm.cluster.vms, vm)
		vm.host = nil
		vm.state = VMDestroyed
		vm.pauseSpan.End()
		vm.pauseSpan = trace.Span{}
	}
	return nil
}

// Failed reports whether the machine is down (powered off with no way
// back other than PowerOn after repair).
func (pm *PM) Failed() bool { return pm.off }

// Fail crashes a single VM — a guest kernel panic or OOM kill rather
// than a whole-server loss. Its consumers are killed (OnKilled fires, so
// MapReduce re-executes the lost attempts) and the VM is destroyed; the
// host keeps running. Failing an already-destroyed VM is a no-op.
func (vm *VM) Fail() error {
	host := vm.host
	if host == nil {
		return nil
	}
	c := host.cluster
	if vm.state == VMMigrating {
		// The crash ends the migration: neither machine failed, but
		// there is nothing left to move.
		if m := c.migrationOf(vm); m != nil {
			c.detachMigration(m)
			m.span.End(trace.S("outcome", "aborted"), trace.S("cause", "vm-failed"))
			c.mMigrationsAborted.Inc()
		}
	}
	host.settle()
	killed := len(vm.consumers)
	host.vms = removeVM(host.vms, vm)
	host.update()
	c.mVMCrashes.Inc()
	if c.tracer != nil {
		c.tracer.Instant(vm.name, "vm", "crash",
			trace.S("host", host.name),
			trace.F("killed_consumers", float64(killed)))
	}
	c.destroyVM(vm)
	return nil
}

// destroyVM kills the VM's consumers and removes it from the cluster
// inventory. The caller has already detached it from its host's VM list.
func (c *Cluster) destroyVM(vm *VM) {
	victims := make([]*Consumer, len(vm.consumers))
	copy(victims, vm.consumers)
	c.vms = removeVM(c.vms, vm)
	vm.host = nil
	vm.state = VMDestroyed
	vm.pauseSpan.End()
	vm.pauseSpan = trace.Span{}
	for _, cons := range victims {
		if cons.state == consumerRunning {
			cons.Kill()
		}
	}
}
