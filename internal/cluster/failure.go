package cluster

import (
	"fmt"

	"repro/internal/trace"
)

// Fail crashes the physical machine: every native consumer and every
// consumer inside a hosted VM is killed (OnKilled callbacks fire, which
// is how MapReduce learns to re-execute the lost attempts), the VMs are
// destroyed, and the machine powers off. It models the abrupt server
// loss the paper's fault-tolerance arguments lean on.
//
// A machine with an in-flight migration cannot fail (the migration
// stream would dangle); callers retry after it completes.
func (pm *PM) Fail() error {
	for _, vm := range pm.vms {
		if vm.state == VMMigrating {
			return fmt.Errorf("cluster: %s: cannot fail during live migration of %s", pm.name, vm.name)
		}
	}
	pm.settle()

	// Collect first: Kill mutates the consumer lists.
	var victims []*Consumer
	victims = append(victims, pm.native...)
	for _, vm := range pm.vms {
		victims = append(victims, vm.consumers...)
	}
	vms := pm.vms
	pm.vms = nil
	pm.off = true
	pm.update()
	pm.cluster.mPowerTransitions.Inc()
	if tr := pm.cluster.tracer; tr != nil {
		tr.Instant(pm.name, "power", "failure",
			trace.F("killed_consumers", float64(len(victims))),
			trace.F("destroyed_vms", float64(len(vms))))
		pm.offSpan = tr.Begin(pm.name, "power", "powered-off", trace.S("cause", "failure"))
	}

	for _, c := range victims {
		// Consumers were attached to this PM; Kill routes through the
		// normal detach path and fires OnKilled.
		if c.state == consumerRunning {
			c.Kill()
		}
	}
	// Destroyed VMs are removed from the cluster inventory.
	for _, vm := range vms {
		pm.cluster.vms = removeVM(pm.cluster.vms, vm)
		vm.host = nil
	}
	return nil
}

// Failed reports whether the machine is down (powered off with no way
// back other than PowerOn after repair).
func (pm *PM) Failed() bool { return pm.off }
