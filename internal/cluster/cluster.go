// Package cluster simulates the hybrid data center of the HybridMR paper:
// physical machines (PMs) that can run work natively, in a Xen-style
// privileged domain (Dom-0), or host virtual machines (VMs) with
// virtualization overheads; live VM migration; and a linear
// utilization-to-power model.
//
// Execution is modeled as event-driven processor sharing. Work is
// expressed as Consumers: a consumer declares a full-speed demand vector
// (CPU cores, memory MB, disk MB/s, network MB/s) and an amount of work in
// full-speed seconds. Whenever the set of consumers on a PM changes, the
// PM re-solves a two-level weighted max-min fair allocation (VMs share the
// PM; tasks share their VM), each consumer's progress rate is the minimum
// ratio of allocation to demand across the rate dimensions (a Leontief
// machine model), and the next completion is scheduled on the shared
// discrete-event engine. The model reproduces the contention behaviours
// the paper measures: virtual I/O penalties that grow with VMs per PM,
// memory-overcommit thrashing, and exponential slowdown under cross-VM I/O
// contention.
package cluster

import (
	"fmt"
	"math/rand"
	"time"

	"repro/internal/audit"
	"repro/internal/resource"
	"repro/internal/sim"
	"repro/internal/timeseries"
	"repro/internal/trace"
)

// OverheadProfile gives the efficiency of each resource dimension under a
// virtualization layer, as fractions of native (1.0 = no overhead). The
// defaults follow the paper's Section II measurements and [Barham et al.,
// SOSP'03]: ~5% CPU overhead, ~15-20% I/O overhead.
type OverheadProfile struct {
	CPU  float64
	Disk float64
	Net  float64
}

// NoOverhead is the profile of bare-metal execution.
func NoOverhead() OverheadProfile { return OverheadProfile{CPU: 1, Disk: 1, Net: 1} }

// XenGuestOverhead is the default profile of a paravirtualized guest VM.
// Xen-3.4-era paravirtual networking in particular cost far more than
// block I/O at gigabit rates, which is why the paper finds cross-host VM
// communication so expensive.
func XenGuestOverhead() OverheadProfile {
	return OverheadProfile{CPU: 0.95, Disk: 0.87, Net: 0.62}
}

// Dom0Overhead is the profile of quasi-native execution in the privileged
// domain, which the paper measures at under 5% overhead on average.
func Dom0Overhead() OverheadProfile {
	return OverheadProfile{CPU: 0.99, Disk: 0.975, Net: 0.98}
}

func (p OverheadProfile) normalized() OverheadProfile {
	if p.CPU <= 0 || p.CPU > 1 {
		p.CPU = 1
	}
	if p.Disk <= 0 || p.Disk > 1 {
		p.Disk = 1
	}
	if p.Net <= 0 || p.Net > 1 {
		p.Net = 1
	}
	return p
}

// Config describes the hardware of every PM in a cluster and the
// virtualization cost model. The defaults mirror the paper's testbed:
// dual-core 2.4 GHz Opterons, 4 GB RAM, Ultra320 SCSI, 1 Gbps Ethernet.
type Config struct {
	// Cores is the number of physical cores per PM.
	Cores int
	// MemoryMB is physical RAM per PM.
	MemoryMB float64
	// DiskMBps is the sequential disk bandwidth per PM.
	DiskMBps float64
	// NetMBps is the NIC bandwidth per PM (1 Gbps ≈ 117 MB/s usable).
	NetMBps float64

	// PowerIdleW and PowerPeakW parameterize the linear power model
	// P(u) = idle + (peak-idle)*u_cpu.
	PowerIdleW float64
	PowerPeakW float64

	// GuestOverhead is applied to consumers inside VMs.
	GuestOverhead OverheadProfile
	// IOContentionPerVM is the extra inflation of virtual I/O demand per
	// additional VM concurrently performing I/O on the same PM. It models
	// the Dom-0 backend-driver bottleneck that makes the paper's virtual
	// HDFS numbers degrade super-linearly with VM count and data size.
	IOContentionPerVM float64
	// MemPenaltyExp shapes the thrashing slowdown under memory
	// overcommit: speed *= (capacity/demand)^MemPenaltyExp.
	MemPenaltyExp float64

	// DiskSeekOverloadFactor models seek thrashing on an oversubscribed
	// disk: when total demanded disk bandwidth exceeds capacity, the
	// effective capacity becomes C / (1 + k*(demand/C - 1)), capped by
	// DiskSeekMaxPenalty. This is what turns heavy cross-VM I/O
	// contention into the super-linear JCT blowup of Figure 6(c).
	DiskSeekOverloadFactor float64
	// DiskSeekMaxPenalty caps the seek-thrashing capacity divisor
	// (default 1.35: the elevator scheduler keeps oversubscribed
	// sequential streams at ~75% of peak bandwidth).
	DiskSeekMaxPenalty float64

	// MigrationDirtyFactor converts a VM's activity level into a memory
	// dirty rate (MB/s per unit of busy CPU+memory activity).
	MigrationDirtyFactor float64
	// MigrationStopCopyMB is the residual dirty set at which pre-copy
	// stops and the VM is suspended for the final copy.
	MigrationStopCopyMB float64

	// MigrationRetryBackoff is the initial delay before re-attempting a
	// migration whose destination failed mid-transfer; each further
	// retry doubles it.
	MigrationRetryBackoff time.Duration
	// MigrationMaxRetries bounds those re-attempts. Negative disables
	// retries entirely.
	MigrationMaxRetries int
}

// DefaultConfig returns the paper's testbed hardware.
func DefaultConfig() Config {
	return Config{
		Cores:                  2,
		MemoryMB:               4096,
		DiskMBps:               90,
		NetMBps:                117,
		PowerIdleW:             150,
		PowerPeakW:             250,
		GuestOverhead:          XenGuestOverhead(),
		IOContentionPerVM:      0.03,
		MemPenaltyExp:          2.2,
		DiskSeekOverloadFactor: 2.0,
		DiskSeekMaxPenalty:     1.35,
		MigrationDirtyFactor:   24,
		MigrationStopCopyMB:    32,
		MigrationRetryBackoff:  30 * time.Second,
		MigrationMaxRetries:    3,
	}
}

func (c Config) withDefaults() Config {
	d := DefaultConfig()
	if c.Cores <= 0 {
		c.Cores = d.Cores
	}
	if c.MemoryMB <= 0 {
		c.MemoryMB = d.MemoryMB
	}
	if c.DiskMBps <= 0 {
		c.DiskMBps = d.DiskMBps
	}
	if c.NetMBps <= 0 {
		c.NetMBps = d.NetMBps
	}
	if c.PowerIdleW <= 0 {
		c.PowerIdleW = d.PowerIdleW
	}
	if c.PowerPeakW <= 0 {
		c.PowerPeakW = d.PowerPeakW
	}
	c.GuestOverhead = c.GuestOverhead.normalized()
	if c.GuestOverhead == NoOverhead() {
		c.GuestOverhead = d.GuestOverhead
	}
	if c.IOContentionPerVM <= 0 {
		c.IOContentionPerVM = d.IOContentionPerVM
	}
	if c.MemPenaltyExp <= 0 {
		c.MemPenaltyExp = d.MemPenaltyExp
	}
	if c.MigrationDirtyFactor <= 0 {
		c.MigrationDirtyFactor = d.MigrationDirtyFactor
	}
	if c.DiskSeekOverloadFactor <= 0 {
		c.DiskSeekOverloadFactor = d.DiskSeekOverloadFactor
	}
	if c.DiskSeekMaxPenalty <= 1 {
		c.DiskSeekMaxPenalty = d.DiskSeekMaxPenalty
	}
	if c.MigrationStopCopyMB <= 0 {
		c.MigrationStopCopyMB = d.MigrationStopCopyMB
	}
	if c.MigrationRetryBackoff <= 0 {
		c.MigrationRetryBackoff = d.MigrationRetryBackoff
	}
	if c.MigrationMaxRetries == 0 {
		c.MigrationMaxRetries = d.MigrationMaxRetries
	} else if c.MigrationMaxRetries < 0 {
		c.MigrationMaxRetries = 0
	}
	return c
}

// Cluster is a collection of PMs and the VMs they host, sharing one
// simulation engine.
type Cluster struct {
	engine *sim.Engine
	cfg    Config
	rng    *rand.Rand
	pms    []*PM
	vms    []*VM

	// migrations tracks in-flight live migrations so machine failures
	// can unwind them.
	migrations []*migration

	// partitions are the currently active network splits (topology.go).
	partitions []*Partition

	tracer   *trace.Tracer
	auditLog *audit.Log
	inv      InvariantSink
	ts       *timeseries.Collector

	// Cached metric handles; nil (a no-op) until SetTrace installs a
	// registry.
	mMigrations        *trace.Counter
	mMigrationDowntime *trace.Histogram
	mPowerTransitions  *trace.Counter
	mVMPauses          *trace.Counter
	mMigrationsAborted *trace.Counter
	mMigrationRetries  *trace.Counter
	mVMCrashes         *trace.Counter
	mPMCrashes         *trace.Counter
}

// New creates an empty cluster. Zero-valued Config fields take the paper's
// testbed defaults.
func New(engine *sim.Engine, cfg Config, seed int64) *Cluster {
	return &Cluster{
		engine: engine,
		cfg:    cfg.withDefaults(),
		rng:    rand.New(rand.NewSource(seed)),
	}
}

// Engine returns the shared simulation engine.
func (c *Cluster) Engine() *sim.Engine { return c.engine }

// SetTrace installs a tracer and metrics registry. Either may be nil;
// instrumentation is then a no-op.
func (c *Cluster) SetTrace(tr *trace.Tracer, reg *trace.Registry) {
	c.tracer = tr
	c.mMigrations = reg.Counter("cluster.migrations.completed")
	c.mMigrationDowntime = reg.Histogram("cluster.migration.downtime_sec")
	c.mPowerTransitions = reg.Counter("cluster.pm.power_transitions")
	c.mVMPauses = reg.Counter("cluster.vm.pauses")
	c.mMigrationsAborted = reg.Counter("cluster.migrations.aborted")
	c.mMigrationRetries = reg.Counter("cluster.migrations.retried")
	c.mVMCrashes = reg.Counter("cluster.vm.crashes")
	c.mPMCrashes = reg.Counter("cluster.pm.crashes")
}

// SetAudit installs a decision log; migration lifecycle decisions
// (start, completion, abort, retry, abandonment) are recorded on it. A
// nil log keeps auditing off.
func (c *Cluster) SetAudit(l *audit.Log) { c.auditLog = l }

// SetTimeSeries attaches a windowed telemetry collector: migration
// completions and PM power transitions become windowed counter series,
// giving the SLO layer time-resolved churn data the end-of-run registry
// totals cannot provide. A nil collector keeps the series off.
func (c *Cluster) SetTimeSeries(ts *timeseries.Collector) { c.ts = ts }

// InvariantSink receives cluster-level safety events; the invariant
// checker implements it. All methods must tolerate being called from
// inside event callbacks.
type InvariantSink interface {
	// MigrationCommitted fires at the stop-and-copy commit point, when
	// the VM attaches to its destination.
	MigrationCommitted(vm *VM, from, to *PM)
}

// SetInvariants installs an invariant sink. A nil sink keeps checking
// off.
func (c *Cluster) SetInvariants(s InvariantSink) { c.inv = s }

// Config returns the effective (defaulted) configuration.
func (c *Cluster) Config() Config { return c.cfg }

// AddPM provisions a physical machine.
func (c *Cluster) AddPM(name string) *PM {
	pm := &PM{
		name:    name,
		cluster: c,
		capacity: resource.NewVector(
			float64(c.cfg.Cores), c.cfg.MemoryMB, c.cfg.DiskMBps, c.cfg.NetMBps),
		nativeOverhead: NoOverhead(),
	}
	c.pms = append(c.pms, pm)
	return pm
}

// AddPMs provisions n physical machines named prefix-0..n-1.
func (c *Cluster) AddPMs(prefix string, n int) []*PM {
	out := make([]*PM, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, c.AddPM(fmt.Sprintf("%s-%d", prefix, i)))
	}
	return out
}

// AddVM provisions a VM on host with the given vCPU count and memory.
func (c *Cluster) AddVM(name string, host *PM, vcpus int, memMB float64) (*VM, error) {
	if host == nil {
		return nil, fmt.Errorf("cluster: AddVM(%s): nil host", name)
	}
	if vcpus <= 0 {
		return nil, fmt.Errorf("cluster: AddVM(%s): vcpus must be positive", name)
	}
	if memMB <= 0 {
		return nil, fmt.Errorf("cluster: AddVM(%s): memory must be positive", name)
	}
	var committed float64
	for _, vm := range host.vms {
		committed += vm.memMB
	}
	if committed+memMB > host.capacity.Get(resource.Memory) {
		return nil, fmt.Errorf("cluster: AddVM(%s): host %s memory exhausted (%.0f+%.0f > %.0f MB)",
			name, host.name, committed, memMB, host.capacity.Get(resource.Memory))
	}
	vm := &VM{
		name:     name,
		host:     host,
		vcpus:    vcpus,
		memMB:    memMB,
		state:    VMRunning,
		overhead: c.cfg.GuestOverhead,
		weight:   float64(vcpus),
	}
	host.vms = append(host.vms, vm)
	c.vms = append(c.vms, vm)
	host.update()
	if c.tracer != nil {
		c.tracer.Instant(vm.name, "vm", "boot",
			trace.S("host", host.name),
			trace.F("vcpus", float64(vcpus)),
			trace.F("mem_mb", memMB))
	}
	return vm, nil
}

// SpreadVMs provisions total VMs named prefix-0..total-1 round-robin
// across hosts, each with the given shape. It is how the experiments build
// the paper's "k VMs per PM" layouts.
func (c *Cluster) SpreadVMs(prefix string, total int, hosts []*PM, vcpus int, memMB float64) ([]*VM, error) {
	if len(hosts) == 0 {
		return nil, fmt.Errorf("cluster: SpreadVMs: no hosts")
	}
	out := make([]*VM, 0, total)
	for i := 0; i < total; i++ {
		vm, err := c.AddVM(fmt.Sprintf("%s-%d", prefix, i), hosts[i%len(hosts)], vcpus, memMB)
		if err != nil {
			return nil, err
		}
		out = append(out, vm)
	}
	return out, nil
}

// PMs returns the physical machines in provisioning order.
func (c *Cluster) PMs() []*PM {
	out := make([]*PM, len(c.pms))
	copy(out, c.pms)
	return out
}

// VMs returns all VMs in provisioning order.
func (c *Cluster) VMs() []*VM {
	out := make([]*VM, len(c.vms))
	copy(out, c.vms)
	return out
}

// TotalPowerW sums the instantaneous power draw of all powered-on PMs.
func (c *Cluster) TotalPowerW() float64 {
	var w float64
	for _, pm := range c.pms {
		w += pm.PowerW()
	}
	return w
}

// PoweredOnPMs counts PMs that are not powered off.
func (c *Cluster) PoweredOnPMs() int {
	n := 0
	for _, pm := range c.pms {
		if !pm.off {
			n++
		}
	}
	return n
}

// MeanUtilization averages the given resource's utilization across
// powered-on PMs.
func (c *Cluster) MeanUtilization(kind resource.Kind) float64 {
	var sum float64
	var n int
	for _, pm := range c.pms {
		if pm.off {
			continue
		}
		sum += pm.Utilization().Get(kind)
		n++
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}
