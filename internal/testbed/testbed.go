// Package testbed assembles ready-to-run simulated clusters — native,
// virtual (k VMs per PM), Dom-0, split-architecture and hybrid — wired
// with a DFS and a MapReduce JobTracker. The HybridMR core and every
// experiment build their scenarios from these rigs, mirroring the paper's
// testbed of 24 physical nodes and 48 VMs.
package testbed

import (
	"fmt"
	"sync/atomic"
	"time"

	"repro/internal/audit"
	"repro/internal/cluster"
	"repro/internal/critpath"
	"repro/internal/dfs"
	"repro/internal/fault"
	"repro/internal/invariant"
	"repro/internal/mapred"
	"repro/internal/metrics"
	"repro/internal/perfstat"
	"repro/internal/policy"
	"repro/internal/sim"
	"repro/internal/timeseries"
	"repro/internal/trace"
)

// Options selects a rig shape. Zero values mean: native cluster, paper
// hardware, FIFO-free (Fair) scheduling off — i.e. FIFO.
type Options struct {
	// PMs is the number of physical machines (default 4).
	PMs int
	// VMsPerPM > 0 builds a virtual cluster with that many VMs on each
	// PM; 0 runs tasks natively on the PMs.
	VMsPerPM int
	// VMMemoryMB sizes each VM (default 1024, the paper's 1 GB guests).
	VMMemoryMB float64
	// VMCPUs is vCPUs per VM (default 1).
	VMCPUs int
	// Racks > 0 assigns the PMs to that many racks in contiguous runs
	// (cluster.StripeTopology), enabling rack-aware DFS placement and
	// the rack-level correlated faults (rack-crash, net-partition).
	// Zero leaves the cluster topology-free, exactly as before.
	Racks int
	// PowerDomains > 0 stripes the PMs round-robin across that many
	// power domains (PDUs that cross-cut racks), enabling power-crash
	// correlated faults.
	PowerDomains int
	// Dom0 runs "native" execution in the privileged domain, with its
	// small overhead (Figure 2(c)).
	Dom0 bool
	// Split deploys the split architecture of Figure 3: VMsPerPM
	// TaskTracker (compute) VMs per PM plus one DataNode (storage) VM
	// per PM that all of the PM's TaskTrackers read through. Compute
	// parallelism matches the combined layout; data stays put when
	// compute VMs move.
	Split bool
	// Seed fixes all randomized decisions.
	Seed int64
	// ClusterConfig overrides hardware parameters (zero fields default).
	ClusterConfig cluster.Config
	// MapredConfig overrides framework parameters (zero fields default).
	MapredConfig mapred.Config
	// Scheduler overrides the job scheduler (default mapred.Fair, as on
	// the paper's testbed).
	Scheduler mapred.Scheduler
	// Policies, when non-nil, supplies the Phase II half of a policy
	// set: its scheduler is used when Scheduler is nil, and its
	// speculation knobs fill the zero MapredConfig speculation fields.
	// (The Phase I/DRM/IPS halves are consumed by core.Config.Policies;
	// a plain rig has no System.)
	Policies *policy.Set
	// Tracer, when non-nil, records structured events from every layer of
	// the rig. Its clock is bound to the rig's engine.
	Tracer *trace.Tracer
	// Metrics, when non-nil, receives the rig's counters, gauges and
	// histograms.
	Metrics *trace.Registry
	// Audit, when non-nil, records every scheduling, migration and
	// fault-recovery decision the rig makes. Its clock is bound to the
	// rig's engine.
	Audit *audit.Log
	// Faults, when non-nil, arms the rig's fault injector with the given
	// schedule and/or chaos profile. A zero Faults.Seed derives one from
	// the rig seed, so a chaos run is pinned by -seed alone.
	Faults *fault.Options
	// EventSink, when non-nil, accumulates the rig engine's fired-event
	// total (flushed at Run/RunUntil boundaries). Experiment runners share
	// one sink across every rig a figure builds — including concurrent
	// sweep points — to attribute simulation events per experiment.
	EventSink *atomic.Uint64
	// Perf, when non-nil, collects algorithmic cost counters and wall-time
	// spans from every layer of the rig. When nil but Metrics is set, the
	// rig creates its own collector so counter increments surface in the
	// registry (as perfstat.* counters, flushed by RunJob/RunJobs) with no
	// extra wiring. Collectors are per-rig: they must not be shared across
	// concurrently running rigs.
	Perf *perfstat.Stats
	// Invariants, when non-nil, is attached to every layer of the rig as
	// a runtime safety-invariant checker; read its Violations (or call
	// Final) after the run. Checkers are per-rig, like Perf.
	Invariants *invariant.Checker
	// TimeSeries, when non-nil, attaches a windowed telemetry collector
	// to every layer of the rig: slot waits, task-queue depths, migration
	// and power churn, and (via Probe registration here) the engine's
	// live pending-event, freelist and cancel-debt gauges. Collectors are
	// per-rig, like Perf. Pair with NewRecorder so probe series actually
	// get sampled.
	TimeSeries *timeseries.Collector
	// SampleInterval sets the cadence of recorders built by Rig.NewRecorder
	// (default 10s). Each sample costs 56 bytes regardless of PM count —
	// utilization is pre-aggregated into a fixed resource.Vector — so one
	// simulated hour at the default interval is ~20 KB even at 10k PMs.
	SampleInterval time.Duration
}

func (o Options) withDefaults() Options {
	if o.PMs <= 0 {
		o.PMs = 4
	}
	if o.VMMemoryMB <= 0 {
		o.VMMemoryMB = 1024
	}
	if o.VMCPUs <= 0 {
		o.VMCPUs = 1
	}
	if o.Policies != nil {
		if o.Scheduler == nil {
			o.Scheduler = o.Policies.Phase2.NewScheduler()
		}
		sp := o.Policies.Phase2.Speculation()
		if sp.Disable {
			o.MapredConfig.DisableSpeculation = true
		}
		if sp.Slowdown > 0 && o.MapredConfig.SpeculationSlowdown == 0 {
			o.MapredConfig.SpeculationSlowdown = sp.Slowdown
		}
	}
	if o.Scheduler == nil {
		o.Scheduler = mapred.Fair{}
	}
	return o
}

// Rig is an assembled simulation environment.
type Rig struct {
	// Engine is the shared discrete-event engine.
	Engine *sim.Engine
	// Cluster holds the PMs and VMs.
	Cluster *cluster.Cluster
	// FS is the distributed filesystem.
	FS *dfs.FileSystem
	// JT is the MapReduce framework.
	JT *mapred.JobTracker
	// Workers are the compute nodes registered as TaskTrackers.
	Workers []cluster.Node
	// PMs are the physical machines backing the rig.
	PMs []*cluster.PM
	// VMs are all provisioned VMs (empty for native rigs).
	VMs []*cluster.VM
	// Faults injects failures into the rig; it is always constructed
	// (manual injection works on any rig) and armed only when
	// Options.Faults was set.
	Faults *fault.Injector
	// Invariants is the runtime safety-invariant checker (nil unless
	// Options.Invariants was set).
	Invariants *invariant.Checker
	// OnAllJobsDone, if set before RunJob/RunJobs, fires when the last
	// submitted job completes — while the engine is still draining.
	// Callers use it to stop periodic observers (utilization samplers)
	// whose ticks would otherwise keep the event queue alive forever.
	OnAllJobsDone func()

	// Perf is the rig's performance-attribution collector (nil when
	// neither Options.Perf nor Options.Metrics was set).
	Perf *perfstat.Stats
	// TimeSeries is the rig's windowed telemetry collector (nil unless
	// Options.TimeSeries was set).
	TimeSeries *timeseries.Collector
	// metrics and perfFlushed support FlushPerf.
	metrics        *trace.Registry
	perfFlushed    perfstat.Counters
	sampleInterval time.Duration
}

// New assembles a rig.
func New(opts Options) (*Rig, error) {
	opts = opts.withDefaults()
	engine := sim.New()
	if opts.EventSink != nil {
		engine.SetFiredSink(opts.EventSink)
	}
	cl := cluster.New(engine, opts.ClusterConfig, opts.Seed)
	fs := dfs.New(engine, dfs.Config{}, opts.Seed+1)
	jt := mapred.NewJobTracker(engine, fs, opts.MapredConfig, opts.Scheduler)

	perf := opts.Perf
	if perf == nil && opts.Metrics != nil {
		perf = perfstat.New()
	}
	if perf != nil {
		engine.SetPerf(perf)
		fs.SetPerf(perf)
		jt.SetPerf(perf)
	}

	if opts.Tracer != nil || opts.Metrics != nil {
		opts.Tracer.SetClock(engine)
		cl.SetTrace(opts.Tracer, opts.Metrics)
		fs.SetTrace(opts.Tracer, opts.Metrics)
		jt.SetTrace(opts.Tracer, opts.Metrics)
	}
	if opts.Audit != nil {
		opts.Audit.SetClock(engine)
		cl.SetAudit(opts.Audit)
		jt.SetAudit(opts.Audit)
	}

	rig := &Rig{
		Engine: engine, Cluster: cl, FS: fs, JT: jt, Perf: perf,
		TimeSeries: opts.TimeSeries, metrics: opts.Metrics,
		sampleInterval: opts.SampleInterval,
	}
	if ts := opts.TimeSeries; ts != nil {
		cl.SetTimeSeries(ts)
		jt.SetTimeSeries(ts, "")
		ts.ProbeCounter("sim.events", "", func() float64 { return float64(engine.Fired()) })
		ts.Probe("sim.pending_events", "", func() float64 { return float64(engine.Pending()) })
		ts.Probe("sim.freelist_events", "", func() float64 { return float64(engine.FreelistLen()) })
		ts.Probe("sim.cancel_debt", "", func() float64 { return float64(engine.CancelDebt()) })
	}
	rig.PMs = cl.AddPMs("pm", opts.PMs)
	cluster.StripeTopology(rig.PMs, opts.Racks, opts.PowerDomains)

	switch {
	case opts.VMsPerPM <= 0:
		for _, pm := range rig.PMs {
			if opts.Dom0 {
				pm.SetDom0Mode(true)
			}
			jt.AddTracker(pm)
			rig.Workers = append(rig.Workers, pm)
		}
	case opts.Split:
		for pi, pm := range rig.PMs {
			dn, err := cl.AddVM(fmt.Sprintf("dn-%d", pi), pm, opts.VMCPUs, opts.VMMemoryMB)
			if err != nil {
				return nil, err
			}
			rig.VMs = append(rig.VMs, dn)
			for k := 0; k < opts.VMsPerPM; k++ {
				tt, err := cl.AddVM(fmt.Sprintf("tt-%d-%d", pi, k), pm, opts.VMCPUs, opts.VMMemoryMB)
				if err != nil {
					return nil, err
				}
				jt.AddSplitTracker(tt, dn)
				rig.Workers = append(rig.Workers, tt)
				rig.VMs = append(rig.VMs, tt)
			}
		}
	default:
		vms, err := cl.SpreadVMs("vm", opts.PMs*opts.VMsPerPM, rig.PMs, opts.VMCPUs, opts.VMMemoryMB)
		if err != nil {
			return nil, err
		}
		rig.VMs = vms
		for _, vm := range vms {
			jt.AddTracker(vm)
			rig.Workers = append(rig.Workers, vm)
		}
	}

	faultOpts := fault.Options{Seed: opts.Seed + 2}
	if opts.Faults != nil {
		faultOpts = *opts.Faults
		if faultOpts.Seed == 0 {
			faultOpts.Seed = opts.Seed + 2
		}
	}
	rig.Faults = fault.NewInjector(fault.Env{
		Engine:  engine,
		Cluster: cl,
		FSs:     []*dfs.FileSystem{fs},
		JTs:     []*mapred.JobTracker{jt},
	}, faultOpts)
	if opts.Tracer != nil || opts.Metrics != nil {
		rig.Faults.SetTrace(opts.Tracer, opts.Metrics)
	}
	if opts.Audit != nil {
		rig.Faults.SetAudit(opts.Audit)
	}
	if perf != nil {
		rig.Faults.SetPerf(perf)
	}
	if opts.Invariants != nil {
		opts.Invariants.Attach(engine, cl, []*dfs.FileSystem{fs}, []*mapred.JobTracker{jt}, opts.Audit)
		rig.Faults.SetInvariants(opts.Invariants)
		rig.Invariants = opts.Invariants
	}
	if opts.Faults != nil {
		if err := rig.Faults.Arm(); err != nil {
			return nil, err
		}
	}
	return rig, nil
}

// JobResult summarizes one completed job.
type JobResult struct {
	// Name is the job's benchmark name.
	Name string
	// JCT is the completion time.
	JCT time.Duration
	// MapPhase and ReducePhase split the completion time.
	MapPhase    time.Duration
	ReducePhase time.Duration
	// CritPath digests the job's critical path (longest chain of waits
	// and task runs bounding the JCT); nil when analysis failed.
	CritPath *critpath.Summary
}

func resultOf(j *mapred.Job) JobResult {
	res := JobResult{
		Name:        j.Spec.Name,
		JCT:         j.JCT(),
		MapPhase:    j.MapPhase(),
		ReducePhase: j.ReducePhase(),
	}
	if rep, err := j.CriticalPath(); err == nil {
		sum := rep.Summary()
		res.CritPath = &sum
	}
	return res
}

// FailPM crashes one of the rig's physical machines and propagates the
// failure through every layer: trackers on the machine are declared
// lost (MapReduce re-executes their attempts and any stranded map
// outputs elsewhere), in-flight migrations touching the machine are
// aborted, and the DFS re-replicates the blocks that lost a copy. It
// returns the DFS damage report. The error return is always nil and
// kept for compatibility.
func (r *Rig) FailPM(pm *cluster.PM) (dfs.FailureReport, error) {
	return r.Faults.CrashPM(pm), nil
}

// RunJob submits a job and drives the simulation until it completes.
func (r *Rig) RunJob(spec mapred.JobSpec) (JobResult, error) {
	job, err := r.JT.Submit(spec, func(*mapred.Job) {
		if r.OnAllJobsDone != nil {
			r.OnAllJobsDone()
		}
	})
	if err != nil {
		return JobResult{}, err
	}
	r.Engine.Run()
	r.FlushPerf()
	if !job.Done() {
		return JobResult{}, fmt.Errorf("testbed: job %s stalled (deadlock or starvation)", spec.Name)
	}
	return resultOf(job), nil
}

// FlushPerf folds the cost-counter increments accumulated since the last
// flush into the rig's metrics registry as perfstat.* counters. All
// counter names are materialized — including zero ones — so merged
// snapshots keep a stable key set. Wall-time spans never enter the
// registry: they are nondeterministic and would break byte-identical
// snapshot comparisons. RunJob/RunJobs flush automatically; drivers that
// pump the engine directly (RunUntil loops) call this before snapshotting.
func (r *Rig) FlushPerf() {
	if r.metrics != nil {
		// Engine occupancy gauges (satellite of the time-series work):
		// pending events, freelist size and lazy-cancel debt, read only at
		// flush boundaries so the event pump itself stays untouched.
		r.metrics.Gauge("engine.pending_events").Set(float64(r.Engine.Pending()))
		r.metrics.Gauge("engine.freelist_events").Set(float64(r.Engine.FreelistLen()))
		r.metrics.Gauge("engine.cancel_debt").Set(float64(r.Engine.CancelDebt()))
	}
	if r.Perf == nil || r.metrics == nil {
		return
	}
	delta := r.Perf.C.Delta(r.perfFlushed)
	r.perfFlushed = r.Perf.C
	delta.Each(func(name string, v int64) {
		r.metrics.Counter("perfstat." + name).Add(float64(v))
	})
}

// NewRecorder builds a utilization/power recorder over the rig's cluster
// at Options.SampleInterval (default 10s), wired to the rig's telemetry
// collector when one was configured — each tick then also samples the
// registered probes (engine depth, task queues) and the cluster gauges.
// Stop it (typically from OnAllJobsDone) before draining the queue, or
// give it a horizon.
func (r *Rig) NewRecorder(horizon time.Duration) *metrics.Recorder {
	rec := metrics.NewRecorder(r.Cluster, r.sampleInterval, horizon)
	rec.SetTimeSeries(r.TimeSeries)
	return rec
}

// RunJobs submits all jobs at once and drives the simulation until every
// one completes.
func (r *Rig) RunJobs(specs []mapred.JobSpec) ([]JobResult, error) {
	jobs := make([]*mapred.Job, 0, len(specs))
	remaining := len(specs)
	for _, spec := range specs {
		job, err := r.JT.Submit(spec, func(*mapred.Job) {
			if remaining--; remaining == 0 && r.OnAllJobsDone != nil {
				r.OnAllJobsDone()
			}
		})
		if err != nil {
			return nil, err
		}
		jobs = append(jobs, job)
	}
	r.Engine.Run()
	r.FlushPerf()
	out := make([]JobResult, 0, len(jobs))
	for _, j := range jobs {
		if !j.Done() {
			return nil, fmt.Errorf("testbed: job %s stalled", j.Spec.Name)
		}
		out = append(out, resultOf(j))
	}
	return out, nil
}
