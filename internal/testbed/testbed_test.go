package testbed

import (
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/dfs"
	"repro/internal/fault"
	"repro/internal/mapred"
	"repro/internal/workload"
)

func TestNativeRig(t *testing.T) {
	rig, err := New(Options{PMs: 4, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(rig.Workers) != 4 || len(rig.VMs) != 0 {
		t.Fatalf("native rig: %d workers, %d VMs", len(rig.Workers), len(rig.VMs))
	}
	res, err := rig.RunJob(workload.Sort().WithInputMB(1024))
	if err != nil {
		t.Fatal(err)
	}
	if res.JCT <= 0 || res.Name != "Sort" {
		t.Errorf("bad result: %+v", res)
	}
}

func TestVirtualRigSlowerThanNative(t *testing.T) {
	run := func(vmsPerPM int) float64 {
		rig, err := New(Options{PMs: 4, VMsPerPM: vmsPerPM, Seed: 1})
		if err != nil {
			t.Fatal(err)
		}
		res, err := rig.RunJob(workload.Sort().WithInputMB(2048))
		if err != nil {
			t.Fatal(err)
		}
		return res.JCT.Seconds()
	}
	native := run(0)
	virtual := run(1) // same worker count, one VM per PM
	if virtual <= native {
		t.Errorf("virtual Sort (%v) not slower than native (%v)", virtual, native)
	}
	overhead := virtual/native - 1
	if overhead < 0.05 || overhead > 0.60 {
		t.Errorf("virtual overhead %.0f%% outside plausible band", overhead*100)
	}
}

func TestDom0Rig(t *testing.T) {
	run := func(dom0 bool) float64 {
		rig, err := New(Options{PMs: 4, Dom0: dom0, Seed: 1})
		if err != nil {
			t.Fatal(err)
		}
		res, err := rig.RunJob(workload.Sort().WithInputMB(2048))
		if err != nil {
			t.Fatal(err)
		}
		return res.JCT.Seconds()
	}
	native := run(false)
	dom0 := run(true)
	// Figure 2(c): Dom-0 is near-native, under ~5% on average across
	// benchmarks. Sort is the worst case (fully disk-bound), so allow a
	// little slack above the average here.
	overhead := dom0/native - 1
	if overhead < 0 || overhead > 0.065 {
		t.Errorf("Dom-0 overhead %.1f%%, want (0, 6.5%%]", overhead*100)
	}
}

func TestSplitRig(t *testing.T) {
	rig, err := New(Options{PMs: 4, VMsPerPM: 2, Split: true, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(rig.Workers) != 8 {
		t.Fatalf("split rig workers = %d, want 8 (two TTs per PM)", len(rig.Workers))
	}
	if len(rig.VMs) != 12 {
		t.Fatalf("split rig VMs = %d, want 12 (2 TT + 1 DN per PM)", len(rig.VMs))
	}
	if _, err := rig.RunJob(workload.Sort().WithInputMB(1024)); err != nil {
		t.Fatal(err)
	}
}

func TestRunJobsConcurrent(t *testing.T) {
	rig, err := New(Options{PMs: 6, VMsPerPM: 2, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	results, err := rig.RunJobs([]mapred.JobSpec{
		workload.Sort().WithInputMB(512),
		workload.Wcount().WithInputMB(512),
		workload.PiEst(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 3 {
		t.Fatalf("got %d results, want 3", len(results))
	}
	for _, r := range results {
		if r.JCT <= 0 {
			t.Errorf("%s JCT = %v", r.Name, r.JCT)
		}
	}
}

func TestJobSurvivesPMFailure(t *testing.T) {
	rig, err := New(Options{PMs: 6, VMsPerPM: 2, Seed: 31})
	if err != nil {
		t.Fatal(err)
	}
	job, err := rig.JT.Submit(workload.Sort().WithInputMB(2048), nil)
	if err != nil {
		t.Fatal(err)
	}
	var report dfs.FailureReport
	rig.Engine.After(10*time.Second, func() {
		report, err = rig.FailPM(rig.PMs[2])
		if err != nil {
			t.Error(err)
		}
	})
	rig.Engine.Run()
	if !job.Done() {
		t.Fatal("job did not survive the machine failure")
	}
	if report.Lost > 0 {
		t.Errorf("%d blocks lost despite 2-way replication across 12 nodes", report.Lost)
	}
	if report.ReReplicated == 0 {
		t.Error("no blocks re-replicated after losing two DataNodes")
	}
	// The failed machine must be empty and off.
	if !rig.PMs[2].Failed() || len(rig.PMs[2].VMs()) != 0 {
		t.Error("failed PM still hosts work")
	}
	// No attempt may still reference the failed machine.
	for _, a := range rig.JT.RunningAttempts() {
		if a.Node().Machine() == rig.PMs[2] {
			t.Errorf("attempt %s still on the failed machine", a.Task.ID())
		}
	}
}

func TestSourceFailureAbortsMigration(t *testing.T) {
	rig, err := New(Options{PMs: 3, VMsPerPM: 1, Seed: 32})
	if err != nil {
		t.Fatal(err)
	}
	vm := rig.VMs[0]
	landed := false
	if err := rig.Cluster.Migrate(vm, rig.PMs[1], func(cluster.MigrationStats) { landed = true }); err != nil {
		t.Fatal(err)
	}
	// Mid-pre-copy the source crashes: the destination discards the
	// received pages and the VM dies with its source.
	if _, err := rig.FailPM(rig.PMs[0]); err != nil {
		t.Fatalf("failing the migration source: %v", err)
	}
	if vm.State() != cluster.VMDestroyed || vm.Machine() != nil {
		t.Errorf("VM after source failure: state=%v machine=%v, want destroyed/nil", vm.State(), vm.Machine())
	}
	rig.Engine.Run()
	if landed {
		t.Error("aborted migration still delivered its completion callback")
	}
	if got := len(rig.PMs[1].VMs()); got != 1 {
		t.Errorf("destination hosts %d VMs, want only its own", got)
	}
}

func TestDestinationFailureRetriesMigration(t *testing.T) {
	rig, err := New(Options{PMs: 3, VMsPerPM: 1, Seed: 32})
	if err != nil {
		t.Fatal(err)
	}
	vm := rig.VMs[0]
	landed := false
	if err := rig.Cluster.Migrate(vm, rig.PMs[1], func(cluster.MigrationStats) { landed = true }); err != nil {
		t.Fatal(err)
	}
	// Mid-pre-copy the destination crashes: the VM keeps running on its
	// source and the migration retries with backoff.
	if _, err := rig.FailPM(rig.PMs[1]); err != nil {
		t.Fatalf("failing the migration destination: %v", err)
	}
	if vm.State() != cluster.VMRunning || vm.Machine() != rig.PMs[0] {
		t.Errorf("VM after destination failure: state=%v machine=%v, want running on source", vm.State(), vm.Machine())
	}
	// Repair before the first retry fires; the backoff attempt lands it.
	rig.Engine.After(10*time.Second, func() { rig.PMs[1].PowerOn() })
	rig.Engine.Run()
	if !landed {
		t.Fatal("migration never completed after the destination recovered")
	}
	if vm.Machine() != rig.PMs[1] {
		t.Errorf("VM on %v, want the recovered destination", vm.Machine())
	}
}

func TestNativeClusterFailure(t *testing.T) {
	rig, err := New(Options{PMs: 6, Seed: 33})
	if err != nil {
		t.Fatal(err)
	}
	job, err := rig.JT.Submit(workload.Wcount().WithInputMB(2048), nil)
	if err != nil {
		t.Fatal(err)
	}
	rig.Engine.After(8*time.Second, func() {
		if _, err := rig.FailPM(rig.PMs[0]); err != nil {
			t.Error(err)
		}
	})
	rig.Engine.Run()
	if !job.Done() {
		t.Fatal("native job did not survive the failure")
	}
}

func TestFailingOffMachineIsNoOp(t *testing.T) {
	rig, err := New(Options{PMs: 3, Seed: 34})
	if err != nil {
		t.Fatal(err)
	}
	if err := rig.PMs[0].PowerOff(); err != nil {
		t.Fatal(err)
	}
	report, err := rig.FailPM(rig.PMs[0])
	if err != nil {
		t.Fatalf("failing an off machine errored: %v", err)
	}
	if report.ReReplicated != 0 || report.Lost != 0 {
		t.Errorf("failing an off machine touched the DFS: %+v", report)
	}
	if got := rig.Faults.Injections()[fault.PMCrash]; got != 0 {
		t.Errorf("no-op failure recorded %d pm-crash injections", got)
	}
}
