// Package scalesweep measures how each HybridMR controller's
// algorithmic cost grows with cluster size. It runs one fixed
// weak-scaling scenario at a geometric sequence of cluster sizes,
// collects the perfstat cost counters of every run, fits a power law
// counter ≈ a·n^k per counter via log-log regression, and names each
// controller's empirical complexity — flagging the superlinear ones as
// optimization targets.
//
// The counter section of the resulting report is byte-deterministic:
// every run is a seeded simulation whose cost counters are exact event
// tallies, so the same seed and sizes produce identical bytes at any
// sweep parallelism. Wall-clock times and span trees are reported too,
// but in a separate section that determinism comparisons exclude.
package scalesweep

import (
	"encoding/json"
	"fmt"
	"math"
	"sort"
	"strings"
	"time"

	hybridmr "repro"
	"repro/internal/experiments"
	"repro/internal/perfstat"
	"repro/internal/stats"
	"repro/internal/workload"
)

// Schema identifies the PERF.json layout.
const Schema = "hybridmr.perf/v1"

// SuperlinearThreshold is the fitted exponent above which a counter's
// growth counts as superlinear. It sits above 1 by enough margin to
// absorb fit noise but below the ~1.2 an n·log n cost shows over a
// 16× size range.
const SuperlinearThreshold = 1.05

// AcceptanceCeiling is the growth exponent the indexed controllers must
// not exceed: the scheduler-state index work flattened jt, drm and p1
// from n^2.2/n^2.0/n^1.6 to at most ~n^1.2, and the sweep's regression
// guard fails any change that lets one of them climb back above this.
const AcceptanceCeiling = 1.2

// IndexedControllers names the controllers covered by AcceptanceCeiling.
var IndexedControllers = []string{"jt", "drm", "p1"}

// DefaultScaleUpSizes are the synthetic datacenter-scale operating
// points the -scale-up suite runs: 2.5k PMs (CI-speed smoke) and 10k
// PMs (the full datacenter point).
func DefaultScaleUpSizes() []int { return []int{2500, 10000} }

// DefaultSweepSizes are the controller-complexity sweep's geometric
// cluster sizes, used when Options.Sizes is empty.
func DefaultSweepSizes() []int { return []int{24, 96, 384} }

// Options parameterizes a sweep.
type Options struct {
	// Sizes are the total PM counts to run, smallest first. Each size n
	// builds a hybrid cluster of n/2 native PMs and n/2 virtual hosts
	// with 2 VMs each (the paper's layout ratio). Default {24, 96, 384}.
	Sizes []int
	// Seed fixes all randomized behaviour across the whole sweep.
	Seed int64
	// Waves is the number of job-arrival waves (default 5).
	Waves int
	// OnPointDone, when non-nil, is called once as each size finishes —
	// a progress hook for live heartbeats. Sizes fan across worker
	// goroutines, so the callback may run concurrently; it must not
	// touch the deterministic results.
	OnPointDone func()
}

func (o Options) withDefaults() Options {
	if len(o.Sizes) == 0 {
		o.Sizes = DefaultSweepSizes()
	}
	if o.Waves <= 0 {
		o.Waves = 5
	}
	return o
}

// SizeResult is one cluster size's deterministic outcome.
type SizeResult struct {
	// Size is the total PM count.
	Size int `json:"size"`
	// Trackers is the number of TaskTrackers across both partitions.
	Trackers int `json:"trackers"`
	// Jobs is how many jobs the scenario submitted (all completed).
	Jobs int `json:"jobs"`
	// EventsFired counts the main engine's fired events.
	EventsFired int64 `json:"events_fired"`
	// Counters is the perfstat cost-counter snapshot of the run.
	Counters map[string]int64 `json:"counters"`
}

// Exponent is one counter's fitted power law over the sweep.
type Exponent struct {
	// Counter is the perfstat counter name.
	Counter string `json:"counter"`
	// Exponent is the fitted k in counter ≈ a·n^k.
	Exponent float64 `json:"exponent"`
	// R2 is the goodness of the log-log fit.
	R2 float64 `json:"r2"`
	// Superlinear is Exponent >= SuperlinearThreshold.
	Superlinear bool `json:"superlinear"`
}

// Controller summarizes a subsystem: its worst-growing counter decides
// its empirical complexity.
type Controller struct {
	// Name is the subsystem prefix (drm, p1, jt, dfs, engine, ips, fault).
	Name string `json:"name"`
	// MaxExponent is the largest fitted exponent among its counters.
	MaxExponent float64 `json:"max_exponent"`
	// DrivenBy is the counter with that exponent.
	DrivenBy string `json:"driven_by"`
	// Complexity renders the verdict, e.g. "O(n^1.97)".
	Complexity string `json:"complexity"`
	// Superlinear flags the controller as an optimization target.
	Superlinear bool `json:"superlinear"`
}

// Report is the deterministic section of PERF.json.
type Report struct {
	Seed        int64        `json:"seed"`
	Sizes       []int        `json:"sizes"`
	Waves       int          `json:"waves"`
	Results     []SizeResult `json:"results"`
	Exponents   []Exponent   `json:"exponents"`
	Controllers []Controller `json:"controllers"`
}

// WallResult is one size's nondeterministic timing, reported for humans
// and excluded from determinism comparisons.
type WallResult struct {
	Size        int                     `json:"size"`
	WallSeconds float64                 `json:"wall_seconds"`
	Spans       []perfstat.SpanSnapshot `json:"spans"`
}

// File is the full PERF.json document: the byte-deterministic report
// plus the wall-time section.
type File struct {
	Schema string       `json:"schema"`
	Report Report       `json:"report"`
	Wall   []WallResult `json:"wall"`
}

// JSON renders the document with stable formatting.
func (f File) JSON() ([]byte, error) {
	data, err := json.MarshalIndent(f, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(data, '\n'), nil
}

// Run executes the sweep, fanning sizes across experiments.Workers()
// goroutines. Each size is an independent seeded simulation, so the
// report section is identical at any worker count.
func Run(opts Options) (File, error) {
	opts = opts.withDefaults()
	type point struct {
		res  SizeResult
		wall WallResult
	}
	points, err := experiments.Map(len(opts.Sizes), func(i int) (point, error) {
		res, wall, err := runSize(opts.Sizes[i], opts)
		return point{res, wall}, err
	})
	if err != nil {
		return File{}, err
	}
	rep := Report{Seed: opts.Seed, Sizes: opts.Sizes, Waves: opts.Waves}
	var walls []WallResult
	for _, p := range points {
		rep.Results = append(rep.Results, p.res)
		walls = append(walls, p.wall)
	}
	rep.Exponents = FitExponents(rep.Results)
	rep.Controllers = ClassifyControllers(rep.Exponents)
	return File{Schema: Schema, Report: rep, Wall: walls}, nil
}

// RunPoint runs the sweep's weak-scaling scenario at a single cluster
// size and returns its deterministic result and wall timing — the
// single-operating-point entry used by the scale-up suite and the sim
// CLI's scaleup scenario.
func RunPoint(size int, opts Options) (SizeResult, WallResult, error) {
	return runSize(size, opts.withDefaults())
}

// runSize runs the weak-scaling scenario at one cluster size: waves of
// Sort jobs sized so concurrency grows with the cluster, alternating
// generous-deadline jobs (placed virtual, keeping the DRM busy) with
// no-deadline jobs (overhead-mode placement, exercising both estimate
// paths), with inter-wave gaps so completed runs grow the Phase I
// profile database before the next wave's estimates scan it.
func runSize(size int, opts Options) (SizeResult, WallResult, error) {
	if size < 2 {
		return SizeResult{}, WallResult{}, fmt.Errorf("scalesweep: size %d too small", size)
	}
	start := time.Now()
	perf := perfstat.New()
	hc, err := hybridmr.NewHybridCluster(hybridmr.ClusterSpec{
		NativePMs:      size / 2,
		VirtualHostPMs: (size + 1) / 2,
		VMsPerHost:     2,
		Seed:           opts.Seed + int64(size),
		Perf:           perf,
	})
	if err != nil {
		return SizeResult{}, WallResult{}, err
	}
	defer hc.Close()

	spec := workload.Sort().WithInputMB(192)
	spec.Reduces = 2
	waveSize := size / 12
	if waveSize < 2 {
		waveSize = 2
	}
	jobs := 0
	done := 0
	for w := 0; w < opts.Waves; w++ {
		for j := 0; j < waveSize; j++ {
			deadline := time.Duration(0)
			if j%2 == 0 {
				deadline = 2 * time.Hour
			}
			if _, _, err := hc.SubmitJob(spec, deadline, func(*hybridmr.Job) { done++ }); err != nil {
				return SizeResult{}, WallResult{}, fmt.Errorf("scalesweep: size %d wave %d: %w", size, w, err)
			}
			jobs++
		}
		hc.RunFor(2 * time.Minute)
	}
	hc.RunUntilIdle()
	if done != jobs {
		return SizeResult{}, WallResult{}, fmt.Errorf("scalesweep: size %d: %d of %d jobs completed", size, done, jobs)
	}

	trackers := 0
	if hc.NativeJT != nil {
		trackers += len(hc.NativeJT.Trackers())
	}
	if hc.VirtualJT != nil {
		trackers += len(hc.VirtualJT.Trackers())
	}
	sn := perf.Snapshot()
	res := SizeResult{
		Size:        size,
		Trackers:    trackers,
		Jobs:        jobs,
		EventsFired: perf.C.EngineEventsFired,
		Counters:    sn.Counters,
	}
	wall := WallResult{
		Size:        size,
		WallSeconds: time.Since(start).Seconds(),
		Spans:       sn.Spans,
	}
	if opts.OnPointDone != nil {
		opts.OnPointDone()
	}
	return res, wall, nil
}

// FitExponents fits counter ≈ a·n^k per counter across the sweep's
// sizes via linear regression in log-log space. Counters that are zero
// at any size are skipped (no log, and a cost that does not engage at
// every size has no meaningful growth law).
func FitExponents(results []SizeResult) []Exponent {
	if len(results) < 2 {
		return nil
	}
	names := make([]string, 0, len(results[0].Counters))
	for name := range results[0].Counters {
		names = append(names, name)
	}
	sort.Strings(names)
	var out []Exponent
	for _, name := range names {
		xs := make([]float64, 0, len(results))
		ys := make([]float64, 0, len(results))
		ok := true
		for _, r := range results {
			v := r.Counters[name]
			if v <= 0 {
				ok = false
				break
			}
			xs = append(xs, math.Log(float64(r.Size)))
			ys = append(ys, math.Log(float64(v)))
		}
		if !ok {
			continue
		}
		fit, err := stats.FitLinear(xs, ys)
		if err != nil {
			continue
		}
		out = append(out, Exponent{
			Counter:     name,
			Exponent:    round3(fit.Slope),
			R2:          round3(fit.R2),
			Superlinear: round3(fit.Slope) >= SuperlinearThreshold,
		})
	}
	return out
}

// ClassifyControllers groups exponents by subsystem prefix and names
// each controller's empirical complexity after its worst counter.
func ClassifyControllers(exps []Exponent) []Controller {
	best := make(map[string]Exponent)
	for _, e := range exps {
		prefix := e.Counter
		if i := strings.IndexByte(prefix, '.'); i >= 0 {
			prefix = prefix[:i]
		}
		if cur, ok := best[prefix]; !ok || e.Exponent > cur.Exponent {
			best[prefix] = e
		}
	}
	names := make([]string, 0, len(best))
	for name := range best {
		names = append(names, name)
	}
	sort.Strings(names)
	out := make([]Controller, 0, len(names))
	for _, name := range names {
		e := best[name]
		out = append(out, Controller{
			Name:        name,
			MaxExponent: e.Exponent,
			DrivenBy:    e.Counter,
			Complexity:  fmt.Sprintf("O(n^%.2f)", e.Exponent),
			Superlinear: e.Superlinear,
		})
	}
	return out
}

func round3(v float64) float64 {
	return math.Round(v*1000) / 1000
}
