package scalesweep

import (
	"bytes"
	"encoding/json"
	"testing"

	"repro/internal/experiments"
)

// sweepReportJSON runs a small sweep at the given parallelism and
// returns only the deterministic report section's bytes.
func sweepReportJSON(t *testing.T, parallel int) []byte {
	t.Helper()
	prev := experiments.Parallelism
	experiments.Parallelism = parallel
	defer func() { experiments.Parallelism = prev }()
	f, err := Run(Options{Sizes: []int{8, 16, 32}, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	data, err := json.MarshalIndent(f.Report, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// TestReportDeterministicAcrossParallelism pins the tentpole guarantee:
// the counter/exponent section of PERF.json is byte-identical whether
// sizes run serially or fan out across workers.
func TestReportDeterministicAcrossParallelism(t *testing.T) {
	serial := sweepReportJSON(t, 1)
	parallel := sweepReportJSON(t, 8)
	if !bytes.Equal(serial, parallel) {
		t.Errorf("sweep report differs between -parallel 1 and 8:\n--- serial ---\n%s\n--- parallel ---\n%s", serial, parallel)
	}
}

// TestSweepShape sanity-checks the small sweep: jobs complete at every
// size, core counters engage, exponents are fitted for the controllers
// the growth study is about, and the report names a complexity for each.
func TestSweepShape(t *testing.T) {
	f, err := Run(Options{Sizes: []int{8, 16, 32}, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Report.Results) != 3 {
		t.Fatalf("got %d results, want 3", len(f.Report.Results))
	}
	for _, r := range f.Report.Results {
		if r.Jobs == 0 || r.EventsFired == 0 || r.Trackers == 0 {
			t.Errorf("size %d: degenerate result %+v", r.Size, r)
		}
		for _, key := range []string{"jt.pairs_scanned", "drm.nodes_scanned", "p1.profile_entries_scanned", "dfs.placement_draws", "engine.heap_sift_swaps"} {
			if r.Counters[key] <= 0 {
				t.Errorf("size %d: counter %s did not engage", r.Size, key)
			}
		}
	}
	byName := make(map[string]Controller)
	for _, c := range f.Report.Controllers {
		byName[c.Name] = c
	}
	for _, name := range []string{"drm", "p1", "jt", "dfs", "engine"} {
		c, ok := byName[name]
		if !ok {
			t.Errorf("no controller verdict for %s", name)
			continue
		}
		if c.Complexity == "" || c.DrivenBy == "" {
			t.Errorf("controller %s: incomplete verdict %+v", name, c)
		}
	}
	if len(f.Wall) != 3 {
		t.Errorf("got %d wall results, want 3", len(f.Wall))
	}
	for _, c := range f.Report.Controllers {
		t.Logf("%-8s %-30s %s superlinear=%v", c.Name, c.DrivenBy, c.Complexity, c.Superlinear)
	}
}

// TestIndexedControllersStayFlat is the inverted superlinear guard: the
// scheduler-state indexes flattened jt, drm and p1 from n^2.2/n^2.0/
// n^1.6, and any change that lets one of them climb back above the
// acceptance ceiling must fail here before it reaches the datacenter-
// scale suite.
func TestIndexedControllersStayFlat(t *testing.T) {
	f, err := Run(Options{Seed: 1}) // default sizes 24, 96, 384
	if err != nil {
		t.Fatal(err)
	}
	byName := make(map[string]Controller)
	for _, c := range f.Report.Controllers {
		byName[c.Name] = c
	}
	for _, name := range IndexedControllers {
		c, ok := byName[name]
		if !ok {
			t.Errorf("no controller verdict for indexed controller %s", name)
			continue
		}
		if c.MaxExponent > AcceptanceCeiling {
			t.Errorf("%s regressed past the ceiling: grows %s via %s (ceiling O(n^%.1f))",
				name, c.Complexity, c.DrivenBy, AcceptanceCeiling)
		}
	}
}

// TestRunPoint pins the single-operating-point entry: one size run via
// RunPoint must produce the identical deterministic result as the same
// size inside a sweep.
func TestRunPoint(t *testing.T) {
	res, wall, err := RunPoint(16, Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if wall.Size != 16 || res.Size != 16 {
		t.Fatalf("wrong size in results: res=%d wall=%d", res.Size, wall.Size)
	}
	f, err := Run(Options{Sizes: []int{16}, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	a, _ := json.Marshal(res)
	b, _ := json.Marshal(f.Report.Results[0])
	if !bytes.Equal(a, b) {
		t.Errorf("RunPoint result differs from sweep result:\n%s\n%s", a, b)
	}
}

// TestFitExponents pins the log-log regression on a known power law.
func TestFitExponents(t *testing.T) {
	results := []SizeResult{
		{Size: 8, Counters: map[string]int64{"jt.pairs_scanned": 64, "dfs.blocks_placed": 8, "ips.ticks": 0}},
		{Size: 16, Counters: map[string]int64{"jt.pairs_scanned": 256, "dfs.blocks_placed": 16, "ips.ticks": 0}},
		{Size: 32, Counters: map[string]int64{"jt.pairs_scanned": 1024, "dfs.blocks_placed": 32, "ips.ticks": 0}},
	}
	exps := FitExponents(results)
	byName := make(map[string]Exponent)
	for _, e := range exps {
		byName[e.Counter] = e
	}
	if e := byName["jt.pairs_scanned"]; e.Exponent != 2 || !e.Superlinear {
		t.Errorf("quadratic counter fitted as %+v", e)
	}
	if e := byName["dfs.blocks_placed"]; e.Exponent != 1 || e.Superlinear {
		t.Errorf("linear counter fitted as %+v", e)
	}
	if _, ok := byName["ips.ticks"]; ok {
		t.Error("zero counter should be skipped, got a fit")
	}
	ctrls := ClassifyControllers(exps)
	if len(ctrls) != 2 {
		t.Fatalf("got %d controllers, want 2: %+v", len(ctrls), ctrls)
	}
	if ctrls[1].Name != "jt" || ctrls[1].Complexity != "O(n^2.00)" {
		t.Errorf("jt verdict wrong: %+v", ctrls[1])
	}
}
