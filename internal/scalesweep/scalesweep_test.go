package scalesweep

import (
	"bytes"
	"encoding/json"
	"testing"

	"repro/internal/experiments"
)

// sweepReportJSON runs a small sweep at the given parallelism and
// returns only the deterministic report section's bytes.
func sweepReportJSON(t *testing.T, parallel int) []byte {
	t.Helper()
	prev := experiments.Parallelism
	experiments.Parallelism = parallel
	defer func() { experiments.Parallelism = prev }()
	f, err := Run(Options{Sizes: []int{8, 16, 32}, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	data, err := json.MarshalIndent(f.Report, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// TestReportDeterministicAcrossParallelism pins the tentpole guarantee:
// the counter/exponent section of PERF.json is byte-identical whether
// sizes run serially or fan out across workers.
func TestReportDeterministicAcrossParallelism(t *testing.T) {
	serial := sweepReportJSON(t, 1)
	parallel := sweepReportJSON(t, 8)
	if !bytes.Equal(serial, parallel) {
		t.Errorf("sweep report differs between -parallel 1 and 8:\n--- serial ---\n%s\n--- parallel ---\n%s", serial, parallel)
	}
}

// TestSweepShape sanity-checks the small sweep: jobs complete at every
// size, core counters engage, exponents are fitted for the controllers
// the growth study is about, and the report names a complexity for each.
func TestSweepShape(t *testing.T) {
	f, err := Run(Options{Sizes: []int{8, 16, 32}, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Report.Results) != 3 {
		t.Fatalf("got %d results, want 3", len(f.Report.Results))
	}
	for _, r := range f.Report.Results {
		if r.Jobs == 0 || r.EventsFired == 0 || r.Trackers == 0 {
			t.Errorf("size %d: degenerate result %+v", r.Size, r)
		}
		for _, key := range []string{"jt.pairs_scanned", "drm.sort_cmps", "p1.profile_entries_scanned", "dfs.placement_draws", "engine.heap_sift_swaps"} {
			if r.Counters[key] <= 0 {
				t.Errorf("size %d: counter %s did not engage", r.Size, key)
			}
		}
	}
	byName := make(map[string]Controller)
	for _, c := range f.Report.Controllers {
		byName[c.Name] = c
	}
	for _, name := range []string{"drm", "p1", "jt", "dfs", "engine"} {
		c, ok := byName[name]
		if !ok {
			t.Errorf("no controller verdict for %s", name)
			continue
		}
		if c.Complexity == "" || c.DrivenBy == "" {
			t.Errorf("controller %s: incomplete verdict %+v", name, c)
		}
	}
	// Larger clusters must do strictly more scheduler pair scans — the
	// growth the sweep exists to expose.
	for i := 1; i < len(f.Report.Results); i++ {
		prev, cur := f.Report.Results[i-1], f.Report.Results[i]
		if cur.Counters["jt.pairs_scanned"] <= prev.Counters["jt.pairs_scanned"] {
			t.Errorf("jt.pairs_scanned not growing: size %d=%d vs size %d=%d",
				prev.Size, prev.Counters["jt.pairs_scanned"], cur.Size, cur.Counters["jt.pairs_scanned"])
		}
	}
	if len(f.Wall) != 3 {
		t.Errorf("got %d wall results, want 3", len(f.Wall))
	}
	for _, c := range f.Report.Controllers {
		t.Logf("%-8s %-30s %s superlinear=%v", c.Name, c.DrivenBy, c.Complexity, c.Superlinear)
	}
}

// TestFitExponents pins the log-log regression on a known power law.
func TestFitExponents(t *testing.T) {
	results := []SizeResult{
		{Size: 8, Counters: map[string]int64{"jt.pairs_scanned": 64, "dfs.blocks_placed": 8, "ips.ticks": 0}},
		{Size: 16, Counters: map[string]int64{"jt.pairs_scanned": 256, "dfs.blocks_placed": 16, "ips.ticks": 0}},
		{Size: 32, Counters: map[string]int64{"jt.pairs_scanned": 1024, "dfs.blocks_placed": 32, "ips.ticks": 0}},
	}
	exps := FitExponents(results)
	byName := make(map[string]Exponent)
	for _, e := range exps {
		byName[e.Counter] = e
	}
	if e := byName["jt.pairs_scanned"]; e.Exponent != 2 || !e.Superlinear {
		t.Errorf("quadratic counter fitted as %+v", e)
	}
	if e := byName["dfs.blocks_placed"]; e.Exponent != 1 || e.Superlinear {
		t.Errorf("linear counter fitted as %+v", e)
	}
	if _, ok := byName["ips.ticks"]; ok {
		t.Error("zero counter should be skipped, got a fit")
	}
	ctrls := ClassifyControllers(exps)
	if len(ctrls) != 2 {
		t.Fatalf("got %d controllers, want 2: %+v", len(ctrls), ctrls)
	}
	if ctrls[1].Name != "jt" || ctrls[1].Complexity != "O(n^2.00)" {
		t.Errorf("jt verdict wrong: %+v", ctrls[1])
	}
}
