package critpath

import (
	"testing"
	"time"
)

func sec(s float64) time.Duration { return time.Duration(s * float64(time.Second)) }

// A hand-built map→barrier→reduce job with a known longest chain:
//
//	m0: 0..10   m1: 0..30 (the straggler, 2 attempts)   m2: 5..20
//	barrier at 30
//	r0: 30..50  r1: 32..70 (critical)
//
// Longest chain: m1 (wait 0, run 30) → barrier → r1 (wait 2, run 38),
// makespan 70.
func testDAG() []Node {
	return []Node{
		{ID: "m0", Kind: "map", Where: "tr-0", Start: 0, End: sec(10)},
		{ID: "m1", Kind: "map", Where: "tr-1", Start: 0, End: sec(30), Attempts: 2, Speculative: true},
		{ID: "m2", Kind: "map", Where: "tr-2", Start: sec(5), End: sec(20)},
		{ID: "barrier", Kind: "barrier", Start: sec(30), End: sec(30), Deps: []int{0, 1, 2}, Barrier: true},
		{ID: "r0", Kind: "reduce", Where: "tr-0", Start: sec(30), End: sec(50), Deps: []int{3}},
		{ID: "r1", Kind: "reduce", Where: "tr-1", Start: sec(32), End: sec(70), Deps: []int{3}},
	}
}

func TestAnalyzeFindsKnownLongestChain(t *testing.T) {
	rep, err := Analyze(0, testDAG())
	if err != nil {
		t.Fatal(err)
	}
	if rep.Makespan != sec(70) {
		t.Errorf("makespan = %v, want 70s", rep.Makespan)
	}
	// Path: m1 → (barrier, filtered) → r1.
	if len(rep.Steps) != 2 || rep.Steps[0].ID != "m1" || rep.Steps[1].ID != "r1" {
		t.Fatalf("steps = %+v, want m1 then r1", rep.Steps)
	}
	if rep.Steps[0].Wait != 0 || rep.Steps[0].Run != sec(30) {
		t.Errorf("m1 wait/run = %v/%v, want 0/30s", rep.Steps[0].Wait, rep.Steps[0].Run)
	}
	if rep.Steps[1].Wait != sec(2) || rep.Steps[1].Run != sec(38) {
		t.Errorf("r1 wait/run = %v/%v, want 2s/38s", rep.Steps[1].Wait, rep.Steps[1].Run)
	}
	for i, want := range []bool{false, true, false, true, false, true} {
		if rep.OnPath(i) != want {
			t.Errorf("OnPath(%d) = %v, want %v", i, rep.OnPath(i), want)
		}
	}
}

func TestPhaseTotalsTelescopeToMakespan(t *testing.T) {
	rep, err := Analyze(0, testDAG())
	if err != nil {
		t.Fatal(err)
	}
	var sum time.Duration
	for _, p := range rep.Phases {
		sum += p.Total
	}
	if sum != rep.Makespan {
		t.Errorf("phase totals sum to %v, makespan is %v", sum, rep.Makespan)
	}
	if rep.Wait+rep.Run != rep.Makespan {
		t.Errorf("wait %v + run %v != makespan %v", rep.Wait, rep.Run, rep.Makespan)
	}
	// Phase order follows first appearance along the path.
	if len(rep.Phases) != 3 || rep.Phases[0].Kind != "map" || rep.Phases[1].Kind != "barrier" || rep.Phases[2].Kind != "reduce" {
		t.Errorf("phases = %+v", rep.Phases)
	}
}

func TestNonZeroOriginAccountsSubmissionWait(t *testing.T) {
	nodes := []Node{{ID: "m", Kind: "map", Start: sec(12), End: sec(20)}}
	rep, err := Analyze(sec(10), nodes)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Makespan != sec(10) {
		t.Errorf("makespan = %v, want 10s", rep.Makespan)
	}
	if rep.Steps[0].Wait != sec(2) {
		t.Errorf("root wait = %v, want 2s (start − origin)", rep.Steps[0].Wait)
	}
}

func TestSlack(t *testing.T) {
	rep, err := Analyze(0, testDAG())
	if err != nil {
		t.Fatal(err)
	}
	// The sink has zero slack by definition.
	if rep.Slack[5] != 0 {
		t.Errorf("slack[r1] = %v, want 0 (sink)", rep.Slack[5])
	}
	// r1 started 2s after the barrier (a slot wait), so everything
	// upstream of that gap — the barrier and all maps, even critical
	// m1 — carries those 2s of slack.
	if rep.Slack[1] != sec(2) || rep.Slack[3] != sec(2) {
		t.Errorf("slack[m1]/slack[barrier] = %v/%v, want 2s/2s", rep.Slack[1], rep.Slack[3])
	}
	// m0 ran 0..10 but only had to finish by 32 (r1's latest start): slack 22.
	if rep.Slack[0] != sec(22) {
		t.Errorf("slack[m0] = %v, want 22s", rep.Slack[0])
	}
	// r0 finished at 50; it could finish as late as 70: slack 20.
	if rep.Slack[4] != sec(20) {
		t.Errorf("slack[r0] = %v, want 20s", rep.Slack[4])
	}
}

func TestAttribution(t *testing.T) {
	rep, err := Analyze(0, testDAG())
	if err != nil {
		t.Fatal(err)
	}
	if rep.Retried != 1 || rep.SpeculativeWins != 1 {
		t.Errorf("retried/specwins = %d/%d, want 1/1", rep.Retried, rep.SpeculativeWins)
	}
}

func TestTieBreaksTowardLowestIndex(t *testing.T) {
	nodes := []Node{
		{ID: "a", Kind: "map", Start: 0, End: sec(10)},
		{ID: "b", Kind: "map", Start: 0, End: sec(10)},
		{ID: "c", Kind: "reduce", Start: sec(10), End: sec(20), Deps: []int{0, 1}},
	}
	rep, err := Analyze(0, nodes)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Steps[0].ID != "a" {
		t.Errorf("tied dependency resolved to %s, want a (lowest index)", rep.Steps[0].ID)
	}
}

func TestErrors(t *testing.T) {
	if _, err := Analyze(0, nil); err == nil {
		t.Error("empty DAG accepted")
	}
	if _, err := Analyze(0, []Node{{ID: "x", Start: sec(5), End: sec(1)}}); err == nil {
		t.Error("End < Start accepted")
	}
	if _, err := Analyze(0, []Node{{ID: "x", Deps: []int{0}}}); err == nil {
		t.Error("self/forward dependency accepted")
	}
}
