// Package critpath performs post-run critical-path analysis over a
// completed job's scheduled DAG. Given the nodes of a dependency graph
// with their actual start/end times, Analyze walks backward from the
// last finisher picking, at each node, the dependency that finished
// last — reconstructing the chain of work and waiting that bounded the
// makespan. It also runs a classic CPM backward pass to report each
// node's slack (how much later it could have finished without moving
// the makespan).
//
// The package depends only on the standard library so any layer
// (mapred, experiments, CLIs) can build node lists for it without
// import cycles.
package critpath

import (
	"fmt"
	"time"
)

// Node is one scheduled unit of work (a task attempt, a phase barrier)
// in the completed DAG. Deps index earlier entries of the same slice;
// every dependency index must be smaller than the node's own index,
// which makes the graph acyclic by construction.
type Node struct {
	ID          string        // stable identifier, e.g. "sort-1/m-3"
	Kind        string        // "map", "reduce", "barrier", ...
	Where       string        // node/tracker that ran it, "" for barriers
	Start, End  time.Duration // actual scheduled times, End >= Start
	Deps        []int         // indices of nodes this one waited for
	Attempts    int           // attempts launched for this unit (>= 1)
	Speculative bool          // the winning attempt was a speculative backup
	Barrier     bool          // synthetic zero-duration synchronization point
}

// Step is one hop of the critical path, oldest first. Wait is the gap
// between the latest-finishing dependency (or the origin for root
// nodes) and this node's start; Run is the node's own duration. Waits
// and runs of all steps, barriers included, telescope exactly to the
// makespan.
type Step struct {
	ID          string
	Kind        string
	Where       string
	Start, End  time.Duration
	Wait, Run   time.Duration
	Attempts    int
	Speculative bool
}

// Phase aggregates critical-path time by node kind, in order of first
// appearance along the path. Total = sum of Wait+Run of that kind's
// steps, so summing Total over phases yields the makespan.
type Phase struct {
	Kind  string
	Total time.Duration
}

// Report is the result of analyzing one completed DAG.
type Report struct {
	Origin   time.Duration // analysis origin (job submission)
	Makespan time.Duration // latest End minus Origin
	Steps    []Step        // the critical path, barriers filtered out
	Phases   []Phase       // per-kind breakdown including barrier steps
	Wait     time.Duration // total time the path spent waiting
	Run      time.Duration // total time the path spent running

	// Slack[i] is how much later node i could have finished without
	// delaying the makespan, indexed like the Analyze input. Critical
	// nodes followed immediately by their successor have zero slack; a
	// scheduling gap on the path (e.g. a slot wait before the critical
	// reduce) shows up as that much slack on everything upstream of it,
	// since all of it could have run that much later.
	Slack []time.Duration

	// Straggler / re-execution attribution over the whole DAG, not
	// just the path: units that needed more than one attempt, and
	// units won by a speculative backup.
	Retried         int
	SpeculativeWins int

	onPath []bool
}

// OnPath reports whether the node with the given input index lies on
// the reconstructed critical path (barriers included).
func (r *Report) OnPath(i int) bool { return r.onPath[i] }

// Analyze reconstructs the critical path of a completed DAG. origin is
// the instant the work became runnable (job submission); nodes must be
// topologically ordered (deps point at lower indices).
func Analyze(origin time.Duration, nodes []Node) (*Report, error) {
	if len(nodes) == 0 {
		return nil, fmt.Errorf("critpath: no nodes")
	}
	for i, n := range nodes {
		if n.End < n.Start {
			return nil, fmt.Errorf("critpath: node %d (%s) ends before it starts", i, n.ID)
		}
		for _, d := range n.Deps {
			if d < 0 || d >= i {
				return nil, fmt.Errorf("critpath: node %d (%s) has dependency index %d (want 0..%d)", i, n.ID, d, i-1)
			}
		}
	}

	// Sink: latest End, ties broken toward the lowest index so the
	// walk is deterministic.
	sink := 0
	for i, n := range nodes {
		if n.End > nodes[sink].End {
			sink = i
		}
	}
	makespan := nodes[sink].End - origin

	// Backward walk: from the sink, repeatedly hop to the dependency
	// that finished last (ties toward the lowest index).
	onPath := make([]bool, len(nodes))
	var rev []int
	for i := sink; ; {
		onPath[i] = true
		rev = append(rev, i)
		n := nodes[i]
		if len(n.Deps) == 0 {
			break
		}
		next := n.Deps[0]
		for _, d := range n.Deps[1:] {
			if nodes[d].End > nodes[next].End {
				next = d
			}
		}
		i = next
	}

	rep := &Report{
		Origin:   origin,
		Makespan: makespan,
		Slack:    make([]time.Duration, len(nodes)),
	}
	rep.onPath = onPath

	// Build steps oldest-first. The wait of each step is measured from
	// the previous path node's End (the origin for the first), which
	// telescopes: sum(Wait+Run) == Makespan. Negative waits (clock
	// inconsistencies) are rejected rather than clamped so the
	// telescoping invariant cannot silently break.
	phaseIdx := map[string]int{}
	prevEnd := origin
	for k := len(rev) - 1; k >= 0; k-- {
		n := nodes[rev[k]]
		wait := n.Start - prevEnd
		if wait < 0 {
			return nil, fmt.Errorf("critpath: node %s starts %v before its critical dependency finished", n.ID, -wait)
		}
		run := n.End - n.Start
		rep.Wait += wait
		rep.Run += run
		j, ok := phaseIdx[n.Kind]
		if !ok {
			j = len(rep.Phases)
			phaseIdx[n.Kind] = j
			rep.Phases = append(rep.Phases, Phase{Kind: n.Kind})
		}
		rep.Phases[j].Total += wait + run
		if !n.Barrier {
			rep.Steps = append(rep.Steps, Step{
				ID: n.ID, Kind: n.Kind, Where: n.Where,
				Start: n.Start, End: n.End,
				Wait: wait, Run: run,
				Attempts: n.Attempts, Speculative: n.Speculative,
			})
		}
		prevEnd = n.End
	}

	// CPM backward pass for slack: the latest finish of a node is the
	// minimum latest start of its successors (the sink End for nodes
	// with no successors). Latest start = latest finish − duration,
	// but since waits are schedule artifacts we treat each node's
	// duration as its actual Run time.
	sinkEnd := nodes[sink].End
	lf := make([]time.Duration, len(nodes))
	for i := range lf {
		lf[i] = sinkEnd
	}
	for i := len(nodes) - 1; i >= 0; i-- {
		ls := lf[i] - (nodes[i].End - nodes[i].Start)
		for _, d := range nodes[i].Deps {
			if ls < lf[d] {
				lf[d] = ls
			}
		}
	}
	for i, n := range nodes {
		rep.Slack[i] = lf[i] - n.End
		if n.Attempts > 1 {
			rep.Retried++
		}
		if n.Speculative {
			rep.SpeculativeWins++
		}
	}
	return rep, nil
}

// PhaseSummary is the JSON-friendly form of a Phase.
type PhaseSummary struct {
	Kind string  `json:"kind"`
	Sec  float64 `json:"sec"`
}

// Summary is a compact, JSON-friendly digest of a Report, for embedding
// in benchmark records. Phase seconds sum to the makespan.
type Summary struct {
	MakespanSec     float64        `json:"makespan_sec"`
	WaitSec         float64        `json:"wait_sec"`
	RunSec          float64        `json:"run_sec"`
	Steps           int            `json:"steps"`
	Retried         int            `json:"retried"`
	SpeculativeWins int            `json:"speculative_wins"`
	Phases          []PhaseSummary `json:"phases"`
}

// Summary digests the report.
func (r *Report) Summary() Summary {
	s := Summary{
		MakespanSec:     r.Makespan.Seconds(),
		WaitSec:         r.Wait.Seconds(),
		RunSec:          r.Run.Seconds(),
		Steps:           len(r.Steps),
		Retried:         r.Retried,
		SpeculativeWins: r.SpeculativeWins,
	}
	for _, p := range r.Phases {
		s.Phases = append(s.Phases, PhaseSummary{Kind: p.Kind, Sec: p.Total.Seconds()})
	}
	return s
}
