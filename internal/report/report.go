// Package report renders a self-contained HTML "observatory" for one
// simulation run: utilization and power timelines, a per-machine
// swimlane of placements and migrations, the scheduler's decision audit
// log, and per-job critical-path breakdowns. Everything — styles,
// scripts, SVG charts — is inlined, so the file opens offline with no
// external assets, and every number is derived from simulated state, so
// a fixed seed produces a byte-identical report.
package report

import (
	"bytes"
	"fmt"
	"html"
	"io"
	"sort"
	"strings"
	"time"

	"repro/internal/audit"
	"repro/internal/critpath"
	"repro/internal/metrics"
	"repro/internal/perfstat"
	"repro/internal/resource"
	"repro/internal/timeseries"
	"repro/internal/trace"
)

// Rendering caps keep reports loadable for long runs. Truncation is
// always called out in the rendered section header, never silent.
const (
	maxAuditRows  = 2000
	maxLaneEvents = 4000
)

// JobPath pairs a job with its critical-path digest.
type JobPath struct {
	Name string
	Path critpath.Summary
}

// Data is everything the observatory renders. Any field may be empty;
// the corresponding view then states that nothing was recorded instead
// of disappearing, so a report always shows all four views.
type Data struct {
	// Title heads the report, e.g. "quickstart" or "job: Sort".
	Title string
	// Seed is the simulation seed the run used.
	Seed int64
	// SimEnd is the simulated instant the run finished.
	SimEnd time.Duration
	// Samples is the utilization/power series from a metrics.Recorder.
	Samples []metrics.Sample
	// EnergyWh is the recorder's integrated energy.
	EnergyWh float64
	// Events are the run's trace events (placements, tasks, migrations,
	// power transitions) for the swimlane.
	Events []trace.Event
	// Audit holds the scheduler's decision records, oldest first, and
	// AuditDropped how many the ring buffer discarded before them.
	Audit        []audit.Record
	AuditDropped uint64
	// Metrics is the run's metrics-registry snapshot.
	Metrics trace.Snapshot
	// Perf is the run's performance-attribution snapshot: algorithmic
	// cost counters and the hierarchical span tree. The rendered section
	// shows counters and span hit counts only — span wall-clock times are
	// deliberately left out so the report stays byte-identical for a
	// fixed seed (they live in PERF.json's wall section instead).
	Perf *perfstat.Snapshot
	// Jobs holds one critical-path digest per completed job.
	Jobs []JobPath
	// TimeSeries holds the run's windowed telemetry snapshots (from a
	// timeseries.Collector); one chart renders per series name.
	TimeSeries []timeseries.SeriesSnapshot
	// SLO and SLORows carry the SLO engine's summary and per-window
	// evaluations for the burn panel.
	SLO     *timeseries.SLOReport
	SLORows []timeseries.WindowEval
	// Search holds policy-search candidates when the report accompanies a
	// SEARCH.json sweep (hybridmr-bench -policy-search -search-report);
	// the section is omitted entirely for ordinary runs. The winner's
	// decision trail lands in Audit, so the frontier links back to the
	// audit table below.
	Search []SearchPoint
}

// SearchPoint is one policy-search candidate: the canonical policy
// string, the three minimized objectives, and its frontier standing.
type SearchPoint struct {
	Policy           string
	MeanJCTSec       float64
	EnergyWh         float64
	SLAViolationRate float64
	Pareto           bool
	Winner           bool
}

// Write renders the observatory to w as a single HTML document.
func Write(w io.Writer, d Data) error {
	var b bytes.Buffer
	head(&b, d)
	timeline(&b, d)
	timeSeriesSection(&b, d)
	sloSection(&b, d)
	searchSection(&b, d)
	swimlane(&b, d)
	critPaths(&b, d)
	perfSection(&b, d)
	faultSection(&b, d)
	auditTable(&b, d)
	metricsTables(&b, d)
	b.WriteString("</body></html>\n")
	_, err := w.Write(b.Bytes())
	return err
}

const style = `body{font:14px/1.45 system-ui,sans-serif;margin:24px auto;max-width:960px;color:#1a2230;background:#fff}
h1{font-size:20px}h2{font-size:16px;border-bottom:1px solid #d6dbe4;padding-bottom:4px;margin-top:32px}
table{border-collapse:collapse;width:100%;font-size:13px}
th,td{text-align:left;padding:3px 8px;border-bottom:1px solid #edf0f4;vertical-align:top}
th{background:#f4f6f9;position:sticky;top:0}
.num{text-align:right;font-variant-numeric:tabular-nums}
.dim{color:#78818f}.mono{font-family:ui-monospace,monospace;font-size:12px}
svg{display:block;background:#fafbfc;border:1px solid #e4e8ee;border-radius:4px}
input#af{width:100%;box-sizing:border-box;padding:6px 8px;margin:8px 0;border:1px solid #c9d0da;border-radius:4px;font:inherit}
.legend span{display:inline-block;margin-right:14px;font-size:12px}
.legend i{display:inline-block;width:10px;height:10px;border-radius:2px;margin-right:4px}`

// palette colors categories and phases; assignment is by sorted-name
// index, so it never depends on event order.
var palette = []string{"#3f72cf", "#d98f2b", "#4da06a", "#c55a5a", "#8a6fc9", "#4aa3b8", "#b0649b", "#7d8a49"}

func esc(s string) string { return html.EscapeString(s) }

func fsec(d time.Duration) string { return fmt.Sprintf("%.1f", d.Seconds()) }

func head(b *bytes.Buffer, d Data) {
	fmt.Fprintf(b, "<!DOCTYPE html>\n<html lang=\"en\"><head><meta charset=\"utf-8\">\n<title>HybridMR observatory — %s</title>\n<style>%s</style>\n</head><body>\n", esc(d.Title), style)
	fmt.Fprintf(b, "<h1>HybridMR observatory — %s</h1>\n", esc(d.Title))
	fmt.Fprintf(b, "<p class=\"dim\">seed %d · %ss simulated · %d trace events · %d audit records · %d jobs profiled",
		d.Seed, fsec(d.SimEnd), len(d.Events), len(d.Audit), len(d.Jobs))
	if d.EnergyWh > 0 {
		fmt.Fprintf(b, " · %.1f Wh", d.EnergyWh)
	}
	b.WriteString("</p>\n")
}

// timeline renders mean utilization per resource and total power /
// powered-on PMs over simulated time.
func timeline(b *bytes.Buffer, d Data) {
	b.WriteString("<h2>Utilization &amp; power timeline</h2>\n")
	if len(d.Samples) == 0 {
		b.WriteString("<p class=\"dim\">no utilization samples recorded for this run</p>\n")
		return
	}
	const w, h, pad = 920.0, 150.0, 30.0
	end := d.Samples[len(d.Samples)-1].At
	if end <= 0 {
		end = time.Second
	}
	x := func(t time.Duration) float64 { return pad + (w-2*pad)*float64(t)/float64(end) }

	// Utilization: one polyline per resource kind, y in [0,1].
	kinds := resource.Kinds()
	b.WriteString("<div class=\"legend\">")
	for i, k := range kinds {
		fmt.Fprintf(b, "<span><i style=\"background:%s\"></i>%s</span>", palette[i%len(palette)], esc(k.String()))
	}
	b.WriteString("</div>\n")
	fmt.Fprintf(b, "<svg width=\"%.0f\" height=\"%.0f\" viewBox=\"0 0 %.0f %.0f\">\n", w, h, w, h)
	axes(b, w, h, pad, end, "util")
	for i, k := range kinds {
		var pts strings.Builder
		for _, s := range d.Samples {
			u := s.Util.Get(k)
			fmt.Fprintf(&pts, "%.1f,%.1f ", x(s.At), h-pad-(h-2*pad)*u)
		}
		fmt.Fprintf(b, "<polyline points=\"%s\" fill=\"none\" stroke=\"%s\" stroke-width=\"1.5\"/>\n",
			strings.TrimSpace(pts.String()), palette[i%len(palette)])
	}
	b.WriteString("</svg>\n")

	// Power: watts polyline plus PMs-on step line scaled to the chart.
	maxW, maxOn := 1.0, 1
	for _, s := range d.Samples {
		if s.PowerW > maxW {
			maxW = s.PowerW
		}
		if s.PMsOn > maxOn {
			maxOn = s.PMsOn
		}
	}
	fmt.Fprintf(b, "<div class=\"legend\"><span><i style=\"background:%s\"></i>power (max %.0f W)</span><span><i style=\"background:%s\"></i>PMs on (max %d)</span></div>\n",
		palette[3], maxW, palette[2], maxOn)
	fmt.Fprintf(b, "<svg width=\"%.0f\" height=\"%.0f\" viewBox=\"0 0 %.0f %.0f\">\n", w, h, w, h)
	axes(b, w, h, pad, end, "power")
	var pw, on strings.Builder
	for _, s := range d.Samples {
		fmt.Fprintf(&pw, "%.1f,%.1f ", x(s.At), h-pad-(h-2*pad)*s.PowerW/maxW)
		fmt.Fprintf(&on, "%.1f,%.1f ", x(s.At), h-pad-(h-2*pad)*float64(s.PMsOn)/float64(maxOn))
	}
	fmt.Fprintf(b, "<polyline points=\"%s\" fill=\"none\" stroke=\"%s\" stroke-width=\"1.5\"/>\n", strings.TrimSpace(pw.String()), palette[3])
	fmt.Fprintf(b, "<polyline points=\"%s\" fill=\"none\" stroke=\"%s\" stroke-width=\"1.5\" stroke-dasharray=\"4 3\"/>\n", strings.TrimSpace(on.String()), palette[2])
	b.WriteString("</svg>\n")
}

// axes draws the chart frame and time ticks shared by both timelines.
func axes(b *bytes.Buffer, w, h, pad float64, end time.Duration, kind string) {
	fmt.Fprintf(b, "<rect x=\"%.0f\" y=\"%.0f\" width=\"%.0f\" height=\"%.0f\" fill=\"none\" stroke=\"#c9d0da\"/>\n",
		pad, pad, w-2*pad, h-2*pad)
	for i := 0; i <= 4; i++ {
		t := time.Duration(float64(end) * float64(i) / 4)
		xx := pad + (w-2*pad)*float64(i)/4
		fmt.Fprintf(b, "<text x=\"%.1f\" y=\"%.0f\" font-size=\"10\" fill=\"#78818f\" text-anchor=\"middle\">%ss</text>\n",
			xx, h-pad+14, fsec(t))
	}
	if kind == "util" {
		fmt.Fprintf(b, "<text x=\"%.0f\" y=\"%.0f\" font-size=\"10\" fill=\"#78818f\">100%%</text>\n", 2.0, pad+4)
		fmt.Fprintf(b, "<text x=\"%.0f\" y=\"%.0f\" font-size=\"10\" fill=\"#78818f\">0%%</text>\n", 2.0, h-pad)
	}
}

// timeSeriesSection renders one chart per windowed series name: a
// polyline per label, the y-axis scaled to the series' maximum value
// (rate for counters, mean for gauges, p99 for histograms).
func timeSeriesSection(b *bytes.Buffer, d Data) {
	b.WriteString("<h2>Windowed time series</h2>\n")
	if len(d.TimeSeries) == 0 {
		b.WriteString("<p class=\"dim\">no windowed telemetry recorded for this run (enable with -timeseries)</p>\n")
		return
	}
	// Group label streams under their series name; snapshots arrive in
	// (name, label) order, so grouping preserves determinism.
	type group struct {
		name    string
		kind    timeseries.Kind
		streams []timeseries.SeriesSnapshot
	}
	var groups []group
	for _, s := range d.TimeSeries {
		if n := len(groups); n > 0 && groups[n-1].name == s.Name {
			groups[n-1].streams = append(groups[n-1].streams, s)
			continue
		}
		groups = append(groups, group{name: s.Name, kind: s.Kind, streams: []timeseries.SeriesSnapshot{s}})
	}

	const w, h, pad = 920.0, 110.0, 26.0
	var end time.Duration
	for _, g := range groups {
		for _, s := range g.streams {
			if n := len(s.Points); n > 0 && s.Points[n-1].End > end {
				end = s.Points[n-1].End
			}
		}
	}
	if end <= 0 {
		end = time.Second
	}
	for _, g := range groups {
		maxV := 0.0
		for _, s := range g.streams {
			for _, p := range s.Points {
				if v := p.Value(g.kind); v > maxV {
					maxV = v
				}
			}
		}
		if maxV <= 0 {
			maxV = 1
		}
		unit := map[timeseries.Kind]string{
			timeseries.KindCounter: "rate/s", timeseries.KindGauge: "mean", timeseries.KindHist: "p99",
		}[g.kind]
		fmt.Fprintf(b, "<p><b class=\"mono\">%s</b> <span class=\"dim\">(%s %s, max %.4g)</span>", esc(g.name), g.kind, unit, maxV)
		if len(g.streams) > 1 || g.streams[0].Label != "" {
			b.WriteString(" <span class=\"legend\">")
			for i, s := range g.streams {
				label := s.Label
				if label == "" {
					label = "(all)"
				}
				fmt.Fprintf(b, "<span><i style=\"background:%s\"></i>%s</span>", palette[i%len(palette)], esc(label))
			}
			b.WriteString("</span>")
		}
		b.WriteString("</p>\n")
		fmt.Fprintf(b, "<svg width=\"%.0f\" height=\"%.0f\" viewBox=\"0 0 %.0f %.0f\">\n", w, h, w, h)
		axes(b, w, h, pad, end, "ts")
		for i, s := range g.streams {
			var pts strings.Builder
			for _, p := range s.Points {
				mid := p.Start + (p.End-p.Start)/2
				xx := pad + (w-2*pad)*float64(mid)/float64(end)
				yy := h - pad - (h-2*pad)*p.Value(g.kind)/maxV
				fmt.Fprintf(&pts, "%.1f,%.1f ", xx, yy)
			}
			fmt.Fprintf(b, "<polyline points=\"%s\" fill=\"none\" stroke=\"%s\" stroke-width=\"1.5\"/>\n",
				strings.TrimSpace(pts.String()), palette[i%len(palette)])
		}
		b.WriteString("</svg>\n")
	}
}

// sloSection renders the SLO burn panel: the per-objective budget table
// and, per objective, a window strip colored by alert state — green for
// clean windows, amber for ticket-level burn, red for page-level burn —
// so a deterministic chaos alert is visible at a glance.
func sloSection(b *bytes.Buffer, d Data) {
	b.WriteString("<h2>SLO error budgets &amp; burn-rate alerts</h2>\n")
	if d.SLO == nil || len(d.SLO.Objectives) == 0 {
		b.WriteString("<p class=\"dim\">no SLOs evaluated for this run (enable with -slo)</p>\n")
		return
	}
	fmt.Fprintf(b, "<p class=\"dim\">%d window(s) of %.0fs · %d page(s) · %d ticket(s)</p>\n",
		d.SLO.Windows, d.SLO.WindowS, d.SLO.Pages, d.SLO.Tickets)
	b.WriteString("<table><thead><tr><th>objective</th><th>condition</th><th class=\"num\">target</th><th class=\"num\">bad windows</th><th class=\"num\">budget consumed</th><th class=\"num\">first breach</th><th>alerts</th><th>verdict</th></tr></thead><tbody>\n")
	for _, o := range d.SLO.Objectives {
		cond := fmt.Sprintf("%s{%s} %s %s %g", o.Objective.Series, o.Objective.Label, o.Objective.Agg, o.Objective.Op, o.Objective.Threshold)
		breach := "—"
		if o.FirstBreachS >= 0 {
			breach = fmt.Sprintf("%.0fs", o.FirstBreachS)
		}
		var alerts []string
		for _, a := range o.Alerts {
			alerts = append(alerts, fmt.Sprintf("%s @%.0f–%.0fs (burn %.1f)", a.Severity, a.StartS, a.EndS, a.PeakBurn))
		}
		alertCell := "<span class=\"dim\">none</span>"
		if len(alerts) > 0 {
			alertCell = esc(strings.Join(alerts, "; "))
		}
		verdict := "<b style=\"color:#4da06a\">met</b>"
		if !o.Met {
			verdict = "<b style=\"color:#c55a5a\">missed</b>"
		}
		fmt.Fprintf(b, "<tr><td>%s</td><td class=\"mono\">%s</td><td class=\"num\">%.2f</td><td class=\"num\">%d/%d</td><td class=\"num\">%.0f%%</td><td class=\"num\">%s</td><td>%s</td><td>%s</td></tr>\n",
			esc(o.Objective.Name), esc(cond), o.Objective.Target, o.BadWindows, o.Windows,
			o.BudgetConsumed*100, breach, alertCell, verdict)
	}
	b.WriteString("</tbody></table>\n")

	if len(d.SLORows) == 0 {
		return
	}
	// Burn strips: one row of window cells per objective.
	byObj := map[string][]timeseries.WindowEval{}
	var objOrder []string
	for _, r := range d.SLORows {
		if _, ok := byObj[r.Objective]; !ok {
			objOrder = append(objOrder, r.Objective)
		}
		byObj[r.Objective] = append(byObj[r.Objective], r)
	}
	const w, cellH, labelW = 920.0, 16.0, 180.0
	h := 8 + (cellH+6)*float64(len(objOrder))
	fmt.Fprintf(b, "<svg width=\"%.0f\" height=\"%.0f\" viewBox=\"0 0 %.0f %.0f\">\n", w, h, w, h)
	for oi, name := range objOrder {
		rows := byObj[name]
		y := 8 + (cellH+6)*float64(oi)
		fmt.Fprintf(b, "<text x=\"4\" y=\"%.1f\" font-size=\"11\">%s</text>\n", y+cellH-4, esc(name))
		cw := (w - labelW - 10) / float64(len(rows))
		for i, r := range rows {
			fill := "#dfe9df"
			switch {
			case r.Alert == "page":
				fill = "#c55a5a"
			case r.Alert == "ticket":
				fill = "#d98f2b"
			case r.GoodFrac < 1:
				fill = "#e8d9a8"
			}
			title := fmt.Sprintf("%s w%d [%.0f–%.0fs): good %.2f, burn fast %.1f / slow %.1f %s",
				name, r.Window, r.StartS, r.EndS, r.GoodFrac, r.BurnFast, r.BurnSlow, r.Alert)
			fmt.Fprintf(b, "<rect x=\"%.1f\" y=\"%.1f\" width=\"%.1f\" height=\"%.0f\" fill=\"%s\"><title>%s</title></rect>\n",
				labelW+cw*float64(i), y, cw-1, cellH, fill, esc(title))
		}
	}
	b.WriteString("</svg>\n")
	b.WriteString("<div class=\"legend\"><span><i style=\"background:#dfe9df\"></i>clean</span><span><i style=\"background:#e8d9a8\"></i>burning</span><span><i style=\"background:#d98f2b\"></i>ticket</span><span><i style=\"background:#c55a5a\"></i>page</span></div>\n")
}

// searchSection renders the policy-search sweep: an energy-vs-JCT
// scatter with the Pareto frontier highlighted, and the candidate table.
// Like faultSection it renders nothing at all for runs without a sweep —
// ordinary simulation reports carry no search data.
func searchSection(b *bytes.Buffer, d Data) {
	if len(d.Search) == 0 {
		return
	}
	b.WriteString("<h2>Policy search — Pareto frontier</h2>\n")
	frontier := 0
	for _, p := range d.Search {
		if p.Pareto {
			frontier++
		}
	}
	fmt.Fprintf(b, "<p class=\"dim\">%d candidate(s), %d on the frontier; the winner's decision trail is in the audit table below</p>\n",
		len(d.Search), frontier)

	// Scatter: x = mean JCT, y = energy; both minimized, so better is
	// down-left. SLA shows in the hover title.
	minX, maxX := d.Search[0].MeanJCTSec, d.Search[0].MeanJCTSec
	minY, maxY := d.Search[0].EnergyWh, d.Search[0].EnergyWh
	for _, p := range d.Search {
		minX, maxX = min(minX, p.MeanJCTSec), max(maxX, p.MeanJCTSec)
		minY, maxY = min(minY, p.EnergyWh), max(maxY, p.EnergyWh)
	}
	if maxX <= minX {
		maxX = minX + 1
	}
	if maxY <= minY {
		maxY = minY + 1
	}
	const w, h, pad = 920.0, 220.0, 40.0
	sx := func(v float64) float64 { return pad + (w-2*pad)*(v-minX)/(maxX-minX) }
	sy := func(v float64) float64 { return h - pad - (h-2*pad)*(v-minY)/(maxY-minY) }
	fmt.Fprintf(b, "<svg width=\"%.0f\" height=\"%.0f\" viewBox=\"0 0 %.0f %.0f\">\n", w, h, w, h)
	fmt.Fprintf(b, "<rect x=\"%.0f\" y=\"%.0f\" width=\"%.0f\" height=\"%.0f\" fill=\"none\" stroke=\"#c9d0da\"/>\n",
		pad, pad, w-2*pad, h-2*pad)
	fmt.Fprintf(b, "<text x=\"%.0f\" y=\"%.0f\" font-size=\"10\" fill=\"#78818f\" text-anchor=\"middle\">mean JCT %.0f–%.0fs</text>\n",
		w/2, h-8, minX, maxX)
	fmt.Fprintf(b, "<text x=\"%.0f\" y=\"%.0f\" font-size=\"10\" fill=\"#78818f\">%.0f–%.0f Wh</text>\n",
		2.0, pad+4, minY, maxY)
	for _, p := range d.Search {
		fill, r := "#a9b2bf", 4.0
		if p.Pareto {
			fill, r = palette[0], 5.0
		}
		title := fmt.Sprintf("%s: jct %.1fs, %.1f Wh, sla-viol %.3f", p.Policy, p.MeanJCTSec, p.EnergyWh, p.SLAViolationRate)
		fmt.Fprintf(b, "<circle cx=\"%.1f\" cy=\"%.1f\" r=\"%.0f\" fill=\"%s\" fill-opacity=\"0.85\"><title>%s</title></circle>\n",
			sx(p.MeanJCTSec), sy(p.EnergyWh), r, fill, esc(title))
		if p.Winner {
			fmt.Fprintf(b, "<circle cx=\"%.1f\" cy=\"%.1f\" r=\"9\" fill=\"none\" stroke=\"%s\" stroke-width=\"2\"/>\n",
				sx(p.MeanJCTSec), sy(p.EnergyWh), palette[3])
		}
	}
	b.WriteString("</svg>\n")
	fmt.Fprintf(b, "<div class=\"legend\"><span><i style=\"background:%s\"></i>Pareto-optimal</span><span><i style=\"background:#a9b2bf\"></i>dominated</span><span><i style=\"background:%s\"></i>winner (ring)</span></div>\n",
		palette[0], palette[3])

	b.WriteString("<table><thead><tr><th>policy</th><th class=\"num\">mean JCT (s)</th><th class=\"num\">energy (Wh)</th><th class=\"num\">SLA violation</th><th>standing</th></tr></thead><tbody>\n")
	for _, p := range d.Search {
		standing := "<span class=\"dim\">dominated</span>"
		switch {
		case p.Winner:
			standing = "<b>winner</b>"
		case p.Pareto:
			standing = "frontier"
		}
		fmt.Fprintf(b, "<tr><td class=\"mono\">%s</td><td class=\"num\">%.1f</td><td class=\"num\">%.1f</td><td class=\"num\">%.3f</td><td>%s</td></tr>\n",
			esc(p.Policy), p.MeanJCTSec, p.EnergyWh, p.SLAViolationRate, standing)
	}
	b.WriteString("</tbody></table>\n")
}

// swimlane renders one lane per trace track (PMs, VMs, jobs, services):
// spans as bars colored by category, instants as ticks.
func swimlane(b *bytes.Buffer, d Data) {
	b.WriteString("<h2>Placement &amp; migration swimlane</h2>\n")
	if len(d.Events) == 0 {
		b.WriteString("<p class=\"dim\">no trace events recorded for this run</p>\n")
		return
	}
	events := d.Events
	truncated := 0
	if len(events) > maxLaneEvents {
		truncated = len(events) - maxLaneEvents
		events = events[:maxLaneEvents]
	}

	byTrack := map[string][]trace.Event{}
	catSet := map[string]bool{}
	var end time.Duration
	for _, ev := range events {
		byTrack[ev.Track] = append(byTrack[ev.Track], ev)
		catSet[ev.Category] = true
		if t := ev.Start + ev.Duration; t > end {
			end = t
		}
	}
	if end <= 0 {
		end = time.Second
	}
	tracks := make([]string, 0, len(byTrack))
	for t := range byTrack {
		tracks = append(tracks, t)
	}
	sort.Strings(tracks)
	cats := make([]string, 0, len(catSet))
	for c := range catSet {
		cats = append(cats, c)
	}
	sort.Strings(cats)
	color := func(cat string) string {
		for i, c := range cats {
			if c == cat {
				return palette[i%len(palette)]
			}
		}
		return palette[0]
	}

	b.WriteString("<div class=\"legend\">")
	for _, c := range cats {
		fmt.Fprintf(b, "<span><i style=\"background:%s\"></i>%s</span>", color(c), esc(c))
	}
	b.WriteString("</div>\n")
	if truncated > 0 {
		fmt.Fprintf(b, "<p class=\"dim\">showing the first %d of %d events (%d truncated)</p>\n",
			maxLaneEvents, len(d.Events), truncated)
	}

	const w, pad, laneH = 920.0, 30.0, 20.0
	const labelW = 110.0
	h := pad + laneH*float64(len(tracks)) + pad
	x := func(t time.Duration) float64 { return labelW + (w-labelW-pad)*float64(t)/float64(end) }
	fmt.Fprintf(b, "<svg width=\"%.0f\" height=\"%.0f\" viewBox=\"0 0 %.0f %.0f\">\n", w, h, w, h)
	for li, track := range tracks {
		y := pad + laneH*float64(li)
		fmt.Fprintf(b, "<text x=\"4\" y=\"%.1f\" font-size=\"11\" fill=\"#1a2230\">%s</text>\n", y+laneH-7, esc(track))
		fmt.Fprintf(b, "<line x1=\"%.0f\" y1=\"%.1f\" x2=\"%.0f\" y2=\"%.1f\" stroke=\"#edf0f4\"/>\n",
			labelW, y+laneH, w-pad, y+laneH)
		for _, ev := range byTrack[track] {
			title := fmt.Sprintf("%s/%s %s @%ss", ev.Category, ev.Name, track, fsec(ev.Start))
			if ev.Instant {
				fmt.Fprintf(b, "<line x1=\"%.1f\" y1=\"%.1f\" x2=\"%.1f\" y2=\"%.1f\" stroke=\"%s\" stroke-width=\"2\"><title>%s</title></line>\n",
					x(ev.Start), y+3, x(ev.Start), y+laneH-3, color(ev.Category), esc(title))
				continue
			}
			x0, x1 := x(ev.Start), x(ev.Start+ev.Duration)
			if x1-x0 < 1 {
				x1 = x0 + 1
			}
			fmt.Fprintf(b, "<rect x=\"%.1f\" y=\"%.1f\" width=\"%.1f\" height=\"%.1f\" fill=\"%s\" fill-opacity=\"0.75\"><title>%s (%ss)</title></rect>\n",
				x0, y+4, x1-x0, laneH-8, color(ev.Category), esc(title), fsec(ev.Duration))
		}
	}
	b.WriteString("</svg>\n")
}

// critPaths renders each job's critical path as a phase-stacked bar plus
// wait/run and straggler attribution.
func critPaths(b *bytes.Buffer, d Data) {
	b.WriteString("<h2>Per-job critical paths</h2>\n")
	if len(d.Jobs) == 0 {
		b.WriteString("<p class=\"dim\">no completed jobs to profile</p>\n")
		return
	}
	// Phase colors by sorted kind name across all jobs, so the same
	// phase gets the same color in every bar.
	kindSet := map[string]bool{}
	for _, j := range d.Jobs {
		for _, p := range j.Path.Phases {
			kindSet[p.Kind] = true
		}
	}
	kinds := make([]string, 0, len(kindSet))
	for k := range kindSet {
		kinds = append(kinds, k)
	}
	sort.Strings(kinds)
	color := func(kind string) string {
		for i, k := range kinds {
			if k == kind {
				return palette[i%len(palette)]
			}
		}
		return palette[0]
	}
	b.WriteString("<div class=\"legend\">")
	for _, k := range kinds {
		fmt.Fprintf(b, "<span><i style=\"background:%s\"></i>%s</span>", color(k), esc(k))
	}
	b.WriteString("</div>\n")

	const w, barH = 920.0, 26.0
	const labelW = 110.0
	for _, j := range d.Jobs {
		mk := j.Path.MakespanSec
		if mk <= 0 {
			mk = 1
		}
		fmt.Fprintf(b, "<p><b>%s</b> — makespan %.1fs (%.1fs waiting, %.1fs running, %d steps; %d retried, %d speculative wins)</p>\n",
			esc(j.Name), j.Path.MakespanSec, j.Path.WaitSec, j.Path.RunSec,
			j.Path.Steps, j.Path.Retried, j.Path.SpeculativeWins)
		fmt.Fprintf(b, "<svg width=\"%.0f\" height=\"%.0f\" viewBox=\"0 0 %.0f %.0f\">\n", w, barH+8, w, barH+8)
		fmt.Fprintf(b, "<text x=\"4\" y=\"%.0f\" font-size=\"11\">%s</text>\n", barH-7, esc(j.Name))
		xx := labelW
		for _, p := range j.Path.Phases {
			seg := (w - labelW - 10) * p.Sec / mk
			if seg < 0 {
				seg = 0
			}
			fmt.Fprintf(b, "<rect x=\"%.1f\" y=\"4\" width=\"%.1f\" height=\"%.0f\" fill=\"%s\" fill-opacity=\"0.8\"><title>%s: %.1fs (%.0f%%)</title></rect>\n",
				xx, seg, barH-8, color(p.Kind), esc(p.Kind), p.Sec, p.Sec/mk*100)
			xx += seg
		}
		b.WriteString("</svg>\n")
	}
}

// perfSection renders the performance-attribution snapshot: the
// algorithmic cost counters (exact event tallies, grouped by subsystem)
// and the hierarchical span tree with hit counts. Span wall-clock times
// are omitted on purpose — see the Data.Perf doc.
func perfSection(b *bytes.Buffer, d Data) {
	b.WriteString("<h2>Performance attribution</h2>\n")
	if d.Perf == nil {
		b.WriteString("<p class=\"dim\">no performance attribution recorded for this run</p>\n")
		return
	}
	names := make([]string, 0, len(d.Perf.Counters))
	for name := range d.Perf.Counters {
		names = append(names, name)
	}
	sort.Strings(names)
	b.WriteString("<table><thead><tr><th>cost counter</th><th class=\"num\">value</th></tr></thead><tbody>\n")
	for _, name := range names {
		fmt.Fprintf(b, "<tr><td class=\"mono\">%s</td><td class=\"num\">%d</td></tr>\n", esc(name), d.Perf.Counters[name])
	}
	b.WriteString("</tbody></table>\n")
	if len(d.Perf.Spans) == 0 {
		b.WriteString("<p class=\"dim\">no wall-time spans recorded</p>\n")
		return
	}
	b.WriteString("<p class=\"dim\">span hit counts; wall-clock times are excluded to keep the report byte-deterministic (run with -scale-sweep or -metrics for timings)</p>\n")
	b.WriteString("<table><thead><tr><th>span</th><th class=\"num\">entries</th></tr></thead><tbody>\n")
	var walk func(spans []perfstat.SpanSnapshot, depth int)
	walk = func(spans []perfstat.SpanSnapshot, depth int) {
		for _, s := range spans {
			fmt.Fprintf(b, "<tr><td class=\"mono\">%s%s</td><td class=\"num\">%d</td></tr>\n",
				strings.Repeat("&nbsp;&nbsp;", depth), esc(s.Name), s.Count)
			walk(s.Children, depth+1)
		}
	}
	walk(d.Perf.Spans, 0)
	b.WriteString("</tbody></table>\n")
}

// auditTable renders the decision log with a client-side substring
// filter (type a job, PM or subsystem name to narrow the rows).
func auditTable(b *bytes.Buffer, d Data) {
	b.WriteString("<h2>Scheduler decision audit log</h2>\n")
	if len(d.Audit) == 0 {
		b.WriteString("<p class=\"dim\">no audit records for this run</p>\n")
		return
	}
	if d.AuditDropped > 0 {
		fmt.Fprintf(b, "<p class=\"dim\">ring buffer dropped the oldest %d records before these</p>\n", d.AuditDropped)
	}
	rows := d.Audit
	if len(rows) > maxAuditRows {
		fmt.Fprintf(b, "<p class=\"dim\">showing the first %d of %d retained records</p>\n", maxAuditRows, len(rows))
		rows = rows[:maxAuditRows]
	}
	b.WriteString("<input id=\"af\" type=\"text\" placeholder=\"filter rows — e.g. a job name, pm-3, drm, speculate\" oninput=\"aflt(this.value)\">\n")
	b.WriteString("<table id=\"at\"><thead><tr><th class=\"num\">seq</th><th class=\"num\">t (s)</th><th>subsystem</th><th>action</th><th>subject</th><th>decision</th><th>reason &amp; candidates</th></tr></thead><tbody>\n")
	for _, r := range rows {
		reason := esc(r.Reason)
		if len(r.Candidates) > 0 {
			var cs []string
			for _, c := range r.Candidates {
				mark := ""
				if c.Chosen {
					mark = " ✓"
				}
				cs = append(cs, fmt.Sprintf("%s %.2f%s", esc(c.Name), c.Score, mark))
			}
			reason += " <span class=\"dim mono\">[" + strings.Join(cs, " · ") + "]</span>"
		}
		fmt.Fprintf(b, "<tr><td class=\"num\">%d</td><td class=\"num\">%.2f</td><td>%s</td><td>%s</td><td>%s</td><td>%s</td><td>%s</td></tr>\n",
			r.Seq, r.At.Seconds(), esc(r.Subsystem), esc(r.Action), esc(r.Subject), esc(r.Decision), reason)
	}
	b.WriteString("</tbody></table>\n")
	b.WriteString(`<script>function aflt(q){q=q.toLowerCase();for(const tr of document.querySelectorAll('#at tbody tr')){tr.style.display=tr.textContent.toLowerCase().includes(q)?'':'none';}}</script>
`)
}

// metricsTables renders the registry snapshot: counters, gauges and
// histogram quantiles in sorted order.
// faultSection breaks injected faults down by kind (the
// fault.injections_by_kind.* counters), alongside the retarget count —
// rate-drawn injections whose victim was already dead and that were
// redirected to the next live target. Runs without a fault injector (no
// matching counters) render no section at all.
func faultSection(b *bytes.Buffer, d Data) {
	const prefix = "fault.injections_by_kind."
	kinds := make([]string, 0, 4)
	for k := range d.Metrics.Counters {
		if strings.HasPrefix(k, prefix) && d.Metrics.Counters[k] > 0 {
			kinds = append(kinds, k)
		}
	}
	if len(kinds) == 0 {
		return
	}
	sort.Strings(kinds)
	b.WriteString("<h2>Fault injections</h2>\n")
	total := 0.0
	for _, k := range kinds {
		total += d.Metrics.Counters[k]
	}
	retargets := d.Metrics.Counters["fault.retargets"]
	fmt.Fprintf(b, "<p class=\"dim\">%g injection(s) total · %g rate-drawn draw(s) retargeted past dead victims</p>\n",
		total, retargets)
	b.WriteString("<table><thead><tr><th>kind</th><th class=\"num\">injections</th></tr></thead><tbody>\n")
	for _, k := range kinds {
		fmt.Fprintf(b, "<tr><td class=\"mono\">%s</td><td class=\"num\">%g</td></tr>\n",
			esc(strings.TrimPrefix(k, prefix)), d.Metrics.Counters[k])
	}
	b.WriteString("</tbody></table>\n")
}

func metricsTables(b *bytes.Buffer, d Data) {
	b.WriteString("<h2>Metrics registry snapshot</h2>\n")
	s := d.Metrics
	if len(s.Counters) == 0 && len(s.Gauges) == 0 && len(s.Histograms) == 0 {
		b.WriteString("<p class=\"dim\">no metrics recorded for this run</p>\n")
		return
	}
	sortedKeys := func(n int, each func(func(string))) []string {
		keys := make([]string, 0, n)
		each(func(k string) { keys = append(keys, k) })
		sort.Strings(keys)
		return keys
	}
	if len(s.Counters) > 0 || len(s.Gauges) > 0 {
		b.WriteString("<table><thead><tr><th>metric</th><th class=\"num\">value</th></tr></thead><tbody>\n")
		for _, k := range sortedKeys(len(s.Counters), func(add func(string)) {
			for k := range s.Counters {
				add(k)
			}
		}) {
			fmt.Fprintf(b, "<tr><td class=\"mono\">%s</td><td class=\"num\">%g</td></tr>\n", esc(k), s.Counters[k])
		}
		for _, k := range sortedKeys(len(s.Gauges), func(add func(string)) {
			for k := range s.Gauges {
				add(k)
			}
		}) {
			fmt.Fprintf(b, "<tr><td class=\"mono\">%s <span class=\"dim\">(gauge)</span></td><td class=\"num\">%g</td></tr>\n", esc(k), s.Gauges[k])
		}
		b.WriteString("</tbody></table>\n")
	}
	if len(s.Histograms) > 0 {
		b.WriteString("<table><thead><tr><th>histogram</th><th class=\"num\">count</th><th class=\"num\">mean</th><th class=\"num\">p50</th><th class=\"num\">p95</th><th class=\"num\">p99</th><th class=\"num\">max</th></tr></thead><tbody>\n")
		for _, k := range sortedKeys(len(s.Histograms), func(add func(string)) {
			for k := range s.Histograms {
				add(k)
			}
		}) {
			h := s.Histograms[k]
			fmt.Fprintf(b, "<tr><td class=\"mono\">%s</td><td class=\"num\">%d</td><td class=\"num\">%.3g</td><td class=\"num\">%.3g</td><td class=\"num\">%.3g</td><td class=\"num\">%.3g</td><td class=\"num\">%.3g</td></tr>\n",
				esc(k), h.Count, h.Mean, h.P50, h.P95, h.P99, h.Max)
		}
		b.WriteString("</tbody></table>\n")
	}
}
