package report

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"repro/internal/audit"
	"repro/internal/critpath"
	"repro/internal/metrics"
	"repro/internal/resource"
	"repro/internal/trace"
)

func sampleData() Data {
	reg := trace.NewRegistry()
	reg.Counter("mapred.tasks_completed").Add(42)
	reg.Gauge("cluster.pms_on").Set(7)
	reg.Histogram("mapred.task_sec").Observe(12.5)
	return Data{
		Title:  "test run",
		Seed:   7,
		SimEnd: 90 * time.Second,
		Samples: []metrics.Sample{
			{At: 10 * time.Second, Util: resource.NewVector(0.4, 0.2, 0.1, 0.3), PowerW: 900, PMsOn: 8},
			{At: 20 * time.Second, Util: resource.NewVector(0.7, 0.5, 0.2, 0.6), PowerW: 1200, PMsOn: 8},
			{At: 30 * time.Second, Util: resource.NewVector(0.3, 0.1, 0.1, 0.2), PowerW: 700, PMsOn: 6},
		},
		EnergyWh: 5.5,
		Events: []trace.Event{
			{Track: "pm-0", Category: "task", Name: "m-0", Start: 5 * time.Second, Duration: 8 * time.Second},
			{Track: "vm-1", Category: "migration", Name: "migrate", Start: 12 * time.Second, Duration: 6 * time.Second},
			{Track: "pm-1", Category: "power", Name: "off", Start: 40 * time.Second, Instant: true},
		},
		Audit: []audit.Record{
			{Seq: 1, At: 2 * time.Second, Subsystem: "phase1", Action: "place", Subject: "Sort-1",
				Decision: "native", Reason: "shorter estimated JCT",
				Candidates: []audit.Candidate{{Name: "native", Score: 80, Chosen: true}, {Name: "virtual", Score: 120}}},
			{Seq: 2, At: 3 * time.Second, Subsystem: "mapred", Action: "assign", Subject: "Sort-1/m-0",
				Decision: "tt-pm-0", Reason: "node-local block"},
		},
		Metrics: reg.Snapshot(),
		Jobs: []JobPath{{
			Name: "Sort-1",
			Path: critpath.Summary{
				MakespanSec: 80, WaitSec: 10, RunSec: 70, Steps: 5,
				Phases: []critpath.PhaseSummary{{Kind: "map", Sec: 50}, {Kind: "reduce", Sec: 30}},
			},
		}},
	}
}

func render(t *testing.T, d Data) string {
	t.Helper()
	var b bytes.Buffer
	if err := Write(&b, d); err != nil {
		t.Fatalf("Write: %v", err)
	}
	return b.String()
}

func TestReportRendersAllViews(t *testing.T) {
	out := render(t, sampleData())
	for _, want := range []string{
		"Utilization &amp; power timeline",
		"Placement &amp; migration swimlane",
		"Per-job critical paths",
		"Scheduler decision audit log",
		"Metrics registry snapshot",
		"<polyline",              // timeline series
		"pm-0",                   // swimlane lane
		"shorter estimated JCT",  // audit reason
		"mapred.tasks_completed", // metric counter
		"makespan 80.0s",         // critical-path summary
		"aflt",                   // inline filter script
	} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q", want)
		}
	}
}

func TestReportIsSelfContained(t *testing.T) {
	out := render(t, sampleData())
	for _, banned := range []string{"http://", "https://", "src=", "link rel", "@import"} {
		if strings.Contains(out, banned) {
			t.Errorf("report references external asset: found %q", banned)
		}
	}
}

func TestReportIsDeterministic(t *testing.T) {
	a := render(t, sampleData())
	b := render(t, sampleData())
	if a != b {
		t.Fatal("two renders of identical data differ")
	}
}

func TestReportEmptyDataStillShowsViews(t *testing.T) {
	out := render(t, Data{Title: "empty", Seed: 1})
	for _, want := range []string{
		"no utilization samples recorded",
		"no trace events recorded",
		"no completed jobs to profile",
		"no audit records",
		"no metrics recorded",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("empty report missing %q", want)
		}
	}
}

func TestReportEscapesContent(t *testing.T) {
	d := Data{Title: "<script>alert(1)</script>", Seed: 1}
	out := render(t, d)
	if strings.Contains(out, "<script>alert(1)</script>") {
		t.Fatal("title not escaped")
	}
}

func TestReportCapsAuditRows(t *testing.T) {
	d := Data{Title: "big", Seed: 1}
	for i := 0; i < maxAuditRows+50; i++ {
		d.Audit = append(d.Audit, audit.Record{Seq: uint64(i + 1), Subsystem: "mapred", Action: "assign"})
	}
	out := render(t, d)
	if !strings.Contains(out, "showing the first 2000 of 2050 retained records") {
		t.Error("audit truncation not called out")
	}
	if n := strings.Count(out, "<tr><td class=\"num\">"); n != maxAuditRows {
		t.Errorf("rendered %d audit rows, want %d", n, maxAuditRows)
	}
}
