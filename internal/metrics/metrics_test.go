package metrics

import (
	"math"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/resource"
	"repro/internal/sim"
)

func rig(t *testing.T) (*sim.Engine, *cluster.Cluster, *cluster.PM) {
	t.Helper()
	engine := sim.New()
	c := cluster.New(engine, cluster.DefaultConfig(), 5)
	pm := c.AddPM("pm-0")
	return engine, c, pm
}

func TestRecorderEnergyIdle(t *testing.T) {
	engine, c, _ := rig(t)
	rec := NewRecorder(c, 10*time.Second, time.Hour)
	engine.RunUntil(time.Hour)
	rec.Stop()
	engine.Run()
	// One idle PM at 150 W for 1 h = 150 Wh.
	if got := rec.EnergyWh(); math.Abs(got-150) > 1 {
		t.Errorf("EnergyWh = %v, want ~150", got)
	}
	if got := rec.MeanPowerW(); math.Abs(got-150) > 1 {
		t.Errorf("MeanPowerW = %v, want ~150", got)
	}
}

func TestRecorderBusyEnergyAndUtil(t *testing.T) {
	engine, c, pm := rig(t)
	con := &cluster.Consumer{
		Name:   "busy",
		Demand: resource.NewVector(2, 0, 0, 0),
		Work:   cluster.OpenEnded,
	}
	if err := pm.Start(con); err != nil {
		t.Fatal(err)
	}
	rec := NewRecorder(c, 10*time.Second, time.Hour)
	engine.RunUntil(time.Hour)
	rec.Stop()
	// Fully busy: 250 W for 1 h.
	if got := rec.EnergyWh(); math.Abs(got-250) > 2 {
		t.Errorf("EnergyWh = %v, want ~250", got)
	}
	if got := rec.MeanUtil(resource.CPU); math.Abs(got-1) > 0.01 {
		t.Errorf("MeanUtil(cpu) = %v, want ~1", got)
	}
	if len(rec.Samples()) == 0 {
		t.Fatal("no samples")
	}
	if rec.Samples()[0].PMsOn != 1 {
		t.Errorf("PMsOn = %d, want 1", rec.Samples()[0].PMsOn)
	}
}

func TestRecorderSeries(t *testing.T) {
	engine, c, pm := rig(t)
	engine.After(30*time.Second, func() {
		con := &cluster.Consumer{
			Name:   "late",
			Demand: resource.NewVector(2, 0, 0, 0),
			Work:   cluster.OpenEnded,
		}
		if err := pm.Start(con); err != nil {
			t.Error(err)
		}
	})
	rec := NewRecorder(c, 10*time.Second, 2*time.Minute)
	engine.RunUntil(2 * time.Minute)
	rec.Stop()
	ts, us := rec.Series(resource.CPU)
	if len(ts) != len(us) || len(ts) < 10 {
		t.Fatalf("series lengths %d/%d", len(ts), len(us))
	}
	if us[0] != 0 {
		t.Errorf("utilization before load = %v, want 0", us[0])
	}
	if us[len(us)-1] < 0.99 {
		t.Errorf("utilization after load = %v, want ~1", us[len(us)-1])
	}
}

func TestRecorderStopIdempotent(t *testing.T) {
	engine, c, _ := rig(t)
	rec := NewRecorder(c, 10*time.Second, 0)
	engine.RunUntil(time.Minute)
	rec.Stop()
	rec.Stop()
	n := len(rec.Samples())
	engine.RunUntil(2 * time.Minute)
	if len(rec.Samples()) != n {
		t.Error("recorder sampled after Stop")
	}
}

func TestRecorderHorizonClampsAccounting(t *testing.T) {
	engine, c, _ := rig(t)
	// Ticks at 10 s, 20 s, 30 s — the horizon (25 s) falls between ticks.
	rec := NewRecorder(c, 10*time.Second, 25*time.Second)
	engine.RunUntil(40 * time.Second)

	samples := rec.Samples()
	if len(samples) == 0 {
		t.Fatal("no samples")
	}
	last := samples[len(samples)-1]
	if last.At != 25*time.Second {
		t.Errorf("last sample at %v, want exactly the 25s horizon", last.At)
	}
	// One idle PM at 150 W for 25 s — not 30 s.
	want := 150.0 * 25
	if math.Abs(rec.EnergyJ()-want) > 1 {
		t.Errorf("EnergyJ = %v, want %v (energy must not run past the horizon)", rec.EnergyJ(), want)
	}

	// Stop after the horizon already closed the books: no extra sample,
	// no extra energy.
	rec.Stop()
	rec.Stop()
	if got := len(rec.Samples()); got != len(samples) {
		t.Errorf("Stop after horizon added samples: %d -> %d", len(samples), got)
	}
	if math.Abs(rec.EnergyJ()-want) > 1 {
		t.Errorf("Stop after horizon changed energy: %v", rec.EnergyJ())
	}
}

func TestRecorderStopAtTickInstantNoDoubleCount(t *testing.T) {
	engine, c, _ := rig(t)
	rec := NewRecorder(c, 10*time.Second, 0)
	// Run to exactly a tick time, then Stop at the same instant.
	engine.RunUntil(30 * time.Second)
	rec.Stop()
	samples := rec.Samples()
	if len(samples) != 3 {
		t.Fatalf("got %d samples, want 3 (ticks at 10/20/30, Stop must not duplicate the 30s one)", len(samples))
	}
	for i := 1; i < len(samples); i++ {
		if samples[i].At == samples[i-1].At {
			t.Errorf("duplicate sample timestamp %v", samples[i].At)
		}
	}
	if want := 150.0 * 30; math.Abs(rec.EnergyJ()-want) > 1 {
		t.Errorf("EnergyJ = %v, want %v", rec.EnergyJ(), want)
	}
}

func TestJobStats(t *testing.T) {
	var js JobStats
	js.Add(100 * time.Second)
	js.Add(200 * time.Second)
	js.Add(300 * time.Second)
	if js.Count() != 3 {
		t.Errorf("Count = %d", js.Count())
	}
	if js.Mean() != 200 {
		t.Errorf("Mean = %v", js.Mean())
	}
	if js.Max() != 300 {
		t.Errorf("Max = %v", js.Max())
	}
}

func TestPerfPerEnergy(t *testing.T) {
	base := PerfPerEnergy(100, 1000)
	faster := PerfPerEnergy(50, 1000)
	leaner := PerfPerEnergy(100, 500)
	if !(faster > base && leaner > base) {
		t.Errorf("PerfPerEnergy ordering wrong: base=%v faster=%v leaner=%v", base, faster, leaner)
	}
	if PerfPerEnergy(0, 100) != 0 || PerfPerEnergy(100, 0) != 0 {
		t.Error("degenerate inputs should yield 0")
	}
}
