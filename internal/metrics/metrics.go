// Package metrics records cluster utilization, power and energy over
// simulated time, and aggregates job-completion statistics — the
// accounting behind the paper's utilization, energy and
// performance-per-energy results (Figures 9(c) and 10(a)).
package metrics

import (
	"time"

	"repro/internal/cluster"
	"repro/internal/resource"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/timeseries"
)

// Sample is one utilization/power observation.
type Sample struct {
	// At is the simulation time of the observation.
	At time.Duration
	// Util holds mean per-resource utilization across powered-on PMs.
	Util resource.Vector
	// PowerW is the instantaneous total power draw.
	PowerW float64
	// PMsOn is the number of powered-on PMs.
	PMsOn int
}

// Recorder samples a cluster periodically and integrates energy. Stop it
// before draining the event queue, or give it a horizon.
type Recorder struct {
	engine  *sim.Engine
	cluster *cluster.Cluster
	ticker  *sim.Ticker
	horizon time.Duration
	stopped bool
	samples []Sample
	energyJ float64
	lastAt  time.Duration
	lastW   float64
	ts      *timeseries.Collector
}

// NewRecorder starts sampling every interval (default 10 s). If horizon
// is positive the recorder stops itself at that time, letting the event
// queue drain naturally; no sample or energy is recorded past the
// horizon, even when the ticks do not divide it evenly.
func NewRecorder(c *cluster.Cluster, interval, horizon time.Duration) *Recorder {
	if interval <= 0 {
		interval = 10 * time.Second
	}
	r := &Recorder{
		engine:  c.Engine(),
		cluster: c,
		horizon: horizon,
		lastAt:  c.Engine().Now(),
		lastW:   c.TotalPowerW(),
	}
	r.ticker = sim.NewTicker(r.engine, interval, func(now time.Duration) {
		r.sample(now)
		if horizon > 0 && now >= horizon {
			r.stopped = true
			r.ticker.Stop()
		}
	})
	return r
}

// SetTimeSeries attaches a windowed telemetry collector: every sampling
// tick feeds the cluster's power, powered-on PM count and per-resource
// utilization gauges into it and triggers a probe sweep, so probe-backed
// series (engine depth, task queues) share the recorder's cadence. Call
// before the first tick; a nil collector detaches.
func (r *Recorder) SetTimeSeries(ts *timeseries.Collector) { r.ts = ts }

func (r *Recorder) sample(now time.Duration) {
	// Accounting never extends past the horizon: the first tick at or
	// beyond it is attributed to the horizon instant itself.
	if r.horizon > 0 && now > r.horizon {
		now = r.horizon
	}
	// A tick and a Stop (or two Stops) at the same instant must not
	// record the observation twice.
	if n := len(r.samples); n > 0 && r.samples[n-1].At == now {
		return
	}
	w := r.cluster.TotalPowerW()
	// Trapezoidal integration of power into energy.
	dt := (now - r.lastAt).Seconds()
	if dt > 0 {
		r.energyJ += (w + r.lastW) / 2 * dt
	}
	r.lastAt = now
	r.lastW = w
	var util resource.Vector
	for _, k := range resource.Kinds() {
		util = util.Set(k, r.cluster.MeanUtilization(k))
	}
	pmsOn := r.cluster.PoweredOnPMs()
	r.samples = append(r.samples, Sample{At: now, Util: util, PowerW: w, PMsOn: pmsOn})
	if r.ts != nil {
		r.ts.SetGauge("cluster.power_w", "", now, w)
		r.ts.SetGauge("cluster.pms_on", "", now, float64(pmsOn))
		for _, k := range resource.Kinds() {
			r.ts.SetGauge("cluster.util."+k.String(), "", now, util.Get(k))
		}
		r.ts.SampleProbes(now)
	}
}

// Stop halts sampling, taking one final sample so that energy accounting
// covers the full interval. Stop is idempotent, and a no-op after the
// horizon has already closed the books.
func (r *Recorder) Stop() {
	if r.stopped {
		return
	}
	r.stopped = true
	r.ticker.Stop()
	r.sample(r.engine.Now())
}

// Samples returns the recorded observations.
func (r *Recorder) Samples() []Sample {
	out := make([]Sample, len(r.samples))
	copy(out, r.samples)
	return out
}

// EnergyWh returns the integrated energy in watt-hours.
func (r *Recorder) EnergyWh() float64 { return r.energyJ / 3600 }

// EnergyJ returns the integrated energy in joules.
func (r *Recorder) EnergyJ() float64 { return r.energyJ }

// MeanUtil returns the average sampled utilization of a resource.
func (r *Recorder) MeanUtil(kind resource.Kind) float64 {
	if len(r.samples) == 0 {
		return 0
	}
	vals := make([]float64, len(r.samples))
	for i, s := range r.samples {
		vals[i] = s.Util.Get(kind)
	}
	return stats.Mean(vals)
}

// MeanPowerW returns the average sampled power draw.
func (r *Recorder) MeanPowerW() float64 {
	if len(r.samples) == 0 {
		return 0
	}
	vals := make([]float64, len(r.samples))
	for i, s := range r.samples {
		vals[i] = s.PowerW
	}
	return stats.Mean(vals)
}

// Series extracts the (time, utilization) series of one resource, for the
// Figure 10(a) timelines.
func (r *Recorder) Series(kind resource.Kind) ([]time.Duration, []float64) {
	ts := make([]time.Duration, len(r.samples))
	us := make([]float64, len(r.samples))
	for i, s := range r.samples {
		ts[i] = s.At
		us[i] = s.Util.Get(kind)
	}
	return ts, us
}

// JobStats aggregates completion times of a batch of jobs.
type JobStats struct {
	// JCTs holds each job's completion time in seconds.
	JCTs []float64
}

// Add records one completion time.
func (j *JobStats) Add(jct time.Duration) { j.JCTs = append(j.JCTs, jct.Seconds()) }

// Mean returns the mean JCT in seconds.
func (j *JobStats) Mean() float64 { return stats.Mean(j.JCTs) }

// Max returns the largest JCT in seconds.
func (j *JobStats) Max() float64 {
	m := 0.0
	for _, v := range j.JCTs {
		if v > m {
			m = v
		}
	}
	return m
}

// Count returns the number of recorded jobs.
func (j *JobStats) Count() int { return len(j.JCTs) }

// PerfPerEnergy is the paper's design metric: work rate per unit energy,
// computed as jobs-per-second-per-kilowatt-hour scaled for readability.
// Larger is better. Zero mean JCT or energy yields zero.
func PerfPerEnergy(meanJCTSec, energyWh float64) float64 {
	if meanJCTSec <= 0 || energyWh <= 0 {
		return 0
	}
	return 1e6 / (meanJCTSec * energyWh)
}
