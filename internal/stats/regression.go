// Package stats provides the small statistical toolbox the HybridMR
// schedulers rely on: ordinary least squares, piece-wise linear and
// exponential regression (the three model families named in the paper for
// CPU, memory and I/O interference respectively), plus summary statistics
// used by the profiler and the experiment harness.
package stats

import (
	"errors"
	"fmt"
	"math"
	"sort"
)

// ErrInsufficientData is returned when a fit is requested with fewer
// points than the model has parameters.
var ErrInsufficientData = errors.New("stats: insufficient data points for fit")

// Model predicts y for a given x. All regression fits in this package
// return a Model.
type Model interface {
	Predict(x float64) float64
	// String describes the fitted form, for logs and EXPERIMENTS.md.
	String() string
}

// Linear is y = Intercept + Slope*x.
type Linear struct {
	Intercept float64
	Slope     float64
	R2        float64
}

var _ Model = (*Linear)(nil)

// Predict evaluates the line at x.
func (l *Linear) Predict(x float64) float64 { return l.Intercept + l.Slope*x }

func (l *Linear) String() string {
	return fmt.Sprintf("y = %.4g + %.4g*x (R²=%.3f)", l.Intercept, l.Slope, l.R2)
}

// FitLinear fits y = a + b*x by ordinary least squares.
func FitLinear(xs, ys []float64) (*Linear, error) {
	if len(xs) != len(ys) {
		return nil, fmt.Errorf("stats: mismatched lengths %d vs %d", len(xs), len(ys))
	}
	if len(xs) < 2 {
		return nil, ErrInsufficientData
	}
	n := float64(len(xs))
	var sx, sy, sxx, sxy float64
	for i := range xs {
		sx += xs[i]
		sy += ys[i]
		sxx += xs[i] * xs[i]
		sxy += xs[i] * ys[i]
	}
	den := n*sxx - sx*sx
	if math.Abs(den) < 1e-12 {
		// Degenerate: all x identical. Fall back to the mean.
		return &Linear{Intercept: sy / n, Slope: 0, R2: 0}, nil
	}
	b := (n*sxy - sx*sy) / den
	a := (sy - b*sx) / n
	m := &Linear{Intercept: a, Slope: b}
	m.R2 = rSquared(xs, ys, m)
	return m, nil
}

// Exponential is y = A * exp(B*x). It is fit by log-linear least squares,
// which requires strictly positive y values; the paper uses this family
// for I/O interference ("exponential increase in JCT due to increased I/O
// contention").
type Exponential struct {
	A  float64
	B  float64
	R2 float64
}

var _ Model = (*Exponential)(nil)

// Predict evaluates the exponential at x.
func (e *Exponential) Predict(x float64) float64 { return e.A * math.Exp(e.B*x) }

func (e *Exponential) String() string {
	return fmt.Sprintf("y = %.4g*exp(%.4g*x) (R²=%.3f)", e.A, e.B, e.R2)
}

// FitExponential fits y = A*exp(B*x). Points with y <= 0 are rejected.
func FitExponential(xs, ys []float64) (*Exponential, error) {
	if len(xs) != len(ys) {
		return nil, fmt.Errorf("stats: mismatched lengths %d vs %d", len(xs), len(ys))
	}
	if len(xs) < 2 {
		return nil, ErrInsufficientData
	}
	logy := make([]float64, len(ys))
	for i, y := range ys {
		if y <= 0 {
			return nil, fmt.Errorf("stats: exponential fit requires y > 0, got %v", y)
		}
		logy[i] = math.Log(y)
	}
	lin, err := FitLinear(xs, logy)
	if err != nil {
		return nil, err
	}
	m := &Exponential{A: math.Exp(lin.Intercept), B: lin.Slope}
	m.R2 = rSquared(xs, ys, m)
	return m, nil
}

// PiecewiseLinear is a continuous broken-line model with one breakpoint,
// the family the paper uses for memory interference and for the reduce
// phase's dependence on cluster size.
type PiecewiseLinear struct {
	Break float64
	Left  Linear
	Right Linear
	R2    float64
}

var _ Model = (*PiecewiseLinear)(nil)

// Predict evaluates the broken line at x.
func (p *PiecewiseLinear) Predict(x float64) float64 {
	if x <= p.Break {
		return p.Left.Predict(x)
	}
	return p.Right.Predict(x)
}

func (p *PiecewiseLinear) String() string {
	return fmt.Sprintf("y = piecewise(x<=%.4g: %.4g+%.4g*x; else %.4g+%.4g*x) (R²=%.3f)",
		p.Break, p.Left.Intercept, p.Left.Slope, p.Right.Intercept, p.Right.Slope, p.R2)
}

// FitPiecewiseLinear searches every candidate breakpoint between sorted
// sample xs and fits independent segments on each side, keeping the
// breakpoint with the lowest total squared error. It needs at least four
// points (two per segment).
func FitPiecewiseLinear(xs, ys []float64) (*PiecewiseLinear, error) {
	if len(xs) != len(ys) {
		return nil, fmt.Errorf("stats: mismatched lengths %d vs %d", len(xs), len(ys))
	}
	if len(xs) < 4 {
		return nil, ErrInsufficientData
	}
	type point struct{ x, y float64 }
	pts := make([]point, len(xs))
	for i := range xs {
		pts[i] = point{xs[i], ys[i]}
	}
	sort.Slice(pts, func(i, j int) bool { return pts[i].x < pts[j].x })

	sx := make([]float64, len(pts))
	sy := make([]float64, len(pts))
	for i, p := range pts {
		sx[i], sy[i] = p.x, p.y
	}

	best := (*PiecewiseLinear)(nil)
	bestSSE := math.Inf(1)
	for split := 2; split <= len(pts)-2; split++ {
		left, err := FitLinear(sx[:split], sy[:split])
		if err != nil {
			continue
		}
		right, err := FitLinear(sx[split:], sy[split:])
		if err != nil {
			continue
		}
		sse := 0.0
		for i := 0; i < split; i++ {
			d := sy[i] - left.Predict(sx[i])
			sse += d * d
		}
		for i := split; i < len(pts); i++ {
			d := sy[i] - right.Predict(sx[i])
			sse += d * d
		}
		if sse < bestSSE {
			bestSSE = sse
			best = &PiecewiseLinear{
				Break: (sx[split-1] + sx[split]) / 2,
				Left:  *left,
				Right: *right,
			}
		}
	}
	if best == nil {
		return nil, ErrInsufficientData
	}
	best.R2 = rSquared(sx, sy, best)
	return best, nil
}

// InverseLinear is y = A + B/x, the form the paper observes for end-to-end
// and map-phase JCT versus cluster size ("inverse relation to the cluster
// size").
type InverseLinear struct {
	A  float64
	B  float64
	R2 float64
}

var _ Model = (*InverseLinear)(nil)

// Predict evaluates the model at x; x = 0 returns A alone, since the
// asymptote is the only sensible answer there.
func (m *InverseLinear) Predict(x float64) float64 {
	if x == 0 {
		return m.A
	}
	return m.A + m.B/x
}

func (m *InverseLinear) String() string {
	return fmt.Sprintf("y = %.4g + %.4g/x (R²=%.3f)", m.A, m.B, m.R2)
}

// FitInverseLinear fits y = A + B/x by substituting u = 1/x. Points with
// x = 0 are rejected.
func FitInverseLinear(xs, ys []float64) (*InverseLinear, error) {
	us := make([]float64, len(xs))
	for i, x := range xs {
		if x == 0 {
			return nil, fmt.Errorf("stats: inverse fit requires x != 0")
		}
		us[i] = 1 / x
	}
	lin, err := FitLinear(us, ys)
	if err != nil {
		return nil, err
	}
	m := &InverseLinear{A: lin.Intercept, B: lin.Slope}
	m.R2 = rSquared(xs, ys, m)
	return m, nil
}

func rSquared(xs, ys []float64, m Model) float64 {
	if len(ys) == 0 {
		return 0
	}
	mean := Mean(ys)
	var ssTot, ssRes float64
	for i := range ys {
		d := ys[i] - mean
		ssTot += d * d
		r := ys[i] - m.Predict(xs[i])
		ssRes += r * r
	}
	if ssTot == 0 {
		if ssRes == 0 {
			return 1
		}
		return 0
	}
	return 1 - ssRes/ssTot
}
