package stats

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestFitLinearExact(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	ys := make([]float64, len(xs))
	for i, x := range xs {
		ys[i] = 3 + 2*x
	}
	m, err := FitLinear(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(m.Intercept-3) > 1e-9 || math.Abs(m.Slope-2) > 1e-9 {
		t.Errorf("fit = %v, want 3 + 2x", m)
	}
	if m.R2 < 0.999 {
		t.Errorf("R2 = %v, want ~1", m.R2)
	}
	if got := m.Predict(10); math.Abs(got-23) > 1e-9 {
		t.Errorf("Predict(10) = %v, want 23", got)
	}
}

func TestFitLinearNoisy(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	xs := make([]float64, 200)
	ys := make([]float64, 200)
	for i := range xs {
		xs[i] = float64(i)
		ys[i] = 10 + 0.5*xs[i] + rng.NormFloat64()*2
	}
	m, err := FitLinear(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(m.Slope-0.5) > 0.05 {
		t.Errorf("slope = %v, want ~0.5", m.Slope)
	}
	if math.Abs(m.Intercept-10) > 2 {
		t.Errorf("intercept = %v, want ~10", m.Intercept)
	}
}

func TestFitLinearErrors(t *testing.T) {
	if _, err := FitLinear([]float64{1}, []float64{1}); !errors.Is(err, ErrInsufficientData) {
		t.Errorf("one point: err = %v, want ErrInsufficientData", err)
	}
	if _, err := FitLinear([]float64{1, 2}, []float64{1}); err == nil {
		t.Error("mismatched lengths: err = nil")
	}
}

func TestFitLinearDegenerateX(t *testing.T) {
	m, err := FitLinear([]float64{5, 5, 5}, []float64{1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(m.Predict(5)-2) > 1e-9 {
		t.Errorf("degenerate fit Predict(5) = %v, want mean 2", m.Predict(5))
	}
	if m.Slope != 0 {
		t.Errorf("degenerate slope = %v, want 0", m.Slope)
	}
}

func TestFitExponentialExact(t *testing.T) {
	xs := []float64{0, 1, 2, 3, 4}
	ys := make([]float64, len(xs))
	for i, x := range xs {
		ys[i] = 2 * math.Exp(0.7*x)
	}
	m, err := FitExponential(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(m.A-2) > 1e-6 || math.Abs(m.B-0.7) > 1e-6 {
		t.Errorf("fit = %v, want 2*exp(0.7x)", m)
	}
}

func TestFitExponentialRejectsNonPositive(t *testing.T) {
	if _, err := FitExponential([]float64{1, 2}, []float64{1, 0}); err == nil {
		t.Error("y=0 accepted")
	}
	if _, err := FitExponential([]float64{1, 2}, []float64{1, -3}); err == nil {
		t.Error("y<0 accepted")
	}
}

func TestFitPiecewiseLinear(t *testing.T) {
	// True model: flat at 10 until x=5, then slope 4.
	var xs, ys []float64
	for x := 0.0; x <= 10; x++ {
		xs = append(xs, x)
		if x <= 5 {
			ys = append(ys, 10)
		} else {
			ys = append(ys, 10+4*(x-5))
		}
	}
	m, err := FitPiecewiseLinear(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if m.Break < 4 || m.Break > 6.5 {
		t.Errorf("breakpoint = %v, want ~5", m.Break)
	}
	if math.Abs(m.Predict(2)-10) > 0.5 {
		t.Errorf("Predict(2) = %v, want ~10", m.Predict(2))
	}
	if math.Abs(m.Predict(9)-26) > 1.5 {
		t.Errorf("Predict(9) = %v, want ~26", m.Predict(9))
	}
	if m.R2 < 0.98 {
		t.Errorf("R2 = %v, want high", m.R2)
	}
}

func TestFitPiecewiseLinearTooFewPoints(t *testing.T) {
	_, err := FitPiecewiseLinear([]float64{1, 2, 3}, []float64{1, 2, 3})
	if !errors.Is(err, ErrInsufficientData) {
		t.Errorf("err = %v, want ErrInsufficientData", err)
	}
}

func TestFitInverseLinear(t *testing.T) {
	xs := []float64{1, 2, 4, 8, 16}
	ys := make([]float64, len(xs))
	for i, x := range xs {
		ys[i] = 50 + 600/x
	}
	m, err := FitInverseLinear(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(m.A-50) > 1e-6 || math.Abs(m.B-600) > 1e-6 {
		t.Errorf("fit = %v, want 50 + 600/x", m)
	}
	if math.Abs(m.Predict(32)-(50+600.0/32)) > 1e-6 {
		t.Errorf("extrapolation wrong: %v", m.Predict(32))
	}
	if _, err := FitInverseLinear([]float64{0, 1}, []float64{1, 2}); err == nil {
		t.Error("x=0 accepted")
	}
}

func TestModelStrings(t *testing.T) {
	models := []Model{
		&Linear{Intercept: 1, Slope: 2},
		&Exponential{A: 1, B: 2},
		&PiecewiseLinear{Break: 5},
		&InverseLinear{A: 1, B: 2},
	}
	for _, m := range models {
		if m.String() == "" {
			t.Errorf("%T String() empty", m)
		}
	}
}

func TestMeanStdDev(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if got := Mean(xs); got != 5 {
		t.Errorf("Mean = %v, want 5", got)
	}
	if got := StdDev(xs); math.Abs(got-2) > 1e-9 {
		t.Errorf("StdDev = %v, want 2", got)
	}
	if Mean(nil) != 0 || StdDev(nil) != 0 || StdDev([]float64{1}) != 0 {
		t.Error("empty/short inputs should yield 0")
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	tests := []struct {
		p    float64
		want float64
	}{
		{0, 1}, {100, 10}, {50, 5.5}, {-5, 1}, {105, 10},
	}
	for _, tt := range tests {
		if got := Percentile(xs, tt.p); math.Abs(got-tt.want) > 1e-9 {
			t.Errorf("Percentile(%v) = %v, want %v", tt.p, got, tt.want)
		}
	}
	if Percentile(nil, 50) != 0 {
		t.Error("empty percentile should be 0")
	}
	// Input must not be mutated (sorted copy).
	unsorted := []float64{3, 1, 2}
	Percentile(unsorted, 50)
	if unsorted[0] != 3 {
		t.Error("Percentile mutated its input")
	}
}

func TestMAPE(t *testing.T) {
	actual := []float64{100, 200}
	pred := []float64{110, 180}
	want := (0.10 + 0.10) / 2
	if got := MAPE(actual, pred); math.Abs(got-want) > 1e-9 {
		t.Errorf("MAPE = %v, want %v", got, want)
	}
	if MAPE([]float64{0, 0}, []float64{1, 1}) != 0 {
		t.Error("all-zero actuals should yield 0")
	}
	if MAPE([]float64{1}, []float64{1, 2}) != 0 {
		t.Error("mismatched lengths should yield 0")
	}
}

func TestNormalize(t *testing.T) {
	got := Normalize([]float64{2, 4, 8})
	want := []float64{0.25, 0.5, 1}
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-9 {
			t.Errorf("Normalize[%d] = %v, want %v", i, got[i], want[i])
		}
	}
	zeros := Normalize([]float64{0, 0})
	if zeros[0] != 0 || zeros[1] != 0 {
		t.Errorf("Normalize zeros = %v", zeros)
	}
}

func TestClamp(t *testing.T) {
	tests := []struct{ x, lo, hi, want float64 }{
		{5, 0, 10, 5},
		{-1, 0, 10, 0},
		{11, 0, 10, 10},
	}
	for _, tt := range tests {
		if got := Clamp(tt.x, tt.lo, tt.hi); got != tt.want {
			t.Errorf("Clamp(%v) = %v, want %v", tt.x, got, tt.want)
		}
	}
}

// Property: a linear fit through points generated from any line recovers
// that line, and R² is 1.
func TestFitLinearRecoversLineProperty(t *testing.T) {
	f := func(a8, b8 int8) bool {
		a, b := float64(a8), float64(b8)
		xs := []float64{0, 1, 2, 3, 7, 11}
		ys := make([]float64, len(xs))
		for i, x := range xs {
			ys[i] = a + b*x
		}
		m, err := FitLinear(xs, ys)
		if err != nil {
			return false
		}
		return math.Abs(m.Intercept-a) < 1e-6 && math.Abs(m.Slope-b) < 1e-6
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: Percentile is monotone in p.
func TestPercentileMonotoneProperty(t *testing.T) {
	f := func(raw []uint8, p1, p2 uint8) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]float64, len(raw))
		for i, r := range raw {
			xs[i] = float64(r)
		}
		lo, hi := float64(p1%101), float64(p2%101)
		if lo > hi {
			lo, hi = hi, lo
		}
		return Percentile(xs, lo) <= Percentile(xs, hi)+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
