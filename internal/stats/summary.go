package stats

import (
	"math"
	"sort"
)

// Mean returns the arithmetic mean, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// StdDev returns the population standard deviation, or 0 for fewer than
// two points.
func StdDev(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	s := 0.0
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return math.Sqrt(s / float64(len(xs)))
}

// Percentile returns the p-th percentile (0 <= p <= 100) by linear
// interpolation between order statistics. An empty input returns 0.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)
	if p <= 0 {
		return sorted[0]
	}
	if p >= 100 {
		return sorted[len(sorted)-1]
	}
	rank := p / 100 * float64(len(sorted)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return sorted[lo]
	}
	frac := rank - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// MAPE returns the mean absolute percentage error of predictions against
// actuals, as a fraction (0.108 = 10.8%). Actuals of zero are skipped.
func MAPE(actual, predicted []float64) float64 {
	if len(actual) == 0 || len(actual) != len(predicted) {
		return 0
	}
	var sum float64
	var n int
	for i := range actual {
		if actual[i] == 0 {
			continue
		}
		sum += math.Abs(actual[i]-predicted[i]) / math.Abs(actual[i])
		n++
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// AbsPercentErrors returns per-sample absolute percentage errors as
// fractions, skipping zero actuals.
func AbsPercentErrors(actual, predicted []float64) []float64 {
	out := make([]float64, 0, len(actual))
	for i := range actual {
		if i >= len(predicted) || actual[i] == 0 {
			continue
		}
		out = append(out, math.Abs(actual[i]-predicted[i])/math.Abs(actual[i]))
	}
	return out
}

// Normalize divides every element by the maximum absolute value, matching
// the "normalized w.r.t. max value" convention of the paper's figures. An
// all-zero input is returned unchanged.
func Normalize(xs []float64) []float64 {
	maxAbs := 0.0
	for _, x := range xs {
		if a := math.Abs(x); a > maxAbs {
			maxAbs = a
		}
	}
	out := make([]float64, len(xs))
	if maxAbs == 0 {
		return out
	}
	for i, x := range xs {
		out[i] = x / maxAbs
	}
	return out
}

// Clamp restricts x to [lo, hi].
func Clamp(x, lo, hi float64) float64 {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}
