package workload

import (
	"math"
	"math/rand"
	"time"

	"repro/internal/sim"
)

// Trace yields a client count for each instant of simulated time.
type Trace interface {
	// ClientsAt returns the offered load at time t.
	ClientsAt(t time.Duration) int
}

// ConstantTrace offers a fixed load.
type ConstantTrace int

var _ Trace = ConstantTrace(0)

// ClientsAt returns the constant.
func (c ConstantTrace) ClientsAt(time.Duration) int { return int(c) }

// DiurnalTrace models the bursty, over-provisioned interactive load the
// paper's consolidation argument depends on: a sinusoidal baseline plus
// seeded random bursts.
type DiurnalTrace struct {
	// Base is the mean client count.
	Base int
	// Amplitude is the peak deviation of the sinusoid.
	Amplitude int
	// Period is the sinusoid's period (default 20 minutes, compressing a
	// day into a simulable horizon).
	Period time.Duration
	// BurstProb is the per-sample probability of a burst (default 0.05).
	BurstProb float64
	// BurstFactor scales load during a burst (default 1.8).
	BurstFactor float64
	// Seed fixes the burst pattern.
	Seed int64
}

var _ Trace = (*DiurnalTrace)(nil)

// ClientsAt evaluates the trace. Burst decisions are made per 30-second
// bucket from the seed, so the same trace object is deterministic across
// queries and runs.
func (d *DiurnalTrace) ClientsAt(t time.Duration) int {
	period := d.Period
	if period <= 0 {
		period = 20 * time.Minute
	}
	burstProb := d.BurstProb
	if burstProb <= 0 {
		burstProb = 0.05
	}
	burstFactor := d.BurstFactor
	if burstFactor <= 0 {
		burstFactor = 1.8
	}
	phase := 2 * math.Pi * float64(t%period) / float64(period)
	load := float64(d.Base) + float64(d.Amplitude)*math.Sin(phase)
	bucket := int64(t / (30 * time.Second))
	rng := rand.New(rand.NewSource(d.Seed*1_000_003 + bucket))
	if rng.Float64() < burstProb {
		load *= burstFactor
	}
	if load < 0 {
		return 0
	}
	return int(load)
}

// StepTrace ramps load in fixed steps, as in the Figure 8(d) client
// sweep.
type StepTrace struct {
	// Start is the initial client count.
	Start int
	// Step is added every Interval.
	Step int
	// Interval is the ramp period.
	Interval time.Duration
	// Max caps the load (0 = uncapped).
	Max int
}

var _ Trace = (*StepTrace)(nil)

// ClientsAt evaluates the ramp.
func (s *StepTrace) ClientsAt(t time.Duration) int {
	if s.Interval <= 0 {
		return s.Start
	}
	n := s.Start + s.Step*int(t/s.Interval)
	if s.Max > 0 && n > s.Max {
		return s.Max
	}
	return n
}

// LoadDriver periodically applies a trace to a service.
type LoadDriver struct {
	ticker *sim.Ticker
}

// NewLoadDriver updates svc's client count from the trace every interval
// (default 15 s) until Stop.
func NewLoadDriver(engine *sim.Engine, svc *Service, trace Trace, interval time.Duration) *LoadDriver {
	if interval <= 0 {
		interval = 15 * time.Second
	}
	svc.SetClients(trace.ClientsAt(engine.Now()))
	d := &LoadDriver{}
	d.ticker = sim.NewTicker(engine, interval, func(now time.Duration) {
		svc.SetClients(trace.ClientsAt(now))
	})
	return d
}

// Stop halts the driver.
func (d *LoadDriver) Stop() { d.ticker.Stop() }
