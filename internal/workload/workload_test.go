package workload

import (
	"math"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/resource"
	"repro/internal/sim"
)

func TestBenchmarksValidateAndMatchPaperSizes(t *testing.T) {
	sizes := map[string]float64{
		"Twitter":  25 * GB,
		"Wcount":   20 * GB,
		"DistGrep": 20 * GB,
		"Sort":     20 * GB,
		"Kmeans":   10 * GB,
	}
	specs := Benchmarks()
	if len(specs) != 6 {
		t.Fatalf("got %d benchmarks, want 6", len(specs))
	}
	for _, s := range specs {
		if err := s.Validate(); err != nil {
			t.Errorf("%s: %v", s.Name, err)
		}
		if want, ok := sizes[s.Name]; ok && s.InputMB != want {
			t.Errorf("%s input = %v MB, want %v", s.Name, s.InputMB, want)
		}
	}
}

func TestCPUBoundClassification(t *testing.T) {
	want := map[string]bool{
		"Twitter": false, "Wcount": false, "PiEst": true,
		"DistGrep": false, "Sort": false, "Kmeans": true,
	}
	for _, s := range Benchmarks() {
		if got := IsCPUBound(s); got != want[s.Name] {
			t.Errorf("IsCPUBound(%s) = %v, want %v", s.Name, got, want[s.Name])
		}
	}
}

func TestByName(t *testing.T) {
	s, err := ByName("Sort")
	if err != nil || s.Name != "Sort" {
		t.Errorf("ByName(Sort) = %v, %v", s.Name, err)
	}
	if _, err := ByName("NoSuch"); err == nil {
		t.Error("unknown benchmark accepted")
	}
	if got := len(BenchmarkNames()); got != 6 {
		t.Errorf("BenchmarkNames len = %d", got)
	}
}

func deployOnVM(t *testing.T) (*sim.Engine, *cluster.Cluster, *Service, *cluster.VM) {
	t.Helper()
	engine := sim.New()
	c := cluster.New(engine, cluster.DefaultConfig(), 3)
	pm := c.AddPM("pm-0")
	vm, err := c.AddVM("vm-0", pm, 1, 1024)
	if err != nil {
		t.Fatal(err)
	}
	svc, err := Deploy(RUBiS(), vm)
	if err != nil {
		t.Fatal(err)
	}
	return engine, c, svc, vm
}

func TestServiceLatencyGrowsWithLoad(t *testing.T) {
	engine, _, svc, _ := deployOnVM(t)
	latency := func(clients int) float64 {
		svc.SetClients(clients)
		engine.RunUntil(engine.Now() + time.Second)
		return svc.LatencyMs()
	}
	low := latency(400)
	mid := latency(2400)
	high := latency(6400)
	over := latency(16000)
	if !(low < mid && mid < high) {
		t.Errorf("latency not increasing: %v, %v, %v", low, mid, high)
	}
	if high > svc.Spec().SLAMs {
		// Figure 8(d): RUBiS alone stays within the SLA through 6400
		// clients.
		t.Errorf("6400 clients violate SLA in isolation: %v ms", high)
	}
	if over <= svc.Spec().SLAMs {
		t.Errorf("gross overload does not violate SLA: %v ms", over)
	}
}

func TestServiceInterferenceRaisesLatency(t *testing.T) {
	engine, _, svc, vm := deployOnVM(t)
	svc.SetClients(2200)
	engine.RunUntil(time.Second)
	isolated := svc.LatencyMs()
	if svc.SLAViolated() {
		t.Fatalf("baseline load violates SLA: %v ms", isolated)
	}
	// An I/O+CPU-hungry batch task lands in the same VM.
	hog := &cluster.Consumer{
		Name:   "map-task",
		Demand: resource.NewVector(1, 400, 60, 10),
		Work:   cluster.OpenEnded,
	}
	if err := vm.Start(hog); err != nil {
		t.Fatal(err)
	}
	engine.RunUntil(engine.Now() + time.Second)
	contended := svc.LatencyMs()
	if contended <= isolated {
		t.Errorf("latency with hog %v not above isolated %v", contended, isolated)
	}
	// Removing the hog restores latency.
	hog.Stop()
	engine.RunUntil(engine.Now() + time.Second)
	restored := svc.LatencyMs()
	if math.Abs(restored-isolated) > isolated*0.1 {
		t.Errorf("latency did not recover: %v vs %v", restored, isolated)
	}
}

func TestServiceZeroClients(t *testing.T) {
	engine, _, svc, _ := deployOnVM(t)
	engine.RunUntil(time.Second)
	if rho := svc.Rho(); rho != 0 {
		t.Errorf("rho with no clients = %v", rho)
	}
	if l := svc.LatencyMs(); l != svc.Spec().BaseLatencyMs {
		t.Errorf("latency with no clients = %v, want base %v", l, svc.Spec().BaseLatencyMs)
	}
	svc.SetClients(-5)
	if svc.Clients() != 0 {
		t.Error("negative client count not clamped")
	}
}

func TestDeployValidation(t *testing.T) {
	if _, err := Deploy(RUBiS(), nil); err == nil {
		t.Error("nil node accepted")
	}
}

func TestAllServiceSpecs(t *testing.T) {
	for _, spec := range Services() {
		if spec.Name == "" || spec.CPUPerClient <= 0 {
			t.Errorf("bad spec: %+v", spec)
		}
		eff := spec.withDefaults()
		if eff.SLAMs != 2000 {
			t.Errorf("%s SLA = %v, want the paper's 2000 ms", spec.Name, eff.SLAMs)
		}
		if eff.Headroom <= 1 {
			t.Errorf("%s headroom %v not over-provisioned", spec.Name, eff.Headroom)
		}
	}
}

func TestConstantAndStepTraces(t *testing.T) {
	if got := ConstantTrace(700).ClientsAt(time.Hour); got != 700 {
		t.Errorf("ConstantTrace = %d", got)
	}
	st := &StepTrace{Start: 400, Step: 400, Interval: time.Minute, Max: 1500}
	tests := []struct {
		at   time.Duration
		want int
	}{
		{0, 400},
		{time.Minute, 800},
		{2 * time.Minute, 1200},
		{10 * time.Minute, 1500}, // capped
	}
	for _, tt := range tests {
		if got := st.ClientsAt(tt.at); got != tt.want {
			t.Errorf("StepTrace(%v) = %d, want %d", tt.at, got, tt.want)
		}
	}
	zero := &StepTrace{Start: 42}
	if got := zero.ClientsAt(time.Hour); got != 42 {
		t.Errorf("zero-interval StepTrace = %d", got)
	}
}

func TestDiurnalTraceDeterministicAndBounded(t *testing.T) {
	tr := &DiurnalTrace{Base: 1000, Amplitude: 500, Seed: 9}
	for _, at := range []time.Duration{0, time.Minute, 7 * time.Minute, time.Hour} {
		a := tr.ClientsAt(at)
		b := tr.ClientsAt(at)
		if a != b {
			t.Errorf("trace not deterministic at %v: %d vs %d", at, a, b)
		}
		if a < 0 || a > int(float64(1500)*1.8+1) {
			t.Errorf("load %d out of bounds at %v", a, at)
		}
	}
	// The sinusoid must actually move.
	lo, hi := math.MaxInt32, 0
	for m := 0; m < 20; m++ {
		v := tr.ClientsAt(time.Duration(m) * time.Minute)
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	if hi-lo < 300 {
		t.Errorf("trace too flat: range [%d, %d]", lo, hi)
	}
}

func TestLoadDriverAppliesTrace(t *testing.T) {
	engine, _, svc, _ := deployOnVM(t)
	drv := NewLoadDriver(engine, svc, &StepTrace{Start: 100, Step: 100, Interval: 30 * time.Second}, 30*time.Second)
	engine.RunUntil(2 * time.Minute)
	if got := svc.Clients(); got < 400 {
		t.Errorf("clients after 2 min = %d, want >= 400", got)
	}
	drv.Stop()
	at := svc.Clients()
	engine.RunUntil(4 * time.Minute)
	if svc.Clients() != at {
		t.Error("driver kept updating after Stop")
	}
}
