// Package workload defines the paper's workload mix: the six MapReduce
// benchmarks of Section IV (Twitter, Wcount, PiEst, DistGrep, Sort,
// Kmeans) with their published input sizes and resource characters, and
// the three interactive services (RUBiS, TPC-W, Olio) with an M/M/1-style
// latency model and SLA bounds.
package workload

import (
	"fmt"

	"repro/internal/mapred"
)

// GB converts gigabytes to the MB units used throughout.
const GB = 1024.0

// Twitter ranks users over 25 GB of twitter traces; the paper classes it
// memory + I/O bound.
func Twitter() mapred.JobSpec {
	return mapred.JobSpec{
		Name:             "Twitter",
		InputMB:          25 * GB,
		Reduces:          24,
		MapStreamMBps:    42,
		MapCPUPerMB:      0.010,
		MapMemMB:         300,
		ShuffleRatio:     0.45,
		ReduceStreamMBps: 36,
		ReduceCPUPerMB:   0.012,
		ReduceMemMB:      330,
		OutputRatio:      0.30,
	}
}

// Wcount computes word frequencies over 20 GB of text; memory + I/O
// bound.
func Wcount() mapred.JobSpec {
	return mapred.JobSpec{
		Name:             "Wcount",
		InputMB:          20 * GB,
		Reduces:          24,
		MapStreamMBps:    48,
		MapCPUPerMB:      0.012,
		MapMemMB:         260,
		ShuffleRatio:     0.18,
		ReduceStreamMBps: 38,
		ReduceCPUPerMB:   0.010,
		ReduceMemMB:      300,
		OutputRatio:      0.25,
	}
}

// PiEst estimates Pi from 10 million points; pure CPU with negligible
// data.
func PiEst() mapred.JobSpec {
	return mapred.JobSpec{
		Name:          "PiEst",
		Reduces:       1,
		FixedMapWork:  55,
		FixedMapTasks: 48,
		MapMemMB:      150,
		ReduceMemMB:   120,
	}
}

// DistGrep matches regular expressions over 20 GB of text; I/O bound with
// a tiny shuffle.
func DistGrep() mapred.JobSpec {
	return mapred.JobSpec{
		Name:             "DistGrep",
		InputMB:          20 * GB,
		Reduces:          1,
		MapStreamMBps:    62,
		MapCPUPerMB:      0.006,
		MapMemMB:         150,
		ShuffleRatio:     0.002,
		ReduceStreamMBps: 40,
		ReduceCPUPerMB:   0.004,
		ReduceMemMB:      150,
		OutputRatio:      1,
	}
}

// Sort sorts 20 GB of text; the canonical I/O- and shuffle-heavy job.
func Sort() mapred.JobSpec {
	return mapred.JobSpec{
		Name:             "Sort",
		InputMB:          20 * GB,
		Reduces:          24,
		MapStreamMBps:    55,
		MapCPUPerMB:      0.004,
		MapMemMB:         200,
		ShuffleRatio:     1,
		ReduceStreamMBps: 38,
		ReduceCPUPerMB:   0.005,
		ReduceMemMB:      280,
		OutputRatio:      1,
	}
}

// Kmeans clusters 10 GB of numeric data; CPU bound.
func Kmeans() mapred.JobSpec {
	return mapred.JobSpec{
		Name:             "Kmeans",
		InputMB:          10 * GB,
		Reduces:          12,
		MapStreamMBps:    40,
		MapCPUPerMB:      0.055, // CPU bound: one core sustains ~18 MB/s
		MapMemMB:         280,
		ShuffleRatio:     0.06,
		ReduceStreamMBps: 30,
		ReduceCPUPerMB:   0.030,
		ReduceMemMB:      260,
		OutputRatio:      0.5,
	}
}

// Benchmarks returns all six MapReduce benchmarks in the paper's figure
// order.
func Benchmarks() []mapred.JobSpec {
	return []mapred.JobSpec{Twitter(), Wcount(), PiEst(), DistGrep(), Sort(), Kmeans()}
}

// BenchmarkNames lists the benchmark names in figure order.
func BenchmarkNames() []string {
	specs := Benchmarks()
	out := make([]string, len(specs))
	for i, s := range specs {
		out[i] = s.Name
	}
	return out
}

// ByName returns the benchmark spec with the given name.
func ByName(name string) (mapred.JobSpec, error) {
	for _, s := range Benchmarks() {
		if s.Name == name {
			return s, nil
		}
	}
	return mapred.JobSpec{}, fmt.Errorf("workload: unknown benchmark %q", name)
}

// IsCPUBound reports whether a benchmark is CPU bound (PiEst, Kmeans) as
// opposed to I/O or memory bound; several figures split on this.
func IsCPUBound(spec mapred.JobSpec) bool {
	if spec.FixedMapWork > 0 {
		return true
	}
	if spec.MapCPUPerMB <= 0 {
		return false
	}
	// CPU bound when one core limits the stream below the I/O rate.
	return 1/spec.MapCPUPerMB < spec.MapStreamMBps
}
