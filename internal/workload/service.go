package workload

import (
	"fmt"
	"math"

	"repro/internal/cluster"
	"repro/internal/resource"
)

// ServiceSpec describes an interactive (transactional) application tier.
// Per-client demands are calibrated so that a single 1-vCPU, 1 GB VM
// saturates in the low thousands of clients, matching the RUBiS curves in
// the paper's Figure 8(d).
type ServiceSpec struct {
	// Name identifies the application.
	Name string
	// CPUPerClient is cores consumed per concurrent client.
	CPUPerClient float64
	// DiskPerClientMBps and NetPerClientMBps are per-client I/O rates.
	DiskPerClientMBps float64
	NetPerClientMBps  float64
	// BaseMemMB is the tier's resident footprint; MemPerClientMB adds
	// session state.
	BaseMemMB      float64
	MemPerClientMB float64
	// BaseLatencyMs is the unloaded response time.
	BaseLatencyMs float64
	// SLAMs is the response-time bound (the paper uses 2000 ms).
	SLAMs float64
	// Headroom is the over-provisioning factor: the service requests
	// Headroom x its current need, and the spare is what HybridMR
	// harvests for batch work.
	Headroom float64
}

func (s ServiceSpec) withDefaults() ServiceSpec {
	if s.SLAMs <= 0 {
		s.SLAMs = 2000
	}
	if s.Headroom <= 1 {
		s.Headroom = 1.6
	}
	if s.BaseLatencyMs <= 0 {
		s.BaseLatencyMs = 60
	}
	return s
}

// RUBiS models the online auction site used throughout the paper.
func RUBiS() ServiceSpec {
	return ServiceSpec{
		Name:              "RUBiS",
		CPUPerClient:      0.00010,
		DiskPerClientMBps: 0.008,
		NetPerClientMBps:  0.006,
		BaseMemMB:         320,
		MemPerClientMB:    0.05,
		BaseLatencyMs:     55,
		SLAMs:             2000,
		Headroom:          1.6,
	}
}

// TPCW models the three-tier online book store.
func TPCW() ServiceSpec {
	return ServiceSpec{
		Name:              "TPC-W",
		CPUPerClient:      0.00018,
		DiskPerClientMBps: 0.012,
		NetPerClientMBps:  0.005,
		BaseMemMB:         380,
		MemPerClientMB:    0.06,
		BaseLatencyMs:     70,
		SLAMs:             2000,
		Headroom:          1.6,
	}
}

// Olio models the Web 2.0 social-events application.
func Olio() ServiceSpec {
	return ServiceSpec{
		Name:              "Olio",
		CPUPerClient:      0.00015,
		DiskPerClientMBps: 0.009,
		NetPerClientMBps:  0.008,
		BaseMemMB:         300,
		MemPerClientMB:    0.07,
		BaseLatencyMs:     65,
		SLAMs:             2000,
		Headroom:          1.6,
	}
}

// Services returns the three interactive applications.
func Services() []ServiceSpec {
	return []ServiceSpec{RUBiS(), TPCW(), Olio()}
}

// Service is a deployed interactive application instance on a node
// (normally a VM). It runs as an open-ended consumer whose demand tracks
// the client count; response time follows an M/M/1-style curve on the
// utilization of its bottleneck resource.
type Service struct {
	spec     ServiceSpec
	node     cluster.Node
	consumer *cluster.Consumer
	clients  int
}

// Deploy starts a service on the node with zero clients.
func Deploy(spec ServiceSpec, node cluster.Node) (*Service, error) {
	if node == nil {
		return nil, fmt.Errorf("workload: deploy %s: nil node", spec.Name)
	}
	s := &Service{spec: spec.withDefaults(), node: node}
	s.consumer = &cluster.Consumer{
		Name:   fmt.Sprintf("svc:%s@%s", spec.Name, node.Name()),
		Demand: s.demandFor(0),
		Work:   cluster.OpenEnded,
		Weight: 4, // interactive tiers run at elevated priority
	}
	if err := node.Start(s.consumer); err != nil {
		return nil, fmt.Errorf("workload: deploy %s: %w", spec.Name, err)
	}
	return s, nil
}

// Spec returns the service's specification.
func (s *Service) Spec() ServiceSpec { return s.spec }

// Node returns where the service runs.
func (s *Service) Node() cluster.Node { return s.node }

// Consumer exposes the underlying consumer for scheduler introspection.
func (s *Service) Consumer() *cluster.Consumer { return s.consumer }

// Clients returns the current client count.
func (s *Service) Clients() int { return s.clients }

// SetClients updates the offered load.
func (s *Service) SetClients(n int) {
	if n < 0 {
		n = 0
	}
	s.clients = n
	s.consumer.SetDemand(s.demandFor(n))
}

// Stop removes the service from its node.
func (s *Service) Stop() { s.consumer.Stop() }

// demandFor is the resource request for n clients including the
// over-provisioning headroom the paper's premise rests on.
func (s *Service) demandFor(n int) resource.Vector {
	h := s.spec.Headroom
	fn := float64(n)
	return resource.NewVector(
		math.Max(0.02, fn*s.spec.CPUPerClient*h),
		s.spec.BaseMemMB+fn*s.spec.MemPerClientMB,
		fn*s.spec.DiskPerClientMBps*h,
		fn*s.spec.NetPerClientMBps*h,
	)
}

// Rho returns the service's effective utilization: the largest ratio of
// required rate (without headroom) to the capacity actually available to
// the service, across the CPU, disk and network dimensions. When the
// service's (over-provisioned) demand is fully granted, the available
// capacity is the node's capacity minus what collocated consumers hold;
// when the kernel squeezes the service below its demand, the grant itself
// is the ceiling.
func (s *Service) Rho() float64 {
	_, rho := s.Bottleneck()
	return rho
}

// Bottleneck returns the resource dimension currently limiting the
// service most, together with its utilization. The Phase II IPS throttles
// interferers in exactly this dimension.
func (s *Service) Bottleneck() (resource.Kind, float64) {
	if s.clients == 0 {
		return resource.CPU, 0
	}
	need := resource.NewVector(
		float64(s.clients)*s.spec.CPUPerClient,
		0,
		float64(s.clients)*s.spec.DiskPerClientMBps,
		float64(s.clients)*s.spec.NetPerClientMBps,
	)
	alloc := s.consumer.Alloc()
	demand := s.consumer.Demand
	cap := s.node.UsefulCapacity()
	var others resource.Vector
	for _, c := range s.node.Consumers() {
		if c != s.consumer {
			others = others.Add(c.Alloc())
		}
	}
	kind, rho := resource.CPU, 0.0
	for _, k := range [...]resource.Kind{resource.CPU, resource.DiskIO, resource.NetIO} {
		d := need.Get(k)
		if d <= 0 {
			continue
		}
		a := alloc.Get(k)
		avail := a
		if a >= demand.Get(k)*0.999 {
			if free := cap.Get(k) - others.Get(k); free > avail {
				avail = free
			}
		}
		if avail <= 0 {
			return k, 10 // starved outright
		}
		if r := d / avail; r > rho {
			kind, rho = k, r
		}
	}
	return kind, rho
}

// maxLatencyMs caps the reported latency, mirroring client timeouts.
const maxLatencyMs = 60_000

// LatencyMs returns the current mean response time under the M/M/1-style
// model latency = base / (1 - rho), saturating once rho approaches or
// exceeds 1.
func (s *Service) LatencyMs() float64 {
	rho := s.Rho()
	if rho >= 0.995 {
		// Saturated: queue grows with the overload factor.
		l := s.spec.BaseLatencyMs/0.005 + (rho-1)*20_000
		return math.Min(l, maxLatencyMs)
	}
	return math.Min(s.spec.BaseLatencyMs/(1-rho), maxLatencyMs)
}

// SLAViolated reports whether the current latency exceeds the SLA bound.
func (s *Service) SLAViolated() bool { return s.LatencyMs() > s.spec.SLAMs }
