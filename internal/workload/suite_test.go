package workload

import (
	"math"
	"testing"
	"time"

	"repro/internal/sim"
)

func TestGenerateSuiteBasics(t *testing.T) {
	arrivals, err := GenerateSuite(SuiteSpec{
		Mix:              DefaultMix(2048),
		MeanInterarrival: time.Minute,
		Horizon:          time.Hour,
		Seed:             3,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Poisson with 1-minute mean over an hour: expect ~60, allow wide
	// slack.
	if len(arrivals) < 30 || len(arrivals) > 110 {
		t.Fatalf("got %d arrivals, want ~60", len(arrivals))
	}
	last := time.Duration(-1)
	for i, a := range arrivals {
		if a.At <= last {
			t.Fatalf("arrival %d not strictly increasing (%v after %v)", i, a.At, last)
		}
		last = a.At
		if a.At >= time.Hour {
			t.Fatalf("arrival %d beyond horizon: %v", i, a.At)
		}
		if err := a.Spec.Validate(); err != nil {
			t.Fatalf("arrival %d invalid: %v", i, err)
		}
	}
}

func TestGenerateSuiteDeterministic(t *testing.T) {
	spec := SuiteSpec{Mix: DefaultMix(1024), Horizon: 30 * time.Minute, Seed: 9}
	a, err := GenerateSuite(spec)
	if err != nil {
		t.Fatal(err)
	}
	b, err := GenerateSuite(spec)
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i].At != b[i].At || a[i].Spec.Name != b[i].Spec.Name || a[i].Spec.InputMB != b[i].Spec.InputMB {
			t.Fatalf("arrival %d differs between runs", i)
		}
	}
	other, err := GenerateSuite(SuiteSpec{Mix: DefaultMix(1024), Horizon: 30 * time.Minute, Seed: 10})
	if err != nil {
		t.Fatal(err)
	}
	same := len(other) == len(a)
	if same {
		for i := range a {
			if a[i].At != other[i].At {
				same = false
				break
			}
		}
	}
	if same {
		t.Error("different seeds produced identical streams")
	}
}

func TestGenerateSuiteJitterBounds(t *testing.T) {
	mix := []WeightedJob{{Spec: Sort().WithInputMB(1000), Weight: 1}}
	arrivals, err := GenerateSuite(SuiteSpec{
		Mix:              mix,
		MeanInterarrival: 30 * time.Second,
		SizeJitter:       0.2,
		Horizon:          2 * time.Hour,
		Seed:             4,
	})
	if err != nil {
		t.Fatal(err)
	}
	varied := false
	for _, a := range arrivals {
		if a.Spec.InputMB < 800-1e-9 || a.Spec.InputMB > 1200+1e-9 {
			t.Fatalf("jittered size %v outside ±20%% of 1000", a.Spec.InputMB)
		}
		if math.Abs(a.Spec.InputMB-1000) > 1 {
			varied = true
		}
	}
	if !varied {
		t.Error("jitter produced no variation")
	}
}

func TestGenerateSuiteWeights(t *testing.T) {
	mix := []WeightedJob{
		{Spec: Sort(), Weight: 9},
		{Spec: PiEst(), Weight: 1},
	}
	arrivals, err := GenerateSuite(SuiteSpec{
		Mix:              mix,
		MeanInterarrival: 15 * time.Second,
		Horizon:          4 * time.Hour,
		Seed:             5,
	})
	if err != nil {
		t.Fatal(err)
	}
	sorts := 0
	for _, a := range arrivals {
		if a.Spec.Name == "Sort" {
			sorts++
		}
	}
	frac := float64(sorts) / float64(len(arrivals))
	if frac < 0.8 || frac > 0.98 {
		t.Errorf("Sort fraction %v, want ~0.9 for 9:1 weights", frac)
	}
}

func TestGenerateSuiteValidation(t *testing.T) {
	if _, err := GenerateSuite(SuiteSpec{Horizon: time.Hour}); err == nil {
		t.Error("empty mix accepted")
	}
	if _, err := GenerateSuite(SuiteSpec{Mix: DefaultMix(1024)}); err == nil {
		t.Error("zero horizon accepted")
	}
	if _, err := GenerateSuite(SuiteSpec{
		Mix:     []WeightedJob{{Spec: Sort(), Weight: -1}},
		Horizon: time.Hour,
	}); err == nil {
		t.Error("negative weight accepted")
	}
	if _, err := GenerateSuite(SuiteSpec{
		Mix:     []WeightedJob{{Spec: Sort(), Weight: 0}},
		Horizon: time.Hour,
	}); err == nil {
		t.Error("zero total weight accepted")
	}
}

func TestScheduleSuiteDelivers(t *testing.T) {
	engine := sim.New()
	var submitted []Arrival
	arrivals, err := ScheduleSuite(SuiteSpec{
		Mix:              DefaultMix(512),
		MeanInterarrival: time.Minute,
		Horizon:          20 * time.Minute,
		Seed:             6,
	}, func(d time.Duration, fn func()) { engine.After(d, fn) }, func(a Arrival) error {
		submitted = append(submitted, a)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	engine.Run()
	if len(submitted) != len(arrivals) {
		t.Fatalf("submitted %d of %d arrivals", len(submitted), len(arrivals))
	}
	for i := range submitted {
		if submitted[i].At != arrivals[i].At {
			t.Errorf("arrival %d delivered out of order", i)
		}
	}
}
