package workload

import (
	"fmt"
	"math"
	"math/rand"
	"time"

	"repro/internal/mapred"
)

// SuiteSpec describes a stochastic batch-workload stream: jobs drawn from
// a weighted mix arrive by a Poisson process, with input sizes jittered
// around each benchmark's nominal size. The experiments use it where the
// paper speaks of "diverse workload mix of interactive and batch
// MapReduce applications".
type SuiteSpec struct {
	// Mix is the weighted benchmark mix; weights need not sum to 1.
	Mix []WeightedJob
	// MeanInterarrival is the Poisson arrival process's mean gap
	// (default 2 minutes).
	MeanInterarrival time.Duration
	// SizeJitter scales inputs by a uniform factor in
	// [1-SizeJitter, 1+SizeJitter] (default 0.3).
	SizeJitter float64
	// Horizon stops the stream (required).
	Horizon time.Duration
	// Seed fixes the stream.
	Seed int64
}

// WeightedJob is one mix component.
type WeightedJob struct {
	// Spec is the job template.
	Spec mapred.JobSpec
	// Weight is the relative arrival share.
	Weight float64
}

// Arrival is one generated submission.
type Arrival struct {
	// At is the submission time.
	At time.Duration
	// Spec is the concrete (jittered) job.
	Spec mapred.JobSpec
}

// DefaultMix is the paper's six benchmarks in equal proportion, scaled to
// the given input size (fixed-work jobs keep their task counts).
func DefaultMix(inputMB float64) []WeightedJob {
	out := make([]WeightedJob, 0, 6)
	for _, spec := range Benchmarks() {
		if spec.FixedMapWork <= 0 {
			spec = spec.WithInputMB(inputMB)
		}
		out = append(out, WeightedJob{Spec: spec, Weight: 1})
	}
	return out
}

// GenerateSuite materializes the arrival stream.
func GenerateSuite(spec SuiteSpec) ([]Arrival, error) {
	if len(spec.Mix) == 0 {
		return nil, fmt.Errorf("workload: suite needs a non-empty mix")
	}
	if spec.Horizon <= 0 {
		return nil, fmt.Errorf("workload: suite needs a positive horizon")
	}
	mean := spec.MeanInterarrival
	if mean <= 0 {
		mean = 2 * time.Minute
	}
	jitter := spec.SizeJitter
	if jitter <= 0 {
		jitter = 0.3
	}
	if jitter > 0.9 {
		jitter = 0.9
	}
	var totalWeight float64
	for _, w := range spec.Mix {
		if w.Weight < 0 {
			return nil, fmt.Errorf("workload: negative mix weight for %s", w.Spec.Name)
		}
		totalWeight += w.Weight
	}
	if totalWeight <= 0 {
		return nil, fmt.Errorf("workload: mix weights sum to zero")
	}

	rng := rand.New(rand.NewSource(spec.Seed))
	var out []Arrival
	at := time.Duration(0)
	for {
		// Exponential interarrival gap.
		gap := time.Duration(rng.ExpFloat64() * float64(mean))
		at += gap
		if at >= spec.Horizon {
			return out, nil
		}
		pick := rng.Float64() * totalWeight
		var chosen mapred.JobSpec
		for _, w := range spec.Mix {
			pick -= w.Weight
			if pick <= 0 {
				chosen = w.Spec
				break
			}
		}
		if chosen.Name == "" {
			chosen = spec.Mix[len(spec.Mix)-1].Spec
		}
		if chosen.FixedMapWork <= 0 {
			factor := 1 + (rng.Float64()*2-1)*jitter
			size := math.Max(64, chosen.InputMB*factor)
			chosen = chosen.WithInputMB(size)
		}
		out = append(out, Arrival{At: at, Spec: chosen})
	}
}

// ScheduleSuite generates the stream and submits each arrival through
// submit at its arrival time on the engine behind now/after. The submit
// callback returns an error to abort scheduling of that arrival (the
// stream continues). It returns the generated arrivals for inspection.
func ScheduleSuite(spec SuiteSpec, after func(d time.Duration, fn func()), submit func(Arrival) error) ([]Arrival, error) {
	arrivals, err := GenerateSuite(spec)
	if err != nil {
		return nil, err
	}
	for _, a := range arrivals {
		a := a
		after(a.At, func() {
			// Submission failures (e.g. a saturated queue) drop the
			// arrival; the stream is best-effort like a real job queue.
			_ = submit(a)
		})
	}
	return arrivals, nil
}
