package core

import (
	"sort"
	"time"

	"repro/internal/audit"
	"repro/internal/cluster"
	"repro/internal/interference"
	"repro/internal/mapred"
	"repro/internal/perfstat"
	"repro/internal/policy"
	"repro/internal/resource"
	"repro/internal/sim"
	"repro/internal/timeseries"
	"repro/internal/trace"
	"repro/internal/workload"
)

// IPSAction records one mitigation the Arbiter took, for reporting and
// the experiment timelines.
type IPSAction struct {
	// At is the simulation time of the action.
	At time.Duration
	// Kind is "relocate", "throttle", "pause", "resume" or "migrate".
	Kind string
	// Service is the SLA-violating application that triggered it.
	Service string
	// Target names the affected task or VM.
	Target string
}

// IPS is the Interference Prevention System of the Phase II scheduler:
// an online monitor of interactive applications that, on SLA violation,
// invokes its Arbiter (Algorithm 3) to relocate, throttle or pause the
// responsible map/reduce work.
type IPS struct {
	engine  *sim.Engine
	cluster *cluster.Cluster
	jt      *mapred.JobTracker
	ticker  *sim.Ticker

	services    []*ipsService
	paused      map[*cluster.VM]string // paused VM -> service that caused it
	blacklisted map[*mapred.TaskTracker]string
	backoff     map[*cluster.PM]*blacklistBackoff
	actions     []IPSAction

	tracer   *trace.Tracer
	reg      *trace.Registry
	auditLog *audit.Log
	perf     *perfstat.Stats
	ts       *timeseries.Collector

	// PauseStreak is the number of consecutive violating epochs before
	// the Arbiter escalates from relocation/throttling to pausing a
	// batch VM (default 3).
	PauseStreak int
	// MaxRelocationsPerEpoch bounds evictions per service per epoch
	// (default 2).
	MaxRelocationsPerEpoch int
	// RelocateBelowProgress relocates only attempts below this progress
	// (default 0.6): restarting nearly-finished work wastes it, so those
	// are throttled instead. Zero never relocates (the throttle-first
	// policy).
	RelocateBelowProgress float64
	// ThrottleFactor scales a throttled interferer's bottleneck cap
	// (default 0.5).
	ThrottleFactor float64
}

type ipsService struct {
	svc    *workload.Service
	models *interference.Models
	streak int
}

// NewIPS creates an IPS over the virtual cluster's JobTracker. Call
// Watch for each deployed service, then Start.
func NewIPS(engine *sim.Engine, cl *cluster.Cluster, jt *mapred.JobTracker) *IPS {
	return &IPS{
		engine:                 engine,
		cluster:                cl,
		jt:                     jt,
		paused:                 make(map[*cluster.VM]string),
		blacklisted:            make(map[*mapred.TaskTracker]string),
		backoff:                make(map[*cluster.PM]*blacklistBackoff),
		PauseStreak:            3,
		MaxRelocationsPerEpoch: 2,
		RelocateBelowProgress:  0.6,
		ThrottleFactor:         0.5,
	}
}

// ApplyPolicy installs an arbitration policy's knobs.
func (p *IPS) ApplyPolicy(params policy.IPSParams) {
	p.PauseStreak = params.PauseStreak
	p.MaxRelocationsPerEpoch = params.MaxRelocationsPerEpoch
	p.RelocateBelowProgress = params.RelocateBelowProgress
	p.ThrottleFactor = params.ThrottleFactor
}

// SetTrace installs a tracer and metrics registry. Either may be nil;
// instrumentation is then a no-op.
func (p *IPS) SetTrace(tr *trace.Tracer, reg *trace.Registry) {
	p.tracer = tr
	p.reg = reg
}

// SetAudit installs a decision log; every Arbiter mitigation is
// recorded on it. A nil log keeps auditing off.
func (p *IPS) SetAudit(l *audit.Log) { p.auditLog = l }

// SetPerf installs a performance-attribution collector; monitoring
// epochs are then counted and timed. A nil collector keeps the
// instrumentation off.
func (p *IPS) SetPerf(ps *perfstat.Stats) { p.perf = ps }

// SetTimeSeries attaches a windowed telemetry collector. Each monitoring
// epoch then records every watched service's latency into a per-service
// windowed histogram and SLA violations into a per-service counter
// series — the time-resolved view the end-state-only SLAViolated flag
// cannot give. A nil collector keeps the series off.
func (p *IPS) SetTimeSeries(ts *timeseries.Collector) { p.ts = ts }

// Watch registers an interactive service for SLA monitoring.
func (p *IPS) Watch(svc *workload.Service) {
	p.services = append(p.services, &ipsService{svc: svc, models: interference.NewModels()})
}

// Start begins the monitoring loop at the given interval (default 5 s).
// The loop runs until Stop; experiments with services drive the engine
// with RunUntil horizons.
func (p *IPS) Start(interval time.Duration) {
	if interval <= 0 {
		interval = 5 * time.Second
	}
	if p.ticker != nil && !p.ticker.Stopped() {
		return
	}
	p.ticker = sim.NewTicker(p.engine, interval, func(now time.Duration) { p.tick(now) })
}

// Stop halts monitoring.
func (p *IPS) Stop() {
	if p.ticker != nil {
		p.ticker.Stop()
	}
}

// Actions returns the mitigation log.
func (p *IPS) Actions() []IPSAction {
	out := make([]IPSAction, len(p.actions))
	copy(out, p.actions)
	return out
}

func (p *IPS) log(kind, service, target string) {
	p.actions = append(p.actions, IPSAction{
		At: p.engine.Now(), Kind: kind, Service: service, Target: target,
	})
	p.reg.Counter("ips.actions." + kind).Inc()
	if p.tracer != nil {
		p.tracer.Instant("ips", "ips", kind,
			trace.S("service", service),
			trace.S("target", target))
	}
	reason := "SLA violation by " + service
	switch kind {
	case "resume", "unblacklist":
		reason = "host services comfortably under SLA again (" + service + ")"
	}
	p.auditLog.Add("ips", kind, target, kind, reason)
}

// tick is one monitoring epoch.
func (p *IPS) tick(time.Duration) {
	p.perf.Enter("core.ips")
	defer p.perf.Exit()
	if p.perf != nil {
		p.perf.C.IPSTicks++
	}
	for _, st := range p.services {
		if st.svc.Node().Machine() == nil {
			// The service's VM was destroyed by a fault; there is nothing
			// left to observe or protect.
			continue
		}
		p.observe(st)
		if st.svc.SLAViolated() {
			st.streak++
			p.ts.Add("service.sla_violations", st.svc.Spec().Name, p.engine.Now(), 1)
			p.arbitrate(st)
		} else {
			st.streak = 0
		}
	}
	p.maybeResume()
}

// observe feeds the service's interference models with the current batch
// pressure on its host.
func (p *IPS) observe(st *ipsService) {
	pm := st.svc.Node().Machine()
	var cpu, mem, io float64
	running := p.jt.RunningAttempts()
	if p.perf != nil {
		p.perf.C.IPSAttemptsScanned += int64(len(running))
	}
	for _, a := range running {
		if a.Node().Machine() != pm {
			continue
		}
		alloc := a.Consumer().Alloc()
		cpu += alloc.Get(resource.CPU)
		mem += a.Consumer().Demand.Get(resource.Memory)
		io += alloc.Get(resource.DiskIO) + alloc.Get(resource.NetIO)
	}
	lat := st.svc.LatencyMs()
	p.ts.Observe("service.latency_ms", st.svc.Spec().Name, p.engine.Now(), lat)
	st.models.CPU.Observe(cpu, lat)
	st.models.Memory.Observe(mem, lat)
	st.models.IO.Observe(io, lat)
}

// arbitrate implements Algorithm 3: rank the collocated map/reduce tasks
// by estimated interference with the violating service, and relocate them
// to the best-fitting VM elsewhere (BestFit bin-packing over candidate
// trackers, least-interfering placement first in the Min-Min spirit).
// When no relocation target exists the interferer is throttled; repeated
// violations escalate to pausing the most intrusive batch VM on the host.
func (p *IPS) arbitrate(st *ipsService) {
	svcPM := st.svc.Node().Machine()
	bottleneck, _ := st.svc.Bottleneck()

	// TASK_LIST_interference: running attempts sharing the service's PM.
	var interferers []*mapred.Attempt
	for _, a := range p.jt.RunningAttempts() {
		if a.Node().Machine() == svcPM {
			interferers = append(interferers, a)
		}
	}
	// Stop new batch work from landing on this host until the service
	// recovers. Repeat offenders back off exponentially, so a host whose
	// tenant keeps getting re-violated converges to staying clear.
	bo, ok := p.backoff[svcPM]
	if !ok {
		bo = &blacklistBackoff{}
		p.backoff[svcPM] = bo
	}
	blacklistedNow := false
	for _, tr := range p.jt.Trackers() {
		if tr.Compute.Machine() == svcPM && !tr.Disabled() {
			tr.SetDisabled(true)
			p.blacklisted[tr] = st.svc.Spec().Name
			blacklistedNow = true
			p.log("blacklist", st.svc.Spec().Name, tr.Compute.Name())
		}
	}
	if blacklistedNow {
		bo.count++
		hold := 30 * time.Second << uint(minInt(bo.count-1, 5))
		bo.until = p.engine.Now() + hold
	}

	if len(interferers) == 0 {
		// The violation is pure client overload: there is no batch work
		// to mitigate, and punishing the rest of the cluster would only
		// hurt throughput.
		return
	}
	sort.SliceStable(interferers, func(i, j int) bool {
		return p.interferenceOf(interferers[i], bottleneck) > p.interferenceOf(interferers[j], bottleneck)
	})

	relocated := 0
	for _, a := range interferers {
		if relocated >= p.MaxRelocationsPerEpoch {
			break
		}
		// Relocation restarts the attempt from scratch; nearly-finished
		// tasks are throttled instead so their work is not wasted.
		if a.Progress() < p.RelocateBelowProgress {
			if dst := p.bestFitTracker(a, svcPM); dst != nil {
				if err := p.jt.Relocate(a, dst); err == nil {
					relocated++
					p.log("relocate", st.svc.Spec().Name, a.Consumer().Name)
					continue
				}
			}
		}
		// No placement found: throttle the interferer's bottleneck share.
		c := a.Consumer()
		cur := c.Cap.Get(bottleneck)
		if cur <= 0 {
			cur = c.Alloc().Get(bottleneck)
		}
		if cur > 0 {
			c.SetCap(c.Cap.Set(bottleneck, cur*p.ThrottleFactor))
			p.log("throttle", st.svc.Spec().Name, c.Name)
		}
	}

	if st.streak >= p.PauseStreak {
		p.pauseWorstBatchVM(st, svcPM, bottleneck)
	}
	// Final escalation: if pausing has not cleared the violation after
	// twice the pause threshold, live-migrate a pure-batch VM off the
	// host entirely (the paper's strongest mitigation).
	if st.streak >= 2*p.PauseStreak {
		p.migrateBatchVM(st, svcPM)
	}
}

// migrateBatchVM moves one batch VM from the violating host to the
// service-free PM with the most free memory. Paused VMs are preferred
// (they are already not running and their tasks resume elsewhere).
func (p *IPS) migrateBatchVM(st *ipsService, pm *cluster.PM) {
	var candidate *cluster.VM
	for _, vm := range pm.VMs() {
		if p.hostsService(vm) {
			continue
		}
		if candidate == nil || vm.State() == cluster.VMPaused {
			candidate = vm
		}
	}
	if candidate == nil {
		return
	}
	var dst *cluster.PM
	var bestFree float64
	for _, other := range p.cluster.PMs() {
		if other == pm || other.Off() || p.hostsAnyService(other) {
			continue
		}
		var committed float64
		for _, vm := range other.VMs() {
			committed += vm.MemoryMB()
		}
		free := other.Capacity().Get(resource.Memory) - committed
		if free < candidate.MemoryMB() {
			continue
		}
		if dst == nil || free > bestFree {
			dst, bestFree = other, free
		}
	}
	if dst == nil {
		return
	}
	if candidate.State() == cluster.VMPaused {
		if err := candidate.Resume(); err != nil {
			return
		}
		delete(p.paused, candidate)
	}
	vmName := candidate.Name()
	if err := p.cluster.Migrate(candidate, dst, nil); err == nil {
		st.streak = 0 // give the migration time to land
		p.log("migrate", st.svc.Spec().Name, vmName)
	}
}

// interferenceOf estimates how much an attempt contributes to pressure in
// the given dimension.
func (p *IPS) interferenceOf(a *mapred.Attempt, kind resource.Kind) float64 {
	c := a.Consumer()
	v := c.Alloc().Get(kind)
	if v == 0 {
		v = c.Demand.Get(kind) * 0.1
	}
	return v
}

// bestFitTracker picks the relocation destination by BestFit bin-packing:
// among trackers on other PMs with a free slot of the right kind and no
// SLA-violating service, choose the one whose remaining capacity after
// placement is smallest but sufficient.
func (p *IPS) bestFitTracker(a *mapred.Attempt, avoid *cluster.PM) *mapred.TaskTracker {
	demand := a.Consumer().Demand
	var best *mapred.TaskTracker
	bestLeft := 0.0
	for _, tr := range p.jt.Trackers() {
		if tr.Compute.Machine() == avoid {
			continue
		}
		if tr.FreeSlots(a.Task.Kind) <= 0 {
			continue
		}
		// Never evict interference onto a machine hosting any watched
		// service — that just moves the problem.
		if p.hostsAnyService(tr.Compute.Machine()) {
			continue
		}
		free := p.freeCapacity(tr.Compute)
		left := 0.0
		fits := true
		for _, k := range [...]resource.Kind{resource.CPU, resource.DiskIO, resource.NetIO} {
			d := demand.Get(k)
			f := free.Get(k)
			if d > f {
				fits = false
				break
			}
			left += f - d
		}
		if !fits {
			continue
		}
		if best == nil || left < bestLeft {
			best, bestLeft = tr, left
		}
	}
	if best == nil {
		// Fall back to the emptiest service-free tracker with a free
		// slot, even if the task will contend there: re-execution beats
		// SLA violation.
		for _, tr := range p.jt.Trackers() {
			if tr.Compute.Machine() == avoid || tr.FreeSlots(a.Task.Kind) <= 0 {
				continue
			}
			if p.hostsAnyService(tr.Compute.Machine()) {
				continue
			}
			if best == nil || len(tr.Compute.Consumers()) < len(best.Compute.Consumers()) {
				best = tr
			}
		}
	}
	return best
}

func (p *IPS) hostsViolatingService(pm *cluster.PM) bool {
	for _, st := range p.services {
		if st.svc.Node().Machine() == pm && st.svc.SLAViolated() {
			return true
		}
	}
	return false
}

func (p *IPS) hostsAnyService(pm *cluster.PM) bool {
	for _, st := range p.services {
		if st.svc.Node().Machine() == pm {
			return true
		}
	}
	return false
}

// freeCapacity estimates a node's unclaimed useful capacity.
func (p *IPS) freeCapacity(n cluster.Node) resource.Vector {
	free := n.UsefulCapacity()
	for _, c := range n.Consumers() {
		free = free.Sub(c.Alloc())
	}
	return free.Max(resource.Vector{})
}

// pauseWorstBatchVM suspends the pure-batch VM exerting the most pressure
// on the violating service's host. Paused VMs resume once the host's
// services are healthy again.
func (p *IPS) pauseWorstBatchVM(st *ipsService, pm *cluster.PM, kind resource.Kind) {
	var worst *cluster.VM
	worstLoad := 0.0
	for _, vm := range pm.VMs() {
		if vm.State() != cluster.VMRunning || p.hostsService(vm) {
			continue
		}
		load := 0.0
		for _, c := range vm.Consumers() {
			load += c.Alloc().Get(kind)
		}
		if len(vm.Consumers()) > 0 && (worst == nil || load > worstLoad) {
			worst, worstLoad = vm, load
		}
	}
	if worst == nil {
		return
	}
	if err := worst.Pause(); err == nil {
		p.paused[worst] = st.svc.Spec().Name
		p.log("pause", st.svc.Spec().Name, worst.Name())
	}
}

func (p *IPS) hostsService(vm *cluster.VM) bool {
	for _, st := range p.services {
		if st.svc.Node() == vm {
			return true
		}
	}
	return false
}

// maybeResume resumes paused VMs and re-enables blacklisted trackers
// whose host's services are comfortably healthy again.
func (p *IPS) maybeResume() {
	// Iterate in name order: resuming a VM (or re-enabling a tracker)
	// triggers reschedules, so map-iteration order would perturb the
	// event sequence across runs.
	paused := make([]*cluster.VM, 0, len(p.paused))
	for vm := range p.paused {
		paused = append(paused, vm)
	}
	sort.Slice(paused, func(i, j int) bool { return paused[i].Name() < paused[j].Name() })
	for _, vm := range paused {
		svcName := p.paused[vm]
		pm := vm.Machine()
		if pm == nil {
			delete(p.paused, vm) // destroyed while paused; nothing to resume
			continue
		}
		if bo := p.backoff[pm]; bo != nil && p.engine.Now() < bo.until {
			continue
		}
		if !p.hostComfortable(pm) {
			continue
		}
		if err := vm.Resume(); err == nil {
			delete(p.paused, vm)
			p.log("resume", svcName, vm.Name())
		}
	}
	blacklisted := make([]*mapred.TaskTracker, 0, len(p.blacklisted))
	for tr := range p.blacklisted {
		blacklisted = append(blacklisted, tr)
	}
	sort.Slice(blacklisted, func(i, j int) bool {
		return blacklisted[i].Compute.Name() < blacklisted[j].Compute.Name()
	})
	for _, tr := range blacklisted {
		svcName := p.blacklisted[tr]
		pm := tr.Compute.Machine()
		if bo := p.backoff[pm]; bo != nil && p.engine.Now() < bo.until {
			continue
		}
		if !p.hostComfortable(pm) {
			continue
		}
		tr.SetDisabled(false)
		delete(p.blacklisted, tr)
		p.log("unblacklist", svcName, tr.Compute.Name())
	}
}

type blacklistBackoff struct {
	count int
	until time.Duration
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// hostComfortable reports whether every watched service on the machine
// has real headroom below its SLA (not merely a hair under it).
func (p *IPS) hostComfortable(pm *cluster.PM) bool {
	for _, st := range p.services {
		if st.svc.Node().Machine() != pm {
			continue
		}
		if st.svc.LatencyMs() > st.svc.Spec().SLAMs*0.6 {
			return false
		}
	}
	return true
}
