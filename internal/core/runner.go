// Package core implements the paper's contribution: HybridMR, the
// 2-phase hierarchical scheduler for hybrid data centers.
//
// Phase I (phase1.go) profiles incoming MapReduce jobs on small training
// clusters, estimates their completion times under native and virtual
// execution (Algorithm 1, via internal/profiler), and steers each job to
// the physical or the virtual cluster (Algorithm 2).
//
// Phase II (drm.go, ips.go) manages the virtual cluster at run time: the
// Dynamic Resource Manager (DRM) replaces Hadoop's static slot containers
// with orchestrated per-task resource allocations, and the Interference
// Prevention System (IPS) tracks interactive applications' SLAs and
// evicts, throttles, pauses or migrates interfering map/reduce work
// (Algorithm 3).
package core

import (
	"fmt"

	"repro/internal/mapred"
	"repro/internal/profiler"
	"repro/internal/testbed"
)

// SimRunner returns a profiler.Runner that executes training jobs on
// freshly built simulated mini-clusters — the "small training cluster
// containing both physical and virtual environments" of the paper's
// Figure 4. The base options fix hardware and framework parameters;
// environment and node count come from the profiler.
func SimRunner(base testbed.Options) profiler.Runner {
	return func(spec mapred.JobSpec, env profiler.Environment, nodes int, seed int64) (profiler.RunResult, error) {
		opts := base
		opts.Seed = base.Seed + seed*7919
		if env == profiler.Native {
			opts.PMs = nodes
			opts.VMsPerPM = 0
		} else {
			// The standard virtual shape: 2 single-vCPU VMs per PM.
			opts.VMsPerPM = 2
			opts.PMs = (nodes + 1) / 2
		}
		rig, err := testbed.New(opts)
		if err != nil {
			return profiler.RunResult{}, fmt.Errorf("core: training rig: %w", err)
		}
		res, err := rig.RunJob(spec)
		if err != nil {
			return profiler.RunResult{}, fmt.Errorf("core: training run: %w", err)
		}
		return profiler.RunResult{
			JCTSec:    res.JCT.Seconds(),
			MapSec:    res.MapPhase.Seconds(),
			ReduceSec: res.ReducePhase.Seconds(),
		}, nil
	}
}
