package core

import "repro/internal/policy"

// The Phase I placement types moved to internal/policy when the
// controllers went behind the policy registry; these aliases keep the
// core API (and every experiment that swaps placers) unchanged.
type (
	// Placement says which partition of the hybrid cluster a job runs on.
	Placement = policy.Placement
	// Placer decides the initial placement of a batch job (Phase I).
	Placer = policy.Placer
	// ReasonedPlacer is an optional Placer extension that also explains
	// the decision; the System records the reason in the trace.
	ReasonedPlacer = policy.ReasonedPlacer
	// ExplainedPlacer additionally reports the candidates the placer
	// weighed, for the audit log.
	ExplainedPlacer = policy.ExplainedPlacer
	// ProfilingPlacer is HybridMR's Phase I scheduler (Algorithm 2).
	ProfilingPlacer = policy.ProfilingPlacer
	// RandomPlacer is the paper's FCFS baseline for Figure 8(a).
	RandomPlacer = policy.RandomPlacer
	// StaticPlacer always answers the same partition (Figure 9's
	// native-only and virtual-only design points).
	StaticPlacer = policy.StaticPlacer
)

// Placements.
const (
	PlacedNative  = policy.PlacedNative
	PlacedVirtual = policy.PlacedVirtual
)

// NewRandomPlacer builds the baseline placer.
var NewRandomPlacer = policy.NewRandomPlacer
