package core

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/audit"
	"repro/internal/cluster"
	"repro/internal/interference"
	"repro/internal/mapred"
	"repro/internal/perfstat"
	"repro/internal/policy"
	"repro/internal/resource"
	"repro/internal/sim"
	"repro/internal/trace"
)

// ResourceModes selects which resource dimensions the DRM manages — the
// CPU / Memory / I-O / all-three legend of Figures 8(b) and 8(c).
type ResourceModes struct {
	CPU    bool
	Memory bool
	IO     bool
}

// AllModes manages CPU, memory and I/O together.
func AllModes() ResourceModes { return ResourceModes{CPU: true, Memory: true, IO: true} }

// String lists the managed dimensions.
func (m ResourceModes) String() string {
	switch {
	case m.CPU && m.Memory && m.IO:
		return "cpu+mem+io"
	case m.CPU && !m.Memory && !m.IO:
		return "cpu"
	case !m.CPU && m.Memory && !m.IO:
		return "mem"
	case !m.CPU && !m.Memory && m.IO:
		return "io"
	default:
		return fmt.Sprintf("modes{cpu:%v mem:%v io:%v}", m.CPU, m.Memory, m.IO)
	}
}

// DRM is the Dynamic Resource Manager of the Phase II scheduler. Its
// Local Resource Managers profile each node's running attempts (Resource
// Profiler) and fit run-time estimation models (Estimator); its Global
// Resource Manager detects resource-deficit and resource-hogging tasks
// (Contention Detector) and re-balances per-task resource caps across the
// node (Performance Balancer), replacing the static Hadoop slot
// containers that the default configuration imposes.
type DRM struct {
	jt     *mapred.JobTracker
	modes  ResourceModes
	epoch  time.Duration
	engine *sim.Engine
	ticker *sim.Ticker
	// estimators fit per-job/kind speed-versus-allocation models; the
	// Performance Balancer ranks cap grants by their predicted benefit.
	estimators map[string]*interference.Predictor
	// deferred tracks attempts swapped out by the memory balancer.
	deferred map[*cluster.Consumer]bool
	// Policy holds the Performance Balancer's knobs: the paper's
	// deferral discipline by default, the proportional static split (the
	// deferral ablation's alternative) when policy.StaticSplitDRM is
	// selected.
	Policy policy.DRMParams
	// Adjustments counts cap changes, for reporting.
	Adjustments int

	tracer       *trace.Tracer
	auditLog     *audit.Log
	perf         *perfstat.Stats
	mAdjustments *trace.Counter
	mDeferrals   *trace.Counter
}

// NewDRM attaches a Dynamic Resource Manager to a (virtual-cluster)
// JobTracker. Call Start to begin the epoch loop.
func NewDRM(engine *sim.Engine, jt *mapred.JobTracker, modes ResourceModes, epoch time.Duration) *DRM {
	if epoch <= 0 {
		epoch = 5 * time.Second
	}
	return &DRM{
		jt:         jt,
		modes:      modes,
		epoch:      epoch,
		engine:     engine,
		estimators: make(map[string]*interference.Predictor),
		deferred:   make(map[*cluster.Consumer]bool),
		Policy:     policy.PaperDRM{}.Params(),
	}
}

// SetTrace installs a tracer and metrics registry. Either may be nil;
// instrumentation is then a no-op.
func (d *DRM) SetTrace(tr *trace.Tracer, reg *trace.Registry) {
	d.tracer = tr
	d.mAdjustments = reg.Counter("drm.cap_adjustments")
	d.mDeferrals = reg.Counter("drm.deferrals")
}

// SetAudit installs a decision log; cap grants and memory deferrals are
// recorded on it. A nil log keeps auditing off.
func (d *DRM) SetAudit(l *audit.Log) { d.auditLog = l }

// SetPerf installs a performance-attribution collector; each epoch's
// node sweep is then counted and timed. A nil collector keeps the
// instrumentation off.
func (d *DRM) SetPerf(ps *perfstat.Stats) { d.perf = ps }

// Start begins the epoch loop. The loop parks itself whenever the job
// queue drains and must be re-armed by the next Submit (see
// System.SubmitJob) — this keeps event queues finite.
func (d *DRM) Start() {
	if d.ticker != nil && !d.ticker.Stopped() {
		return
	}
	d.ticker = sim.NewTicker(d.engine, d.epoch, func(time.Duration) {
		if len(d.jt.Jobs()) == 0 {
			d.ticker.Stop()
			return
		}
		d.tick()
	})
}

// Stop halts the epoch loop.
func (d *DRM) Stop() {
	if d.ticker != nil {
		d.ticker.Stop()
	}
}

// Modes returns the managed dimensions.
func (d *DRM) Modes() ResourceModes { return d.modes }

// tick runs one DRM epoch: profile, detect contention, re-balance. It
// walks the JobTracker's maintained per-node attempt buckets — already
// grouped by compute node in name order, attempts name-ordered within
// each — instead of rebuilding that exact structure from a full attempt
// sort every epoch (the O(n^1.97) the scale sweep measured before the
// index refactor). The visit order, and therefore every cap adjustment
// and rescheduled event, is unchanged. Every running attempt is still
// observed each epoch: the Estimators' sliding windows, the IPS's cap
// interplay and the audit trail all depend on per-attempt observation,
// so the delta structure is the grouping, not a skip of "clean" nodes.
func (d *DRM) tick() {
	d.perf.Enter("core.drm")
	defer d.perf.Exit()
	if d.perf != nil {
		d.perf.C.DRMSweeps++
		d.perf.C.DRMAttemptsObserved += int64(d.jt.RunningCount())
	}
	d.jt.EachNodeAttempts(func(node cluster.Node, attempts []*mapred.Attempt) {
		if d.perf != nil {
			d.perf.C.DRMNodesScanned++
		}
		d.observe(attempts)
		cap := node.UsefulCapacity()
		if d.modes.CPU {
			d.balanceRate(node, attempts, resource.CPU, cap.Get(resource.CPU))
		}
		if d.modes.IO {
			d.balanceRate(node, attempts, resource.DiskIO, cap.Get(resource.DiskIO))
			d.balanceRate(node, attempts, resource.NetIO, cap.Get(resource.NetIO))
		}
		if d.modes.Memory {
			d.balanceMemory(attempts, cap.Get(resource.Memory))
		}
	})
}

// observe feeds the LRM Estimators: per job and task kind, the attempt's
// bottleneck allocation fraction against its achieved speed.
func (d *DRM) observe(attempts []*mapred.Attempt) {
	for _, a := range attempts {
		c := a.Consumer()
		frac := allocFraction(c)
		key := fmt.Sprintf("%s/%s", a.Task.Job.Spec.Name, a.Task.Kind)
		p, ok := d.estimators[key]
		if !ok {
			p = interference.NewPredictor(interference.LinearFamily)
			d.estimators[key] = p
		}
		p.Observe(frac, c.Speed())
	}
}

// EstimatedSpeedAt predicts a job/kind's task speed at a given bottleneck
// allocation fraction, once the Estimator has data.
func (d *DRM) EstimatedSpeedAt(job string, kind mapred.TaskKind, frac float64) (float64, bool) {
	p, ok := d.estimators[fmt.Sprintf("%s/%s", job, kind)]
	if !ok {
		return 0, false
	}
	return p.Predict(frac)
}

// balanceRate re-divides one rate dimension's capacity: tasks whose caps
// pin them below their demand (resource-deficit, per the Contention
// Detector) get their caps raised into the measured headroom, most
// beneficial first; tasks holding caps far above their demand
// (resource-hogging containers) are trimmed so the headroom is real.
func (d *DRM) balanceRate(node cluster.Node, attempts []*mapred.Attempt, kind resource.Kind, capacity float64) {
	if capacity <= 0 {
		return
	}
	used := 0.0
	type deficit struct {
		a       *mapred.Attempt
		demand  float64
		cap     float64
		benefit float64
	}
	var deficits []deficit
	for _, a := range attempts {
		c := a.Consumer()
		if d.deferred[c] {
			// Swapped out by the memory balancer; do not grant rate
			// resources it cannot use.
			continue
		}
		used += c.Alloc().Get(kind)
		demand := c.Demand.Get(kind)
		capV := c.Cap.Get(kind)
		if capV > 0 && capV > demand*d.Policy.HogTrimAbove {
			// Hogging container: trim so the detector's headroom means
			// something next epoch.
			d.setCap(c, kind, demand*d.Policy.HogTrimTo)
			capV = demand * d.Policy.HogTrimTo
		}
		if capV > 0 && capV < demand {
			// Benefit estimate: time saved if the cap were lifted to
			// demand, assuming the Leontief speed model the Estimator
			// confirms online.
			rem := c.Remaining()
			speed := c.Speed()
			if rem <= 0 || speed <= 0 {
				rem, speed = 1, 0.1
			}
			speedAtDemand := speedWithCap(c, kind, demand)
			benefit := rem/speed - rem/maxf(speedAtDemand, 1e-9)
			deficits = append(deficits, deficit{a: a, demand: demand, cap: capV, benefit: benefit})
		}
	}
	headroom := capacity - used
	if headroom <= 0 || len(deficits) == 0 {
		return
	}
	sort.Slice(deficits, func(i, j int) bool { return deficits[i].benefit > deficits[j].benefit })
	available := headroom
	granted := 0
	var cands []audit.Candidate
	for _, df := range deficits {
		grant := 0.0
		if headroom > 0 {
			grant = df.demand - df.cap
			if grant > headroom {
				grant = headroom
			}
			d.setCap(df.a.Consumer(), kind, df.cap+grant)
			headroom -= grant
			granted++
		}
		if d.auditLog != nil {
			cands = append(cands, audit.Candidate{
				Name:   df.a.Consumer().Name,
				Score:  df.benefit,
				Chosen: grant > 0,
				Note:   "predicted benefit (s) of lifting cap to demand",
			})
		}
	}
	if d.auditLog != nil {
		d.auditLog.Add("drm", "cap-grant",
			fmt.Sprintf("%s/%s", node.Name(), kind),
			fmt.Sprintf("raised %d of %d deficit cap(s)", granted, len(deficits)),
			fmt.Sprintf("%.3g %s headroom, most beneficial first", available, kind),
			cands...)
	}
}

// balanceMemory right-sizes memory within each VM container. When the
// resident demands fit, caps rise to demand (no paging). When they do
// not, the Estimator's verdict is that thrashing everyone is worse than
// running fewer tasks at speed, so the least-progressed attempts are
// deferred (swapped out: near-zero CPU and memory caps) until the
// container drains; deferred attempts resume as space frees up.
func (d *DRM) balanceMemory(attempts []*mapred.Attempt, capacityMB float64) {
	if capacityMB <= 0 {
		return
	}
	if !d.Policy.Deferral {
		// Static-split policy: share the paging pain proportionally.
		var total float64
		for _, a := range attempts {
			total += a.Consumer().Demand.Get(resource.Memory)
		}
		if total <= 0 {
			return
		}
		scale := 1.0
		if total > capacityMB {
			scale = capacityMB / total
		}
		for _, a := range attempts {
			c := a.Consumer()
			want := c.Demand.Get(resource.Memory) * scale
			if abs64(c.Cap.Get(resource.Memory)-want) > 1 {
				d.setCap(c, resource.Memory, want)
			}
		}
		return
	}
	// Consider the most-progressed attempts first: they keep running,
	// the tail gets deferred.
	ordered := make([]*mapred.Attempt, len(attempts))
	copy(ordered, attempts)
	sort.Slice(ordered, func(i, j int) bool { return ordered[i].Progress() > ordered[j].Progress() })

	budget := capacityMB
	for _, a := range ordered {
		c := a.Consumer()
		want := c.Demand.Get(resource.Memory)
		if want <= 0 {
			continue
		}
		if want <= budget {
			// Fits: release any deferral and grant full residency.
			if d.deferred[c] {
				delete(d.deferred, c)
				d.setCap(c, resource.CPU, c.Demand.Get(resource.CPU))
				d.auditLog.Add("drm", "resume-deferred", c.Name, "restore cpu+mem caps",
					fmt.Sprintf("%.0f MB of container memory freed up", budget))
			}
			budget -= want
			if abs64(c.Cap.Get(resource.Memory)-want) > 1 {
				d.setCap(c, resource.Memory, want)
			}
			continue
		}
		// Does not fit: defer (swap out) rather than thrash the whole
		// container.
		if !d.deferred[c] {
			d.deferred[c] = true
			d.setCap(c, resource.Memory, 1)
			d.setCap(c, resource.CPU, 0.01)
			d.mDeferrals.Inc()
			if d.tracer != nil {
				d.tracer.Instant("drm", "drm", "defer",
					trace.S("task", c.Name),
					trace.F("demand_mb", want))
			}
			d.auditLog.Add("drm", "defer", c.Name, "swap out (least progressed first)",
				fmt.Sprintf("resident demand %.0f MB exceeds the %.0f MB left in the container; thrashing every task is worse", want, budget))
		}
	}
}

func (d *DRM) setCap(c *cluster.Consumer, kind resource.Kind, v float64) {
	cur := c.Cap
	if abs64(cur.Get(kind)-v) < 1e-9 {
		return
	}
	c.SetCap(cur.Set(kind, v))
	d.Adjustments++
	d.mAdjustments.Inc()
}

// allocFraction is the bottleneck allocation / demand ratio of a
// consumer.
func allocFraction(c *cluster.Consumer) float64 {
	frac := 1.0
	for _, k := range [...]resource.Kind{resource.CPU, resource.DiskIO, resource.NetIO} {
		dem := c.Demand.Get(k)
		if dem <= 0 {
			continue
		}
		if f := c.Alloc().Get(k) / dem; f < frac {
			frac = f
		}
	}
	return frac
}

// speedWithCap predicts the Leontief speed if one dimension's cap were
// set to capV, other dimensions unchanged.
func speedWithCap(c *cluster.Consumer, kind resource.Kind, capV float64) float64 {
	speed := 1.0
	for _, k := range [...]resource.Kind{resource.CPU, resource.DiskIO, resource.NetIO} {
		dem := c.Demand.Get(k)
		if dem <= 0 {
			continue
		}
		limit := dem
		if k == kind {
			if capV < limit {
				limit = capV
			}
		} else if cv := c.Cap.Get(k); cv > 0 && cv < limit {
			limit = cv
		}
		if f := limit / dem; f < speed {
			speed = f
		}
	}
	return speed
}

func maxf(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}

func abs64(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
