package core

import (
	"fmt"
	"sync/atomic"
	"time"

	"repro/internal/audit"
	"repro/internal/cluster"
	"repro/internal/mapred"
	"repro/internal/perfstat"
	"repro/internal/policy"
	"repro/internal/profiler"
	"repro/internal/sim"
	"repro/internal/testbed"
	"repro/internal/timeseries"
	"repro/internal/trace"
	"repro/internal/workload"
)

// Config tunes the HybridMR system. Zero values take defaults matching
// the paper's setup.
type Config struct {
	// Epoch is the DRM control period (default 5 s).
	Epoch time.Duration
	// SLAInterval is the IPS monitoring period (default 5 s).
	SLAInterval time.Duration
	// Modes selects the DRM-managed resources (default all).
	Modes ResourceModes
	// DisableDRM turns Phase II resource orchestration off (the
	// "JCTdefault" baseline of Figure 8(b)).
	DisableDRM bool
	// DisableIPS turns SLA enforcement off (the "RUBiS+MapReduce"
	// baseline of Figure 8(d)).
	DisableIPS bool
	// OverheadThreshold is Phase I's acceptable virtual JCT inflation
	// for jobs without deadlines (default 0.25).
	OverheadThreshold float64
	// Policies selects the controller implementations for every seam
	// (Phase I placement, DRM balancing, IPS arbitration); nil takes
	// policy.Default(), the paper's set. The Phase II slot/speculation
	// half of a policy set is consumed where the JobTrackers are built
	// (testbed.Options / hybridmr.ClusterSpec).
	Policies *policy.Set
	// TrainingSeed parameterizes the Phase I training simulations.
	TrainingSeed int64
	// EventSink, when non-nil, accumulates fired-event totals from the
	// Phase I training rigs (the nested simulations SimRunner spins up),
	// so experiments attribute every simulated event — including
	// profiler training — to the run that caused it.
	EventSink *atomic.Uint64
}

func (c Config) withDefaults() Config {
	if c.Epoch <= 0 {
		c.Epoch = 5 * time.Second
	}
	if c.SLAInterval <= 0 {
		c.SLAInterval = 5 * time.Second
	}
	if c.Modes == (ResourceModes{}) {
		c.Modes = AllModes()
	}
	if c.OverheadThreshold <= 0 {
		c.OverheadThreshold = 0.25
	}
	return c
}

// System is a running HybridMR deployment over a hybrid cluster: a
// native MapReduce partition, a virtual partition shared with interactive
// services, the Phase I placer, and the Phase II DRM and IPS.
type System struct {
	engine  *sim.Engine
	cluster *cluster.Cluster
	cfg     Config

	// NativeJT and VirtualJT are the two MapReduce partitions; either
	// (but not both) may be nil.
	NativeJT  *mapred.JobTracker
	VirtualJT *mapred.JobTracker

	// Placer decides Phase I placement; defaults to ProfilingPlacer.
	Placer Placer

	drm      *DRM
	ips      *IPS
	prof     *profiler.Profiler
	services []*workload.Service

	placements map[*mapred.Job]Placement

	tracer      *trace.Tracer
	auditLog    *audit.Log
	perf        *perfstat.Stats
	mPlacements *trace.Counter
}

// NewSystem wires a HybridMR instance. nativeJT or virtualJT may be nil
// when the corresponding partition does not exist (the Figure 9 design
// points). The profiler's training runner defaults to SimRunner with the
// cluster's hardware profile.
func NewSystem(engine *sim.Engine, cl *cluster.Cluster, nativeJT, virtualJT *mapred.JobTracker, cfg Config) (*System, error) {
	if nativeJT == nil && virtualJT == nil {
		return nil, fmt.Errorf("core: NewSystem: need at least one partition")
	}
	cfg = cfg.withDefaults()
	s := &System{
		engine:     engine,
		cluster:    cl,
		cfg:        cfg,
		NativeJT:   nativeJT,
		VirtualJT:  virtualJT,
		placements: make(map[*mapred.Job]Placement),
	}
	s.prof = profiler.New(SimRunner(testbed.Options{
		Seed:          cfg.TrainingSeed,
		ClusterConfig: cl.Config(),
		EventSink:     cfg.EventSink,
	}))
	nativeNodes, virtualNodes := 0, 0
	if nativeJT != nil {
		nativeNodes = len(nativeJT.Trackers())
	}
	if virtualJT != nil {
		virtualNodes = len(virtualJT.Trackers())
	}
	pol := cfg.Policies
	if pol == nil {
		pol = policy.Default()
	}
	s.Placer = pol.Phase1.NewPlacer(policy.Phase1Env{
		Profiler:          s.prof,
		NativeNodes:       nativeNodes,
		VirtualNodes:      virtualNodes,
		OverheadThreshold: cfg.OverheadThreshold,
		Seed:              cfg.TrainingSeed,
	})
	if virtualJT != nil {
		if !cfg.DisableDRM {
			s.drm = NewDRM(engine, virtualJT, cfg.Modes, cfg.Epoch)
			s.drm.Policy = pol.DRM.Params()
		}
		if !cfg.DisableIPS {
			s.ips = NewIPS(engine, cl, virtualJT)
			s.ips.ApplyPolicy(pol.IPS.Params())
		}
	}
	return s, nil
}

// Engine returns the simulation engine.
func (s *System) Engine() *sim.Engine { return s.engine }

// SetTrace installs a tracer and metrics registry on the system and its
// Phase II controllers (the cluster, DFS and JobTrackers are wired where
// they are built — see testbed.Options and hybridmr.ClusterSpec). Either
// argument may be nil; instrumentation is then a no-op.
func (s *System) SetTrace(tr *trace.Tracer, reg *trace.Registry) {
	s.tracer = tr
	s.mPlacements = reg.Counter("core.placements")
	if s.drm != nil {
		s.drm.SetTrace(tr, reg)
	}
	if s.ips != nil {
		s.ips.SetTrace(tr, reg)
	}
}

// SetAudit installs a decision log on the system and its Phase II
// controllers. Phase I placements (with the JCT estimates weighed), DRM
// cap grants/deferrals and IPS mitigations are recorded on it; a nil
// log keeps auditing off.
func (s *System) SetAudit(l *audit.Log) {
	s.auditLog = l
	if s.drm != nil {
		s.drm.SetAudit(l)
	}
	if s.ips != nil {
		s.ips.SetAudit(l)
	}
}

// SetPerf installs a performance-attribution collector on the system,
// its Phase II controllers and the Phase I profiler. A nil collector
// keeps the instrumentation off.
func (s *System) SetPerf(ps *perfstat.Stats) {
	s.perf = ps
	if s.drm != nil {
		s.drm.SetPerf(ps)
	}
	if s.ips != nil {
		s.ips.SetPerf(ps)
	}
	s.prof.SetPerf(ps)
}

// SetTimeSeries attaches a windowed telemetry collector to the Phase II
// controllers — currently the IPS, whose per-service latency and
// SLA-violation series feed the SLO engine. A nil collector keeps the
// series off.
func (s *System) SetTimeSeries(ts *timeseries.Collector) {
	if s.ips != nil {
		s.ips.SetTimeSeries(ts)
	}
}

// Profiler exposes the Phase I profiler (e.g. for pre-training or
// accuracy experiments).
func (s *System) Profiler() *profiler.Profiler { return s.prof }

// DRM returns the Phase II resource manager, nil when disabled.
func (s *System) DRM() *DRM { return s.drm }

// IPS returns the Phase II interference prevention system, nil when
// disabled.
func (s *System) IPS() *IPS { return s.ips }

// DeployService places an interactive application on a VM of the virtual
// cluster and registers it for SLA monitoring. Per Algorithm 2,
// transactional workloads always land on the virtual partition.
func (s *System) DeployService(spec workload.ServiceSpec, vm *cluster.VM) (*workload.Service, error) {
	svc, err := workload.Deploy(spec, vm)
	if err != nil {
		return nil, err
	}
	s.services = append(s.services, svc)
	if s.ips != nil {
		s.ips.Watch(svc)
		s.ips.Start(s.cfg.SLAInterval)
	}
	return svc, nil
}

// Services returns the deployed interactive applications.
func (s *System) Services() []*workload.Service {
	out := make([]*workload.Service, len(s.services))
	copy(out, s.services)
	return out
}

// SubmitJob runs Phase I placement for a batch job and submits it to the
// chosen partition. desiredJCT of zero means no deadline. The returned
// placement says where it went.
func (s *System) SubmitJob(spec mapred.JobSpec, desiredJCT time.Duration, onDone func(*mapred.Job)) (*mapred.Job, Placement, error) {
	var placement Placement
	var reason string
	var candidates []audit.Candidate
	var err error
	s.perf.Enter("core.phase1")
	switch p := s.Placer.(type) {
	case ExplainedPlacer:
		placement, reason, candidates, err = p.PlaceExplained(spec, desiredJCT)
	case ReasonedPlacer:
		placement, reason, err = p.PlaceWithReason(spec, desiredJCT)
	default:
		placement, err = s.Placer.Place(spec, desiredJCT)
	}
	if s.perf != nil {
		s.perf.C.P1Placements++
		s.perf.C.P1CandidatesEvaluated += int64(len(candidates))
	}
	s.perf.Exit()
	if err != nil {
		return nil, 0, err
	}
	// Degrade gracefully when the chosen partition does not exist.
	degraded := ""
	if placement == PlacedNative && s.NativeJT == nil {
		placement = PlacedVirtual
		degraded = "; native partition missing, degraded to virtual"
	}
	if placement == PlacedVirtual && s.VirtualJT == nil {
		placement = PlacedNative
		degraded = "; virtual partition missing, degraded to native"
	}
	// Correlated-failure awareness: placing into a partition whose whole
	// failure domain is down (rack crash, power loss, network partition)
	// would park the job until the domain recovers. When the chosen side
	// has no tracker able to accept work and the other side does, flip.
	if s.NativeJT != nil && s.VirtualJT != nil {
		switch {
		case placement == PlacedNative && !s.NativeJT.AnyLiveTracker() && s.VirtualJT.AnyLiveTracker():
			placement = PlacedVirtual
			degraded += "; native partition has no live trackers (failure domain down), flipped to virtual"
		case placement == PlacedVirtual && !s.VirtualJT.AnyLiveTracker() && s.NativeJT.AnyLiveTracker():
			placement = PlacedNative
			degraded += "; virtual partition has no live trackers (failure domain down), flipped to native"
		}
	}
	jt := s.VirtualJT
	env := profiler.Virtual
	if placement == PlacedNative {
		jt = s.NativeJT
		env = profiler.Native
	}
	nodes := len(jt.Trackers())
	job, err := jt.Submit(spec, func(j *mapred.Job) {
		// Online profiling: fold the production run back into the Phase I
		// database so future placement decisions use real history.
		s.prof.Observe(spec, env, nodes, profiler.RunResult{
			JCTSec:    j.JCT().Seconds(),
			MapSec:    j.MapPhase().Seconds(),
			ReduceSec: j.ReducePhase().Seconds(),
		})
		if onDone != nil {
			onDone(j)
		}
	})
	if err != nil {
		return nil, 0, err
	}
	s.placements[job] = placement
	s.mPlacements.Inc()
	if reason == "" {
		reason = "placer gave no reason"
	}
	if s.tracer != nil {
		s.tracer.Instant("phase1", "placement", spec.Name,
			trace.S("placement", placement.String()),
			trace.S("reason", reason),
			trace.F("desired_jct_sec", desiredJCT.Seconds()))
	}
	s.auditLog.Add("phase1", "place",
		fmt.Sprintf("%s-%d", spec.Name, job.ID),
		placement.String(), reason+degraded, candidates...)
	if placement == PlacedVirtual && s.drm != nil {
		s.drm.Start()
	}
	return job, placement, nil
}

// PlacementOf reports where a job was placed.
func (s *System) PlacementOf(job *mapred.Job) (Placement, bool) {
	p, ok := s.placements[job]
	return p, ok
}

// Stop halts the Phase II control loops.
func (s *System) Stop() {
	if s.drm != nil {
		s.drm.Stop()
	}
	if s.ips != nil {
		s.ips.Stop()
	}
	if s.NativeJT != nil {
		s.NativeJT.Close()
	}
	if s.VirtualJT != nil {
		s.VirtualJT.Close()
	}
}
