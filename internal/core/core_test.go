package core

import (
	"testing"
	"time"

	"repro/internal/mapred"
	"repro/internal/profiler"
	"repro/internal/testbed"
	"repro/internal/workload"
)

// virtualRig builds a virtual cluster with static Hadoop slot caps (the
// Phase II baseline).
func virtualRig(t *testing.T, pms int) *testbed.Rig {
	t.Helper()
	rig, err := testbed.New(testbed.Options{
		PMs:          pms,
		VMsPerPM:     2,
		Seed:         11,
		MapredConfig: mapred.Config{SlotCaps: mapred.DefaultSlotCaps()},
	})
	if err != nil {
		t.Fatal(err)
	}
	return rig
}

func TestDRMImprovesJCT(t *testing.T) {
	run := func(withDRM bool, modes ResourceModes) float64 {
		rig := virtualRig(t, 8)
		job, err := rig.JT.Submit(workload.Sort().WithInputMB(4096), nil)
		if err != nil {
			t.Fatal(err)
		}
		if withDRM {
			drm := NewDRM(rig.Engine, rig.JT, modes, 5*time.Second)
			drm.Start()
			defer drm.Stop()
		}
		rig.Engine.Run()
		if !job.Done() {
			t.Fatal("job incomplete")
		}
		return job.JCT().Seconds()
	}
	base := run(false, ResourceModes{})
	managed := run(true, AllModes())
	reduction := (base - managed) / base
	t.Logf("default %.0fs, DRM %.0fs, reduction %.1f%%", base, managed, reduction*100)
	if reduction < 0.05 {
		t.Errorf("DRM reduction %.1f%% too small (default %v, DRM %v)", reduction*100, base, managed)
	}
	if reduction > 0.6 {
		t.Errorf("DRM reduction %.1f%% implausibly large", reduction*100)
	}
}

func TestDRMModeMatchesBottleneck(t *testing.T) {
	run := func(spec mapred.JobSpec, modes ResourceModes, enable bool) float64 {
		rig := virtualRig(t, 8)
		job, err := rig.JT.Submit(spec, nil)
		if err != nil {
			t.Fatal(err)
		}
		if enable {
			drm := NewDRM(rig.Engine, rig.JT, modes, 5*time.Second)
			drm.Start()
			defer drm.Stop()
		}
		rig.Engine.Run()
		if !job.Done() {
			t.Fatal("job incomplete")
		}
		return job.JCT().Seconds()
	}
	// PiEst's solo CPU-bound tasks (fewer tasks than slots) are exactly
	// where the static CPU container binds hardest.
	pi := workload.PiEst()
	pi.FixedMapTasks = 12 // 16 VMs: every task runs alone in its VM
	base := run(pi, ResourceModes{}, false)
	cpuOnly := run(pi, ResourceModes{CPU: true}, true)
	ioOnly := run(pi, ResourceModes{IO: true}, true)
	cpuGain := (base - cpuOnly) / base
	ioGain := (base - ioOnly) / base
	t.Logf("PiEst: base %.0fs cpu-gain %.1f%% io-gain %.1f%%", base, cpuGain*100, ioGain*100)
	if cpuGain <= ioGain || cpuGain < 0.05 {
		t.Errorf("CPU-bound PiEst: CPU mode gain %.1f%% not dominant over IO mode gain %.1f%%", cpuGain*100, ioGain*100)
	}
}

func TestIPSProtectsSLA(t *testing.T) {
	run := func(withIPS bool) (violationEpochs int, jobDone bool) {
		rig := virtualRig(t, 4)
		// Service on the first VM; batch job everywhere.
		svc, err := workload.Deploy(workload.RUBiS(), rig.VMs[0])
		if err != nil {
			t.Fatal(err)
		}
		svc.SetClients(3000)
		var ips *IPS
		if withIPS {
			ips = NewIPS(rig.Engine, rig.Cluster, rig.JT)
			ips.Watch(svc)
			ips.Start(5 * time.Second)
		}
		job, err := rig.JT.Submit(workload.Sort().WithInputMB(3072), nil)
		if err != nil {
			t.Fatal(err)
		}
		horizon := 45 * time.Minute
		for at := 10 * time.Second; at <= horizon; at += 10 * time.Second {
			rig.Engine.RunUntil(at)
			if svc.SLAViolated() {
				violationEpochs++
			}
			if job.Done() {
				break
			}
		}
		if ips != nil {
			ips.Stop()
		}
		rig.Engine.RunUntil(horizon)
		return violationEpochs, job.Done()
	}
	without, _ := run(false)
	with, done := run(true)
	t.Logf("violation epochs: without IPS %d, with IPS %d", without, with)
	if with >= without {
		t.Errorf("IPS did not reduce SLA violations: %d vs %d", with, without)
	}
	if !done {
		t.Error("batch job never completed under IPS")
	}
}

func TestProfilingPlacerDeadlineRouting(t *testing.T) {
	placer := &ProfilingPlacer{
		Profiler:     newTestProfiler(),
		NativeNodes:  8,
		VirtualNodes: 16,
	}
	sort := workload.Sort().WithInputMB(4096)
	// Impossible deadline: virtual estimate exceeds it -> native.
	got, err := placer.Place(sort, 30*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if got != PlacedNative {
		t.Errorf("tight deadline placed %v, want native", got)
	}
	// Generous deadline -> virtual.
	got, err = placer.Place(sort, 24*time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	if got != PlacedVirtual {
		t.Errorf("loose deadline placed %v, want virtual", got)
	}
}

func TestProfilingPlacerOverheadRouting(t *testing.T) {
	placer := &ProfilingPlacer{
		Profiler:          newTestProfiler(),
		NativeNodes:       8,
		VirtualNodes:      16,
		OverheadThreshold: 0.10,
	}
	// Sort is I/O bound: virtualization inflates it beyond 10%.
	got, err := placer.Place(workload.Sort().WithInputMB(4096), 0)
	if err != nil {
		t.Fatal(err)
	}
	if got != PlacedNative {
		t.Errorf("I/O-bound job placed %v, want native under 10%% threshold", got)
	}
	// PiEst is CPU bound: overhead is small, stays virtual.
	got, err = placer.Place(workload.PiEst(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if got != PlacedVirtual {
		t.Errorf("CPU-bound job placed %v, want virtual", got)
	}
}

func TestRandomAndStaticPlacers(t *testing.T) {
	r := NewRandomPlacer(3)
	counts := map[Placement]int{}
	for i := 0; i < 100; i++ {
		p, err := r.Place(workload.PiEst(), 0)
		if err != nil {
			t.Fatal(err)
		}
		counts[p]++
	}
	if counts[PlacedNative] < 20 || counts[PlacedVirtual] < 20 {
		t.Errorf("random placer skewed: %v", counts)
	}
	for _, want := range []Placement{PlacedNative, PlacedVirtual} {
		got, err := StaticPlacer(want).Place(workload.Sort(), 0)
		if err != nil || got != want {
			t.Errorf("StaticPlacer(%v) = %v, %v", want, got, err)
		}
	}
}

func TestSystemEndToEnd(t *testing.T) {
	rig := virtualRig(t, 4)
	// Add a native partition on 4 more PMs in the same cluster.
	nativePMs := rig.Cluster.AddPMs("native", 4)
	nativeJT := mapred.NewJobTracker(rig.Engine, rig.FS, mapred.Config{}, mapred.Fair{})
	for _, pm := range nativePMs {
		nativeJT.AddTracker(pm)
	}
	sys, err := NewSystem(rig.Engine, rig.Cluster, nativeJT, rig.JT, Config{TrainingSeed: 21})
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Stop()
	svc, err := sys.DeployService(workload.RUBiS(), rig.VMs[1])
	if err != nil {
		t.Fatal(err)
	}
	svc.SetClients(1000)
	job, placement, err := sys.SubmitJob(workload.Sort().WithInputMB(2048), 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if p, ok := sys.PlacementOf(job); !ok || p != placement {
		t.Errorf("PlacementOf = %v, %v; want %v", p, ok, placement)
	}
	rig.Engine.RunUntil(2 * time.Hour)
	if !job.Done() {
		t.Fatal("job incomplete")
	}
	if len(sys.Services()) != 1 {
		t.Errorf("Services() = %d", len(sys.Services()))
	}
}

func TestSystemRequiresAPartition(t *testing.T) {
	rig := virtualRig(t, 2)
	if _, err := NewSystem(rig.Engine, rig.Cluster, nil, nil, Config{}); err == nil {
		t.Error("NewSystem with no partitions succeeded")
	}
}

func TestSystemFallsBackWhenPartitionMissing(t *testing.T) {
	rig := virtualRig(t, 4)
	sys, err := NewSystem(rig.Engine, rig.Cluster, nil, rig.JT, Config{TrainingSeed: 5})
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Stop()
	// Force a native decision; the system must degrade to virtual.
	sys.Placer = StaticPlacer(PlacedNative)
	_, placement, err := sys.SubmitJob(workload.PiEst(), 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if placement != PlacedVirtual {
		t.Errorf("placement = %v, want virtual fallback", placement)
	}
	rig.Engine.Run()
}

func TestIPSActionLogAndBottleneck(t *testing.T) {
	rig := virtualRig(t, 2)
	svc, err := workload.Deploy(workload.RUBiS(), rig.VMs[0])
	if err != nil {
		t.Fatal(err)
	}
	svc.SetClients(4000)
	ips := NewIPS(rig.Engine, rig.Cluster, rig.JT)
	ips.Watch(svc)
	ips.Start(5 * time.Second)
	if _, err := rig.JT.Submit(workload.Sort().WithInputMB(1024), nil); err != nil {
		t.Fatal(err)
	}
	rig.Engine.RunUntil(10 * time.Minute)
	ips.Stop()
	if len(ips.Actions()) == 0 {
		t.Error("IPS took no actions despite heavy collocation")
	}
	for _, a := range ips.Actions() {
		switch a.Kind {
		case "relocate", "throttle", "pause", "resume", "migrate", "blacklist", "unblacklist":
		default:
			t.Errorf("unknown action kind %q", a.Kind)
		}
		if a.Service == "" || a.Target == "" {
			t.Errorf("incomplete action record: %+v", a)
		}
	}
}

func TestDRMEstimatorLearns(t *testing.T) {
	rig := virtualRig(t, 4)
	drm := NewDRM(rig.Engine, rig.JT, AllModes(), 5*time.Second)
	job, err := rig.JT.Submit(workload.Sort().WithInputMB(2048), nil)
	if err != nil {
		t.Fatal(err)
	}
	drm.Start()
	rig.Engine.Run()
	if !job.Done() {
		t.Fatal("job incomplete")
	}
	if _, ok := drm.EstimatedSpeedAt("Sort", mapred.MapTask, 0.8); !ok {
		t.Error("estimator has no model for Sort maps after a full run")
	}
	if drm.Adjustments == 0 {
		t.Error("DRM made no adjustments")
	}
}

// newTestProfiler trains on fast mini-sims.
func newTestProfiler() *profiler.Profiler {
	return profiler.New(SimRunner(testbed.Options{Seed: 77}))
}

func TestPlacerValidation(t *testing.T) {
	p := &ProfilingPlacer{}
	if _, err := p.Place(workload.Sort(), 0); err == nil {
		t.Error("placer without profiler succeeded")
	}
	p = &ProfilingPlacer{Profiler: newTestProfiler(), VirtualNodes: 0, NativeNodes: 4}
	got, err := p.Place(workload.Sort(), 0)
	if err != nil || got != PlacedNative {
		t.Errorf("no virtual partition: %v, %v", got, err)
	}
}

func TestModesString(t *testing.T) {
	tests := []struct {
		m    ResourceModes
		want string
	}{
		{AllModes(), "cpu+mem+io"},
		{ResourceModes{CPU: true}, "cpu"},
		{ResourceModes{Memory: true}, "mem"},
		{ResourceModes{IO: true}, "io"},
	}
	for _, tt := range tests {
		if got := tt.m.String(); got != tt.want {
			t.Errorf("String() = %q, want %q", got, tt.want)
		}
	}
}

func TestPlacementString(t *testing.T) {
	if PlacedNative.String() != "native" || PlacedVirtual.String() != "virtual" {
		t.Error("Placement String() wrong")
	}
}

func TestIPSMigratesBatchVMUnderPersistentViolation(t *testing.T) {
	rig := virtualRig(t, 4)
	// Dedicated service VM on PM 0, heavily loaded so collocated batch
	// keeps it violated; one spare PM with room gives the migration a
	// destination.
	svcVM, err := rig.Cluster.AddVM("svc", rig.PMs[0], 1, 1024)
	if err != nil {
		t.Fatal(err)
	}
	spare := rig.Cluster.AddPM("spare")
	_ = spare
	svc, err := workload.Deploy(workload.RUBiS(), svcVM)
	if err != nil {
		t.Fatal(err)
	}
	svc.SetClients(5200)
	ips := NewIPS(rig.Engine, rig.Cluster, rig.JT)
	ips.Watch(svc)
	ips.Start(5 * time.Second)
	defer ips.Stop()
	// A continuous stream keeps pressure on every host.
	spec := workload.Sort().WithInputMB(2048)
	var resubmit func(*mapred.Job)
	resubmit = func(*mapred.Job) {
		if rig.Engine.Now() < 20*time.Minute {
			_, _ = rig.JT.Submit(spec, resubmit)
		}
	}
	for i := 0; i < 3; i++ {
		if _, err := rig.JT.Submit(spec, resubmit); err != nil {
			t.Fatal(err)
		}
	}
	rig.Engine.RunUntil(25 * time.Minute)
	migrated := false
	for _, a := range ips.Actions() {
		if a.Kind == "migrate" {
			migrated = true
		}
	}
	if !migrated {
		t.Log("actions:", len(ips.Actions()))
		t.Skip("no migration triggered at this load; escalation path exercised elsewhere")
	}
}
