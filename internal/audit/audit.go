// Package audit records scheduler decisions as structured, sim-clock
// stamped records: which candidates were considered, how they scored,
// and why the winner won (or why nothing was done). It is the
// explainability companion to package trace — spans say *what*
// happened, audit records say *why*.
//
// Like trace.Tracer, a nil *Log accepts the full API as a no-op, so
// subsystems hold a *Log and call it unconditionally. Recording never
// schedules events, never reads wall clocks, and never perturbs the
// simulation: a run with auditing enabled is byte-identical to one
// without.
//
// The log is a ring buffer: once capacity is reached the oldest
// records are dropped (Dropped reports how many) so long simulations
// cannot grow without bound. Records export as JSONL with a fixed
// field order, making same-seed exports byte-identical.
package audit

import (
	"encoding/json"
	"io"
	"time"
)

// DefaultCap is the ring-buffer capacity used when New is given a
// non-positive capacity.
const DefaultCap = 16384

// Clock is anything that can report the current simulated time.
// *sim.Engine satisfies it.
type Clock interface {
	Now() time.Duration
}

// Candidate is one option the scheduler weighed while making a
// decision. Score semantics are decision-specific (estimated JCT
// seconds for placement, benefit for DRM grants, progress rate for
// speculation) and stated in Note.
type Candidate struct {
	Name   string
	Score  float64
	Chosen bool
	Note   string
}

// Record is one audited decision.
type Record struct {
	Seq        uint64        // 1-based, monotonic, survives ring drops
	At         time.Duration // simulated time of the decision
	Subsystem  string        // "phase1", "drm", "ips", "mapred", "cluster", "fault"
	Action     string        // e.g. "place", "assign", "speculate", "migrate-start"
	Subject    string        // what the decision is about (job, task, VM, tracker)
	Decision   string        // what was decided ("native", tracker name, "none", ...)
	Reason     string        // why, in one human-readable clause
	Candidates []Candidate   // options weighed, if any
}

// Log is a bounded, deterministic decision log. It is not safe for
// concurrent use; like the rest of the simulation it belongs to a
// single engine goroutine.
type Log struct {
	clock Clock
	cap   int
	seq   uint64
	buf   []Record
}

// New returns a Log holding at most capacity records (DefaultCap if
// capacity <= 0). The clock is installed later via SetClock, mirroring
// how tracers are wired.
func New(capacity int) *Log {
	if capacity <= 0 {
		capacity = DefaultCap
	}
	return &Log{cap: capacity}
}

// SetClock installs the time source used to stamp records.
func (l *Log) SetClock(c Clock) {
	if l == nil {
		return
	}
	l.clock = c
}

// Add appends one decision record. Candidates are retained as given;
// callers should order them deterministically (e.g. by score, ties by
// name) since record bytes feed byte-compared exports.
func (l *Log) Add(subsystem, action, subject, decision, reason string, candidates ...Candidate) {
	if l == nil {
		return
	}
	r := Record{
		Subsystem:  subsystem,
		Action:     action,
		Subject:    subject,
		Decision:   decision,
		Reason:     reason,
		Candidates: candidates,
	}
	if l.clock != nil {
		r.At = l.clock.Now()
	}
	r.Seq = l.seq + 1
	l.seq++
	if len(l.buf) < l.cap {
		l.buf = append(l.buf, r)
		return
	}
	l.buf[int((r.Seq-1)%uint64(l.cap))] = r
}

// Len reports how many records are currently retained.
func (l *Log) Len() int {
	if l == nil {
		return 0
	}
	return len(l.buf)
}

// Dropped reports how many records the ring has discarded.
func (l *Log) Dropped() uint64 {
	if l == nil {
		return 0
	}
	return l.seq - uint64(len(l.buf))
}

// Records returns the retained records oldest-first. The slice is a
// copy; mutating it does not affect the log.
func (l *Log) Records() []Record {
	if l == nil || len(l.buf) == 0 {
		return nil
	}
	out := make([]Record, 0, len(l.buf))
	if l.seq <= uint64(l.cap) {
		return append(out, l.buf...)
	}
	start := int(l.seq % uint64(l.cap))
	out = append(out, l.buf[start:]...)
	return append(out, l.buf[:start]...)
}

// Filter returns the retained records matching pred, oldest-first.
func (l *Log) Filter(pred func(Record) bool) []Record {
	var out []Record
	for _, r := range l.Records() {
		if pred(r) {
			out = append(out, r)
		}
	}
	return out
}

// jsonCandidate and jsonRecord pin the JSONL field order; struct-field
// order is what encoding/json emits, so exports are byte-stable.
type jsonCandidate struct {
	Name   string  `json:"name"`
	Score  float64 `json:"score"`
	Chosen bool    `json:"chosen,omitempty"`
	Note   string  `json:"note,omitempty"`
}

type jsonRecord struct {
	Seq        uint64          `json:"seq"`
	TsUs       int64           `json:"ts_us"`
	Subsystem  string          `json:"subsystem"`
	Action     string          `json:"action"`
	Subject    string          `json:"subject"`
	Decision   string          `json:"decision"`
	Reason     string          `json:"reason,omitempty"`
	Candidates []jsonCandidate `json:"candidates,omitempty"`
}

// WriteJSONL writes the retained records as one JSON object per line,
// oldest first. Timestamps are integer microseconds of simulated time
// (ts_us), matching the trace JSONL convention.
func (l *Log) WriteJSONL(w io.Writer) error {
	enc := json.NewEncoder(w)
	for _, r := range l.Records() {
		jr := jsonRecord{
			Seq:       r.Seq,
			TsUs:      r.At.Microseconds(),
			Subsystem: r.Subsystem,
			Action:    r.Action,
			Subject:   r.Subject,
			Decision:  r.Decision,
			Reason:    r.Reason,
		}
		for _, c := range r.Candidates {
			jr.Candidates = append(jr.Candidates, jsonCandidate{
				Name: c.Name, Score: c.Score, Chosen: c.Chosen, Note: c.Note,
			})
		}
		if err := enc.Encode(jr); err != nil {
			return err
		}
	}
	return nil
}
