package audit

import (
	"bytes"
	"strings"
	"testing"
	"time"
)

type fakeClock struct{ now time.Duration }

func (c *fakeClock) Now() time.Duration { return c.now }

func TestNilLogIsSafe(t *testing.T) {
	var l *Log
	l.SetClock(&fakeClock{})
	l.Add("phase1", "place", "job", "native", "cheaper")
	if l.Len() != 0 || l.Dropped() != 0 || l.Records() != nil {
		t.Error("nil log should be an inert no-op")
	}
	if got := l.Filter(func(Record) bool { return true }); got != nil {
		t.Errorf("nil log Filter = %v, want nil", got)
	}
}

func TestAddStampsAndSequences(t *testing.T) {
	clk := &fakeClock{}
	l := New(8)
	l.SetClock(clk)
	clk.now = 3 * time.Second
	l.Add("phase1", "place", "Sort#1", "native", "lower estimated JCT",
		Candidate{Name: "native", Score: 120, Chosen: true},
		Candidate{Name: "virtual", Score: 150})
	clk.now = 5 * time.Second
	l.Add("ips", "throttle", "vm-1", "throttle", "SLA violation")

	recs := l.Records()
	if len(recs) != 2 {
		t.Fatalf("Len = %d, want 2", len(recs))
	}
	if recs[0].Seq != 1 || recs[1].Seq != 2 {
		t.Errorf("seqs = %d,%d want 1,2", recs[0].Seq, recs[1].Seq)
	}
	if recs[0].At != 3*time.Second || recs[1].At != 5*time.Second {
		t.Errorf("timestamps = %v,%v", recs[0].At, recs[1].At)
	}
	if len(recs[0].Candidates) != 2 || !recs[0].Candidates[0].Chosen {
		t.Errorf("candidates not retained: %+v", recs[0].Candidates)
	}
}

func TestRingDropsOldest(t *testing.T) {
	l := New(4)
	for i := 0; i < 10; i++ {
		l.Add("s", "a", "subject", "d", "")
	}
	if l.Len() != 4 {
		t.Fatalf("Len = %d, want 4", l.Len())
	}
	if l.Dropped() != 6 {
		t.Errorf("Dropped = %d, want 6", l.Dropped())
	}
	recs := l.Records()
	for i, r := range recs {
		if want := uint64(7 + i); r.Seq != want {
			t.Errorf("record %d seq = %d, want %d", i, r.Seq, want)
		}
	}
}

func TestWriteJSONLIsDeterministic(t *testing.T) {
	build := func() *Log {
		clk := &fakeClock{now: 1500 * time.Millisecond}
		l := New(0)
		l.SetClock(clk)
		l.Add("drm", "cap-grant", "pm-1/map", "granted 2 slots", "headroom available",
			Candidate{Name: "sort-1", Score: 0.5, Chosen: true, Note: "benefit"},
			Candidate{Name: "grep-2", Score: 0.25, Note: "benefit"})
		return l
	}
	var a, b bytes.Buffer
	if err := build().WriteJSONL(&a); err != nil {
		t.Fatal(err)
	}
	if err := build().WriteJSONL(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Error("two identical logs exported different bytes")
	}
	line := strings.TrimSpace(a.String())
	for _, want := range []string{
		`"seq":1`, `"ts_us":1500000`, `"subsystem":"drm"`, `"action":"cap-grant"`,
		`"subject":"pm-1/map"`, `"decision":"granted 2 slots"`,
		`"chosen":true`, `"note":"benefit"`,
	} {
		if !strings.Contains(line, want) {
			t.Errorf("JSONL lacks %s:\n%s", want, line)
		}
	}
	if strings.Contains(line, `"chosen":false`) {
		t.Error("chosen:false should be omitted")
	}
}

func TestFilter(t *testing.T) {
	l := New(0)
	l.Add("phase1", "place", "a", "native", "")
	l.Add("ips", "pause", "b", "pause", "")
	l.Add("phase1", "place", "c", "virtual", "")
	got := l.Filter(func(r Record) bool { return r.Subsystem == "phase1" })
	if len(got) != 2 || got[0].Subject != "a" || got[1].Subject != "c" {
		t.Errorf("Filter = %+v", got)
	}
}
