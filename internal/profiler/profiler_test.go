package profiler

import (
	"errors"
	"math"
	"testing"

	"repro/internal/mapred"
)

// analyticRunner mimics a MapReduce cluster with map time proportional to
// data/nodes and a reduce phase with a floor — the shapes of Figure 5.
func analyticRunner(overhead float64) Runner {
	return func(spec mapred.JobSpec, env Environment, nodes int, seed int64) (RunResult, error) {
		data := spec.InputMB
		if spec.FixedMapWork > 0 {
			data = float64(spec.FixedMapTasks)
		}
		envFactor := 1.0
		if env == Virtual {
			envFactor = 1.2
		}
		mapSec := (10 + 0.08*data/float64(nodes)) * envFactor
		reduceSec := (20 + 0.03*data/float64(nodes)) * envFactor
		return RunResult{
			JCTSec:    (mapSec + reduceSec) * (1 + overhead),
			MapSec:    mapSec,
			ReduceSec: reduceSec,
		}, nil
	}
}

func sortSpec(mb float64) mapred.JobSpec {
	return mapred.JobSpec{
		Name:             "Sort",
		InputMB:          mb,
		Reduces:          4,
		MapStreamMBps:    50,
		MapCPUPerMB:      0.004,
		ShuffleRatio:     1,
		ReduceStreamMBps: 40,
	}
}

func TestDBExactLookup(t *testing.T) {
	db := NewDB()
	want := RunResult{JCTSec: 100, MapSec: 60, ReduceSec: 40}
	db.Add("Sort", Virtual, 8, 1024, want)
	got, ok := db.Lookup("Sort", Virtual, 8, 1024)
	if !ok || got != want {
		t.Errorf("Lookup = %+v, %v", got, ok)
	}
	if _, ok := db.Lookup("Sort", Native, 8, 1024); ok {
		t.Error("lookup matched the wrong environment")
	}
	if _, ok := db.Lookup("Sort", Virtual, 4, 1024); ok {
		t.Error("lookup matched the wrong cluster size")
	}
	est, err := db.Estimate("Sort", Virtual, 8, 1024)
	if err != nil || est != want {
		t.Errorf("Estimate exact = %+v, %v", est, err)
	}
}

func TestEstimateEmptyDB(t *testing.T) {
	db := NewDB()
	if _, err := db.Estimate("Sort", Virtual, 8, 1024); !errors.Is(err, ErrNoProfile) {
		t.Errorf("err = %v, want ErrNoProfile", err)
	}
}

func TestDataSizeExtrapolation(t *testing.T) {
	db := NewDB()
	// Linear ground truth at 8 nodes: JCT = 50 + 0.1*MB.
	for _, mb := range []float64{512, 1024, 2048} {
		db.Add("Sort", Virtual, 8, mb, RunResult{
			JCTSec: 50 + 0.1*mb, MapSec: 30 + 0.07*mb, ReduceSec: 20 + 0.03*mb,
		})
	}
	got, err := db.Estimate("Sort", Virtual, 8, 8192)
	if err != nil {
		t.Fatal(err)
	}
	want := 50 + 0.1*8192
	if math.Abs(got.JCTSec-want) > 1 {
		t.Errorf("extrapolated JCT = %v, want %v", got.JCTSec, want)
	}
}

func TestClusterSizeExtrapolation(t *testing.T) {
	db := NewDB()
	// Map phase 600/n + 30; reduce flat-ish then floor.
	for _, n := range []int{2, 4, 6, 8, 10, 12} {
		db.Add("Sort", Virtual, n, 2048, RunResult{
			MapSec:    30 + 600/float64(n),
			ReduceSec: 40 + 120/float64(n),
			JCTSec:    70 + 720/float64(n),
		})
	}
	got, err := db.Estimate("Sort", Virtual, 24, 2048)
	if err != nil {
		t.Fatal(err)
	}
	wantMap := 30 + 600.0/24
	if math.Abs(got.MapSec-wantMap) > 3 {
		t.Errorf("map extrapolation = %v, want ~%v", got.MapSec, wantMap)
	}
	if got.JCTSec < got.MapSec+got.ReduceSec-1e-6 {
		t.Errorf("JCT %v below phase sum %v", got.JCTSec, got.MapSec+got.ReduceSec)
	}
}

func TestCombinedExtrapolation(t *testing.T) {
	db := NewDB()
	run := analyticRunner(0)
	// Profile a small grid: data series at 4 nodes, cluster series at
	// 512 MB.
	for _, mb := range []float64{512, 1024} {
		r, err := run(sortSpec(mb), Virtual, 4, 1)
		if err != nil {
			t.Fatal(err)
		}
		db.Add("Sort", Virtual, 4, mb, r)
	}
	for _, n := range []int{8, 16} {
		r, err := run(sortSpec(512), Virtual, n, 1)
		if err != nil {
			t.Fatal(err)
		}
		db.Add("Sort", Virtual, n, 512, r)
	}
	got, err := db.Estimate("Sort", Virtual, 16, 4096)
	if err != nil {
		t.Fatal(err)
	}
	truth, err := run(sortSpec(4096), Virtual, 16, 1)
	if err != nil {
		t.Fatal(err)
	}
	relErr := math.Abs(got.JCTSec-truth.JCTSec) / truth.JCTSec
	if relErr > 0.35 {
		t.Errorf("combined extrapolation error %.0f%% (got %v, truth %v)", relErr*100, got.JCTSec, truth.JCTSec)
	}
}

func TestProfilerTrainAndEstimate(t *testing.T) {
	p := New(analyticRunner(0))
	spec := sortSpec(20 * 1024)
	got, err := p.EstimateJCT(spec, Virtual, 8)
	if err != nil {
		t.Fatal(err)
	}
	truth, err := analyticRunner(0)(spec, Virtual, 8, 1)
	if err != nil {
		t.Fatal(err)
	}
	relErr := math.Abs(got-truth.JCTSec) / truth.JCTSec
	if relErr > 0.25 {
		t.Errorf("profiling error %.0f%%: est %v, truth %v", relErr*100, got, truth.JCTSec)
	}
	// Training populated both cluster sizes x data fractions.
	if n := p.DB.Len("Sort", Virtual); n != 4 {
		t.Errorf("DB has %d entries, want 4", n)
	}
	// A second estimate must not re-train (DB size stable).
	if _, err := p.EstimateJCT(spec, Virtual, 8); err != nil {
		t.Fatal(err)
	}
	if n := p.DB.Len("Sort", Virtual); n != 4 {
		t.Errorf("re-estimate re-trained: %d entries", n)
	}
}

func TestProfilerDistinguishesEnvironments(t *testing.T) {
	p := New(analyticRunner(0))
	spec := sortSpec(10 * 1024)
	native, err := p.EstimateJCT(spec, Native, 8)
	if err != nil {
		t.Fatal(err)
	}
	virtual, err := p.EstimateJCT(spec, Virtual, 8)
	if err != nil {
		t.Fatal(err)
	}
	ratio := virtual / native
	if ratio < 1.1 || ratio > 1.3 {
		t.Errorf("virtual/native JCT ratio = %v, want ~1.2 (runner's env factor)", ratio)
	}
}

func TestProfilerNoRunner(t *testing.T) {
	p := New(nil)
	if _, err := p.EstimateJCT(sortSpec(1024), Virtual, 8); err == nil {
		t.Error("estimate without runner succeeded")
	}
}

func TestProfilerRunnerError(t *testing.T) {
	p := New(func(mapred.JobSpec, Environment, int, int64) (RunResult, error) {
		return RunResult{}, errors.New("boom")
	})
	if _, err := p.EstimateJCT(sortSpec(1024), Virtual, 8); err == nil {
		t.Error("runner failure not propagated")
	}
}

func TestFixedWorkJobTraining(t *testing.T) {
	p := New(analyticRunner(0))
	pi := mapred.JobSpec{
		Name:          "PiEst",
		Reduces:       1,
		FixedMapWork:  55,
		FixedMapTasks: 48,
	}
	if _, err := p.EstimateJCT(pi, Virtual, 8); err != nil {
		t.Fatalf("fixed-work job: %v", err)
	}
}

func TestEnvironmentString(t *testing.T) {
	if Native.String() != "native" || Virtual.String() != "virtual" {
		t.Error("Environment String() wrong")
	}
}

func TestObserveFeedsOnlineProfile(t *testing.T) {
	p := New(analyticRunner(0))
	spec := sortSpec(20 * 1024)
	// Training-based estimate first.
	trained, err := p.EstimateJCT(spec, Virtual, 24)
	if err != nil {
		t.Fatal(err)
	}
	// A production run lands at a very different JCT; the exact-match
	// path must now return the observed truth.
	p.Observe(spec, Virtual, 24, RunResult{JCTSec: trained * 2, MapSec: trained, ReduceSec: trained})
	after, err := p.EstimateJCT(spec, Virtual, 24)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(after-trained*2) > 1e-9 {
		t.Errorf("post-observation estimate = %v, want observed %v", after, trained*2)
	}
}

func TestObserveFixedWorkKey(t *testing.T) {
	p := New(analyticRunner(0))
	pi := mapred.JobSpec{Name: "PiEst", Reduces: 1, FixedMapWork: 55, FixedMapTasks: 48}
	p.Observe(pi, Native, 8, RunResult{JCTSec: 123, MapSec: 100, ReduceSec: 23})
	got, ok := p.DB.Lookup("PiEst", Native, 8, 48)
	if !ok || got.JCTSec != 123 {
		t.Errorf("fixed-work observation not keyed by task count: %+v, %v", got, ok)
	}
}
