// Package profiler implements HybridMR's Phase I job profiling
// (Algorithm 1): a database of past job executions keyed by environment,
// cluster size and input size, trained by running jobs at small scale,
// and an estimator that extrapolates job completion time — linearly in
// data size, and per map/reduce phase in cluster size (inverse relation
// for the map phase, piece-wise for the reduce phase), exactly as the
// paper's Figure 5 analysis prescribes.
package profiler

import (
	"errors"
	"fmt"
	"sort"

	"repro/internal/mapred"
	"repro/internal/perfstat"
	"repro/internal/stats"
)

// Environment distinguishes where a profiled run executed.
type Environment int

// Environments.
const (
	Native Environment = iota + 1
	Virtual
)

// String names the environment.
func (e Environment) String() string {
	if e == Native {
		return "native"
	}
	return "virtual"
}

// RunResult is one profiled execution.
type RunResult struct {
	// JCTSec is end-to-end job completion time in seconds.
	JCTSec float64
	// MapSec and ReduceSec are the phase durations.
	MapSec    float64
	ReduceSec float64
}

// ErrNoProfile is returned when the database lacks the observations an
// estimate would need.
var ErrNoProfile = errors.New("profiler: insufficient profile data")

type entry struct {
	nodes  int
	dataMB float64
	result RunResult
}

// keyIndex accelerates per-key history queries. Every estimator path
// filters the history by either cluster size (exact int match) or data
// size (almostEqual float match) and then consumes the survivors in
// insertion order; the index stores, per key, the entry indices grouped
// by each filter value so a query touches only the group it needs. The
// groups preserve ascending entry order, so arrays rebuilt from them are
// element-for-element identical to the old full-scan filters — the
// regression fits, and therefore every estimate, are bit-exact.
type keyIndex struct {
	// byNodes maps a cluster size to the ascending entry indices recorded
	// at that size.
	byNodes map[int][]int
	// nodesAsc is the sorted list of distinct cluster sizes seen, kept in
	// ascending order as sizes first appear.
	nodesAsc []int
	// dataVals groups entries by data size, one group per distinct value
	// (first-appearance order). almostEqual is not transitive, so a group
	// member may sit up to 1e-6 from its representative; queries widen the
	// representative check to 2e-6 and re-test members individually.
	dataVals []dataVal
}

type dataVal struct {
	mb   float64
	idxs []int // ascending entry indices with almostEqual(dataMB, mb)
}

func (ki *keyIndex) add(i int, e entry) {
	if _, ok := ki.byNodes[e.nodes]; !ok {
		pos := sort.SearchInts(ki.nodesAsc, e.nodes)
		ki.nodesAsc = append(ki.nodesAsc, 0)
		copy(ki.nodesAsc[pos+1:], ki.nodesAsc[pos:])
		ki.nodesAsc[pos] = e.nodes
	}
	ki.byNodes[e.nodes] = append(ki.byNodes[e.nodes], i)
	for gi := range ki.dataVals {
		if almostEqual(ki.dataVals[gi].mb, e.dataMB) {
			ki.dataVals[gi].idxs = append(ki.dataVals[gi].idxs, i)
			return
		}
	}
	ki.dataVals = append(ki.dataVals, dataVal{mb: e.dataMB, idxs: []int{i}})
}

// DB is the profile database: per (job, environment), the history of
// observed runs plus the query index over it.
type DB struct {
	entries map[string][]entry
	index   map[string]*keyIndex
	perf    *perfstat.Stats
}

// NewDB creates an empty profile database.
func NewDB() *DB {
	return &DB{
		entries: make(map[string][]entry),
		index:   make(map[string]*keyIndex),
	}
}

func dbKey(job string, env Environment) string {
	return fmt.Sprintf("%s/%s", job, env)
}

// Add records an observation.
func (db *DB) Add(job string, env Environment, nodes int, dataMB float64, r RunResult) {
	k := dbKey(job, env)
	e := entry{nodes: nodes, dataMB: dataMB, result: r}
	ki, ok := db.index[k]
	if !ok {
		ki = &keyIndex{byNodes: make(map[int][]int)}
		db.index[k] = ki
	}
	ki.add(len(db.entries[k]), e)
	db.entries[k] = append(db.entries[k], e)
}

// Len returns the number of observations for a job/environment.
func (db *DB) Len(job string, env Environment) int {
	return len(db.entries[dbKey(job, env)])
}

// Lookup returns an exact match if one exists. Only entries recorded at
// the requested cluster size are visited; within that group the scan
// runs in insertion order, so the match returned is the same first match
// the old full-history walk found.
func (db *DB) Lookup(job string, env Environment, nodes int, dataMB float64) (RunResult, bool) {
	k := dbKey(job, env)
	ki := db.index[k]
	if ki == nil {
		return RunResult{}, false
	}
	all := db.entries[k]
	for _, i := range ki.byNodes[nodes] {
		if db.perf != nil {
			db.perf.C.P1ProfileEntriesScanned++
		}
		if almostEqual(all[i].dataMB, dataMB) {
			return all[i].result, true
		}
	}
	return RunResult{}, false
}

func almostEqual(a, b float64) bool {
	d := a - b
	return d < 1e-6 && d > -1e-6
}

// Estimate implements Algorithm 1. Resolution order:
//
//  1. exact (cluster size, data size) match;
//  2. same cluster size with other data sizes: linear extrapolation in
//     data size (Figure 5(d));
//  3. same data size with other cluster sizes: inverse-linear
//     extrapolation of the map phase and piece-wise extrapolation of the
//     reduce phase in cluster size (Figures 5(a)-(c));
//  4. both differ: data-size extrapolation at the nearest profiled
//     cluster size, rescaled by the cluster-size model.
func (db *DB) Estimate(job string, env Environment, nodes int, dataMB float64) (RunResult, error) {
	k := dbKey(job, env)
	all := db.entries[k]
	ki := db.index[k]
	if db.perf != nil {
		// P1ProfileEntriesScanned now counts the entries each resolution
		// step actually reads through the index, not a full-history pass
		// per call; an exact-match hit touches only the handful of entries
		// recorded at the requested cluster size.
		db.perf.C.P1Estimates++
	}
	if len(all) == 0 {
		return RunResult{}, fmt.Errorf("%w: no runs of %s on %s", ErrNoProfile, job, env)
	}
	if r, ok := db.Lookup(job, env, nodes, dataMB); ok {
		return r, nil
	}

	if r, err := db.extrapolateData(all, ki, nodes, dataMB); err == nil {
		return r, nil
	}
	if r, err := db.extrapolateCluster(all, ki, nodes, dataMB); err == nil {
		return r, nil
	}

	// Combined: fit each phase linearly in data size at the nearest
	// profiled cluster size n0, then carry the slope (the per-MB work
	// term) across cluster sizes by the paper's inverse model: a phase
	// is a constant plus work/n, so phase(n, d) = intercept + slope*d*n0/n.
	nearest, ok := nearestNodes(ki, nodes)
	if !ok {
		return RunResult{}, fmt.Errorf("%w: no usable runs of %s", ErrNoProfile, job)
	}
	return db.combinedEstimate(all, ki, nearest, nodes, dataMB)
}

func (db *DB) combinedEstimate(all []entry, ki *keyIndex, n0, nodes int, dataMB float64) (RunResult, error) {
	group := ki.byNodes[n0]
	if db.perf != nil {
		db.perf.C.P1ProfileEntriesScanned += int64(len(group))
	}
	var xs, ms, rs []float64
	for _, i := range group {
		e := all[i]
		xs = append(xs, e.dataMB)
		ms = append(ms, e.result.MapSec)
		rs = append(rs, e.result.ReduceSec)
	}
	if len(xs) < 2 {
		return RunResult{}, ErrNoProfile
	}
	mapM, err := stats.FitLinear(xs, ms)
	if err != nil {
		return RunResult{}, err
	}
	redM, err := stats.FitLinear(xs, rs)
	if err != nil {
		return RunResult{}, err
	}
	ratio := float64(n0) / float64(nodes)
	r := RunResult{
		MapSec:    mapM.Intercept + mapM.Slope*dataMB*ratio,
		ReduceSec: redM.Intercept + redM.Slope*dataMB*ratio,
	}
	r.JCTSec = r.MapSec + r.ReduceSec
	return clampResult(r), nil
}

// extrapolateData fits JCT (and phases) linearly against data size using
// runs at exactly the requested cluster size; the index hands over that
// group directly, in insertion order.
func (db *DB) extrapolateData(all []entry, ki *keyIndex, nodes int, dataMB float64) (RunResult, error) {
	group := ki.byNodes[nodes]
	if db.perf != nil {
		db.perf.C.P1ProfileEntriesScanned += int64(len(group))
	}
	var xs, jct, ms, rs []float64
	for _, i := range group {
		e := all[i]
		xs = append(xs, e.dataMB)
		jct = append(jct, e.result.JCTSec)
		ms = append(ms, e.result.MapSec)
		rs = append(rs, e.result.ReduceSec)
	}
	if len(xs) < 2 {
		return RunResult{}, ErrNoProfile
	}
	jctM, err := stats.FitLinear(xs, jct)
	if err != nil {
		return RunResult{}, err
	}
	mapM, err := stats.FitLinear(xs, ms)
	if err != nil {
		return RunResult{}, err
	}
	redM, err := stats.FitLinear(xs, rs)
	if err != nil {
		return RunResult{}, err
	}
	return clampResult(RunResult{
		JCTSec:    jctM.Predict(dataMB),
		MapSec:    mapM.Predict(dataMB),
		ReduceSec: redM.Predict(dataMB),
	}), nil
}

// extrapolateCluster fits the map phase as an inverse-linear function of
// cluster size and the reduce phase piece-wise, using runs at exactly the
// requested data size. Candidate entries come from the data-size groups:
// a matching entry can only live in a group whose representative is
// within 2e-6 of the query (members sit within 1e-6 of their rep), so
// only those groups' members are re-tested. The surviving indices are
// merged back into ascending order, reproducing the old scan's order.
func (db *DB) extrapolateCluster(all []entry, ki *keyIndex, nodes int, dataMB float64) (RunResult, error) {
	var idxs []int
	for _, g := range ki.dataVals {
		d := g.mb - dataMB
		if d >= 2e-6 || d <= -2e-6 {
			continue
		}
		for _, i := range g.idxs {
			if db.perf != nil {
				db.perf.C.P1ProfileEntriesScanned++
			}
			if almostEqual(all[i].dataMB, dataMB) {
				idxs = append(idxs, i)
			}
		}
	}
	sort.Ints(idxs)
	var xs, ms, rs []float64
	for _, i := range idxs {
		e := all[i]
		xs = append(xs, float64(e.nodes))
		ms = append(ms, e.result.MapSec)
		rs = append(rs, e.result.ReduceSec)
	}
	if len(xs) < 2 {
		return RunResult{}, ErrNoProfile
	}
	mapM, err := stats.FitInverseLinear(xs, ms)
	if err != nil {
		return RunResult{}, err
	}
	var reduceAt float64
	if pw, err := stats.FitPiecewiseLinear(xs, rs); err == nil {
		reduceAt = pw.Predict(float64(nodes))
	} else if inv, err := stats.FitInverseLinear(xs, rs); err == nil {
		reduceAt = inv.Predict(float64(nodes))
	} else {
		return RunResult{}, err
	}
	mapAt := mapM.Predict(float64(nodes))
	return clampResult(RunResult{
		JCTSec:    mapAt + reduceAt,
		MapSec:    mapAt,
		ReduceSec: reduceAt,
	}), nil
}

func clampResult(r RunResult) RunResult {
	if r.MapSec < 0 {
		r.MapSec = 0
	}
	if r.ReduceSec < 0 {
		r.ReduceSec = 0
	}
	if r.JCTSec < r.MapSec+r.ReduceSec {
		r.JCTSec = r.MapSec + r.ReduceSec
	}
	return r
}

func nearestNodes(ki *keyIndex, nodes int) (int, bool) {
	// Prefer cluster sizes that have at least two data points (needed
	// for data extrapolation). nodesAsc is already sorted, so walking it
	// reproduces the old sort-then-scan tie-breaking (smaller size wins
	// on equal distance) over distinct sizes instead of every entry.
	best, bestDist, found := 0, 0, false
	for _, n := range ki.nodesAsc {
		if len(ki.byNodes[n]) < 2 {
			continue
		}
		if d := abs(n - nodes); !found || d < bestDist {
			best, bestDist, found = n, d, true
		}
	}
	return best, found
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

// Runner executes a job spec on a given environment and cluster size and
// reports phase timings. The core package provides a simulation-backed
// runner; tests may use analytic ones. The seed varies across the
// paper's "3 runs averaged" repetitions.
type Runner func(spec mapred.JobSpec, env Environment, nodes int, seed int64) (RunResult, error)

// Profiler trains and queries the profile database for Phase I.
type Profiler struct {
	// DB is the underlying profile database.
	DB *DB
	// Run executes training jobs.
	Run Runner
	// TrainNodes are the training-cluster sizes (default {4, 8}).
	TrainNodes []int
	// TrainFractions are the input-size fractions profiled per cluster
	// size (default {0.05, 0.10}).
	TrainFractions []float64
	// Repeats is how many seeded runs are averaged per point (default 3,
	// as in the paper).
	Repeats int

	perf *perfstat.Stats
}

// SetPerf installs a performance-attribution collector; estimates,
// database scans and training runs are then counted. A nil collector
// keeps the instrumentation off.
func (p *Profiler) SetPerf(ps *perfstat.Stats) {
	p.perf = ps
	p.DB.perf = ps
}

// New creates a profiler over a fresh database.
func New(run Runner) *Profiler {
	return &Profiler{
		DB:             NewDB(),
		Run:            run,
		TrainNodes:     []int{4, 8},
		TrainFractions: []float64{0.05, 0.10},
		Repeats:        3,
	}
}

// Train profiles the spec at small scale in the environment, filling the
// database. Already-profiled points are not re-run.
func (p *Profiler) Train(spec mapred.JobSpec, env Environment) error {
	if p.Run == nil {
		return errors.New("profiler: no runner configured")
	}
	for _, nodes := range p.TrainNodes {
		for fi, frac := range p.TrainFractions {
			var dataMB float64
			var small mapred.JobSpec
			if spec.FixedMapWork > 0 {
				// Fixed-work jobs use the task count as their "data
				// size"; keep the training counts distinct.
				tasks := maxInt(fi+1, int(float64(spec.FixedMapTasks)*frac))
				dataMB = float64(tasks)
				small = spec
				small.FixedMapTasks = tasks
			} else {
				dataMB = spec.InputMB * frac
				if dataMB < 64 {
					dataMB = 64 * float64(fi+1)
				}
				small = spec.WithInputMB(dataMB)
			}
			if _, ok := p.DB.Lookup(spec.Name, env, nodes, dataMB); ok {
				continue
			}
			avg := RunResult{}
			repeats := p.Repeats
			if repeats <= 0 {
				repeats = 1
			}
			for r := 0; r < repeats; r++ {
				if p.perf != nil {
					p.perf.C.P1TrainingRuns++
				}
				res, err := p.Run(small, env, nodes, int64(r+1))
				if err != nil {
					return fmt.Errorf("profiler: train %s on %s/%d: %w", spec.Name, env, nodes, err)
				}
				avg.JCTSec += res.JCTSec / float64(repeats)
				avg.MapSec += res.MapSec / float64(repeats)
				avg.ReduceSec += res.ReduceSec / float64(repeats)
			}
			p.DB.Add(spec.Name, env, nodes, dataMB, avg)
		}
	}
	return nil
}

// Observe records an actual production run into the profile database —
// the online-profiling extension the paper cites ([12], [33]). Later
// estimates then interpolate over real history at full scale instead of
// relying on small-cluster extrapolation alone.
func (p *Profiler) Observe(spec mapred.JobSpec, env Environment, nodes int, r RunResult) {
	dataMB := spec.InputMB
	if spec.FixedMapWork > 0 {
		dataMB = float64(spec.FixedMapTasks)
	}
	p.DB.Add(spec.Name, env, nodes, dataMB, r)
}

// EstimateJCT trains the spec if needed and estimates the completion time
// at the full input size on a cluster of the given size.
func (p *Profiler) EstimateJCT(spec mapred.JobSpec, env Environment, nodes int) (float64, error) {
	dataMB := spec.InputMB
	if spec.FixedMapWork > 0 {
		dataMB = float64(spec.FixedMapTasks)
	}
	if _, err := p.DB.Estimate(spec.Name, env, nodes, dataMB); errors.Is(err, ErrNoProfile) {
		if trainErr := p.Train(spec, env); trainErr != nil {
			return 0, trainErr
		}
	}
	r, err := p.DB.Estimate(spec.Name, env, nodes, dataMB)
	if err != nil {
		return 0, err
	}
	return r.JCTSec, nil
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
