package perfstat

import (
	"bytes"
	"testing"
	"time"
)

// fakeClock drives the span tree deterministically.
type fakeClock struct{ t time.Time }

func (f *fakeClock) now() time.Time          { return f.t }
func (f *fakeClock) advance(d time.Duration) { f.t = f.t.Add(d) }

// TestNilSafety pins the nil-receiver contract: every method is a no-op.
func TestNilSafety(t *testing.T) {
	var s *Stats
	if s.Enabled() {
		t.Error("nil Stats reports Enabled")
	}
	s.Enter("x")
	s.Exit()
	s.Merge(New())
	if sn := s.Snapshot(); sn.Counters != nil || sn.Spans != nil {
		t.Errorf("nil Snapshot not zero: %+v", sn)
	}
}

// TestSpanTelescoping verifies the invariant the span tree is built
// around: children sum to no more than their parent.
func TestSpanTelescoping(t *testing.T) {
	clk := &fakeClock{}
	s := New()
	s.now = clk.now

	s.Enter("engine.pump")
	clk.advance(10 * time.Millisecond)
	s.Enter("core.drm")
	clk.advance(30 * time.Millisecond)
	s.Exit()
	s.Enter("mapred.schedule")
	clk.advance(20 * time.Millisecond)
	s.Exit()
	clk.advance(5 * time.Millisecond)
	s.Exit()

	// A second pump with the same children accumulates into the same
	// nodes.
	s.Enter("engine.pump")
	s.Enter("core.drm")
	clk.advance(15 * time.Millisecond)
	s.Exit()
	s.Exit()

	sn := s.Snapshot()
	if len(sn.Spans) != 1 || sn.Spans[0].Name != "engine.pump" {
		t.Fatalf("unexpected span roots: %+v", sn.Spans)
	}
	pump := sn.Spans[0]
	if pump.Count != 2 {
		t.Errorf("pump count = %d, want 2", pump.Count)
	}
	if got, want := pump.WallSeconds, 0.080; got != want {
		t.Errorf("pump wall = %v, want %v", got, want)
	}
	if len(pump.Children) != 2 {
		t.Fatalf("pump has %d children, want 2", len(pump.Children))
	}
	if v := Telescopes(sn.Spans, 0); v != "" {
		t.Errorf("telescoping invariant violated at %q", v)
	}
}

// TestTelescopesDetectsViolation makes sure the checker is not
// vacuously true.
func TestTelescopesDetectsViolation(t *testing.T) {
	bad := []SpanSnapshot{{
		Name: "parent", WallSeconds: 1,
		Children: []SpanSnapshot{{Name: "child", WallSeconds: 2}},
	}}
	if v := Telescopes(bad, 0); v != "parent" {
		t.Errorf("Telescopes = %q, want parent", v)
	}
}

// TestUnbalancedExit pins that a stray Exit at the root is a no-op
// rather than corrupting the stack.
func TestUnbalancedExit(t *testing.T) {
	s := New()
	s.Exit()
	s.Enter("a")
	s.Exit()
	s.Exit()
	s.Enter("b")
	s.Exit()
	sn := s.Snapshot()
	if len(sn.Spans) != 2 {
		t.Errorf("got %d root spans, want 2 (a, b): %+v", len(sn.Spans), sn.Spans)
	}
}

// TestMergeOrderIndependence verifies folding Stats in any order yields
// identical counters and span trees — the property that lets concurrent
// sweep points merge deterministically.
func TestMergeOrderIndependence(t *testing.T) {
	mk := func(drm, jt int64, spanMS int) *Stats {
		clk := &fakeClock{}
		s := New()
		s.now = clk.now
		s.C.DRMNodesScanned = drm
		s.C.JTPairsScanned = jt
		s.Enter("engine.pump")
		clk.advance(time.Duration(spanMS) * time.Millisecond)
		s.Exit()
		return s
	}
	a := New()
	a.Merge(mk(3, 5, 10))
	a.Merge(mk(7, 11, 20))
	b := New()
	b.Merge(mk(7, 11, 20))
	b.Merge(mk(3, 5, 10))

	ja, err := a.Snapshot().JSON()
	if err != nil {
		t.Fatal(err)
	}
	jb, err := b.Snapshot().JSON()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(ja, jb) {
		t.Errorf("merge is order-sensitive:\n%s\nvs\n%s", ja, jb)
	}
	if a.C.DRMNodesScanned != 10 || a.C.JTPairsScanned != 16 {
		t.Errorf("merged counters wrong: %+v", a.C)
	}
}

// TestDeltaEach verifies the fieldwise delta used when flushing counter
// increments into a metrics registry.
func TestDeltaEach(t *testing.T) {
	var prev, cur Counters
	prev.DFSBlocksPlaced = 4
	cur.DFSBlocksPlaced = 10
	cur.EngineEventsFired = 2
	d := cur.Delta(prev)
	if d.DFSBlocksPlaced != 6 || d.EngineEventsFired != 2 {
		t.Errorf("delta wrong: %+v", d)
	}
	seen := 0
	d.Each(func(name string, v int64) { seen++ })
	if seen != len(CounterNames()) {
		t.Errorf("Each visited %d counters, want %d", seen, len(CounterNames()))
	}
}

// TestCounterAddZeroAlloc pins the satellite guarantee: incrementing
// cost counters — the form every instrumented hot loop uses — performs
// no allocations, whether stats are enabled or disabled (nil).
func TestCounterAddZeroAlloc(t *testing.T) {
	enabled := New()
	var disabled *Stats
	if allocs := testing.AllocsPerRun(1000, func() {
		if enabled != nil {
			enabled.C.DRMNodesScanned++
			enabled.C.JTPairsScanned += 7
		}
	}); allocs != 0 {
		t.Errorf("enabled counter adds allocate %.1f/op, want 0", allocs)
	}
	if allocs := testing.AllocsPerRun(1000, func() {
		if disabled != nil {
			disabled.C.DRMNodesScanned++
		}
	}); allocs != 0 {
		t.Errorf("disabled counter adds allocate %.1f/op, want 0", allocs)
	}
}

// TestSpanWarmPathZeroAlloc pins that re-entering an already-created
// span (the steady state of every controller loop) does not allocate.
func TestSpanWarmPathZeroAlloc(t *testing.T) {
	s := New()
	s.Enter("core.drm")
	s.Exit() // warm: node now exists
	if allocs := testing.AllocsPerRun(1000, func() {
		s.Enter("core.drm")
		s.Exit()
	}); allocs != 0 {
		t.Errorf("warm Enter/Exit allocates %.1f/op, want 0", allocs)
	}
	var nilStats *Stats
	if allocs := testing.AllocsPerRun(1000, func() {
		nilStats.Enter("core.drm")
		nilStats.Exit()
	}); allocs != 0 {
		t.Errorf("nil Enter/Exit allocates %.1f/op, want 0", allocs)
	}
}
