// Package perfstat instruments the simulator itself — not the simulated
// system. It carries two signal classes:
//
//   - Algorithmic cost counters: deterministic tallies of how much work
//     each controller does (PMs scanned per DRM sweep, profile entries
//     scanned per Phase I estimate, tracker×kind pairs iterated per
//     JobTracker assignment round, replica candidates drawn per DFS block
//     placement, heap operations per engine pump). Counters are plain
//     int64 adds on a pre-allocated struct: no maps, no atomics, no
//     allocations on the hot path, and bit-identical totals at any
//     experiment worker count.
//
//   - Hierarchical wall-time spans: real (host) time attributed per
//     subsystem, nested by dynamic extent. A span's parent is whatever
//     span was open when it was entered, so controller ticks that fire
//     inside the engine pump show up under it. Children telescope:
//     the sum of a span's children never exceeds the span itself.
//
// A nil *Stats accepts the whole API as a no-op, so instrumented
// subsystems pay only a nil check when profiling is off — the same
// discipline as trace.Registry.
package perfstat

import (
	"encoding/json"
	"sort"
	"time"
)

// Counters is the flat, pre-allocated cost-counter block. Incrementing a
// field is a plain int64 add; instrumented code does
//
//	if ps != nil {
//		ps.C.DRMNodesScanned += int64(len(nodes))
//	}
//
// which keeps the zero-alloc guarantee of the engine hot path intact.
type Counters struct {
	// Engine: the discrete-event pump.
	EngineEventsFired   int64
	EngineHeapPushes    int64
	EngineHeapPops      int64
	EngineHeapSiftSwaps int64
	EngineCompactions   int64

	// DRM: the Phase II node sweep (core/drm.go).
	DRMSweeps           int64
	DRMNodesScanned     int64
	DRMAttemptsObserved int64
	DRMSortCmps         int64

	// Phase I placement (core/phase1.go + the profiler database).
	P1Placements            int64
	P1CandidatesEvaluated   int64
	P1Estimates             int64
	P1ProfileEntriesScanned int64
	P1TrainingRuns          int64

	// IPS: the SLA monitor (core/ips.go).
	IPSTicks           int64
	IPSAttemptsScanned int64

	// JobTracker: slot assignment and speculation (mapred/jobtracker.go).
	// JTAttemptsSorted counts elements passed through the RunningAttempts
	// sort (not comparisons: comparison counts depend on the random
	// map-iteration order of the input and would break determinism).
	JTScheduleCalls    int64
	JTScheduleRounds   int64
	JTPairsScanned     int64
	JTPressureProbes   int64
	JTSpeculationScans int64
	JTAttemptsSorted   int64

	// DFS: block placement and repair (dfs/dfs.go).
	DFSBlocksPlaced   int64
	DFSPlacementDraws int64
	DFSRepairScans    int64

	// Fault injection. FaultRetargets counts chaos draws that landed on
	// an ineligible target (already dead, hung or isolated) and walked
	// forward to the next eligible one instead of no-oping.
	FaultInjections int64
	FaultRetargets  int64
}

// counterDefs maps exported JSON names to struct fields, in output order.
// The accessor returns a pointer so one table serves snapshots, deltas
// and merges without reflection.
var counterDefs = []struct {
	name string
	get  func(*Counters) *int64
}{
	{"dfs.blocks_placed", func(c *Counters) *int64 { return &c.DFSBlocksPlaced }},
	{"dfs.placement_draws", func(c *Counters) *int64 { return &c.DFSPlacementDraws }},
	{"dfs.repair_scans", func(c *Counters) *int64 { return &c.DFSRepairScans }},
	{"drm.attempts_observed", func(c *Counters) *int64 { return &c.DRMAttemptsObserved }},
	{"drm.nodes_scanned", func(c *Counters) *int64 { return &c.DRMNodesScanned }},
	{"drm.sort_cmps", func(c *Counters) *int64 { return &c.DRMSortCmps }},
	{"drm.sweeps", func(c *Counters) *int64 { return &c.DRMSweeps }},
	{"engine.compactions", func(c *Counters) *int64 { return &c.EngineCompactions }},
	{"engine.events_fired", func(c *Counters) *int64 { return &c.EngineEventsFired }},
	{"engine.heap_pops", func(c *Counters) *int64 { return &c.EngineHeapPops }},
	{"engine.heap_pushes", func(c *Counters) *int64 { return &c.EngineHeapPushes }},
	{"engine.heap_sift_swaps", func(c *Counters) *int64 { return &c.EngineHeapSiftSwaps }},
	{"fault.injections", func(c *Counters) *int64 { return &c.FaultInjections }},
	{"fault.retargets", func(c *Counters) *int64 { return &c.FaultRetargets }},
	{"ips.attempts_scanned", func(c *Counters) *int64 { return &c.IPSAttemptsScanned }},
	{"ips.ticks", func(c *Counters) *int64 { return &c.IPSTicks }},
	{"jt.attempts_sorted", func(c *Counters) *int64 { return &c.JTAttemptsSorted }},
	{"jt.pairs_scanned", func(c *Counters) *int64 { return &c.JTPairsScanned }},
	{"jt.pressure_probes", func(c *Counters) *int64 { return &c.JTPressureProbes }},
	{"jt.schedule_calls", func(c *Counters) *int64 { return &c.JTScheduleCalls }},
	{"jt.schedule_rounds", func(c *Counters) *int64 { return &c.JTScheduleRounds }},
	{"jt.speculation_scans", func(c *Counters) *int64 { return &c.JTSpeculationScans }},
	{"p1.candidates_evaluated", func(c *Counters) *int64 { return &c.P1CandidatesEvaluated }},
	{"p1.estimates", func(c *Counters) *int64 { return &c.P1Estimates }},
	{"p1.placements", func(c *Counters) *int64 { return &c.P1Placements }},
	{"p1.profile_entries_scanned", func(c *Counters) *int64 { return &c.P1ProfileEntriesScanned }},
	{"p1.training_runs", func(c *Counters) *int64 { return &c.P1TrainingRuns }},
}

// CounterNames returns every counter's exported name, in output order.
func CounterNames() []string {
	names := make([]string, len(counterDefs))
	for i, d := range counterDefs {
		names[i] = d.name
	}
	return names
}

// Each calls f for every counter in name order, including zeros — a
// stable key set keeps downstream snapshots byte-comparable.
func (c *Counters) Each(f func(name string, v int64)) {
	for _, d := range counterDefs {
		f(d.name, *d.get(c))
	}
}

// Delta returns c - prev, fieldwise.
func (c Counters) Delta(prev Counters) Counters {
	var out Counters
	for _, d := range counterDefs {
		*d.get(&out) = *d.get(&c) - *d.get(&prev)
	}
	return out
}

// AddFrom accumulates other into c, fieldwise.
func (c *Counters) AddFrom(other *Counters) {
	for _, d := range counterDefs {
		*d.get(c) += *d.get(other)
	}
}

// Map renders the counters as a name→value map (all names present).
func (c *Counters) Map() map[string]int64 {
	m := make(map[string]int64, len(counterDefs))
	c.Each(func(name string, v int64) { m[name] = v })
	return m
}

// span is one node of the wall-time attribution tree. Identity is the
// (name, parent) path: the same subsystem entered under two different
// parents yields two nodes.
type span struct {
	name     string
	parent   *span
	children map[string]*span
	count    int64
	total    time.Duration
	started  time.Time
}

func (sp *span) child(name string) *span {
	if c, ok := sp.children[name]; ok {
		return c
	}
	c := &span{name: name, parent: sp}
	if sp.children == nil {
		sp.children = make(map[string]*span)
	}
	sp.children[name] = c
	return c
}

// Stats is one run's performance attribution: the counter block plus the
// span tree. It is single-goroutine, like the simulation stack; runs that
// execute concurrently each get their own Stats and fold afterwards.
type Stats struct {
	// C is the cost-counter block; instrumented code adds to its fields
	// directly (after a nil check on the *Stats).
	C Counters

	root *span
	open *span
	now  func() time.Time // injectable for tests
}

// New returns an empty Stats ready to record.
func New() *Stats {
	s := &Stats{root: &span{name: "root"}, now: time.Now}
	s.open = s.root
	return s
}

// Enabled reports whether the receiver records anything (i.e. is
// non-nil); instrumented code may branch on it before batch updates.
func (s *Stats) Enabled() bool { return s != nil }

// Enter opens a wall-time span named name under the currently open span.
// Every Enter must be paired with an Exit; the warm path (span already
// seen under this parent) does not allocate. A nil receiver is a no-op.
func (s *Stats) Enter(name string) {
	if s == nil {
		return
	}
	sp := s.open.child(name)
	sp.started = s.now()
	s.open = sp
}

// Exit closes the innermost open span, accumulating its wall time. Exit
// without a matching Enter is a no-op. A nil receiver is a no-op.
func (s *Stats) Exit() {
	if s == nil || s.open == s.root {
		return
	}
	sp := s.open
	sp.count++
	sp.total += s.now().Sub(sp.started)
	s.open = sp.parent
}

// Merge folds another run's Stats into s: counters sum, and span trees
// union by path (counts and wall times sum). A nil receiver or argument
// is a no-op.
func (s *Stats) Merge(other *Stats) {
	if s == nil || other == nil {
		return
	}
	s.C.AddFrom(&other.C)
	mergeSpan(s.root, other.root)
}

func mergeSpan(dst, src *span) {
	dst.count += src.count
	dst.total += src.total
	for name, c := range src.children {
		mergeSpan(dst.child(name), c)
	}
}

// SpanSnapshot is an exported view of one span-tree node. WallSeconds is
// host time and therefore not deterministic; consumers that byte-compare
// reports must exclude it (see Snapshot.Counters vs Snapshot.Spans).
type SpanSnapshot struct {
	Name        string         `json:"name"`
	Count       int64          `json:"count"`
	WallSeconds float64        `json:"wall_seconds"`
	Children    []SpanSnapshot `json:"children,omitempty"`
}

// Snapshot is a point-in-time view of a Stats: the deterministic counter
// map and the (wall-clock, non-deterministic) span tree. Counters marshal
// with sorted keys, so their JSON encoding is byte-stable.
type Snapshot struct {
	Counters map[string]int64 `json:"counters"`
	Spans    []SpanSnapshot   `json:"spans,omitempty"`
}

// Snapshot summarizes the Stats. A nil receiver yields a zero Snapshot.
func (s *Stats) Snapshot() Snapshot {
	if s == nil {
		return Snapshot{}
	}
	return Snapshot{
		Counters: s.C.Map(),
		Spans:    snapshotChildren(s.root),
	}
}

func snapshotChildren(sp *span) []SpanSnapshot {
	if len(sp.children) == 0 {
		return nil
	}
	names := make([]string, 0, len(sp.children))
	for name := range sp.children {
		names = append(names, name)
	}
	sort.Strings(names)
	out := make([]SpanSnapshot, 0, len(names))
	for _, name := range names {
		c := sp.children[name]
		out = append(out, SpanSnapshot{
			Name:        c.name,
			Count:       c.count,
			WallSeconds: c.total.Seconds(),
			Children:    snapshotChildren(c),
		})
	}
	return out
}

// JSON renders the snapshot deterministically up to its wall-time fields.
func (sn Snapshot) JSON() ([]byte, error) {
	b, err := json.MarshalIndent(sn, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}

// Telescopes verifies the span-tree invariant on a snapshot subtree: the
// sum of every node's children never exceeds the node's own wall time
// (within eps seconds of clock slack). It returns the first violating
// span name, or "" when the invariant holds.
func Telescopes(spans []SpanSnapshot, eps float64) string {
	for _, sp := range spans {
		sum := 0.0
		for _, c := range sp.Children {
			sum += c.WallSeconds
		}
		if sum > sp.WallSeconds+eps {
			return sp.Name
		}
		if v := Telescopes(sp.Children, eps); v != "" {
			return v
		}
	}
	return ""
}
