package perfstat

import (
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
)

// StartProfiles wires the Go runtime profilers behind the CLI flags
// -cpuprofile, -memprofile and -profile-dir. cpuPath/memPath name
// explicit output files; a non-empty dir instead writes cpu.pprof and
// mem.pprof inside it (created if missing) and overrides both paths.
// It returns a stop function that ends the CPU profile and writes the
// heap profile; callers defer it around the whole run. With no
// profiling requested, stop is a cheap no-op.
func StartProfiles(cpuPath, memPath, dir string) (stop func() error, err error) {
	if dir != "" {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return nil, fmt.Errorf("profile dir: %w", err)
		}
		cpuPath = filepath.Join(dir, "cpu.pprof")
		memPath = filepath.Join(dir, "mem.pprof")
	}
	var cpuFile *os.File
	if cpuPath != "" {
		cpuFile, err = os.Create(cpuPath)
		if err != nil {
			return nil, fmt.Errorf("cpu profile: %w", err)
		}
		if err := pprof.StartCPUProfile(cpuFile); err != nil {
			cpuFile.Close()
			return nil, fmt.Errorf("cpu profile: %w", err)
		}
	}
	return func() error {
		if cpuFile != nil {
			pprof.StopCPUProfile()
			if err := cpuFile.Close(); err != nil {
				return err
			}
		}
		if memPath != "" {
			f, err := os.Create(memPath)
			if err != nil {
				return fmt.Errorf("mem profile: %w", err)
			}
			defer f.Close()
			runtime.GC() // up-to-date heap statistics
			if err := pprof.WriteHeapProfile(f); err != nil {
				return fmt.Errorf("mem profile: %w", err)
			}
		}
		return nil
	}, nil
}
