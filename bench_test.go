package hybridmr_test

import (
	"testing"

	"repro/internal/experiments"
)

// Each benchmark regenerates one of the paper's figures end to end:
// scenario construction, simulation, and table assembly. Figures are
// listed in paper order; run a single one with e.g.
//
//	go test -bench BenchmarkFig8bSingleJob -benchtime 1x
//
// The full sweep at the paper's input sizes is produced by
// cmd/hybridmr-bench; benchmarks default to a reduced data scale so the
// whole suite stays in benchmark-friendly territory.
const benchScale = 0.3

func benchExperiment(b *testing.B, id string) {
	b.Helper()
	exp, ok := experiments.ByID(id)
	if !ok {
		b.Fatalf("unknown experiment %q", id)
	}
	prev := experiments.Scale
	experiments.Scale = benchScale
	defer func() { experiments.Scale = prev }()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		outcome, err := exp.Run()
		if err != nil {
			b.Fatal(err)
		}
		if len(outcome.Table.Rows) == 0 {
			b.Fatalf("%s produced no rows", id)
		}
	}
}

func BenchmarkFig1aVirtualizationOverhead(b *testing.B) { benchExperiment(b, "fig1a") }
func BenchmarkFig1bDataSizeImpact(b *testing.B)         { benchExperiment(b, "fig1b") }
func BenchmarkFig1cDFSIO(b *testing.B)                  { benchExperiment(b, "fig1c") }
func BenchmarkFig2aCrossHost(b *testing.B)              { benchExperiment(b, "fig2a") }
func BenchmarkFig2bMoreCPUCycles(b *testing.B)          { benchExperiment(b, "fig2b") }
func BenchmarkFig2cDom0(b *testing.B)                   { benchExperiment(b, "fig2c") }
func BenchmarkFig2dSplitArchitecture(b *testing.B)      { benchExperiment(b, "fig2d") }
func BenchmarkFig5aClusterSizeJCT(b *testing.B)         { benchExperiment(b, "fig5a") }
func BenchmarkFig5bMapPhase(b *testing.B)               { benchExperiment(b, "fig5b") }
func BenchmarkFig5cReducePhase(b *testing.B)            { benchExperiment(b, "fig5c") }
func BenchmarkFig5dDataSize(b *testing.B)               { benchExperiment(b, "fig5d") }
func BenchmarkFig6aProfilingError(b *testing.B)         { benchExperiment(b, "fig6a") }
func BenchmarkFig6bCPUInterference(b *testing.B)        { benchExperiment(b, "fig6b") }
func BenchmarkFig6cIOInterference(b *testing.B)         { benchExperiment(b, "fig6c") }
func BenchmarkFig8aPhase1Gain(b *testing.B)             { benchExperiment(b, "fig8a") }
func BenchmarkFig8bSingleJob(b *testing.B)              { benchExperiment(b, "fig8b") }
func BenchmarkFig8cMultipleJobs(b *testing.B)           { benchExperiment(b, "fig8c") }
func BenchmarkFig8dRubisSLA(b *testing.B)               { benchExperiment(b, "fig8d") }
func BenchmarkFig9aSLATimeline(b *testing.B)            { benchExperiment(b, "fig9a") }
func BenchmarkFig9bCrossPlatform(b *testing.B)          { benchExperiment(b, "fig9b") }
func BenchmarkFig9cSavings(b *testing.B)                { benchExperiment(b, "fig9c") }
func BenchmarkFig10aUtilization(b *testing.B)           { benchExperiment(b, "fig10a") }
func BenchmarkFig10bMigrationTime(b *testing.B)         { benchExperiment(b, "fig10b") }
func BenchmarkFig10cDowntime(b *testing.B)              { benchExperiment(b, "fig10c") }
func BenchmarkFig11DesignTradeoff(b *testing.B)         { benchExperiment(b, "fig11") }

// Extension and ablation studies (see DESIGN.md's design-decision list
// and the paper's Section VI future work).
func BenchmarkExtIterativeInMemory(b *testing.B)   { benchExperiment(b, "ext-iterative") }
func BenchmarkExtArrivalStream(b *testing.B)       { benchExperiment(b, "ext-stream") }
func BenchmarkAblationSpeculation(b *testing.B)    { benchExperiment(b, "abl-speculation") }
func BenchmarkAblationCapacityAware(b *testing.B)  { benchExperiment(b, "abl-capacity") }
func BenchmarkAblationMemoryDeferral(b *testing.B) { benchExperiment(b, "abl-deferral") }
